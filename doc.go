// Package quicspin reproduces "Does It Spin? On the Adoption and Use of
// QUIC's Spin Bit" (Kunze, Sander, Wehrle — IMC 2023) as a Go library: a
// QUIC-lite transport with the RFC 9000 latency spin bit, a virtual-time
// network emulator, a synthetic web population calibrated to the paper's
// published marginals, the zgrab2-style measurement campaign engine, and
// the full analysis pipeline regenerating every table and figure of the
// paper's evaluation.
//
// The package root carries only documentation and the benchmark harness
// (bench_test.go); the implementation lives under internal/ and the
// runnable entry points under cmd/ and examples/. See README.md for a
// tour, DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-vs-measured results.
package quicspin
