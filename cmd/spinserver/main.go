// Command spinserver runs a spin-bit-enabled QUIC-lite HTTP/3-lite server
// on a real UDP socket. Its spin policy is configurable, so it can act as
// a LiteSpeed-style spinning deployment, a zeroing hyperscaler, or a
// greasing endpoint — handy for driving cmd/spinprobe and passive
// observers on a live network.
//
// Usage:
//
//	spinserver -listen :4433 -spin spin -disable-every 16 -body 30000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/transport"
	"quicspin/internal/udprun"
)

func main() {
	listen := flag.String("listen", ":4433", "UDP address to listen on")
	spin := flag.String("spin", "spin", "spin policy: spin, zero, one, grease-packet, grease-conn")
	disableEvery := flag.Int("disable-every", 16, "disable the spin bit on one in N connections (0 = never)")
	body := flag.Int("body", 30000, "response body size in bytes")
	serverHdr := flag.String("server-header", "quicspin/spinserver", "Server response header")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	vec := flag.Bool("vec", false, "carry the Valid Edge Counter extension in reserved bits")
	flag.Parse()

	mode, err := parseMode(*spin)
	if err != nil {
		log.Fatal(err)
	}
	// Fail fast on flag values the serve loop would otherwise misread.
	if *body < 0 {
		log.Fatalf("spinserver: -body must be >= 0, got %d", *body)
	}
	if *disableEvery < 0 {
		log.Fatalf("spinserver: -disable-every must be >= 0 (0 = never), got %d", *disableEvery)
	}
	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer pc.Close()

	rng := rand.New(rand.NewSource(*seed))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{
			Rng:       rng,
			EnableVEC: *vec,
			SpinPolicy: core.Policy{
				Mode:          mode,
				DisableEveryN: *disableEvery,
				DisabledMode:  core.ModeZero,
			},
		}
	})
	srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		log.Printf("%s GET %s%s", peer, req.Authority, req.Path)
		b := make([]byte, *body)
		for i := range b {
			b[i] = byte('a' + i%26)
		}
		return &h3.Response{
			Status:  200,
			Headers: map[string]string{"server": *serverHdr, "content-type": "text/html"},
			Body:    b,
		}
	})
	runner := udprun.NewEndpointRunner(ep, pc)
	runner.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			srv.Serve("peer", conn, now)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("spinserver listening on %s (policy=%s, disable-every=%d)", pc.LocalAddr(), mode, *disableEvery)
	if err := runner.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatalf("runner: %v", err)
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "spin":
		return core.ModeSpin, nil
	case "zero":
		return core.ModeZero, nil
	case "one":
		return core.ModeOne, nil
	case "grease-packet":
		return core.ModeGreasePerPacket, nil
	case "grease-conn":
		return core.ModeGreasePerConn, nil
	default:
		return 0, fmt.Errorf("unknown spin policy %q", s)
	}
}
