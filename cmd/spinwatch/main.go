// Command spinwatch is the passive on-path observer service: it tracks the
// latency spin bit of many concurrent QUIC flows in a fixed-size flow
// table (internal/flowtable) and exports per-flow and aggregate RTT
// estimates live — the Tofino-style line-rate vantage, run as a service.
//
// Two vantages are built in:
//
//	-mode emulate   tap a virtual-time netem network carrying a churning
//	                population of QUIC-lite client/server exchanges
//	                (deterministic; paced against the wall clock)
//	-mode mirror    passively read real UDP datagrams from -listen, e.g. a
//	                port-mirror replay of QUIC traffic
//
// The table state is served on -debug-addr: /debug/flows (text or
// ?format=json), /metrics, /livez, /readyz. SIGINT/SIGTERM drain
// gracefully and exit 130/143 (128+signal).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/core"
	"quicspin/internal/flowtable"
	"quicspin/internal/h3"
	"quicspin/internal/hostile"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/telemetry"
	"quicspin/internal/transport"
	"quicspin/internal/udprun"
)

func main() {
	var (
		mode        = flag.String("mode", "emulate", "vantage: emulate (netem tap) or mirror (real UDP)")
		listen      = flag.String("listen", "127.0.0.1:0", "mirror mode: UDP address to read from")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/flows, /metrics, /livez, /readyz on this address")
		slots       = flag.Int("slots", flowtable.DefaultSlots, "flow table capacity (rounded up to a power of two)")
		maxProbe    = flag.Int("max-probe", flowtable.DefaultMaxProbe, "open-addressing probe window")
		idleTimeout = flag.Duration("idle-timeout", flowtable.DefaultIdleTimeout, "evict flows idle for this long")
		useVEC      = flag.Bool("vec", true, "require a fully valid VEC on measurement edges")
		noGuard     = flag.Bool("no-pn-guard", false, "disable the packet-number edge guard")
		topK        = flag.Int("top", 10, "slowest flows shown on the dashboard and final summary")
		seed        = flag.Int64("seed", 1, "emulate mode: seed for world and traffic randomness")
		nServers    = flag.Int("servers", 4, "emulate mode: number of QUIC-lite servers")
		nClients    = flag.Int("clients", 8, "emulate mode: concurrent clients (each completion respawns a fresh flow)")
		liarFrac    = flag.Float64("liar-frac", 0, "emulate mode: fraction of servers lying about the spin bit")
		spinFrac    = flag.Float64("spin-frac", 0.8, "emulate mode: fraction of servers that spin (rest hold the bit)")
		bodyBytes   = flag.Int("body", 32*1024, "emulate mode: response body size")
		speed       = flag.Float64("speed", 50, "emulate mode: virtual seconds advanced per wall second")
		duration    = flag.Duration("duration", 0, "stop after this wall-clock duration (0: run until signalled)")
	)
	flag.Parse()
	if *mode != "emulate" && *mode != "mirror" {
		log.Fatalf("unknown -mode %q (want emulate or mirror)", *mode)
	}
	if *liarFrac < 0 || *liarFrac > 1 || *spinFrac < 0 || *spinFrac > 1 {
		log.Fatalf("-liar-frac and -spin-frac must be within [0,1]")
	}
	if *nServers < 1 || *nClients < 1 {
		log.Fatalf("-servers and -clients must be positive")
	}
	if *speed <= 0 {
		log.Fatalf("-speed must be positive")
	}

	reg := telemetry.New()
	tbl := flowtable.New(flowtable.Config{
		Slots:       *slots,
		MaxProbe:    *maxProbe,
		IdleTimeout: *idleTimeout,
		DCIDLen:     transport.DefaultConnIDLen,
		NoPNGuard:   *noGuard,
		UseVEC:      *useVEC,
		Telemetry:   reg,
	})

	// First SIGINT/SIGTERM drains gracefully (final summary still prints);
	// a second one kills the process. Exit code is 128+signal — 130 for
	// SIGINT, 143 for SIGTERM — so a supervisor can tell an operator's ^C
	// from its own orchestrated stop.
	interrupt := make(chan struct{})
	var sigCode atomic.Int32
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		sigCode.Store(int32(exitCodeFor(s)))
		log.Printf("%v: draining (press again to abort)", s)
		close(interrupt)
		s = <-sigCh
		os.Exit(exitCodeFor(s))
	}()

	// Liveness is the process answering; readiness additionally requires
	// that the vantage has admitted at least one flow (a mirror with no
	// traffic pointed at it is alive but not ready).
	health := telemetry.NewHealth()
	health.AddCheck("flowtable", func() (bool, string) {
		if tbl.Stats().NewFlows == 0 {
			return false, "no flows observed yet"
		}
		return true, ""
	})
	if *debugAddr != "" {
		dbg, err := telemetry.StartDebugServer(*debugAddr, reg,
			telemetry.Endpoint{Path: "/debug/flows", Handler: analysis.FlowsHandler(tbl, *topK)},
			telemetry.Endpoint{Path: "/livez", Handler: health.LiveHandler()},
			telemetry.Endpoint{Path: "/readyz", Handler: health.ReadyHandler()},
		)
		if err != nil {
			log.Fatalf("debug-addr: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /snapshot, /livez, /readyz, /debug/flows, /debug/pprof/)", dbg.Addr())
	}

	var err error
	switch *mode {
	case "emulate":
		err = runEmulate(tbl, emulateConfig{
			seed: *seed, servers: *nServers, clients: *nClients,
			liarFrac: *liarFrac, spinFrac: *spinFrac, bodyBytes: *bodyBytes,
			speed: *speed, duration: *duration,
		}, interrupt)
	case "mirror":
		err = runMirror(tbl, *listen, *duration, interrupt)
	}
	if err != nil {
		log.Fatal(err)
	}

	snap := tbl.Snapshot(*topK, false)
	fmt.Print(analysis.RenderFlowDashboard(&snap))
	if code := int(sigCode.Load()); code != 0 {
		os.Exit(code)
	}
}

type emulateConfig struct {
	seed               int64
	servers, clients   int
	liarFrac, spinFrac float64
	bodyBytes          int
	speed              float64
	duration           time.Duration
}

// emClient is one live emulated exchange.
type emClient struct {
	conn *transport.Conn
	host *netem.ClientHost
	hc   *h3.ClientConn
	id   int
	done bool
	dead time.Time // virtual deadline after which the flow is recycled
}

// runEmulate paces a deterministic virtual-time netem world against the
// wall clock, with the flow table tapping every delivered datagram.
// Completed exchanges respawn as fresh client addresses, churning flows
// through the table exactly the way a live vantage sees population churn.
func runEmulate(tbl *flowtable.Table, cfg emulateConfig, interrupt <-chan struct{}) error {
	start := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	loop := sim.NewLoop(start)
	rng := rand.New(rand.NewSource(cfg.seed))
	path := netem.PathConfig{Delay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond}
	net := netem.New(loop, path, rng)
	net.SetTap(tbl.Tap())

	body := make([]byte, cfg.bodyBytes)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{Status: 200, Headers: map[string]string{"server": "spinwatch/1.0"}, Body: body}
	})
	serverAddrs := make([]string, cfg.servers)
	for i := 0; i < cfg.servers; i++ {
		addr := fmt.Sprintf("server-%d", i)
		serverAddrs[i] = addr
		policy := core.Policy{Mode: core.ModeSpin}
		if rng.Float64() >= cfg.spinFrac {
			if rng.Intn(2) == 0 {
				policy.Mode = core.ModeZero
			} else {
				policy.Mode = core.ModeOne
			}
		}
		ep := transport.NewEndpoint(func(peer string) transport.Config {
			return transport.Config{Rng: rng, SpinPolicy: policy, EnableVEC: true}
		})
		host := netem.NewServerHost(net, addr, ep)
		host.OnActivity = func(ep *transport.Endpoint, now time.Time) {
			for _, conn := range ep.Conns() {
				srv.Serve("peer", conn, now)
			}
		}
		if rng.Float64() < cfg.liarFrac {
			net.SetMangler(addr, hostile.NewMangler(hostile.SpinLiar))
			log.Printf("server %s lies about its spin bit", addr)
		}
	}

	nextID := 0
	spawn := func() *emClient {
		c := &emClient{id: nextID}
		nextID++
		addr := fmt.Sprintf("client-%d", c.id)
		server := serverAddrs[rng.Intn(len(serverAddrs))]
		c.conn = transport.NewClientConn(transport.Config{Rng: rng, EnableVEC: true}, loop.Now())
		c.host = netem.NewClientHost(net, addr, server, c.conn)
		c.hc = h3.NewClientConn(c.conn)
		reqID, err := c.hc.Do(&h3.Request{Method: "GET", Authority: server, Path: "/", Headers: map[string]string{}})
		if err != nil {
			log.Printf("client %s: queueing request: %v", addr, err)
			c.done = true
			return c
		}
		c.dead = loop.Now().Add(30 * time.Second)
		c.host.OnActivity = func(conn *transport.Conn, now time.Time) {
			if c.done {
				return
			}
			if _, complete, _ := c.hc.Response(reqID); complete {
				c.done = true
			}
		}
		c.host.Kick()
		return c
	}
	clients := make([]*emClient, cfg.clients)
	for i := range clients {
		clients[i] = spawn()
	}

	const tick = 20 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var stopAt <-chan time.Time
	if cfg.duration > 0 {
		t := time.NewTimer(cfg.duration)
		defer t.Stop()
		stopAt = t.C
	}
	target := start
	lastSweep := start
	for {
		select {
		case <-interrupt:
			drainEmulate(loop, clients)
			return nil
		case <-stopAt:
			drainEmulate(loop, clients)
			return nil
		case <-ticker.C:
			target = target.Add(time.Duration(float64(tick) * cfg.speed))
			loop.RunUntil(target)
			for i, c := range clients {
				if c.done || !loop.Now().Before(c.dead) {
					c.conn.Close(loop.Now(), 0, "exchange finished")
					c.host.Kick()
					c.host.Close()
					clients[i] = spawn()
				}
			}
			if loop.Now().Sub(lastSweep) >= time.Minute {
				lastSweep = loop.Now()
				tbl.SweepIdle(loop.Now())
			}
		}
	}
}

// drainEmulate closes every live exchange and runs the loop dry so final
// flights (and their tap deliveries) complete.
func drainEmulate(loop *sim.Loop, clients []*emClient) {
	for _, c := range clients {
		c.conn.Close(loop.Now(), 0, "spinwatch draining")
		c.host.Kick()
	}
	for loop.Step() {
	}
}

// runMirror passively reads real UDP datagrams and feeds them to the
// table; every remote sender is tracked as its own flow toward the local
// socket.
func runMirror(tbl *flowtable.Table, listen string, duration time.Duration, interrupt <-chan struct{}) error {
	pc, err := net.ListenPacket("udp", listen)
	if err != nil {
		return fmt.Errorf("spinwatch: listen %s: %w", listen, err)
	}
	defer pc.Close()
	log.Printf("mirroring UDP datagrams on %s", pc.LocalAddr())
	local := flowtable.HashAddr(pc.LocalAddr().String())
	mir := udprun.NewMirror(pc, func(now time.Time, from string, data []byte) {
		tbl.Ingest(now.UnixNano(), flowtable.HashAddr(from), local, data)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- mir.Run(ctx) }()
	var stopAt <-chan time.Time
	if duration > 0 {
		t := time.NewTimer(duration)
		defer t.Stop()
		stopAt = t.C
	}
	sweep := time.NewTicker(time.Second)
	defer sweep.Stop()
	for {
		select {
		case <-interrupt:
			return nil
		case <-stopAt:
			return nil
		case <-sweep.C:
			tbl.SweepIdle(time.Now())
		case err := <-done:
			return err
		}
	}
}

// exitCodeFor maps a stopping signal to the conventional 128+signal exit
// code: 130 for SIGINT, 143 for SIGTERM.
func exitCodeFor(s os.Signal) int {
	if s == syscall.SIGTERM {
		return 143
	}
	return 130
}
