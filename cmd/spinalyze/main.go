// Command spinalyze consumes the qlog traces written by cmd/spinscan and
// regenerates the paper's tables and figures: the adoption overview
// (Tables 1/4), the AS-organisation attribution (Table 2, requires an
// asdb snapshot), the spin-configuration breakdown (Table 3), and the
// RTT-accuracy histograms (Figs. 3 and 4).
//
// Usage:
//
//	spinalyze -qlog-dir ./qlogs
//	spinalyze -qlog-dir ./qlogs -asdb ./asdb.txt -fig 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"quicspin/internal/analysis"
	"quicspin/internal/asdb"
	"quicspin/internal/scanner"
)

func main() {
	qlogDir := flag.String("qlog-dir", "", "directory with .qlog traces from spinscan (required)")
	asdbPath := flag.String("asdb", "", "asdb snapshot for Table 2 org attribution (optional)")
	table := flag.Int("table", 0, "render only this table (1-4; 0 = all)")
	fig := flag.Int("fig", 0, "render only this figure (3 or 4; 0 = all)")
	flag.Parse()

	if *qlogDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	files, err := filepath.Glob(filepath.Join(*qlogDir, "*.qlog"))
	if err != nil || len(files) == 0 {
		log.Fatalf("no .qlog files in %s (%v)", *qlogDir, err)
	}
	var readers []io.Reader
	var closers []io.Closer
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			log.Fatalf("open %s: %v", f, err)
		}
		readers = append(readers, fh)
		closers = append(closers, fh)
	}
	results, err := scanner.MergeQlogConns(readers)
	for _, c := range closers {
		c.Close()
	}
	if err != nil {
		log.Fatalf("parsing qlogs: %v", err)
	}
	var weeks []*analysis.Week
	for _, res := range results {
		log.Printf("loaded week %d (ipv6=%v): %d domains", res.Week, res.IPv6, len(res.Domains))
		weeks = append(weeks, analysis.Analyze(res))
	}
	wk := weeks[len(weeks)-1]

	show := func(n int) bool { return *table == 0 && *fig == 0 || *table == n }
	showFig := func(n int) bool { return *table == 0 && *fig == 0 || *fig == n }

	if show(1) || show(4) {
		if err := analysis.RenderOverview(wk).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if show(2) {
		if *asdbPath == "" {
			log.Print("skipping Table 2: no -asdb snapshot given")
		} else {
			fh, err := os.Open(*asdbPath)
			if err != nil {
				log.Fatalf("open asdb: %v", err)
			}
			tbl, orgs, err := asdb.ReadSnapshot(fh)
			fh.Close()
			if err != nil {
				log.Fatalf("parse asdb: %v", err)
			}
			res := &asdb.Resolver{Table: tbl, Orgs: orgs}
			if err := analysis.RenderOrgTable(wk, res, 8).Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
	if show(3) {
		if err := analysis.RenderSpinConfig(wk).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := analysis.RenderSoftwareTable(wk, analysis.StandardViews()[1]).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if len(weeks) > 1 && (*table == 0 && *fig == 0 || *fig == 2) {
		l := analysis.Longitudinally(weeks)
		if err := analysis.RenderLongitudinal(l).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if showFig(3) {
		fmt.Print(analysis.RenderAccuracy(weeks, 3))
	}
	if showFig(4) {
		fmt.Print(analysis.RenderAccuracy(weeks, 4))
		h := analysis.Headlines(weeks)
		fmt.Printf("headlines: n=%d overestimate=%.1f%% within-25ms=%.1f%% >200ms=%.1f%% within-25%%=%.1f%% within-2x=%.1f%% >3x=%.1f%%\n",
			h.N, h.OverestimateShare*100, h.Within25ms*100, h.Over200ms*100,
			h.Within25pct*100, h.Within2x*100, h.Over3x*100)
	}
}
