package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"quicspin/internal/telemetry"
)

// startProgress launches the periodic campaign progress reporter: every
// interval it diffs the telemetry snapshot and emits one live line via
// printf, e.g.
//
//	week=3 shard=7/8 domains=1.2M/2.0M conns/s=41k errs{timeout:312,reset:51}
//
// Each tick also evaluates the alert engine (nil disables alerting; the
// engine logs its own transition lines) and appends any firing alerts to
// the progress line. The returned stop function prints one final line and
// stops the ticker; setInterval retunes the cadence at runtime (the SIGHUP
// tunables-reload path) — zero pauses reporting until a later reload
// re-enables it. A zero initial interval starts paused (stop then prints
// nothing).
func startProgress(reg *telemetry.Registry, interval time.Duration, printf func(string, ...any), alerts *telemetry.AlertEngine) (stop func(), setInterval func(time.Duration)) {
	done := make(chan struct{})
	finished := make(chan struct{})
	reconf := make(chan time.Duration, 1)
	report := func(prev telemetry.Snapshot, dt time.Duration) telemetry.Snapshot {
		cur := reg.Snapshot()
		line := progressLine(cur, prev, dt)
		if firing := alerts.Evaluate(); len(firing) > 0 {
			line += " ALERTS[" + strings.Join(firing, ",") + "]"
		}
		printf("%s", line)
		return cur
	}
	go func() {
		defer close(finished)
		var tick *time.Ticker
		var tickC <-chan time.Time
		retune := func(d time.Duration) {
			if tick != nil {
				tick.Stop()
				tick, tickC = nil, nil
			}
			if d > 0 {
				tick = time.NewTicker(d)
				tickC = tick.C
			}
		}
		retune(interval)
		defer retune(0)
		prev := reg.Snapshot()
		prevT := time.Now()
		for {
			select {
			case <-done:
				if tickC != nil {
					report(prev, time.Since(prevT))
				}
				return
			case d := <-reconf:
				retune(d)
				prev = reg.Snapshot()
				prevT = time.Now()
			case <-tickC:
				now := time.Now()
				prev = report(prev, now.Sub(prevT))
				prevT = now
			}
		}
	}()
	stop = func() {
		close(done)
		<-finished
	}
	setInterval = func(d time.Duration) {
		// Coalesce: only the latest retune matters.
		select {
		case <-reconf:
		default:
		}
		select {
		case reconf <- d:
		case <-finished:
		}
	}
	return stop, setInterval
}

// progressLine renders one live campaign status line from the current
// snapshot and the previous tick (for the conns/s rate).
func progressLine(cur, prev telemetry.Snapshot, dt time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "week=%d", cur.Gauges["spinscan_week"])
	fmt.Fprintf(&b, " shard=%d/%d", cur.Gauges["spinscan_workers_active"], cur.Gauges["spinscan_workers_total"])
	fmt.Fprintf(&b, " domains=%s/%s",
		human(cur.Counters["spinscan_domains_total"]),
		human(cur.Gauges["spinscan_domains_population"]))

	rate := 0.0
	if dt > 0 {
		delta := cur.Counters["spinscan_conns_attempted_total"] - prev.Counters["spinscan_conns_attempted_total"]
		rate = float64(delta) / dt.Seconds()
	}
	fmt.Fprintf(&b, " conns/s=%s", human(int64(rate)))

	if errs := errSummary(cur); errs != "" {
		fmt.Fprintf(&b, " errs{%s}", errs)
	}
	return b.String()
}

// errSummary renders the non-zero connection error classes as
// "timeout:312,reset:51", largest class first.
func errSummary(s telemetry.Snapshot) string {
	const prefix = `spinscan_conn_errors_total{class="`
	type kv struct {
		class string
		n     int64
	}
	var errs []kv
	for name, n := range s.Counters {
		if n == 0 || !strings.HasPrefix(name, prefix) {
			continue
		}
		class := strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)
		errs = append(errs, kv{class, n})
	}
	sort.Slice(errs, func(i, j int) bool {
		if errs[i].n != errs[j].n {
			return errs[i].n > errs[j].n
		}
		return errs[i].class < errs[j].class
	})
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = fmt.Sprintf("%s:%d", e.class, e.n)
	}
	return strings.Join(parts, ",")
}

// human renders a count compactly: 812, 41k, 1.2M.
func human(n int64) string {
	switch {
	case n >= 1_000_000:
		return trimZero(fmt.Sprintf("%.1fM", float64(n)/1e6))
	case n >= 1_000:
		return trimZero(fmt.Sprintf("%.1fk", float64(n)/1e3))
	default:
		return fmt.Sprintf("%d", n)
	}
}

func trimZero(s string) string {
	return strings.Replace(s, ".0", "", 1)
}
