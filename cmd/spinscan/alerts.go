package main

import (
	"fmt"
	"strconv"
	"strings"

	"quicspin/internal/telemetry"
)

// parseAlerts turns the -alerts spec into an AlertEngine over reg. The
// spec is a comma-separated list of `<quantity><op><threshold>` terms,
// where op is `<=` (ceiling) or `>=` (floor) and the quantities are
// derived from the campaign's telemetry snapshot:
//
//	error-rate           failed / attempted connections (ceiling, typically)
//	domains-per-sec      campaign throughput gauge (floor)
//	spin-share           spin-flipping / succeeded connections (floor)
//	checkpoint-degraded  the scan_checkpoint_degraded gauge (ceiling of 0:
//	                     fires while the journal has disabled itself)
//
// An empty spec returns a nil engine (every AlertEngine method is a
// nil-safe no-op, so callers wire it unconditionally).
func parseAlerts(spec string, reg *telemetry.Registry, logf func(string, ...any)) (*telemetry.AlertEngine, error) {
	if spec == "" {
		return nil, nil
	}
	rules, err := parseAlertRules(spec)
	if err != nil {
		return nil, err
	}
	eng := telemetry.NewAlertEngine(reg, logf)
	for _, r := range rules {
		eng.AddRule(r)
	}
	return eng, nil
}

// parseAlertRules parses an -alerts spec into rules without touching a
// registry — shared by the initial flag parse and the SIGHUP tunables
// reload (which swaps them in with ReplaceRules). An empty spec is an
// empty rule set.
func parseAlertRules(spec string) ([]telemetry.Rule, error) {
	var rules []telemetry.Rule
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		op, idx := telemetry.OpAbove, strings.Index(term, "<=")
		if idx < 0 {
			op, idx = telemetry.OpBelow, strings.Index(term, ">=")
		}
		if idx <= 0 {
			return nil, fmt.Errorf("term %q: want <quantity><=|>=<threshold>", term)
		}
		name := strings.TrimSpace(term[:idx])
		threshold, err := strconv.ParseFloat(strings.TrimSpace(term[idx+2:]), 64)
		if err != nil {
			return nil, fmt.Errorf("term %q: bad threshold: %v", term, err)
		}
		value := alertQuantity(name)
		if value == nil {
			return nil, fmt.Errorf("term %q: unknown quantity %q (have error-rate, domains-per-sec, spin-share, checkpoint-degraded)", term, name)
		}
		rules = append(rules, telemetry.Rule{Name: name, Value: value, Op: op, Threshold: threshold})
	}
	return rules, nil
}

// alertQuantity maps a spec name to its snapshot measurement; nil for
// unknown names.
func alertQuantity(name string) func(*telemetry.Snapshot) float64 {
	switch name {
	case "error-rate":
		return func(s *telemetry.Snapshot) float64 {
			attempted := s.Counters["spinscan_conns_attempted_total"]
			if attempted == 0 {
				return 0
			}
			var failed int64
			for name, n := range s.Counters {
				if strings.HasPrefix(name, `spinscan_conn_errors_total{`) {
					failed += n
				}
			}
			return float64(failed) / float64(attempted)
		}
	case "domains-per-sec":
		return func(s *telemetry.Snapshot) float64 {
			return float64(s.Gauges["scan_domains_per_sec"])
		}
	case "checkpoint-degraded":
		return func(s *telemetry.Snapshot) float64 {
			return float64(s.Gauges["scan_checkpoint_degraded"])
		}
	case "spin-share":
		return func(s *telemetry.Snapshot) float64 {
			ok := s.Counters["spinscan_conns_succeeded_total"]
			if ok == 0 {
				// No successes yet: report a healthy share so the floor
				// alert does not fire during warm-up.
				return 1
			}
			return float64(s.Counters["spinscan_spin_flip_conns_total"]) / float64(ok)
		}
	}
	return nil
}
