// Command spinscan runs the measurement campaign of the paper against the
// synthetic web: it generates a scaled-down population (ICANN-zone and
// toplist domains over hosting organisations), scans every domain over
// QUIC-lite in virtual time, and either prints the adoption tables
// directly or writes per-connection qlog traces for cmd/spinalyze.
//
// Usage:
//
//	spinscan -scale 2000 -week 12 -summary
//	spinscan -scale 2000 -weeks 12 -engine fast -qlog-dir ./qlogs
//	spinscan -scale 2000 -weeks 4 -shards 8 -vantages "local,far:30+5"
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/asdb"
	"quicspin/internal/conformance"
	"quicspin/internal/report"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/shard"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

func main() {
	scale := flag.Int("scale", 2000, "population scale divisor (1000 = 216k CZDS domains)")
	seed := flag.Int64("seed", 20230515, "world generation seed")
	hostileFrac := flag.Float64("hostile-frac", 0, "fraction of QUIC servers assigned a hostile-endpoint misbehavior profile (0-1)")
	week := flag.Int("week", 12, "campaign week to scan (1-12)")
	weeks := flag.Int("weeks", 0, "scan this many consecutive weeks instead of one")
	ipv6 := flag.Bool("ipv6", false, "scan AAAA targets (Table 4 view)")
	engine := flag.String("engine", "emulated", "scan engine: emulated or fast")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-connection virtual timeout (0 = 6s default)")
	maxRedirects := flag.Int("max-redirects", 0, "redirect-follow bound (0 = default of 3)")
	qlogDir := flag.String("qlog-dir", "", "write per-connection qlog traces to this directory")
	asdbOut := flag.String("asdb-out", "", "write the world's prefix→ASN→org snapshot here (for spinalyze -asdb)")
	summary := flag.Bool("summary", true, "print adoption tables after scanning")
	conform := flag.Bool("conformance", false, "run the engine differential + invariant conformance suite instead of scanning")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /snapshot and /debug/pprof on this address (e.g. :9090)")
	progressEvery := flag.Duration("progress", 5*time.Second, "progress report interval (0 disables)")
	retries := flag.Int("retries", 0, "per-domain retry budget for transient failures (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "open a prefix circuit breaker after this many consecutive transient failures per AS (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "virtual cooldown before an open breaker probes again (0 = 30s default)")
	checkpoint := flag.String("checkpoint", "", "journal completed domains to this directory (enables -resume)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal and scan only the remainder")
	stream := flag.Bool("stream", true, "stream results through incremental aggregation (false = legacy batch pipeline)")
	lazyWorld := flag.Bool("lazy-world", false, "synthesise domains and servers on demand instead of materialising the population")
	traceOn := flag.Bool("trace", false, "record per-domain stage traces into the flight recorder (serves /debug/traces with -debug-addr)")
	traceDir := flag.String("trace-dir", "", "write flight-recorder dumps (panic/stall/budget postmortems) to this directory; implies -trace")
	flightDepth := flag.Int("flight-recorder", 0, "per-worker flight-recorder ring depth (0 = 64 default)")
	alertSpec := flag.String("alerts", "", `threshold alerts evaluated each progress tick, e.g. "error-rate<=0.05,domains-per-sec>=100,spin-share>=0.01"`)
	shards := flag.Int("shards", 0, "split the population into this many concurrently scanned shards (0 = unsharded)")
	vantagesSpec := flag.String("vantages", "", `scan from multiple vantage points, e.g. "local,far:30+5" (name[:extra_delay_ms[+jitter_ms]], comma-separated)`)
	shardTransport := flag.String("shard-transport", "inproc", "shard accumulator merge path: inproc, serialized or udp")
	shardRestarts := flag.Int("shard-restarts", 2, "restart budget per shard worker: crashed/stalled shards are relaunched from their journals this many times before being declared lost")
	shardStall := flag.Duration("shard-stall-timeout", 0, "kill and restart a shard worker that delivers nothing for this long (0 disables the stall watchdog)")
	strictShards := flag.Bool("strict-shards", false, "abort the campaign when any shard exhausts its restart budget instead of merging the survivors with a coverage report")
	shardFaults := flag.String("shard-faults", "", `chaos-test fault plan, e.g. "seed:3,drop:0.1,corrupt:0.05,crash:1@40" (drop/dup/corrupt/delay:P, max-delay:DUR, crash|panic|stall:SHARD@DOMAINS[xTIMES])`)
	flag.Parse()

	// The scale is a population divisor; zero or negative values would
	// send world generation into nonsense (or enormous) populations.
	if *scale <= 0 {
		log.Fatalf("-scale must be positive (got %d)", *scale)
	}
	if *hostileFrac < 0 || *hostileFrac > 1 {
		log.Fatalf("-hostile-frac must be in [0, 1] (got %g)", *hostileFrac)
	}
	if *shards < 0 {
		log.Fatalf("-shards must be >= 0 (got %d)", *shards)
	}

	eng := scanner.EngineEmulated
	switch *engine {
	case "emulated":
	case "fast":
		eng = scanner.EngineFast
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	reg := telemetry.New()

	// -trace-dir implies tracing; the tracer is nil when disabled, and a
	// nil tracer hands the scan path nil no-op recorders.
	var tracer *trace.Tracer
	if *traceOn || *traceDir != "" {
		tracer = trace.New(trace.Config{RingSize: *flightDepth, Dir: *traceDir, Logf: log.Printf})
	}

	alerts, err := parseAlerts(*alertSpec, reg, log.Printf)
	if err != nil {
		log.Fatalf("-alerts: %v", err)
	}

	first, last := *week, *week
	if *weeks > 0 {
		first, last = 1, *weeks
	}
	// Validate the flag-derived config once, before any scanning: Run
	// would reject it anyway, but failing before world generation is
	// friendlier.
	baseCfg := scanner.Config{
		Week: first, IPv6: *ipv6, Engine: eng, Workers: *workers,
		Timeout: *timeout, MaxRedirects: *maxRedirects, Telemetry: reg, Trace: tracer,
		Retry:      resilience.RetryPolicy{MaxRetries: *retries},
		Breaker:    resilience.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		Checkpoint: *checkpoint,
		Resume:     *resume,
	}
	if err := baseCfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// First SIGINT/SIGTERM stops the campaign gracefully (completed domains
	// stay in the -checkpoint journal); a second one kills the process.
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Printf("interrupt: stopping after in-flight domains (press again to abort)")
		close(interrupt)
		<-sigCh
		os.Exit(130)
	}()
	baseCfg.Interrupt = interrupt

	// The live dashboard rides on the streaming sink; it stays nil (a
	// valid no-op sink wrapper) without a debug endpoint to serve it.
	var live *analysis.Live
	if *debugAddr != "" {
		live = analysis.NewLive(0, 0)
		dbg, err := telemetry.StartDebugServer(*debugAddr, reg,
			telemetry.Endpoint{Path: "/debug/campaign", Handler: live.Handler()},
			telemetry.Endpoint{Path: "/debug/traces", Handler: trace.Handler(tracer)},
			telemetry.Endpoint{Path: "/debug/alerts", Handler: alerts.Handler()},
		)
		if err != nil {
			log.Fatalf("debug-addr: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /snapshot, /debug/campaign, /debug/traces, /debug/alerts, /debug/pprof/)", dbg.Addr())
	}

	prof := websim.DefaultProfile()
	prof.Scale = *scale
	prof.Seed = *seed
	prof.HostileFrac = *hostileFrac
	log.Printf("generating world (scale 1/%d)...", *scale)
	var world *websim.World
	if *lazyWorld {
		world = websim.GenerateLazy(prof)
		log.Printf("population: %d domains (lazily synthesised)", world.NumDomains())
	} else {
		world = websim.Generate(prof)
		log.Printf("population: %d domains, %d servers", world.NumDomains(), len(world.Servers()))
	}

	if *asdbOut != "" {
		fh, err := os.Create(*asdbOut)
		if err != nil {
			log.Fatalf("asdb-out: %v", err)
		}
		res := world.ASDB()
		if err := asdb.WriteSnapshot(fh, res.Table, res.Orgs, world.Prefixes()); err != nil {
			log.Fatalf("asdb snapshot: %v", err)
		}
		fh.Close()
		log.Printf("wrote asdb snapshot to %s", *asdbOut)
	}

	if *conform {
		runConformance(world, prof.Seed, *week, *ipv6, *workers, *timeout, *maxRedirects)
		return
	}

	nw := *workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	reg.Gauge("spinscan_workers_total").Set(int64(nw))

	stopProgress := startProgress(reg, *progressEvery, log.Printf, alerts)
	// With -stream (and no qlog output, which needs materialised results)
	// each domain flows straight into the incremental aggregators and is
	// dropped — memory stays bounded by the aggregate state, not the
	// population. -stream=false runs the legacy batch pipeline, retained as
	// the streaming path's test oracle.
	streamSummary := *stream && *qlogDir == ""
	var analyzed []*analysis.Week
	var camp *analysis.CampaignAccumulator
	var shardRes *shard.Result
	if *shards > 0 || *vantagesSpec != "" {
		// Distributed scan-out: the coordinator splits the population into
		// contiguous shards (each with its own journal, breakers and
		// telemetry labels), optionally repeats the campaign from several
		// vantage points, and merges the shard accumulators back into one
		// campaign with byte-identical tables.
		if !streamSummary {
			log.Fatalf("-shards/-vantages require the streaming pipeline (-stream and no -qlog-dir)")
		}
		tr, err := shard.ParseTransport(*shardTransport)
		if err != nil {
			log.Fatalf("-shard-transport: %v", err)
		}
		vantages, err := parseVantages(*vantagesSpec)
		if err != nil {
			log.Fatalf("-vantages: %v", err)
		}
		nshards := *shards
		if nshards == 0 {
			nshards = 1
		}
		weeksList := make([]int, 0, last-first+1)
		for wk := first; wk <= last; wk++ {
			weeksList = append(weeksList, wk)
		}
		nv := len(vantages)
		if nv == 0 {
			nv = 1
		}
		faultPlan, err := shard.ParseFaultPlan(*shardFaults)
		if err != nil {
			log.Fatalf("-shard-faults: %v", err)
		}
		log.Printf("scanning weeks %d-%d across %d shards, %d vantage(s), %s transport...",
			first, last, nshards, nv, tr)
		shardRes, err = shard.Run(world, shard.Config{
			Shards:   nshards,
			Weeks:    weeksList,
			Vantages: vantages,
			ForWeek: func(week int) scanner.Config {
				cfg := baseCfg
				cfg.Seed = prof.Seed + int64(week)
				// The coordinator owns the journal layout: every
				// (vantage, shard) pair gets its own subdirectory.
				cfg.Checkpoint, cfg.Resume = "", false
				return cfg
			},
			Checkpoint:   *checkpoint,
			Resume:       *resume,
			Transport:    tr,
			Telemetry:    reg,
			Live:         live,
			Trace:        tracer,
			MaxRestarts:  *shardRestarts,
			StallTimeout: *shardStall,
			StrictShards: *strictShards,
			Faults:       faultPlan,
			Logf:         log.Printf,
		})
		if errors.Is(err, scanner.ErrInterrupted) {
			if *checkpoint != "" {
				log.Printf("campaign interrupted; resume with: spinscan -checkpoint %s -resume (plus the original flags)", *checkpoint)
			} else {
				log.Printf("campaign interrupted (no -checkpoint journal; a rerun starts from scratch)")
			}
			os.Exit(130)
		}
		if err != nil {
			log.Fatal(err)
		}
		camp = shardRes.Vantages[0].Campaign
	}
	if streamSummary && camp == nil {
		camp = analysis.NewCampaignAccumulator()
	}
	for wk := first; shardRes == nil && wk <= last; wk++ {
		log.Printf("scanning week %d (%s, ipv6=%v)...", wk, *engine, *ipv6)
		cfg := baseCfg
		cfg.Week = wk
		cfg.Seed = prof.Seed + int64(wk)
		var err error
		if streamSummary {
			acc := camp.StartWeek(wk, cfg.IPv6, world.ASDB())
			err = scanner.RunStream(world, cfg, live.Sink(acc))
		} else {
			run := scanner.Run
			if !*stream {
				run = scanner.RunBatch
			}
			var res *scanner.Result
			res, err = run(world, cfg)
			if err == nil {
				if *qlogDir != "" {
					if qerr := writeQlogs(res, *qlogDir); qerr != nil {
						log.Fatalf("writing qlogs: %v", qerr)
					}
				}
				analyzed = append(analyzed, analysis.Analyze(res))
			}
		}
		if errors.Is(err, scanner.ErrInterrupted) {
			if *checkpoint != "" {
				log.Printf("campaign interrupted; resume with: spinscan -checkpoint %s -resume (plus the original flags)", *checkpoint)
			} else {
				log.Printf("campaign interrupted (no -checkpoint journal; a rerun starts from scratch)")
			}
			os.Exit(130)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	stopProgress()

	if !*summary {
		return
	}
	var tables []*report.Table
	var accuracy string
	if streamSummary {
		wks := camp.Weeks()
		a := wks[len(wks)-1]
		tables = []*report.Table{
			a.RenderOverview(), a.RenderOrgTable(8), a.RenderSpinConfig(),
			a.RenderSoftwareTable(), a.RenderErrorClasses(),
		}
		if len(wks) > 1 {
			tables = append(tables, analysis.RenderLongitudinal(camp.Longitudinal()))
		}
		if shardRes != nil && len(shardRes.Vantages) > 1 {
			tables = append(tables, shard.RenderAgreement(shardRes))
		}
		// A degraded merge (lost shards, no -strict-shards) ships its
		// coverage accounting with the tables: which shards survived, what
		// domain ranges are missing, and a per-table confidence caveat.
		if shardRes != nil && !shardRes.Vantages[0].Coverage.Complete() {
			cov := shardRes.Vantages[0].Coverage
			for _, tb := range tables {
				if note := cov.Confidence(tb.Title); note != "" {
					log.Printf("coverage: %s", note)
				}
			}
			tables = append(tables, shard.RenderCoverage(cov))
		}
		accuracy = camp.RenderAccuracy(4)
	} else {
		wk := analyzed[len(analyzed)-1]
		tables = []*report.Table{
			analysis.RenderOverview(wk),
			analysis.RenderOrgTable(wk, world.ASDB(), 8),
			analysis.RenderSpinConfig(wk),
			analysis.RenderSoftwareTable(wk, analysis.StandardViews()[1]),
			analysis.RenderErrorClasses(wk),
		}
		if len(analyzed) > 1 {
			tables = append(tables, analysis.RenderLongitudinal(analysis.Longitudinally(analyzed)))
		}
		accuracy = analysis.RenderAccuracy(analyzed, 4)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(accuracy)
}

// parseVantages parses the -vantages flag: comma-separated vantage specs of
// the form name[:extra_delay_ms[+jitter_ms]]. The extra delay is one-way
// (it shows up twice in the RTT); an empty spec means no multi-vantage
// campaign.
func parseVantages(spec string) ([]scanner.Vantage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []scanner.Vantage
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty vantage spec in %q", spec)
		}
		v := scanner.Vantage{Name: item}
		if name, params, ok := strings.Cut(item, ":"); ok {
			if name == "" {
				return nil, fmt.Errorf("vantage %q has no name", item)
			}
			v.Name = name
			delayStr, jitterStr, hasJitter := strings.Cut(params, "+")
			delayMs, err := strconv.ParseFloat(delayStr, 64)
			if err != nil || delayMs < 0 {
				return nil, fmt.Errorf("vantage %q: bad delay %q", item, delayStr)
			}
			v.ExtraDelay = time.Duration(delayMs * float64(time.Millisecond))
			if hasJitter {
				jitterMs, err := strconv.ParseFloat(jitterStr, 64)
				if err != nil || jitterMs < 0 {
					return nil, fmt.Errorf("vantage %q: bad jitter %q", item, jitterStr)
				}
				v.ExtraJitter = time.Duration(jitterMs * float64(time.Millisecond))
			}
		}
		out = append(out, v)
	}
	return out, nil
}

// runConformance cross-validates the two engines over the generated world
// and runs the chaos-schedule invariant sweep, then exits non-zero if
// either found a violation. The differential reuses the campaign loop's
// seed derivation (world seed + week) so its findings correspond to a real
// scan configuration.
func runConformance(world *websim.World, worldSeed int64, week int, ipv6 bool, workers int, timeout time.Duration, maxRedirects int) {
	log.Printf("running engine differential (week %d, ipv6=%v)...", week, ipv6)
	rep, err := conformance.RunDiff(conformance.DiffConfig{
		World:        world,
		Week:         week,
		IPv6:         ipv6,
		Seed:         worldSeed + int64(week),
		Workers:      workers,
		Timeout:      timeout,
		MaxRedirects: maxRedirects,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	log.Printf("running invariant chaos sweep...")
	inv := conformance.CheckInvariants(conformance.DefaultChaosCases())
	fmt.Println(inv.Summary())

	if !rep.OK() || !inv.OK() {
		os.Exit(1)
	}
}

func writeQlogs(res *scanner.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return scanner.WriteResultQlogs(res, func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	})
}
