// Command spinscan runs the measurement campaign of the paper against the
// synthetic web: it generates a scaled-down population (ICANN-zone and
// toplist domains over hosting organisations), scans every domain over
// QUIC-lite in virtual time, and either prints the adoption tables
// directly or writes per-connection qlog traces for cmd/spinalyze.
//
// Usage:
//
//	spinscan -scale 2000 -week 12 -summary
//	spinscan -scale 2000 -weeks 12 -engine fast -qlog-dir ./qlogs
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"quicspin/internal/analysis"
	"quicspin/internal/asdb"
	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

func main() {
	scale := flag.Int("scale", 2000, "population scale divisor (1000 = 216k CZDS domains)")
	seed := flag.Int64("seed", 20230515, "world generation seed")
	week := flag.Int("week", 12, "campaign week to scan (1-12)")
	weeks := flag.Int("weeks", 0, "scan this many consecutive weeks instead of one")
	ipv6 := flag.Bool("ipv6", false, "scan AAAA targets (Table 4 view)")
	engine := flag.String("engine", "emulated", "scan engine: emulated or fast")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	qlogDir := flag.String("qlog-dir", "", "write per-connection qlog traces to this directory")
	asdbOut := flag.String("asdb-out", "", "write the world's prefix→ASN→org snapshot here (for spinalyze -asdb)")
	summary := flag.Bool("summary", true, "print adoption tables after scanning")
	flag.Parse()

	eng := scanner.EngineEmulated
	switch *engine {
	case "emulated":
	case "fast":
		eng = scanner.EngineFast
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	prof := websim.DefaultProfile()
	prof.Scale = *scale
	prof.Seed = *seed
	log.Printf("generating world (scale 1/%d)...", *scale)
	world := websim.Generate(prof)
	log.Printf("population: %d domains, %d servers", len(world.Domains), len(world.Servers()))

	if *asdbOut != "" {
		fh, err := os.Create(*asdbOut)
		if err != nil {
			log.Fatalf("asdb-out: %v", err)
		}
		res := world.ASDB()
		if err := asdb.WriteSnapshot(fh, res.Table, res.Orgs, world.Prefixes()); err != nil {
			log.Fatalf("asdb snapshot: %v", err)
		}
		fh.Close()
		log.Printf("wrote asdb snapshot to %s", *asdbOut)
	}

	first, last := *week, *week
	if *weeks > 0 {
		first, last = 1, *weeks
	}
	var analyzed []*analysis.Week
	for wk := first; wk <= last; wk++ {
		log.Printf("scanning week %d (%s, ipv6=%v)...", wk, *engine, *ipv6)
		res := scanner.Run(world, scanner.Config{
			Week: wk, IPv6: *ipv6, Engine: eng, Seed: prof.Seed + int64(wk), Workers: *workers,
		})
		if *qlogDir != "" {
			if err := writeQlogs(res, *qlogDir); err != nil {
				log.Fatalf("writing qlogs: %v", err)
			}
		}
		analyzed = append(analyzed, analysis.Analyze(res))
	}

	if !*summary {
		return
	}
	wk := analyzed[len(analyzed)-1]
	if err := analysis.RenderOverview(wk).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderOrgTable(wk, world.ASDB(), 8).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderSpinConfig(wk).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderSoftwareTable(wk, analysis.StandardViews()[1]).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if len(analyzed) > 1 {
		fmt.Println()
		l := analysis.Longitudinally(analyzed)
		if err := analysis.RenderLongitudinal(l).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(analysis.RenderAccuracy(analyzed, 4))
}

func writeQlogs(res *scanner.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return scanner.WriteResultQlogs(res, func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	})
}
