// Command spinscan runs the measurement campaign of the paper against the
// synthetic web: it generates a scaled-down population (ICANN-zone and
// toplist domains over hosting organisations), scans every domain over
// QUIC-lite in virtual time, and either prints the adoption tables
// directly or writes per-connection qlog traces for cmd/spinalyze.
//
// Usage:
//
//	spinscan -scale 2000 -week 12 -summary
//	spinscan -scale 2000 -weeks 12 -engine fast -qlog-dir ./qlogs
//	spinscan -scale 2000 -weeks 4 -shards 8 -vantages "local,far:30+5"
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/asdb"
	"quicspin/internal/campaign"
	"quicspin/internal/conformance"
	"quicspin/internal/report"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/shard"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

func main() {
	scale := flag.Int("scale", 2000, "population scale divisor (1000 = 216k CZDS domains)")
	seed := flag.Int64("seed", 20230515, "world generation seed")
	hostileFrac := flag.Float64("hostile-frac", 0, "fraction of QUIC servers assigned a hostile-endpoint misbehavior profile (0-1)")
	week := flag.Int("week", 12, "campaign week to scan (1-12)")
	weeks := flag.Int("weeks", 0, "scan this many consecutive weeks instead of one")
	ipv6 := flag.Bool("ipv6", false, "scan AAAA targets (Table 4 view)")
	engine := flag.String("engine", "emulated", "scan engine: emulated or fast")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-connection virtual timeout (0 = 6s default)")
	maxRedirects := flag.Int("max-redirects", 0, "redirect-follow bound (0 = default of 3)")
	qlogDir := flag.String("qlog-dir", "", "write per-connection qlog traces to this directory")
	asdbOut := flag.String("asdb-out", "", "write the world's prefix→ASN→org snapshot here (for spinalyze -asdb)")
	summary := flag.Bool("summary", true, "print adoption tables after scanning")
	conform := flag.Bool("conformance", false, "run the engine differential + invariant conformance suite instead of scanning")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /snapshot and /debug/pprof on this address (e.g. :9090)")
	progressEvery := flag.Duration("progress", 5*time.Second, "progress report interval (0 disables)")
	retries := flag.Int("retries", 0, "per-domain retry budget for transient failures (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "open a prefix circuit breaker after this many consecutive transient failures per AS (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "virtual cooldown before an open breaker probes again (0 = 30s default)")
	checkpoint := flag.String("checkpoint", "", "journal completed domains to this directory (enables -resume)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal and scan only the remainder")
	stream := flag.Bool("stream", true, "stream results through incremental aggregation (false = legacy batch pipeline)")
	lazyWorld := flag.Bool("lazy-world", false, "synthesise domains and servers on demand instead of materialising the population")
	traceOn := flag.Bool("trace", false, "record per-domain stage traces into the flight recorder (serves /debug/traces with -debug-addr)")
	traceDir := flag.String("trace-dir", "", "write flight-recorder dumps (panic/stall/budget postmortems) to this directory; implies -trace")
	flightDepth := flag.Int("flight-recorder", 0, "per-worker flight-recorder ring depth (0 = 64 default)")
	alertSpec := flag.String("alerts", "", `threshold alerts evaluated each progress tick, e.g. "error-rate<=0.05,domains-per-sec>=100,spin-share>=0.01"`)
	shards := flag.Int("shards", 0, "split the population into this many concurrently scanned shards (0 = unsharded)")
	vantagesSpec := flag.String("vantages", "", `scan from multiple vantage points, e.g. "local,far:30+5" (name[:extra_delay_ms[+jitter_ms]], comma-separated)`)
	shardTransport := flag.String("shard-transport", "inproc", "shard accumulator merge path: inproc, serialized or udp")
	shardRestarts := flag.Int("shard-restarts", 2, "restart budget per shard worker: crashed/stalled shards are relaunched from their journals this many times before being declared lost")
	shardStall := flag.Duration("shard-stall-timeout", 0, "kill and restart a shard worker that delivers nothing for this long (0 disables the stall watchdog)")
	strictShards := flag.Bool("strict-shards", false, "abort the campaign when any shard exhausts its restart budget instead of merging the survivors with a coverage report")
	shardFaults := flag.String("shard-faults", "", `chaos-test fault plan, e.g. "seed:3,drop:0.1,corrupt:0.05,crash:1@40" (drop/dup/corrupt/delay:P, max-delay:DUR, crash|panic|stall:SHARD@DOMAINS[xTIMES])`)
	followMode := flag.Bool("follow", false, "continuous campaign service: scan week after week through the streaming pipeline (bound with -follow-weeks, stop with SIGINT/SIGTERM)")
	followWeeks := flag.Int("follow-weeks", 0, "stop -follow after this many weeks (0 = run until signalled; -weeks is an alias when set)")
	followInterval := flag.Duration("follow-interval", 0, "pause between consecutive -follow weeks (interruptible; 0 = back to back)")
	weekRestarts := flag.Int("week-restarts", 0, "per-week retry budget in -follow mode: failed weeks are retried from the journal this many times (0 = 2)")
	retainWeeks := flag.Int("journal-retain-weeks", 0, "in -follow mode, prune -checkpoint records older than the last N weeks during between-week compaction (0 keeps all)")
	journalCompact := flag.Bool("journal-compact", false, "in -follow mode, compact the -checkpoint journal after every completed week (implied by -journal-retain-weeks)")
	journalSync := flag.Int("journal-sync", 0, "fsync the checkpoint journal every N records (0 = only on rotation and close; 1 = every record)")
	journalSegBytes := flag.Int64("journal-segment-bytes", 0, "rotate checkpoint journal segments past this size (0 disables size-based rotation)")
	storageFaults := flag.String("storage-faults", "", `inject checkpoint storage faults, e.g. "seed:7,short-write:0.1,write-err:0.2,sync-err:0.1,rename-err:0.05,open-err:0.05"`)
	tunablesPath := flag.String("tunables", "", "runtime tunables file (alerts, progress, breaker-threshold, breaker-cooldown); SIGHUP reloads it without restart")
	liveWindows := flag.Int("live-max-windows", 0, "cap the live dashboard's closed rolling windows (0 = keep all)")
	liveBytes := flag.Int64("live-max-bytes", 0, "cap the live dashboard's rolling-window memory in bytes (0 = unbounded)")
	flag.Parse()

	// The scale is a population divisor; zero or negative values would
	// send world generation into nonsense (or enormous) populations.
	if *scale <= 0 {
		log.Fatalf("-scale must be positive (got %d)", *scale)
	}
	if *hostileFrac < 0 || *hostileFrac > 1 {
		log.Fatalf("-hostile-frac must be in [0, 1] (got %g)", *hostileFrac)
	}
	if *shards < 0 {
		log.Fatalf("-shards must be >= 0 (got %d)", *shards)
	}

	eng := scanner.EngineEmulated
	switch *engine {
	case "emulated":
	case "fast":
		eng = scanner.EngineFast
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	reg := telemetry.New()

	// -trace-dir implies tracing; the tracer is nil when disabled, and a
	// nil tracer hands the scan path nil no-op recorders.
	var tracer *trace.Tracer
	if *traceOn || *traceDir != "" {
		tracer = trace.New(trace.Config{RingSize: *flightDepth, Dir: *traceDir, Logf: log.Printf})
	}

	alerts, err := parseAlerts(*alertSpec, reg, log.Printf)
	if err != nil {
		log.Fatalf("-alerts: %v", err)
	}
	if alerts == nil && *tunablesPath != "" {
		// A tunables reload may introduce alert rules later, and a nil
		// engine cannot grow them — service mode wires an empty one up
		// front.
		alerts = telemetry.NewAlertEngine(reg, log.Printf)
	}

	first, last := *week, *week
	if *weeks > 0 {
		first, last = 1, *weeks
	}
	// Validate the flag-derived config once, before any scanning: Run
	// would reject it anyway, but failing before world generation is
	// friendlier.
	baseCfg := scanner.Config{
		Week: first, IPv6: *ipv6, Engine: eng, Workers: *workers,
		Timeout: *timeout, MaxRedirects: *maxRedirects, Telemetry: reg, Trace: tracer,
		Retry:      resilience.RetryPolicy{MaxRetries: *retries},
		Breaker:    resilience.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Journal: resilience.JournalConfig{
			SyncEvery:    *journalSync,
			SegmentBytes: *journalSegBytes,
		},
	}
	if *storageFaults != "" {
		plan, err := resilience.ParseStorageFaultPlan(*storageFaults)
		if err != nil {
			log.Fatalf("-storage-faults: %v", err)
		}
		baseCfg.Journal.FS = resilience.NewFaultFS(nil, *plan)
		log.Printf("storage fault injection armed: %s", *storageFaults)
	}
	if err := baseCfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// First SIGINT/SIGTERM stops the campaign gracefully (completed domains
	// stay in the -checkpoint journal); a second one kills the process. The
	// exit code records which signal stopped us — 130 for SIGINT, 143 for
	// SIGTERM (128+signal, the shell convention) — so a supervisor can tell
	// an operator's ^C from its own orchestrated stop.
	interrupt := make(chan struct{})
	var sigCode atomic.Int32
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		sigCode.Store(int32(exitCodeFor(s)))
		log.Printf("%v: stopping after in-flight domains (press again to abort)", s)
		close(interrupt)
		s = <-sigCh
		os.Exit(exitCodeFor(s))
	}()
	baseCfg.Interrupt = interrupt
	exitInterrupted := func() {
		if code := int(sigCode.Load()); code != 0 {
			os.Exit(code)
		}
		os.Exit(130)
	}

	// The live dashboard rides on the streaming sink; it stays nil (a
	// valid no-op sink wrapper) without a debug endpoint to serve it.
	// Liveness (/livez) is the process answering; readiness (/readyz) flips
	// to 503 while the checkpoint journal is degraded — scanning continues,
	// but a supervisor should know checkpoints are suspended.
	var live *analysis.Live
	health := telemetry.NewHealth()
	health.AddCheck("checkpoint", func() (bool, string) {
		if reg.Gauge("scan_checkpoint_degraded").Value() != 0 {
			return false, "checkpoint journal degraded after storage failures (scanning continues; checkpoints suspended)"
		}
		return true, ""
	})
	if *debugAddr != "" {
		live = analysis.NewLive(0, 0)
		live.SetBudget(*liveWindows, *liveBytes)
		dbg, err := telemetry.StartDebugServer(*debugAddr, reg,
			telemetry.Endpoint{Path: "/debug/campaign", Handler: live.Handler()},
			telemetry.Endpoint{Path: "/debug/traces", Handler: trace.Handler(tracer)},
			telemetry.Endpoint{Path: "/debug/alerts", Handler: alerts.Handler()},
			telemetry.Endpoint{Path: "/livez", Handler: health.LiveHandler()},
			telemetry.Endpoint{Path: "/readyz", Handler: health.ReadyHandler()},
		)
		if err != nil {
			log.Fatalf("debug-addr: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /snapshot, /livez, /readyz, /debug/campaign, /debug/traces, /debug/alerts, /debug/pprof/)", dbg.Addr())
	}

	prof := websim.DefaultProfile()
	prof.Scale = *scale
	prof.Seed = *seed
	prof.HostileFrac = *hostileFrac
	log.Printf("generating world (scale 1/%d)...", *scale)
	var world *websim.World
	if *lazyWorld {
		world = websim.GenerateLazy(prof)
		log.Printf("population: %d domains (lazily synthesised)", world.NumDomains())
	} else {
		world = websim.Generate(prof)
		log.Printf("population: %d domains, %d servers", world.NumDomains(), len(world.Servers()))
	}

	if *asdbOut != "" {
		fh, err := os.Create(*asdbOut)
		if err != nil {
			log.Fatalf("asdb-out: %v", err)
		}
		res := world.ASDB()
		if err := asdb.WriteSnapshot(fh, res.Table, res.Orgs, world.Prefixes()); err != nil {
			log.Fatalf("asdb snapshot: %v", err)
		}
		fh.Close()
		log.Printf("wrote asdb snapshot to %s", *asdbOut)
	}

	if *conform {
		runConformance(world, prof.Seed, *week, *ipv6, *workers, *timeout, *maxRedirects)
		return
	}

	nw := *workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	reg.Gauge("spinscan_workers_total").Set(int64(nw))

	stopProgress, setProgress := startProgress(reg, *progressEvery, log.Printf, alerts)

	// Runtime tunables: loaded at startup when -tunables is given, reloaded
	// on SIGHUP. Alerts and the progress cadence apply immediately; breaker
	// settings are staged here and applied by follow mode at the next week
	// boundary (a scan in flight is never reconfigured).
	var tunMu sync.Mutex
	var breakerOverride campaign.Tunables
	applyTunables := func(t *campaign.Tunables, origin string) error {
		if t.HasAlerts {
			rules, err := parseAlertRules(t.Alerts)
			if err != nil {
				return fmt.Errorf("alerts: %v", err)
			}
			alerts.ReplaceRules(rules)
			log.Printf("tunables(%s): %d alert rule(s) active", origin, len(rules))
		}
		if t.HasProgress {
			setProgress(t.Progress)
			log.Printf("tunables(%s): progress interval -> %v", origin, t.Progress)
		}
		if t.HasBreakerThreshold || t.HasBreakerCooldown {
			tunMu.Lock()
			if t.HasBreakerThreshold {
				breakerOverride.BreakerThreshold, breakerOverride.HasBreakerThreshold = t.BreakerThreshold, true
			}
			if t.HasBreakerCooldown {
				breakerOverride.BreakerCooldown, breakerOverride.HasBreakerCooldown = t.BreakerCooldown, true
			}
			tunMu.Unlock()
			log.Printf("tunables(%s): breaker settings staged (applied at the next week boundary)", origin)
		}
		return nil
	}
	if *tunablesPath != "" {
		t, err := campaign.LoadTunables(*tunablesPath)
		if err != nil {
			log.Fatalf("-tunables: %v", err)
		}
		if err := applyTunables(t, "startup"); err != nil {
			log.Fatalf("-tunables: %v", err)
		}
		hupCh := make(chan os.Signal, 1)
		signal.Notify(hupCh, syscall.SIGHUP)
		go func() {
			for range hupCh {
				t, err := campaign.LoadTunables(*tunablesPath)
				if err != nil {
					log.Printf("tunables reload: %v (keeping previous settings)", err)
					continue
				}
				if err := applyTunables(t, "SIGHUP"); err != nil {
					log.Printf("tunables reload: %v (keeping previous settings)", err)
				}
			}
		}()
	}
	// With -stream (and no qlog output, which needs materialised results)
	// each domain flows straight into the incremental aggregators and is
	// dropped — memory stays bounded by the aggregate state, not the
	// population. -stream=false runs the legacy batch pipeline, retained as
	// the streaming path's test oracle.
	streamSummary := *stream && *qlogDir == ""
	var analyzed []*analysis.Week
	var camp *analysis.CampaignAccumulator
	var shardRes *shard.Result
	if *shards > 0 || *vantagesSpec != "" {
		// Distributed scan-out: the coordinator splits the population into
		// contiguous shards (each with its own journal, breakers and
		// telemetry labels), optionally repeats the campaign from several
		// vantage points, and merges the shard accumulators back into one
		// campaign with byte-identical tables.
		if !streamSummary {
			log.Fatalf("-shards/-vantages require the streaming pipeline (-stream and no -qlog-dir)")
		}
		tr, err := shard.ParseTransport(*shardTransport)
		if err != nil {
			log.Fatalf("-shard-transport: %v", err)
		}
		vantages, err := parseVantages(*vantagesSpec)
		if err != nil {
			log.Fatalf("-vantages: %v", err)
		}
		nshards := *shards
		if nshards == 0 {
			nshards = 1
		}
		weeksList := make([]int, 0, last-first+1)
		for wk := first; wk <= last; wk++ {
			weeksList = append(weeksList, wk)
		}
		nv := len(vantages)
		if nv == 0 {
			nv = 1
		}
		faultPlan, err := shard.ParseFaultPlan(*shardFaults)
		if err != nil {
			log.Fatalf("-shard-faults: %v", err)
		}
		log.Printf("scanning weeks %d-%d across %d shards, %d vantage(s), %s transport...",
			first, last, nshards, nv, tr)
		shardRes, err = shard.Run(world, shard.Config{
			Shards:   nshards,
			Weeks:    weeksList,
			Vantages: vantages,
			ForWeek: func(week int) scanner.Config {
				cfg := baseCfg
				cfg.Seed = prof.Seed + int64(week)
				// The coordinator owns the journal layout: every
				// (vantage, shard) pair gets its own subdirectory.
				cfg.Checkpoint, cfg.Resume = "", false
				return cfg
			},
			Checkpoint:   *checkpoint,
			Resume:       *resume,
			Transport:    tr,
			Telemetry:    reg,
			Live:         live,
			Trace:        tracer,
			MaxRestarts:  *shardRestarts,
			StallTimeout: *shardStall,
			StrictShards: *strictShards,
			Faults:       faultPlan,
			Logf:         log.Printf,
		})
		if errors.Is(err, scanner.ErrInterrupted) {
			if *checkpoint != "" {
				log.Printf("campaign interrupted; resume with: spinscan -checkpoint %s -resume (plus the original flags)", *checkpoint)
			} else {
				log.Printf("campaign interrupted (no -checkpoint journal; a rerun starts from scratch)")
			}
			exitInterrupted()
		}
		if err != nil {
			log.Fatal(err)
		}
		camp = shardRes.Vantages[0].Campaign
	}
	if *followMode {
		// Follow mode: the continuous campaign service. Weeks run back to
		// back (or -follow-interval apart) through the same streaming path,
		// journal and seed derivation as the one-shot loop, so a follow
		// campaign stopped after N weeks is byte-identical to -weeks N.
		if !streamSummary {
			log.Fatalf("-follow requires the streaming pipeline (-stream and no -qlog-dir)")
		}
		if *shards > 0 || *vantagesSpec != "" {
			log.Fatalf("-follow is a single-process service; use -shards/-vantages without -follow for distributed scan-out")
		}
		if *followWeeks == 0 && *weeks > 0 {
			*followWeeks = *weeks
		}
		if *followWeeks > 0 {
			log.Printf("follow mode: weeks 1-%d (%s engine)...", *followWeeks, *engine)
		} else {
			log.Printf("follow mode: continuous campaign from week 1 (%s engine; stop with SIGINT/SIGTERM)...", *engine)
		}
		fres, ferr := campaign.Follow(campaign.Config{
			World:        world,
			Base:         baseCfg,
			SeedBase:     prof.Seed,
			StartWeek:    1,
			MaxWeeks:     *followWeeks,
			Interval:     *followInterval,
			Live:         live,
			WeekRestarts: *weekRestarts,
			RetainWeeks:  *retainWeeks,
			Compact:      *journalCompact || *retainWeeks > 0,
			Reconfigure: func(cfg *scanner.Config) {
				tunMu.Lock()
				defer tunMu.Unlock()
				if breakerOverride.HasBreakerThreshold {
					cfg.Breaker.Threshold = breakerOverride.BreakerThreshold
				}
				if breakerOverride.HasBreakerCooldown {
					cfg.Breaker.Cooldown = breakerOverride.BreakerCooldown
				}
			},
			OnWeek: func(wk int, _ *analysis.CampaignAccumulator) {
				log.Printf("week %d complete", wk)
			},
			Logf: log.Printf,
		})
		if ferr != nil {
			log.Fatal(ferr)
		}
		camp = fres.Campaign
		if fres.Interrupted {
			stopProgress()
			if *checkpoint != "" {
				log.Printf("follow campaign interrupted after %d completed week(s); resume with: spinscan -follow -checkpoint %s -resume (plus the original flags)",
					fres.WeeksDone, *checkpoint)
			} else {
				log.Printf("follow campaign interrupted after %d completed week(s) (no -checkpoint journal; a rerun starts from scratch)", fres.WeeksDone)
			}
			exitInterrupted()
		}
		log.Printf("follow campaign done: %d week(s), %d restart(s), compaction kept %d of %d record(s)",
			fres.WeeksDone, fres.Restarts, fres.Compactions.Kept, fres.Compactions.Records)
	}
	if streamSummary && camp == nil {
		camp = analysis.NewCampaignAccumulator()
	}
	for wk := first; shardRes == nil && !*followMode && wk <= last; wk++ {
		log.Printf("scanning week %d (%s, ipv6=%v)...", wk, *engine, *ipv6)
		cfg := baseCfg
		cfg.Week = wk
		cfg.Seed = prof.Seed + int64(wk)
		var err error
		if streamSummary {
			acc := camp.StartWeek(wk, cfg.IPv6, world.ASDB())
			err = scanner.RunStream(world, cfg, live.Sink(acc))
		} else {
			run := scanner.Run
			if !*stream {
				run = scanner.RunBatch
			}
			var res *scanner.Result
			res, err = run(world, cfg)
			if err == nil {
				if *qlogDir != "" {
					if qerr := writeQlogs(res, *qlogDir); qerr != nil {
						log.Fatalf("writing qlogs: %v", qerr)
					}
				}
				analyzed = append(analyzed, analysis.Analyze(res))
			}
		}
		if errors.Is(err, scanner.ErrInterrupted) {
			if *checkpoint != "" {
				log.Printf("campaign interrupted; resume with: spinscan -checkpoint %s -resume (plus the original flags)", *checkpoint)
			} else {
				log.Printf("campaign interrupted (no -checkpoint journal; a rerun starts from scratch)")
			}
			exitInterrupted()
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	stopProgress()

	if !*summary {
		return
	}
	var tables []*report.Table
	var accuracy string
	if streamSummary {
		wks := camp.Weeks()
		a := wks[len(wks)-1]
		tables = []*report.Table{
			a.RenderOverview(), a.RenderOrgTable(8), a.RenderSpinConfig(),
			a.RenderSoftwareTable(), a.RenderErrorClasses(),
		}
		if len(wks) > 1 {
			tables = append(tables, analysis.RenderLongitudinal(camp.Longitudinal()))
		}
		if shardRes != nil && len(shardRes.Vantages) > 1 {
			tables = append(tables, shard.RenderAgreement(shardRes))
		}
		// A degraded merge (lost shards, no -strict-shards) ships its
		// coverage accounting with the tables: which shards survived, what
		// domain ranges are missing, and a per-table confidence caveat.
		if shardRes != nil && !shardRes.Vantages[0].Coverage.Complete() {
			cov := shardRes.Vantages[0].Coverage
			for _, tb := range tables {
				if note := cov.Confidence(tb.Title); note != "" {
					log.Printf("coverage: %s", note)
				}
			}
			tables = append(tables, shard.RenderCoverage(cov))
		}
		accuracy = camp.RenderAccuracy(4)
	} else {
		wk := analyzed[len(analyzed)-1]
		tables = []*report.Table{
			analysis.RenderOverview(wk),
			analysis.RenderOrgTable(wk, world.ASDB(), 8),
			analysis.RenderSpinConfig(wk),
			analysis.RenderSoftwareTable(wk, analysis.StandardViews()[1]),
			analysis.RenderErrorClasses(wk),
		}
		if len(analyzed) > 1 {
			tables = append(tables, analysis.RenderLongitudinal(analysis.Longitudinally(analyzed)))
		}
		accuracy = analysis.RenderAccuracy(analyzed, 4)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(accuracy)
}

// exitCodeFor maps a stopping signal to the conventional 128+signal exit
// code: 130 for SIGINT, 143 for SIGTERM.
func exitCodeFor(s os.Signal) int {
	if s == syscall.SIGTERM {
		return 143
	}
	return 130
}

// parseVantages parses the -vantages flag: comma-separated vantage specs of
// the form name[:extra_delay_ms[+jitter_ms]]. The extra delay is one-way
// (it shows up twice in the RTT); an empty spec means no multi-vantage
// campaign.
func parseVantages(spec string) ([]scanner.Vantage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []scanner.Vantage
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty vantage spec in %q", spec)
		}
		v := scanner.Vantage{Name: item}
		if name, params, ok := strings.Cut(item, ":"); ok {
			if name == "" {
				return nil, fmt.Errorf("vantage %q has no name", item)
			}
			v.Name = name
			delayStr, jitterStr, hasJitter := strings.Cut(params, "+")
			delayMs, err := strconv.ParseFloat(delayStr, 64)
			if err != nil || delayMs < 0 {
				return nil, fmt.Errorf("vantage %q: bad delay %q", item, delayStr)
			}
			v.ExtraDelay = time.Duration(delayMs * float64(time.Millisecond))
			if hasJitter {
				jitterMs, err := strconv.ParseFloat(jitterStr, 64)
				if err != nil || jitterMs < 0 {
					return nil, fmt.Errorf("vantage %q: bad jitter %q", item, jitterStr)
				}
				v.ExtraJitter = time.Duration(jitterMs * float64(time.Millisecond))
			}
		}
		out = append(out, v)
	}
	return out, nil
}

// runConformance cross-validates the two engines over the generated world
// and runs the chaos-schedule invariant sweep, then exits non-zero if
// either found a violation. The differential reuses the campaign loop's
// seed derivation (world seed + week) so its findings correspond to a real
// scan configuration.
func runConformance(world *websim.World, worldSeed int64, week int, ipv6 bool, workers int, timeout time.Duration, maxRedirects int) {
	log.Printf("running engine differential (week %d, ipv6=%v)...", week, ipv6)
	rep, err := conformance.RunDiff(conformance.DiffConfig{
		World:        world,
		Week:         week,
		IPv6:         ipv6,
		Seed:         worldSeed + int64(week),
		Workers:      workers,
		Timeout:      timeout,
		MaxRedirects: maxRedirects,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	log.Printf("running invariant chaos sweep...")
	inv := conformance.CheckInvariants(conformance.DefaultChaosCases())
	fmt.Println(inv.Summary())

	if !rep.OK() || !inv.OK() {
		os.Exit(1)
	}
}

func writeQlogs(res *scanner.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return scanner.WriteResultQlogs(res, func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	})
}
