// Command spinscan runs the measurement campaign of the paper against the
// synthetic web: it generates a scaled-down population (ICANN-zone and
// toplist domains over hosting organisations), scans every domain over
// QUIC-lite in virtual time, and either prints the adoption tables
// directly or writes per-connection qlog traces for cmd/spinalyze.
//
// Usage:
//
//	spinscan -scale 2000 -week 12 -summary
//	spinscan -scale 2000 -weeks 12 -engine fast -qlog-dir ./qlogs
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/asdb"
	"quicspin/internal/conformance"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/websim"
)

func main() {
	scale := flag.Int("scale", 2000, "population scale divisor (1000 = 216k CZDS domains)")
	seed := flag.Int64("seed", 20230515, "world generation seed")
	hostileFrac := flag.Float64("hostile-frac", 0, "fraction of QUIC servers assigned a hostile-endpoint misbehavior profile (0-1)")
	week := flag.Int("week", 12, "campaign week to scan (1-12)")
	weeks := flag.Int("weeks", 0, "scan this many consecutive weeks instead of one")
	ipv6 := flag.Bool("ipv6", false, "scan AAAA targets (Table 4 view)")
	engine := flag.String("engine", "emulated", "scan engine: emulated or fast")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-connection virtual timeout (0 = 6s default)")
	maxRedirects := flag.Int("max-redirects", 0, "redirect-follow bound (0 = default of 3)")
	qlogDir := flag.String("qlog-dir", "", "write per-connection qlog traces to this directory")
	asdbOut := flag.String("asdb-out", "", "write the world's prefix→ASN→org snapshot here (for spinalyze -asdb)")
	summary := flag.Bool("summary", true, "print adoption tables after scanning")
	conform := flag.Bool("conformance", false, "run the engine differential + invariant conformance suite instead of scanning")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /snapshot and /debug/pprof on this address (e.g. :9090)")
	progressEvery := flag.Duration("progress", 5*time.Second, "progress report interval (0 disables)")
	retries := flag.Int("retries", 0, "per-domain retry budget for transient failures (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "open a prefix circuit breaker after this many consecutive transient failures per AS (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "virtual cooldown before an open breaker probes again (0 = 30s default)")
	checkpoint := flag.String("checkpoint", "", "journal completed domains to this directory (enables -resume)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal and scan only the remainder")
	flag.Parse()

	// The scale is a population divisor; zero or negative values would
	// send world generation into nonsense (or enormous) populations.
	if *scale <= 0 {
		log.Fatalf("-scale must be positive (got %d)", *scale)
	}
	if *hostileFrac < 0 || *hostileFrac > 1 {
		log.Fatalf("-hostile-frac must be in [0, 1] (got %g)", *hostileFrac)
	}

	eng := scanner.EngineEmulated
	switch *engine {
	case "emulated":
	case "fast":
		eng = scanner.EngineFast
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	reg := telemetry.New()

	first, last := *week, *week
	if *weeks > 0 {
		first, last = 1, *weeks
	}
	// Validate the flag-derived config once, before any scanning: Run
	// would reject it anyway, but failing before world generation is
	// friendlier.
	baseCfg := scanner.Config{
		Week: first, IPv6: *ipv6, Engine: eng, Workers: *workers,
		Timeout: *timeout, MaxRedirects: *maxRedirects, Telemetry: reg,
		Retry:      resilience.RetryPolicy{MaxRetries: *retries},
		Breaker:    resilience.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		Checkpoint: *checkpoint,
		Resume:     *resume,
	}
	if err := baseCfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// First SIGINT/SIGTERM stops the campaign gracefully (completed domains
	// stay in the -checkpoint journal); a second one kills the process.
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Printf("interrupt: stopping after in-flight domains (press again to abort)")
		close(interrupt)
		<-sigCh
		os.Exit(130)
	}()
	baseCfg.Interrupt = interrupt

	if *debugAddr != "" {
		dbg, err := telemetry.StartDebugServer(*debugAddr, reg)
		if err != nil {
			log.Fatalf("debug-addr: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /snapshot, /debug/pprof/)", dbg.Addr())
	}

	prof := websim.DefaultProfile()
	prof.Scale = *scale
	prof.Seed = *seed
	prof.HostileFrac = *hostileFrac
	log.Printf("generating world (scale 1/%d)...", *scale)
	world := websim.Generate(prof)
	log.Printf("population: %d domains, %d servers", len(world.Domains), len(world.Servers()))

	if *asdbOut != "" {
		fh, err := os.Create(*asdbOut)
		if err != nil {
			log.Fatalf("asdb-out: %v", err)
		}
		res := world.ASDB()
		if err := asdb.WriteSnapshot(fh, res.Table, res.Orgs, world.Prefixes()); err != nil {
			log.Fatalf("asdb snapshot: %v", err)
		}
		fh.Close()
		log.Printf("wrote asdb snapshot to %s", *asdbOut)
	}

	if *conform {
		runConformance(world, prof.Seed, *week, *ipv6, *workers, *timeout, *maxRedirects)
		return
	}

	nw := *workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	reg.Gauge("spinscan_workers_total").Set(int64(nw))

	stopProgress := startProgress(reg, *progressEvery, log.Printf)
	var analyzed []*analysis.Week
	for wk := first; wk <= last; wk++ {
		log.Printf("scanning week %d (%s, ipv6=%v)...", wk, *engine, *ipv6)
		cfg := baseCfg
		cfg.Week = wk
		cfg.Seed = prof.Seed + int64(wk)
		res, err := scanner.Run(world, cfg)
		if errors.Is(err, scanner.ErrInterrupted) {
			if *checkpoint != "" {
				log.Printf("campaign interrupted; resume with: spinscan -checkpoint %s -resume (plus the original flags)", *checkpoint)
			} else {
				log.Printf("campaign interrupted (no -checkpoint journal; a rerun starts from scratch)")
			}
			os.Exit(130)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *qlogDir != "" {
			if err := writeQlogs(res, *qlogDir); err != nil {
				log.Fatalf("writing qlogs: %v", err)
			}
		}
		analyzed = append(analyzed, analysis.Analyze(res))
	}
	stopProgress()

	if !*summary {
		return
	}
	wk := analyzed[len(analyzed)-1]
	if err := analysis.RenderOverview(wk).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderOrgTable(wk, world.ASDB(), 8).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderSpinConfig(wk).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderSoftwareTable(wk, analysis.StandardViews()[1]).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := analysis.RenderErrorClasses(wk).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if len(analyzed) > 1 {
		fmt.Println()
		l := analysis.Longitudinally(analyzed)
		if err := analysis.RenderLongitudinal(l).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(analysis.RenderAccuracy(analyzed, 4))
}

// runConformance cross-validates the two engines over the generated world
// and runs the chaos-schedule invariant sweep, then exits non-zero if
// either found a violation. The differential reuses the campaign loop's
// seed derivation (world seed + week) so its findings correspond to a real
// scan configuration.
func runConformance(world *websim.World, worldSeed int64, week int, ipv6 bool, workers int, timeout time.Duration, maxRedirects int) {
	log.Printf("running engine differential (week %d, ipv6=%v)...", week, ipv6)
	rep, err := conformance.RunDiff(conformance.DiffConfig{
		World:        world,
		Week:         week,
		IPv6:         ipv6,
		Seed:         worldSeed + int64(week),
		Workers:      workers,
		Timeout:      timeout,
		MaxRedirects: maxRedirects,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	log.Printf("running invariant chaos sweep...")
	inv := conformance.CheckInvariants(conformance.DefaultChaosCases())
	fmt.Println(inv.Summary())

	if !rep.OK() || !inv.OK() {
		os.Exit(1)
	}
}

func writeQlogs(res *scanner.Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return scanner.WriteResultQlogs(res, func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	})
}
