package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

// TestDebugEndpointServesScanMetrics is the -debug-addr acceptance test:
// it runs a small instrumented campaign with the debug server on an
// ephemeral port (the moral equivalent of `spinscan -debug-addr :0`) and
// scrapes /metrics, /snapshot and /debug/pprof/.
func TestDebugEndpointServesScanMetrics(t *testing.T) {
	reg := telemetry.New()
	dbg, err := telemetry.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	prof := websim.DefaultProfile()
	prof.Scale = 300_000
	world := websim.Generate(prof)
	if _, err := scanner.Run(world, scanner.Config{
		Week: 1, Engine: scanner.EngineFast, Seed: 7, Workers: 2, Telemetry: reg,
	}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE spinscan_domains_total counter",
		"spinscan_conns_attempted_total",
		"spinscan_conns_succeeded_total",
		`spinscan_stage_seconds_bucket{stage="total",le="+Inf"}`,
		"dns_queries_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Counters["spinscan_domains_total"] != int64(len(world.Domains)) {
		t.Errorf("snapshot domains = %d, want %d",
			snap.Counters["spinscan_domains_total"], len(world.Domains))
	}

	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index not served")
	}
}

func TestProgressLine(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge("spinscan_week").Set(3)
	reg.Gauge("spinscan_workers_active").Set(7)
	reg.Gauge("spinscan_workers_total").Set(8)
	reg.Gauge("spinscan_domains_population").Set(2_000_000)
	reg.Counter("spinscan_domains_total").Add(1_200_000)
	reg.Counter("spinscan_conns_attempted_total").Add(82_000)
	reg.Counter(telemetry.Name("spinscan_conn_errors_total", "class", "timeout")).Add(312)
	reg.Counter(telemetry.Name("spinscan_conn_errors_total", "class", "reset")).Add(51)
	reg.Counter(telemetry.Name("spinscan_conn_errors_total", "class", "h3")).Add(0)

	prev := telemetry.Snapshot{Counters: map[string]int64{"spinscan_conns_attempted_total": 0}}
	line := progressLine(reg.Snapshot(), prev, 2*time.Second)
	want := "week=3 shard=7/8 domains=1.2M/2M conns/s=41k errs{timeout:312,reset:51}"
	if line != want {
		t.Errorf("progress line:\n got %q\nwant %q", line, want)
	}
}

func TestHuman(t *testing.T) {
	cases := map[int64]string{0: "0", 812: "812", 1000: "1k", 41_234: "41.2k", 1_200_000: "1.2M", 2_000_000: "2M"}
	for n, want := range cases {
		if got := human(n); got != want {
			t.Errorf("human(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestStartProgressEmitsAndStops(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("spinscan_conns_attempted_total").Add(10)
	var lines []string
	stop, _ := startProgress(reg, 10*time.Millisecond, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}, nil)
	time.Sleep(35 * time.Millisecond)
	stop()
	if len(lines) == 0 {
		t.Fatal("no progress lines emitted")
	}
	// Disabled reporter: stop must be a safe no-op.
	stopOff, _ := startProgress(reg, 0, func(string, ...any) { t.Error("disabled reporter emitted") }, nil)
	stopOff()
}

// TestStartProgressRetune drives the SIGHUP tunables path: a reporter
// started paused is enabled at runtime, then paused again.
func TestStartProgressRetune(t *testing.T) {
	reg := telemetry.New()
	ch := make(chan string, 64)
	stop, setEvery := startProgress(reg, 0, func(format string, args ...any) {
		ch <- fmt.Sprintf(format, args...)
	}, nil)
	defer stop()

	setEvery(5 * time.Millisecond)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no progress line after enabling a paused reporter")
	}

	setEvery(0)
	// Drain whatever was in flight while the pause landed, then confirm
	// silence.
	deadline := time.After(50 * time.Millisecond)
drain:
	for {
		select {
		case <-ch:
		case <-deadline:
			break drain
		}
	}
	select {
	case line := <-ch:
		t.Fatalf("paused reporter emitted %q", line)
	case <-time.After(30 * time.Millisecond):
	}
}

// TestParseAlerts covers the -alerts spec grammar.
func TestParseAlerts(t *testing.T) {
	reg := telemetry.New()
	if eng, err := parseAlerts("", reg, nil); eng != nil || err != nil {
		t.Fatalf("empty spec: eng=%v err=%v", eng, err)
	}
	eng, err := parseAlerts(" error-rate<=0.05, domains-per-sec>=100 ,spin-share>=0.01", reg, nil)
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if firing := eng.Evaluate(); len(firing) != 1 || firing[0] != "domains-per-sec" {
		// Warm-up: no conns yet (error-rate 0, spin-share reported healthy),
		// but the throughput gauge is still zero, under the floor.
		t.Errorf("warm-up firing = %v, want [domains-per-sec]", firing)
	}
	reg.Gauge("scan_domains_per_sec").Set(500)
	reg.Counter("spinscan_conns_attempted_total").Add(100)
	reg.Counter("spinscan_conns_succeeded_total").Add(90)
	reg.Counter("spinscan_spin_flip_conns_total").Add(40)
	reg.Counter(telemetry.Name("spinscan_conn_errors_total", "class", "timeout")).Add(10)
	if firing := eng.Evaluate(); len(firing) != 1 || firing[0] != "error-rate" {
		t.Errorf("firing = %v, want [error-rate]", firing)
	}
	for _, bad := range []string{"error-rate", "error-rate<=x", "nope<=1", "<=5"} {
		if _, err := parseAlerts(bad, reg, nil); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestDashboardEndpointsServe wires the full -debug-addr surface the way
// main does — campaign dashboard, trace viewer, alert engine — runs a
// traced streaming scan through the live sink, and scrapes every
// endpoint.
func TestDashboardEndpointsServe(t *testing.T) {
	reg := telemetry.New()
	tracer := trace.New(trace.Config{})
	alerts, err := parseAlerts("domains-per-sec>=1", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := analysis.NewLive(50, 4)
	dbg, err := telemetry.StartDebugServer("127.0.0.1:0", reg,
		telemetry.Endpoint{Path: "/debug/campaign", Handler: live.Handler()},
		telemetry.Endpoint{Path: "/debug/traces", Handler: trace.Handler(tracer)},
		telemetry.Endpoint{Path: "/debug/alerts", Handler: alerts.Handler()},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	prof := websim.DefaultProfile()
	prof.Scale = 100_000
	world := websim.Generate(prof)
	acc := analysis.NewAccumulator(1, false, world.ASDB())
	cfg := scanner.Config{
		Week: 1, Engine: scanner.EngineFast, Seed: 7, Workers: 2,
		Telemetry: reg, Trace: tracer,
	}
	if err := scanner.RunStream(world, cfg, live.Sink(acc)); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	campaign := get("/debug/campaign")
	for _, want := range []string{"Campaign dashboard", "Rolling windows", "Table 1.", "Table 5."} {
		if !strings.Contains(campaign, want) {
			t.Errorf("/debug/campaign missing %q", want)
		}
	}
	var snap analysis.LiveSnapshot
	if err := json.Unmarshal([]byte(get("/debug/campaign?format=json")), &snap); err != nil {
		t.Fatalf("/debug/campaign?format=json: %v", err)
	}
	if snap.Totals.Domains != len(world.Domains) || len(snap.Windows) == 0 {
		t.Errorf("dashboard totals %+v over %d windows, scanned %d domains",
			snap.Totals, len(snap.Windows), len(world.Domains))
	}

	traces := get("/debug/traces")
	if !strings.Contains(traces, `"domain"`) {
		t.Errorf("/debug/traces has no traces: %.300s", traces)
	}

	alertsDoc := get("/debug/alerts")
	if !strings.Contains(alertsDoc, "domains-per-sec") {
		t.Errorf("/debug/alerts missing rule: %s", alertsDoc)
	}
}
