// Command spinprobe opens one QUIC-lite connection to a target, performs
// HTTP/3-lite requests, and reports the spin-bit RTT estimates next to the
// stack's own estimator — a single-target version of the paper's
// measurement (§3.3). Point it at cmd/spinserver.
//
// Usage:
//
//	spinprobe -target 127.0.0.1:4433 -requests 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/transport"
	"quicspin/internal/udprun"
)

func main() {
	target := flag.String("target", "127.0.0.1:4433", "UDP address of the QUIC-lite server")
	host := flag.String("host", "www.example.invalid", "authority to request")
	requests := flag.Int("requests", 3, "number of sequential requests")
	timeout := flag.Duration("timeout", 15*time.Second, "overall deadline")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	flag.Parse()

	// Fail fast on flag values the probe loop would otherwise misread.
	if *requests <= 0 {
		log.Fatalf("spinprobe: -requests must be > 0, got %d", *requests)
	}
	if *timeout <= 0 {
		log.Fatalf("spinprobe: -timeout must be > 0, got %v", *timeout)
	}

	raddr, err := net.ResolveUDPAddr("udp", *target)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	pc, err := net.ListenPacket("udp", ":0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer pc.Close()

	conn := transport.NewClientConn(transport.Config{
		Rng:         rand.New(rand.NewSource(*seed)),
		IdleTimeout: *timeout,
	}, time.Now())
	hc := h3.NewClientConn(conn)
	runner := udprun.NewConnRunner(conn, pc, raddr)

	pendingID := uint64(0)
	issued, finished := 0, 0
	issue := func(c *transport.Conn) {
		id, err := hc.Do(&h3.Request{
			Method: "GET", Authority: *host, Path: "/",
			Headers: map[string]string{"user-agent": "quicspin-probe/1.0"},
		})
		if err != nil {
			log.Fatalf("request: %v", err)
		}
		pendingID = id
		issued++
	}
	runner.OnActivity = func(c *transport.Conn, now time.Time) {
		if issued == 0 {
			issue(c)
			return
		}
		if finished == issued {
			return
		}
		if resp, complete, err := hc.Response(pendingID); complete {
			finished++
			if err != nil {
				log.Printf("request %d: bad response: %v", finished, err)
			} else {
				log.Printf("request %d: %d, %d bytes, server=%q", finished, resp.Status, len(resp.Body), resp.Server())
			}
			if issued < *requests {
				issue(c)
			} else {
				c.Close(now, 0, "probe complete")
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := runner.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatalf("runner: %v", err)
	}

	report(conn)
}

func report(conn *transport.Conn) {
	obs := conn.Observations()
	fmt.Printf("\n=== spin bit report ===\n")
	fmt.Printf("received 1-RTT packets: %d\n", len(obs))
	fmt.Printf("classification:         %s\n", core.ClassifySeries(obs))
	est := conn.RTT()
	fmt.Printf("stack RTT:              smoothed=%v min=%v samples=%d\n",
		est.Smoothed(), est.Min(), len(est.Samples()))

	rtts := core.SpinRTTs(obs, false)
	if len(rtts) == 0 {
		fmt.Println("spin RTT:               no samples (need ≥ 2 spin edges)")
		return
	}
	var sum time.Duration
	for _, r := range rtts {
		sum += r
	}
	mean := sum / time.Duration(len(rtts))
	fmt.Printf("spin RTT:               mean=%v samples=%d\n", mean, len(rtts))
	for i, r := range rtts {
		fmt.Printf("  sample %2d: %v\n", i+1, r)
	}
	if est.Mean() > 0 {
		fmt.Printf("spin/stack ratio:       %.2f\n", float64(mean)/float64(est.Mean()))
	}
}
