#!/bin/sh
# Benchmark & allocation regression gate for the scan pipeline.
#
#   ./scripts/bench.sh            compare a fresh run against BENCH_PR5.json
#                                 and fail on >10 % regressions
#   ./scripts/bench.sh update     refresh the "after" numbers in BENCH_PR5.json
#                                 (preserving the recorded "before" baseline)
#   ./scripts/bench.sh capture    print a fresh results object to stdout
#                                 (used to record baselines from a worktree)
#   ./scripts/bench.sh smoke      tiny-population run that only checks the
#                                 benchmarks still execute (used by check.sh)
#
# The gate runs BenchmarkCampaign (one full weekly scan per engine, workers
# 4) at QUICSPIN_SCALE 2000 (~110k domains) and 20000 (~11k domains) with
# -benchmem -count 3, and records ns/op, B/op, allocs/op and domains/sec
# per engine as the best of the three runs (min ns/op, max domains/sec —
# wall-clock noise is one-sided slow; max B/op and allocs/op — memory is
# near-deterministic, so take the conservative side). Comparisons flag
# >10 % growth in B/op or allocs/op and >10 % loss in domains/sec; ns/op
# is recorded but not gated (wall time stays too noisy on shared machines
# to hard-fail on even after best-of-3).
set -eu

cd "$(dirname "$0")/.."

json=BENCH_PR5.json
mode=${1:-check}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_scale() { # $1 = scale
    echo "== BenchmarkCampaign at QUICSPIN_SCALE=$1" >&2
    QUICSPIN_SCALE=$1 go test -run '^$' -bench '^BenchmarkCampaign$' \
        -benchmem -benchtime 1x -count 3 . >"$tmp/raw-$1.txt" 2>&1 || {
        cat "$tmp/raw-$1.txt" >&2
        exit 1
    }
    grep -E '^BenchmarkCampaign/' "$tmp/raw-$1.txt" >&2 || true
}

# parse_scale <scale>: benchmark text -> {"fast": {...}, "emulated": {...}}
# Aggregates across -count repeats: best (min) ns/op and best (max)
# domains/sec, worst (max) B/op and allocs/op.
parse_scale() {
    awk '
    function keep(key, v, takeMax) {
        if (!(key in m)) { m[key] = v; return }
        if (takeMax) { if (v + 0 > m[key] + 0) m[key] = v }
        else { if (v + 0 < m[key] + 0) m[key] = v }
    }
    /^BenchmarkCampaign\// {
        split($1, parts, "/")
        eng = parts[2]
        sub(/-[0-9]+$/, "", eng)
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op")       keep(eng ",ns_per_op", $i, 0)
            if ($(i + 1) == "B/op")        keep(eng ",b_per_op", $i, 1)
            if ($(i + 1) == "allocs/op")   keep(eng ",allocs_per_op", $i, 1)
            if ($(i + 1) == "domains/sec") keep(eng ",domains_per_sec", $i, 1)
        }
    }
    END {
        printf "{"
        n = 0
        engs[1] = "fast"; engs[2] = "emulated"
        for (e = 1; e <= 2; e++) {
            eng = engs[e]
            if (m[eng ",ns_per_op"] == "") continue
            if (n++) printf ","
            printf "\"%s\":{\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s,\"domains_per_sec\":%s}", \
                eng, m[eng ",ns_per_op"], m[eng ",b_per_op"], m[eng ",allocs_per_op"], m[eng ",domains_per_sec"]
        }
        printf "}"
    }' "$tmp/raw-$1.txt"
}

# Sharded scaling gate: BenchmarkCampaignSharded runs the same fast-engine
# campaign at 1 and 8 shards. The gate is self-relative (no recorded
# baseline) and calibrated to the host: perfect scaling is
# min(shards, cores), and the 8-shard run must reach at least half of it —
# on a single core that degenerates to "sharding costs at most 2×", i.e.
# the coordinator/journal/merge overhead stays bounded. Allocations per op
# may grow only by the fixed per-shard state (8 journals, 8 campaign
# accumulators), gated at +30 %.
run_sharded() { # $1 = scale
    echo "== BenchmarkCampaignSharded at QUICSPIN_SCALE=$1" >&2
    QUICSPIN_SCALE=$1 go test -run '^$' -bench '^BenchmarkCampaignSharded$' \
        -benchmem -benchtime 1x -count 3 . >"$tmp/shard-$1.txt" 2>&1 || {
        cat "$tmp/shard-$1.txt" >&2
        exit 1
    }
    grep -E '^BenchmarkCampaignSharded/' "$tmp/shard-$1.txt" >&2 || true
}

check_sharded() { # $1 = scale
    run_sharded "$1"
    cores=$(nproc 2>/dev/null || echo 1)
    # The allocation bound covers the fixed per-shard state (journals,
    # campaign accumulators, merge buffers); on the tiny smoke population
    # that fixed state is a larger share of the total, so it gets more
    # headroom.
    amax=1.30
    if [ "$1" -ge 100000 ]; then
        amax=1.40
    fi
    awk -v cores="$cores" -v amax="$amax" '
    function keep(key, v, takeMax) {
        if (!(key in m)) { m[key] = v; return }
        if (takeMax) { if (v + 0 > m[key] + 0) m[key] = v }
        else { if (v + 0 < m[key] + 0) m[key] = v }
    }
    # The sub-benchmark name ends in the shard count, and Go appends a
    # -GOMAXPROCS suffix only on multi-core hosts — match the shard count
    # explicitly instead of stripping trailing digits.
    /^BenchmarkCampaignSharded\// {
        split($1, parts, "/")
        sh = (parts[2] ~ /^shards-1(-[0-9]+)?$/) ? "shards-1" : "shards-8"
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "domains/sec") keep(sh ",ds", $i, 1)
            if ($(i + 1) == "allocs/op")   keep(sh ",allocs", $i, 1)
        }
    }
    END {
        ds1 = m["shards-1,ds"]; ds8 = m["shards-8,ds"]
        a1 = m["shards-1,allocs"]; a8 = m["shards-8,allocs"]
        if (ds1 == "" || ds8 == "" || a1 == "" || a8 == "") {
            print "sharded benchmark produced no metrics" > "/dev/stderr"
            exit 1
        }
        expected = cores < 8 ? cores : 8
        floor = 0.5 * expected
        eff = ds8 / ds1
        printf "sharded scaling: %.2fx at 8 shards (%d cores, floor %.2fx); allocs/op %.0f -> %.0f (%.2fx)\n", \
            eff, cores, floor, a1, a8, a8 / a1
        if (eff < floor) {
            printf "8-shard throughput %.2fx below floor %.2fx (expected ~min(shards, cores))\n", eff, floor > "/dev/stderr"
            exit 1
        }
        if (a8 > a1 * amax) {
            printf "8-shard allocs/op %.0f vs %.0f unsharded (> %.2fx)\n", a8, a1, amax > "/dev/stderr"
            exit 1
        }
    }' "$tmp/shard-$1.txt"
}

# Journal rotation gate: BenchmarkCampaignJournal runs the journaled
# fast-engine campaign without and with aggressive 64 KiB segment rotation.
# Self-relative (no recorded baseline). The binding check is allocs/op —
# near-deterministic, so "rotation allocates per record" cannot hide — with
# a +10 % cap; throughput gets a loose 0.70 floor because best-of-3
# wall-clock on a shared single-core host is ±20 % noisy. The unjournaled
# hot path is separately gated against BENCH_PR5.json by the
# BenchmarkCampaign comparison.
check_journal() { # $1 = scale
    echo "== BenchmarkCampaignJournal at QUICSPIN_SCALE=$1" >&2
    QUICSPIN_SCALE=$1 go test -run '^$' -bench '^BenchmarkCampaignJournal$' \
        -benchmem -benchtime 1x -count 3 . >"$tmp/journal-$1.txt" 2>&1 || {
        cat "$tmp/journal-$1.txt" >&2
        exit 1
    }
    grep -E '^BenchmarkCampaignJournal/' "$tmp/journal-$1.txt" >&2 || true
    awk '
    function keep(key, v, takeMax) {
        if (!(key in m)) { m[key] = v; return }
        if (takeMax) { if (v + 0 > m[key] + 0) m[key] = v }
        else { if (v + 0 < m[key] + 0) m[key] = v }
    }
    /^BenchmarkCampaignJournal\// {
        split($1, parts, "/")
        j = (parts[2] ~ /^journal(-[0-9]+)?$/) ? "plain" : "rotate"
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "domains/sec") keep(j ",ds", $i, 1)
            if ($(i + 1) == "allocs/op")   keep(j ",allocs", $i, 0)
        }
    }
    END {
        ds1 = m["plain,ds"]; ds2 = m["rotate,ds"]
        a1 = m["plain,allocs"]; a2 = m["rotate,allocs"]
        if (ds1 == "" || ds2 == "" || a1 == "" || a2 == "") {
            print "journal benchmark produced no metrics" > "/dev/stderr"
            exit 1
        }
        printf "journal rotation cost: %.0f -> %.0f domains/sec (%.2fx); allocs/op %.0f -> %.0f (%.2fx)\n", \
            ds1, ds2, ds2 / ds1, a1, a2, a2 / a1
        if (a2 > a1 * 1.10) {
            printf "rotating journal allocs/op %.0f vs %.0f non-rotating (> 1.10x): rotation allocates on the hot path\n", a2, a1 > "/dev/stderr"
            exit 1
        }
        if (ds2 < ds1 * 0.70) {
            printf "rotating journal throughput %.2fx of non-rotating (< 0.70x floor)\n", ds2 / ds1 > "/dev/stderr"
            exit 1
        }
    }' "$tmp/journal-$1.txt"
}

# Flow-table ingest gate: BenchmarkFlowtableIngest pushes a churning
# packet trace through the passive observer's fixed-size table.
# Self-relative and absolute: allocs/op must be exactly 0 (the line-rate
# contract, same as TestIngestZeroAlloc but measured on the benchmark
# trace with admissions and evictions running), and the packets/sec
# figure is recorded to stderr for the log.
check_flowtable() {
    echo "== BenchmarkFlowtableIngest" >&2
    go test -run '^$' -bench '^BenchmarkFlowtableIngest$' \
        -benchmem -benchtime 200000x -count 3 . >"$tmp/flowtable.txt" 2>&1 || {
        cat "$tmp/flowtable.txt" >&2
        exit 1
    }
    grep -E '^BenchmarkFlowtableIngest' "$tmp/flowtable.txt" >&2 || true
    awk '
    function keep(key, v, takeMax) {
        if (!(key in m)) { m[key] = v; return }
        if (takeMax) { if (v + 0 > m[key] + 0) m[key] = v }
        else { if (v + 0 < m[key] + 0) m[key] = v }
    }
    /^BenchmarkFlowtableIngest/ {
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "packets/sec") keep("pps", $i, 1)
            if ($(i + 1) == "allocs/op")   keep("allocs", $i, 1)
        }
    }
    END {
        if (m["pps"] == "" || m["allocs"] == "") {
            print "flowtable benchmark produced no metrics" > "/dev/stderr"
            exit 1
        }
        printf "flowtable ingest: %.0f packets/sec, %.0f allocs/op\n", m["pps"], m["allocs"]
        if (m["allocs"] + 0 != 0) {
            printf "flowtable ingest allocates (%.0f allocs/op, want 0)\n", m["allocs"] > "/dev/stderr"
            exit 1
        }
    }' "$tmp/flowtable.txt"
}

if [ "$mode" = smoke ]; then
    # A tiny population proves the harness still runs end to end; no
    # comparison — regressions are gated by the full run.
    run_scale 100000
    check_sharded 100000
    check_journal 100000
    check_flowtable
    echo "bench smoke OK"
    exit 0
fi

run_scale 2000
run_scale 20000
if [ "$mode" = check ]; then
    check_sharded 20000
    check_journal 20000
    check_flowtable
fi
printf '{"scale_2000":%s,"scale_20000":%s}\n' \
    "$(parse_scale 2000)" "$(parse_scale 20000)" | jq . >"$tmp/fresh.json"

case "$mode" in
capture)
    cat "$tmp/fresh.json"
    ;;
update)
    if [ -f "$json" ]; then
        jq --slurpfile fresh "$tmp/fresh.json" '.after = $fresh[0]' "$json" >"$tmp/out.json"
    else
        jq --slurpfile fresh "$tmp/fresh.json" -n \
            '{note: "BenchmarkCampaign: one full weekly scan per engine, workers=4, -benchtime=1x. before = pre-PR baseline, after = streaming pipeline + hot-path memory overhaul. Gate: scripts/bench.sh fails on >10% B/op, allocs/op, or domains/sec regression vs after.", before: $fresh[0], after: $fresh[0]}'
        exit 0
    fi
    mv "$tmp/out.json" "$json"
    echo "updated $json (after)"
    ;;
check)
    if [ ! -f "$json" ]; then
        echo "no $json baseline; run ./scripts/bench.sh update first" >&2
        exit 1
    fi
    failures=$(jq -r --slurpfile fresh "$tmp/fresh.json" '
        [ ("scale_2000", "scale_20000") as $s
          | ("fast", "emulated") as $e
          | .after[$s][$e] as $b
          | $fresh[0][$s][$e] as $f
          | ( if $f.b_per_op > $b.b_per_op * 1.10
              then "\($s)/\($e): B/op \($f.b_per_op) vs baseline \($b.b_per_op) (+>10%)" else empty end ),
            ( if $f.allocs_per_op > $b.allocs_per_op * 1.10
              then "\($s)/\($e): allocs/op \($f.allocs_per_op) vs baseline \($b.allocs_per_op) (+>10%)" else empty end ),
            ( if $f.domains_per_sec < $b.domains_per_sec * 0.90
              then "\($s)/\($e): domains/sec \($f.domains_per_sec) vs baseline \($b.domains_per_sec) (->10%)" else empty end )
        ] | .[]' "$json")
    if [ -n "$failures" ]; then
        echo "benchmark regression vs $json:" >&2
        echo "$failures" >&2
        exit 1
    fi
    echo "bench OK (no >10% regression vs $json)"
    ;;
*)
    echo "usage: $0 [check|update|capture|smoke]" >&2
    exit 2
    ;;
esac
