#!/bin/sh
# Pre-PR gate: formatting, vet, build, the full test suite under the race
# detector with shuffled test order, and a short fuzz smoke over every
# native fuzz target. Run from the repository root:
#
#   ./scripts/check.sh
#
# CI and reviewers expect every PR to pass this unchanged.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

# Coverage floors on the packages the streaming pipeline flows through.
# These are regression floors, not targets: raise them when coverage grows,
# never lower them to make a PR pass.
echo "== coverage floors"
cov_floor() {
    pkg=$1
    floor=$2
    pct=$(go test -cover "$pkg" 2>/dev/null | awk '
        { for (i = 1; i < NF; i++) if ($i == "coverage:") { sub(/%/, "", $(i+1)); print $(i+1) } }')
    if [ -z "$pct" ]; then
        echo "no coverage output for $pkg" >&2
        exit 1
    fi
    if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p < f) }')" = 1 ]; then
        echo "$pkg coverage $pct% below floor $floor%" >&2
        exit 1
    fi
    echo "$pkg: $pct% (floor $floor%)"
}
cov_floor ./internal/scanner 75
cov_floor ./internal/websim 75
cov_floor ./internal/analysis 75
cov_floor ./internal/shard 75
cov_floor ./internal/flowtable 75

# Benchmark smoke: prove the BenchmarkCampaign harness (the input to
# scripts/bench.sh and BENCH_PR5.json) still runs; the full regression gate
# is ./scripts/bench.sh.
./scripts/bench.sh smoke

# Native Go fuzzing needs no build tags, so `go vet ./...` above already
# covers the fuzz harnesses; here each target gets a short guided run
# beyond its seed corpus (which plain `go test` replays as unit tests).
fuzz_smoke() {
    pkg=$1
    target=$2
    echo "== go test -fuzz=$target -fuzztime=5s $pkg"
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=5s "$pkg"
}
fuzz_smoke ./internal/wire FuzzVarint
fuzz_smoke ./internal/wire FuzzShortHeader
fuzz_smoke ./internal/wire FuzzLongHeader
fuzz_smoke ./internal/qlog FuzzQlogParse
fuzz_smoke ./internal/h3 FuzzH3Request
fuzz_smoke ./internal/analysis FuzzAccumulatorUnmarshal
fuzz_smoke ./internal/shard FuzzSubmissionFrame
fuzz_smoke ./internal/flowtable FuzzFlowIngest

# Interrupt-and-resume smoke: SIGKILL a real spinscan campaign mid-run,
# resume it from the checkpoint journal, and require the rendered tables to
# be byte-identical to an uninterrupted reference run. This exercises the
# journal's torn-line tolerance with a genuinely unclean death, which the
# in-process tests cannot.
echo "== interrupt-and-resume smoke"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/spinscan" ./cmd/spinscan
# The emulated engine keeps the campaign slow enough (a few seconds) for
# the SIGKILL to land while the journal is still growing.
scan_flags="-scale 20000 -engine emulated -week 3 -workers 4 -progress 0"

"$tmp/spinscan" $scan_flags 2>/dev/null >"$tmp/reference.txt"

"$tmp/spinscan" $scan_flags -checkpoint "$tmp/ckpt" 2>/dev/null >/dev/null &
scan_pid=$!
# Wait until the journal holds some completed domains, then kill -9.
i=0
while [ "$(cat "$tmp"/ckpt/*.jsonl 2>/dev/null | wc -l)" -lt 20 ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        # The run finished (or never started) before we could interrupt it;
        # resume still must reproduce the tables from a complete journal.
        break
    fi
    sleep 0.05
done
kill -9 "$scan_pid" 2>/dev/null || true
wait "$scan_pid" 2>/dev/null || true

"$tmp/spinscan" $scan_flags -checkpoint "$tmp/ckpt" -resume 2>/dev/null >"$tmp/resumed.txt"
if ! diff -u "$tmp/reference.txt" "$tmp/resumed.txt"; then
    echo "resumed tables differ from the uninterrupted reference" >&2
    exit 1
fi

# Sharded interrupt-and-resume smoke: the same unclean-death contract for
# the distributed coordinator — SIGKILL a sharded campaign mid-run, resume
# from the per-shard journals, and require byte-identical tables against an
# uninterrupted sharded reference (which TestShardDeterminism already pins
# to the unsharded output). The UDP transport on the resume leg exercises
# the collector exchange from the CLI.
echo "== sharded interrupt-and-resume smoke"
shard_flags="-scale 20000 -engine emulated -week 3 -workers 4 -progress 0 -shards 4"

"$tmp/spinscan" $shard_flags 2>/dev/null >"$tmp/shard-reference.txt"

"$tmp/spinscan" $shard_flags -checkpoint "$tmp/shard-ckpt" 2>/dev/null >/dev/null &
shard_pid=$!
i=0
while [ "$(cat "$tmp"/shard-ckpt/*/*/*.jsonl 2>/dev/null | wc -l)" -lt 20 ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        break
    fi
    sleep 0.05
done
kill -9 "$shard_pid" 2>/dev/null || true
wait "$shard_pid" 2>/dev/null || true

"$tmp/spinscan" $shard_flags -checkpoint "$tmp/shard-ckpt" -resume -shard-transport udp \
    2>/dev/null >"$tmp/shard-resumed.txt"
if ! diff -u "$tmp/shard-reference.txt" "$tmp/shard-resumed.txt"; then
    echo "resumed sharded tables differ from the uninterrupted reference" >&2
    exit 1
fi

# Shard chaos smoke: run a sharded UDP campaign with the full fault plan —
# a scripted worker crash recovered from the checkpoint journal plus
# datagram drop/duplication/corruption/delay on the accumulator exchange —
# and require the rendered tables to be byte-identical to the fault-free
# sharded reference above. The supervisor must log the restart, proving
# the injected crash actually fired.
echo "== shard chaos smoke"
"$tmp/spinscan" $shard_flags -shard-transport udp -checkpoint "$tmp/chaos-ckpt" \
    -shard-faults "seed:3,drop:0.05,dup:0.05,corrupt:0.02,delay:0.05,max-delay:2ms,crash:1@40" \
    2>"$tmp/chaos.log" >"$tmp/chaos.txt"
if ! diff -u "$tmp/shard-reference.txt" "$tmp/chaos.txt"; then
    echo "chaos-run tables differ from the fault-free sharded reference" >&2
    cat "$tmp/chaos.log" >&2
    exit 1
fi
if ! grep -q "restarting from journal" "$tmp/chaos.log"; then
    echo "chaos run never restarted a shard (injected crash did not fire):" >&2
    cat "$tmp/chaos.log" >&2
    exit 1
fi

# Follow-mode smoke: the continuous campaign service under storage chaos.
# A 3-week -follow campaign with an injected storage fault plan is SIGTERMed
# once week 1 completes (so the signal lands mid-week-2), must exit 143
# (128+SIGTERM; SIGINT is 130), then resumes from the rolling journal and
# must render tables byte-identical to the fault-free one-shot `-weeks 3`
# reference. This exercises the SIGTERM graceful drain, the exit-code
# split, journal degradation under injected faults, and the follow/one-shot
# equivalence contract end to end at the CLI.
echo "== follow-mode smoke"
follow_flags="-scale 20000 -engine emulated -weeks 3 -workers 4 -progress 0"
storage_plan="seed:7,short-write:0.05,write-err:0.1,sync-err:0.05"

"$tmp/spinscan" $follow_flags 2>/dev/null >"$tmp/follow-reference.txt"

"$tmp/spinscan" $follow_flags -follow -checkpoint "$tmp/follow-ckpt" \
    -storage-faults "$storage_plan" -journal-segment-bytes 8192 -journal-sync 16 \
    2>"$tmp/follow.log" >"$tmp/follow-first.txt" &
follow_pid=$!
i=0
while ! grep -q "week 1 complete" "$tmp/follow.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 400 ] || ! kill -0 "$follow_pid" 2>/dev/null; then
        break
    fi
    sleep 0.05
done
kill -TERM "$follow_pid" 2>/dev/null || true
follow_rc=0
wait "$follow_pid" || follow_rc=$?
if [ "$follow_rc" = 143 ]; then
    "$tmp/spinscan" $follow_flags -follow -checkpoint "$tmp/follow-ckpt" -resume \
        -storage-faults "$storage_plan" -journal-segment-bytes 8192 -journal-sync 16 \
        2>>"$tmp/follow.log" >"$tmp/follow-resumed.txt"
elif [ "$follow_rc" = 0 ]; then
    # The campaign outran the signal; its complete output still must match.
    echo "(follow campaign finished before SIGTERM landed; comparing its tables)"
    cp "$tmp/follow-first.txt" "$tmp/follow-resumed.txt"
else
    echo "follow SIGTERM run exited $follow_rc, want 143 (or 0 if it finished first):" >&2
    cat "$tmp/follow.log" >&2
    exit 1
fi
if ! diff -u "$tmp/follow-reference.txt" "$tmp/follow-resumed.txt"; then
    echo "follow-mode tables differ from the one-shot -weeks 3 reference" >&2
    cat "$tmp/follow.log" >&2
    exit 1
fi
if ! grep -q "storage fault injection armed" "$tmp/follow.log"; then
    echo "storage fault plan never armed:" >&2
    cat "$tmp/follow.log" >&2
    exit 1
fi

# Journal compaction property: replay(compact(J)) == replay(J) across
# randomized multi-generation journals, with storage-fault chaos on the odd
# trials. Already part of the race suite above; this named run pins the
# property gate explicitly so a failure is attributable at a glance.
echo "== journal compaction property"
go test -count=1 -run 'TestCompactionEquivalence|TestFollowMatchesOneShot' \
    ./internal/resilience ./internal/campaign

# Hostile chaos smoke: both engines must survive a 30 %-hostile world at
# the CLI level — exit 0, non-empty adoption tables, and the hostile error
# classes rendered in Table 5. The in-process chaos test covers the
# semantics; this catches CLI wiring regressions (flag parsing, rendering).
echo "== hostile chaos smoke"
for eng in emulated fast; do
    "$tmp/spinscan" -scale 5000 -hostile-frac 0.3 -engine "$eng" -progress 0 \
        2>/dev/null >"$tmp/hostile-$eng.txt"
    if ! grep -q "Table 1" "$tmp/hostile-$eng.txt"; then
        echo "hostile chaos run ($eng) produced no adoption tables" >&2
        exit 1
    fi
    if ! grep -q "hostile: " "$tmp/hostile-$eng.txt"; then
        echo "hostile chaos run ($eng) rendered no hostile error classes" >&2
        exit 1
    fi
done

# Zero-alloc tracing gate: the race detector above instruments allocations,
# so the AllocsPerRun assertions skip themselves there; this plain run is
# the binding check that disabled tracing stays off the scan hot path.
echo "== zero-alloc tracing gate"
go test -count=1 -run 'TestDisabledTracingZeroAlloc' ./internal/trace

# Zero-alloc flowtable gate: the passive observer's per-packet path must
# stay allocation-free in steady state (the line-rate contract); a named
# plain run so a regression is attributable at a glance.
echo "== zero-alloc flowtable gate"
go test -count=1 -run 'TestIngestZeroAlloc|TestIngestBatchZeroAlloc' ./internal/flowtable

# Live dashboard smoke: run a traced campaign with the debug endpoint on an
# ephemeral port and scrape /debug/campaign and /debug/traces mid-scan —
# both must answer 200 with a non-empty rolling window / trace list.
echo "== live dashboard smoke"
"$tmp/spinscan" -scale 20000 -engine emulated -workers 2 -progress 0 \
    -trace -debug-addr 127.0.0.1:0 >/dev/null 2>"$tmp/dash.log" &
dash_pid=$!
dash_addr=""
i=0
while [ -z "$dash_addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "debug endpoint never announced itself:" >&2
        cat "$tmp/dash.log" >&2
        exit 1
    fi
    dash_addr=$(sed -n 's|.*debug endpoint on http://\([^ ]*\).*|\1|p' "$tmp/dash.log" | head -1)
    [ -n "$dash_addr" ] || sleep 0.05
done
dash_ok=0
i=0
while [ "$i" -lt 200 ] && kill -0 "$dash_pid" 2>/dev/null; do
    i=$((i + 1))
    code=$(curl -s -o "$tmp/campaign.json" -w '%{http_code}' \
        "http://$dash_addr/debug/campaign?format=json" || true)
    # A non-empty open window proves the dashboard is fed mid-scan.
    if [ "$code" = 200 ] && grep -q '"domains": [1-9]' "$tmp/campaign.json"; then
        dash_ok=1
        break
    fi
    sleep 0.05
done
if [ "$dash_ok" != 1 ]; then
    echo "/debug/campaign never served a non-empty window" >&2
    exit 1
fi
trace_code=$(curl -s -o "$tmp/traces.json" -w '%{http_code}' "http://$dash_addr/debug/traces" || true)
if [ "$trace_code" != 200 ] || ! grep -q '"domain"' "$tmp/traces.json"; then
    echo "/debug/traces did not serve traces (status $trace_code)" >&2
    exit 1
fi
kill "$dash_pid" 2>/dev/null || true
wait "$dash_pid" 2>/dev/null || true

# Spinwatch service smoke: run the passive observer against an emulated
# netem tap mid-campaign, curl its flow telemetry until the table reports
# spin-RTT samples, then SIGTERM it and require the graceful-drain exit
# code 143 (matching the follow-mode contract).
echo "== spinwatch service smoke"
go build -o "$tmp/spinwatch" ./cmd/spinwatch
"$tmp/spinwatch" -debug-addr 127.0.0.1:0 -seed 11 -clients 4 -servers 2 \
    >/dev/null 2>"$tmp/watch.log" &
watch_pid=$!
watch_addr=""
i=0
while [ -z "$watch_addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "spinwatch debug endpoint never announced itself:" >&2
        cat "$tmp/watch.log" >&2
        exit 1
    fi
    watch_addr=$(sed -n 's|.*debug endpoint on http://\([^ ]*\).*|\1|p' "$tmp/watch.log" | head -1)
    [ -n "$watch_addr" ] || sleep 0.05
done
watch_ok=0
i=0
while [ "$i" -lt 200 ] && kill -0 "$watch_pid" 2>/dev/null; do
    i=$((i + 1))
    code=$(curl -s -o "$tmp/flows.json" -w '%{http_code}' \
        "http://$watch_addr/debug/flows?format=json" || true)
    # Non-zero samples prove the tap feeds the flow table mid-campaign.
    if [ "$code" = 200 ] && grep -q '"Samples": [1-9]' "$tmp/flows.json"; then
        watch_ok=1
        break
    fi
    sleep 0.05
done
if [ "$watch_ok" != 1 ]; then
    echo "/debug/flows never reported spin-RTT samples" >&2
    cat "$tmp/watch.log" >&2
    exit 1
fi
ready_code=$(curl -s -o /dev/null -w '%{http_code}' "http://$watch_addr/readyz" || true)
if [ "$ready_code" != 200 ]; then
    echo "/readyz returned $ready_code with flows active, want 200" >&2
    exit 1
fi
kill -TERM "$watch_pid" 2>/dev/null || true
watch_rc=0
wait "$watch_pid" || watch_rc=$?
if [ "$watch_rc" != 143 ]; then
    echo "spinwatch SIGTERM exit $watch_rc, want 143:" >&2
    cat "$tmp/watch.log" >&2
    exit 1
fi

echo "OK"
