#!/bin/sh
# Pre-PR gate: formatting, vet, build, the full test suite under the race
# detector with shuffled test order, and a short fuzz smoke over every
# native fuzz target. Run from the repository root:
#
#   ./scripts/check.sh
#
# CI and reviewers expect every PR to pass this unchanged.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

# Native Go fuzzing needs no build tags, so `go vet ./...` above already
# covers the fuzz harnesses; here each target gets a short guided run
# beyond its seed corpus (which plain `go test` replays as unit tests).
fuzz_smoke() {
    pkg=$1
    target=$2
    echo "== go test -fuzz=$target -fuzztime=5s $pkg"
    go test -run='^$' -fuzz="^${target}\$" -fuzztime=5s "$pkg"
}
fuzz_smoke ./internal/wire FuzzVarint
fuzz_smoke ./internal/wire FuzzShortHeader
fuzz_smoke ./internal/wire FuzzLongHeader
fuzz_smoke ./internal/qlog FuzzQlogParse
fuzz_smoke ./internal/h3 FuzzH3Request

echo "OK"
