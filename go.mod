module quicspin

go 1.23
