// Campaign: a miniature version of the paper's weekly measurement — it
// generates a synthetic web at 1/20000 of the paper's population, scans
// it over fully emulated QUIC-lite connections, and prints the Table 1 /
// Table 2 / Table 3 views plus the Fig. 4 accuracy summary.
package main

import (
	"fmt"
	"log"
	"os"

	"quicspin/internal/analysis"
	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

func main() {
	prof := websim.DefaultProfile()
	prof.Scale = 20000 // ~11k domains: finishes in a couple of seconds
	fmt.Printf("generating a 1/%d-scale synthetic web...\n", prof.Scale)
	world := websim.Generate(prof)
	fmt.Printf("  %d domains, %d server IPs, %d organisations\n\n",
		len(world.Domains), len(world.Servers()), len(world.Orgs))

	res, err := scanner.Run(world, scanner.Config{
		Week:   prof.Weeks,
		Engine: scanner.EngineEmulated,
		Seed:   1,
	})
	must(err)
	wk := analysis.Analyze(res)

	must(analysis.RenderOverview(wk).Render(os.Stdout))
	fmt.Println()
	must(analysis.RenderOrgTable(wk, world.ASDB(), 8).Render(os.Stdout))
	fmt.Println()
	must(analysis.RenderSpinConfig(wk).Render(os.Stdout))
	fmt.Println()

	h := analysis.Headlines([]*analysis.Week{wk})
	fmt.Printf("RTT accuracy over %d spinning connections (paper §5.2):\n", h.N)
	fmt.Printf("  overestimating the stack RTT:   %5.1f%%  (paper: 97.7%%)\n", h.OverestimateShare*100)
	fmt.Printf("  within 25%% of the stack RTT:    %5.1f%%  (paper: 30.5%%)\n", h.Within25pct*100)
	fmt.Printf("  within a factor of 2:           %5.1f%%  (paper: 36.0%%)\n", h.Within2x*100)
	fmt.Printf("  overestimating by >3x:          %5.1f%%  (paper: 51.7%%)\n", h.Over3x*100)
	fmt.Println("\nNote: at this small scale the per-organisation rows are noisy;")
	fmt.Println("run cmd/spinscan with -scale 2000 for the calibrated reproduction.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
