// Observer: demonstrates the failure mode of Fig. 1b — packet reordering
// around spin edges producing bogus ultra-short RTT samples — and the
// defences: the packet-number guard, RFC 9312 threshold heuristics, and
// the Valid Edge Counter of De Vaere et al.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"quicspin/internal/core"
)

func main() {
	// Build a synthetic received-packet series: a clean 100 ms spin wave
	// with 20 cycles, then inject reordering: some packets adjacent to
	// edges are delayed past the edge.
	rng := rand.New(rand.NewSource(3))
	obs := makeWave(100*time.Millisecond, 20, 8)
	reordered := injectReordering(rng, obs, 0.10, 70*time.Millisecond)

	fmt.Println("A 100 ms spin wave observed through a reordering path:")
	fmt.Println()
	configs := []struct {
		name string
		cfg  core.ObserverConfig
	}{
		{"raw observer", core.ObserverConfig{}},
		{"+ packet-number guard", core.ObserverConfig{UsePacketNumberGuard: true}},
		{"+ static 10ms threshold", core.ObserverConfig{Filter: core.StaticThreshold{Min: 10 * time.Millisecond}}},
		{"+ relative filter (10% of median)", core.ObserverConfig{Filter: &core.RelativeFilter{Fraction: 0.1, WarmUp: 3}}},
	}
	for _, c := range configs {
		o := core.NewObserver(c.cfg)
		for _, ob := range reordered {
			o.Observe(core.ServerToClient, ob)
		}
		valid := o.ValidSamples()
		var sum time.Duration
		bogus := 0
		for _, s := range valid {
			sum += s.RTT
			if s.RTT < 50*time.Millisecond {
				bogus++
			}
		}
		mean := time.Duration(0)
		if len(valid) > 0 {
			mean = sum / time.Duration(len(valid))
		}
		fmt.Printf("%-35s samples=%2d mean=%8v bogus(<50ms)=%d\n", c.name, len(valid), mean.Round(time.Millisecond), bogus)
	}

	fmt.Println()
	fmt.Println("With the Valid Edge Counter, invalid edges are marked by the endpoints")
	fmt.Println("themselves, so the observer can reject them without heuristics:")
	vecObs := makeVECWave(100*time.Millisecond, 20, 8)
	vecReordered := injectReordering(rng, vecObs, 0.10, 70*time.Millisecond)
	// Reordered packets arrive late; their VEC no longer matches an edge
	// position, so mark edges created by late packets as invalid.
	o := core.NewObserver(core.ObserverConfig{UseVEC: true})
	for _, ob := range vecReordered {
		o.Observe(core.ServerToClient, ob)
	}
	valid := o.ValidSamples()
	var sum time.Duration
	for _, s := range valid {
		sum += s.RTT
	}
	if len(valid) > 0 {
		fmt.Printf("%-35s samples=%2d mean=%8v\n", "VEC-validated observer",
			len(valid), (sum / time.Duration(len(valid))).Round(time.Millisecond))
	}
}

// makeWave builds a clean square wave: pktsPerCycle packets per half-wave.
func makeWave(period time.Duration, cycles, pktsPerCycle int) []core.Observation {
	t0 := time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)
	var obs []core.Observation
	pn := uint64(0)
	for c := 0; c < cycles; c++ {
		for p := 0; p < pktsPerCycle; p++ {
			at := t0.Add(time.Duration(c)*period + time.Duration(p)*period/time.Duration(pktsPerCycle+2))
			obs = append(obs, core.Observation{T: at, PN: pn, Spin: c%2 == 1})
			pn++
		}
	}
	return obs
}

// makeVECWave marks the first packet of each half-wave as a fully valid
// edge, like a spin-capable sender running the three-bit extension.
func makeVECWave(period time.Duration, cycles, pktsPerCycle int) []core.Observation {
	obs := makeWave(period, cycles, pktsPerCycle)
	for i := range obs {
		if i%pktsPerCycle == 0 {
			obs[i].VEC = core.VECFullyValid
		}
	}
	return obs
}

// injectReordering delays a fraction of packets, letting later packets
// overtake them — spin values then flip back and forth near edges.
func injectReordering(rng *rand.Rand, obs []core.Observation, rate float64, extra time.Duration) []core.Observation {
	out := make([]core.Observation, len(obs))
	copy(out, obs)
	for i := range out {
		if rng.Float64() < rate {
			out[i].T = out[i].T.Add(extra)
			if out[i].VEC == core.VECFullyValid {
				// A delayed edge packet no longer marks a valid edge.
				out[i].VEC = core.VECEdgeUnverified
			}
		}
	}
	// Re-sort by arrival time to model the receive order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].T.Before(out[j-1].T); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
