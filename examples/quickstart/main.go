// Quickstart: a spinning QUIC-lite client/server pair over an emulated
// 80 ms path, with a passive on-path observer measuring the connection's
// RTT from nothing but the spin bit — the mechanism of Fig. 1a of the
// paper. Everything runs in virtual time, so this finishes instantly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

func main() {
	loop := sim.NewLoop(time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC))
	rng := rand.New(rand.NewSource(42))
	path := netem.PathConfig{Delay: 40 * time.Millisecond} // RTT = 80 ms
	network := netem.New(loop, path, rng)

	// Passive on-path observer: it sees only short-header first bytes.
	observer := core.NewObserver(core.ObserverConfig{})
	network.SetTap(func(now time.Time, from, to string, data []byte) {
		if wire.IsLongHeader(data[0]) {
			return // handshake packets carry no spin bit
		}
		dir := core.ClientToServer
		if from == "server" {
			dir = core.ServerToClient
		}
		spin := data[0]&wire.SpinBitMask != 0
		if s, ok := observer.Observe(dir, core.Observation{T: now, Spin: spin}); ok {
			fmt.Printf("  observer: spin edge → RTT sample %v (%s)\n", s.RTT, dirName(dir))
		}
	})

	// Server: HTTP/3-lite, spins the bit like a LiteSpeed deployment.
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng, SpinPolicy: core.Policy{Mode: core.ModeSpin}}
	})
	h3srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{
			Status:  200,
			Headers: map[string]string{"server": "quicspin-example"},
			Body:    make([]byte, 60000), // multi-packet body → spin wave
		}
	})
	server := netem.NewServerHost(network, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			h3srv.Serve("client", conn, now)
		}
	}

	// Client: request the page and wait for it.
	conn := transport.NewClientConn(transport.Config{Rng: rng}, loop.Now())
	hc := h3.NewClientConn(conn)
	reqID, err := hc.Do(&h3.Request{Method: "GET", Authority: "www.example.com", Path: "/", Headers: map[string]string{}})
	if err != nil {
		log.Fatal(err)
	}
	client := netem.NewClientHost(network, "client", "server", conn)
	done := false
	client.OnActivity = func(c *transport.Conn, now time.Time) {
		if _, complete, _ := hc.Response(reqID); complete && !done {
			done = true
			c.Close(now, 0, "done")
		}
	}

	fmt.Println("connecting over an emulated 80 ms path...")
	client.Kick()
	loop.RunUntil(loop.Now().Add(time.Minute))

	fmt.Println("\n=== results ===")
	fmt.Printf("handshake confirmed: %v\n", conn.HandshakeConfirmed())
	fmt.Printf("stack estimator:     smoothed=%v min=%v\n", conn.RTT().Smoothed(), conn.RTT().Min())
	for _, dir := range []core.Direction{core.ClientToServer, core.ServerToClient} {
		if m := observer.MeanRTT(dir); m > 0 {
			fmt.Printf("observer (%s):  mean spin RTT = %v\n", dirName(dir), m)
		}
	}
	fmt.Printf("observer samples:    %d\n", len(observer.Samples()))
	fmt.Println("\nThe observer recovered the RTT without decrypting anything —")
	fmt.Println("that is the spin bit doing its job.")
}

func dirName(d core.Direction) string {
	if d == core.ClientToServer {
		return "client→server"
	}
	return "server→client"
}
