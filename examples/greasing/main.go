// Greasing: runs one connection against servers deploying each spin
// policy the paper distinguishes (Table 3) — spinning, all-zero, all-one,
// per-packet greasing and per-connection greasing — and shows how the
// client-side classification plus the grease filter (§3.3) tells them
// apart.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/netem"
	"quicspin/internal/scanner"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
)

func main() {
	fmt.Println("policy            observed series      classification  spin-RTT samples")
	fmt.Println("--------------------------------------------------------------------")
	for _, mode := range []core.Mode{
		core.ModeSpin, core.ModeZero, core.ModeOne,
		core.ModeGreasePerPacket, core.ModeGreasePerConn,
	} {
		conn := runOnce(core.Policy{Mode: mode})
		obs := conn.Observations()
		series := renderSeries(obs, 18)

		// Classify exactly like the measurement pipeline.
		cr := &scanner.ConnResult{QUIC: true}
		for _, o := range obs {
			if o.Spin {
				cr.OnePkts++
			} else {
				cr.ZeroPkts++
			}
		}
		cr.Observations = obs
		cr.StackRTTs = conn.RTT().Samples()
		a := analysis.AnalyzeConn(cr)
		fmt.Printf("%-17s %-20s %-15s %d\n", mode, series, a.Class, len(a.SpinRTTsR))
	}
	fmt.Println("\nPer-packet greasing produces implausibly short spin cycles, which is")
	fmt.Println("what the grease filter keys on: any spin estimate below the stack's")
	fmt.Println("minimum RTT marks the connection as greased.")
}

// runOnce performs one request/response against a server with the policy.
func runOnce(policy core.Policy) *transport.Conn {
	loop := sim.NewLoop(time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC))
	rng := rand.New(rand.NewSource(7))
	network := netem.New(loop, netem.PathConfig{Delay: 30 * time.Millisecond}, rng)

	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng, SpinPolicy: policy}
	})
	h3srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{Status: 200, Headers: map[string]string{"server": "example"}, Body: make([]byte, 50000)}
	})
	server := netem.NewServerHost(network, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			h3srv.Serve("client", conn, now)
		}
	}

	conn := transport.NewClientConn(transport.Config{Rng: rng}, loop.Now())
	hc := h3.NewClientConn(conn)
	id, _ := hc.Do(&h3.Request{Method: "GET", Authority: "www.example.com", Path: "/", Headers: map[string]string{}})
	client := netem.NewClientHost(network, "client", "server", conn)
	done := false
	client.OnActivity = func(c *transport.Conn, now time.Time) {
		if _, complete, _ := hc.Response(id); complete && !done {
			done = true
			c.Close(now, 0, "done")
		}
	}
	client.Kick()
	loop.RunUntil(loop.Now().Add(time.Minute))
	return conn
}

func renderSeries(obs []core.Observation, max int) string {
	s := ""
	for i, o := range obs {
		if i == max {
			s += "…"
			break
		}
		if o.Spin {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}
