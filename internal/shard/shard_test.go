package shard

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/websim"
)

// fixWorld is a small seeded world shared across the package's tests
// (~1k domains — big enough for 8 non-trivial shards, small enough that
// every test re-scans it in milliseconds on the fast engine).
var (
	fixOnce  sync.Once
	fixState *websim.World
)

func fixture(t *testing.T) *websim.World {
	t.Helper()
	fixOnce.Do(func() {
		p := websim.DefaultProfile()
		p.Scale = 200_000
		fixState = websim.Generate(p)
	})
	return fixState
}

// renderCampaign renders everything the distributed path must reproduce
// byte-for-byte: Tables 1–5 per week, the Fig. 2 longitudinal histogram,
// and the Fig. 3/4 accuracy reports.
func renderCampaign(c *analysis.CampaignAccumulator) string {
	var b strings.Builder
	b.WriteString(analysis.RenderLongitudinal(c.Longitudinal()).String())
	b.WriteString(c.RenderAccuracy(3))
	b.WriteString(c.RenderAccuracy(4))
	for _, a := range c.Weeks() {
		b.WriteString(a.RenderOverview().String())
		b.WriteString(a.RenderOrgTable(8).String())
		b.WriteString(a.RenderSpinConfig().String())
		b.WriteString(a.RenderSoftwareTable().String())
		b.WriteString(a.RenderErrorClasses().String())
	}
	return b.String()
}

func baseConfig(engine scanner.Engine, workers int) func(week int) scanner.Config {
	return func(week int) scanner.Config {
		return scanner.Config{Engine: engine, Seed: 7, Workers: workers}
	}
}

func TestPlan(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []Range
	}{
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{9, 3, []Range{{0, 3}, {3, 6}, {6, 9}}},
		{5, 1, []Range{{0, 5}}},
		{2, 4, []Range{{0, 1}, {1, 2}, {2, 2}, {2, 2}}},
		{0, 2, []Range{{0, 0}, {0, 0}}},
		{7, 0, []Range{{0, 7}}}, // shard count clamps to 1
	}
	for _, c := range cases {
		got := Plan(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Errorf("Plan(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Plan(%d, %d)[%d] = %v, want %v", c.n, c.shards, i, got[i], c.want[i])
			}
		}
		// The slices must tile [0, n) exactly.
		prev := 0
		for _, r := range got {
			if r.Start != prev || r.End < r.Start {
				t.Errorf("Plan(%d, %d) does not tile the population: %v", c.n, c.shards, got)
			}
			prev = r.End
		}
		if prev != c.n {
			t.Errorf("Plan(%d, %d) covers [0, %d), want [0, %d)", c.n, c.shards, prev, c.n)
		}
	}
}

func TestParseTransport(t *testing.T) {
	for _, tr := range []Transport{TransportInProc, TransportSerialized, TransportUDP} {
		got, err := ParseTransport(tr.String())
		if err != nil || got != tr {
			t.Errorf("ParseTransport(%q) = %v, %v", tr.String(), got, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Error("ParseTransport accepted an unknown transport")
	}
	if s := Transport(42).String(); s != "Transport(42)" {
		t.Errorf("Transport(42).String() = %q", s)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 1)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Shards: 0, Weeks: []int{1}, ForWeek: ok.ForWeek},
		{Shards: 1, ForWeek: ok.ForWeek},
		{Shards: 1, Weeks: []int{1}},
		{Shards: 1, Weeks: []int{1}, ForWeek: ok.ForWeek, Transport: Transport(9)},
		{Shards: 1, Weeks: []int{1}, ForWeek: ok.ForWeek, Resume: true},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
		if _, err := Run(fixture(t), c); err == nil {
			t.Errorf("Run accepted bad config %d", i)
		}
	}
}

// TestRunTransports runs the same sharded campaign over every transport and
// requires identical rendered output — the wire format and the UDP exchange
// are pure plumbing.
func TestRunTransports(t *testing.T) {
	w := fixture(t)
	var golden string
	for _, tr := range []Transport{TransportInProc, TransportSerialized, TransportUDP} {
		res, err := Run(w, Config{
			Shards:    3,
			Weeks:     []int{1, 2},
			ForWeek:   baseConfig(scanner.EngineFast, 2),
			Transport: tr,
		})
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if res.Shards != 3 || len(res.Vantages) != 1 {
			t.Fatalf("%v: unexpected result shape: %d shards, %d vantages", tr, res.Shards, len(res.Vantages))
		}
		got := renderCampaign(res.Vantages[0].Campaign)
		if golden == "" {
			golden = got
			continue
		}
		if got != golden {
			t.Errorf("%v: rendered campaign differs from inproc", tr)
		}
	}
}

// TestMultiVantage runs two vantage points — baseline and one behind extra
// path delay/jitter — and checks the agreement table: both vantages see the
// same population, and the spin verdict distribution should barely move.
func TestMultiVantage(t *testing.T) {
	w := fixture(t)
	tm := telemetry.New()
	live := analysis.NewLive(100, 4)
	res, err := Run(w, Config{
		Shards: 2,
		Weeks:  []int{3},
		Vantages: []scanner.Vantage{
			{},
			{Name: "far", ExtraDelay: 30 * time.Millisecond, ExtraJitter: 5 * time.Millisecond},
		},
		ForWeek:   baseConfig(scanner.EngineFast, 2),
		Telemetry: tm,
		Live:      live,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vantages) != 2 {
		t.Fatalf("got %d vantage results, want 2", len(res.Vantages))
	}
	table := RenderAgreement(res).String()
	for _, want := range []string{"baseline", "far", "Agreement", "100.0%"} {
		if !strings.Contains(table, want) {
			t.Errorf("agreement table missing %q:\n%s", want, table)
		}
	}
	// Both vantages scanned every QUIC domain; the far vantage only adds
	// path latency, so its verdict distribution stays close to baseline.
	base := vantageDist(res.Vantages[0].Campaign)
	far := vantageDist(res.Vantages[1].Campaign)
	if base.QUICDomains == 0 || far.QUICDomains != base.QUICDomains {
		t.Errorf("vantages saw different QUIC populations: %d vs %d", base.QUICDomains, far.QUICDomains)
	}
	if ag := agreement(base, far); ag < 0.95 {
		t.Errorf("cross-vantage agreement %.3f below 0.95", ag)
	}
	// The coordinator gauges reflect the campaign shape.
	if g := tm.Gauge("shard_count").Value(); g != 2 {
		t.Errorf("shard_count gauge = %d, want 2", g)
	}
	if g := tm.Gauge("vantage_count").Value(); g != 2 {
		t.Errorf("vantage_count gauge = %d, want 2", g)
	}
	if c := tm.Counter(telemetry.Name("shard_domains_total", "shard", "0")).Value(); c == 0 {
		t.Error("per-shard progress counter never incremented")
	}
	snap := live.Snapshot()
	if snap.Shards != 2 {
		t.Errorf("dashboard saw %d shards, want 2", snap.Shards)
	}
	if snap.Vantage != "far" {
		t.Errorf("dashboard vantage = %q, want far (the last one scanned)", snap.Vantage)
	}
	if snap.Totals.Domains != 2*w.NumDomains() {
		t.Errorf("dashboard totals %d domains, want %d", snap.Totals.Domains, 2*w.NumDomains())
	}
}

func TestAgreementMath(t *testing.T) {
	a := analysis.ConfigRow{QUICDomains: 10, Spin: 8, None: 2}
	if got := agreement(a, a); got != 1 {
		t.Errorf("agreement(a, a) = %v, want 1", got)
	}
	b := analysis.ConfigRow{QUICDomains: 10, Spin: 6, None: 4}
	if got := agreement(a, b); got < 0.79 || got > 0.81 {
		t.Errorf("agreement = %v, want 0.8", got)
	}
	if got := agreement(a, analysis.ConfigRow{}); got != 1 {
		t.Errorf("agreement with empty row = %v, want 1", got)
	}
	if tbl := RenderAgreement(&Result{}).String(); !strings.Contains(tbl, "Vantage") {
		t.Errorf("empty agreement table lost its header:\n%s", tbl)
	}
}

// TestInterruptAndResume interrupts every shard mid-campaign, then resumes
// from the per-shard journals and requires the rendered campaign to be
// byte-identical to an uninterrupted run — the distributed version of the
// scanner's checkpoint contract.
func TestInterruptAndResume(t *testing.T) {
	w := fixture(t)
	weeks := []int{1, 2}
	golden, err := Run(w, Config{Shards: 4, Weeks: weeks, ForWeek: baseConfig(scanner.EngineFast, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := t.TempDir()
	interrupted := func(week int) scanner.Config {
		sc := baseConfig(scanner.EngineFast, 2)(week)
		sc.InterruptAfter = 40 // per shard, per week: dies mid-population
		return sc
	}
	res, err := Run(w, Config{Shards: 4, Weeks: weeks, ForWeek: interrupted, Checkpoint: ckpt})
	if !errors.Is(err, scanner.ErrInterrupted) {
		t.Fatalf("interrupted campaign returned %v, want ErrInterrupted", err)
	}
	if res == nil || len(res.Vantages) != 1 || res.Vantages[0].Campaign == nil {
		t.Fatal("interrupted campaign returned no partial result")
	}
	if partial := res.Vantages[0].Campaign.Weeks(); len(partial) == 0 {
		t.Fatal("partial campaign has no weeks")
	}
	resumed, err := Run(w, Config{
		Shards: 4, Weeks: weeks, ForWeek: baseConfig(scanner.EngineFast, 2),
		Checkpoint: ckpt, Resume: true, Transport: TransportSerialized,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderCampaign(resumed.Vantages[0].Campaign), renderCampaign(golden.Vantages[0].Campaign); got != want {
		t.Error("resumed campaign differs from the uninterrupted reference")
	}
}

func TestVantageNaming(t *testing.T) {
	cases := []struct {
		v         scanner.Vantage
		vi        int
		label, di string
	}{
		{scanner.Vantage{}, 0, "baseline", "baseline"},
		{scanner.Vantage{}, 2, "vantage-2", "vantage-2"},
		{scanner.Vantage{Name: "eu-west"}, 1, "eu-west", "eu-west"},
		{scanner.Vantage{Name: "eu west/1"}, 1, "eu west/1", "vantage-1"},
		{scanner.Vantage{ExtraDelay: time.Millisecond}, 0, "vantage-0", "vantage-0"},
	}
	for _, c := range cases {
		if got := vantageLabel(c.v, c.vi); got != c.label {
			t.Errorf("vantageLabel(%+v, %d) = %q, want %q", c.v, c.vi, got, c.label)
		}
		if got := vantageDir(c.v, c.vi); got != c.di {
			t.Errorf("vantageDir(%+v, %d) = %q, want %q", c.v, c.vi, got, c.di)
		}
	}
}
