package shard

import (
	"testing"
	"time"

	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/udprun"
	"quicspin/internal/websim"
)

// TestShardFaultDeterminism is the PR's headline proof: a campaign run
// under transient fault injection — scripted worker crashes recovered by
// the supervisor, plus datagram drop/duplication/corruption/reordering on
// the UDP accumulator exchange — renders Tables 1–5 and Figs. 2–4
// byte-identical to a fault-free run, for 2 and 8 shards and both scan
// engines. Fault tolerance must be output-neutral: recovery changes how
// long the campaign takes, never what it measures.
func TestShardFaultDeterminism(t *testing.T) {
	engines := []struct {
		name   string
		engine scanner.Engine
		scale  int
	}{
		// Larger scale = smaller population; the emulated engine scans
		// ~2k domains per campaign, the fast engine ~11k.
		{"fast", scanner.EngineFast, 20_000},
		{"emulated", scanner.EngineEmulated, 100_000},
	}
	plan := &FaultPlan{
		Transport: udprun.FaultConfig{Seed: 3, Drop: 0.08, Dup: 0.08, Corrupt: 0.04, Delay: 0.08, MaxDelay: 3 * time.Millisecond},
		Crashes: []CrashSpec{
			{Vantage: -1, Shard: 1, After: 25, Kind: "error"},
			{Vantage: -1, Shard: 0, After: 40, Times: 2, Kind: "panic"},
		},
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			p := websim.DefaultProfile()
			p.Scale = eng.scale
			w := websim.Generate(p)
			forWeek := func(week int) scanner.Config {
				return scanner.Config{Engine: eng.engine, Seed: 11, Workers: 4}
			}
			clean, err := Run(w, Config{
				Shards: 2, Weeks: []int{1, 3}, ForWeek: forWeek,
				Transport: TransportUDP,
			})
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			golden := renderCampaign(clean.Vantages[0].Campaign)
			for _, shards := range []int{2, 8} {
				tm := telemetry.New()
				cfg := Config{
					Shards: shards, Weeks: []int{1, 3}, ForWeek: forWeek,
					Transport: TransportUDP, Telemetry: tm,
					MaxRestarts: 2, RestartBackoff: fastBackoff,
					Faults: plan,
				}
				// The 2-shard run recovers restarts from checkpoint
				// journals; the 8-shard run rescans from scratch — both
				// recovery paths must land on the same bytes.
				if shards == 2 {
					cfg.Checkpoint = t.TempDir()
				}
				res, err := Run(w, cfg)
				if err != nil {
					t.Fatalf("shards=%d faulted run: %v", shards, err)
				}
				cov := res.Vantages[0].Coverage
				if !cov.Complete() {
					t.Fatalf("shards=%d: transient faults lost shards: %+v", shards, cov)
				}
				// The faults must actually have fired, or this test proves
				// nothing: both scripted crashes recover (3 restarts total).
				if c := tm.Counter("shard_restarts_total").Value(); c != 3 {
					t.Errorf("shards=%d: shard_restarts_total = %d, want 3", shards, c)
				}
				if got := renderCampaign(res.Vantages[0].Campaign); got != golden {
					t.Errorf("shards=%d: faulted campaign differs from the fault-free reference", shards)
				}
			}
		})
	}
}
