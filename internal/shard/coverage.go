package shard

import (
	"fmt"
	"strconv"
	"strings"

	"quicspin/internal/report"
)

// ShardState classifies one shard's supervision outcome.
type ShardState int

const (
	// ShardOK means the shard's first attempt completed.
	ShardOK ShardState = iota
	// ShardRecovered means the shard crashed or stalled at least once but
	// a supervised restart completed it — by construction with the same
	// results an undisturbed run would have produced.
	ShardRecovered
	// ShardLost means the shard kept failing past its restart budget (or
	// its accumulator could not be delivered); its range is missing from
	// the merged tables.
	ShardLost
)

func (s ShardState) String() string {
	switch s {
	case ShardOK:
		return "ok"
	case ShardRecovered:
		return "recovered"
	case ShardLost:
		return "lost"
	default:
		return fmt.Sprintf("ShardState(%d)", int(s))
	}
}

// ShardStatus is one shard's supervision record.
type ShardStatus struct {
	Shard    int
	Range    Range
	State    ShardState
	Restarts int
	// Faults describes every fault the supervisor absorbed (or gave up
	// on), oldest first.
	Faults []string
	// Err is the interrupt error for interrupted shards and the terminal
	// fault for lost ones; nil for shards that completed.
	Err error
}

// Coverage is the degraded-merge accounting for one vantage: exactly
// which part of the population the merged tables describe. A campaign
// with no lost shards has Complete coverage; the coordinator only
// produces partial coverage instead of failing when StrictShards is off.
type Coverage struct {
	// TotalDomains is the vantage's full population size.
	TotalDomains int
	// CoveredDomains counts population indices inside surviving shards.
	CoveredDomains int
	// Missing lists the population ranges of lost shards, ascending and
	// coalesced (adjacent lost shards merge into one range).
	Missing []Range
	// Shards records every shard's supervision outcome, in shard order.
	Shards []ShardStatus
}

// Complete reports whether every shard survived.
func (c Coverage) Complete() bool { return len(c.Missing) == 0 }

// Fraction is the covered share of the population (1 for an empty
// population).
func (c Coverage) Fraction() float64 {
	if c.TotalDomains == 0 {
		return 1
	}
	return float64(c.CoveredDomains) / float64(c.TotalDomains)
}

// Confidence renders the per-table annotation for degraded output: which
// share of the population the named table reflects and what is missing.
// Empty for complete coverage — complete tables need no caveat.
func (c Coverage) Confidence(table string) string {
	if c.Complete() {
		return ""
	}
	var ranges []string
	for _, r := range c.Missing {
		ranges = append(ranges, fmt.Sprintf("[%d,%d)", r.Start, r.End))
	}
	return fmt.Sprintf("%s: %.1f%% of the population covered (%d of %d domains; missing %s)",
		table, 100*c.Fraction(), c.CoveredDomains, c.TotalDomains, strings.Join(ranges, " "))
}

// RenderCoverage renders the supervision report: one row per shard with
// its state, restart count and faults, plus a coverage summary row.
func RenderCoverage(c Coverage) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Shard supervision — %d of %d domains covered (%.1f%%)",
			c.CoveredDomains, c.TotalDomains, 100*c.Fraction()),
		"Shard", "Range", "State", "Restarts", "Faults")
	for _, st := range c.Shards {
		faults := strings.Join(st.Faults, "; ")
		if faults == "" {
			faults = "-"
		}
		t.AddRow(strconv.Itoa(st.Shard),
			fmt.Sprintf("[%d,%d)", st.Range.Start, st.Range.End),
			st.State.String(), strconv.Itoa(st.Restarts), faults)
	}
	return t
}

// buildCoverage derives the vantage's coverage accounting from the
// supervision records: lost shards' ranges become the missing set.
func buildCoverage(total int, statuses []ShardStatus) Coverage {
	cov := Coverage{TotalDomains: total, CoveredDomains: total, Shards: statuses}
	for _, st := range statuses {
		if st.State != ShardLost || st.Range.End <= st.Range.Start {
			continue
		}
		cov.CoveredDomains -= st.Range.End - st.Range.Start
		if n := len(cov.Missing); n > 0 && cov.Missing[n-1].End == st.Range.Start {
			cov.Missing[n-1].End = st.Range.End
			continue
		}
		cov.Missing = append(cov.Missing, st.Range)
	}
	return cov
}
