package shard

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorRoundTrip(t *testing.T) {
	const want = 3
	col, err := NewCollector(want)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	blobs := make([][]byte, want)
	for i := range blobs {
		blobs[i] = bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
	}
	var wg sync.WaitGroup
	for i := range blobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := col.Submit(i, blobs[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, err := col.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("collector holds %d blobs, want %d", len(got), want)
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Errorf("shard %d blob mangled: %d bytes, want %d", i, len(got[i]), len(blobs[i]))
		}
	}
}

// TestCollectorDuplicate checks that a resubmitted shard is acked (the
// worker must not hang) while the first blob wins.
func TestCollectorDuplicate(t *testing.T) {
	col, err := NewCollector(2)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if err := col.Submit(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := col.Submit(0, []byte("second")); err != nil {
		t.Fatalf("duplicate submission not acked: %v", err)
	}
	if err := col.Submit(1, []byte("other")); err != nil {
		t.Fatal(err)
	}
	got, err := col.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "first" {
		t.Errorf("duplicate overwrote shard 0: %q", got[0])
	}
}

// TestCollectorTimeout pins the missing-shard diagnostic: a malformed
// submission is acked but never recorded, so Wait reports the shortfall.
func TestCollectorTimeout(t *testing.T) {
	col, err := NewCollector(2)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if err := col.Submit(0, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Shard index 7 is out of range for want=2: acked, dropped.
	if err := col.Submit(7, []byte("bad")); err != nil {
		t.Fatalf("out-of-range submission not acked: %v", err)
	}
	_, err = col.Wait(200 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "1 of 2") {
		t.Errorf("Wait = %v, want timeout naming 1 of 2 accumulators", err)
	}
}

func TestCollectorZeroShards(t *testing.T) {
	col, err := NewCollector(0)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	got, err := col.Wait(time.Second)
	if err != nil || len(got) != 0 {
		t.Errorf("Wait = %v, %v; want empty map", got, err)
	}
}

func TestParseSubmission(t *testing.T) {
	payload := append(binary.AppendUvarint(nil, 1), 'x', 'y')
	shard, blob, err := parseSubmission(payload, 2)
	if err != nil || shard != 1 || string(blob) != "xy" {
		t.Errorf("parseSubmission = %d, %q, %v", shard, blob, err)
	}
	for _, bad := range [][]byte{
		{},                           // no header
		binary.AppendUvarint(nil, 5), // shard out of range for want=2
		{0x80},                       // truncated varint
	} {
		if _, _, err := parseSubmission(bad, 2); err == nil {
			t.Errorf("parseSubmission(%v) accepted", bad)
		}
	}
}

// TestSubmitNoCollector exercises the worker-side failure path: submitting
// to a dead address must time out with a descriptive error, not hang.
func TestSubmitNoCollector(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close() // nothing listens here anymore
	err = Submit(addr, 0, []byte("lost"), 300*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "submit shard 0") {
		t.Errorf("Submit to dead address = %v, want shard-labelled error", err)
	}
	if err := Submit("not-an-address:port", 1, nil, time.Second); err == nil {
		t.Error("Submit accepted an unresolvable address")
	}
}
