package shard

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"quicspin/internal/resilience"
	"quicspin/internal/udprun"
)

func TestCollectorRoundTrip(t *testing.T) {
	const want = 3
	col, err := NewCollector(want, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	blobs := make([][]byte, want)
	for i := range blobs {
		blobs[i] = bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
	}
	var wg sync.WaitGroup
	for i := range blobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := col.Submit(i, blobs[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, err := col.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("collector holds %d blobs, want %d", len(got), want)
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Errorf("shard %d blob mangled: %d bytes, want %d", i, len(got[i]), len(blobs[i]))
		}
	}
	if errs := col.Errors(); len(errs) != 0 {
		t.Errorf("clean round trip recorded decode errors: %v", errs)
	}
}

// TestCollectorDuplicate checks resubmission semantics: a byte-identical
// duplicate is acked silently (idempotent retry), a byte-different one is
// still acked (the worker must not hang) but recorded as a conflict, and
// the first blob wins either way.
func TestCollectorDuplicate(t *testing.T) {
	col, err := NewCollector(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if err := col.Submit(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := col.Submit(0, []byte("first")); err != nil {
		t.Fatalf("identical resubmission not acked: %v", err)
	}
	if errs := col.Errors(); len(errs) != 0 {
		t.Errorf("identical resubmission recorded as conflict: %v", errs)
	}
	if err := col.Submit(0, []byte("second")); err != nil {
		t.Fatalf("conflicting duplicate not acked: %v", err)
	}
	if err := col.Submit(1, []byte("other")); err != nil {
		t.Fatal(err)
	}
	got, err := col.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "first" {
		t.Errorf("duplicate overwrote shard 0: %q", got[0])
	}
	errs := col.Errors()
	if len(errs) != 1 || errs[0].Reason != "conflict" || errs[0].Shard != 0 {
		t.Errorf("conflicting duplicate not recorded: %v", errs)
	}
}

// TestCollectorTimeout pins the missing-shard diagnostic: an out-of-range
// submission is NAK'd and recorded, so the submitting worker learns it was
// rejected and Wait's CollectError names both the shortfall and the cause.
func TestCollectorTimeout(t *testing.T) {
	col, err := NewCollector(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if err := col.Submit(0, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Shard index 7 is out of range for want=2: NAK'd on every attempt.
	err = Submit(col.Addr().String(), 7, []byte("bad"), 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("out-of-range submission = %v, want nak rejection", err)
	}
	var serr *SubmitError
	if !errors.As(err, &serr) || serr.Shard != 7 || serr.Attempts != 1 {
		t.Errorf("out-of-range submission error = %#v, want *SubmitError{Shard: 7, Attempts: 1}", err)
	}
	_, err = col.Wait(200 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("Wait = %v, want timeout naming 1 of 2 accumulators", err)
	}
	var cerr *CollectError
	if !errors.As(err, &cerr) {
		t.Fatalf("Wait error is %T, want *CollectError", err)
	}
	if len(cerr.Missing) != 1 || cerr.Missing[0] != 1 {
		t.Errorf("CollectError.Missing = %v, want [1]", cerr.Missing)
	}
	if len(cerr.Decode) != 1 || cerr.Decode[0].Reason != "shard-range" || cerr.Decode[0].Shard != 7 {
		t.Errorf("CollectError.Decode = %v, want one shard-range rejection for shard 7", cerr.Decode)
	}
}

// TestCollectorAbandon checks that abandoning a lost shard completes Wait
// early with the surviving blobs instead of burning the whole timeout.
func TestCollectorAbandon(t *testing.T) {
	col, err := NewCollector(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if err := col.Submit(0, []byte("zero")); err != nil {
		t.Fatal(err)
	}
	if err := col.Submit(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	col.Abandon(1)
	start := time.Now()
	got, err := col.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Wait took %v despite full coverage", elapsed)
	}
	if len(got) != 2 || got[1] != nil {
		t.Errorf("Wait = %v, want shards 0 and 2 only", got)
	}
}

func TestCollectorZeroShards(t *testing.T) {
	col, err := NewCollector(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	got, err := col.Wait(time.Second)
	if err != nil || len(got) != 0 {
		t.Errorf("Wait = %v, %v; want empty map", got, err)
	}
}

func TestParseSubmission(t *testing.T) {
	shard, blob, derr := parseSubmission(frameSubmission(1, []byte("xy")), 2)
	if derr != nil || shard != 1 || string(blob) != "xy" {
		t.Errorf("parseSubmission = %d, %q, %v", shard, blob, derr)
	}
	cases := []struct {
		name   string
		data   []byte
		reason string
	}{
		{"empty", nil, "header"},
		{"short", []byte{1, 2, 3}, "header"},
		{"unframed", []byte("raw bytes without framing"), "crc"},
		{"shard-range", frameSubmission(5, []byte("x")), "shard-range"},
	}
	for _, tc := range cases {
		_, _, derr := parseSubmission(tc.data, 2)
		if derr == nil || derr.Reason != tc.reason {
			t.Errorf("parseSubmission(%s) = %v, want %s rejection", tc.name, derr, tc.reason)
		}
	}
	// Every single-bit flip anywhere in the frame — header, payload or
	// checksum — must be rejected: the CRC covers the whole frame, so no
	// flip can silently reattribute or mangle a submission.
	frame := frameSubmission(1, []byte("accumulator bytes"))
	for bit := 0; bit < 8*len(frame); bit++ {
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		if s, b, derr := parseSubmission(mut, 2); derr == nil {
			t.Fatalf("bit flip %d accepted: shard %d, %q", bit, s, b)
		}
	}
}

// TestSubmitRetriesHealFaultyTransport pins the hardening claim: with
// aggressive datagram faults on both sides (drop, dup, corrupt, delay),
// retried idempotent submission still delivers every blob intact.
func TestSubmitRetriesHealFaultyTransport(t *testing.T) {
	faults := &udprun.FaultConfig{Seed: 42, Drop: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.1, MaxDelay: 5 * time.Millisecond}
	const want = 4
	col, err := NewCollector(want, faults)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	blobs := make([][]byte, want)
	var wg sync.WaitGroup
	for i := range blobs {
		blobs[i] = bytes.Repeat([]byte{byte('A' + i)}, 512*(i+1))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := SubmitWithPolicy(col.Addr().String(), i, blobs[i], SubmitPolicy{
				MaxAttempts: 5,
				AckTimeout:  2 * time.Second,
				Backoff:     resilience.RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Jitter: -1},
				Faults:      faults,
			})
			if err != nil {
				t.Errorf("submit %d through faulty transport: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, err := col.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Errorf("shard %d blob corrupted in transit: %d bytes, want %d", i, len(got[i]), len(blobs[i]))
		}
	}
}

// TestSubmitNoCollector exercises the worker-side failure path: submitting
// to a dead address must time out with a descriptive error, not hang.
func TestSubmitNoCollector(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close() // nothing listens here anymore
	err = Submit(addr, 0, []byte("lost"), 300*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "submit shard 0") {
		t.Errorf("Submit to dead address = %v, want shard-labelled error", err)
	}
	if err := Submit("not-an-address:port", 1, nil, time.Second); err == nil {
		t.Error("Submit accepted an unresolvable address")
	}
}
