package shard

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed:9, drop:0.1, dup:0.05, corrupt:0.02, delay:0.2, max-delay:40ms, crash:1@25, panic:0@40x2, stall:3@10")
	if err != nil {
		t.Fatal(err)
	}
	tr := plan.Transport
	if tr.Seed != 9 || tr.Drop != 0.1 || tr.Dup != 0.05 || tr.Corrupt != 0.02 || tr.Delay != 0.2 || tr.MaxDelay != 40*time.Millisecond {
		t.Errorf("transport profile = %+v", tr)
	}
	want := []CrashSpec{
		{Vantage: -1, Shard: 1, After: 25, Kind: "error"},
		{Vantage: -1, Shard: 0, After: 40, Times: 2, Kind: "panic"},
		{Vantage: -1, Shard: 3, After: 10, Kind: "stall"},
	}
	if len(plan.Crashes) != len(want) {
		t.Fatalf("crashes = %+v, want %+v", plan.Crashes, want)
	}
	for i := range want {
		if plan.Crashes[i] != want[i] {
			t.Errorf("crash %d = %+v, want %+v", i, plan.Crashes[i], want[i])
		}
	}
	if !plan.Enabled() || plan.transportFaults() == nil {
		t.Error("parsed plan reads as disabled")
	}
	if c := plan.crashFor(2, 0); c == nil || c.Kind != "panic" {
		t.Errorf("crashFor(2, 0) = %+v, want the panic spec (vantage wildcard)", c)
	}
	if c := plan.crashFor(0, 7); c != nil {
		t.Errorf("crashFor(0, 7) = %+v, want nil", c)
	}
}

func TestParseFaultPlanEmptyAndErrors(t *testing.T) {
	if plan, err := ParseFaultPlan("  "); plan != nil || err != nil {
		t.Errorf("blank spec = %v, %v; want nil plan", plan, err)
	}
	var nilPlan *FaultPlan
	if nilPlan.Enabled() || nilPlan.crashFor(0, 0) != nil || nilPlan.transportFaults() != nil {
		t.Error("nil plan is not inert")
	}
	for _, bad := range []string{
		"drop", "drop:", "drop:2", "drop:x", "seed:x", "max-delay:0",
		"max-delay:soon", "warp:0.5", "crash:1", "crash:x@2", "crash:-1@2",
		"crash:1@-2", "crash:1@2x0", "crash:1@2xq", "stall:@5",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestCrashSpecDefaults(t *testing.T) {
	if n := (CrashSpec{}).times(); n != 1 {
		t.Errorf("zero Times = %d attempts, want 1", n)
	}
	if n := (CrashSpec{Times: 3}).times(); n != 3 {
		t.Errorf("Times 3 = %d", n)
	}
}

func TestBuildCoverage(t *testing.T) {
	statuses := []ShardStatus{
		{Shard: 0, Range: Range{0, 10}, State: ShardOK},
		{Shard: 1, Range: Range{10, 20}, State: ShardLost},
		{Shard: 2, Range: Range{20, 30}, State: ShardLost},
		{Shard: 3, Range: Range{30, 40}, State: ShardRecovered, Restarts: 1, Faults: []string{"attempt 1: injected"}},
	}
	cov := buildCoverage(40, statuses)
	if cov.Complete() {
		t.Fatal("lossy coverage reads as complete")
	}
	if cov.CoveredDomains != 20 || cov.TotalDomains != 40 {
		t.Errorf("covered %d/%d, want 20/40", cov.CoveredDomains, cov.TotalDomains)
	}
	// Adjacent lost shards coalesce into one missing range.
	if len(cov.Missing) != 1 || (cov.Missing[0] != Range{10, 30}) {
		t.Errorf("missing = %v, want [{10 30}]", cov.Missing)
	}
	if f := cov.Fraction(); f != 0.5 {
		t.Errorf("fraction = %v, want 0.5", f)
	}
	ann := cov.Confidence("Table 1")
	for _, part := range []string{"Table 1", "50.0%", "20 of 40", "[10,30)"} {
		if !strings.Contains(ann, part) {
			t.Errorf("confidence %q missing %q", ann, part)
		}
	}
	rendered := RenderCoverage(cov).String()
	for _, part := range []string{"20 of 40", "lost", "recovered", "attempt 1: injected", "[10,20)"} {
		if !strings.Contains(rendered, part) {
			t.Errorf("coverage table missing %q:\n%s", part, rendered)
		}
	}

	full := buildCoverage(40, []ShardStatus{{Shard: 0, Range: Range{0, 40}, State: ShardOK}})
	if !full.Complete() || full.Confidence("Table 1") != "" || full.Fraction() != 1 {
		t.Errorf("clean coverage = %+v", full)
	}
	if empty := buildCoverage(0, nil); !empty.Complete() || empty.Fraction() != 1 {
		t.Errorf("empty coverage = %+v", empty)
	}
}

func TestShardStateString(t *testing.T) {
	cases := map[ShardState]string{ShardOK: "ok", ShardRecovered: "recovered", ShardLost: "lost", ShardState(9): "ShardState(9)"}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(state), got, want)
		}
	}
}

// FuzzSubmissionFrame pins the framing's two safety properties: a framed
// submission round-trips exactly, and any single-bit corruption of the
// frame — header, payload or trailer — is rejected, never silently
// accepted or panicking.
func FuzzSubmissionFrame(f *testing.F) {
	f.Add([]byte("accumulator blob"), uint16(3), uint16(7))
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Add(bytes.Repeat([]byte{0xff}, 300), uint16(63), uint16(1000))
	f.Fuzz(func(t *testing.T, blob []byte, shard16, bit16 uint16) {
		const want = 64
		shard := int(shard16 % want)
		frame := frameSubmission(shard, blob)
		gotShard, gotBlob, derr := parseSubmission(frame, want)
		if derr != nil {
			t.Fatalf("freshly framed submission rejected: %v", derr)
		}
		if gotShard != shard || !bytes.Equal(gotBlob, blob) {
			t.Fatalf("round trip = shard %d, %d bytes; want shard %d, %d bytes", gotShard, len(gotBlob), shard, len(blob))
		}
		bit := int(bit16) % (8 * len(frame))
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		if s, b, derr := parseSubmission(mut, want); derr == nil {
			t.Fatalf("bit flip %d accepted as shard %d with %d bytes", bit, s, len(b))
		}
		// Raw unframed bytes must be rejected without panicking too.
		if _, _, derr := parseSubmission(blob, want); derr == nil && len(blob) > 0 {
			// A blob that happens to be a valid frame is astronomically
			// unlikely but legal; only a nil error with empty input is a bug.
			if len(blob) <= 4 {
				t.Fatalf("tiny unframed payload accepted")
			}
		}
	})
}
