package shard

import (
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// TestShardDeterminism is the campaign-splitting analogue of the scanner's
// worker-count invariance goldens: the rendered Tables 1–5 and Figs. 2–4
// must be byte-identical for shard counts 1, 2 and 8, worker counts 1 and
// 4, and both engines — the per-domain rng is derived from (seed, week,
// domain), sink indices are population-global, and merging is the analysis
// merge algebra, so nothing about the split may leak into the output. The
// transports rotate across the grid so the serialized wire format and the
// UDP collector exchange are pinned to the same bytes as the in-process
// merge.
func TestShardDeterminism(t *testing.T) {
	engines := []struct {
		name   string
		engine scanner.Engine
		scale  int
	}{
		// Larger scale = smaller population; the emulated engine scans
		// ~2k domains per campaign, the fast engine ~11k.
		{"fast", scanner.EngineFast, 20_000},
		{"emulated", scanner.EngineEmulated, 100_000},
	}
	transports := []Transport{TransportInProc, TransportSerialized, TransportUDP}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			p := websim.DefaultProfile()
			p.Scale = eng.scale
			w := websim.Generate(p)
			forWeek := func(workers int) func(week int) scanner.Config {
				return func(week int) scanner.Config {
					return scanner.Config{Engine: eng.engine, Seed: 11, Workers: workers}
				}
			}
			var golden string
			ti := 0
			for _, shards := range []int{1, 2, 8} {
				for _, workers := range []int{1, 4} {
					tr := transports[ti%len(transports)]
					ti++
					res, err := Run(w, Config{
						Shards:    shards,
						Weeks:     []int{1, 3},
						ForWeek:   forWeek(workers),
						Transport: tr,
					})
					if err != nil {
						t.Fatalf("shards=%d workers=%d transport=%v: %v", shards, workers, tr, err)
					}
					got := renderCampaign(res.Vantages[0].Campaign)
					if golden == "" {
						golden = got
						continue
					}
					if got != golden {
						t.Errorf("shards=%d workers=%d transport=%v: rendered campaign differs from shards=1", shards, workers, tr)
					}
				}
			}
			if golden == "" {
				t.Fatal("no golden rendered")
			}
		})
	}
}
