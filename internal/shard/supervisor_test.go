package shard

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/udprun"
)

// fastBackoff keeps supervised restarts from slowing the tests down.
var fastBackoff = resilience.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Jitter: -1}

// TestSupervisorRecoversCrash is the core supervision contract: a shard
// worker that dies mid-scan is restarted from its checkpoint journal and
// the campaign's rendered output is byte-identical to an undisturbed run.
func TestSupervisorRecoversCrash(t *testing.T) {
	w := fixture(t)
	weeks := []int{1, 2}
	golden, err := Run(w, Config{Shards: 2, Weeks: weeks, ForWeek: baseConfig(scanner.EngineFast, 2)})
	if err != nil {
		t.Fatal(err)
	}
	tm := telemetry.New()
	tracer := trace.New(trace.Config{})
	live := analysis.NewLive(100, 4)
	res, err := Run(w, Config{
		Shards: 2, Weeks: weeks, ForWeek: baseConfig(scanner.EngineFast, 2),
		Checkpoint: t.TempDir(), Telemetry: tm, Trace: tracer, Live: live,
		MaxRestarts: 2, RestartBackoff: fastBackoff,
		Faults: &FaultPlan{Crashes: []CrashSpec{{Vantage: -1, Shard: 1, After: 40, Kind: "error"}}},
	})
	if err != nil {
		t.Fatalf("supervised campaign failed: %v", err)
	}
	cov := res.Vantages[0].Coverage
	if !cov.Complete() {
		t.Fatalf("coverage incomplete after recovery: %+v", cov)
	}
	if st := cov.Shards[1]; st.State != ShardRecovered || st.Restarts != 1 || len(st.Faults) != 1 {
		t.Errorf("shard 1 status = %+v, want one recovered restart", st)
	}
	if st := cov.Shards[0]; st.State != ShardOK || st.Restarts != 0 {
		t.Errorf("shard 0 status = %+v, want untouched", st)
	}
	if got, want := renderCampaign(res.Vantages[0].Campaign), renderCampaign(golden.Vantages[0].Campaign); got != want {
		t.Error("recovered campaign differs from the undisturbed reference")
	}
	if c := tm.Counter("shard_restarts_total").Value(); c != 1 {
		t.Errorf("shard_restarts_total = %d, want 1", c)
	}
	if c := tm.Counter("shard_lost_total").Value(); c != 0 {
		t.Errorf("shard_lost_total = %d, want 0", c)
	}
	if snap := live.Snapshot(); snap.Restarts != 1 || len(snap.LostShards) != 0 {
		t.Errorf("dashboard restarts=%d lost=%v, want 1 and none", snap.Restarts, snap.LostShards)
	}
	restartTrace := false
	for _, tr := range tracer.Recent(0) {
		if tr.Domain == "shard-001" && tr.Outcome == "restart" {
			restartTrace = true
		}
	}
	if !restartTrace {
		t.Error("no restart trace recorded for shard 1")
	}
}

// TestSupervisorRecoversPanicAndStall covers the other two failure modes:
// an injected worker panic (contained at the delivery hook) and an
// injected stall (killed by the watchdog), both twice in a row, both
// recovered to byte-identical output.
func TestSupervisorRecoversPanicAndStall(t *testing.T) {
	w := fixture(t)
	golden, err := Run(w, Config{Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"panic", "stall"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			tm := telemetry.New()
			res, err := Run(w, Config{
				Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2),
				Checkpoint: t.TempDir(), Telemetry: tm,
				MaxRestarts: 3, RestartBackoff: fastBackoff,
				StallTimeout: 150 * time.Millisecond,
				Faults:       &FaultPlan{Crashes: []CrashSpec{{Vantage: -1, Shard: 0, After: 30, Times: 2, Kind: kind}}},
			})
			if err != nil {
				t.Fatalf("%s campaign failed: %v", kind, err)
			}
			cov := res.Vantages[0].Coverage
			if st := cov.Shards[0]; st.State != ShardRecovered || st.Restarts != 2 {
				t.Errorf("shard 0 status = %+v, want recovery after 2 restarts", st)
			}
			if got, want := renderCampaign(res.Vantages[0].Campaign), renderCampaign(golden.Vantages[0].Campaign); got != want {
				t.Errorf("%s-recovered campaign differs from the undisturbed reference", kind)
			}
			if c := tm.Counter("shard_restarts_total").Value(); c != 2 {
				t.Errorf("shard_restarts_total = %d, want 2", c)
			}
		})
	}
}

// TestShardLostDegradedMerge exhausts one shard's restart budget and
// checks the degraded merge: the campaign completes with the surviving
// shards, and the coverage accounting names the missing range exactly —
// the merged tables equal a direct scan of the surviving ranges.
func TestShardLostDegradedMerge(t *testing.T) {
	w := fixture(t)
	ranges := Plan(w.NumDomains(), 2)
	for _, transport := range []Transport{TransportInProc, TransportUDP} {
		transport := transport
		t.Run(transport.String(), func(t *testing.T) {
			tm := telemetry.New()
			live := analysis.NewLive(100, 4)
			res, err := Run(w, Config{
				Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2),
				Transport: transport, Telemetry: tm, Live: live,
				MaxRestarts: 1, RestartBackoff: fastBackoff,
				Faults: &FaultPlan{Crashes: []CrashSpec{{Vantage: -1, Shard: 1, After: 20, Times: 99, Kind: "error"}}},
			})
			if err != nil {
				t.Fatalf("degraded campaign failed outright: %v", err)
			}
			cov := res.Vantages[0].Coverage
			if cov.Complete() {
				t.Fatal("coverage claims completeness with a lost shard")
			}
			if st := cov.Shards[1]; st.State != ShardLost || st.Restarts != 1 || st.Err == nil {
				t.Errorf("shard 1 status = %+v, want lost after 1 restart", st)
			}
			wantMissing := ranges[1].End - ranges[1].Start
			if cov.TotalDomains != w.NumDomains() || cov.CoveredDomains != w.NumDomains()-wantMissing {
				t.Errorf("coverage %d/%d, want %d/%d", cov.CoveredDomains, cov.TotalDomains, w.NumDomains()-wantMissing, w.NumDomains())
			}
			if len(cov.Missing) != 1 || cov.Missing[0] != ranges[1] {
				t.Errorf("missing = %v, want [%v]", cov.Missing, ranges[1])
			}
			if ann := cov.Confidence("Table 1"); !strings.Contains(ann, "Table 1") {
				t.Errorf("confidence annotation = %q", ann)
			}
			// The degraded tables must equal a direct scan of the surviving
			// range — no partial data from the lost shard's attempts.
			var progress atomic.Int64
			refCfg := Config{Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2)}
			ref, err := runShard(w, refCfg, scanner.Vantage{}, 0, 0, ranges[0], false, nil, nil, &progress)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderCampaign(res.Vantages[0].Campaign), renderCampaign(ref); got != want {
				t.Error("degraded merge differs from a direct scan of the surviving shard")
			}
			if c := tm.Counter("shard_lost_total").Value(); c != 1 {
				t.Errorf("shard_lost_total = %d, want 1", c)
			}
			if snap := live.Snapshot(); len(snap.LostShards) != 1 || snap.LostShards[0] != 1 {
				t.Errorf("dashboard lost shards = %v, want [1]", snap.LostShards)
			}
		})
	}
}

// TestStrictShardsFailsFast pins the -strict-shards escape hatch: the same
// lost-shard campaign aborts instead of merging.
func TestStrictShardsFailsFast(t *testing.T) {
	w := fixture(t)
	_, err := Run(w, Config{
		Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2),
		StrictShards: true, MaxRestarts: 1, RestartBackoff: fastBackoff,
		Faults: &FaultPlan{Crashes: []CrashSpec{{Vantage: -1, Shard: 1, After: 20, Times: 99, Kind: "error"}}},
	})
	if err == nil || !strings.Contains(err.Error(), "strict mode") || !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("strict campaign = %v, want a strict-mode loss error naming shard 1", err)
	}
}

// TestAllShardsLost checks the floor of degraded merging: when nothing
// survives there is no campaign to report, strict or not.
func TestAllShardsLost(t *testing.T) {
	w := fixture(t)
	_, err := Run(w, Config{
		Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2),
		MaxRestarts: 0, RestartBackoff: fastBackoff,
		Faults: &FaultPlan{Crashes: []CrashSpec{
			{Vantage: -1, Shard: 0, After: 5, Times: 99, Kind: "error"},
			{Vantage: -1, Shard: 1, After: 5, Times: 99, Kind: "error"},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "every shard was lost") {
		t.Errorf("all-lost campaign = %v, want a nothing-to-merge error", err)
	}
}

// TestSupervisorPassesInterruptThrough pins that supervision does not
// swallow operator interrupts: InterruptAfter still surfaces
// ErrInterrupted with a partial result, and the interrupt is not burned
// as a restart attempt.
func TestSupervisorPassesInterruptThrough(t *testing.T) {
	w := fixture(t)
	tm := telemetry.New()
	interrupted := func(week int) scanner.Config {
		sc := baseConfig(scanner.EngineFast, 2)(week)
		sc.InterruptAfter = 40
		return sc
	}
	res, err := Run(w, Config{
		Shards: 2, Weeks: []int{1}, ForWeek: interrupted,
		Checkpoint: t.TempDir(), Telemetry: tm,
		MaxRestarts: 3, RestartBackoff: fastBackoff,
	})
	if !errors.Is(err, scanner.ErrInterrupted) {
		t.Fatalf("interrupted campaign returned %v, want ErrInterrupted", err)
	}
	if res == nil || res.Vantages[0].Campaign == nil {
		t.Fatal("interrupted campaign returned no partial result")
	}
	if c := tm.Counter("shard_restarts_total").Value(); c != 0 {
		t.Errorf("interrupt consumed %d restart attempts", c)
	}
}

// TestStallWatchdogKillsSilentWorker checks the watchdog end to end with
// a stall that exceeds the budget: the shard is eventually lost with a
// stall-flavoured fault record, not hung forever.
func TestStallWatchdogKillsSilentWorker(t *testing.T) {
	w := fixture(t)
	tm := telemetry.New()
	res, err := Run(w, Config{
		Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2),
		Telemetry:   tm,
		MaxRestarts: 1, RestartBackoff: fastBackoff,
		StallTimeout: 120 * time.Millisecond,
		Faults:       &FaultPlan{Crashes: []CrashSpec{{Vantage: -1, Shard: 0, After: 10, Times: 99, Kind: "stall"}}},
	})
	if err != nil {
		t.Fatalf("campaign failed outright: %v", err)
	}
	st := res.Vantages[0].Coverage.Shards[0]
	if st.State != ShardLost {
		t.Fatalf("stalling shard = %+v, want lost", st)
	}
	if !strings.Contains(st.Err.Error(), "stall") {
		t.Errorf("loss cause = %v, want a stall", st.Err)
	}
}

// TestSupervisedUDPWithTransportFaults runs supervision and transport
// fault injection together over the real UDP exchange — the integration
// the chaos smoke in scripts/check.sh drives from the CLI.
func TestSupervisedUDPWithTransportFaults(t *testing.T) {
	w := fixture(t)
	golden, err := Run(w, Config{Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2)})
	if err != nil {
		t.Fatal(err)
	}
	tm := telemetry.New()
	res, err := Run(w, Config{
		Shards: 2, Weeks: []int{1}, ForWeek: baseConfig(scanner.EngineFast, 2),
		Transport: TransportUDP, Checkpoint: t.TempDir(), Telemetry: tm,
		MaxRestarts: 2, RestartBackoff: fastBackoff,
		Faults: &FaultPlan{
			Transport: udprun.FaultConfig{Seed: 5, Drop: 0.08, Dup: 0.08, Corrupt: 0.04, Delay: 0.08, MaxDelay: 3 * time.Millisecond},
			Crashes:   []CrashSpec{{Vantage: -1, Shard: 1, After: 35, Kind: "error"}},
		},
	})
	if err != nil {
		t.Fatalf("chaos campaign failed: %v", err)
	}
	if !res.Vantages[0].Coverage.Complete() {
		t.Fatalf("chaos campaign lost shards: %+v", res.Vantages[0].Coverage)
	}
	if got, want := renderCampaign(res.Vantages[0].Campaign), renderCampaign(golden.Vantages[0].Campaign); got != want {
		t.Error("chaos campaign differs from the undisturbed reference")
	}
}
