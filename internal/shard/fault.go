package shard

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"quicspin/internal/udprun"
)

// FaultPlan is a deterministic chaos schedule for one distributed
// campaign: seeded datagram faults on the UDP accumulator exchange plus
// scripted shard-worker crashes. It exists so fault tolerance is testable
// — the determinism suite runs the same campaign with a plan on and off
// and requires byte-identical tables, proving supervision and transport
// hardening are output-neutral.
type FaultPlan struct {
	// Transport is the datagram fault profile applied to both ends of the
	// UDP collector exchange (no effect on inproc/serialized transports).
	Transport udprun.FaultConfig
	// Crashes kill shard workers mid-scan; the supervisor is expected to
	// restart them from their checkpoint journals.
	Crashes []CrashSpec
}

// CrashSpec scripts one shard worker's death.
type CrashSpec struct {
	// Vantage is the vantage index the crash applies to (0 = first; -1 =
	// every vantage).
	Vantage int
	// Shard is the shard whose worker dies.
	Shard int
	// After is the number of delivered domains before the fault fires; the
	// crash lands on delivery After+1. A value beyond the shard's
	// population never fires.
	After int
	// Times is how many consecutive attempts die (default 1): Times ≤ the
	// restart budget is a transient fault the supervisor recovers from,
	// Times > budget permanently loses the shard.
	Times int
	// Kind selects the failure mode: "error" (the worker returns an
	// error), "panic" (the worker panics) or "stall" (the worker stops
	// making progress until the supervisor's stall watchdog kills it).
	Kind string
}

func (c CrashSpec) times() int {
	if c.Times <= 0 {
		return 1
	}
	return c.Times
}

// crashFor returns the crash scripted for one (vantage, shard) worker, or
// nil. Nil-safe.
func (p *FaultPlan) crashFor(vi, si int) *CrashSpec {
	if p == nil {
		return nil
	}
	for i := range p.Crashes {
		c := &p.Crashes[i]
		if c.Shard == si && (c.Vantage == vi || c.Vantage == -1) {
			return c
		}
	}
	return nil
}

// transportFaults returns the plan's datagram fault profile when it has
// one, else nil. Nil-safe.
func (p *FaultPlan) transportFaults() *udprun.FaultConfig {
	if p == nil || !p.Transport.Enabled() {
		return nil
	}
	return &p.Transport
}

// Enabled reports whether the plan injects anything. Nil-safe.
func (p *FaultPlan) Enabled() bool {
	return p != nil && (p.Transport.Enabled() || len(p.Crashes) > 0)
}

// ParseFaultPlan parses the spinscan -shard-faults flag: a comma-separated
// list of directives.
//
//	seed:N          fault rng seed (default 1)
//	drop:P          datagram drop probability (0-1)
//	dup:P           datagram duplication probability
//	corrupt:P       datagram single-bit-flip probability
//	delay:P         datagram hold-back probability
//	max-delay:DUR   hold-back bound, e.g. 50ms
//	crash:S@N       shard S's worker errors out after N delivered domains
//	panic:S@N       …panics instead
//	stall:S@N       …stops making progress (needs a stall timeout)
//
// Crash directives accept an xT multiplier (crash:1@40x2 = two attempts
// die) and apply to every vantage. An empty spec returns nil.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	plan := &FaultPlan{Transport: udprun.FaultConfig{Seed: 1}}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		key, val, ok := strings.Cut(item, ":")
		if !ok || val == "" {
			return nil, fmt.Errorf("shard: fault directive %q: want key:value", item)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: fault seed %q: %v", val, err)
			}
			plan.Transport.Seed = n
		case "drop", "dup", "corrupt", "delay":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("shard: fault probability %q: want a value in [0, 1]", item)
			}
			switch key {
			case "drop":
				plan.Transport.Drop = p
			case "dup":
				plan.Transport.Dup = p
			case "corrupt":
				plan.Transport.Corrupt = p
			case "delay":
				plan.Transport.Delay = p
			}
		case "max-delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("shard: fault max-delay %q: want a positive duration", val)
			}
			plan.Transport.MaxDelay = d
		case "crash", "panic", "stall":
			c, err := parseCrash(key, val)
			if err != nil {
				return nil, err
			}
			plan.Crashes = append(plan.Crashes, c)
		default:
			return nil, fmt.Errorf("shard: unknown fault directive %q", key)
		}
	}
	return plan, nil
}

// parseCrash parses S@N[xT] into a CrashSpec of the given kind.
func parseCrash(kind, val string) (CrashSpec, error) {
	c := CrashSpec{Vantage: -1, Kind: "error"}
	if kind != "crash" {
		c.Kind = kind
	}
	shardStr, rest, ok := strings.Cut(val, "@")
	if !ok {
		return c, fmt.Errorf("shard: fault %s:%s: want %s:shard@domains", kind, val, kind)
	}
	afterStr, timesStr, hasTimes := strings.Cut(rest, "x")
	var err error
	if c.Shard, err = strconv.Atoi(shardStr); err != nil || c.Shard < 0 {
		return c, fmt.Errorf("shard: fault %s:%s: bad shard %q", kind, val, shardStr)
	}
	if c.After, err = strconv.Atoi(afterStr); err != nil || c.After < 0 {
		return c, fmt.Errorf("shard: fault %s:%s: bad domain count %q", kind, val, afterStr)
	}
	if hasTimes {
		if c.Times, err = strconv.Atoi(timesStr); err != nil || c.Times < 1 {
			return c, fmt.Errorf("shard: fault %s:%s: bad multiplier %q", kind, val, timesStr)
		}
	}
	return c, nil
}
