package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

// supervisor owns one vantage's shard workers: it runs each shard's scan
// attempt, watches for crashes, panics and stalls, restarts failed
// workers from their checkpoint journals within a bounded budget, and
// classifies every shard as ok, recovered or lost. Restarted attempts
// resume from the per-shard journal (when the campaign checkpoints) or
// rescan from scratch — either way the scan is deterministic, so a
// recovered shard's accumulator is byte-identical to an undisturbed one.
type supervisor struct {
	w   *websim.World
	cfg Config
	v   scanner.Vantage
	vi  int
	col *Collector

	// user is the campaign's own interrupt channel (from ForWeek), kept
	// separate from the stall watchdog's so the supervisor can tell an
	// operator interrupt from a dead worker.
	user <-chan struct{}

	restarts      *telemetry.Counter
	lost          *telemetry.Counter
	submitRetries *telemetry.Counter
}

func newSupervisor(w *websim.World, cfg Config, v scanner.Vantage, vi int, col *Collector) *supervisor {
	cfg.Telemetry.Describe(map[string]string{
		"shard_restarts_total": "Supervised shard-worker restarts (crash, panic or stall recoveries).",
		"shard_lost_total":     "Shards abandoned after exhausting their restart budget.",
		"submit_retries_total": "Accumulator submission retries (NAKs and ack timeouts).",
	})
	return &supervisor{
		w: w, cfg: cfg, v: v, vi: vi, col: col,
		user:          cfg.interruptCh(),
		restarts:      cfg.Telemetry.Counter("shard_restarts_total"),
		lost:          cfg.Telemetry.Counter("shard_lost_total"),
		submitRetries: cfg.Telemetry.Counter("submit_retries_total"),
	}
}

func (s *supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// recorder is the supervisor's trace recorder for one shard, in the
// synthetic id range so it never collides with scan workers.
func (s *supervisor) recorder(si int) *trace.Recorder {
	return s.cfg.Trace.Recorder(trace.SyntheticWorkerBase - si)
}

// superviseShard runs one shard to completion, restarting failed attempts
// until the budget runs out. It returns the shard's campaign (nil when
// lost) and its supervision record. Interrupts pass through: the partial
// campaign ships with ShardStatus.Err = scanner.ErrInterrupted, exactly
// like the unsupervised coordinator behaved.
func (s *supervisor) superviseShard(si int, r Range) (*analysis.CampaignAccumulator, ShardStatus) {
	status := ShardStatus{Shard: si, Range: r}
	crash := s.cfg.Faults.crashFor(s.vi, si)
	rng := rand.New(rand.NewSource(0x5d9e ^ int64(si)))
	for attempt := 0; ; attempt++ {
		status.Restarts = attempt
		camp, err := s.attempt(si, r, attempt, crash)
		if err == nil {
			if attempt > 0 {
				status.State = ShardRecovered
			}
			return camp, status
		}
		if errors.Is(err, scanner.ErrInterrupted) {
			if attempt > 0 {
				status.State = ShardRecovered
			}
			status.Err = err
			return camp, status
		}
		status.Faults = append(status.Faults, fmt.Sprintf("attempt %d: %v", attempt+1, err))
		if attempt >= s.cfg.MaxRestarts {
			status.State = ShardLost
			status.Err = err
			s.noteLost(si, attempt, err)
			return nil, status
		}
		s.noteRestart(si, attempt, err)
		if !s.cfg.RestartBackoff.Sleep(rng, attempt, s.user) {
			// Operator interrupt during backoff: surface the failed
			// attempt's partial campaign like any interrupted shard.
			status.Err = scanner.ErrInterrupted
			return camp, status
		}
	}
}

// attempt runs one shard scan attempt with its fault-detection apparatus:
// a stall watchdog (when configured), injected-crash hooks (when the
// fault plan scripts one) and panic containment.
func (s *supervisor) attempt(si int, r Range, attempt int, crash *CrashSpec) (camp *analysis.CampaignAccumulator, err error) {
	defer func() {
		// Safety net for genuine panics escaping the scan path; injected
		// panics are already contained at the delivery hook below.
		if p := recover(); p != nil {
			err = fmt.Errorf("worker panic: %v", p)
		}
	}()
	done := make(chan struct{})
	defer close(done)
	interrupt := s.user
	var stallCh chan struct{}
	var progress atomic.Int64
	if s.cfg.StallTimeout > 0 {
		stallCh = make(chan struct{})
		go stallWatch(&progress, s.cfg.StallTimeout, stallCh, done)
		interrupt = mergeInterrupt(s.user, stallCh, done)
	}
	var hook func(int64) error
	if crash != nil && attempt < crash.times() {
		hook = crashHook(crash, interrupt)
	}
	camp, err = runShard(s.w, s.cfg, s.v, s.vi, si, r, attempt > 0, interrupt, hook, &progress)
	if err != nil && errors.Is(err, scanner.ErrInterrupted) {
		if chClosed(s.user) {
			return camp, scanner.ErrInterrupted // operator interrupt wins
		}
		if chClosed(stallCh) {
			return camp, fmt.Errorf("stalled: no progress for %v", s.cfg.StallTimeout)
		}
	}
	return camp, err
}

func (s *supervisor) noteRestart(si, attempt int, cause error) {
	s.restarts.Inc()
	s.cfg.Live.NoteRestart(si)
	s.recorder(si).Event(fmt.Sprintf("shard-%03d", si), time.Now(), "restart",
		"attempt", fmt.Sprintf("%d", attempt+1),
		"cause", cause.Error())
	s.logf("shard %d (vantage %d): attempt %d failed (%v); restarting from journal", si, s.vi, attempt+1, cause)
}

func (s *supervisor) noteLost(si, attempt int, cause error) {
	s.lost.Inc()
	s.cfg.Live.NoteLost(si)
	if s.col != nil {
		s.col.Abandon(si)
	}
	s.recorder(si).Event(fmt.Sprintf("shard-%03d", si), time.Now(), "lost",
		"attempts", fmt.Sprintf("%d", attempt+1),
		"cause", cause.Error())
	s.logf("shard %d (vantage %d): lost after %d attempt(s): %v", si, s.vi, attempt+1, cause)
}

// submit ships one completed shard's campaign to the collector with
// retried, fault-injected, idempotent submission.
func (s *supervisor) submit(si int, camp *analysis.CampaignAccumulator) error {
	return SubmitWithPolicy(s.col.Addr().String(), si, camp.Marshal(), SubmitPolicy{
		Faults: s.cfg.Faults.transportFaults(),
		OnRetry: func(attempt int, err error) {
			s.submitRetries.Inc()
			s.logf("shard %d (vantage %d): submit attempt %d failed (%v); retrying", si, s.vi, attempt, err)
		},
	})
}

// crashHook scripts one attempt's injected failure. It runs inside the
// delivery path (called with the attempt's 1-based delivery count), so a
// "panic" kind is recovered right here at the hook boundary — letting it
// unwind through RunStream would strand the scan pipeline's workers —
// and converted into the error RunStream aborts with.
func crashHook(crash *CrashSpec, interrupt <-chan struct{}) func(int64) error {
	fired := false
	return func(n int64) (err error) {
		if fired || int(n) != crash.After+1 {
			return nil
		}
		fired = true
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("injected fault: worker panic: %v", p)
			}
		}()
		switch crash.Kind {
		case "panic":
			panic(fmt.Sprintf("injected panic after %d domains", crash.After))
		case "stall":
			if interrupt == nil {
				// No watchdog and no interrupt channel: blocking here would
				// hang the campaign forever, so degrade to a crash.
				return fmt.Errorf("injected fault: stall after %d domains with no stall watchdog", crash.After)
			}
			<-interrupt
			return fmt.Errorf("injected fault: stall after %d domains", crash.After)
		default:
			return fmt.Errorf("injected fault: crash after %d domains", crash.After)
		}
	}
}

// stallWatch closes stallCh when progress stops advancing for the full
// timeout. It polls at timeout/4 granularity — coarse, cheap and immune
// to delivery burstiness.
func stallWatch(progress *atomic.Int64, timeout time.Duration, stallCh chan struct{}, done <-chan struct{}) {
	tick := timeout / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if cur := progress.Load(); cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				close(stallCh)
				return
			}
		}
	}
}

// mergeInterrupt fans two interrupt channels into one; done bounds the
// helper goroutine's life to the attempt.
func mergeInterrupt(a, b <-chan struct{}, done <-chan struct{}) <-chan struct{} {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		case <-done:
			return
		}
		close(out)
	}()
	return out
}

// chClosed reports whether ch is closed; nil channels read as open.
func chClosed(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
