package shard

import (
	"fmt"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/report"
	"quicspin/internal/stats"
)

// RenderAgreement renders the cross-vantage agreement table: per vantage,
// the campaign-wide spin-configuration outcome (CZDS view, summed over
// weeks) and how closely its verdict distribution matches the first
// vantage's. Agreement is 1 minus the total-variation distance between the
// two distributions over {All Zero, All One, Spin, Grease, None} — 100%
// means the vantages classified identically in aggregate; extra path delay
// and jitter should dent it only marginally (the spin bit survives the
// path, which is its whole point).
func RenderAgreement(res *Result) *report.Table {
	t := report.NewTable(
		"Cross-vantage agreement (CZDS view, all weeks)",
		"Vantage", "Extra RTT", "QUIC", "Spin", "Spin%", "Agreement")
	if len(res.Vantages) == 0 {
		return t
	}
	base := vantageDist(res.Vantages[0].Campaign)
	for vi, vr := range res.Vantages {
		row := vantageDist(vr.Campaign)
		extra := time.Duration(0)
		if vr.Vantage.ExtraDelay > 0 {
			extra = 2 * vr.Vantage.ExtraDelay
		}
		t.AddRow(
			vantageLabel(vr.Vantage, vi),
			extra.String(),
			report.Count(row.QUICDomains),
			report.Count(row.Spin),
			stats.Percent(row.Spin, row.QUICDomains),
			fmt.Sprintf("%.1f%%", 100*agreement(base, row)),
		)
	}
	return t
}

// vantageDist sums the CZDS-view Table 3 row over every campaign week.
func vantageDist(camp *analysis.CampaignAccumulator) analysis.ConfigRow {
	var sum analysis.ConfigRow
	if camp == nil {
		return sum
	}
	for _, a := range camp.Weeks() {
		rows := a.ConfigRows()
		if len(rows) < 2 {
			continue
		}
		r := rows[1] // CZDS view, matching the software table's convention
		sum.QUICDomains += r.QUICDomains
		sum.AllZero += r.AllZero
		sum.AllOne += r.AllOne
		sum.Spin += r.Spin
		sum.Grease += r.Grease
		sum.None += r.None
	}
	return sum
}

// agreement computes 1 − total-variation distance between two verdict
// distributions (1.0 when either is empty ties to "no evidence of
// disagreement" — the table's QUIC column makes emptiness obvious).
func agreement(a, b analysis.ConfigRow) float64 {
	if a.QUICDomains == 0 || b.QUICDomains == 0 {
		return 1
	}
	pa := func(n int) float64 { return float64(n) / float64(a.QUICDomains) }
	pb := func(n int) float64 { return float64(n) / float64(b.QUICDomains) }
	tv := 0.0
	for _, d := range []float64{
		pa(a.AllZero) - pb(b.AllZero),
		pa(a.AllOne) - pb(b.AllOne),
		pa(a.Spin) - pb(b.Spin),
		pa(a.Grease) - pb(b.Grease),
		pa(a.None) - pb(b.None),
	} {
		if d < 0 {
			d = -d
		}
		tv += d
	}
	return 1 - tv/2
}
