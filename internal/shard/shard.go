// Package shard implements the distributed scan-out coordinator: it splits
// the domain population into contiguous shards, runs every shard through an
// independent scanner.RunStream — its own checkpoint journal, breakers and
// telemetry labels — and merges the shard accumulators back into one
// campaign whose Tables 1–5 and Figs. 3–4 are byte-identical to an
// unsharded run (determinism_test.go pins this, like worker-count
// invariance before it).
//
// Shard workers run as goroutines in this process; the accumulators they
// produce can flow back to the coordinator three ways (Config.Transport):
// direct in-memory merge, a round-trip through the versioned wire format
// (internal/analysis codec), or real UDP sockets via internal/udprun —
// the exchange a multi-process deployment would use, proving the merged
// bytes are process-agnostic.
//
// The coordinator also runs multi-vantage campaigns: each vantage point
// scans the whole population through its own extra path delay/jitter
// (scanner.Vantage), and RenderAgreement compares the per-vantage spin
// verdict distributions.
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

// Range is one contiguous slice of the canonical population order,
// [Start, End).
type Range struct {
	Start int
	End   int
}

// Plan splits a population of n domains into the given number of
// contiguous shards, as evenly as possible (the first n%shards shards get
// one extra domain). Shards beyond the population come out empty; the
// shard count never bends to the population, so a fixed -shards flag means
// a fixed journal layout.
func Plan(n, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	out := make([]Range, shards)
	base, extra := n/shards, n%shards
	start := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Start: start, End: start + size}
		start += size
	}
	return out
}

// Transport selects how shard accumulators travel back to the coordinator.
type Transport int

const (
	// TransportInProc merges the shard goroutines' accumulators directly.
	TransportInProc Transport = iota
	// TransportSerialized round-trips every shard accumulator through the
	// versioned wire format before merging — what any cross-process
	// deployment carries, without the sockets.
	TransportSerialized
	// TransportUDP ships serialized accumulators over real loopback UDP
	// sockets (QUIC-lite streams driven by internal/udprun) to a collector
	// endpoint, then merges the received bytes.
	TransportUDP
)

func (t Transport) String() string {
	switch t {
	case TransportInProc:
		return "inproc"
	case TransportSerialized:
		return "serialized"
	case TransportUDP:
		return "udp"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// ParseTransport parses the spinscan -shard-transport flag value.
func ParseTransport(s string) (Transport, error) {
	switch s {
	case "inproc":
		return TransportInProc, nil
	case "serialized":
		return TransportSerialized, nil
	case "udp":
		return TransportUDP, nil
	default:
		return 0, fmt.Errorf("shard: unknown transport %q (want inproc, serialized or udp)", s)
	}
}

// Config parameterises one distributed campaign.
type Config struct {
	// Shards is the number of population slices scanned concurrently.
	Shards int
	// Weeks are the campaign weeks every shard scans, in order.
	Weeks []int
	// Vantages are the scanning locations; each runs a full sharded
	// campaign of its own. Empty means one baseline vantage.
	Vantages []scanner.Vantage
	// ForWeek returns the scan configuration for one week (seed, engine,
	// workers, retry/breaker policy, address family, interrupt channel…).
	// The coordinator overrides Week, Shard, Vantage and — when Checkpoint
	// is set — the per-shard checkpoint directory.
	ForWeek func(week int) scanner.Config
	// Checkpoint, when non-empty, is the campaign's journal root; every
	// (vantage, shard) pair journals under its own subdirectory, so a
	// killed campaign resumes shard by shard.
	Checkpoint string
	// Resume replays existing per-shard journals before scanning.
	Resume bool
	// Transport selects the accumulator merge path (see the constants).
	Transport Transport
	// Telemetry receives the shard/vantage gauges and per-shard progress
	// counters in addition to the scanner's own campaign metrics.
	Telemetry *telemetry.Registry
	// Live, when non-nil, receives every shard's deliveries for the
	// /debug/campaign dashboard (shard-merged tables, rolling windows).
	Live *analysis.Live
	// Trace, when non-nil, receives supervisor events (shard restarts and
	// losses) as synthetic traces alongside the scanner's per-domain ones.
	Trace *trace.Tracer
	// MaxRestarts is each shard's restart budget: how many times the
	// supervisor will relaunch a crashed, panicked or stalled worker
	// (resuming from its checkpoint journal) before declaring the shard
	// lost. Zero means workers are never restarted.
	MaxRestarts int
	// RestartBackoff paces restarts (real time). The zero value takes the
	// resilience defaults: 250ms base, doubling, capped at 5s.
	RestartBackoff resilience.RetryPolicy
	// StallTimeout arms the supervisor's stall watchdog: a worker that
	// delivers nothing for this long is killed and restarted like a crash.
	// Zero disables stall detection.
	StallTimeout time.Duration
	// StrictShards restores fail-fast semantics: any shard lost after its
	// restart budget aborts the campaign. When false (the default), the
	// coordinator merges the surviving shards and reports exactly what is
	// missing through VantageResult.Coverage.
	StrictShards bool
	// Faults, when non-nil, injects the plan's scripted worker crashes and
	// datagram faults — the chaos harness the determinism suite runs under.
	Faults *FaultPlan
	// Logf, when non-nil, receives supervisor progress lines (restarts,
	// losses, submit retries).
	Logf func(format string, args ...any)
}

// interruptCh is the campaign's operator-interrupt channel, as configured
// through ForWeek. The supervisor keeps it separate from its own stall
// watchdog so it can tell an interrupt from a dead worker.
func (c Config) interruptCh() <-chan struct{} {
	if c.ForWeek == nil || len(c.Weeks) == 0 {
		return nil
	}
	return c.ForWeek(c.Weeks[0]).Interrupt
}

// Validate reports descriptive errors for coordinator misconfiguration.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: Shards must be >= 1, got %d", c.Shards)
	}
	if len(c.Weeks) == 0 {
		return fmt.Errorf("shard: at least one campaign week is required")
	}
	if c.ForWeek == nil {
		return fmt.Errorf("shard: ForWeek must be set")
	}
	if c.Transport < TransportInProc || c.Transport > TransportUDP {
		return fmt.Errorf("shard: unknown Transport %d", int(c.Transport))
	}
	if c.Resume && c.Checkpoint == "" {
		return fmt.Errorf("shard: Resume requires a Checkpoint directory")
	}
	if c.MaxRestarts < 0 {
		return fmt.Errorf("shard: MaxRestarts must be >= 0, got %d", c.MaxRestarts)
	}
	if c.StallTimeout < 0 {
		return fmt.Errorf("shard: StallTimeout must be >= 0, got %v", c.StallTimeout)
	}
	if c.Faults != nil {
		for _, crash := range c.Faults.Crashes {
			switch crash.Kind {
			case "", "error", "panic", "stall":
			default:
				return fmt.Errorf("shard: unknown crash kind %q (want error, panic or stall)", crash.Kind)
			}
			if crash.Shard < 0 || crash.Shard >= c.Shards {
				return fmt.Errorf("shard: crash targets shard %d, campaign has %d", crash.Shard, c.Shards)
			}
		}
	}
	return nil
}

// VantageResult is one vantage point's merged campaign.
type VantageResult struct {
	Vantage  scanner.Vantage
	Campaign *analysis.CampaignAccumulator
	// Coverage records each shard's supervision outcome and — for degraded
	// merges — exactly which population ranges the campaign is missing.
	Coverage Coverage
}

// Result is the outcome of one distributed campaign.
type Result struct {
	// Shards echoes the shard count the population was split into.
	Shards int
	// Vantages holds one merged campaign per vantage point, in Config
	// order.
	Vantages []VantageResult
}

// Run executes the distributed campaign: for every vantage point, all
// shards scan their population slice concurrently (each week through its
// own RunStream), and the shard accumulators merge — over the configured
// transport — into one campaign per vantage.
//
// On interruption (the scanner's Interrupt/InterruptAfter plumbing), Run
// merges what the shards completed and returns the partial Result with
// scanner.ErrInterrupted, mirroring RunStream's contract. Any other shard
// error fails the campaign.
func Run(w *websim.World, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	vantages := cfg.Vantages
	if len(vantages) == 0 {
		vantages = []scanner.Vantage{{}}
	}
	cfg.Telemetry.Gauge("shard_count").Set(int64(cfg.Shards))
	cfg.Telemetry.Gauge("vantage_count").Set(int64(len(vantages)))
	res := &Result{Shards: cfg.Shards}
	for vi, v := range vantages {
		cfg.Live.SetVantage(vantageLabel(v, vi))
		camp, cov, err := runVantage(w, cfg, v, vi)
		if err != nil && !errors.Is(err, scanner.ErrInterrupted) {
			return nil, err
		}
		res.Vantages = append(res.Vantages, VantageResult{Vantage: v, Campaign: camp, Coverage: cov})
		if err != nil {
			return res, scanner.ErrInterrupted
		}
	}
	return res, nil
}

// collectTimeout bounds the coordinator's wait for UDP-submitted
// accumulators. Every successful submit completes before the shard
// goroutine exits, so by merge time the blobs are already in — the timeout
// only catches collector socket failures.
const collectTimeout = 30 * time.Second

// runVantage scans the whole population from one vantage point across all
// shards — each under the supervisor's crash/stall recovery — and merges
// their campaigns. Shards that exhaust their restart budget are lost: in
// strict mode that fails the campaign; otherwise the surviving shards
// merge into a degraded campaign whose Coverage names the missing ranges.
func runVantage(w *websim.World, cfg Config, v scanner.Vantage, vi int) (*analysis.CampaignAccumulator, Coverage, error) {
	ranges := Plan(w.NumDomains(), cfg.Shards)
	var col *Collector
	if cfg.Transport == TransportUDP {
		var err error
		if col, err = NewCollector(len(ranges), cfg.Faults.transportFaults()); err != nil {
			return nil, Coverage{}, err
		}
		defer col.Close()
	}
	sup := newSupervisor(w, cfg, v, vi, col)
	camps := make([]*analysis.CampaignAccumulator, len(ranges))
	statuses := make([]ShardStatus, len(ranges))
	var wg sync.WaitGroup
	for si, r := range ranges {
		wg.Add(1)
		go func(si int, r Range) {
			defer wg.Done()
			camp, st := sup.superviseShard(si, r)
			if col != nil && st.State != ShardLost && camp != nil {
				// Completed and interrupted shards both ship their campaign:
				// the merged tables then cover exactly the completed prefix
				// of every shard, like RunStream's partial sink. A shard
				// whose submission fails even after retries is as lost as a
				// crashed one — its data never reached the coordinator.
				if serr := sup.submit(si, camp); serr != nil {
					st.State = ShardLost
					st.Err = serr
					st.Faults = append(st.Faults, fmt.Sprintf("submit: %v", serr))
					sup.noteLost(si, st.Restarts, serr)
					camp = nil
				}
			}
			camps[si], statuses[si] = camp, st
		}(si, r)
	}
	wg.Wait()
	cov := buildCoverage(w.NumDomains(), statuses)
	interrupted := false
	for _, st := range statuses {
		if errors.Is(st.Err, scanner.ErrInterrupted) {
			interrupted = true
		}
	}
	if !cov.Complete() && cfg.StrictShards {
		first := firstLost(statuses)
		return nil, cov, fmt.Errorf("shard: %d of %d shards lost (strict mode; first loss: shard %d: %w)",
			len(statuses)-countSurvivors(statuses), len(statuses), first.Shard, first.Err)
	}
	merged, err := mergeShards(cfg, w, camps, col)
	if err != nil {
		return nil, cov, err
	}
	if interrupted {
		return merged, cov, scanner.ErrInterrupted
	}
	return merged, cov, nil
}

func firstLost(statuses []ShardStatus) ShardStatus {
	for _, st := range statuses {
		if st.State == ShardLost {
			return st
		}
	}
	return ShardStatus{Shard: -1}
}

func countSurvivors(statuses []ShardStatus) int {
	n := 0
	for _, st := range statuses {
		if st.State != ShardLost {
			n++
		}
	}
	return n
}

// runShard scans one population slice through every campaign week — one
// supervised attempt. forceResume replays the shard's checkpoint journal
// even on campaigns that did not ask to resume (a restart must pick up the
// crashed attempt's progress); interrupt, when non-nil, overrides the scan
// configuration's interrupt channel (the supervisor passes its merged
// operator∪watchdog channel); hook, when non-nil, observes every delivery
// with the attempt's running count (the fault plan's crash injection
// point); progress feeds the stall watchdog.
func runShard(w *websim.World, cfg Config, v scanner.Vantage, vi, si int, r Range,
	forceResume bool, interrupt <-chan struct{}, hook func(int64) error, progress *atomic.Int64) (*analysis.CampaignAccumulator, error) {
	camp := analysis.NewCampaignAccumulator()
	counter := cfg.Telemetry.Counter(telemetry.Name("shard_domains_total", "shard", strconv.Itoa(si)))
	for _, week := range cfg.Weeks {
		sc := cfg.ForWeek(week)
		sc.Week = week
		sc.Shard = scanner.ShardRange{Start: r.Start, End: r.End}
		sc.Vantage = v
		if sc.Telemetry == nil {
			sc.Telemetry = cfg.Telemetry
		}
		if interrupt != nil {
			sc.Interrupt = interrupt
		}
		if cfg.Checkpoint != "" {
			sc.Checkpoint = filepath.Join(cfg.Checkpoint, vantageDir(v, vi), fmt.Sprintf("shard-%03d", si))
			sc.Resume = cfg.Resume || forceResume
		}
		acc := camp.StartWeek(week, sc.IPv6, w.ASDB())
		sink := cfg.Live.ShardSink(si, acc)
		deliver := func(i int, d *scanner.DomainResult) error {
			counter.Inc()
			n := progress.Add(1)
			if hook != nil {
				if err := hook(n); err != nil {
					return err
				}
			}
			return sink(i, d)
		}
		if err := scanner.RunStream(w, sc, deliver); err != nil {
			return camp, err
		}
	}
	return camp, nil
}

// mergeShards combines the surviving per-shard campaigns in shard order
// over the configured transport; lost shards (nil camps, unsubmitted
// blobs) are skipped. Merging is associative and commutative (the
// analysis merge laws), so the order is a convention, not a correctness
// requirement.
func mergeShards(cfg Config, w *websim.World, camps []*analysis.CampaignAccumulator, col *Collector) (*analysis.CampaignAccumulator, error) {
	if col != nil {
		blobs, err := col.Wait(collectTimeout)
		if err != nil {
			return nil, err
		}
		camps = make([]*analysis.CampaignAccumulator, len(camps))
		for si, blob := range blobs {
			if camps[si], err = analysis.UnmarshalCampaign(blob, w.ASDB()); err != nil {
				return nil, fmt.Errorf("shard: decoding shard %d accumulator: %w", si, err)
			}
		}
	} else if cfg.Transport == TransportSerialized {
		for si, camp := range camps {
			if camp == nil {
				continue
			}
			rt, err := analysis.UnmarshalCampaign(camp.Marshal(), w.ASDB())
			if err != nil {
				return nil, fmt.Errorf("shard: round-tripping shard %d accumulator: %w", si, err)
			}
			camps[si] = rt
		}
	}
	var merged *analysis.CampaignAccumulator
	for _, camp := range camps {
		if camp == nil {
			continue
		}
		if merged == nil {
			merged = camp
			continue
		}
		if err := merged.Merge(camp); err != nil {
			return nil, err
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("shard: every shard was lost; nothing to merge")
	}
	return merged, nil
}

// vantageLabel names a vantage for telemetry and reports.
func vantageLabel(v scanner.Vantage, vi int) string {
	if v.Name != "" {
		return v.Name
	}
	if vi == 0 && v.ExtraDelay == 0 && v.ExtraJitter == 0 {
		return "baseline"
	}
	return fmt.Sprintf("vantage-%d", vi)
}

// vantageDir is the vantage's checkpoint subdirectory: the label when it
// is filesystem-safe, the index otherwise.
func vantageDir(v scanner.Vantage, vi int) string {
	label := vantageLabel(v, vi)
	safe := strings.IndexFunc(label, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_')
	}) < 0
	if !safe {
		label = fmt.Sprintf("vantage-%d", vi)
	}
	return label
}
