package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"quicspin/internal/resilience"
	"quicspin/internal/transport"
	"quicspin/internal/udprun"
)

// The accumulator exchange: each shard worker opens one QUIC-lite
// connection to the collector endpoint and sends its submission on the
// first client stream, closed with FIN. The submission is CRC-framed:
//
//	uvarint shard | uvarint len(blob) | blob | crc32c over everything before
//
// The checksum covers the whole payload — header included — so a single
// bit flip anywhere (a faulty link corrupting the shard index is as fatal
// as one corrupting the blob) turns into a structured decode error and a
// NAK instead of silently mis-attributed data. The collector replies with
// one byte on the same stream: ACK for an accepted (or byte-identical
// duplicate) submission, NAK for a rejected one; the worker retries NAKs
// and ack timeouts with an identical resubmission, which the collector
// deduplicates by shard index and byte equality. Both sides run the exact
// sans-IO transport the scanner emulates, driven over real UDP sockets by
// internal/udprun, so a future multi-process deployment changes where
// workers run, not what bytes they exchange.
const (
	// submitStream is the client-initiated stream carrying the submission.
	submitStream = 0
	// submitAck is the collector's receipt byte.
	submitAck = 0xA5
	// submitNak is the collector's rejection byte: the submission arrived
	// complete but failed to decode (or claimed an out-of-range shard).
	submitNak = 0x5A
)

// castagnoli is the CRC-32C table used to frame submissions.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameSubmission builds the wire payload for one shard's accumulator.
func frameSubmission(shard int, blob []byte) []byte {
	payload := binary.AppendUvarint(make([]byte, 0, len(blob)+2*binary.MaxVarintLen64+crc32.Size), uint64(shard))
	payload = binary.AppendUvarint(payload, uint64(len(blob)))
	payload = append(payload, blob...)
	return binary.BigEndian.AppendUint32(payload, crc32.Checksum(payload, castagnoli))
}

// DecodeError is one rejected submission: what the collector could not
// accept and why. Decode errors surface through Collector.Errors and ride
// on CollectError when shards end up missing.
type DecodeError struct {
	// Shard is the claimed shard index, or -1 when the submission was too
	// mangled to attribute (bad header, checksum mismatch).
	Shard int
	// Reason classifies the rejection: "header", "crc", "shard-range",
	// "length" or "conflict".
	Reason string
	// Detail is the human-readable specifics.
	Detail string
}

func (e *DecodeError) Error() string {
	who := "unattributed submission"
	if e.Shard >= 0 {
		who = fmt.Sprintf("shard %d submission", e.Shard)
	}
	return fmt.Sprintf("shard: %s rejected (%s): %s", who, e.Reason, e.Detail)
}

// parseSubmission validates and splits a framed submission. The returned
// blob aliases data.
func parseSubmission(data []byte, want int) (int, []byte, *DecodeError) {
	if len(data) <= crc32.Size {
		return 0, nil, &DecodeError{Shard: -1, Reason: "header", Detail: fmt.Sprintf("%d bytes is shorter than the checksum trailer", len(data))}
	}
	body, trailer := data[:len(data)-crc32.Size], data[len(data)-crc32.Size:]
	if got, sum := crc32.Checksum(body, castagnoli), binary.BigEndian.Uint32(trailer); got != sum {
		return 0, nil, &DecodeError{Shard: -1, Reason: "crc", Detail: fmt.Sprintf("checksum %08x, want %08x", got, sum)}
	}
	shard, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, &DecodeError{Shard: -1, Reason: "header", Detail: "bad shard varint"}
	}
	body = body[n:]
	if shard >= uint64(want) {
		return 0, nil, &DecodeError{Shard: int(shard), Reason: "shard-range", Detail: fmt.Sprintf("shard %d out of range (collector expects %d shards)", shard, want)}
	}
	size, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, &DecodeError{Shard: int(shard), Reason: "header", Detail: "bad length varint"}
	}
	body = body[n:]
	if uint64(len(body)) != size {
		return 0, nil, &DecodeError{Shard: int(shard), Reason: "length", Detail: fmt.Sprintf("%d payload bytes, header says %d", len(body), size)}
	}
	return int(shard), body, nil
}

// Collector receives serialized shard accumulators over loopback UDP.
type Collector struct {
	pc     net.PacketConn
	cancel context.CancelFunc
	done   chan struct{}

	// handled marks connections whose submission was consumed; only the
	// runner goroutine touches it.
	handled map[*transport.Conn]bool

	mu        sync.Mutex
	want      int
	blobs     map[int][]byte
	abandoned map[int]bool
	decodeErr []DecodeError
	fullDone  bool
	full      chan struct{} // closed once every shard is submitted or abandoned
}

// NewCollector starts a collector expecting one submission per shard on a
// fresh loopback socket (Addr reports where). A non-nil faults profile
// injects datagram faults into the collector's outbound traffic (its acks
// and transport-level replies) — the receive-side half of a fault plan,
// the worker's FaultConn being the send side.
func NewCollector(want int, faults *udprun.FaultConfig) (*Collector, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("shard: collector listen: %w", err)
	}
	c := &Collector{
		pc:        pc,
		done:      make(chan struct{}),
		handled:   map[*transport.Conn]bool{},
		want:      want,
		blobs:     map[int][]byte{},
		abandoned: map[int]bool{},
		full:      make(chan struct{}),
	}
	if want == 0 {
		c.fullDone = true
		close(c.full)
	}
	// One rng for every accepted connection's transport randomness: the
	// runner drives all connections from a single goroutine. The zero
	// Budget is deliberate — submissions are trusted loopback traffic and
	// may exceed the scanner's hostile-endpoint caps.
	rng := rand.New(rand.NewSource(0x5eedc011))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	runnerConn := net.PacketConn(pc)
	if faults != nil {
		cfg := *faults
		cfg.Seed = faults.Seed ^ 0xc011ec7 // distinct stream from the workers'
		runnerConn = udprun.NewFaultConn(runnerConn, cfg)
	}
	// Checksum framing sits outside the fault injector: injected
	// corruption mangles a protected frame, the receiver drops it, and
	// QUIC-lite loss recovery retransmits — corruption degrades to loss
	// instead of reaching the stream.
	runner := udprun.NewEndpointRunner(ep, udprun.NewChecksumConn(runnerConn))
	runner.OnActivity = c.onActivity
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go func() {
		defer close(c.done)
		_ = runner.Run(ctx)
	}()
	return c, nil
}

// Addr is the collector's UDP address (pass to Submit).
func (c *Collector) Addr() net.Addr { return c.pc.LocalAddr() }

// Close stops the collector and releases its socket.
func (c *Collector) Close() {
	c.cancel()
	c.pc.Close()
	<-c.done
}

// onActivity consumes completed submission streams, acking accepted ones
// and nak'ing rejects. It runs on the endpoint runner's goroutine after
// every receive or timer event.
func (c *Collector) onActivity(ep *transport.Endpoint, now time.Time) {
	for _, conn := range ep.Conns() {
		if c.handled[conn] || conn.Terminating() {
			continue
		}
		data, fin := conn.StreamRecv(submitStream)
		if !fin {
			continue
		}
		c.handled[conn] = true
		reply := byte(submitAck)
		if shard, blob, derr := parseSubmission(data, c.want); derr != nil {
			// The worker retries a NAK with an identical resubmission, so
			// transport corruption that slipped past QUIC-lite recovery
			// heals here instead of losing the shard.
			c.noteDecodeError(*derr)
			reply = submitNak
		} else {
			// record dedupes; a byte-different conflict is recorded there
			// but still acked — first submission wins and the worker must
			// not hang retrying a verdict that will never change.
			c.record(shard, blob)
		}
		_ = conn.SendStream(submitStream, []byte{reply}, true)
	}
}

// record stores one decoded submission, deduplicating resubmissions by
// byte equality (idempotence for retried submits whose ack was lost).
func (c *Collector) record(shard int, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.blobs[shard]; dup {
		if !bytes.Equal(prev, blob) {
			c.decodeErr = append(c.decodeErr, DecodeError{
				Shard:  shard,
				Reason: "conflict",
				Detail: fmt.Sprintf("duplicate submission differs from the recorded one (%d vs %d bytes); keeping the first", len(blob), len(prev)),
			})
		}
		return
	}
	c.blobs[shard] = blob
	c.maybeFullLocked()
}

// noteDecodeError appends one structured rejection.
func (c *Collector) noteDecodeError(e DecodeError) {
	c.mu.Lock()
	c.decodeErr = append(c.decodeErr, e)
	c.mu.Unlock()
}

// Abandon tells the collector to stop waiting for one shard: the
// supervisor lost it and no submission is coming. Wait then completes as
// soon as every non-abandoned shard has submitted, instead of burning the
// whole timeout on a shard known to be dead.
func (c *Collector) Abandon(shard int) {
	c.mu.Lock()
	c.abandoned[shard] = true
	c.maybeFullLocked()
	c.mu.Unlock()
}

// maybeFullLocked closes full once every shard is accounted for —
// submitted or abandoned. Caller holds c.mu.
func (c *Collector) maybeFullLocked() {
	if c.fullDone {
		return
	}
	covered := len(c.blobs)
	for shard := range c.abandoned {
		if _, ok := c.blobs[shard]; !ok {
			covered++
		}
	}
	if covered >= c.want {
		c.fullDone = true
		close(c.full)
	}
}

// Errors returns the structured decode errors recorded so far (rejected
// and conflicting submissions), oldest first.
func (c *Collector) Errors() []DecodeError {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]DecodeError(nil), c.decodeErr...)
}

// CollectError is Wait's structured failure: which shards never arrived
// and every decode rejection recorded along the way — so a missing shard
// caused by, say, persistent checksum failures names its cause instead of
// reading as a bare timeout.
type CollectError struct {
	Want    int
	Got     int
	Missing []int
	Decode  []DecodeError
}

func (e *CollectError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard: collector timed out with %d of %d accumulators (missing shards %v)", e.Got, e.Want, e.Missing)
	for i := range e.Decode {
		b.WriteString("; ")
		b.WriteString(e.Decode[i].Error())
	}
	return b.String()
}

// Wait blocks until every shard has submitted or been abandoned (or the
// timeout elapses) and returns the blobs keyed by shard index — abandoned
// shards are simply absent. Timeouts return a *CollectError naming the
// missing shards and any recorded decode errors.
func (c *Collector) Wait(timeout time.Duration) (map[int][]byte, error) {
	select {
	case <-c.full:
	case <-time.After(timeout):
		c.mu.Lock()
		defer c.mu.Unlock()
		cerr := &CollectError{
			Want:   c.want,
			Got:    len(c.blobs),
			Decode: append([]DecodeError(nil), c.decodeErr...),
		}
		for shard := 0; shard < c.want; shard++ {
			if _, ok := c.blobs[shard]; !ok && !c.abandoned[shard] {
				cerr.Missing = append(cerr.Missing, shard)
			}
		}
		sort.Ints(cerr.Missing)
		return nil, cerr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int][]byte, len(c.blobs))
	for k, v := range c.blobs {
		out[k] = v
	}
	return out, nil
}

// Submit ships one shard's serialized campaign to the collector with the
// default retry policy and waits for the ack.
func (c *Collector) Submit(shard int, blob []byte) error {
	return SubmitWithPolicy(c.Addr().String(), shard, blob, SubmitPolicy{})
}

// SubmitError is a failed submission with its full retry history: which
// shard, how many attempts were burned and over how long. Unwrap exposes
// the final attempt's error.
type SubmitError struct {
	Shard    int
	Attempts int
	Elapsed  time.Duration
	Err      error
}

func (e *SubmitError) Error() string {
	return fmt.Sprintf("shard: submit shard %d failed after %d attempt(s) in %v: %v",
		e.Shard, e.Attempts, e.Elapsed.Round(time.Millisecond), e.Err)
}

func (e *SubmitError) Unwrap() error { return e.Err }

// SubmitPolicy shapes a retried submission.
type SubmitPolicy struct {
	// MaxAttempts bounds total tries (default 3). 1 disables retrying.
	MaxAttempts int
	// AckTimeout bounds each attempt's wait for the collector's reply
	// (default 5s).
	AckTimeout time.Duration
	// Backoff paces the real-time sleep between attempts; the zero value
	// takes the resilience defaults (250ms base, doubling, 5s cap).
	Backoff resilience.RetryPolicy
	// Faults, when non-nil, wraps the submit socket in a FaultConn — the
	// send-side half of a transport fault plan.
	Faults *udprun.FaultConfig
	// OnRetry observes each retry before its backoff sleep: the upcoming
	// attempt number (1-based count of completed attempts) and the error
	// that caused it.
	OnRetry func(attempt int, err error)
	// Rng drives backoff jitter; nil derives a deterministic one from the
	// shard index.
	Rng *rand.Rand
}

func (p SubmitPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 3
	}
	return p.MaxAttempts
}

func (p SubmitPolicy) ackTimeout() time.Duration {
	if p.AckTimeout <= 0 {
		return 5 * time.Second
	}
	return p.AckTimeout
}

// Submit connects to a collector at addr and delivers one shard's
// serialized campaign over a QUIC-lite connection on a fresh loopback
// socket, returning once the collector acked receipt. Single attempt; use
// SubmitWithPolicy for retried submission.
func Submit(addr string, shard int, blob []byte, timeout time.Duration) error {
	return SubmitWithPolicy(addr, shard, blob, SubmitPolicy{MaxAttempts: 1, AckTimeout: timeout})
}

// SubmitWithPolicy delivers one shard's serialized campaign with bounded
// retries: each NAK or ack timeout burns one attempt and resends an
// identical submission after a backoff (the collector deduplicates, so
// resubmission is idempotent). Failure returns a *SubmitError.
func SubmitWithPolicy(addr string, shard int, blob []byte, p SubmitPolicy) error {
	attempts := p.attempts()
	rng := p.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5eedacc + int64(shard)))
	}
	start := time.Now()
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if p.OnRetry != nil {
				p.OnRetry(attempt, err)
			}
			time.Sleep(p.Backoff.Backoff(rng, attempt-1))
		}
		if err = submitOnce(addr, shard, blob, p.ackTimeout(), p.Faults, attempt); err == nil {
			return nil
		}
	}
	return &SubmitError{Shard: shard, Attempts: attempts, Elapsed: time.Since(start), Err: err}
}

// submitOnce performs one submission attempt.
func submitOnce(addr string, shard int, blob []byte, timeout time.Duration, faults *udprun.FaultConfig, attempt int) error {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pc.Close()
	runnerConn := net.PacketConn(pc)
	if faults != nil {
		cfg := *faults
		// Each (shard, attempt) pair draws a distinct deterministic fault
		// stream, so a retry is not doomed to replay the attempt's faults.
		cfg.Seed = faults.Seed ^ int64(shard+1)<<16 ^ int64(attempt)
		runnerConn = udprun.NewFaultConn(runnerConn, cfg)
	}
	runnerConn = udprun.NewChecksumConn(runnerConn)
	rng := rand.New(rand.NewSource(0x5eed + int64(shard)*977 + int64(attempt)))
	conn := transport.NewClientConn(transport.Config{Rng: rng}, time.Now())
	if err := conn.SendStream(submitStream, frameSubmission(shard, blob), true); err != nil {
		return err
	}
	runner := udprun.NewConnRunner(conn, runnerConn, raddr)
	acked, naked := false, false
	runner.OnActivity = func(conn *transport.Conn, now time.Time) {
		if acked || naked {
			return
		}
		if data, fin := conn.StreamRecv(submitStream); fin {
			if len(data) > 0 && data[len(data)-1] == submitAck {
				acked = true
			} else {
				naked = true
			}
			conn.Close(now, 0, "submitted")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err = runner.Run(ctx)
	switch {
	case acked:
		return nil
	case naked:
		return fmt.Errorf("collector rejected submission (nak)")
	case err != nil:
		return err
	default:
		return fmt.Errorf("connection closed before ack")
	}
}
