package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"quicspin/internal/transport"
	"quicspin/internal/udprun"
)

// The accumulator exchange: each shard worker opens one QUIC-lite
// connection to the collector endpoint and sends its submission on the
// first client stream — a uvarint shard index followed by the serialized
// campaign (the analysis wire format, self-delimiting and versioned) —
// closed with FIN. The collector replies with a single ack byte on the
// same stream, the worker closes the connection, done. Both sides run the
// exact sans-IO transport the scanner emulates, driven over real UDP
// sockets by internal/udprun, so a future multi-process deployment changes
// where workers run, not what bytes they exchange.
const (
	// submitStream is the client-initiated stream carrying the submission.
	submitStream = 0
	// submitAck is the collector's receipt byte.
	submitAck = 0xA5
)

// Collector receives serialized shard accumulators over loopback UDP.
type Collector struct {
	pc     net.PacketConn
	cancel context.CancelFunc
	done   chan struct{}

	// handled marks connections whose submission was consumed; only the
	// runner goroutine touches it.
	handled map[*transport.Conn]bool

	mu    sync.Mutex
	want  int
	blobs map[int][]byte
	full  chan struct{} // closed when every shard has submitted
}

// NewCollector starts a collector expecting one submission per shard on a
// fresh loopback socket (Addr reports where).
func NewCollector(want int) (*Collector, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("shard: collector listen: %w", err)
	}
	c := &Collector{
		pc:      pc,
		done:    make(chan struct{}),
		handled: map[*transport.Conn]bool{},
		want:    want,
		blobs:   map[int][]byte{},
		full:    make(chan struct{}),
	}
	if want == 0 {
		close(c.full)
	}
	// One rng for every accepted connection's transport randomness: the
	// runner drives all connections from a single goroutine. The zero
	// Budget is deliberate — submissions are trusted loopback traffic and
	// may exceed the scanner's hostile-endpoint caps.
	rng := rand.New(rand.NewSource(0x5eedc011))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	runner := udprun.NewEndpointRunner(ep, pc)
	runner.OnActivity = c.onActivity
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go func() {
		defer close(c.done)
		_ = runner.Run(ctx)
	}()
	return c, nil
}

// Addr is the collector's UDP address (pass to Submit).
func (c *Collector) Addr() net.Addr { return c.pc.LocalAddr() }

// Close stops the collector and releases its socket.
func (c *Collector) Close() {
	c.cancel()
	c.pc.Close()
	<-c.done
}

// onActivity consumes completed submission streams and acks them. It runs
// on the endpoint runner's goroutine after every receive or timer event.
func (c *Collector) onActivity(ep *transport.Endpoint, now time.Time) {
	for _, conn := range ep.Conns() {
		if c.handled[conn] || conn.Terminating() {
			continue
		}
		data, fin := conn.StreamRecv(submitStream)
		if !fin {
			continue
		}
		c.handled[conn] = true
		if shard, blob, err := parseSubmission(data, c.want); err == nil {
			c.record(shard, blob)
		}
		// Ack regardless: a malformed submission is a coordinator bug that
		// Wait will surface as a missing shard; the worker need not hang.
		_ = conn.SendStream(submitStream, []byte{submitAck}, true)
	}
}

func (c *Collector) record(shard int, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.blobs[shard]; dup {
		return
	}
	c.blobs[shard] = blob
	if len(c.blobs) == c.want {
		close(c.full)
	}
}

// parseSubmission splits a submission payload into shard index and
// accumulator bytes.
func parseSubmission(data []byte, want int) (int, []byte, error) {
	shard, n := binary.Uvarint(data)
	if n <= 0 || shard >= uint64(want) {
		return 0, nil, fmt.Errorf("shard: bad submission header")
	}
	return int(shard), data[n:], nil
}

// Wait blocks until every shard has submitted (or the timeout elapses) and
// returns the blobs keyed by shard index.
func (c *Collector) Wait(timeout time.Duration) (map[int][]byte, error) {
	select {
	case <-c.full:
	case <-time.After(timeout):
		c.mu.Lock()
		got := len(c.blobs)
		c.mu.Unlock()
		return nil, fmt.Errorf("shard: collector timed out with %d of %d accumulators", got, c.want)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int][]byte, len(c.blobs))
	for k, v := range c.blobs {
		out[k] = v
	}
	return out, nil
}

// Submit ships one shard's serialized campaign to the collector and waits
// for the ack.
func (c *Collector) Submit(shard int, blob []byte) error {
	return Submit(c.Addr().String(), shard, blob, collectTimeout)
}

// Submit connects to a collector at addr and delivers one shard's
// serialized campaign over a QUIC-lite connection on a fresh loopback
// socket, returning once the collector acked receipt.
func Submit(addr string, shard int, blob []byte, timeout time.Duration) error {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("shard: submit shard %d: %w", shard, err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shard: submit shard %d: %w", shard, err)
	}
	defer pc.Close()
	rng := rand.New(rand.NewSource(0x5eed + int64(shard)))
	conn := transport.NewClientConn(transport.Config{Rng: rng}, time.Now())
	payload := binary.AppendUvarint(make([]byte, 0, len(blob)+binary.MaxVarintLen64), uint64(shard))
	payload = append(payload, blob...)
	if err := conn.SendStream(submitStream, payload, true); err != nil {
		return fmt.Errorf("shard: submit shard %d: %w", shard, err)
	}
	runner := udprun.NewConnRunner(conn, pc, raddr)
	acked := false
	runner.OnActivity = func(conn *transport.Conn, now time.Time) {
		if acked {
			return
		}
		if _, fin := conn.StreamRecv(submitStream); fin {
			acked = true
			conn.Close(now, 0, "submitted")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err = runner.Run(ctx)
	if acked {
		return nil
	}
	if err == nil {
		err = fmt.Errorf("connection closed before ack")
	}
	return fmt.Errorf("shard: submit shard %d: %w", shard, err)
}
