package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20, 30})
	for _, v := range []float64{-5, 0, 5, 9.999, 10, 25, 30, 100} {
		h.Add(v)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.N != 8 {
		t.Errorf("N = %d", h.N)
	}
	if got := h.Share(0); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("Share(0) = %v", got)
	}
}

func TestHistogramEdgeInclusion(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2})
	h.Add(1) // exactly on an interior edge → bin [1,2)
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	h.Add(2) // on the last edge → overflow
	if h.Overflow != 1 {
		t.Errorf("overflow = %d", h.Overflow)
	}
}

func TestHistogramShares(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Add(v)
	}
	if got := h.ShareBelow(2); got != 0.5 {
		t.Errorf("ShareBelow(2) = %v", got)
	}
	if got := h.ShareAtOrAbove(2); got != 0.5 {
		t.Errorf("ShareAtOrAbove(2) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	h.Add(0.5)
	h.Add(-1)
	s := h.String()
	if !strings.Contains(s, "[0, 1)") || !strings.Contains(s, "< 0") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramQuickConservation(t *testing.T) {
	// Property: N equals underflow + overflow + sum of bin counts.
	f := func(vals []float64) bool {
		h := NewHistogram([]float64{-10, 0, 10})
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		total := h.Underflow + h.Overflow
		for _, c := range h.Counts {
			total += c
		}
		return total == h.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMF(t *testing.T) {
	// Hand-checked values.
	if got := BinomialPMF(2, 1, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("B(2,0.5) P[X=1] = %v", got)
	}
	// RFC 9000 model of Fig. 2: each weekly connection spins with
	// p = 15/16; P[spin in all 12 weeks] = (15/16)^12 ≈ 0.4609.
	got := BinomialPMF(12, 12, 15.0/16)
	want := math.Pow(15.0/16, 12)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P[12/12] = %v, want %v", got, want)
	}
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Error("out-of-range k must give 0")
	}
	// PMF sums to 1.
	var sum float64
	for k := 0; k <= 12; k++ {
		sum += BinomialPMF(12, k, 7.0/8)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sum = %v", sum)
	}
}

func TestMeanMedianQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("odd-length median wrong")
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty-input helpers must return 0")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Median/Quantile mutated input")
	}
}

func TestPercentAndRatio(t *testing.T) {
	if Percent(1, 3) != "33.3%" {
		t.Errorf("Percent = %q", Percent(1, 3))
	}
	if Percent(1, 0) != "n/a" {
		t.Error("zero denominator must give n/a")
	}
	if Ratio(1, 4) != 0.25 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram([]float64{0, 1, 5, 10, 25, 50, 100, 200, 500, 1000})
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 1200))
	}
}
