// Package stats provides the statistical helpers behind the paper's tables
// and figures: histograms with custom bin edges (Figs. 3 and 4), share
// computations, summary statistics, and the binomial model used for the
// RFC-compliance reference lines of Fig. 2.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts values in bins defined by ascending edges: bin i covers
// [Edges[i], Edges[i+1]), with optional open-ended underflow and overflow
// bins.
type Histogram struct {
	Edges     []float64
	Counts    []int
	Underflow int
	Overflow  int
	N         int
}

// NewHistogram builds an empty histogram over the given ascending edges.
// It panics on fewer than two or non-ascending edges (programming error).
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must ascend")
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{Edges: e, Counts: make([]int, len(edges)-1)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.N++
	switch {
	case v < h.Edges[0]:
		h.Underflow++
	case v >= h.Edges[len(h.Edges)-1]:
		h.Overflow++
	default:
		i := sort.SearchFloat64s(h.Edges, v)
		// SearchFloat64s returns the first edge >= v; adjust to bin index.
		if i < len(h.Edges) && h.Edges[i] == v {
			h.Counts[i]++
		} else {
			h.Counts[i-1]++
		}
	}
}

// Share returns the fraction of all recorded values in bin i.
func (h *Histogram) Share(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// ShareBelow returns the fraction of values below x (x must be an edge for
// exact results; otherwise the covering bin is excluded).
func (h *Histogram) ShareBelow(x float64) float64 {
	if h.N == 0 {
		return 0
	}
	c := h.Underflow
	for i, e := range h.Edges[1:] {
		if e <= x {
			c += h.Counts[i]
		}
	}
	return float64(c) / float64(h.N)
}

// ShareAtOrAbove returns the fraction of values at or above x.
func (h *Histogram) ShareAtOrAbove(x float64) float64 {
	if h.N == 0 {
		return 0
	}
	c := h.Overflow
	for i := range h.Counts {
		if h.Edges[i] >= x {
			c += h.Counts[i]
		}
	}
	return float64(c) / float64(h.N)
}

// String renders the histogram as aligned text rows with relative shares.
func (h *Histogram) String() string {
	var b strings.Builder
	row := func(label string, count int) {
		share := 0.0
		if h.N > 0 {
			share = float64(count) / float64(h.N) * 100
		}
		bar := strings.Repeat("█", int(share/2))
		fmt.Fprintf(&b, "%-22s %9d  %6.2f%% %s\n", label, count, share, bar)
	}
	if h.Underflow > 0 {
		row(fmt.Sprintf("< %g", h.Edges[0]), h.Underflow)
	}
	for i := range h.Counts {
		row(fmt.Sprintf("[%g, %g)", h.Edges[i], h.Edges[i+1]), h.Counts[i])
	}
	if h.Overflow > 0 {
		row(fmt.Sprintf(">= %g", h.Edges[len(h.Edges)-1]), h.Overflow)
	}
	return b.String()
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Work in log space for numerical stability at larger n.
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	l1, _ := math.Lgamma(float64(k + 1))
	l2, _ := math.Lgamma(float64(n - k + 1))
	return lg - l1 - l2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (average of the middle two for even
// lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return (tmp[m-1] + tmp[m]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation, or 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[len(tmp)-1]
	}
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(tmp) {
		return tmp[lo]
	}
	return tmp[lo]*(1-frac) + tmp[lo+1]*frac
}

// Percent formats a fraction as a percentage string like the paper's
// tables.
func Percent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", float64(num)/float64(den)*100)
}

// Ratio returns num/den, or 0 when den == 0.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
