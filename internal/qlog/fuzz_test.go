package qlog

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// FuzzQlogParse feeds arbitrary byte streams through Parse: it must return
// a descriptive error on malformed input — never panic — and every
// accepted trace must carry a version header and named events.
func FuzzQlogParse(f *testing.F) {
	// A well-formed two-event trace produced by the package's own Writer.
	var valid bytes.Buffer
	w, err := NewWriter(&valid, TraceHeader{
		VantagePoint:  "client",
		ReferenceTime: time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC),
	}, true)
	if err != nil {
		f.Fatalf("seed writer: %v", err)
	}
	spin := true
	ref := time.Date(2022, 4, 11, 0, 0, 0, 123, time.UTC)
	if err := w.PacketReceived(ref, PacketHeader{PacketType: "1RTT", PacketNumber: 7, SpinBit: &spin}, 1200); err != nil {
		f.Fatalf("seed event: %v", err)
	}
	if err := w.MetricsUpdated(ref, MetricsEvent{LatestRTTMs: 12.5}); err != nil {
		f.Fatalf("seed event: %v", err)
	}
	if err := w.Close(); err != nil {
		f.Fatalf("seed close: %v", err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"qlog_version":"0.4","vantage_point":"client","reference_time":"2022-04-11T00:00:00Z"}` + "\n"))
	f.Add([]byte("{\"qlog_version\":\"0.4\"}\n{\"time\":1,\"name\":\"transport:packet_received\",\"data\":{}}\n"))
	f.Add([]byte("{\"qlog_version\":\"0.4\"}\n{\"time\":1}\n"))  // unnamed event
	f.Add([]byte("{\"qlog_version\":\"0.4\"}\nnull\n"))          // null event record
	f.Add([]byte("\x1e{\"qlog_version\":\"0.4\"}\n\x1e[1,2]\n")) // RS-framed garbage event
	f.Add([]byte("not json at all"))
	f.Add([]byte("{}"))
	f.Add([]byte{})
	f.Add([]byte("{\"qlog_version\":\"0.4\"}\n{\"name\":\"" + strings.Repeat("x", 512) + "\"}"))
	// Hostile-profile shape: the qlog-garbage profile starts with a
	// plausible trace header, then streams RS-framed records that truncate
	// mid-object and finally decay into raw binary junk.
	garbage := []byte("{\"qlog_version\":\"0.3\",\"vantage_point\":\"server\"}\n")
	for i := 0; i < 8; i++ {
		garbage = append(garbage, 0x1e)
		garbage = append(garbage, []byte(fmt.Sprintf("{\"time\":%d,\"name\":\"transport:pa", i))...)
		garbage = append(garbage, '\n')
	}
	garbage = append(garbage, 0x00, 0xff, 0x1e, 0x80, 0x7f, 0x00)
	f.Add(garbage)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("non-nil trace returned alongside an error")
			}
			return
		}
		if tr.Header.QlogVersion == "" {
			t.Fatal("accepted trace without qlog_version")
		}
		for i := range tr.Events {
			if tr.Events[i].Name == "" {
				t.Fatalf("accepted unnamed event %d", i)
			}
		}
	})
}
