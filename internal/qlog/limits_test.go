package qlog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestParseRecordTooLong checks that a single trace record beyond the
// 16 MiB line buffer (qlog-garbage shape) surfaces as a structured
// ErrTooLong instead of a bare bufio error or an unbounded allocation.
func TestParseRecordTooLong(t *testing.T) {
	var b bytes.Buffer
	b.WriteString(`{"qlog_version":"0.4","vantage_point":"client"}` + "\n")
	b.WriteString(`{"name":"` + strings.Repeat("x", maxRecordBytes+1024) + `"}` + "\n")
	tr, err := Parse(&b)
	if tr != nil {
		t.Fatal("trace returned alongside an error")
	}
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}
