// Package qlog implements a qlog-compatible structured endpoint trace
// (draft-ietf-quic-qlog-main-schema, Marx et al.), serialised as JSON text
// sequences (one record per line, optionally RS-framed as in .sqlog files).
//
// The paper's measurement pipeline stores one qlog trace per QUIC
// connection and post-processes the packet_received events; the authors
// extended quic-go's qlog output with the spin-bit state, which this
// package models as the "spin_bit" field of the packet header.
package qlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Version is the qlog_version emitted in trace headers.
const Version = "0.4"

// maxRecordBytes is the largest single trace record Parse accepts.
const maxRecordBytes = 16 * 1024 * 1024

// ErrTooLong reports a trace record exceeding maxRecordBytes (a hostile or
// corrupt trace whose line never ends). Match with errors.Is.
var ErrTooLong = errors.New("qlog: record exceeds line buffer")

// Event names used by this library (a subset of the qlog event catalogue).
const (
	EventPacketSent     = "transport:packet_sent"
	EventPacketReceived = "transport:packet_received"
	EventMetricsUpdated = "recovery:metrics_updated"
	EventConnStarted    = "connectivity:connection_started"
	EventConnClosed     = "connectivity:connection_closed"
)

// rs is the ASCII record separator that frames JSON-SEQ records.
const rs = 0x1e

// TraceHeader is the first record of a trace: metadata about the vantage
// point and the connection, plus free-form common fields used by the
// scanner (domain, IP, measurement week, target list).
type TraceHeader struct {
	QlogVersion   string            `json:"qlog_version"`
	Title         string            `json:"title,omitempty"`
	VantagePoint  string            `json:"vantage_point"`
	ODCID         string            `json:"odcid,omitempty"`
	ReferenceTime time.Time         `json:"reference_time"`
	CommonFields  map[string]string `json:"common_fields,omitempty"`
}

// PacketHeader mirrors the qlog PacketHeader type; SpinBit is the
// measurement extension the paper adds.
type PacketHeader struct {
	PacketType   string `json:"packet_type"` // "initial", "handshake", "1RTT"
	PacketNumber uint64 `json:"packet_number"`
	SpinBit      *bool  `json:"spin_bit,omitempty"`
	KeyPhase     *bool  `json:"key_phase,omitempty"`
	VEC          *uint8 `json:"vec,omitempty"` // three-bit extension
}

// PacketEvent is the data of packet_sent / packet_received events.
type PacketEvent struct {
	Header PacketHeader `json:"header"`
	// Length is the packet length in bytes including the header.
	Length int `json:"length,omitempty"`
}

// MetricsEvent is the data of recovery:metrics_updated events, carrying the
// QUIC stack's internal RTT estimator state (the paper's baseline).
type MetricsEvent struct {
	LatestRTTMs   float64 `json:"latest_rtt,omitempty"`
	SmoothedRTTMs float64 `json:"smoothed_rtt,omitempty"`
	MinRTTMs      float64 `json:"min_rtt,omitempty"`
	RTTVarMs      float64 `json:"rtt_variance,omitempty"`
	AckDelayMs    float64 `json:"ack_delay,omitempty"`
}

// ConnectivityEvent is the data of connection_started / connection_closed.
type ConnectivityEvent struct {
	Local   string `json:"local,omitempty"`
	Remote  string `json:"remote,omitempty"`
	Trigger string `json:"trigger,omitempty"`
}

// Event is one qlog event: a name, a time relative to the trace reference
// time (qlog convention: float milliseconds), and typed data.
type Event struct {
	// RelTimeMs is the event time in milliseconds since ReferenceTime.
	RelTimeMs float64 `json:"time"`
	// Name is the qualified event name, e.g. "transport:packet_received".
	Name string `json:"name"`
	// Data holds exactly one of the typed payloads below, matching Name.
	Data json.RawMessage `json:"data,omitempty"`
}

// Packet decodes the event payload as a PacketEvent. It returns an error if
// the event is not a packet event.
func (e *Event) Packet() (*PacketEvent, error) {
	if e.Name != EventPacketSent && e.Name != EventPacketReceived {
		return nil, fmt.Errorf("qlog: event %q is not a packet event", e.Name)
	}
	var p PacketEvent
	if err := json.Unmarshal(e.Data, &p); err != nil {
		return nil, fmt.Errorf("qlog: decoding %s data: %w", e.Name, err)
	}
	return &p, nil
}

// Metrics decodes the event payload as a MetricsEvent.
func (e *Event) Metrics() (*MetricsEvent, error) {
	if e.Name != EventMetricsUpdated {
		return nil, fmt.Errorf("qlog: event %q is not a metrics event", e.Name)
	}
	var m MetricsEvent
	if err := json.Unmarshal(e.Data, &m); err != nil {
		return nil, fmt.Errorf("qlog: decoding metrics data: %w", err)
	}
	return &m, nil
}

// Trace is a fully parsed qlog trace.
type Trace struct {
	Header TraceHeader
	Events []Event
}

// Time returns the absolute time of event i.
func (t *Trace) Time(i int) time.Time {
	return t.Header.ReferenceTime.Add(time.Duration(t.Events[i].RelTimeMs * float64(time.Millisecond)))
}

// Writer streams a qlog trace to an io.Writer as JSON-SEQ records.
// It is not safe for concurrent use.
type Writer struct {
	w      *bufio.Writer
	ref    time.Time
	seq    bool // emit RS framing
	events int
	err    error
}

// NewWriter writes the trace header and returns a Writer. If seqFramed is
// true, records are prefixed with the JSON-SEQ record separator (0x1E) as in
// .sqlog files; otherwise plain newline-delimited JSON is produced.
func NewWriter(w io.Writer, hdr TraceHeader, seqFramed bool) (*Writer, error) {
	hdr.QlogVersion = Version
	tw := &Writer{w: bufio.NewWriter(w), ref: hdr.ReferenceTime, seq: seqFramed}
	if err := tw.writeRecord(hdr); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) writeRecord(v any) error {
	if w.err != nil {
		return w.err
	}
	b, err := json.Marshal(v)
	if err != nil {
		w.err = fmt.Errorf("qlog: marshal record: %w", err)
		return w.err
	}
	if w.seq {
		if err := w.w.WriteByte(rs); err != nil {
			w.err = err
			return err
		}
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.events++
	return nil
}

// Emit writes one event with the given absolute timestamp and typed data.
func (w *Writer) Emit(at time.Time, name string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		w.err = fmt.Errorf("qlog: marshal %s data: %w", name, err)
		return w.err
	}
	return w.writeRecord(Event{
		RelTimeMs: float64(at.Sub(w.ref)) / float64(time.Millisecond),
		Name:      name,
		Data:      raw,
	})
}

// PacketReceived emits a packet_received event with the spin-bit extension.
func (w *Writer) PacketReceived(at time.Time, hdr PacketHeader, length int) error {
	return w.Emit(at, EventPacketReceived, PacketEvent{Header: hdr, Length: length})
}

// PacketSent emits a packet_sent event.
func (w *Writer) PacketSent(at time.Time, hdr PacketHeader, length int) error {
	return w.Emit(at, EventPacketSent, PacketEvent{Header: hdr, Length: length})
}

// MetricsUpdated emits a recovery:metrics_updated event.
func (w *Writer) MetricsUpdated(at time.Time, m MetricsEvent) error {
	return w.Emit(at, EventMetricsUpdated, m)
}

// Close flushes buffered records. The Writer must not be used afterwards.
// A flush failure is retained, so Err() reports it consistently — callers
// that check either Close's return or Err() (but not both) see the same
// error.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// Err returns the first error encountered while writing.
func (w *Writer) Err() error { return w.err }

// Parse reads a complete trace (header record plus events) from r,
// accepting both RS-framed JSON-SEQ and plain NDJSON.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxRecordBytes)
	var tr Trace
	first := true
	for sc.Scan() {
		line := bytes.TrimPrefix(bytes.TrimSpace(sc.Bytes()), []byte{rs})
		if len(line) == 0 {
			continue
		}
		if first {
			if err := json.Unmarshal(line, &tr.Header); err != nil {
				return nil, fmt.Errorf("qlog: parse header: %w", err)
			}
			if tr.Header.QlogVersion == "" {
				return nil, fmt.Errorf("qlog: first record lacks qlog_version")
			}
			first = false
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("qlog: parse event %d: %w", len(tr.Events), err)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("qlog: event %d lacks a name (record %q)", len(tr.Events), truncateForErr(line))
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// A record exceeding the 16 MiB line buffer is a structured,
			// classifiable condition (hostile or corrupt trace), not a
			// silently truncated parse.
			return nil, fmt.Errorf("%w: record exceeds %d bytes", ErrTooLong, maxRecordBytes)
		}
		return nil, fmt.Errorf("qlog: read: %w", err)
	}
	if first {
		return nil, io.ErrUnexpectedEOF
	}
	return &tr, nil
}

// truncateForErr bounds the amount of a malformed record quoted in errors.
func truncateForErr(line []byte) []byte {
	const max = 64
	if len(line) <= max {
		return line
	}
	return line[:max]
}
