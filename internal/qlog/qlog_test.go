package qlog

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

var ref = time.Date(2023, 5, 15, 9, 0, 0, 0, time.UTC)

func boolp(b bool) *bool { return &b }

func writeSampleTrace(t *testing.T, seqFramed bool) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, TraceHeader{
		Title:         "test",
		VantagePoint:  "client",
		ODCID:         "c0ffee",
		ReferenceTime: ref,
		CommonFields:  map[string]string{"domain": "www.example.com", "ip": "192.0.2.1"},
	}, seqFramed)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.PacketSent(ref, PacketHeader{PacketType: "initial", PacketNumber: 0}, 1200); err != nil {
		t.Fatal(err)
	}
	if err := w.PacketReceived(ref.Add(50*time.Millisecond), PacketHeader{
		PacketType: "1RTT", PacketNumber: 1, SpinBit: boolp(true),
	}, 300); err != nil {
		t.Fatal(err)
	}
	if err := w.MetricsUpdated(ref.Add(51*time.Millisecond), MetricsEvent{
		LatestRTTMs: 50.0, SmoothedRTTMs: 50.0, MinRTTMs: 50.0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return &buf
}

func TestRoundTrip(t *testing.T) {
	for _, seq := range []bool{false, true} {
		buf := writeSampleTrace(t, seq)
		tr, err := Parse(buf)
		if err != nil {
			t.Fatalf("Parse(seq=%v): %v", seq, err)
		}
		if tr.Header.QlogVersion != Version || tr.Header.ODCID != "c0ffee" {
			t.Errorf("header = %+v", tr.Header)
		}
		if tr.Header.CommonFields["domain"] != "www.example.com" {
			t.Errorf("common fields = %v", tr.Header.CommonFields)
		}
		if len(tr.Events) != 3 {
			t.Fatalf("events = %d, want 3", len(tr.Events))
		}
		if tr.Events[0].Name != EventPacketSent || tr.Events[1].Name != EventPacketReceived {
			t.Errorf("event names: %s, %s", tr.Events[0].Name, tr.Events[1].Name)
		}
		p, err := tr.Events[1].Packet()
		if err != nil {
			t.Fatalf("Packet(): %v", err)
		}
		if p.Header.PacketType != "1RTT" || p.Header.PacketNumber != 1 ||
			p.Header.SpinBit == nil || !*p.Header.SpinBit || p.Length != 300 {
			t.Errorf("packet event = %+v", p)
		}
		m, err := tr.Events[2].Metrics()
		if err != nil {
			t.Fatalf("Metrics(): %v", err)
		}
		if m.LatestRTTMs != 50.0 {
			t.Errorf("metrics = %+v", m)
		}
		if got := tr.Time(1); !got.Equal(ref.Add(50 * time.Millisecond)) {
			t.Errorf("Time(1) = %v", got)
		}
	}
}

func TestSeqFraming(t *testing.T) {
	buf := writeSampleTrace(t, true)
	if buf.Bytes()[0] != 0x1e {
		t.Error("JSON-SEQ record separator missing")
	}
	plain := writeSampleTrace(t, false)
	if plain.Bytes()[0] == 0x1e {
		t.Error("NDJSON output starts with record separator")
	}
}

func TestSpinBitOmittedWhenNil(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, TraceHeader{VantagePoint: "client", ReferenceTime: ref}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PacketReceived(ref, PacketHeader{PacketType: "initial", PacketNumber: 0}, 100); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if strings.Contains(buf.String(), "spin_bit") {
		t.Error("spin_bit serialised for long-header packet")
	}
}

func TestEventTypeMismatch(t *testing.T) {
	buf := writeSampleTrace(t, false)
	tr, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Events[0].Metrics(); err == nil {
		t.Error("Metrics() on packet event succeeded")
	}
	if _, err := tr.Events[2].Packet(); err == nil {
		t.Error("Packet() on metrics event succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err != io.ErrUnexpectedEOF {
		t.Errorf("empty input: err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := Parse(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed header accepted")
	}
	if _, err := Parse(strings.NewReader(`{"foo": 1}` + "\n")); err == nil {
		t.Error("header without qlog_version accepted")
	}
	good := writeSampleTrace(t, false).String()
	if _, err := Parse(strings.NewReader(good + "{bad\n")); err == nil {
		t.Error("malformed event accepted")
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	src := writeSampleTrace(t, false).String()
	src = strings.ReplaceAll(src, "\n", "\n\n")
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Errorf("events = %d, want 3", len(tr.Events))
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterErrorSticky(t *testing.T) {
	w, err := NewWriter(&failingWriter{after: 32}, TraceHeader{VantagePoint: "client", ReferenceTime: ref}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer until the underlying writer fails.
	var firstErr error
	for i := 0; i < 10000; i++ {
		if err := w.PacketSent(ref, PacketHeader{PacketType: "1RTT", PacketNumber: uint64(i)}, 1200); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		firstErr = w.Close()
	}
	if firstErr == nil {
		t.Fatal("writer never surfaced the underlying error")
	}
	if w.Err() == nil {
		t.Error("Err() did not retain the error")
	}
}

func BenchmarkWriterPacketReceived(b *testing.B) {
	w, err := NewWriter(io.Discard, TraceHeader{VantagePoint: "client", ReferenceTime: ref}, false)
	if err != nil {
		b.Fatal(err)
	}
	spin := true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr := PacketHeader{PacketType: "1RTT", PacketNumber: uint64(i), SpinBit: &spin}
		if err := w.PacketReceived(ref.Add(time.Duration(i)*time.Millisecond), hdr, 1200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, TraceHeader{VantagePoint: "client", ReferenceTime: ref}, false)
	spin := false
	for i := 0; i < 200; i++ {
		spin = !spin
		w.PacketReceived(ref.Add(time.Duration(i)*time.Millisecond),
			PacketHeader{PacketType: "1RTT", PacketNumber: uint64(i), SpinBit: &spin}, 1200)
	}
	w.Close()
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// shortWriter accepts at most n bytes of each Write and then reports
// io.ErrShortWrite, like a filesystem running out of space mid-flush.
type shortWriter struct{ n int }

func (s *shortWriter) Write(p []byte) (int, error) {
	if len(p) <= s.n {
		s.n -= len(p)
		return len(p), nil
	}
	n := s.n
	s.n = 0
	return n, io.ErrShortWrite
}

// TestCloseSurfacesShortWrite pins the Close/Err contract: a write error
// that only materialises at flush time must be returned by Close AND
// retained by Err(), so callers checking either see it.
func TestCloseSurfacesShortWrite(t *testing.T) {
	w, err := NewWriter(&shortWriter{n: 16}, TraceHeader{VantagePoint: "client", ReferenceTime: ref}, false)
	if err != nil {
		t.Fatal(err)
	}
	// The event fits in the bufio buffer, so nothing fails yet.
	if err := w.PacketSent(ref, PacketHeader{PacketType: "1RTT", PacketNumber: 1}, 1200); err != nil {
		t.Fatalf("buffered event write failed early: %v", err)
	}
	cerr := w.Close()
	if cerr == nil {
		t.Fatal("Close() dropped the flush error")
	}
	if w.Err() == nil {
		t.Fatal("Err() did not retain the flush error")
	}
	if w.Err() != cerr {
		t.Errorf("Err() = %v, Close() = %v; want identical", w.Err(), cerr)
	}
}
