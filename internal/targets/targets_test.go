package targets

import (
	"strings"
	"testing"
)

func TestParseToplistCSV(t *testing.T) {
	src := "1,google.com\n2,YouTube.com\n\n# comment\n3,example.org.\n"
	l, err := ParseToplist("tranco", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"google.com", "youtube.com", "example.org"}
	if len(l.Domains) != 3 {
		t.Fatalf("domains = %v", l.Domains)
	}
	for i, d := range want {
		if l.Domains[i] != d {
			t.Errorf("domain %d = %q, want %q", i, l.Domains[i], d)
		}
	}
	if l.Kind != Toplist {
		t.Error("kind wrong")
	}
}

func TestParseToplistPlain(t *testing.T) {
	l, err := ParseToplist("plain", strings.NewReader("alpha.net\nbeta.net\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Domains) != 2 || l.Domains[0] != "alpha.net" {
		t.Errorf("domains = %v", l.Domains)
	}
}

func TestParseToplistEmptyDomain(t *testing.T) {
	if _, err := ParseToplist("bad", strings.NewReader("5,\n")); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestParseZonefile(t *testing.T) {
	src := strings.Join([]string{
		"; zone for .com",
		"example.com. 86400 IN NS ns1.example.com.",
		"example.com. 86400 IN NS ns2.example.com.", // duplicate owner
		"other.com. 86400 IN NS ns.other.com.",
		"bare.com",
	}, "\n")
	l, err := ParseZonefile("com", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example.com", "other.com", "bare.com"}
	if len(l.Domains) != len(want) {
		t.Fatalf("domains = %v", l.Domains)
	}
	for i := range want {
		if l.Domains[i] != want[i] {
			t.Errorf("domain %d = %q, want %q", i, l.Domains[i], want[i])
		}
	}
	if l.Kind != Zonelist {
		t.Error("kind wrong")
	}
}

func TestPrependWWW(t *testing.T) {
	if got := PrependWWW("example.com"); got != "www.example.com" {
		t.Errorf("got %q", got)
	}
	if got := PrependWWW("www.example.com"); got != "www.example.com" {
		t.Errorf("got %q (must not double-prepend)", got)
	}
}

func TestMergeDeduplicates(t *testing.T) {
	top := &List{Name: "tranco", Kind: Toplist, Domains: []string{"a.com", "b.com"}}
	zone := &List{Name: "com", Kind: Zonelist, Domains: []string{"b.com", "c.com"}}
	p := Merge(top, zone)
	if p.Len() != 3 {
		t.Fatalf("len = %d, want 3", p.Len())
	}
	if !p.InToplist("a.com") || p.InZonelist("a.com") {
		t.Error("a.com attribution wrong")
	}
	// b.com is in both views, like popular .com domains in the paper.
	if !p.InToplist("b.com") || !p.InZonelist("b.com") {
		t.Error("b.com must be in both views")
	}
	topN, zoneN := p.CountByKind()
	if topN != 2 || zoneN != 2 {
		t.Errorf("counts = (%d, %d), want (2, 2)", topN, zoneN)
	}
	// Sorted output.
	d := p.Domains()
	for i := 1; i < len(d); i++ {
		if d[i-1] >= d[i] {
			t.Errorf("domains not sorted: %v", d)
		}
	}
}

func TestKindString(t *testing.T) {
	if Toplist.String() != "Toplists" || Zonelist.String() != "CZDS" {
		t.Error("kind names wrong")
	}
}
