// Package targets assembles the measurement target population the way the
// paper does (§3.1): domain toplists (Alexa, Umbrella, Majestic, Tranco)
// plus zone files from the ICANN Centralized Zone Data Service, with
// deduplication and the conventional "www." prepending (§3.2.1).
package targets

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind distinguishes the two population sources the paper reports
// separately.
type Kind int

const (
	// Toplist entries come from popularity rankings.
	Toplist Kind = iota
	// Zonelist entries come from TLD zone files (CZDS).
	Zonelist
)

// String names the kind as in the paper's tables.
func (k Kind) String() string {
	if k == Zonelist {
		return "CZDS"
	}
	return "Toplists"
}

// List is one named source of target domains.
type List struct {
	Name    string
	Kind    Kind
	Domains []string
}

// ParseToplist reads a toplist in either "rank,domain" CSV form (Alexa,
// Umbrella, Majestic, Tranco all use variants of it) or plain
// domain-per-line form. Blank lines and #-comments are skipped.
func ParseToplist(name string, r io.Reader) (*List, error) {
	l := &List{Name: name, Kind: Toplist}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		domain := line
		if i := strings.LastIndexByte(line, ','); i >= 0 {
			rank, d := line[:i], line[i+1:]
			if d == "" {
				return nil, fmt.Errorf("targets: %s line %d: empty domain", name, lineNo)
			}
			// Majestic-style files have extra columns before the domain;
			// accept any prefix as long as the final field parses.
			_ = rank
			domain = d
		}
		l.Domains = append(l.Domains, Canonical(domain))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("targets: reading %s: %w", name, err)
	}
	return l, nil
}

// ParseZonefile reads a (simplified) TLD zone file: either bare domains per
// line or master-file-style "name TTL IN NS …" records, of which only the
// owner name is used. Owner names are de-duplicated within the file.
func ParseZonefile(name string, r io.Reader) (*List, error) {
	l := &List{Name: name, Kind: Zonelist}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		owner := strings.Fields(line)[0]
		d := Canonical(owner)
		if d == "" || seen[d] {
			continue
		}
		seen[d] = true
		l.Domains = append(l.Domains, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("targets: reading zone %s: %w", name, err)
	}
	return l, nil
}

// Canonical lowercases a domain and strips any trailing dot.
func Canonical(domain string) string {
	return strings.ToLower(strings.TrimSuffix(strings.TrimSpace(domain), "."))
}

// PrependWWW adds the "www." label unless it is already present, following
// the paper's querying convention.
func PrependWWW(domain string) string {
	if strings.HasPrefix(domain, "www.") {
		return domain
	}
	return "www." + domain
}

// Population is the merged, deduplicated target set with per-domain source
// attribution, so results can be reported per list kind like Tables 1–4.
type Population struct {
	domains []string
	kinds   map[string]Kind
	// inBoth tracks domains present in both a toplist and a zonelist;
	// the paper counts such domains in both views.
	toplist  map[string]bool
	zonelist map[string]bool
}

// Merge combines lists into a deduplicated population.
func Merge(lists ...*List) *Population {
	p := &Population{
		kinds:    map[string]Kind{},
		toplist:  map[string]bool{},
		zonelist: map[string]bool{},
	}
	seen := map[string]bool{}
	for _, l := range lists {
		for _, d := range l.Domains {
			if l.Kind == Toplist {
				p.toplist[d] = true
			} else {
				p.zonelist[d] = true
			}
			if seen[d] {
				continue
			}
			seen[d] = true
			p.domains = append(p.domains, d)
			p.kinds[d] = l.Kind
		}
	}
	sort.Strings(p.domains)
	return p
}

// Domains returns all unique domains in sorted order.
func (p *Population) Domains() []string { return p.domains }

// Len returns the number of unique domains.
func (p *Population) Len() int { return len(p.domains) }

// InToplist reports whether the domain appears in any toplist source.
func (p *Population) InToplist(domain string) bool { return p.toplist[domain] }

// InZonelist reports whether the domain appears in any zone file source.
func (p *Population) InZonelist(domain string) bool { return p.zonelist[domain] }

// CountByKind returns the number of domains in the toplist and zonelist
// views (a domain can be in both).
func (p *Population) CountByKind() (top, zone int) {
	return len(p.toplist), len(p.zonelist)
}
