package wire

import (
	"errors"
	"testing"
)

// TestAckRangeCountGuard checks that a hostile ACK frame declaring an
// enormous range count fails validation against the remaining buffer
// instead of looping (and allocating) until the bytes run dry.
func TestAckRangeCountGuard(t *testing.T) {
	b := []byte{FrameTypeAck}
	b = AppendVarint(b, 1000)  // largest acked
	b = AppendVarint(b, 0)     // delay
	b = AppendVarint(b, 1<<40) // declared range count: absurd
	b = AppendVarint(b, 1)     // first range
	b = append(b, 0x00, 0x00)  // two bytes: room for one real range at most
	_, _, err := parseAckFrame(b)
	if !errors.Is(err, ErrInvalidFrame) {
		t.Fatalf("err = %v, want ErrInvalidFrame", err)
	}

	// A count that matches the bytes actually present still parses.
	ok := []byte{FrameTypeAck}
	ok = AppendVarint(ok, 1000)
	ok = AppendVarint(ok, 0)
	ok = AppendVarint(ok, 1) // one extra range
	ok = AppendVarint(ok, 1) // first range
	ok = AppendVarint(ok, 2) // gap
	ok = AppendVarint(ok, 3) // length
	f, _, err := parseAckFrame(ok)
	if err != nil {
		t.Fatalf("well-formed ACK rejected: %v", err)
	}
	if ack := f.(*AckFrame); len(ack.Ranges) != 2 {
		t.Fatalf("ranges = %d, want 2", len(ack.Ranges))
	}
}
