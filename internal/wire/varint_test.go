package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []struct {
		v    uint64
		want []byte
	}{
		{0, []byte{0x00}},
		{37, []byte{0x25}},
		{63, []byte{0x3f}},
		{64, []byte{0x40, 0x40}},
		{15293, []byte{0x7b, 0xbd}},
		{16383, []byte{0x7f, 0xff}},
		{16384, []byte{0x80, 0x00, 0x40, 0x00}},
		{494878333, []byte{0x9d, 0x7f, 0x3e, 0x7d}},
		{1073741823, []byte{0xbf, 0xff, 0xff, 0xff}},
		{1073741824, []byte{0xc0, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00}},
		{151288809941952652, []byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
		{MaxVarint8, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}},
	}
	for _, c := range cases {
		got := AppendVarint(nil, c.v)
		if !bytes.Equal(got, c.want) {
			t.Errorf("AppendVarint(%d) = %x, want %x", c.v, got, c.want)
		}
		if l := VarintLen(c.v); l != len(c.want) {
			t.Errorf("VarintLen(%d) = %d, want %d", c.v, l, len(c.want))
		}
		v, n, err := ConsumeVarint(got)
		if err != nil || v != c.v || n != len(c.want) {
			t.Errorf("ConsumeVarint(%x) = (%d, %d, %v), want (%d, %d, nil)", got, v, n, err, c.v, len(c.want))
		}
	}
}

func TestVarintRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendVarint(2^62) did not panic")
		}
	}()
	AppendVarint(nil, 1<<62)
}

func TestVarintLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VarintLen(MaxUint64) did not panic")
		}
	}()
	VarintLen(math.MaxUint64)
}

func TestConsumeVarintTruncated(t *testing.T) {
	for _, b := range [][]byte{nil, {0x40}, {0x80, 0x01}, {0xc0, 1, 2, 3}} {
		if _, _, err := ConsumeVarint(b); err == nil {
			t.Errorf("ConsumeVarint(%x) succeeded on truncated input", b)
		}
	}
}

func TestVarintQuickRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= MaxVarint8
		got, n, err := ConsumeVarint(AppendVarint(nil, v))
		return err == nil && got == v && n == VarintLen(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVarintEncodingIsMinimal(t *testing.T) {
	f := func(v uint64) bool {
		v &= MaxVarint8
		l := VarintLen(v)
		// No shorter encoding class could hold v.
		switch l {
		case 2:
			return v > MaxVarint1
		case 4:
			return v > MaxVarint2
		case 8:
			return v > MaxVarint4
		}
		return l == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintAppendPreservesPrefix(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	out := AppendVarint(append([]byte(nil), prefix...), 300)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("prefix clobbered: %x", out)
	}
	v, _, err := ConsumeVarint(out[2:])
	if err != nil || v != 300 {
		t.Fatalf("ConsumeVarint = (%d, %v)", v, err)
	}
}

func BenchmarkAppendVarint(b *testing.B) {
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = AppendVarint(buf[:0], uint64(i)&MaxVarint8)
	}
}

func BenchmarkConsumeVarint(b *testing.B) {
	buf := AppendVarint(nil, 494878333)
	for i := 0; i < b.N; i++ {
		if _, _, err := ConsumeVarint(buf); err != nil {
			b.Fatal(err)
		}
	}
}
