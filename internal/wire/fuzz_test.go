package wire

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedShortHeader builds a valid short-header packet for the corpus.
func fuzzSeedShortHeader(t testing.TB, dcid []byte, pn uint64, spin bool) []byte {
	t.Helper()
	h := &Header{DstConnID: NewConnectionID(dcid), PacketNumber: pn, SpinBit: spin, Reserved: 3}
	b, err := AppendShortHeader(nil, h, []byte{0x01}, NoAckedPacket)
	if err != nil {
		t.Fatalf("seed short header: %v", err)
	}
	return b
}

// fuzzSeedLongHeader builds a valid long-header packet for the corpus.
func fuzzSeedLongHeader(t testing.TB, typ byte, token, payload []byte) []byte {
	t.Helper()
	h := &Header{
		IsLong:    true,
		Type:      typ,
		Version:   Version1,
		DstConnID: NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		SrcConnID: NewConnectionID([]byte{9, 10, 11, 12}),
		Token:     token,
	}
	b, err := AppendLongHeader(nil, h, payload, NoAckedPacket)
	if err != nil {
		t.Fatalf("seed long header: %v", err)
	}
	return b
}

// FuzzVarint checks that ConsumeVarint never panics and that every decoded
// value survives a re-encode round trip.
func FuzzVarint(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x3f})
	f.Add(AppendVarint(nil, MaxVarint1+1))
	f.Add(AppendVarint(nil, MaxVarint2+1))
	f.Add(AppendVarint(nil, MaxVarint4+1))
	f.Add(AppendVarint(nil, MaxVarint8))
	f.Add([]byte{0x80})             // truncated 2-byte form
	f.Add([]byte{0xc0, 0x00, 0x01}) // truncated 8-byte form
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := ConsumeVarint(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVarintRange) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < 1 || n > 8 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if v > MaxVarint8 {
			t.Fatalf("decoded value %d exceeds MaxVarint8", v)
		}
		enc := AppendVarint(nil, v)
		if len(enc) > n {
			t.Fatalf("re-encoding of %d grew from %d to %d bytes", v, n, len(enc))
		}
		rv, rn, err := ConsumeVarint(enc)
		if err != nil || rv != v || rn != len(enc) {
			t.Fatalf("round trip of %d failed: got %d (n=%d, err=%v)", v, rv, rn, err)
		}
	})
}

// FuzzShortHeader feeds arbitrary datagrams and connection-ID lengths
// (including out-of-range ones) through ParseHeader: it must never panic,
// and successes must respect the caller-supplied bounds.
func FuzzShortHeader(f *testing.F) {
	f.Add(fuzzSeedShortHeader(f, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 0, false), 8, uint64(NoAckedPacket))
	f.Add(fuzzSeedShortHeader(f, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 7000, true), 8, uint64(6999))
	f.Add(fuzzSeedShortHeader(f, nil, 1, true), 0, uint64(0))
	f.Add([]byte{0x40}, 0, uint64(NoAckedPacket))        // header only, no PN byte
	f.Add([]byte{0x40, 0x00}, 21, uint64(NoAckedPacket)) // dcidLen beyond the RFC cap
	f.Add([]byte{0x40, 0x00}, -1, uint64(NoAckedPacket)) // negative dcidLen
	f.Add([]byte{0x43, 0x01}, 4, uint64(2))              // 4-byte PN, truncated
	// Hostile-profile shapes: the malformed-header mangler truncates every
	// short-header datagram to its first three bytes, and the spin manglers
	// rewrite the spin bit in place on otherwise-valid packets.
	f.Add(fuzzSeedShortHeader(f, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 42, false)[:3], 8, uint64(41))
	flap := fuzzSeedShortHeader(f, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 9, false)
	flap[0] |= SpinBitMask // spin-flap rewrite: spin follows PN parity
	f.Add(flap, 8, uint64(8))
	// Malformed-frames shape: valid short header whose first payload byte
	// is the reserved frame type 0x1f.
	badFrame := &Header{DstConnID: NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8}), PacketNumber: 5, Reserved: 3}
	if b, err := AppendShortHeader(nil, badFrame, []byte{0x1f}, NoAckedPacket); err == nil {
		f.Add(b, 8, uint64(4))
	}
	f.Fuzz(func(t *testing.T, data []byte, dcidLen int, largest uint64) {
		hdr, payload, consumed, err := ParseHeader(data, dcidLen, largest)
		if err != nil {
			return
		}
		if hdr.IsLong {
			return // exercised by FuzzLongHeader
		}
		if dcidLen < 0 || dcidLen > MaxConnIDLen {
			t.Fatalf("accepted out-of-range dcidLen %d", dcidLen)
		}
		if hdr.DstConnID.Len() != dcidLen {
			t.Fatalf("DCID length %d, want %d", hdr.DstConnID.Len(), dcidLen)
		}
		if hdr.PacketNumberLen < 1 || hdr.PacketNumberLen > 4 {
			t.Fatalf("packet number length %d", hdr.PacketNumberLen)
		}
		if consumed != len(data) {
			t.Fatalf("short header consumed %d of %d bytes", consumed, len(data))
		}
		if got := 1 + dcidLen + hdr.PacketNumberLen + len(payload); got != len(data) {
			t.Fatalf("header+payload accounts for %d of %d bytes", got, len(data))
		}
	})
}

// FuzzLongHeader checks long-header parsing plus the frame parser on the
// decoded payload, and that accepted packets re-encode losslessly.
func FuzzLongHeader(f *testing.F) {
	f.Add(fuzzSeedLongHeader(f, TypeInitial, []byte("tok"), []byte{0x01}))
	f.Add(fuzzSeedLongHeader(f, TypeHandshake, nil, []byte{0x01, 0x00}))
	crypto := (&CryptoFrame{Offset: 0, Data: []byte("hello")}).Append(nil)
	f.Add(fuzzSeedLongHeader(f, TypeInitial, nil, crypto))
	f.Add([]byte{0xc0, 0x00, 0x00, 0x00, 0x01})       // truncated after version
	f.Add([]byte{0xc0, 0x00, 0x00, 0x00, 0x01, 0x15}) // CID length 21
	// Hostile-profile shapes: the slowloris mangler answers every long
	// header with a padding-only Handshake packet, and the malformed-frames
	// profile leaves reserved frame type 0x1f in otherwise-valid payloads.
	f.Add(fuzzSeedLongHeader(f, TypeHandshake, nil, (&PaddingFrame{N: 20}).Append(nil)))
	f.Add(fuzzSeedLongHeader(f, TypeInitial, nil, []byte{0x1f}))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, consumed, err := ParseHeader(data, 0, NoAckedPacket)
		if err != nil || !hdr.IsLong {
			return
		}
		if consumed < 1 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if hdr.DstConnID.Len() > MaxConnIDLen || hdr.SrcConnID.Len() > MaxConnIDLen {
			t.Fatal("oversized connection ID accepted")
		}
		// The frame parser must error, not panic, on arbitrary payloads.
		if _, err := ParseFrames(payload); err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrInvalidFrame) && !errors.Is(err, ErrVarintRange) {
			t.Fatalf("unexpected frame error class: %v", err)
		}
		// Round trip: re-encoding the accepted header and payload must
		// parse back to the same packet.
		enc, err := AppendLongHeader(nil, hdr, payload, NoAckedPacket)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rh, rp, _, err := ParseHeader(enc, 0, NoAckedPacket)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if rh.Type != hdr.Type || rh.Version != hdr.Version ||
			!rh.DstConnID.Equal(hdr.DstConnID) || !rh.SrcConnID.Equal(hdr.SrcConnID) ||
			rh.PacketNumber != hdr.PacketNumber ||
			!bytes.Equal(rh.Token, hdr.Token) || !bytes.Equal(rp, payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", rh, hdr)
		}
	})
}
