// Package wire implements the QUIC version 1 wire format used by the
// QUIC-lite transport: variable-length integers, connection IDs, long and
// short packet headers (including the latency spin bit), and the subset of
// frames the transport needs (RFC 9000 §16–§19).
package wire

import (
	"errors"
	"fmt"
)

// Variable-length integer bounds per RFC 9000 §16.
const (
	// MaxVarint1 is the largest value encodable in one byte.
	MaxVarint1 = 1<<6 - 1
	// MaxVarint2 is the largest value encodable in two bytes.
	MaxVarint2 = 1<<14 - 1
	// MaxVarint4 is the largest value encodable in four bytes.
	MaxVarint4 = 1<<30 - 1
	// MaxVarint8 is the largest value encodable in eight bytes and the
	// largest value representable as a QUIC varint at all.
	MaxVarint8 = 1<<62 - 1
)

// ErrVarintRange reports a value too large to encode as a QUIC varint.
var ErrVarintRange = errors.New("wire: value exceeds 2^62-1 varint range")

// ErrTruncated reports a buffer that ended in the middle of a field.
var ErrTruncated = errors.New("wire: truncated input")

// VarintLen returns the number of bytes AppendVarint uses for v.
// It panics if v exceeds MaxVarint8; use it only on validated values.
func VarintLen(v uint64) int {
	switch {
	case v <= MaxVarint1:
		return 1
	case v <= MaxVarint2:
		return 2
	case v <= MaxVarint4:
		return 4
	case v <= MaxVarint8:
		return 8
	default:
		panic(ErrVarintRange)
	}
}

// AppendVarint appends the minimal QUIC varint encoding of v to b.
// It panics if v exceeds MaxVarint8.
func AppendVarint(b []byte, v uint64) []byte {
	switch {
	case v <= MaxVarint1:
		return append(b, byte(v))
	case v <= MaxVarint2:
		return append(b, byte(v>>8)|0x40, byte(v))
	case v <= MaxVarint4:
		return append(b, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	case v <= MaxVarint8:
		return append(b, byte(v>>56)|0xc0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic(ErrVarintRange)
	}
}

// ConsumeVarint decodes a varint from the front of b and returns the value
// and the number of bytes consumed. It returns ErrTruncated if b is too
// short.
func ConsumeVarint(b []byte) (uint64, int, error) {
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	length := 1 << (b[0] >> 6)
	if len(b) < length {
		return 0, 0, fmt.Errorf("%w: varint needs %d bytes, have %d", ErrTruncated, length, len(b))
	}
	v := uint64(b[0] & 0x3f)
	for i := 1; i < length; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, length, nil
}
