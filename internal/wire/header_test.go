package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectionID(t *testing.T) {
	a := NewConnectionID([]byte{1, 2, 3, 4})
	b := NewConnectionID([]byte{1, 2, 3, 4})
	c := NewConnectionID([]byte{1, 2, 3})
	if !a.Equal(b) {
		t.Error("equal IDs reported unequal")
	}
	if a.Equal(c) {
		t.Error("IDs of different length reported equal")
	}
	if a.Len() != 4 || c.Len() != 3 {
		t.Errorf("Len: got %d, %d", a.Len(), c.Len())
	}
	if a.String() != "01020304" {
		t.Errorf("String = %q", a.String())
	}
	if !bytes.Equal(a.Bytes(), []byte{1, 2, 3, 4}) {
		t.Errorf("Bytes = %x", a.Bytes())
	}
}

func TestConnectionIDTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 21-byte connection ID")
		}
	}()
	NewConnectionID(make([]byte, 21))
}

func TestLongHeaderRoundTrip(t *testing.T) {
	for _, typ := range []byte{TypeInitial, TypeHandshake} {
		h := &Header{
			IsLong:       true,
			Type:         typ,
			Version:      Version1,
			DstConnID:    NewConnectionID([]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00, 0x11}),
			SrcConnID:    NewConnectionID([]byte{0x01, 0x02}),
			PacketNumber: 7,
		}
		if typ == TypeInitial {
			h.Token = []byte("tok")
		}
		payload := []byte{FrameTypePing, FrameTypePadding, FrameTypePadding}
		buf, err := AppendLongHeader(nil, h, payload, NoAckedPacket)
		if err != nil {
			t.Fatalf("AppendLongHeader: %v", err)
		}
		got, pl, consumed, err := ParseHeader(buf, 0, NoAckedPacket)
		if err != nil {
			t.Fatalf("ParseHeader: %v", err)
		}
		if consumed != len(buf) {
			t.Errorf("consumed %d of %d bytes", consumed, len(buf))
		}
		if !got.IsLong || got.Type != typ || got.Version != Version1 {
			t.Errorf("header mismatch: %+v", got)
		}
		if !got.DstConnID.Equal(h.DstConnID) || !got.SrcConnID.Equal(h.SrcConnID) {
			t.Errorf("connection ID mismatch: %+v", got)
		}
		if typ == TypeInitial && string(got.Token) != "tok" {
			t.Errorf("token = %q", got.Token)
		}
		if got.PacketNumber != 7 {
			t.Errorf("packet number = %d", got.PacketNumber)
		}
		if !bytes.Equal(pl, payload) {
			t.Errorf("payload = %x, want %x", pl, payload)
		}
	}
}

func TestShortHeaderRoundTripSpin(t *testing.T) {
	dcid := NewConnectionID([]byte{9, 8, 7, 6, 5, 4, 3, 2})
	for _, spin := range []bool{false, true} {
		h := &Header{DstConnID: dcid, SpinBit: spin, PacketNumber: 1234}
		payload := []byte{FrameTypePing}
		buf, err := AppendShortHeader(nil, h, payload, 1000)
		if err != nil {
			t.Fatalf("AppendShortHeader: %v", err)
		}
		if IsLongHeader(buf[0]) {
			t.Fatal("short header parsed as long")
		}
		got, pl, consumed, err := ParseHeader(buf, dcid.Len(), 1233)
		if err != nil {
			t.Fatalf("ParseHeader: %v", err)
		}
		if consumed != len(buf) {
			t.Errorf("consumed = %d, want %d", consumed, len(buf))
		}
		if got.SpinBit != spin {
			t.Errorf("spin bit = %v, want %v", got.SpinBit, spin)
		}
		if got.PacketNumber != 1234 {
			t.Errorf("packet number = %d, want 1234", got.PacketNumber)
		}
		if !got.DstConnID.Equal(dcid) || !bytes.Equal(pl, payload) {
			t.Errorf("header/payload mismatch: %+v %x", got, pl)
		}
	}
}

func TestSpinBitIsBit0x20(t *testing.T) {
	h := &Header{DstConnID: NewConnectionID(nil), SpinBit: true, PacketNumber: 0}
	buf, err := AppendShortHeader(nil, h, []byte{FrameTypePing}, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0]&0x20 == 0 {
		t.Errorf("first byte %08b does not have the 0x20 spin bit set", buf[0])
	}
	h.SpinBit = false
	buf, err = AppendShortHeader(nil, h, []byte{FrameTypePing}, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0]&0x20 != 0 {
		t.Errorf("first byte %08b has the spin bit set for SpinBit=false", buf[0])
	}
}

func TestShortHeaderReservedBitsRoundTrip(t *testing.T) {
	dcid := NewConnectionID([]byte{1, 2})
	for vec := uint8(0); vec <= 3; vec++ {
		h := &Header{DstConnID: dcid, Reserved: vec, PacketNumber: 9}
		buf, err := AppendShortHeader(nil, h, []byte{FrameTypePing}, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := ParseHeader(buf, dcid.Len(), 8)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reserved != vec {
			t.Errorf("reserved = %d, want %d", got.Reserved, vec)
		}
	}
}

func TestDecodePacketNumberRFCExample(t *testing.T) {
	// RFC 9000 §A.3 example: expected 0xa82f30ea, received 2-byte 0x9b32.
	if got := DecodePacketNumber(0xa82f30e9, 0x9b32, 2); got != 0xa82f9b32 {
		t.Errorf("DecodePacketNumber = %#x, want 0xa82f9b32", got)
	}
}

func TestDecodePacketNumberNoHistory(t *testing.T) {
	if got := DecodePacketNumber(NoAckedPacket, 42, 1); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestPacketNumberRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(largestSeed uint64, delta uint16) bool {
		largest := largestSeed % (1 << 40)
		pn := largest + 1 + uint64(delta)%128 // next packets within window
		pnl := pnLen(pn, largest)
		truncated := pn & ((1 << (pnl * 8)) - 1)
		return DecodePacketNumber(largest, truncated, pnl) == pn
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no fixed bit", []byte{0x00, 0x01}},
		{"long truncated version", []byte{0xc0, 0x00, 0x00}},
		{"bad version", []byte{0xc0, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x01, 0x00}},
		{"short too short", []byte{0x40}},
	}
	for _, c := range cases {
		if _, _, _, err := ParseHeader(c.data, 8, NoAckedPacket); err == nil {
			t.Errorf("%s: ParseHeader succeeded on malformed input %x", c.name, c.data)
		}
	}
}

func TestParseHeaderCoalesced(t *testing.T) {
	h1 := &Header{IsLong: true, Type: TypeInitial, Version: Version1,
		DstConnID: NewConnectionID([]byte{1}), SrcConnID: NewConnectionID([]byte{2}), PacketNumber: 0}
	h2 := &Header{IsLong: true, Type: TypeHandshake, Version: Version1,
		DstConnID: NewConnectionID([]byte{1}), SrcConnID: NewConnectionID([]byte{2}), PacketNumber: 0}
	buf, err := AppendLongHeader(nil, h1, []byte{FrameTypePing}, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(buf)
	buf, err = AppendLongHeader(buf, h2, []byte{FrameTypePing, FrameTypePing}, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	got, _, consumed, err := ParseHeader(buf, 1, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeInitial || consumed != firstLen {
		t.Fatalf("first packet: type %d consumed %d (want %d)", got.Type, consumed, firstLen)
	}
	got2, pl2, consumed2, err := ParseHeader(buf[consumed:], 1, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Type != TypeHandshake || consumed2 != len(buf)-firstLen || len(pl2) != 2 {
		t.Fatalf("second packet: %+v consumed %d payload %x", got2, consumed2, pl2)
	}
}

func TestPnLenGrowth(t *testing.T) {
	cases := []struct {
		pn, largestAcked uint64
		want             int
	}{
		{0, NoAckedPacket, 1},
		{126, NoAckedPacket, 1},
		{127, NoAckedPacket, 2},
		{200, 100, 1},
		{30000, 100, 2},
		{8_000_000, 100, 3},
		{1 << 30, 100, 4},
	}
	for _, c := range cases {
		if got := pnLen(c.pn, c.largestAcked); got != c.want {
			t.Errorf("pnLen(%d, %d) = %d, want %d", c.pn, c.largestAcked, got, c.want)
		}
	}
}

func BenchmarkAppendShortHeader(b *testing.B) {
	h := &Header{DstConnID: NewConnectionID(make([]byte, 8)), SpinBit: true, PacketNumber: 100}
	payload := make([]byte, 64)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		h.PacketNumber = uint64(i)
		buf, err = AppendShortHeader(buf[:0], h, payload, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseShortHeader(b *testing.B) {
	h := &Header{DstConnID: NewConnectionID(make([]byte, 8)), SpinBit: true, PacketNumber: 100}
	buf, err := AppendShortHeader(nil, h, make([]byte, 64), 99)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ParseHeader(buf, 8, 99); err != nil {
			b.Fatal(err)
		}
	}
}
