package wire

import (
	"testing"
)

// Allocation regression gates for the encode/decode hot path. The scan
// pipeline parses and builds millions of packets per campaign; these
// functions must stay allocation-free so the emulated engine's per-packet
// budget (see internal/transport's alloc test) holds.

func TestAppendVarintZeroAllocs(t *testing.T) {
	buf := make([]byte, 0, 64)
	vals := []uint64{0, 63, 64, 16383, 16384, 1<<30 - 1, 1 << 30, 1<<62 - 1}
	n := testing.AllocsPerRun(1000, func() {
		b := buf[:0]
		for _, v := range vals {
			b = AppendVarint(b, v)
		}
	})
	if n != 0 {
		t.Errorf("AppendVarint allocates %.1f per run, want 0", n)
	}
}

func TestConsumeVarintZeroAllocs(t *testing.T) {
	buf := make([]byte, 0, 64)
	for _, v := range []uint64{0, 63, 16383, 1 << 30, 1<<62 - 1} {
		buf = AppendVarint(buf, v)
	}
	n := testing.AllocsPerRun(1000, func() {
		rest := buf
		for len(rest) > 0 {
			_, consumed, err := ConsumeVarint(rest)
			if err != nil {
				t.Fatal(err)
			}
			rest = rest[consumed:]
		}
	})
	if n != 0 {
		t.Errorf("ConsumeVarint allocates %.1f per run, want 0", n)
	}
}

// buildShortPacket encodes a 1-RTT PING packet like the transport's
// encodeShort does.
func buildShortPacket(t *testing.T, dcid ConnectionID, pn uint64) []byte {
	t.Helper()
	hdr := &Header{DstConnID: dcid, PacketNumber: pn, SpinBit: pn%2 == 0}
	payload := PingFrame{}.Append(nil)
	pkt, err := AppendShortHeader(nil, hdr, payload, NoAckedPacket)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestParseShortHeaderIntoZeroAllocs(t *testing.T) {
	dcid := NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	pkt := buildShortPacket(t, dcid, 41)
	var h Header
	n := testing.AllocsPerRun(1000, func() {
		if _, _, err := ParseHeaderInto(&h, pkt, dcid.Len(), NoAckedPacket); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("short-header ParseHeaderInto allocates %.1f per run, want 0", n)
	}
}

func TestFrameArenaSteadyStateZeroAllocs(t *testing.T) {
	// A payload mixing the frames the scan hot loop sees: ACK, STREAM,
	// PING, PADDING run.
	payload := (&AckFrame{Ranges: []AckRange{{Smallest: 0, Largest: 9}}, DelayMicros: 80}).Append(nil)
	payload = (&StreamFrame{StreamID: 0, Offset: 0, Data: []byte("hello world"), Fin: true}).Append(payload)
	payload = PingFrame{}.Append(payload)
	payload = PaddingFrame{N: 16}.Append(payload)

	var arena FrameArena
	if _, err := arena.Parse(payload); err != nil { // warm the arena
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(1000, func() {
		if _, err := arena.Parse(payload); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("FrameArena.Parse allocates %.1f per run steady-state, want 0", n)
	}
}
