package wire

import (
	"errors"
	"fmt"
)

// Version1 is the QUIC version number this package implements (RFC 9000).
const Version1 uint32 = 0x00000001

// Long-header packet types (RFC 9000 §17.2), values of the 2-bit type field.
const (
	TypeInitial   = 0x0
	Type0RTT      = 0x1
	TypeHandshake = 0x2
	TypeRetry     = 0x3
)

// First-byte bit masks (RFC 9000 §17).
const (
	// HeaderFormBit distinguishes long (1) from short (0) headers.
	HeaderFormBit = 0x80
	// FixedBit must be set on all QUIC v1 packets.
	FixedBit = 0x40
	// SpinBitMask is the latency spin bit in short-header packets
	// (RFC 9000 §17.3.1, §17.4).
	SpinBitMask = 0x20
	// KeyPhaseBit is the key-phase bit in short-header packets.
	KeyPhaseBit = 0x04
)

// MaxConnIDLen is the longest connection ID RFC 9000 permits.
const MaxConnIDLen = 20

// ErrInvalidHeader reports a malformed or unsupported packet header.
var ErrInvalidHeader = errors.New("wire: invalid packet header")

// ConnectionID is a QUIC connection ID of 0–20 bytes.
type ConnectionID struct {
	b [MaxConnIDLen]byte
	n uint8
}

// NewConnectionID copies b into a ConnectionID. It panics if b exceeds
// MaxConnIDLen, which indicates a programming error.
func NewConnectionID(b []byte) ConnectionID {
	if len(b) > MaxConnIDLen {
		panic("wire: connection ID longer than 20 bytes")
	}
	var c ConnectionID
	c.n = uint8(len(b))
	copy(c.b[:], b)
	return c
}

// Len returns the length of the connection ID in bytes.
func (c ConnectionID) Len() int { return int(c.n) }

// Bytes returns the connection ID contents. The result aliases internal
// storage of the (value-type) receiver and must not be modified.
func (c ConnectionID) Bytes() []byte { return c.b[:c.n] }

// Equal reports whether two connection IDs are byte-wise identical.
func (c ConnectionID) Equal(o ConnectionID) bool {
	return c.n == o.n && c.b == o.b
}

// String formats the connection ID as lowercase hex.
func (c ConnectionID) String() string {
	return fmt.Sprintf("%x", c.Bytes())
}

// Header is a decoded QUIC packet header. For long headers all fields are
// meaningful; for short headers only DstConnID, SpinBit, KeyPhase,
// PacketNumber and PacketNumberLen apply.
type Header struct {
	// IsLong reports whether this is a long header packet.
	IsLong bool
	// Type is the long-header packet type (TypeInitial etc.). Only valid
	// when IsLong is true.
	Type byte
	// Version is the QUIC version from the long header.
	Version uint32
	// DstConnID and SrcConnID are the connection IDs. Short headers carry
	// only the destination connection ID.
	DstConnID ConnectionID
	SrcConnID ConnectionID
	// Token is the Initial packet token (empty elsewhere).
	Token []byte
	// Length is the long-header payload length field (packet number +
	// payload bytes).
	Length uint64
	// SpinBit is the latency spin bit of a short-header packet.
	SpinBit bool
	// KeyPhase is the key-phase bit of a short-header packet.
	KeyPhase bool
	// Reserved carries the two reserved bits (0x18) of a short-header
	// packet. RFC 9000 greases them to zero under header protection; this
	// library optionally transports the Valid Edge Counter extension of
	// De Vaere et al. in them.
	Reserved uint8
	// PacketNumber is the full, already-decoded packet number.
	PacketNumber uint64
	// PacketNumberLen is the encoded packet number length in bytes (1–4).
	PacketNumberLen int
}

// PacketNumberLen returns the packet-number encoding length (1–4 bytes)
// AppendLongHeader and AppendShortHeader will use for pn given
// largestAcked. Callers use it to pre-compute exact header sizes, e.g. for
// Initial datagram padding.
func PacketNumberLen(pn, largestAcked uint64) int { return pnLen(pn, largestAcked) }

// pnLen returns the minimal packet-number encoding length (1–4 bytes) that
// lets the receiver reconstruct pn given the largest acknowledged packet
// number largestAcked (RFC 9000 §A.2). Use NoAckedPacket when nothing has
// been acknowledged yet.
func pnLen(pn uint64, largestAcked uint64) int {
	var numUnacked uint64
	if largestAcked == NoAckedPacket {
		numUnacked = pn + 1
	} else {
		numUnacked = pn - largestAcked
	}
	switch {
	case numUnacked < 1<<7:
		return 1
	case numUnacked < 1<<15:
		return 2
	case numUnacked < 1<<23:
		return 3
	default:
		return 4
	}
}

// NoAckedPacket is a sentinel for "no packet acknowledged yet" used when
// choosing packet-number encodings.
const NoAckedPacket = ^uint64(0)

// appendPacketNumber appends the pnLen-byte truncation of pn.
func appendPacketNumber(b []byte, pn uint64, length int) []byte {
	switch length {
	case 1:
		return append(b, byte(pn))
	case 2:
		return append(b, byte(pn>>8), byte(pn))
	case 3:
		return append(b, byte(pn>>16), byte(pn>>8), byte(pn))
	case 4:
		return append(b, byte(pn>>24), byte(pn>>16), byte(pn>>8), byte(pn))
	default:
		panic("wire: invalid packet number length")
	}
}

// DecodePacketNumber expands a truncated packet number to its full value
// following RFC 9000 §A.3, given the largest packet number received so far
// (or NoAckedPacket if none).
func DecodePacketNumber(largest uint64, truncated uint64, nbytes int) uint64 {
	if largest == NoAckedPacket {
		return truncated
	}
	expected := largest + 1
	win := uint64(1) << (nbytes * 8)
	hwin := win / 2
	mask := win - 1
	candidate := (expected &^ mask) | truncated
	switch {
	case candidate+hwin <= expected && candidate+win < (1<<62):
		return candidate + win
	case candidate > expected+hwin && candidate >= win:
		return candidate - win
	default:
		return candidate
	}
}

// AppendLongHeader encodes a long-header packet (RFC 9000 §17.2) with the
// given payload and appends it to b. The Length field is computed from the
// packet number length and payload size. h.PacketNumberLen is chosen
// automatically from h.PacketNumber and largestAcked.
func AppendLongHeader(b []byte, h *Header, payload []byte, largestAcked uint64) ([]byte, error) {
	if h.Type > 0x3 {
		return nil, fmt.Errorf("%w: long header type %#x", ErrInvalidHeader, h.Type)
	}
	pnl := pnLen(h.PacketNumber, largestAcked)
	first := byte(HeaderFormBit|FixedBit) | h.Type<<4 | byte(pnl-1)
	b = append(b, first)
	b = append(b, byte(h.Version>>24), byte(h.Version>>16), byte(h.Version>>8), byte(h.Version))
	b = append(b, byte(h.DstConnID.Len()))
	b = append(b, h.DstConnID.Bytes()...)
	b = append(b, byte(h.SrcConnID.Len()))
	b = append(b, h.SrcConnID.Bytes()...)
	if h.Type == TypeInitial {
		b = AppendVarint(b, uint64(len(h.Token)))
		b = append(b, h.Token...)
	}
	b = AppendVarint(b, uint64(pnl+len(payload)))
	b = appendPacketNumber(b, h.PacketNumber, pnl)
	b = append(b, payload...)
	return b, nil
}

// AppendShortHeader encodes a short-header (1-RTT) packet (RFC 9000 §17.3)
// carrying the spin bit and appends it to b.
func AppendShortHeader(b []byte, h *Header, payload []byte, largestAcked uint64) ([]byte, error) {
	pnl := pnLen(h.PacketNumber, largestAcked)
	first := byte(FixedBit) | byte(pnl-1)
	if h.SpinBit {
		first |= SpinBitMask
	}
	if h.KeyPhase {
		first |= KeyPhaseBit
	}
	first |= (h.Reserved & 0x3) << 3
	b = append(b, first)
	b = append(b, h.DstConnID.Bytes()...)
	b = appendPacketNumber(b, h.PacketNumber, pnl)
	b = append(b, payload...)
	return b, nil
}

// IsLongHeader reports whether the first byte of a datagram starts a
// long-header packet.
func IsLongHeader(first byte) bool { return first&HeaderFormBit != 0 }

// ParseHeader decodes one packet header from the front of data.
//
// For short headers the destination connection ID length is not
// self-describing, so the caller supplies dcidLen (the length of the
// connection IDs this endpoint issues). largestRecvd is the largest packet
// number received so far in the corresponding packet-number space (or
// NoAckedPacket) and is used to expand the truncated packet number.
//
// It returns the parsed header, the payload, and the total number of bytes
// consumed from data (long-header packets may be coalesced, so consumed can
// be < len(data)).
func ParseHeader(data []byte, dcidLen int, largestRecvd uint64) (*Header, []byte, int, error) {
	h := &Header{}
	payload, consumed, err := ParseHeaderInto(h, data, dcidLen, largestRecvd)
	if err != nil {
		return nil, nil, 0, err
	}
	return h, payload, consumed, nil
}

// ParseHeaderInto is ParseHeader decoding into a caller-owned Header, so hot
// receive loops can reuse one struct per connection instead of allocating a
// header per packet. h is fully overwritten; on error its contents are
// unspecified.
func ParseHeaderInto(h *Header, data []byte, dcidLen int, largestRecvd uint64) ([]byte, int, error) {
	if len(data) == 0 {
		return nil, 0, ErrTruncated
	}
	first := data[0]
	if first&FixedBit == 0 {
		return nil, 0, fmt.Errorf("%w: fixed bit not set", ErrInvalidHeader)
	}
	*h = Header{}
	if IsLongHeader(first) {
		return parseLongHeader(h, data)
	}
	return parseShortHeader(h, data, dcidLen, largestRecvd)
}

func parseLongHeader(h *Header, data []byte) ([]byte, int, error) {
	h.IsLong, h.Type = true, (data[0]>>4)&0x3
	pnl := int(data[0]&0x3) + 1
	pos := 1
	if len(data) < pos+4 {
		return nil, 0, ErrTruncated
	}
	h.Version = uint32(data[pos])<<24 | uint32(data[pos+1])<<16 | uint32(data[pos+2])<<8 | uint32(data[pos+3])
	pos += 4
	if h.Version != Version1 {
		return nil, 0, fmt.Errorf("%w: unsupported version %#x", ErrInvalidHeader, h.Version)
	}
	var err error
	h.DstConnID, pos, err = consumeConnID(data, pos)
	if err != nil {
		return nil, 0, err
	}
	h.SrcConnID, pos, err = consumeConnID(data, pos)
	if err != nil {
		return nil, 0, err
	}
	if h.Type == TypeInitial {
		tl, n, err := ConsumeVarint(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += n
		if uint64(len(data)-pos) < tl {
			return nil, 0, fmt.Errorf("%w: token", ErrTruncated)
		}
		h.Token = data[pos : pos+int(tl)]
		pos += int(tl)
	}
	length, n, err := ConsumeVarint(data[pos:])
	if err != nil {
		return nil, 0, err
	}
	pos += n
	h.Length = length
	if length < uint64(pnl) || uint64(len(data)-pos) < length {
		return nil, 0, fmt.Errorf("%w: length field %d", ErrTruncated, length)
	}
	h.PacketNumberLen = pnl
	h.PacketNumber = consumeTruncatedPN(data[pos:], pnl)
	pos += pnl
	payload := data[pos : pos+int(length)-pnl]
	consumed := pos + int(length) - pnl
	return payload, consumed, nil
}

func parseShortHeader(h *Header, data []byte, dcidLen int, largestRecvd uint64) ([]byte, int, error) {
	// dcidLen is caller-supplied (short headers are not self-describing);
	// bound it like the wire-encoded lengths of long headers so malformed
	// inputs error instead of panicking in NewConnectionID or slicing.
	if dcidLen < 0 || dcidLen > MaxConnIDLen {
		return nil, 0, fmt.Errorf("%w: connection ID length %d", ErrInvalidHeader, dcidLen)
	}
	first := data[0]
	h.SpinBit = first&SpinBitMask != 0
	h.KeyPhase = first&KeyPhaseBit != 0
	h.Reserved = (first >> 3) & 0x3
	pnl := int(first&0x3) + 1
	pos := 1
	if len(data) < pos+dcidLen+pnl {
		return nil, 0, ErrTruncated
	}
	h.DstConnID = NewConnectionID(data[pos : pos+dcidLen])
	pos += dcidLen
	h.PacketNumberLen = pnl
	truncated := consumeTruncatedPN(data[pos:], pnl)
	h.PacketNumber = DecodePacketNumber(largestRecvd, truncated, pnl)
	pos += pnl
	// A short-header packet extends to the end of the datagram.
	return data[pos:], len(data), nil
}

func consumeConnID(data []byte, pos int) (ConnectionID, int, error) {
	if len(data) < pos+1 {
		return ConnectionID{}, 0, ErrTruncated
	}
	l := int(data[pos])
	pos++
	if l > MaxConnIDLen {
		return ConnectionID{}, 0, fmt.Errorf("%w: connection ID length %d", ErrInvalidHeader, l)
	}
	if len(data) < pos+l {
		return ConnectionID{}, 0, ErrTruncated
	}
	id := NewConnectionID(data[pos : pos+l])
	return id, pos + l, nil
}

func consumeTruncatedPN(b []byte, length int) uint64 {
	var v uint64
	for i := 0; i < length; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
