package wire

import (
	"errors"
	"fmt"
)

// Frame type identifiers (RFC 9000 §19). STREAM frames occupy the range
// 0x08–0x0f with flag bits OFF/LEN/FIN in the low three bits.
const (
	FrameTypePadding         = 0x00
	FrameTypePing            = 0x01
	FrameTypeAck             = 0x02
	FrameTypeCrypto          = 0x06
	FrameTypeNewToken        = 0x07
	FrameTypeStreamBase      = 0x08
	FrameTypeHandshakeDone   = 0x1e
	FrameTypeConnectionClose = 0x1c

	streamFlagFIN = 0x01
	streamFlagLEN = 0x02
	streamFlagOFF = 0x04
)

// ErrInvalidFrame reports a malformed frame payload.
var ErrInvalidFrame = errors.New("wire: invalid frame")

// Frame is implemented by every QUIC frame this package can encode.
type Frame interface {
	// Append encodes the frame and appends it to b.
	Append(b []byte) []byte
	// AckEliciting reports whether the frame elicits an acknowledgement
	// (everything except ACK and PADDING, RFC 9002 §2).
	AckEliciting() bool
}

// PaddingFrame is a run of n PADDING bytes.
type PaddingFrame struct{ N int }

// Append implements Frame.
func (f PaddingFrame) Append(b []byte) []byte {
	for i := 0; i < f.N; i++ {
		b = append(b, FrameTypePadding)
	}
	return b
}

// AckEliciting implements Frame.
func (PaddingFrame) AckEliciting() bool { return false }

// PingFrame elicits an acknowledgement.
type PingFrame struct{}

// Append implements Frame.
func (PingFrame) Append(b []byte) []byte { return append(b, FrameTypePing) }

// AckEliciting implements Frame.
func (PingFrame) AckEliciting() bool { return true }

// AckRange is a closed range [Smallest, Largest] of acknowledged packet
// numbers.
type AckRange struct {
	Smallest uint64
	Largest  uint64
}

// AckFrame acknowledges ranges of packet numbers. Ranges are ordered from
// the largest packet number downwards, matching the wire encoding.
type AckFrame struct {
	// Ranges holds at least one range; Ranges[0].Largest is the largest
	// acknowledged packet number.
	Ranges []AckRange
	// DelayMicros is the ACK delay in microseconds (already scaled by the
	// ack_delay_exponent; this implementation pins the exponent to 0... no:
	// we use exponent 3, the RFC default — see AckDelayExponent).
	DelayMicros uint64
}

// AckDelayExponent is the fixed ack_delay_exponent used on the wire
// (the RFC 9000 default of 3, i.e. wire units of 8 µs).
const AckDelayExponent = 3

// Append implements Frame.
func (f *AckFrame) Append(b []byte) []byte {
	if len(f.Ranges) == 0 {
		panic("wire: ACK frame without ranges")
	}
	b = append(b, FrameTypeAck)
	b = AppendVarint(b, f.Ranges[0].Largest)
	b = AppendVarint(b, f.DelayMicros>>AckDelayExponent)
	b = AppendVarint(b, uint64(len(f.Ranges)-1))
	b = AppendVarint(b, f.Ranges[0].Largest-f.Ranges[0].Smallest)
	prevSmallest := f.Ranges[0].Smallest
	for _, r := range f.Ranges[1:] {
		// Gap = number of contiguous unacknowledged packets - 1.
		gap := prevSmallest - r.Largest - 2
		b = AppendVarint(b, gap)
		b = AppendVarint(b, r.Largest-r.Smallest)
		prevSmallest = r.Smallest
	}
	return b
}

// AckEliciting implements Frame.
func (*AckFrame) AckEliciting() bool { return false }

// Largest returns the largest packet number the frame acknowledges.
func (f *AckFrame) Largest() uint64 { return f.Ranges[0].Largest }

// Acks reports whether packet number pn is covered by the frame.
func (f *AckFrame) Acks(pn uint64) bool {
	for _, r := range f.Ranges {
		if pn >= r.Smallest && pn <= r.Largest {
			return true
		}
	}
	return false
}

// CryptoFrame carries handshake data at the given offset.
type CryptoFrame struct {
	Offset uint64
	Data   []byte
}

// Append implements Frame.
func (f *CryptoFrame) Append(b []byte) []byte {
	b = append(b, FrameTypeCrypto)
	b = AppendVarint(b, f.Offset)
	b = AppendVarint(b, uint64(len(f.Data)))
	return append(b, f.Data...)
}

// AckEliciting implements Frame.
func (*CryptoFrame) AckEliciting() bool { return true }

// NewTokenFrame delivers an address-validation token for future connections.
type NewTokenFrame struct{ Token []byte }

// Append implements Frame.
func (f *NewTokenFrame) Append(b []byte) []byte {
	b = append(b, FrameTypeNewToken)
	b = AppendVarint(b, uint64(len(f.Token)))
	return append(b, f.Token...)
}

// AckEliciting implements Frame.
func (*NewTokenFrame) AckEliciting() bool { return true }

// StreamFrame carries application data for a stream.
type StreamFrame struct {
	StreamID uint64
	Offset   uint64
	Data     []byte
	Fin      bool
}

// Append implements Frame. It always encodes explicit offset and length so
// frames can be coalesced.
func (f *StreamFrame) Append(b []byte) []byte {
	t := byte(FrameTypeStreamBase | streamFlagOFF | streamFlagLEN)
	if f.Fin {
		t |= streamFlagFIN
	}
	b = append(b, t)
	b = AppendVarint(b, f.StreamID)
	b = AppendVarint(b, f.Offset)
	b = AppendVarint(b, uint64(len(f.Data)))
	return append(b, f.Data...)
}

// AckEliciting implements Frame.
func (*StreamFrame) AckEliciting() bool { return true }

// HandshakeDoneFrame confirms the handshake to the client (server-only).
type HandshakeDoneFrame struct{}

// Append implements Frame.
func (HandshakeDoneFrame) Append(b []byte) []byte { return append(b, FrameTypeHandshakeDone) }

// AckEliciting implements Frame.
func (HandshakeDoneFrame) AckEliciting() bool { return true }

// ConnectionCloseFrame signals connection termination with a transport
// error code (frame type 0x1c).
type ConnectionCloseFrame struct {
	ErrorCode uint64
	FrameType uint64
	Reason    string
}

// Append implements Frame.
func (f *ConnectionCloseFrame) Append(b []byte) []byte {
	b = append(b, FrameTypeConnectionClose)
	b = AppendVarint(b, f.ErrorCode)
	b = AppendVarint(b, f.FrameType)
	b = AppendVarint(b, uint64(len(f.Reason)))
	return append(b, f.Reason...)
}

// AckEliciting implements Frame.
func (*ConnectionCloseFrame) AckEliciting() bool { return false }

// ParseFrames decodes all frames in a packet payload. Runs of PADDING are
// collapsed into a single PaddingFrame.
func ParseFrames(b []byte) ([]Frame, error) {
	var frames []Frame
	for len(b) > 0 {
		f, n, err := parseFrame(b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		if p, ok := f.(PaddingFrame); ok {
			if len(frames) > 0 {
				if prev, ok := frames[len(frames)-1].(PaddingFrame); ok {
					frames[len(frames)-1] = PaddingFrame{N: prev.N + p.N}
					continue
				}
			}
		}
		frames = append(frames, f)
	}
	return frames, nil
}

func parseFrame(b []byte) (Frame, int, error) {
	t := b[0]
	switch {
	case t == FrameTypePadding:
		return PaddingFrame{N: 1}, 1, nil
	case t == FrameTypePing:
		return PingFrame{}, 1, nil
	case t == FrameTypeAck:
		return parseAckFrame(b)
	case t == FrameTypeCrypto:
		return parseCryptoFrame(b)
	case t == FrameTypeNewToken:
		return parseNewTokenFrame(b)
	case t >= FrameTypeStreamBase && t < FrameTypeStreamBase+8:
		return parseStreamFrame(b)
	case t == FrameTypeHandshakeDone:
		return HandshakeDoneFrame{}, 1, nil
	case t == FrameTypeConnectionClose:
		return parseConnectionCloseFrame(b)
	default:
		return nil, 0, fmt.Errorf("%w: unknown frame type %#x", ErrInvalidFrame, t)
	}
}

func parseAckFrame(b []byte) (Frame, int, error) {
	f := &AckFrame{}
	n, err := parseAckInto(f, b)
	if err != nil {
		return nil, 0, err
	}
	return f, n, nil
}

// parseAckInto decodes an ACK frame into f, reusing f.Ranges' backing array.
func parseAckInto(f *AckFrame, b []byte) (int, error) {
	pos := 1
	largest, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	delay, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	rangeCount, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	firstRange, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	if firstRange > largest {
		return 0, fmt.Errorf("%w: ACK first range %d exceeds largest %d", ErrInvalidFrame, firstRange, largest)
	}
	// Every additional range costs at least two varint bytes on the wire,
	// so validate the declared count against the remaining buffer before
	// looping: a hostile 2^62-style count must fail here, not after
	// appending ranges until the buffer runs dry.
	if rangeCount > uint64(len(b)-pos)/2 {
		return 0, fmt.Errorf("%w: ACK range count %d exceeds remaining %d bytes", ErrInvalidFrame, rangeCount, len(b)-pos)
	}
	f.DelayMicros = delay << AckDelayExponent
	f.Ranges = append(f.Ranges[:0], AckRange{Smallest: largest - firstRange, Largest: largest})
	smallest := f.Ranges[0].Smallest
	for i := uint64(0); i < rangeCount; i++ {
		gap, n2, err := ConsumeVarint(b[pos:])
		if err != nil {
			return 0, err
		}
		pos += n2
		length, n2, err := ConsumeVarint(b[pos:])
		if err != nil {
			return 0, err
		}
		pos += n2
		if smallest < gap+2 {
			return 0, fmt.Errorf("%w: ACK gap underflow", ErrInvalidFrame)
		}
		largest := smallest - gap - 2
		if length > largest {
			return 0, fmt.Errorf("%w: ACK range underflow", ErrInvalidFrame)
		}
		smallest = largest - length
		f.Ranges = append(f.Ranges, AckRange{Smallest: smallest, Largest: largest})
	}
	return pos, nil
}

func parseCryptoFrame(b []byte) (Frame, int, error) {
	f := &CryptoFrame{}
	n, err := parseCryptoInto(f, b)
	if err != nil {
		return nil, 0, err
	}
	return f, n, nil
}

func parseCryptoInto(f *CryptoFrame, b []byte) (int, error) {
	pos := 1
	off, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	length, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	if uint64(len(b)-pos) < length {
		return 0, fmt.Errorf("%w: CRYPTO data", ErrTruncated)
	}
	f.Offset, f.Data = off, b[pos:pos+int(length)]
	return pos + int(length), nil
}

func parseNewTokenFrame(b []byte) (Frame, int, error) {
	f := &NewTokenFrame{}
	n, err := parseNewTokenInto(f, b)
	if err != nil {
		return nil, 0, err
	}
	return f, n, nil
}

func parseNewTokenInto(f *NewTokenFrame, b []byte) (int, error) {
	pos := 1
	length, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	if length == 0 {
		return 0, fmt.Errorf("%w: empty NEW_TOKEN", ErrInvalidFrame)
	}
	if uint64(len(b)-pos) < length {
		return 0, fmt.Errorf("%w: NEW_TOKEN data", ErrTruncated)
	}
	f.Token = b[pos : pos+int(length)]
	return pos + int(length), nil
}

func parseStreamFrame(b []byte) (Frame, int, error) {
	f := &StreamFrame{}
	n, err := parseStreamInto(f, b)
	if err != nil {
		return nil, 0, err
	}
	return f, n, nil
}

func parseStreamInto(f *StreamFrame, b []byte) (int, error) {
	t := b[0]
	pos := 1
	id, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	f.StreamID, f.Offset, f.Fin = id, 0, t&streamFlagFIN != 0
	if t&streamFlagOFF != 0 {
		off, n, err := ConsumeVarint(b[pos:])
		if err != nil {
			return 0, err
		}
		pos += n
		f.Offset = off
	}
	if t&streamFlagLEN != 0 {
		length, n, err := ConsumeVarint(b[pos:])
		if err != nil {
			return 0, err
		}
		pos += n
		if uint64(len(b)-pos) < length {
			return 0, fmt.Errorf("%w: STREAM data", ErrTruncated)
		}
		f.Data = b[pos : pos+int(length)]
		pos += int(length)
	} else {
		f.Data = b[pos:]
		pos = len(b)
	}
	return pos, nil
}

func parseConnectionCloseFrame(b []byte) (Frame, int, error) {
	f := &ConnectionCloseFrame{}
	n, err := parseConnectionCloseInto(f, b)
	if err != nil {
		return nil, 0, err
	}
	return f, n, nil
}

func parseConnectionCloseInto(f *ConnectionCloseFrame, b []byte) (int, error) {
	pos := 1
	code, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	ft, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	rl, n, err := ConsumeVarint(b[pos:])
	if err != nil {
		return 0, err
	}
	pos += n
	if uint64(len(b)-pos) < rl {
		return 0, fmt.Errorf("%w: CONNECTION_CLOSE reason", ErrTruncated)
	}
	f.ErrorCode, f.FrameType, f.Reason = code, ft, string(b[pos:pos+int(rl)])
	return pos + int(rl), nil
}
