package wire

import "fmt"

// FrameArena recycles parsed frame structs and the frame list across
// packets. A receive loop that parses one packet at a time can hold one
// arena per connection and parse every payload allocation-free at steady
// state; ParseFrames (which allocates fresh frames) remains for callers
// that retain parsed frames.
//
// The slice returned by Parse, the frames it holds, and any data they
// reference are valid only until the next Parse call on the same arena.
type FrameArena struct {
	frames   []Frame
	paddings []PaddingFrame
	acks     []AckFrame
	cryptos  []CryptoFrame
	tokens   []NewTokenFrame
	streams  []StreamFrame
	closes   []ConnectionCloseFrame
}

// grow extends s by one reused (or zero) element and returns it. Growing
// may move the backing array; previously returned pointers stay valid on
// the old one, which is exactly what interface values handed out earlier
// in the same packet need.
func grow[T any](s []T) ([]T, *T) {
	if len(s) < cap(s) {
		s = s[: len(s)+1 : cap(s)]
	} else {
		var zero T
		s = append(s, zero)
	}
	return s, &s[len(s)-1]
}

// Parse decodes all frames in a packet payload with the same semantics as
// ParseFrames (runs of PADDING collapse into one frame; on error no frames
// are returned). Unlike ParseFrames it reuses the arena's storage: the
// result is invalidated by the next call.
func (a *FrameArena) Parse(b []byte) ([]Frame, error) {
	a.frames = a.frames[:0]
	a.paddings = a.paddings[:0]
	a.acks = a.acks[:0]
	a.cryptos = a.cryptos[:0]
	a.tokens = a.tokens[:0]
	a.streams = a.streams[:0]
	a.closes = a.closes[:0]
	var pad *PaddingFrame // current PADDING run, nil outside one
	for len(b) > 0 {
		t := b[0]
		if t == FrameTypePadding {
			if pad == nil {
				a.paddings, pad = grow(a.paddings)
				pad.N = 0
				a.frames = append(a.frames, pad)
			}
			pad.N++
			b = b[1:]
			continue
		}
		pad = nil
		var (
			f   Frame
			n   int
			err error
		)
		switch {
		case t == FrameTypePing:
			f, n = PingFrame{}, 1
		case t == FrameTypeAck:
			var fr *AckFrame
			a.acks, fr = grow(a.acks)
			n, err = parseAckInto(fr, b)
			f = fr
		case t == FrameTypeCrypto:
			var fr *CryptoFrame
			a.cryptos, fr = grow(a.cryptos)
			n, err = parseCryptoInto(fr, b)
			f = fr
		case t == FrameTypeNewToken:
			var fr *NewTokenFrame
			a.tokens, fr = grow(a.tokens)
			n, err = parseNewTokenInto(fr, b)
			f = fr
		case t >= FrameTypeStreamBase && t < FrameTypeStreamBase+8:
			var fr *StreamFrame
			a.streams, fr = grow(a.streams)
			n, err = parseStreamInto(fr, b)
			f = fr
		case t == FrameTypeHandshakeDone:
			f, n = HandshakeDoneFrame{}, 1
		case t == FrameTypeConnectionClose:
			var fr *ConnectionCloseFrame
			a.closes, fr = grow(a.closes)
			n, err = parseConnectionCloseInto(fr, b)
			f = fr
		default:
			return nil, fmt.Errorf("%w: unknown frame type %#x", ErrInvalidFrame, t)
		}
		if err != nil {
			return nil, err
		}
		a.frames = append(a.frames, f)
		b = b[n:]
	}
	return a.frames, nil
}
