package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrips(t *testing.T) {
	frames := []Frame{
		PingFrame{},
		&AckFrame{Ranges: []AckRange{{Smallest: 5, Largest: 10}}, DelayMicros: 8000},
		&AckFrame{Ranges: []AckRange{{Smallest: 90, Largest: 100}, {Smallest: 10, Largest: 50}}, DelayMicros: 0},
		&CryptoFrame{Offset: 12, Data: []byte("client hello")},
		&NewTokenFrame{Token: []byte{0xde, 0xad}},
		&StreamFrame{StreamID: 0, Offset: 0, Data: []byte("GET /"), Fin: true},
		&StreamFrame{StreamID: 4, Offset: 1000, Data: []byte("body"), Fin: false},
		HandshakeDoneFrame{},
		&ConnectionCloseFrame{ErrorCode: 0x0a, FrameType: FrameTypeStreamBase, Reason: "bye"},
	}
	var buf []byte
	for _, f := range frames {
		buf = f.Append(buf)
	}
	got, err := ParseFrames(buf)
	if err != nil {
		t.Fatalf("ParseFrames: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !reflect.DeepEqual(got[i], frames[i]) {
			t.Errorf("frame %d: got %#v, want %#v", i, got[i], frames[i])
		}
	}
}

func TestPaddingCollapses(t *testing.T) {
	buf := PaddingFrame{N: 3}.Append(nil)
	buf = PingFrame{}.Append(buf)
	buf = PaddingFrame{N: 2}.Append(buf)
	buf = PaddingFrame{N: 1}.Append(buf)
	got, err := ParseFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Frame{PaddingFrame{N: 3}, PingFrame{}, PaddingFrame{N: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}

func TestAckFrameDelayEncoding(t *testing.T) {
	// Delay is carried in units of 2^AckDelayExponent microseconds, so the
	// decoded value is the encoded one rounded down to a multiple of 8 µs.
	f := &AckFrame{Ranges: []AckRange{{Smallest: 0, Largest: 0}}, DelayMicros: 1235}
	got, err := ParseFrames(f.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	ack := got[0].(*AckFrame)
	if ack.DelayMicros != 1232 {
		t.Errorf("delay = %d µs, want 1232", ack.DelayMicros)
	}
}

func TestAckFrameAcks(t *testing.T) {
	f := &AckFrame{Ranges: []AckRange{{Smallest: 90, Largest: 100}, {Smallest: 10, Largest: 50}}}
	for _, c := range []struct {
		pn   uint64
		want bool
	}{{9, false}, {10, true}, {50, true}, {51, false}, {89, false}, {90, true}, {100, true}, {101, false}} {
		if got := f.Acks(c.pn); got != c.want {
			t.Errorf("Acks(%d) = %v, want %v", c.pn, got, c.want)
		}
	}
	if f.Largest() != 100 {
		t.Errorf("Largest = %d", f.Largest())
	}
}

func TestAckEliciting(t *testing.T) {
	cases := []struct {
		f    Frame
		want bool
	}{
		{PaddingFrame{N: 1}, false},
		{PingFrame{}, true},
		{&AckFrame{Ranges: []AckRange{{0, 0}}}, false},
		{&CryptoFrame{}, true},
		{&StreamFrame{}, true},
		{HandshakeDoneFrame{}, true},
		{&ConnectionCloseFrame{}, false},
		{&NewTokenFrame{Token: []byte{1}}, true},
	}
	for _, c := range cases {
		if got := c.f.AckEliciting(); got != c.want {
			t.Errorf("%T.AckEliciting() = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestParseFramesErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"unknown type", []byte{0xff}},
		{"truncated crypto", []byte{FrameTypeCrypto, 0x00, 0x05, 'h', 'i'}},
		{"truncated stream", []byte{FrameTypeStreamBase | 0x02, 0x00, 0x09, 'x'}},
		{"ack range underflow", []byte{FrameTypeAck, 0x05, 0x00, 0x00, 0x09}},
		{"empty new token", []byte{FrameTypeNewToken, 0x00}},
		{"truncated close reason", []byte{FrameTypeConnectionClose, 0x00, 0x00, 0x08, 'a'}},
	}
	for _, c := range cases {
		if _, err := ParseFrames(c.data); err == nil {
			t.Errorf("%s: ParseFrames(%x) succeeded", c.name, c.data)
		}
	}
}

func TestAckFrameQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRanges uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRanges%8) + 1
		// Build descending, non-adjacent ranges.
		ranges := make([]AckRange, 0, n)
		next := uint64(1_000_000)
		for i := 0; i < n; i++ {
			largest := next
			smallest := largest - uint64(r.Intn(50))
			ranges = append(ranges, AckRange{Smallest: smallest, Largest: largest})
			if smallest < 100 {
				break
			}
			next = smallest - 2 - uint64(r.Intn(50))
		}
		in := &AckFrame{Ranges: ranges, DelayMicros: uint64(r.Intn(100000)) &^ 7}
		out, err := ParseFrames(in.Append(nil))
		if err != nil || len(out) != 1 {
			return false
		}
		return reflect.DeepEqual(out[0], in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestStreamFrameQuickRoundTrip(t *testing.T) {
	f := func(id, off uint32, data []byte, fin bool) bool {
		in := &StreamFrame{StreamID: uint64(id), Offset: uint64(off), Data: data, Fin: fin}
		out, err := ParseFrames(in.Append(nil))
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0].(*StreamFrame)
		return got.StreamID == in.StreamID && got.Offset == in.Offset &&
			got.Fin == in.Fin && bytes.Equal(got.Data, in.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseFramesTypical(b *testing.B) {
	var buf []byte
	buf = (&AckFrame{Ranges: []AckRange{{Smallest: 1, Largest: 30}}, DelayMicros: 800}).Append(buf)
	buf = (&StreamFrame{StreamID: 0, Offset: 4096, Data: make([]byte, 1024)}).Append(buf)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseFrames(buf); err != nil {
			b.Fatal(err)
		}
	}
}
