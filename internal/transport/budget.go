package transport

import (
	"fmt"
	"time"

	"quicspin/internal/wire"
)

// Budget kinds, used as telemetry labels (budget_exceeded_total{kind}) and
// to map a tripped budget back to the hostile-endpoint profile that
// characteristically trips it.
const (
	// BudgetRecvBytes caps total datagram bytes received.
	BudgetRecvBytes = "recv-bytes"
	// BudgetRecvPackets caps total packets processed.
	BudgetRecvPackets = "recv-packets"
	// BudgetMalformedDatagram caps datagrams whose header fails to parse.
	BudgetMalformedDatagram = "malformed-datagram"
	// BudgetMalformedFrame caps packets whose frames fail to parse.
	BudgetMalformedFrame = "malformed-frame"
	// BudgetLifetime caps the wall (virtual) time between the first and the
	// latest received datagram.
	BudgetLifetime = "lifetime"
)

// Budget bounds the resources one connection may consume on received
// traffic, so a hostile peer can waste at most a fixed amount of scanner
// memory and time before the connection is torn down with a BudgetError.
// A zero field means unlimited; the zero Budget disables all limits.
type Budget struct {
	// MaxRecvBytes is the total datagram byte budget.
	MaxRecvBytes int
	// MaxRecvPackets is the total received-packet budget.
	MaxRecvPackets int
	// MaxMalformed is the number of tolerated malformed datagrams or
	// packets (header or frame parse failures) before the connection is
	// closed. Occasional corruption is tolerated; a stream of it is not.
	MaxMalformed int
	// MaxLifetime bounds the receive activity window.
	MaxLifetime time.Duration
}

// DefaultBudget is the scanner's per-connection budget: generous against
// any honest response (the simulated web serves at most a few hundred KB
// over a few hundred packets) but tight enough that amplification storms
// and malformed-traffic floods are cut off deterministically.
func DefaultBudget() Budget {
	return Budget{
		MaxRecvBytes:   16 << 20,
		MaxRecvPackets: 1024,
		MaxMalformed:   3,
	}
}

// BudgetError is the terminal error of a connection that exceeded one of
// its resource budgets. The scanner classifies it into the "hostile:*"
// error family instead of retrying.
type BudgetError struct {
	// Kind is the exceeded budget (BudgetRecvBytes etc.).
	Kind string
	// Limit is the configured limit that was crossed.
	Limit int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("transport: budget exceeded: %s limit %d", e.Kind, e.Limit)
}

// tripBudget terminates the connection over an exceeded budget: it records
// the terminal error, marks the budget as tripped (all further Receive
// calls return immediately) and queues a CONNECTION_CLOSE so the peer
// stops transmitting.
func (c *Conn) tripBudget(now time.Time, kind string, limit int64) error {
	err := &BudgetError{Kind: kind, Limit: limit}
	c.budgetTripped = true
	if c.termErr == nil {
		c.termErr = err
	}
	if c.state < stateClosing {
		c.state = stateClosing
		// 0x2: INTERNAL_ERROR — the closest RFC 9000 transport code for
		// "I refuse to process more of this".
		c.closeFrame = &wire.ConnectionCloseFrame{ErrorCode: 0x2, Reason: "resource budget exceeded"}
		c.drainDeadline = now.Add(3 * c.estimator.PTO(true))
	}
	return err
}
