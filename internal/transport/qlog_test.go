package transport_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/netem"
	"quicspin/internal/qlog"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

func TestClientInitialDatagramPadded(t *testing.T) {
	conn := transport.NewClientConn(transport.Config{Rng: rand.New(rand.NewSource(1))}, epoch)
	dgrams := conn.Poll(epoch)
	if len(dgrams) == 0 {
		t.Fatal("no first flight")
	}
	if len(dgrams[0]) < transport.MinInitialSize {
		t.Errorf("client Initial datagram = %d bytes, want ≥ %d", len(dgrams[0]), transport.MinInitialSize)
	}
	// The padded datagram must still parse packet by packet.
	rest := dgrams[0]
	for len(rest) > 0 {
		hdr, _, consumed, err := wire.ParseHeader(rest, 8, wire.NoAckedPacket)
		if err != nil {
			t.Fatalf("parsing padded Initial: %v", err)
		}
		if !hdr.IsLong {
			break // trailing short packet extends to the end
		}
		rest = rest[consumed:]
	}
}

func TestQlogCaptureOnConnection(t *testing.T) {
	loop := sim.NewLoop(epoch)
	rng := rand.New(rand.NewSource(8))
	network := netem.New(loop, netem.PathConfig{Delay: 20 * time.Millisecond}, rng)

	var buf bytes.Buffer
	qw, err := qlog.NewWriter(&buf, qlog.TraceHeader{VantagePoint: "client", ReferenceTime: epoch}, false)
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	server := netem.NewServerHost(network, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			if data, done := conn.StreamRecv(0); done {
				if _, already := conn.StreamRecv(99); !already {
					_ = conn.SendStream(0, data, true)
				}
			}
		}
	}
	conn := transport.NewClientConn(transport.Config{Rng: rng, Qlog: qw}, loop.Now())
	if err := conn.SendStream(0, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	client := netem.NewClientHost(network, "client", "server", conn)
	client.Kick()
	loop.RunUntil(epoch.Add(10 * time.Second))
	if _, done := conn.StreamRecv(0); !done {
		t.Fatal("exchange incomplete")
	}
	if err := qw.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := qlog.Parse(&buf)
	if err != nil {
		t.Fatalf("parsing captured qlog: %v", err)
	}
	var sent, received, metrics, shortWithSpin int
	for i := range tr.Events {
		switch tr.Events[i].Name {
		case qlog.EventPacketSent:
			sent++
		case qlog.EventPacketReceived:
			received++
			p, err := tr.Events[i].Packet()
			if err != nil {
				t.Fatal(err)
			}
			if p.Header.PacketType == "1RTT" && p.Header.SpinBit != nil {
				shortWithSpin++
			}
		case qlog.EventMetricsUpdated:
			metrics++
		}
	}
	if sent == 0 || received == 0 {
		t.Errorf("events: sent=%d received=%d", sent, received)
	}
	if metrics == 0 {
		t.Error("no recovery:metrics_updated events captured")
	}
	if shortWithSpin == 0 {
		t.Error("no received 1-RTT packets carry the spin_bit extension")
	}
}

func TestEndpointIgnoresGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	// Unroutable short-header packet, runt datagram, malformed long header.
	if err := ep.Receive(epoch, "x", []byte{0x40, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Errorf("unroutable short packet: %v", err)
	}
	if err := ep.Receive(epoch, "x", []byte{0x40}); err == nil {
		t.Error("runt datagram accepted")
	}
	if err := ep.Receive(epoch, "x", nil); err != nil {
		t.Errorf("empty datagram: %v", err)
	}
	if err := ep.Receive(epoch, "x", []byte{0xc0, 0xde, 0xad}); err == nil {
		t.Error("malformed long header accepted")
	}
	if len(ep.Conns()) != 0 {
		t.Errorf("garbage created %d connections", len(ep.Conns()))
	}
	if _, ok := ep.NextTimeout(); ok {
		t.Error("timer armed without connections")
	}
}

func TestConnStatsPopulated(t *testing.T) {
	path := netem.PathConfig{Delay: 10 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	h.request(t, 0, "stats", 5*time.Second)
	st := h.client.Conn().Stats()
	if st.PacketsSent == 0 || st.PacketsReceived == 0 ||
		st.ShortReceived == 0 || st.BytesSent == 0 || st.BytesReceived == 0 ||
		st.DatagramsSent == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestIdleTimeoutClosesQuietConnection(t *testing.T) {
	path := netem.PathConfig{Delay: 5 * time.Millisecond}
	h := newHarness(t, path, transport.Config{IdleTimeout: 2 * time.Second}, transport.Config{})
	h.request(t, 0, "x", 5*time.Second)
	// Let the connection idle past its timeout without closing it.
	h.loop.RunUntil(h.loop.Now().Add(time.Minute))
	if !h.client.Conn().Closed() {
		t.Fatal("idle connection did not close")
	}
	if h.client.Conn().TermError() == nil {
		t.Error("idle close carries no error")
	}
}
