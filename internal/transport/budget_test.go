package transport_test

import (
	"errors"
	"testing"
	"time"

	"quicspin/internal/netem"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

// runWithBudget drives one request against the echo server with the given
// client budget and an optional server-side datagram mangler, until the
// client connection terminates or the virtual deadline passes. It returns
// the client connection for inspection.
func runWithBudget(t *testing.T, budget transport.Budget, mangle netem.Mangler, body string) *transport.Conn {
	t.Helper()
	path := netem.PathConfig{Delay: 20 * time.Millisecond}
	h := newHarness(t, path, transport.Config{Budget: budget}, transport.Config{})
	if mangle != nil {
		h.net.SetMangler("server", mangle)
	}
	conn := h.client.Conn()
	sent := false
	h.client.OnActivity = func(c *transport.Conn, now time.Time) {
		if c.HandshakeComplete() && !sent {
			sent = true
			if err := c.SendStream(0, []byte(body), true); err != nil {
				t.Errorf("client SendStream: %v", err)
			}
		}
	}
	h.client.Kick()
	h.loop.RunUntil(epoch.Add(2 * time.Minute))
	return conn
}

// budgetKind asserts the connection died on a BudgetError of the given
// kind, reachable through errors.As.
func budgetKind(t *testing.T, conn *transport.Conn, kind string) *transport.BudgetError {
	t.Helper()
	if !conn.Terminating() {
		t.Fatal("connection still alive; budget never tripped")
	}
	var be *transport.BudgetError
	if !errors.As(conn.TermError(), &be) {
		t.Fatalf("terminal error %v (%T), want *BudgetError", conn.TermError(), conn.TermError())
	}
	if be.Kind != kind {
		t.Fatalf("budget kind %q, want %q", be.Kind, kind)
	}
	return be
}

func TestBudgetRecvBytes(t *testing.T) {
	body := make([]byte, 20000)
	conn := runWithBudget(t, transport.Budget{MaxRecvBytes: 4096}, nil, string(body))
	be := budgetKind(t, conn, transport.BudgetRecvBytes)
	if be.Limit != 4096 {
		t.Errorf("limit %d, want 4096", be.Limit)
	}
}

func TestBudgetRecvPackets(t *testing.T) {
	// Amplify the first server datagram into a storm (the PacketStorm
	// profile shape): the packet budget must cut the connection off.
	first := true
	storm := func(data []byte) [][]byte {
		if !first {
			return [][]byte{data}
		}
		first = false
		out := make([][]byte, 300)
		for i := range out {
			out[i] = data
		}
		return out
	}
	conn := runWithBudget(t, transport.Budget{MaxRecvPackets: 64}, storm, "x")
	budgetKind(t, conn, transport.BudgetRecvPackets)
	if conn.Stats().PacketsReceived > 64+8 {
		t.Errorf("%d packets processed after a 64-packet budget", conn.Stats().PacketsReceived)
	}
}

func TestBudgetMalformedDatagram(t *testing.T) {
	// Truncate every short-header datagram to 3 bytes (the MalformedHeader
	// profile shape): headers stop parsing once the handshake is done.
	trunc := func(data []byte) [][]byte {
		if len(data) == 0 || wire.IsLongHeader(data[0]) {
			return [][]byte{data}
		}
		n := len(data)
		if n > 3 {
			n = 3
		}
		return [][]byte{data[:n]}
	}
	conn := runWithBudget(t, transport.Budget{MaxMalformed: 3}, trunc, "x")
	budgetKind(t, conn, transport.BudgetMalformedDatagram)
	if !conn.HandshakeComplete() {
		t.Error("handshake should complete over untouched long headers")
	}
}

func TestBudgetMalformedFrame(t *testing.T) {
	// Corrupt the first frame type of every short packet into the unknown
	// type 0x1f (the MalformedFrames profile shape).
	corrupt := func(data []byte) [][]byte {
		if len(data) == 0 || wire.IsLongHeader(data[0]) {
			return [][]byte{data}
		}
		off := 1 + transport.DefaultConnIDLen + int(data[0]&0x3) + 1
		if len(data) <= off {
			return [][]byte{data}
		}
		cp := append([]byte(nil), data...)
		cp[off] = 0x1f
		return [][]byte{cp}
	}
	conn := runWithBudget(t, transport.Budget{MaxMalformed: 3}, corrupt, "x")
	budgetKind(t, conn, transport.BudgetMalformedFrame)
}

func TestBudgetLifetime(t *testing.T) {
	// A 30 ms receive window over a 40 ms-RTT path: the second server
	// flight must trip the lifetime budget.
	conn := runWithBudget(t, transport.Budget{MaxLifetime: 30 * time.Millisecond}, nil, "x")
	budgetKind(t, conn, transport.BudgetLifetime)
}

// TestBudgetErrorSurvivesClose checks the scanner-visible property that a
// budget terminal error is not overwritten by the scanner's own cleanup
// Close at the end of the probe.
func TestBudgetErrorSurvivesClose(t *testing.T) {
	body := make([]byte, 20000)
	conn := runWithBudget(t, transport.Budget{MaxRecvBytes: 4096}, nil, string(body))
	budgetKind(t, conn, transport.BudgetRecvBytes)
	conn.Close(epoch.Add(3*time.Minute), 0, "scan complete")
	budgetKind(t, conn, transport.BudgetRecvBytes)
}

// TestZeroBudgetUnlimited checks the zero Budget disables every limit: a
// large transfer completes untouched.
func TestZeroBudgetUnlimited(t *testing.T) {
	path := netem.PathConfig{Delay: 20 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	body := make([]byte, 30000)
	resp := h.request(t, 0, string(body), time.Minute)
	if len(resp) != len(body)+5 {
		t.Fatalf("got %d bytes, want %d", len(resp), len(body)+5)
	}
	var be *transport.BudgetError
	if errors.As(h.client.Conn().TermError(), &be) {
		t.Fatalf("zero budget tripped: %v", be)
	}
}
