// Package transport implements QUIC-lite: a sans-IO QUIC version 1
// endpoint sufficient for the paper's measurement study. It speaks the RFC
// 9000 wire format (long/short headers, varints, the latency spin bit in
// short-header packets), performs a simplified 1-RTT handshake with mock
// crypto, generates and processes ACKs, runs RFC 9002 loss recovery and RTT
// estimation, and carries stream data for the HTTP/3-lite layer.
//
// Connections are poll-driven and hold no goroutines or sockets: callers
// feed datagrams in with Conn.Receive, collect outgoing datagrams with
// Conn.Poll, and drive timers with Conn.Advance. The same code therefore
// runs deterministically under the virtual-time network emulator
// (internal/netem) and over real UDP sockets (internal/udprun).
//
// Substitution note (see DESIGN.md): real QUIC encrypts everything behind
// TLS 1.3. None of the quantities the paper measures depend on payload
// confidentiality, so the CRYPTO frames carry a mock handshake transcript
// instead. Header fields — including the spin bit — are bit-compatible with
// RFC 9000.
package transport

import (
	"math/rand"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/qlog"
)

// Default protocol parameters.
const (
	// MaxDatagramSize is the assumed UDP payload budget (RFC 9000 §14.3
	// conservative default).
	MaxDatagramSize = 1200
	// MinInitialSize is the mandatory minimum size of client Initial
	// datagrams (RFC 9000 §14.1).
	MinInitialSize = 1200
	// DefaultIdleTimeout closes connections with no activity.
	DefaultIdleTimeout = 30 * time.Second
	// DefaultMaxAckDelay is the advertised max_ack_delay (RFC 9000 default).
	DefaultMaxAckDelay = 25 * time.Millisecond
	// DefaultConnIDLen is the length of locally issued connection IDs.
	DefaultConnIDLen = 8
	// packetThreshold is the RFC 9002 §6.1.1 reordering threshold.
	packetThreshold = 3
	// maxAckRanges bounds remembered ACK ranges per packet-number space.
	maxAckRanges = 32
)

// Config parameterises a connection or endpoint.
type Config struct {
	// Rng drives connection IDs and spin-policy randomness. Required.
	Rng *rand.Rand
	// SpinPolicy is the spin-bit behaviour (see core.Policy). The zero
	// value spins on every connection, like the LiteSpeed deployments the
	// paper identifies.
	SpinPolicy core.Policy
	// EnableVEC transports the Valid Edge Counter extension in the
	// reserved bits of short-header packets.
	EnableVEC bool
	// IdleTimeout closes the connection when no packets are exchanged for
	// this long. Zero means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// MaxAckDelay is the locally applied ACK batching delay; zero means
	// DefaultMaxAckDelay.
	MaxAckDelay time.Duration
	// AckEveryN acknowledges after every Nth ack-eliciting packet without
	// waiting for MaxAckDelay; zero means 2 (RFC 9000 recommendation).
	AckEveryN int
	// Qlog, when non-nil, receives packet and recovery events.
	Qlog *qlog.Writer
	// ConnIDLen is the length of locally issued connection IDs; zero means
	// DefaultConnIDLen.
	ConnIDLen int
	// MaxInFlight caps ack-eliciting 1-RTT packets in flight (a static
	// congestion window of RFC 9002's initial size). The cap paces
	// multi-packet responses across round trips — which is what makes the
	// spin bit flip during a download. Zero means DefaultMaxInFlight.
	MaxInFlight int
	// Budget bounds resources spent on received traffic (see Budget). The
	// zero value disables all limits.
	Budget Budget
}

// DefaultMaxInFlight is the default in-flight packet cap (the 10-packet
// initial congestion window of RFC 9002 §7.2).
const DefaultMaxInFlight = 10

func (c Config) maxInFlight() int {
	if c.MaxInFlight == 0 {
		return DefaultMaxInFlight
	}
	return c.MaxInFlight
}

func (c Config) idleTimeout() time.Duration {
	if c.IdleTimeout == 0 {
		return DefaultIdleTimeout
	}
	return c.IdleTimeout
}

func (c Config) maxAckDelay() time.Duration {
	if c.MaxAckDelay == 0 {
		return DefaultMaxAckDelay
	}
	return c.MaxAckDelay
}

func (c Config) ackEveryN() int {
	if c.AckEveryN == 0 {
		return 2
	}
	return c.AckEveryN
}

func (c Config) connIDLen() int {
	if c.ConnIDLen == 0 {
		return DefaultConnIDLen
	}
	return c.ConnIDLen
}
