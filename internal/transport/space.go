package transport

import (
	"time"

	"quicspin/internal/wire"
)

// spaceID identifies a packet-number space (RFC 9000 §12.3).
type spaceID int

const (
	spaceInitial spaceID = iota
	spaceHandshake
	spaceAppData
	numSpaces
)

func (s spaceID) String() string {
	switch s {
	case spaceInitial:
		return "initial"
	case spaceHandshake:
		return "handshake"
	case spaceAppData:
		return "1RTT"
	default:
		return "?"
	}
}

// sentPacket records an in-flight packet for loss recovery.
type sentPacket struct {
	pn           uint64
	sentAt       time.Time
	ackEliciting bool
	size         int
	// frames are the retransmittable frames carried (CRYPTO/STREAM/
	// HANDSHAKE_DONE); ACK and PADDING are never retransmitted.
	frames []wire.Frame
	// declared marks packets already handled (acked or lost).
	declared bool
}

// recvState tracks received packet numbers for ACK generation in one space.
type recvState struct {
	// ranges is kept sorted descending by Largest, merged on insert.
	ranges []wire.AckRange
	// largest and largestAt record the largest packet number and arrival
	// time, feeding the ack_delay field.
	largest     uint64
	largestAt   time.Time
	hasReceived bool
	// ackQueued requests an ACK at the next Poll; ackDeadline is the
	// latest send time under the delayed-ACK rules.
	ackQueued      bool
	ackDeadline    time.Time
	unackedElicits int
}

// record notes a received packet number and reports whether it is new.
func (r *recvState) record(pn uint64, now time.Time) bool {
	if !r.hasReceived || pn > r.largest {
		r.largest = pn
		r.largestAt = now
		r.hasReceived = true
	}
	// Insert into ranges.
	for i := range r.ranges {
		rg := &r.ranges[i]
		if pn >= rg.Smallest && pn <= rg.Largest {
			return false // duplicate
		}
		if pn == rg.Largest+1 {
			rg.Largest = pn
			if i > 0 && r.ranges[i-1].Smallest == pn+1 {
				r.ranges[i-1].Smallest = rg.Smallest
				r.ranges = append(r.ranges[:i], r.ranges[i+1:]...)
			}
			return true
		}
		if pn+1 == rg.Smallest {
			rg.Smallest = pn
			if i+1 < len(r.ranges) && r.ranges[i+1].Largest+1 == pn {
				rg.Smallest = r.ranges[i+1].Smallest
				r.ranges = append(r.ranges[:i+1], r.ranges[i+2:]...)
			}
			return true
		}
		if pn > rg.Largest {
			// New standalone range before index i.
			r.ranges = append(r.ranges, wire.AckRange{})
			copy(r.ranges[i+1:], r.ranges[i:])
			r.ranges[i] = wire.AckRange{Smallest: pn, Largest: pn}
			r.trim()
			return true
		}
	}
	r.ranges = append(r.ranges, wire.AckRange{Smallest: pn, Largest: pn})
	r.trim()
	return true
}

// trim drops the oldest (smallest) ranges beyond the bookkeeping cap.
func (r *recvState) trim() {
	if len(r.ranges) > maxAckRanges {
		r.ranges = r.ranges[:maxAckRanges]
	}
}

// ackFrame builds the ACK frame for this space, or nil if nothing received.
func (r *recvState) ackFrame(now time.Time) *wire.AckFrame {
	f := &wire.AckFrame{}
	if !r.ackFrameInto(f, now) {
		return nil
	}
	return f
}

// ackFrameInto fills f with this space's ACK (reusing f.Ranges' backing
// array) and reports whether anything was received to acknowledge.
func (r *recvState) ackFrameInto(f *wire.AckFrame, now time.Time) bool {
	if len(r.ranges) == 0 {
		return false
	}
	delay := now.Sub(r.largestAt)
	if delay < 0 {
		delay = 0
	}
	f.Ranges = append(f.Ranges[:0], r.ranges...)
	f.DelayMicros = uint64(delay / time.Microsecond)
	return true
}

// sendState tracks sent packets awaiting acknowledgement in one space.
type sendState struct {
	nextPN       uint64
	largestAcked uint64
	hasAcked     bool
	inFlight     []*sentPacket
	// free recycles declared sentPacket records (and their frames backing
	// arrays) dropped by compact.
	free []*sentPacket
}

// take returns a recycled or fresh sentPacket with an empty frames slice.
func (s *sendState) take() *sentPacket {
	n := len(s.free)
	if n == 0 {
		return &sentPacket{}
	}
	p := s.free[n-1]
	s.free = s.free[:n-1]
	return p
}

func (s *sendState) largestAckedOrSentinel() uint64 {
	if !s.hasAcked {
		return wire.NoAckedPacket
	}
	return s.largestAcked
}

// oldestUnacked returns the earliest-sent ack-eliciting in-flight packet.
func (s *sendState) oldestUnacked() *sentPacket {
	for _, p := range s.inFlight {
		if !p.declared && p.ackEliciting {
			return p
		}
	}
	return nil
}

// compact drops declared packets from the in-flight list, recycling their
// records. Callers must not hold on to a declared *sentPacket across a
// compact call.
func (s *sendState) compact() {
	out := s.inFlight[:0]
	for _, p := range s.inFlight {
		if !p.declared {
			out = append(out, p)
			continue
		}
		fr := p.frames[:0]
		*p = sentPacket{frames: fr}
		s.free = append(s.free, p)
	}
	for i := len(out); i < len(s.inFlight); i++ {
		s.inFlight[i] = nil
	}
	s.inFlight = out
}
