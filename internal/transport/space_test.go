package transport

import (
	"reflect"
	"testing"
	"time"

	"quicspin/internal/wire"
)

var tRef = time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

func TestRecvStateContiguous(t *testing.T) {
	r := &recvState{}
	for pn := uint64(0); pn < 5; pn++ {
		if !r.record(pn, tRef) {
			t.Fatalf("pn %d reported duplicate", pn)
		}
	}
	want := []wire.AckRange{{Smallest: 0, Largest: 4}}
	if !reflect.DeepEqual(r.ranges, want) {
		t.Errorf("ranges = %v, want %v", r.ranges, want)
	}
	if r.record(3, tRef) {
		t.Error("duplicate not detected")
	}
}

func TestRecvStateGapsAndMerge(t *testing.T) {
	r := &recvState{}
	for _, pn := range []uint64{0, 1, 5, 6, 3} {
		r.record(pn, tRef)
	}
	want := []wire.AckRange{{Smallest: 5, Largest: 6}, {Smallest: 3, Largest: 3}, {Smallest: 0, Largest: 1}}
	if !reflect.DeepEqual(r.ranges, want) {
		t.Fatalf("ranges = %v, want %v", r.ranges, want)
	}
	// Filling pn 2 and 4 merges everything into one range.
	r.record(2, tRef)
	r.record(4, tRef)
	want = []wire.AckRange{{Smallest: 0, Largest: 6}}
	if !reflect.DeepEqual(r.ranges, want) {
		t.Errorf("merged ranges = %v, want %v", r.ranges, want)
	}
}

func TestRecvStateOutOfOrderInsertion(t *testing.T) {
	r := &recvState{}
	for _, pn := range []uint64{10, 2, 6} {
		r.record(pn, tRef)
	}
	want := []wire.AckRange{{Smallest: 10, Largest: 10}, {Smallest: 6, Largest: 6}, {Smallest: 2, Largest: 2}}
	if !reflect.DeepEqual(r.ranges, want) {
		t.Errorf("ranges = %v, want %v", r.ranges, want)
	}
	if r.largest != 10 {
		t.Errorf("largest = %d", r.largest)
	}
}

func TestRecvStateAckFrameDelay(t *testing.T) {
	r := &recvState{}
	r.record(7, tRef)
	ack := r.ackFrame(tRef.Add(5 * time.Millisecond))
	if ack == nil || ack.Largest() != 7 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.DelayMicros != 5000 {
		t.Errorf("delay = %d µs, want 5000", ack.DelayMicros)
	}
	if (&recvState{}).ackFrame(tRef) != nil {
		t.Error("empty recvState produced an ACK")
	}
}

func TestRecvStateTrim(t *testing.T) {
	r := &recvState{}
	// Every second packet → one range each.
	for pn := uint64(0); pn < uint64(maxAckRanges*4); pn += 2 {
		r.record(pn, tRef)
	}
	if len(r.ranges) > maxAckRanges {
		t.Errorf("ranges not trimmed: %d", len(r.ranges))
	}
	// The newest (largest) packets must be retained.
	if r.ranges[0].Largest != uint64(maxAckRanges*4-2) {
		t.Errorf("trim dropped newest range: %v", r.ranges[0])
	}
}

func TestSendStateHelpers(t *testing.T) {
	s := &sendState{}
	if s.largestAckedOrSentinel() != wire.NoAckedPacket {
		t.Error("sentinel missing before first ack")
	}
	p1 := &sentPacket{pn: 0, sentAt: tRef, ackEliciting: false}
	p2 := &sentPacket{pn: 1, sentAt: tRef.Add(time.Millisecond), ackEliciting: true}
	p3 := &sentPacket{pn: 2, sentAt: tRef.Add(2 * time.Millisecond), ackEliciting: true}
	s.inFlight = []*sentPacket{p1, p2, p3}
	if got := s.oldestUnacked(); got != p2 {
		t.Errorf("oldestUnacked = %+v, want p2", got)
	}
	p2.declared = true
	if got := s.oldestUnacked(); got != p3 {
		t.Errorf("oldestUnacked after declare = %+v, want p3", got)
	}
	s.compact()
	if len(s.inFlight) != 2 {
		t.Errorf("compact left %d packets", len(s.inFlight))
	}
}
