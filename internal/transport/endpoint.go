package transport

import (
	"fmt"
	"time"

	"quicspin/internal/wire"
)

// Endpoint is a server-side connection demultiplexer: it accepts datagrams
// from many peers over one logical socket and routes them to per-connection
// state by connection ID, creating connections for new Initials. Like Conn
// it is sans-IO and single-threaded.
type Endpoint struct {
	// NewConnConfig returns the Config for an accepted connection; it is
	// invoked once per connection so servers can roll per-connection spin
	// policy dice with distinct qlog writers. Must be non-nil.
	NewConnConfig func(peer string) Config
	// OnConn, when non-nil, observes every accepted connection.
	OnConn func(peer string, conn *Conn)

	// conns routes by the connection ID this server issued (short headers)
	// and by the client's original DCID (Initial/Handshake long headers).
	conns map[string]*entry
	order []*entry
}

type entry struct {
	peer string
	conn *Conn
}

// NewEndpoint returns an Endpoint that builds accepted connections with
// newConnConfig.
func NewEndpoint(newConnConfig func(peer string) Config) *Endpoint {
	return &Endpoint{NewConnConfig: newConnConfig, conns: make(map[string]*entry)}
}

// Receive routes one datagram from peer (an opaque address string).
func (e *Endpoint) Receive(now time.Time, peer string, datagram []byte) error {
	if len(datagram) == 0 {
		return nil
	}
	var ent *entry
	if wire.IsLongHeader(datagram[0]) {
		hdr, _, _, err := wire.ParseHeader(datagram, 0, wire.NoAckedPacket)
		if err != nil {
			return fmt.Errorf("endpoint: %w", err)
		}
		ent = e.conns[cidKey(hdr.DstConnID)]
		if ent == nil && hdr.Type == wire.TypeInitial {
			cfg := e.NewConnConfig(peer)
			conn := NewServerConn(cfg, hdr.DstConnID, hdr.SrcConnID, now)
			ent = &entry{peer: peer, conn: conn}
			// Route future long headers addressed to the ODCID and short
			// headers addressed to our issued SCID.
			e.conns[cidKey(hdr.DstConnID)] = ent
			e.conns[cidKey(conn.SCID())] = ent
			e.order = append(e.order, ent)
			if e.OnConn != nil {
				e.OnConn(peer, conn)
			}
		}
	} else {
		// Short header: destination CID is one we issued, of known length.
		cfg := e.connIDLenProbe()
		if len(datagram) < 1+cfg {
			return fmt.Errorf("endpoint: runt short-header datagram")
		}
		dcid := wire.NewConnectionID(datagram[1 : 1+cfg])
		ent = e.conns[cidKey(dcid)]
	}
	if ent == nil {
		return nil // stateless: drop unroutable packets
	}
	return ent.conn.Receive(now, datagram)
}

// connIDLenProbe returns the length of connection IDs this endpoint issues.
// All connections share the configured length.
func (e *Endpoint) connIDLenProbe() int {
	return e.NewConnConfig("").connIDLen()
}

// Outgoing is a datagram with its destination peer.
type Outgoing struct {
	Peer string
	Data []byte
}

// Poll collects pending datagrams from every connection.
func (e *Endpoint) Poll(now time.Time) []Outgoing {
	var out []Outgoing
	for _, ent := range e.order {
		for _, d := range ent.conn.Poll(now) {
			out = append(out, Outgoing{Peer: ent.peer, Data: d})
		}
	}
	return out
}

// Advance fires timers on every connection and drops closed ones.
func (e *Endpoint) Advance(now time.Time) {
	live := e.order[:0]
	for _, ent := range e.order {
		ent.conn.Advance(now)
		if ent.conn.Closed() {
			delete(e.conns, cidKey(ent.conn.ODCID()))
			delete(e.conns, cidKey(ent.conn.SCID()))
			continue
		}
		live = append(live, ent)
	}
	e.order = live
}

// NextTimeout returns the earliest timer deadline across connections.
func (e *Endpoint) NextTimeout() (time.Time, bool) {
	var t time.Time
	for _, ent := range e.order {
		if u, ok := ent.conn.NextTimeout(); ok && (t.IsZero() || u.Before(t)) {
			t = u
		}
	}
	return t, !t.IsZero()
}

// Conns returns the live connections in accept order.
func (e *Endpoint) Conns() []*Conn {
	out := make([]*Conn, len(e.order))
	for i, ent := range e.order {
		out[i] = ent.conn
	}
	return out
}

func cidKey(id wire.ConnectionID) string { return string(id.Bytes()) }
