package transport

import (
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/wire"
)

// The emulated engine's per-packet allocation budget: once a connection is
// established and the scratch pools are warm, receiving a 1-RTT packet and
// generating/consuming the resulting ACK must average at most one heap
// allocation per received packet. This is the gate behind the campaign-level
// allocs/op numbers in BENCH_PR5.json.

// ferry advances the handshake by exchanging every pending datagram.
func ferry(t *testing.T, client, server *Conn, now time.Time) time.Time {
	t.Helper()
	for i := 0; i < 100; i++ {
		now = now.Add(time.Millisecond)
		progress := false
		for _, dg := range client.Poll(now) {
			progress = true
			if err := server.Receive(now, dg); err != nil {
				t.Fatalf("server receive: %v", err)
			}
		}
		for _, dg := range server.Poll(now) {
			progress = true
			if err := client.Receive(now, dg); err != nil {
				t.Fatalf("client receive: %v", err)
			}
		}
		if client.HandshakeConfirmed() && server.HandshakeConfirmed() && !progress {
			return now
		}
	}
	t.Fatal("handshake did not converge")
	return now
}

func TestReceivePathAllocBudget(t *testing.T) {
	epoch := time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)
	clientCfg := Config{Rng: rand.New(rand.NewSource(7))}
	serverCfg := Config{Rng: rand.New(rand.NewSource(99))}
	client := NewClientConn(clientCfg, epoch)
	now := epoch
	var server *Conn
	// Bootstrap: the first client datagram carries the Initial the server
	// conn is constructed from.
	for _, dg := range client.Poll(now) {
		if server == nil {
			var hdr wire.Header
			if _, _, err := wire.ParseHeaderInto(&hdr, dg, 0, wire.NoAckedPacket); err != nil {
				t.Fatalf("parsing client initial: %v", err)
			}
			server = NewServerConn(serverCfg, hdr.DstConnID, hdr.SrcConnID, now)
		}
		if err := server.Receive(now, dg); err != nil {
			t.Fatalf("server receive: %v", err)
		}
	}
	if server == nil {
		t.Fatal("client produced no initial datagram")
	}
	now = ferry(t, client, server, now)

	// One steady-state round: the client sends a PING packet, the server
	// receives it, acks, and the client consumes the ack — 2 received
	// packets per round. encodeShort reuses sendBuf so the sender side
	// stays out of the measurement's way too.
	sendBuf := make([]byte, 0, 1500)
	pings := []wire.Frame{wire.PingFrame{}}
	round := func() {
		now = now.Add(5 * time.Millisecond)
		dg := client.encodeShort(sendBuf[:0], pings, true, now)
		if err := server.Receive(now, dg); err != nil {
			t.Fatalf("server receive: %v", err)
		}
		for _, out := range server.Poll(now) {
			if err := client.Receive(now, out); err != nil {
				t.Fatalf("client receive: %v", err)
			}
		}
	}
	for i := 0; i < 50; i++ { // warm pools and freelists
		round()
	}
	const packetsPerRound = 2
	n := testing.AllocsPerRun(500, round)
	if perPacket := n / packetsPerRound; perPacket > 1 {
		t.Errorf("receive path allocates %.2f per packet (%.2f per round), want <= 1", perPacket, n)
	}
}
