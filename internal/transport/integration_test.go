package transport_test

import (
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
)

var epoch = time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

// harness wires one client and one echo-style server over netem.
type harness struct {
	loop   *sim.Loop
	net    *netem.Network
	client *netem.ClientHost
	server *netem.ServerHost
}

// newHarness builds a client/server pair. serverPolicy configures the
// server's spin behaviour; onServe is invoked for completed request streams
// and returns the response body.
func newHarness(t *testing.T, path netem.PathConfig, clientCfg, serverCfg transport.Config) *harness {
	t.Helper()
	loop := sim.NewLoop(epoch)
	rng := rand.New(rand.NewSource(1234))
	net := netem.New(loop, path, rng)

	if serverCfg.Rng == nil {
		serverCfg.Rng = rand.New(rand.NewSource(99))
	}
	ep := transport.NewEndpoint(func(peer string) transport.Config { return serverCfg })
	server := netem.NewServerHost(net, "server", ep)
	answered := map[*transport.Conn]map[uint64]bool{}
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			if !conn.HandshakeComplete() {
				continue
			}
			if answered[conn] == nil {
				answered[conn] = map[uint64]bool{}
			}
			for _, id := range conn.RecvStreamIDs() {
				if answered[conn][id] {
					continue
				}
				if data, done := conn.StreamRecv(id); done {
					answered[conn][id] = true
					resp := append([]byte("ECHO:"), data...)
					if err := conn.SendStream(id, resp, true); err != nil {
						t.Errorf("server SendStream: %v", err)
					}
				}
			}
		}
	}

	if clientCfg.Rng == nil {
		clientCfg.Rng = rand.New(rand.NewSource(7))
	}
	conn := transport.NewClientConn(clientCfg, loop.Now())
	client := netem.NewClientHost(net, "client", "server", conn)
	return &harness{loop: loop, net: net, client: client, server: server}
}

// request runs one request/response exchange on the given stream and
// returns the response once complete, failing the test on timeout.
func (h *harness) request(t *testing.T, id uint64, body string, timeout time.Duration) []byte {
	t.Helper()
	conn := h.client.Conn()
	sent := false
	done := false
	var resp []byte
	h.client.OnActivity = func(c *transport.Conn, now time.Time) {
		if c.HandshakeComplete() && !sent {
			sent = true
			if err := c.SendStream(id, []byte(body), true); err != nil {
				t.Errorf("client SendStream: %v", err)
			}
		}
		if data, complete := c.StreamRecv(id); complete && !done {
			done = true
			resp = data
		}
	}
	// If the handshake is already complete (later requests), queue now.
	if conn.HandshakeComplete() {
		sent = true
		if err := conn.SendStream(id, []byte(body), true); err != nil {
			t.Fatalf("client SendStream: %v", err)
		}
	}
	h.client.Kick()
	deadline := h.loop.Now().Add(timeout)
	for !done && h.loop.Now().Before(deadline) {
		if !h.loop.Step() {
			break
		}
	}
	if !done {
		t.Fatalf("request on stream %d not answered within %v (virtual); stats=%+v, net=%v",
			id, timeout, conn.Stats(), h.net.Stats())
	}
	return resp
}

func TestHandshakeAndRequestResponse(t *testing.T) {
	path := netem.PathConfig{Delay: 50 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	resp := h.request(t, 0, "GET /index.html", 5*time.Second)
	if string(resp) != "ECHO:GET /index.html" {
		t.Errorf("response = %q", resp)
	}
	conn := h.client.Conn()
	if !conn.HandshakeConfirmed() {
		t.Error("client handshake not confirmed")
	}
	est := conn.RTT()
	if !est.HasSample() {
		t.Fatal("no RTT samples")
	}
	// Network RTT is 100 ms; the estimator must be close (ack delays are
	// subtracted, scheduling adds a little).
	if est.Smoothed() < 95*time.Millisecond || est.Smoothed() > 140*time.Millisecond {
		t.Errorf("smoothed RTT = %v, want ≈100ms", est.Smoothed())
	}
	if est.Min() < 95*time.Millisecond || est.Min() > 110*time.Millisecond {
		t.Errorf("min RTT = %v, want ≈100ms", est.Min())
	}
	if len(conn.Observations()) == 0 {
		t.Error("no spin observations on received 1-RTT packets")
	}
}

func TestLargeTransferUnderLoss(t *testing.T) {
	path := netem.PathConfig{Delay: 30 * time.Millisecond, LossRate: 0.08, Jitter: 5 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	body := make([]byte, 20000)
	for i := range body {
		body[i] = byte(i * 7)
	}
	resp := h.request(t, 0, string(body), 60*time.Second)
	want := "ECHO:" + string(body)
	if string(resp) != want {
		t.Fatalf("corrupted transfer: got %d bytes, want %d", len(resp), len(want))
	}
	if h.net.Stats().Dropped == 0 {
		t.Error("loss link dropped nothing; test is vacuous")
	}
}

func TestTransferUnderReordering(t *testing.T) {
	path := netem.PathConfig{Delay: 40 * time.Millisecond, ReorderRate: 0.2, ReorderExtra: 15 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	body := make([]byte, 8000)
	resp := h.request(t, 0, string(body), 60*time.Second)
	if len(resp) != len(body)+5 {
		t.Fatalf("got %d bytes, want %d", len(resp), len(body)+5)
	}
	if h.net.Stats().Reordered == 0 {
		t.Error("reordering link reordered nothing; test is vacuous")
	}
}

func TestMultipleRequestsSequential(t *testing.T) {
	path := netem.PathConfig{Delay: 20 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	for i := 0; i < 5; i++ {
		id := uint64(i * 4)
		resp := h.request(t, id, "req", 10*time.Second)
		if string(resp) != "ECHO:req" {
			t.Fatalf("request %d: response %q", i, resp)
		}
	}
	// Sequential exchanges keep 1-RTT packets flowing; the server spins by
	// default, so the client must observe flips.
	if !core.HasFlips(h.client.Conn().Observations()) {
		t.Error("no spin flips observed across five exchanges")
	}
}

func TestServerSpinPolicies(t *testing.T) {
	cases := []struct {
		name   string
		policy core.Policy
		check  func(t *testing.T, obs []core.Observation)
	}{
		{"zero", core.Policy{Mode: core.ModeZero}, func(t *testing.T, obs []core.Observation) {
			if core.ClassifySeries(obs) != core.KindAllZero {
				t.Errorf("classified %v, want All Zero", core.ClassifySeries(obs))
			}
		}},
		{"one", core.Policy{Mode: core.ModeOne}, func(t *testing.T, obs []core.Observation) {
			if core.ClassifySeries(obs) != core.KindAllOne {
				t.Errorf("classified %v, want All One", core.ClassifySeries(obs))
			}
		}},
		{"spin", core.Policy{Mode: core.ModeSpin}, func(t *testing.T, obs []core.Observation) {
			if !core.HasFlips(obs) {
				t.Error("spinning server produced no flips")
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := netem.PathConfig{Delay: 25 * time.Millisecond}
			h := newHarness(t, path, transport.Config{}, transport.Config{SpinPolicy: c.policy})
			for i := 0; i < 4; i++ {
				h.request(t, uint64(i*4), "x", 10*time.Second)
			}
			obs := h.client.Conn().Observations()
			if len(obs) < 4 {
				t.Fatalf("only %d observations", len(obs))
			}
			c.check(t, obs)
		})
	}
}

func TestSpinRTTMatchesPathRTT(t *testing.T) {
	// With continuous ping-pong traffic and no server processing delay,
	// the spin-bit RTT measured from the client's received packets should
	// approximate the true network RTT.
	path := netem.PathConfig{Delay: 50 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	for i := 0; i < 10; i++ {
		h.request(t, uint64(i*4), "ping", 10*time.Second)
	}
	rtts := core.SpinRTTs(h.client.Conn().Observations(), false)
	if len(rtts) == 0 {
		t.Fatal("no spin RTT samples")
	}
	var sum time.Duration
	for _, r := range rtts {
		sum += r
	}
	mean := sum / time.Duration(len(rtts))
	// Request pacing adds delay between edges; expect ≥ network RTT and
	// within a small multiple.
	if mean < 100*time.Millisecond || mean > 400*time.Millisecond {
		t.Errorf("mean spin RTT = %v, want within [100ms, 400ms]", mean)
	}
}

func TestUnresponsiveServerTimesOut(t *testing.T) {
	loop := sim.NewLoop(epoch)
	rng := rand.New(rand.NewSource(5))
	net := netem.New(loop, netem.PathConfig{Delay: 10 * time.Millisecond}, rng)
	net.Blackhole("server", true)
	conn := transport.NewClientConn(transport.Config{Rng: rng, IdleTimeout: 4 * time.Second}, loop.Now())
	client := netem.NewClientHost(net, "client", "server", conn)
	client.Kick()
	loop.RunUntil(epoch.Add(2 * time.Minute))
	if !conn.Closed() {
		t.Fatal("connection to blackholed server never closed")
	}
	if conn.TermError() == nil {
		t.Error("closed without terminal error")
	}
	if conn.Stats().PTOCount == 0 {
		t.Error("no PTO fired against unresponsive server")
	}
}

func TestClientCloseDrainsServer(t *testing.T) {
	path := netem.PathConfig{Delay: 10 * time.Millisecond}
	h := newHarness(t, path, transport.Config{}, transport.Config{})
	h.request(t, 0, "bye", 5*time.Second)
	serverConns := h.server.Endpoint().Conns()
	if len(serverConns) != 1 {
		t.Fatalf("server conns = %d", len(serverConns))
	}
	sc := serverConns[0]
	h.client.Conn().Close(h.loop.Now(), 0, "done")
	h.client.Kick()
	h.loop.RunUntil(h.loop.Now().Add(time.Minute))
	if !h.client.Conn().Closed() {
		t.Error("client conn not closed")
	}
	if !sc.Terminating() {
		t.Error("server conn did not enter draining on CONNECTION_CLOSE")
	}
	terr, ok := sc.TermError().(*transport.TransportError)
	if !ok || !terr.Remote || terr.Reason != "done" {
		t.Errorf("server term error = %v", sc.TermError())
	}
}

func TestEndpointServesMultipleClients(t *testing.T) {
	loop := sim.NewLoop(epoch)
	rng := rand.New(rand.NewSource(21))
	net := netem.New(loop, netem.PathConfig{Delay: 15 * time.Millisecond}, rng)
	serverRng := rand.New(rand.NewSource(500))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: serverRng}
	})
	server := netem.NewServerHost(net, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			if data, done := conn.StreamRecv(0); done {
				if resp, _ := conn.StreamRecv(0); len(resp) > 0 { // already have it
					_ = resp
				}
				if err := conn.SendStream(0, append([]byte("ok:"), data...), true); err != nil {
					// Stream may already carry the response; ignore
					// double-send errors from repeated activity callbacks.
					_ = err
				}
			}
		}
	}
	const n = 8
	clients := make([]*netem.ClientHost, n)
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		conn := transport.NewClientConn(transport.Config{Rng: rand.New(rand.NewSource(int64(i + 1)))}, loop.Now())
		addr := string(rune('a' + i))
		clients[i] = netem.NewClientHost(net, addr, "server", conn)
		sent := false
		clients[i].OnActivity = func(c *transport.Conn, now time.Time) {
			if c.HandshakeComplete() && !sent {
				sent = true
				_ = c.SendStream(0, []byte{byte(i)}, true)
			}
			if _, complete := c.StreamRecv(0); complete {
				done[i] = true
			}
		}
		clients[i].Kick()
	}
	loop.RunUntil(epoch.Add(30 * time.Second))
	for i, d := range done {
		if !d {
			t.Errorf("client %d never got a response", i)
		}
	}
}

func TestVECTransport(t *testing.T) {
	path := netem.PathConfig{Delay: 25 * time.Millisecond}
	h := newHarness(t, path,
		transport.Config{EnableVEC: true},
		transport.Config{EnableVEC: true})
	for i := 0; i < 6; i++ {
		h.request(t, uint64(i*4), "v", 10*time.Second)
	}
	sawValid := false
	for _, ob := range h.client.Conn().Observations() {
		if ob.VEC == core.VECFullyValid {
			sawValid = true
		}
	}
	if !sawValid {
		t.Error("no fully-valid VEC edges observed")
	}
}

func TestQuickConnectionsUnderRandomConditions(t *testing.T) {
	// Mini soak: random path conditions must never wedge the event loop or
	// corrupt data; either the request completes or the connection times
	// out cleanly.
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		path := netem.PathConfig{
			Delay:       time.Duration(5+rng.Intn(150)) * time.Millisecond,
			Jitter:      time.Duration(rng.Intn(20)) * time.Millisecond,
			LossRate:    rng.Float64() * 0.15,
			ReorderRate: rng.Float64() * 0.2,
		}
		h := newHarness(t, path, transport.Config{}, transport.Config{})
		body := make([]byte, rng.Intn(5000))
		resp := h.request(t, 0, string(body), 2*time.Minute)
		if len(resp) != len(body)+5 {
			t.Errorf("seed %d: got %d bytes, want %d", seed, len(resp), len(body)+5)
		}
	}
}
