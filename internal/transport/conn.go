package transport

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/qlog"
	"quicspin/internal/rtt"
	"quicspin/internal/wire"
)

// Mock handshake transcript messages (see the package comment for the
// substitution rationale). Sizes roughly mimic a TLS 1.3 exchange so that
// handshake packets have realistic weight.
var (
	msgClientHello    = append([]byte("quicspin:CHLO:"), make([]byte, 300)...)
	msgServerHello    = append([]byte("quicspin:SHLO:"), make([]byte, 120)...)
	msgServerFinished = append([]byte("quicspin:SFIN:"), make([]byte, 700)...)
	msgClientFinished = append([]byte("quicspin:CFIN:"), make([]byte, 50)...)
)

// connState is the connection lifecycle state.
type connState int

const (
	stateHandshaking connState = iota
	stateActive
	stateClosing  // we sent CONNECTION_CLOSE
	stateDraining // peer sent CONNECTION_CLOSE
	stateClosed
)

// ErrConnectionClosed is returned by operations on a terminated connection.
var ErrConnectionClosed = errors.New("transport: connection closed")

// maxStreamOffset bounds the stream and crypto offsets a peer may declare.
// RFC 9000 allows offsets up to 2^62−1, but accepting them would let a
// hostile peer make the reassembly buffers track absurd ranges; nothing an
// honest peer of this scanner sends comes near 1 GiB.
const maxStreamOffset = 1 << 30

// TransportError mirrors a received CONNECTION_CLOSE.
type TransportError struct {
	Code   uint64
	Reason string
	Remote bool
}

// Error implements error.
func (e *TransportError) Error() string {
	side := "local"
	if e.Remote {
		side = "remote"
	}
	return fmt.Sprintf("transport: %s close code=%#x reason=%q", side, e.Code, e.Reason)
}

// Stats counts per-connection packet activity.
type Stats struct {
	PacketsSent     int
	PacketsReceived int
	ShortSent       int
	ShortReceived   int
	DatagramsSent   int
	BytesSent       int
	BytesReceived   int
	PacketsLost     int
	PTOCount        int
}

// Conn is one QUIC-lite connection endpoint. It is sans-IO and
// single-threaded: the caller serialises Receive/Poll/Advance calls and
// moves datagrams between peers. All methods take the current time
// explicitly so connections run equally under virtual and real clocks.
type Conn struct {
	cfg      Config
	isClient bool
	state    connState

	odcid   wire.ConnectionID // client-chosen original destination CID
	scid    wire.ConnectionID // our source CID (we route on this)
	dstCID  wire.ConnectionID // peer's CID we address packets to
	gotPeer bool              // learned the peer SCID

	send [numSpaces]sendState
	recv [numSpaces]recvState
	// retransmit holds frames from lost packets awaiting resend.
	retransmit  [numSpaces][]wire.Frame
	spaceActive [numSpaces]bool
	probePing   [numSpaces]bool

	cryptoSend [numSpaces]sendStream
	cryptoRecv [numSpaces]recvStream

	streamsSend map[uint64]*sendStream
	streamsRecv map[uint64]*recvStream

	handshakeComplete   bool
	handshakeConfirmed  bool
	handshakeDoneQueued bool
	sentCFIN            bool

	spin *core.Controller
	vec  core.VECState
	obs  []core.Observation

	estimator *rtt.Estimator

	lossTime      [numSpaces]time.Time
	ptoDeadline   time.Time
	ptoBackoff    int
	idleDeadline  time.Time
	drainDeadline time.Time

	closeFrame *wire.ConnectionCloseFrame
	closeSent  bool
	termErr    error

	// Resource-budget accounting (see Budget). budgetTripped latches the
	// first exceeded budget: the terminal error survives later closes and
	// all further received traffic is refused at the door.
	budgetTripped      bool
	malformedDatagrams int
	malformedFrames    int
	firstRecv          time.Time

	// Hot-path scratch. A campaign-scale scan pushes millions of packets
	// through Receive/Poll; everything per-packet that is not retained
	// (headers, parsed frames, packet payloads, datagram buffers) is
	// recycled on the connection instead of allocated per call.
	hdrScratch     wire.Header     // receive-side header decode
	arena          wire.FrameArena // receive-side frame decode
	sendHdr        wire.Header     // send-side header encode
	ackScratch     wire.AckFrame   // outgoing ACK frame (never retransmitted)
	payloadScratch []byte          // packet payload assembly
	framesScratch  []wire.Frame    // framesFor result list
	idsScratch     []uint64        // sorted stream IDs in framesFor
	dgramBufs      [][]byte        // datagram buffers, rotated per Poll
	dgramUsed      int
	pollOut        [][]byte // Poll result list

	stats Stats
}

// NewClientConn creates the client side of a connection and queues the
// first flight. now seeds the idle timer.
func NewClientConn(cfg Config, now time.Time) *Conn {
	c := newConn(cfg, true)
	c.odcid = randomCID(cfg, cfg.connIDLen())
	c.dstCID = c.odcid
	c.scid = randomCID(cfg, cfg.connIDLen())
	c.cryptoSend[spaceInitial].data = append([]byte(nil), msgClientHello...)
	c.cryptoSend[spaceInitial].finSet = false
	c.idleDeadline = now.Add(cfg.idleTimeout())
	return c
}

// NewServerConn creates the server side for a connection whose first
// Initial packet carried the given client DCID (odcid) and SCID.
func NewServerConn(cfg Config, odcid, clientSCID wire.ConnectionID, now time.Time) *Conn {
	c := newConn(cfg, false)
	c.odcid = odcid
	c.scid = randomCID(cfg, cfg.connIDLen())
	c.dstCID = clientSCID
	c.gotPeer = true
	c.idleDeadline = now.Add(cfg.idleTimeout())
	return c
}

func newConn(cfg Config, isClient bool) *Conn {
	if cfg.Rng == nil {
		panic("transport: Config.Rng is required")
	}
	c := &Conn{
		cfg:         cfg,
		isClient:    isClient,
		estimator:   rtt.New(cfg.maxAckDelay()),
		streamsSend: make(map[uint64]*sendStream),
		streamsRecv: make(map[uint64]*recvStream),
		spin:        core.NewController(isClient, cfg.SpinPolicy, cfg.Rng),
	}
	c.spaceActive[spaceInitial] = true
	c.spaceActive[spaceHandshake] = true
	c.spaceActive[spaceAppData] = true
	return c
}

func randomCID(cfg Config, n int) wire.ConnectionID {
	b := make([]byte, n)
	cfg.Rng.Read(b)
	return wire.NewConnectionID(b)
}

// IsClient reports whether this is the connection initiator.
func (c *Conn) IsClient() bool { return c.isClient }

// ODCID returns the original destination connection ID identifying the
// connection attempt (used for qlog and demultiplexing).
func (c *Conn) ODCID() wire.ConnectionID { return c.odcid }

// SCID returns the connection ID this endpoint issued; incoming
// short-header packets address it.
func (c *Conn) SCID() wire.ConnectionID { return c.scid }

// HandshakeComplete reports whether 1-RTT data can flow.
func (c *Conn) HandshakeComplete() bool { return c.handshakeComplete }

// HandshakeConfirmed reports RFC 9001 §4.1.2 confirmation.
func (c *Conn) HandshakeConfirmed() bool { return c.handshakeConfirmed }

// Closed reports whether the connection has fully terminated.
func (c *Conn) Closed() bool { return c.state == stateClosed }

// Terminating reports whether the connection is closing, draining or closed.
func (c *Conn) Terminating() bool { return c.state >= stateClosing }

// TermError returns the terminal error (nil for a clean local close or a
// still-open connection).
func (c *Conn) TermError() error { return c.termErr }

// RTT exposes the RFC 9002 estimator (the paper's baseline measurements).
func (c *Conn) RTT() *rtt.Estimator { return c.estimator }

// SpinController exposes the spin-bit controller for inspection.
func (c *Conn) SpinController() *core.Controller { return c.spin }

// Observations returns the spin-bit observation series of received 1-RTT
// packets in arrival order (the client-side vantage point of the paper).
// The slice aliases internal state and must not be modified.
func (c *Conn) Observations() []core.Observation { return c.obs }

// Stats returns packet counters.
func (c *Conn) Stats() Stats { return c.stats }

// SendStream queues application data on a stream. Stream IDs follow RFC
// 9000 conventions (client-initiated bidirectional streams are 0, 4, 8, …)
// but the transport does not enforce them.
func (c *Conn) SendStream(id uint64, data []byte, fin bool) error {
	if c.state >= stateClosing {
		return ErrConnectionClosed
	}
	s := c.streamsSend[id]
	if s == nil {
		s = &sendStream{}
		c.streamsSend[id] = s
	}
	if s.finSet {
		return fmt.Errorf("transport: write after FIN on stream %d", id)
	}
	s.data = append(s.data, data...)
	s.finSet = fin
	return nil
}

// StreamRecv returns the reassembled contiguous data of a stream and
// whether the stream is complete (FIN received and all bytes present).
func (c *Conn) StreamRecv(id uint64) ([]byte, bool) {
	r := c.streamsRecv[id]
	if r == nil {
		return nil, false
	}
	return r.delivered, r.complete()
}

// RecvStreamIDs returns the IDs of streams with received data, sorted.
func (c *Conn) RecvStreamIDs() []uint64 {
	ids := make([]uint64, 0, len(c.streamsRecv))
	for id := range c.streamsRecv {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Close initiates a local close with an application error code.
func (c *Conn) Close(now time.Time, code uint64, reason string) {
	if c.state >= stateClosing {
		return
	}
	c.state = stateClosing
	c.closeFrame = &wire.ConnectionCloseFrame{ErrorCode: code, Reason: reason}
	c.drainDeadline = now.Add(3 * c.estimator.PTO(true))
}

// --- receiving ---------------------------------------------------------

// Receive processes one incoming UDP datagram.
func (c *Conn) Receive(now time.Time, datagram []byte) error {
	if c.state == stateClosed {
		return ErrConnectionClosed
	}
	if c.budgetTripped {
		return c.termErr
	}
	b := c.cfg.Budget
	c.stats.BytesReceived += len(datagram)
	if b.MaxRecvBytes > 0 && c.stats.BytesReceived > b.MaxRecvBytes {
		return c.tripBudget(now, BudgetRecvBytes, int64(b.MaxRecvBytes))
	}
	if b.MaxLifetime > 0 {
		if c.firstRecv.IsZero() {
			c.firstRecv = now
		} else if now.Sub(c.firstRecv) > b.MaxLifetime {
			return c.tripBudget(now, BudgetLifetime, int64(b.MaxLifetime))
		}
	}
	c.idleDeadline = now.Add(c.cfg.idleTimeout())
	rest := datagram
	for len(rest) > 0 {
		var largest uint64 = wire.NoAckedPacket
		if !wire.IsLongHeader(rest[0]) {
			if c.recv[spaceAppData].hasReceived {
				largest = c.recv[spaceAppData].largest
			}
		}
		hdr := &c.hdrScratch
		payload, consumed, err := wire.ParseHeaderInto(hdr, rest, c.scid.Len(), largest)
		if err != nil {
			c.malformedDatagrams++
			if b.MaxMalformed > 0 && c.malformedDatagrams > b.MaxMalformed {
				return c.tripBudget(now, BudgetMalformedDatagram, int64(b.MaxMalformed))
			}
			return fmt.Errorf("transport: parsing packet: %w", err)
		}
		rest = rest[consumed:]
		if err := c.handlePacket(now, hdr, payload); err != nil {
			return err
		}
		if c.budgetTripped {
			return c.termErr
		}
	}
	return nil
}

func spaceOf(h *wire.Header) (spaceID, bool) {
	if !h.IsLong {
		return spaceAppData, true
	}
	switch h.Type {
	case wire.TypeInitial:
		return spaceInitial, true
	case wire.TypeHandshake:
		return spaceHandshake, true
	default:
		return 0, false
	}
}

func (c *Conn) handlePacket(now time.Time, hdr *wire.Header, payload []byte) error {
	sp, ok := spaceOf(hdr)
	if !ok || !c.spaceActive[sp] {
		return nil // e.g. late Initial after key discard: ignore
	}
	if sp == spaceAppData && !c.handshakeComplete {
		// 1-RTT before handshake completion: buffer-free simplification —
		// drop; the peer retransmits.
		return nil
	}
	frames, err := c.arena.Parse(payload)
	if err != nil {
		c.malformedFrames++
		if b := c.cfg.Budget; b.MaxMalformed > 0 && c.malformedFrames > b.MaxMalformed {
			return c.tripBudget(now, BudgetMalformedFrame, int64(b.MaxMalformed))
		}
		return fmt.Errorf("transport: %s packet %d: %w", sp, hdr.PacketNumber, err)
	}
	c.stats.PacketsReceived++
	if b := c.cfg.Budget; b.MaxRecvPackets > 0 && c.stats.PacketsReceived > b.MaxRecvPackets {
		return c.tripBudget(now, BudgetRecvPackets, int64(b.MaxRecvPackets))
	}

	if hdr.IsLong && c.isClient && !c.gotPeer {
		// Learn the server's chosen SCID from its first packet.
		c.dstCID = hdr.SrcConnID
		c.gotPeer = true
	}

	rs := &c.recv[sp]
	isLargest := !rs.hasReceived || hdr.PacketNumber > rs.largest
	isNew := rs.record(hdr.PacketNumber, now)

	if !hdr.IsLong {
		c.stats.ShortReceived++
		ob := core.Observation{T: now, PN: hdr.PacketNumber, Spin: hdr.SpinBit, VEC: hdr.Reserved}
		c.obs = append(c.obs, ob)
		if isLargest {
			c.spin.OnReceive(hdr.PacketNumber, hdr.SpinBit)
			if c.cfg.EnableVEC {
				c.vec.OnReceive(hdr.SpinBit, hdr.Reserved)
			}
		}
	}
	c.qlogPacket(qlog.EventPacketReceived, now, hdr, len(payload))

	if !isNew {
		return nil // duplicate: already acknowledged
	}

	elicits := false
	for _, f := range frames {
		if f.AckEliciting() {
			elicits = true
		}
		if err := c.handleFrame(now, sp, f); err != nil {
			return err
		}
	}
	if elicits {
		rs.unackedElicits++
		if sp != spaceAppData || rs.unackedElicits >= c.cfg.ackEveryN() {
			rs.ackQueued = true
		} else if rs.ackDeadline.IsZero() {
			rs.ackDeadline = now.Add(c.cfg.maxAckDelay())
		}
	}
	return nil
}

func (c *Conn) handleFrame(now time.Time, sp spaceID, f wire.Frame) error {
	switch fr := f.(type) {
	case wire.PaddingFrame, *wire.PaddingFrame, wire.PingFrame:
		return nil
	case *wire.AckFrame:
		c.handleAck(now, sp, fr)
		return nil
	case *wire.CryptoFrame:
		if fr.Offset > maxStreamOffset {
			return fmt.Errorf("transport: CRYPTO offset %d exceeds limit", fr.Offset)
		}
		c.cryptoRecv[sp].push(fr.Offset, fr.Data, false)
		c.advanceHandshake(now)
		return nil
	case *wire.StreamFrame:
		if fr.Offset > maxStreamOffset {
			return fmt.Errorf("transport: STREAM %d offset %d exceeds limit", fr.StreamID, fr.Offset)
		}
		r := c.streamsRecv[fr.StreamID]
		if r == nil {
			r = &recvStream{}
			c.streamsRecv[fr.StreamID] = r
		}
		r.push(fr.Offset, fr.Data, fr.Fin)
		return nil
	case wire.HandshakeDoneFrame:
		if c.isClient {
			c.confirmHandshake()
		}
		return nil
	case *wire.NewTokenFrame:
		return nil
	case *wire.ConnectionCloseFrame:
		if c.state < stateDraining {
			c.state = stateDraining
			c.termErr = &TransportError{Code: fr.ErrorCode, Reason: fr.Reason, Remote: true}
			c.drainDeadline = now.Add(3 * c.estimator.PTO(true))
		}
		return nil
	default:
		return fmt.Errorf("transport: unhandled frame %T", f)
	}
}

func (c *Conn) handleAck(now time.Time, sp spaceID, ack *wire.AckFrame) {
	ss := &c.send[sp]
	var newlyAckedLargest *sentPacket
	for _, p := range ss.inFlight {
		if p.declared || !ack.Acks(p.pn) {
			continue
		}
		p.declared = true
		if newlyAckedLargest == nil || p.pn > newlyAckedLargest.pn {
			newlyAckedLargest = p
		}
	}
	if newlyAckedLargest == nil {
		return
	}
	if !ss.hasAcked || ack.Largest() > ss.largestAcked {
		ss.largestAcked = ack.Largest()
		ss.hasAcked = true
	}
	if newlyAckedLargest.ackEliciting && newlyAckedLargest.pn == ack.Largest() {
		latest := now.Sub(newlyAckedLargest.sentAt)
		ackDelay := time.Duration(ack.DelayMicros) * time.Microsecond
		if sp != spaceAppData {
			ackDelay = 0
		}
		c.estimator.Update(latest, ackDelay, c.handshakeConfirmed)
		c.qlogMetrics(now)
	}
	c.detectLosses(now, sp)
	ss.compact()
	c.ptoBackoff = 0
	c.armPTO(now)
}

func (c *Conn) detectLosses(now time.Time, sp spaceID) {
	ss := &c.send[sp]
	if !ss.hasAcked {
		return
	}
	lossDelay := c.lossDelay()
	c.lossTime[sp] = time.Time{}
	for _, p := range ss.inFlight {
		if p.declared || p.pn > ss.largestAcked {
			continue
		}
		lostByReorder := ss.largestAcked >= p.pn+packetThreshold
		lostByTime := !p.sentAt.After(now.Add(-lossDelay))
		if lostByReorder || lostByTime {
			p.declared = true
			c.stats.PacketsLost++
			c.requeue(sp, p)
			continue
		}
		// Not yet lost: arm the loss timer for when it would be.
		t := p.sentAt.Add(lossDelay)
		if c.lossTime[sp].IsZero() || t.Before(c.lossTime[sp]) {
			c.lossTime[sp] = t
		}
	}
}

func (c *Conn) lossDelay() time.Duration {
	d := c.estimator.Latest()
	if s := c.estimator.Smoothed(); s > d {
		d = s
	}
	d = d * 9 / 8
	if d < rtt.Granularity {
		d = rtt.Granularity
	}
	return d
}

// requeue schedules a lost packet's retransmittable frames for resend.
func (c *Conn) requeue(sp spaceID, p *sentPacket) {
	c.retransmit[sp] = append(c.retransmit[sp], p.frames...)
}

// --- handshake ---------------------------------------------------------

func (c *Conn) advanceHandshake(now time.Time) {
	if c.isClient {
		if hasMsg(&c.cryptoRecv[spaceInitial], msgServerHello) &&
			hasMsg(&c.cryptoRecv[spaceHandshake], msgServerFinished) && !c.sentCFIN {
			c.cryptoSend[spaceHandshake].data = append([]byte(nil), msgClientFinished...)
			c.sentCFIN = true
			c.handshakeComplete = true
			// Initial keys are discarded once handshake keys are in use.
			c.dropSpace(spaceInitial)
		}
		return
	}
	// Server.
	if hasMsg(&c.cryptoRecv[spaceInitial], msgClientHello) && len(c.cryptoSend[spaceInitial].data) == 0 && !c.handshakeComplete {
		if c.cryptoSend[spaceInitial].next == 0 {
			c.cryptoSend[spaceInitial].data = append([]byte(nil), msgServerHello...)
			c.cryptoSend[spaceHandshake].data = append([]byte(nil), msgServerFinished...)
		}
	}
	if hasMsg(&c.cryptoRecv[spaceHandshake], msgClientFinished) && !c.handshakeComplete {
		c.handshakeComplete = true
		c.confirmHandshake()
		c.handshakeDoneQueued = true
		c.dropSpace(spaceInitial)
		c.dropSpace(spaceHandshake)
	}
}

func (c *Conn) confirmHandshake() {
	if c.handshakeConfirmed {
		return
	}
	c.handshakeConfirmed = true
	if c.isClient {
		c.dropSpace(spaceHandshake)
	}
	if c.state == stateHandshaking {
		c.state = stateActive
	}
}

func (c *Conn) dropSpace(sp spaceID) {
	c.spaceActive[sp] = false
	c.retransmit[sp] = nil
	c.send[sp].inFlight = nil
	c.recv[sp].ackQueued = false
	c.lossTime[sp] = time.Time{}
}

func hasMsg(r *recvStream, msg []byte) bool {
	return len(r.delivered) >= len(msg)
}

// --- sending -----------------------------------------------------------

// Poll returns all datagrams ready to send at time now. Call it after every
// Receive/Advance and whenever application data was queued.
//
// The returned slice and the datagram buffers it holds are reused by the
// next Poll call on this connection: consume (send or copy) them before
// polling again.
func (c *Conn) Poll(now time.Time) [][]byte {
	if c.state == stateClosed || c.state == stateDraining {
		return nil
	}
	if c.state == stateClosing {
		if c.closeSent {
			return nil
		}
		c.closeSent = true
		return [][]byte{c.buildCloseDatagram(now)}
	}
	out := c.pollOut[:0]
	c.dgramUsed = 0
	for len(out) < 64 {
		d := c.buildDatagram(now)
		if d == nil {
			break
		}
		c.stats.DatagramsSent++
		c.stats.BytesSent += len(d)
		out = append(out, d)
		c.idleDeadline = now.Add(c.cfg.idleTimeout())
	}
	c.pollOut = out
	return out
}

func (c *Conn) buildCloseDatagram(now time.Time) []byte {
	sp := spaceAppData
	var payload []byte
	payload = c.closeFrame.Append(payload)
	ss := &c.send[sp]
	hdr := &wire.Header{DstConnID: c.dstCID, PacketNumber: ss.nextPN}
	if c.handshakeComplete {
		hdr.SpinBit = c.spin.Next()
	}
	buf, err := wire.AppendShortHeader(nil, hdr, payload, ss.largestAckedOrSentinel())
	if err != nil {
		panic(err)
	}
	ss.nextPN++
	c.stats.PacketsSent++
	return buf
}

func (c *Conn) buildDatagram(now time.Time) []byte {
	// Datagram buffers rotate through a per-connection pool: the slot is
	// claimed only if the datagram turns out non-empty, and the (possibly
	// grown) buffer is stored back for the next Poll cycle.
	idx := c.dgramUsed
	var buf []byte
	if idx < len(c.dgramBufs) {
		buf = c.dgramBufs[idx][:0]
	}
	budget := MaxDatagramSize

	for _, sp := range [...]spaceID{spaceInitial, spaceHandshake} {
		if !c.spaceActive[sp] {
			continue
		}
		frames, elicits := c.framesFor(sp, now, budget-64)
		if len(frames) == 0 {
			continue
		}
		padTo := 0
		if sp == spaceInitial && c.isClient {
			// RFC 9000 §14.1: client datagrams containing Initial packets
			// must be at least 1200 bytes. Pad the Initial packet itself.
			padTo = MinInitialSize - len(buf)
		}
		start := len(buf)
		buf = c.encodeLong(buf, sp, frames, elicits, now, padTo)
		budget -= len(buf) - start
	}

	if c.spaceActive[spaceAppData] && c.canSendAppData() {
		frames, elicits := c.framesFor(spaceAppData, now, budget-40)
		if len(frames) > 0 {
			buf = c.encodeShort(buf, frames, elicits, now)
		}
	}

	if len(buf) == 0 {
		return nil
	}
	c.dgramUsed = idx + 1
	if idx < len(c.dgramBufs) {
		c.dgramBufs[idx] = buf
	} else {
		c.dgramBufs = append(c.dgramBufs, buf)
	}
	return buf
}

// canSendAppData keeps the server from speaking 1-RTT before confirmation.
func (c *Conn) canSendAppData() bool {
	if c.isClient {
		return c.handshakeComplete
	}
	return c.handshakeConfirmed
}

// framesFor assembles the next packet's frames for a space. It consumes
// send state, so callers must transmit what it returns.
func (c *Conn) framesFor(sp spaceID, now time.Time, budget int) ([]wire.Frame, bool) {
	if budget < 48 {
		return nil, false
	}
	// frames is scratch reused across packets: encode and recordSent consume
	// it before the next framesFor call, and recordSent copies out the
	// retransmittable (retained) frames.
	frames := c.framesScratch[:0]
	used := 0
	elicits := false

	rs := &c.recv[sp]
	wantAck := rs.ackQueued && len(rs.ranges) > 0

	// Retransmissions first.
	for len(c.retransmit[sp]) > 0 && used < budget-48 {
		f := c.retransmit[sp][0]
		c.retransmit[sp] = c.retransmit[sp][1:]
		frames = append(frames, f)
		used += frameSize(f)
		elicits = elicits || f.AckEliciting()
	}

	// Crypto data.
	for used < budget-48 {
		chunk, off, _, ok := c.cryptoSend[sp].pending(budget - 48 - used)
		if !ok || len(chunk) == 0 {
			break
		}
		f := &wire.CryptoFrame{Offset: off, Data: chunk}
		frames = append(frames, f)
		used += frameSize(f)
		elicits = true
	}

	if sp == spaceAppData && c.inFlightElicits() < c.cfg.maxInFlight() {
		if c.handshakeDoneQueued {
			c.handshakeDoneQueued = false
			frames = append(frames, wire.HandshakeDoneFrame{})
			used++
			elicits = true
		}
		// Stream data in stream-ID order for determinism.
		ids := c.idsScratch[:0]
		for id := range c.streamsSend {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		c.idsScratch = ids
		for _, id := range ids {
			for used < budget-64 {
				chunk, off, fin, ok := c.streamsSend[id].pending(budget - 64 - used)
				if !ok {
					break
				}
				f := &wire.StreamFrame{StreamID: id, Offset: off, Data: chunk, Fin: fin}
				frames = append(frames, f)
				used += frameSize(f)
				elicits = true
			}
		}
	}

	if c.probePing[sp] {
		c.probePing[sp] = false
		frames = append(frames, wire.PingFrame{})
		used++
		elicits = true
	}

	if len(frames) == 0 && !wantAck {
		c.framesScratch = frames
		return nil, false
	}
	if len(rs.ranges) > 0 && (wantAck || elicits) {
		// The outgoing ACK is never retransmitted (recordSent skips it), so
		// one scratch frame per connection suffices; shift-prepend it.
		rs.ackFrameInto(&c.ackScratch, now)
		frames = append(frames, nil)
		copy(frames[1:], frames)
		frames[0] = &c.ackScratch
		rs.ackQueued = false
		rs.ackDeadline = time.Time{}
		rs.unackedElicits = 0
	}
	c.framesScratch = frames
	return frames, elicits
}

// inFlightElicits counts unacknowledged ack-eliciting 1-RTT packets.
func (c *Conn) inFlightElicits() int {
	n := 0
	for _, p := range c.send[spaceAppData].inFlight {
		if !p.declared && p.ackEliciting {
			n++
		}
	}
	return n
}

func frameSize(f wire.Frame) int {
	switch fr := f.(type) {
	case *wire.CryptoFrame:
		return len(fr.Data) + 1 + 2*8
	case *wire.StreamFrame:
		return len(fr.Data) + 1 + 3*8
	case *wire.AckFrame:
		return 1 + 4*8 + len(fr.Ranges)*16
	case wire.PaddingFrame:
		return fr.N
	default:
		return 8
	}
}

// encodeLong appends one long-header packet to buf and returns the extended
// buffer.
func (c *Conn) encodeLong(buf []byte, sp spaceID, frames []wire.Frame, elicits bool, now time.Time, padTo int) []byte {
	ss := &c.send[sp]
	typ := byte(wire.TypeInitial)
	if sp == spaceHandshake {
		typ = wire.TypeHandshake
	}
	hdr := &c.sendHdr
	*hdr = wire.Header{
		IsLong:       true,
		Type:         typ,
		Version:      wire.Version1,
		DstConnID:    c.dstCID,
		SrcConnID:    c.scid,
		PacketNumber: ss.nextPN,
	}
	payload := c.payloadScratch[:0]
	for _, f := range frames {
		payload = f.Append(payload)
	}
	if padTo > 0 {
		// Exact header size: first byte, version, both length-prefixed
		// connection IDs, the (empty) token length for Initials, the
		// payload-length varint, and the packet number.
		pnl := wire.PacketNumberLen(hdr.PacketNumber, ss.largestAckedOrSentinel())
		hdrSize := 1 + 4 + 1 + c.dstCID.Len() + 1 + c.scid.Len() + pnl
		if typ == wire.TypeInitial {
			hdrSize++ // zero-length token
		}
		// Iterate: padding changes the length varint's own size.
		for i := 0; i < 3; i++ {
			total := hdrSize + wire.VarintLen(uint64(pnl+len(payload))) + len(payload)
			if total >= padTo {
				break
			}
			payload = wire.PaddingFrame{N: padTo - total}.Append(payload)
		}
	}
	start := len(buf)
	buf, err := wire.AppendLongHeader(buf, hdr, payload, ss.largestAckedOrSentinel())
	if err != nil {
		panic(err) // our own headers are always valid
	}
	c.payloadScratch = payload
	c.recordSent(sp, ss, hdr, frames, elicits, now, len(buf)-start)
	return buf
}

// encodeShort appends one short-header packet to buf and returns the
// extended buffer.
func (c *Conn) encodeShort(buf []byte, frames []wire.Frame, elicits bool, now time.Time) []byte {
	ss := &c.send[spaceAppData]
	hdr := &c.sendHdr
	*hdr = wire.Header{
		DstConnID:    c.dstCID,
		PacketNumber: ss.nextPN,
		SpinBit:      c.spin.Next(),
	}
	if c.cfg.EnableVEC && c.spin.Spinning() {
		hdr.Reserved = c.vec.Next(hdr.SpinBit)
	}
	payload := c.payloadScratch[:0]
	for _, f := range frames {
		payload = f.Append(payload)
	}
	start := len(buf)
	buf, err := wire.AppendShortHeader(buf, hdr, payload, ss.largestAckedOrSentinel())
	if err != nil {
		panic(err)
	}
	c.payloadScratch = payload
	c.stats.ShortSent++
	c.recordSent(spaceAppData, ss, hdr, frames, elicits, now, len(buf)-start)
	return buf
}

func (c *Conn) recordSent(sp spaceID, ss *sendState, hdr *wire.Header, frames []wire.Frame, elicits bool, now time.Time, size int) {
	p := ss.take()
	retrans := p.frames[:0]
	for _, f := range frames {
		switch f.(type) {
		case *wire.CryptoFrame, *wire.StreamFrame, wire.HandshakeDoneFrame, wire.PingFrame, *wire.NewTokenFrame:
			retrans = append(retrans, f)
		}
	}
	*p = sentPacket{pn: ss.nextPN, sentAt: now, ackEliciting: elicits, size: size, frames: retrans}
	ss.inFlight = append(ss.inFlight, p)
	ss.nextPN++
	c.stats.PacketsSent++
	c.qlogPacket(qlog.EventPacketSent, now, hdr, size)
	if elicits {
		c.armPTO(now)
	}
}

// --- timers ------------------------------------------------------------

func (c *Conn) armPTO(now time.Time) {
	var earliest time.Time
	for sp := spaceInitial; sp < numSpaces; sp++ {
		if !c.spaceActive[sp] {
			continue
		}
		if p := c.send[sp].oldestUnacked(); p != nil {
			if earliest.IsZero() || p.sentAt.Before(earliest) {
				earliest = p.sentAt
			}
		}
	}
	if earliest.IsZero() {
		c.ptoDeadline = time.Time{}
		return
	}
	pto := c.estimator.PTO(c.handshakeComplete) << uint(c.ptoBackoff)
	c.ptoDeadline = earliest.Add(pto)
	if c.ptoDeadline.Before(now) {
		c.ptoDeadline = now
	}
}

// NextTimeout returns the earliest time at which Advance must be called,
// and false if no timer is pending.
func (c *Conn) NextTimeout() (time.Time, bool) {
	if c.state == stateClosed {
		return time.Time{}, false
	}
	var t time.Time
	add := func(u time.Time) {
		if u.IsZero() {
			return
		}
		if t.IsZero() || u.Before(t) {
			t = u
		}
	}
	if c.state == stateClosing || c.state == stateDraining {
		add(c.drainDeadline)
		return t, !t.IsZero()
	}
	add(c.idleDeadline)
	add(c.ptoDeadline)
	for sp := spaceInitial; sp < numSpaces; sp++ {
		add(c.lossTime[sp])
		add(c.recv[sp].ackDeadline)
	}
	return t, !t.IsZero()
}

// Advance fires all timers with deadlines at or before now. Follow with
// Poll to transmit whatever the timers produced.
func (c *Conn) Advance(now time.Time) {
	if c.state == stateClosed {
		return
	}
	if c.state == stateClosing || c.state == stateDraining {
		if !c.drainDeadline.IsZero() && !now.Before(c.drainDeadline) {
			c.state = stateClosed
		}
		return
	}
	if !now.Before(c.idleDeadline) {
		c.state = stateClosed
		if c.termErr == nil {
			c.termErr = fmt.Errorf("transport: idle timeout after %v", c.cfg.idleTimeout())
		}
		return
	}
	for sp := spaceInitial; sp < numSpaces; sp++ {
		if !c.lossTime[sp].IsZero() && !now.Before(c.lossTime[sp]) {
			c.detectLosses(now, sp)
			c.send[sp].compact()
		}
		rs := &c.recv[sp]
		if !rs.ackDeadline.IsZero() && !now.Before(rs.ackDeadline) {
			rs.ackQueued = true
			rs.ackDeadline = time.Time{}
		}
	}
	if !c.ptoDeadline.IsZero() && !now.Before(c.ptoDeadline) {
		c.onPTO(now)
	}
}

func (c *Conn) onPTO(now time.Time) {
	c.stats.PTOCount++
	c.ptoBackoff++
	if c.ptoBackoff > 10 {
		// Give up: the peer is unreachable.
		c.state = stateClosed
		c.termErr = errors.New("transport: handshake/probe timeout")
		return
	}
	fired := false
	for sp := spaceInitial; sp < numSpaces; sp++ {
		if !c.spaceActive[sp] {
			continue
		}
		if p := c.send[sp].oldestUnacked(); p != nil {
			// Retransmit the oldest unacked packet's payload. Read the frame
			// count before compact recycles p into the sent-packet freelist.
			p.declared = true
			c.stats.PacketsLost++
			c.requeue(sp, p)
			hadFrames := len(p.frames) > 0
			c.send[sp].compact()
			if !hadFrames {
				c.probePing[sp] = true
			}
			fired = true
			break
		}
	}
	if !fired {
		c.probePing[spaceAppData] = true
	}
	c.armPTO(now)
}

// --- qlog --------------------------------------------------------------

func (c *Conn) qlogPacket(event string, now time.Time, hdr *wire.Header, size int) {
	if c.cfg.Qlog == nil {
		return
	}
	ph := qlog.PacketHeader{PacketNumber: hdr.PacketNumber}
	if hdr.IsLong {
		switch hdr.Type {
		case wire.TypeInitial:
			ph.PacketType = "initial"
		case wire.TypeHandshake:
			ph.PacketType = "handshake"
		default:
			ph.PacketType = "long"
		}
	} else {
		ph.PacketType = "1RTT"
		spin := hdr.SpinBit
		ph.SpinBit = &spin
		if c.cfg.EnableVEC {
			vec := hdr.Reserved
			ph.VEC = &vec
		}
	}
	_ = c.cfg.Qlog.Emit(now, event, qlog.PacketEvent{Header: ph, Length: size})
}

func (c *Conn) qlogMetrics(now time.Time) {
	if c.cfg.Qlog == nil {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	_ = c.cfg.Qlog.MetricsUpdated(now, qlog.MetricsEvent{
		LatestRTTMs:   ms(c.estimator.Latest()),
		SmoothedRTTMs: ms(c.estimator.Smoothed()),
		MinRTTMs:      ms(c.estimator.Min()),
		RTTVarMs:      ms(c.estimator.Var()),
	})
}
