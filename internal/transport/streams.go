package transport

import "sort"

// sendStream buffers outgoing application data for one stream.
type sendStream struct {
	data   []byte
	base   uint64 // offset of data[0] in the stream
	next   uint64 // next offset to transmit
	fin    bool
	finSet bool
	// finSent tracks whether the FIN has been packetised at least once.
	finSent bool
}

// pending returns the next chunk to send (up to max bytes) and its offset,
// plus whether the chunk carries the FIN. ok is false when nothing remains.
func (s *sendStream) pending(max int) (data []byte, offset uint64, fin, ok bool) {
	avail := s.base + uint64(len(s.data)) - s.next
	if avail == 0 {
		if s.finSet && !s.finSent {
			s.finSent = true
			return nil, s.next, true, true
		}
		return nil, 0, false, false
	}
	n := int(avail)
	if n > max {
		n = max
	}
	start := s.next - s.base
	chunk := s.data[start : start+uint64(n)]
	offset = s.next
	s.next += uint64(n)
	fin = s.finSet && s.next == s.base+uint64(len(s.data))
	if fin {
		s.finSent = true
	}
	return chunk, offset, fin, true
}

// segment is a received stream chunk pending reassembly.
type segment struct {
	offset uint64
	data   []byte
}

// recvStream reassembles incoming stream data.
type recvStream struct {
	delivered []byte // contiguous prefix ready for the application
	nextOff   uint64 // offset after delivered bytes
	segments  []segment
	finOff    uint64
	hasFin    bool
}

// push inserts a received frame and advances the contiguous prefix.
func (r *recvStream) push(offset uint64, data []byte, fin bool) {
	if fin {
		r.hasFin = true
		r.finOff = offset + uint64(len(data))
	}
	if len(data) > 0 && offset+uint64(len(data)) > r.nextOff {
		cp := make([]byte, len(data))
		copy(cp, data)
		r.segments = append(r.segments, segment{offset: offset, data: cp})
		sort.Slice(r.segments, func(i, j int) bool { return r.segments[i].offset < r.segments[j].offset })
	}
	r.drain()
}

// drain moves contiguous segments into the delivered prefix.
func (r *recvStream) drain() {
	changed := true
	for changed {
		changed = false
		rest := r.segments[:0]
		for _, seg := range r.segments {
			end := seg.offset + uint64(len(seg.data))
			switch {
			case end <= r.nextOff:
				// Fully duplicate; drop.
			case seg.offset <= r.nextOff:
				skip := r.nextOff - seg.offset
				r.delivered = append(r.delivered, seg.data[skip:]...)
				r.nextOff = end
				changed = true
			default:
				rest = append(rest, seg)
			}
		}
		r.segments = rest
	}
}

// complete reports whether all data up to the FIN has arrived.
func (r *recvStream) complete() bool {
	return r.hasFin && r.nextOff >= r.finOff && len(r.segments) == 0
}
