package transport

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSendStreamChunking(t *testing.T) {
	s := &sendStream{}
	s.data = []byte("hello world")
	s.finSet = true
	var got []byte
	var offs []uint64
	finSeen := false
	for {
		chunk, off, fin, ok := s.pending(4)
		if !ok {
			break
		}
		got = append(got, chunk...)
		offs = append(offs, off)
		if fin {
			finSeen = true
		}
	}
	if string(got) != "hello world" {
		t.Errorf("reassembled %q", got)
	}
	if !finSeen {
		t.Error("FIN never signalled")
	}
	if offs[0] != 0 || offs[1] != 4 || offs[2] != 8 {
		t.Errorf("offsets = %v", offs)
	}
	// FIN must be sent exactly once.
	if _, _, _, ok := s.pending(4); ok {
		t.Error("pending returned data after completion")
	}
}

func TestSendStreamEmptyFin(t *testing.T) {
	s := &sendStream{finSet: true}
	chunk, off, fin, ok := s.pending(100)
	if !ok || !fin || len(chunk) != 0 || off != 0 {
		t.Errorf("empty-FIN pending = (%q, %d, %v, %v)", chunk, off, fin, ok)
	}
	if _, _, _, ok := s.pending(100); ok {
		t.Error("FIN offered twice")
	}
}

func TestRecvStreamInOrder(t *testing.T) {
	r := &recvStream{}
	r.push(0, []byte("abc"), false)
	r.push(3, []byte("def"), true)
	if string(r.delivered) != "abcdef" || !r.complete() {
		t.Errorf("delivered=%q complete=%v", r.delivered, r.complete())
	}
}

func TestRecvStreamOutOfOrder(t *testing.T) {
	r := &recvStream{}
	r.push(3, []byte("def"), true)
	if r.complete() || len(r.delivered) != 0 {
		t.Fatalf("premature delivery: %q", r.delivered)
	}
	r.push(0, []byte("abc"), false)
	if string(r.delivered) != "abcdef" || !r.complete() {
		t.Errorf("delivered=%q complete=%v", r.delivered, r.complete())
	}
}

func TestRecvStreamOverlapAndDuplicates(t *testing.T) {
	r := &recvStream{}
	r.push(0, []byte("abcd"), false)
	r.push(2, []byte("cdef"), false) // overlaps delivered prefix
	r.push(0, []byte("abcd"), false) // pure duplicate
	r.push(6, []byte("gh"), true)
	if string(r.delivered) != "abcdefgh" || !r.complete() {
		t.Errorf("delivered=%q complete=%v", r.delivered, r.complete())
	}
}

func TestRecvStreamQuickReassembly(t *testing.T) {
	// Property: any permutation of segment arrivals reassembles the
	// original byte string.
	f := func(seed int64, n uint8) bool {
		size := int(n%64) + 1
		orig := make([]byte, size)
		for i := range orig {
			orig[i] = byte(i)
		}
		// Split into segments of 1–8 bytes.
		type seg struct {
			off  uint64
			data []byte
			fin  bool
		}
		var segs []seg
		for off := 0; off < size; {
			l := int(uint64(seed)%7) + 1
			seed = seed*1103515245 + 12345
			if off+l > size {
				l = size - off
			}
			segs = append(segs, seg{uint64(off), orig[off : off+l], off+l == size})
			off += l
		}
		// Shuffle deterministically.
		for i := len(segs) - 1; i > 0; i-- {
			seed = seed*6364136223846793005 + 1442695040888963407
			j := int(uint64(seed) % uint64(i+1))
			segs[i], segs[j] = segs[j], segs[i]
		}
		r := &recvStream{}
		for _, s := range segs {
			r.push(s.off, s.data, s.fin)
		}
		return r.complete() && bytes.Equal(r.delivered, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
