package analysis

import (
	"fmt"

	"quicspin/internal/asdb"
	"quicspin/internal/hostile"
	"quicspin/internal/report"
	"quicspin/internal/resilience"
	"quicspin/internal/stats"
)

// RenderOverview renders Table 1 (IPv4) or Table 4 (IPv6) for the three
// standard views.
func RenderOverview(w *Week) *report.Table {
	title := "Table 1. Overview of IPv4 results"
	if w.IPv6 {
		title = "Table 4. Overview of IPv6 results"
	}
	t := report.NewTable(title+fmt.Sprintf(" (week %d)", w.Week),
		"List", "Unit", "Total", "Resolved", "QUIC", "Spin", "Spin%")
	for _, v := range StandardViews() {
		row := Overview(w, v)
		t.AddRow(v.Label, "#Domains",
			report.Count(row.TotalDomains), report.Count(row.ResolvedDomains),
			report.Count(row.QUICDomains), report.Count(row.SpinDomains),
			stats.Percent(row.SpinDomains, row.QUICDomains))
		t.AddRow("", "#IPs",
			report.Count(row.TotalIPs), "",
			report.Count(row.QUICIPs), report.Count(row.SpinIPs),
			stats.Percent(row.SpinIPs, row.QUICIPs))
	}
	return t
}

// RenderOrgTable renders Table 2 for the com/net/org view.
func RenderOrgTable(w *Week, res *asdb.Resolver, topN int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 2. QUIC connections and spin activity per AS organization (com/net/org, week %d)", w.Week),
		"Rank", "Total #", "AS Organization", "Spin #", "Spin %", "Spin Rank")
	view := StandardViews()[2]
	for _, r := range OrgTable(w, res, view, topN) {
		rank, spinRank := "", ""
		if r.Rank > 0 {
			rank = fmt.Sprintf("%d", r.Rank)
		}
		if r.SpinRank > 0 {
			spinRank = fmt.Sprintf("%d", r.SpinRank)
		}
		t.AddRow(rank, report.Count(r.TotalConns), r.Org,
			report.Count(r.SpinConns), stats.Percent(r.SpinConns, r.TotalConns), spinRank)
	}
	return t
}

// RenderSpinConfig renders Table 3.
func RenderSpinConfig(w *Week) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 3. Spin behavior of all QUIC domains (week %d)", w.Week),
		"List", "All Zero", "All One", "Spin", "Grease")
	for _, v := range StandardViews() {
		r := SpinConfig(w, v)
		pc := func(n int) string {
			return fmt.Sprintf("%s (%s)", report.Count(n), stats.Percent(n, r.QUICDomains))
		}
		t.AddRow(v.Label, pc(r.AllZero), pc(r.AllOne), report.Count(r.Spin), pc(r.Grease))
	}
	return t
}

// RenderErrorClasses renders the connection-failure breakdown by resilience
// error class, with hostile-endpoint profiles broken out beneath the hostile
// class. Shares are over all connection attempts of the week.
func RenderErrorClasses(w *Week) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 5. Connection errors by class (week %d)", w.Week),
		"Class", "Conns", "Share")
	total := 0
	classes := map[resilience.Class]int{}
	profiles := map[hostile.Profile]int{}
	for i := range w.Domains {
		for j := range w.Domains[i].Src.Conns {
			c := &w.Domains[i].Src.Conns[j]
			total++
			cls := resilience.Classify(c.Err)
			if cls == resilience.ClassNone {
				continue
			}
			classes[cls]++
			if cls == resilience.ClassHostile {
				profiles[hostile.ProfileOf(c.Err)]++
			}
		}
	}
	for cls := resilience.ClassNone + 1; cls <= resilience.ClassOther; cls++ {
		n := classes[cls]
		if n == 0 {
			continue
		}
		t.AddRow(cls.String(), report.Count(n), stats.Percent(n, total))
		if cls != resilience.ClassHostile {
			continue
		}
		for _, p := range hostile.Profiles() {
			if pn := profiles[p]; pn > 0 {
				t.AddRow("  hostile: "+p.String(), report.Count(pn), stats.Percent(pn, total))
			}
		}
	}
	if len(classes) == 0 {
		t.AddRow("(no errors)", report.Count(0), stats.Percent(0, total))
	}
	return t
}

// RenderLongitudinal renders the Fig. 2 histogram with RFC reference
// columns.
func RenderLongitudinal(l Longitudinal) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 2. Weeks with spin bit enabled (%s domains ever spun, %s considered)",
			report.Count(l.EverSpun), report.Count(l.Considered)),
		"Weeks", "Share", "RFC 9312 (1/8)", "RFC 9000 (1/16)")
	for k := 1; k <= l.Weeks; k++ {
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f%%", l.Share[k]*100),
			fmt.Sprintf("%.1f%%", l.RFC9312[k]*100),
			fmt.Sprintf("%.1f%%", l.RFC9000[k]*100))
	}
	return t
}

// RenderAccuracy renders one Fig. 3 or Fig. 4 histogram (abs difference or
// mapped ratio) with the paper's headline shares below it.
func RenderAccuracy(weeks []*Week, fig int) string {
	out := ""
	for _, set := range []struct {
		name string
		set  AccuracySet
	}{
		{"Spin (R)", AccuracySet{Class: ClassSpin}},
		{"Spin (S)", AccuracySet{Class: ClassSpin, Sorted: true}},
		{"Grease (R)", AccuracySet{Class: ClassGrease}},
		{"Grease (S)", AccuracySet{Class: ClassGrease, Sorted: true}},
	} {
		var h *stats.Histogram
		var unit string
		if fig == 3 {
			h = AbsHistogram(weeks, set.set)
			unit = "ms abs difference (spin − stack)"
		} else {
			h = RatioHistogram(weeks, set.set)
			unit = "mapped ratio of means"
		}
		out += fmt.Sprintf("Figure %d — %s, %s (n=%d)\n%s\n", fig, set.name, unit, h.N, h)
	}
	return out
}

// AccuracyHeadlines computes the §5.2 headline numbers on the Spin (R)
// set: share overestimating, share within 25 ms, share over 200 ms (Fig.
// 3), and the within-25 %, within-2x and over-3x ratio shares (Fig. 4).
type AccuracyHeadlines struct {
	N                 int
	OverestimateShare float64
	Within25ms        float64
	Over200ms         float64
	Within25pct       float64
	Within2x          float64
	Over3x            float64
}

// Headlines computes the headline accuracy shares over the spin set in
// received order.
func Headlines(weeks []*Week) AccuracyHeadlines {
	var h AccuracyHeadlines
	var over, w25, o200, w125, w2, o3 int
	eachAccuracyConn(weeks, ClassSpin, func(c *Conn) {
		h.N++
		if c.AbsR > 0 {
			over++
		}
		absMs := float64(c.AbsR) / 1e6
		if absMs >= -25 && absMs <= 25 {
			w25++
		}
		if absMs > 200 {
			o200++
		}
		r := c.RatioR
		if r >= -1.25 && r <= 1.25 {
			w125++
		}
		if r >= -2 && r <= 2 {
			w2++
		}
		if r > 3 || r < -3 {
			o3++
		}
	})
	if h.N == 0 {
		return h
	}
	n := float64(h.N)
	h.OverestimateShare = float64(over) / n
	h.Within25ms = float64(w25) / n
	h.Over200ms = float64(o200) / n
	h.Within25pct = float64(w125) / n
	h.Within2x = float64(w2) / n
	h.Over3x = float64(o3) / n
	return h
}
