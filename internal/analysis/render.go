package analysis

import (
	"fmt"

	"quicspin/internal/asdb"
	"quicspin/internal/hostile"
	"quicspin/internal/report"
	"quicspin/internal/resilience"
	"quicspin/internal/stats"
)

// RenderOverview renders Table 1 (IPv4) or Table 4 (IPv6) for the three
// standard views.
func RenderOverview(w *Week) *report.Table {
	rows := make([]OverviewRow, 0, 3)
	for _, v := range StandardViews() {
		rows = append(rows, Overview(w, v))
	}
	return renderOverviewTable(w.Week, w.IPv6, rows)
}

// renderOverviewTable formats Table 1/4 from already-aggregated rows; the
// batch and streaming paths share it so their output cannot drift.
func renderOverviewTable(week int, ipv6 bool, rows []OverviewRow) *report.Table {
	title := "Table 1. Overview of IPv4 results"
	if ipv6 {
		title = "Table 4. Overview of IPv6 results"
	}
	t := report.NewTable(title+fmt.Sprintf(" (week %d)", week),
		"List", "Unit", "Total", "Resolved", "QUIC", "Spin", "Spin%")
	for _, row := range rows {
		t.AddRow(row.Label, "#Domains",
			report.Count(row.TotalDomains), report.Count(row.ResolvedDomains),
			report.Count(row.QUICDomains), report.Count(row.SpinDomains),
			stats.Percent(row.SpinDomains, row.QUICDomains))
		t.AddRow("", "#IPs",
			report.Count(row.TotalIPs), "",
			report.Count(row.QUICIPs), report.Count(row.SpinIPs),
			stats.Percent(row.SpinIPs, row.QUICIPs))
	}
	return t
}

// RenderOrgTable renders Table 2 for the com/net/org view.
func RenderOrgTable(w *Week, res *asdb.Resolver, topN int) *report.Table {
	view := StandardViews()[2]
	return renderOrgTable(w.Week, OrgTable(w, res, view, topN))
}

// renderOrgTable formats Table 2 from ranked rows.
func renderOrgTable(week int, rows []OrgRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 2. QUIC connections and spin activity per AS organization (com/net/org, week %d)", week),
		"Rank", "Total #", "AS Organization", "Spin #", "Spin %", "Spin Rank")
	for _, r := range rows {
		rank, spinRank := "", ""
		if r.Rank > 0 {
			rank = fmt.Sprintf("%d", r.Rank)
		}
		if r.SpinRank > 0 {
			spinRank = fmt.Sprintf("%d", r.SpinRank)
		}
		t.AddRow(rank, report.Count(r.TotalConns), r.Org,
			report.Count(r.SpinConns), stats.Percent(r.SpinConns, r.TotalConns), spinRank)
	}
	return t
}

// RenderSpinConfig renders Table 3.
func RenderSpinConfig(w *Week) *report.Table {
	rows := make([]ConfigRow, 0, 3)
	for _, v := range StandardViews() {
		rows = append(rows, SpinConfig(w, v))
	}
	return renderSpinConfigTable(w.Week, rows)
}

// renderSpinConfigTable formats Table 3 from aggregated rows.
func renderSpinConfigTable(week int, rows []ConfigRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 3. Spin behavior of all QUIC domains (week %d)", week),
		"List", "All Zero", "All One", "Spin", "Grease")
	for _, r := range rows {
		pc := func(n int) string {
			return fmt.Sprintf("%s (%s)", report.Count(n), stats.Percent(n, r.QUICDomains))
		}
		t.AddRow(r.Label, pc(r.AllZero), pc(r.AllOne), report.Count(r.Spin), pc(r.Grease))
	}
	return t
}

// RenderErrorClasses renders the connection-failure breakdown by resilience
// error class, with hostile-endpoint profiles broken out beneath the hostile
// class. Shares are over all connection attempts of the week.
func RenderErrorClasses(w *Week) *report.Table {
	f := newErrorClassFold()
	for i := range w.Domains {
		f.add(w.Domains[i].Src)
	}
	return renderErrorTable(w.Week, f)
}

// renderErrorTable formats Table 5 from a folded error breakdown.
func renderErrorTable(week int, f *errorClassFold) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 5. Connection errors by class (week %d)", week),
		"Class", "Conns", "Share")
	for cls := resilience.ClassNone + 1; cls <= resilience.ClassOther; cls++ {
		n := f.classes[cls]
		if n == 0 {
			continue
		}
		t.AddRow(cls.String(), report.Count(n), stats.Percent(n, f.total))
		if cls != resilience.ClassHostile {
			continue
		}
		for _, p := range hostile.Profiles() {
			if pn := f.profiles[p]; pn > 0 {
				t.AddRow("  hostile: "+p.String(), report.Count(pn), stats.Percent(pn, f.total))
			}
		}
	}
	if len(f.classes) == 0 {
		t.AddRow("(no errors)", report.Count(0), stats.Percent(0, f.total))
	}
	return t
}

// RenderLongitudinal renders the Fig. 2 histogram with RFC reference
// columns.
func RenderLongitudinal(l Longitudinal) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 2. Weeks with spin bit enabled (%s domains ever spun, %s considered)",
			report.Count(l.EverSpun), report.Count(l.Considered)),
		"Weeks", "Share", "RFC 9312 (1/8)", "RFC 9000 (1/16)")
	for k := 1; k <= l.Weeks; k++ {
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f%%", l.Share[k]*100),
			fmt.Sprintf("%.1f%%", l.RFC9312[k]*100),
			fmt.Sprintf("%.1f%%", l.RFC9000[k]*100))
	}
	return t
}

// RenderAccuracy renders one Fig. 3 or Fig. 4 histogram (abs difference or
// mapped ratio) with the paper's headline shares below it.
func RenderAccuracy(weeks []*Week, fig int) string {
	return renderAccuracyFrom(fig, func(i int) *stats.Histogram {
		if fig == 3 {
			return AbsHistogram(weeks, accuracySets[i])
		}
		return RatioHistogram(weeks, accuracySets[i])
	})
}

// renderAccuracyFrom formats the four Fig. 3/4 panels given a source of
// per-panel histograms (batch recomputation or a streaming fold).
func renderAccuracyFrom(fig int, hist func(i int) *stats.Histogram) string {
	unit := "mapped ratio of means"
	if fig == 3 {
		unit = "ms abs difference (spin − stack)"
	}
	out := ""
	for i, name := range accuracySetNames {
		h := hist(i)
		out += fmt.Sprintf("Figure %d — %s, %s (n=%d)\n%s\n", fig, name, unit, h.N, h)
	}
	return out
}

// AccuracyHeadlines computes the §5.2 headline numbers on the Spin (R)
// set: share overestimating, share within 25 ms, share over 200 ms (Fig.
// 3), and the within-25 %, within-2x and over-3x ratio shares (Fig. 4).
type AccuracyHeadlines struct {
	N                 int
	OverestimateShare float64
	Within25ms        float64
	Over200ms         float64
	Within25pct       float64
	Within2x          float64
	Over3x            float64
}

// Headlines computes the headline accuracy shares over the spin set in
// received order.
func Headlines(weeks []*Week) AccuracyHeadlines {
	f := newAccuracyFold()
	for _, w := range weeks {
		for i := range w.Domains {
			f.add(&w.Domains[i])
		}
	}
	return f.headlines()
}
