package analysis

import (
	"strings"
	"sync"
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// The e2e tests share one scan fixture (IPv4 + IPv6, final campaign week)
// at a scale large enough for IP-level shares to be statistically
// meaningful. Individual tests then check the paper's Table/Figure shapes.
var (
	fixtureOnce sync.Once
	fxWorld     *websim.World
	fxV4, fxV6  *Week
)

func fixture(t *testing.T) (*websim.World, *Week, *Week) {
	t.Helper()
	fixtureOnce.Do(func() {
		p := websim.DefaultProfile()
		p.Scale = 2000 // the default scale: ~108k zone + ~1.4k toplist
		// domains; smaller scales leave tail orgs with 1-2 IPs and make
		// per-org spin shares statistically meaningless.
		fxWorld = websim.Generate(p)
		week := p.Weeks // the paper's CW 20 snapshot is the campaign's end
		r4, err4 := scanner.Run(fxWorld, scanner.Config{Week: week, Engine: scanner.EngineEmulated, Seed: 99, Workers: 8})
		if err4 != nil {
			panic(err4)
		}
		fxV4 = Analyze(r4)
		r6, err6 := scanner.Run(fxWorld, scanner.Config{Week: week, IPv6: true, Engine: scanner.EngineEmulated, Seed: 99, Workers: 8})
		if err6 != nil {
			panic(err6)
		}
		fxV6 = Analyze(r6)
	})
	return fxWorld, fxV4, fxV6
}

func TestOverviewShapesIPv4(t *testing.T) {
	_, wk, _ := fixture(t)
	views := StandardViews()
	top := Overview(wk, views[0])
	zone := Overview(wk, views[1])
	cno := Overview(wk, views[2])

	if top.TotalDomains == 0 || zone.TotalDomains == 0 || cno.TotalDomains == 0 {
		t.Fatalf("empty views: %+v %+v %+v", top, zone, cno)
	}
	if cno.TotalDomains >= zone.TotalDomains {
		t.Errorf("com/net/org (%d) must be a subset of CZDS (%d)", cno.TotalDomains, zone.TotalDomains)
	}
	// Spin share of QUIC domains: zone ≈ 10-12 %, toplist ≈ 7-8 %.
	zoneShare := share(zone.SpinDomains, zone.QUICDomains)
	if zoneShare < 0.07 || zoneShare > 0.17 {
		t.Errorf("CZDS domain spin share = %.3f, want ≈0.10-0.12", zoneShare)
	}
	topShare := share(top.SpinDomains, top.QUICDomains)
	if topShare >= zoneShare {
		t.Errorf("toplist domain spin share %.3f not below CZDS %.3f", topShare, zoneShare)
	}
	// Spin share of QUIC IPs: zone ≈ 40-50 %.
	ipShare := share(zone.SpinIPs, zone.QUICIPs)
	if ipShare < 0.28 || ipShare > 0.60 {
		t.Errorf("CZDS IP spin share = %.3f, want ≈0.40-0.45", ipShare)
	}
	// Toplist IP spin share must be lower than CZDS (15.2 % vs ≈45 %).
	topIPShare := share(top.SpinIPs, top.QUICIPs)
	if topIPShare >= ipShare {
		t.Errorf("toplist IP spin share %.3f not below CZDS %.3f", topIPShare, ipShare)
	}
}

func TestOrgTableShapes(t *testing.T) {
	w, wk, _ := fixture(t)
	rows := OrgTable(wk, w.ASDB(), StandardViews()[2], 8)
	if len(rows) < 5 {
		t.Fatalf("too few org rows: %d", len(rows))
	}
	byName := map[string]OrgRow{}
	for _, r := range rows {
		byName[r.Org] = r
	}
	cf, ok := byName["Cloudflare"]
	if !ok {
		t.Fatal("Cloudflare missing from org table")
	}
	if cf.Rank != 1 {
		t.Errorf("Cloudflare rank = %d, want 1 (largest QUIC host)", cf.Rank)
	}
	if cf.SpinConns != 0 {
		t.Errorf("Cloudflare spin conns = %d, want 0", cf.SpinConns)
	}
	ho, ok := byName["Hostinger"]
	if !ok {
		t.Fatal("Hostinger missing from org table")
	}
	if s := share(ho.SpinConns, ho.TotalConns); s < 0.35 || s > 0.75 {
		t.Errorf("Hostinger spin share = %.3f, want ≈0.52", s)
	}
	// The mid-tier hosters together carry majority spin support.
	var hostTot, hostSpin int
	for _, name := range []string{"Hostinger", "OVH SAS", "A2 Hosting", "SingleHop", "Server Central"} {
		if r, ok := byName[name]; ok {
			hostTot += r.TotalConns
			hostSpin += r.SpinConns
		}
	}
	if s := share(hostSpin, hostTot); s < 0.40 || s > 0.75 {
		t.Errorf("named hoster aggregate spin share = %.3f, want ≈0.55", s)
	}
	other, ok := byName["<other>"]
	if !ok {
		t.Fatal("<other> bucket missing")
	}
	if s := share(other.SpinConns, other.TotalConns); s < 0.25 || s > 0.70 {
		t.Errorf("<other> spin share = %.3f, want ≈0.53", s)
	}
}

func TestSpinConfigShapes(t *testing.T) {
	_, wk, _ := fixture(t)
	r := SpinConfig(wk, StandardViews()[1])
	if r.QUICDomains == 0 {
		t.Fatal("no QUIC domains")
	}
	zeroShare := share(r.AllZero, r.QUICDomains)
	if zeroShare < 0.75 {
		t.Errorf("All Zero share = %.3f, want ≈0.89 (dominant)", zeroShare)
	}
	if r.AllOne > r.AllZero/10 {
		t.Errorf("All One (%d) not rare relative to All Zero (%d)", r.AllOne, r.AllZero)
	}
	if r.Spin == 0 {
		t.Error("no spinning domains")
	}
	if r.Grease > r.Spin {
		t.Errorf("grease (%d) exceeds spin (%d); filter misfiring", r.Grease, r.Spin)
	}
}

func TestIPv6Shapes(t *testing.T) {
	_, wk4, wk6 := fixture(t)
	zone4 := Overview(wk4, StandardViews()[1])
	zone6 := Overview(wk6, StandardViews()[1])
	if zone6.ResolvedDomains >= zone4.ResolvedDomains {
		t.Errorf("v6 resolved (%d) should be below v4 (%d)", zone6.ResolvedDomains, zone4.ResolvedDomains)
	}
	// v6 host spin share exceeds v4 (paper: ≈63 % vs ≈45 %).
	v4 := share(zone4.SpinIPs, zone4.QUICIPs)
	v6 := share(zone6.SpinIPs, zone6.QUICIPs)
	if v6 <= v4 {
		t.Errorf("v6 IP spin share %.3f not above v4 %.3f", v6, v4)
	}
	// CZDS v6 has far more QUIC hosts than v4 (per-customer addresses).
	if zone6.QUICIPs <= zone4.QUICIPs {
		t.Errorf("v6 QUIC IPs (%d) not above v4 (%d)", zone6.QUICIPs, zone4.QUICIPs)
	}
	// Toplist v6 domain spin share below the v4 share (2.3 % vs 6.9 %).
	top4 := Overview(wk4, StandardViews()[0])
	top6 := Overview(wk6, StandardViews()[0])
	s4, s6 := share(top4.SpinDomains, top4.QUICDomains), share(top6.SpinDomains, top6.QUICDomains)
	if s6 >= s4 {
		t.Errorf("toplist v6 spin share %.3f not below v4 %.3f", s6, s4)
	}
}

func TestAccuracyShapes(t *testing.T) {
	_, wk, _ := fixture(t)
	h := Headlines([]*Week{wk})
	if h.N < 100 {
		t.Fatalf("only %d accuracy connections; population too small", h.N)
	}
	if h.OverestimateShare < 0.80 {
		t.Errorf("overestimate share = %.3f, want ≈0.977", h.OverestimateShare)
	}
	if h.Within25pct < 0.12 || h.Within25pct > 0.55 {
		t.Errorf("within-25%% share = %.3f, want ≈0.305", h.Within25pct)
	}
	if h.Over3x < 0.25 || h.Over3x > 0.75 {
		t.Errorf("over-3x share = %.3f, want ≈0.517", h.Over3x)
	}
	// Reordering must be a non-issue (paper: 0.28 % differing).
	ri := Reordering([]*Week{wk})
	if ri.Conns == 0 {
		t.Fatal("no reordering sample")
	}
	if float64(ri.Differing)/float64(ri.Conns) > 0.10 {
		t.Errorf("R-vs-S differing share = %.3f, want small", float64(ri.Differing)/float64(ri.Conns))
	}
}

func TestRenderersProduceTables(t *testing.T) {
	w, wk, _ := fixture(t)
	if s := RenderOverview(wk).String(); !strings.Contains(s, "CZDS") || !strings.Contains(s, "#IPs") {
		t.Errorf("overview table:\n%s", s)
	}
	if s := RenderOrgTable(wk, w.ASDB(), 8).String(); !strings.Contains(s, "AS Organization") {
		t.Errorf("org table:\n%s", s)
	}
	if s := RenderSpinConfig(wk).String(); !strings.Contains(s, "All Zero") {
		t.Errorf("config table:\n%s", s)
	}
	if s := RenderAccuracy([]*Week{wk}, 3); !strings.Contains(s, "Figure 3") {
		t.Errorf("fig 3 output:\n%s", s)
	}
	if s := RenderAccuracy([]*Week{wk}, 4); !strings.Contains(s, "Figure 4") {
		t.Errorf("fig 4 output:\n%s", s)
	}
	l := Longitudinally([]*Week{wk})
	if s := RenderLongitudinal(l).String(); !strings.Contains(s, "RFC 9000") {
		t.Errorf("fig 2 output:\n%s", s)
	}
}

// TestTableDeterminism is the regression gate for worker-invariant
// reproducibility: with a fixed seed, the rendered Table 1 and Table 3 must
// be byte-identical for Workers ∈ {1, 4, 16}, for each engine kind.
// Per-domain randomness is derived from (Seed, Week, domain), so sharding
// must not leak into any reported number. The two engines are each
// self-consistent but not byte-equal to each other: they consume their
// per-domain random streams differently (dice order), which is exactly the
// gap the conformance differential bounds instead.
func TestTableDeterminism(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 50_000
	w := websim.Generate(p)
	render := func(eng scanner.Engine, workers int) (string, string) {
		r, err := scanner.Run(w, scanner.Config{
			Week: 3, Engine: eng, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		wk := Analyze(r)
		return RenderOverview(wk).String(), RenderSpinConfig(wk).String()
	}
	for _, eng := range []struct {
		name string
		kind scanner.Engine
	}{{"fast", scanner.EngineFast}, {"emulated", scanner.EngineEmulated}} {
		t.Run(eng.name, func(t *testing.T) {
			refOverview, refConfig := render(eng.kind, 1)
			if !strings.Contains(refOverview, "CZDS") || !strings.Contains(refConfig, "All Zero") {
				t.Fatalf("reference tables look wrong:\n%s\n%s", refOverview, refConfig)
			}
			for _, workers := range []int{4, 16} {
				gotOverview, gotConfig := render(eng.kind, workers)
				if gotOverview != refOverview {
					t.Errorf("Table 1 differs between Workers=1 and Workers=%d:\n--- 1 ---\n%s\n--- %d ---\n%s",
						workers, refOverview, workers, gotOverview)
				}
				if gotConfig != refConfig {
					t.Errorf("Table 3 differs between Workers=1 and Workers=%d:\n--- 1 ---\n%s\n--- %d ---\n%s",
						workers, refConfig, workers, gotConfig)
				}
			}
		})
	}
}

func share(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
