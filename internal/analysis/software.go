package analysis

import (
	"fmt"

	"quicspin/internal/report"
	"quicspin/internal/stats"
)

// SoftwareRow attributes connections to webserver software via the HTTP
// Server header (§4.2 "Webserver support": the paper finds LiteSpeed
// behind >80 % of spinning connections, plus imunify360-webshield, which
// it suspects builds on LiteSpeed).
type SoftwareRow struct {
	Software  string
	Conns     int
	SpinConns int
}

// SoftwareTable aggregates QUIC connections by Server header for one view,
// restricted — like the paper — to connections where the header could be
// matched unambiguously (i.e. a response was received). Rows are ordered
// by spinning connections.
func SoftwareTable(w *Week, v View) []SoftwareRow {
	f := newSoftwareFold(v)
	for i := range w.Domains {
		f.add(&w.Domains[i])
	}
	return f.finish()
}

// SpinShareOfSoftware returns the given software's share of all spinning
// connections in the view (the paper's ">80 % LiteSpeed" number).
func SpinShareOfSoftware(rows []SoftwareRow, software string) float64 {
	var total, match int
	for _, r := range rows {
		total += r.SpinConns
		if r.Software == software {
			match += r.SpinConns
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

// RenderSoftwareTable renders the §4.2 webserver attribution.
func RenderSoftwareTable(w *Week, v View) *report.Table {
	return renderSoftwareTable(v.Label, w.Week, SoftwareTable(w, v))
}

// renderSoftwareTable formats the attribution table from sorted rows.
func renderSoftwareTable(label string, week int, rows []SoftwareRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Webserver attribution (%s, week %d) — §4.2", label, week),
		"Server", "QUIC conns", "Spin conns", "Spin %")
	for _, r := range rows {
		t.AddRow(r.Software, report.Count(r.Conns), report.Count(r.SpinConns),
			stats.Percent(r.SpinConns, r.Conns))
	}
	return t
}
