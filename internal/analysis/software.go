package analysis

import (
	"fmt"
	"sort"

	"quicspin/internal/report"
	"quicspin/internal/stats"
)

// SoftwareRow attributes connections to webserver software via the HTTP
// Server header (§4.2 "Webserver support": the paper finds LiteSpeed
// behind >80 % of spinning connections, plus imunify360-webshield, which
// it suspects builds on LiteSpeed).
type SoftwareRow struct {
	Software  string
	Conns     int
	SpinConns int
}

// SoftwareTable aggregates QUIC connections by Server header for one view,
// restricted — like the paper — to connections where the header could be
// matched unambiguously (i.e. a response was received). Rows are ordered
// by spinning connections.
func SoftwareTable(w *Week, v View) []SoftwareRow {
	agg := map[string]*SoftwareRow{}
	for i := range w.Domains {
		da := &w.Domains[i]
		if !v.Match(da.Src) {
			continue
		}
		for j := range da.Src.Conns {
			c := &da.Src.Conns[j]
			if !c.QUIC || c.Server == "" {
				continue
			}
			r := agg[c.Server]
			if r == nil {
				r = &SoftwareRow{Software: c.Server}
				agg[c.Server] = r
			}
			r.Conns++
			if da.Conns[j].Class == ClassSpin || da.Conns[j].Class == ClassGrease {
				r.SpinConns++
			}
		}
	}
	rows := make([]SoftwareRow, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SpinConns != rows[j].SpinConns {
			return rows[i].SpinConns > rows[j].SpinConns
		}
		if rows[i].Conns != rows[j].Conns {
			return rows[i].Conns > rows[j].Conns
		}
		return rows[i].Software < rows[j].Software
	})
	return rows
}

// SpinShareOfSoftware returns the given software's share of all spinning
// connections in the view (the paper's ">80 % LiteSpeed" number).
func SpinShareOfSoftware(rows []SoftwareRow, software string) float64 {
	var total, match int
	for _, r := range rows {
		total += r.SpinConns
		if r.Software == software {
			match += r.SpinConns
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

// RenderSoftwareTable renders the §4.2 webserver attribution.
func RenderSoftwareTable(w *Week, v View) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Webserver attribution (%s, week %d) — §4.2", v.Label, w.Week),
		"Server", "QUIC conns", "Spin conns", "Spin %")
	for _, r := range SoftwareTable(w, v) {
		t.AddRow(r.Software, report.Count(r.Conns), report.Count(r.SpinConns),
			stats.Percent(r.SpinConns, r.Conns))
	}
	return t
}
