// Package analysis implements the paper's evaluation pipeline (§3.3, §4,
// §5): per-connection spin classification with the grease filter,
// spin-vs-stack RTT accuracy in received (R) and packet-number-sorted (S)
// order, per-list adoption aggregation (Tables 1, 3, 4), AS-organisation
// attribution (Table 2), longitudinal RFC-compliance histograms (Fig. 2),
// and the accuracy histograms (Figs. 3 and 4).
package analysis

import (
	"time"

	"quicspin/internal/asdb"
	"quicspin/internal/core"
	"quicspin/internal/scanner"
	"quicspin/internal/stats"
	"quicspin/internal/websim"
)

// Class is the paper's per-connection (and per-domain) spin classification
// of Table 3.
type Class int

const (
	// ClassNone marks connections without QUIC or without 1-RTT packets.
	ClassNone Class = iota
	// ClassAllZero: spin bit constantly 0.
	ClassAllZero
	// ClassAllOne: spin bit constantly 1.
	ClassAllOne
	// ClassSpin: spin flips and the grease filter did not fire.
	ClassSpin
	// ClassGrease: spin flips but some spin RTT estimate undercuts the
	// stack's minimum RTT — presumed per-packet greasing (§3.3).
	ClassGrease
)

// String returns the Table 3 column name.
func (c Class) String() string {
	switch c {
	case ClassAllZero:
		return "All Zero"
	case ClassAllOne:
		return "All One"
	case ClassSpin:
		return "Spin"
	case ClassGrease:
		return "Grease"
	default:
		return "None"
	}
}

// Conn is the full per-connection analysis.
type Conn struct {
	Class Class
	// SpinRTTsR/S are the spin-bit RTT estimates in received order and
	// after sorting by packet number.
	SpinRTTsR, SpinRTTsS []time.Duration
	// SpinMeanR/S are their means (0 when no samples).
	SpinMeanR, SpinMeanS time.Duration
	// StackMean is the mean of the QUIC stack's accepted samples.
	StackMean time.Duration
	// AbsR/S = spin − stack (§5.1 method 1); only meaningful when both
	// means exist.
	AbsR, AbsS time.Duration
	// RatioR/S is the mapped ratio of means (§5.1 method 2): always
	// divides by the smaller mean, negated when spin < stack.
	RatioR, RatioS float64
	// HasAccuracy reports that both a spin and a stack mean exist, i.e.
	// the connection contributes to Figs. 3 and 4.
	HasAccuracy bool
}

// AnalyzeConn runs the §3.3 methodology on one connection record.
func AnalyzeConn(c *scanner.ConnResult) Conn {
	out := Conn{}
	switch c.Kind() {
	case core.KindEmpty:
		out.Class = ClassNone
		return out
	case core.KindAllZero:
		out.Class = ClassAllZero
		return out
	case core.KindAllOne:
		out.Class = ClassAllOne
		return out
	}
	// Flipping: compute spin RTTs both ways.
	out.SpinRTTsR = core.SpinRTTs(c.Observations, false)
	out.SpinRTTsS = core.SpinRTTs(c.Observations, true)
	out.SpinMeanR = meanDur(out.SpinRTTsR)
	out.SpinMeanS = meanDur(out.SpinRTTsS)
	out.StackMean = meanDur(c.StackRTTs)

	// Grease filter (§3.3): any spin estimate below the stack's minimum
	// marks the connection as presumably greased. A small guard band
	// absorbs sub-millisecond scheduling noise: genuine per-packet
	// greasing produces edges between back-to-back packets, i.e. samples
	// orders of magnitude below min_rtt, while honest spin cycles can tie
	// with min_rtt to within timestamp precision (the false positives the
	// paper itself observes in §5.2).
	out.Class = ClassSpin
	stackMin := c.StackMin()
	if stackMin > greaseGuard {
		for _, s := range out.SpinRTTsR {
			if s < stackMin-greaseGuard {
				out.Class = ClassGrease
				break
			}
		}
	}
	if out.SpinMeanR > 0 && out.StackMean > 0 {
		out.HasAccuracy = true
		out.AbsR = out.SpinMeanR - out.StackMean
		out.AbsS = out.SpinMeanS - out.StackMean
		out.RatioR = mappedRatio(out.SpinMeanR, out.StackMean)
		out.RatioS = mappedRatio(out.SpinMeanS, out.StackMean)
	}
	return out
}

// greaseGuard is the tolerance below min_rtt before the grease filter
// fires.
const greaseGuard = time.Millisecond

// mappedRatio implements §5.1: divide the larger mean by the smaller one
// and negate the result when spin underestimates.
func mappedRatio(spin, stack time.Duration) float64 {
	if spin == 0 || stack == 0 {
		return 0
	}
	if spin >= stack {
		return float64(spin) / float64(stack)
	}
	return -float64(stack) / float64(spin)
}

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

// DomainClass derives the Table 3 per-domain classification from its
// connections: spin activity wins over greasing, which wins over the
// fixed-value categories.
func DomainClass(conns []Conn) Class {
	best := ClassNone
	for i := range conns {
		c := conns[i].Class
		switch {
		case c == ClassSpin:
			return ClassSpin
		case c == ClassGrease && best != ClassSpin:
			best = ClassGrease
		case c == ClassAllOne && best < ClassAllOne:
			best = ClassAllOne
		case c == ClassAllZero && best < ClassAllZero:
			best = ClassAllZero
		}
	}
	return best
}

// Week is a fully analysed measurement run.
type Week struct {
	Week int
	IPv6 bool
	// Domains mirrors the scan result's order.
	Domains []DomainAnalysis
}

// DomainAnalysis carries per-domain classification plus per-conn analyses.
type DomainAnalysis struct {
	Src   *scanner.DomainResult
	Conns []Conn
	Class Class
}

// Analyze runs the pipeline over one scan result.
func Analyze(r *scanner.Result) *Week {
	w := &Week{Week: r.Week, IPv6: r.IPv6, Domains: make([]DomainAnalysis, len(r.Domains))}
	for i := range r.Domains {
		d := &r.Domains[i]
		da := DomainAnalysis{Src: d, Conns: make([]Conn, len(d.Conns))}
		for j := range d.Conns {
			da.Conns[j] = AnalyzeConn(&d.Conns[j])
		}
		da.Class = DomainClass(da.Conns)
		w.Domains[i] = da
	}
	return w
}

// View selects which domains contribute to a table row.
type View struct {
	Label string
	Match func(d *scanner.DomainResult) bool
}

// StandardViews returns the paper's three list views.
func StandardViews() []View {
	return []View{
		{Label: "Toplists", Match: func(d *scanner.DomainResult) bool { return d.Toplist }},
		{Label: "CZDS", Match: func(d *scanner.DomainResult) bool { return websim.InZoneView(d.TLD) }},
		{Label: "com/net/org", Match: func(d *scanner.DomainResult) bool { return websim.ComNetOrg(d.TLD) }},
	}
}

// OverviewRow is one block of Table 1 / Table 4.
type OverviewRow struct {
	Label                                                   string
	TotalDomains, ResolvedDomains, QUICDomains, SpinDomains int
	TotalIPs, QUICIPs, SpinIPs                              int
}

// Overview aggregates the Table 1/4 counts for one view by driving the
// same fold the streaming Accumulator uses.
func Overview(w *Week, v View) OverviewRow {
	f := newOverviewFold(v)
	for i := range w.Domains {
		f.add(&w.Domains[i])
	}
	return f.finish()
}

// ConfigRow is one row of Table 3.
type ConfigRow struct {
	Label                               string
	QUICDomains                         int
	AllZero, AllOne, Spin, Grease, None int
}

// SpinConfig aggregates the Table 3 classification for one view.
func SpinConfig(w *Week, v View) ConfigRow {
	f := newConfigFold(v)
	for i := range w.Domains {
		f.add(&w.Domains[i])
	}
	return f.row
}

// OrgRow is one row of Table 2.
type OrgRow struct {
	Org        string
	Rank       int // 1-based by total connections
	TotalConns int
	SpinConns  int
	SpinRank   int // 1-based by spin connections; 0 when none
}

// OrgTable attributes QUIC connections to AS organisations via the
// IP→ASN→org resolver and returns rows ranked by connection count; orgs
// beyond topN are merged into an "<other>" row appended last.
func OrgTable(w *Week, res *asdb.Resolver, v View, topN int) []OrgRow {
	f := newOrgFold(v, res)
	for i := range w.Domains {
		f.add(&w.Domains[i])
	}
	return f.finish(topN)
}

// --- Fig. 2: longitudinal RFC compliance --------------------------------

// Longitudinal is the Fig. 2 dataset.
type Longitudinal struct {
	Weeks int
	// EverSpun is the number of domains with spin activity in any week.
	EverSpun int
	// Considered is the subset with a working QUIC connection every week.
	Considered int
	// Share[k] is the fraction of considered domains that spun in exactly
	// k weeks (k = 0..Weeks).
	Share []float64
	// RFC9000 and RFC9312 are the binomial reference shares for disabling
	// on one in 16 / one in 8 connections.
	RFC9000, RFC9312 []float64
}

// Longitudinally computes the Fig. 2 histogram from one analysed run per
// week. Domains are matched by name, so the weekly runs may come from
// independently loaded qlog sets.
func Longitudinally(weeks []*Week) Longitudinal {
	f := newLongFold()
	for _, w := range weeks {
		for i := range w.Domains {
			f.add(&w.Domains[i])
		}
	}
	return f.finish(len(weeks))
}

// rfcShares computes the theoretical share of domains spinning in k of n
// weeks when the spin bit is disabled on one in disableN connections:
// Binomial(n, 1−1/disableN).
func rfcShares(n, disableN int) []float64 {
	p := 1 - 1/float64(disableN)
	out := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		out[k] = stats.BinomialPMF(n, k, p)
	}
	return out
}

// --- Figs. 3 and 4: accuracy histograms ---------------------------------

// AccuracySet selects which connections feed a histogram.
type AccuracySet struct {
	// Class is ClassSpin or ClassGrease.
	Class Class
	// Sorted selects the packet-number-sorted (S) variant over received
	// order (R).
	Sorted bool
}

// Fig3Edges are the absolute-difference bins in milliseconds.
var Fig3Edges = []float64{-200, -100, -50, -25, 0, 25, 50, 100, 200}

// Fig4Edges are the mapped-ratio bins (values lie in (−∞,−1] ∪ [1,∞)).
var Fig4Edges = []float64{-3, -2, -1.25, 1.25, 2, 3}

// AbsHistogram builds the Fig. 3 histogram (absolute difference of means,
// in milliseconds) over connections in the given set.
func AbsHistogram(weeks []*Week, set AccuracySet) *stats.Histogram {
	h := stats.NewHistogram(Fig3Edges)
	eachAccuracyConn(weeks, set.Class, func(c *Conn) {
		d := c.AbsR
		if set.Sorted {
			d = c.AbsS
		}
		h.Add(float64(d) / float64(time.Millisecond))
	})
	return h
}

// RatioHistogram builds the Fig. 4 histogram (mapped ratio of means).
func RatioHistogram(weeks []*Week, set AccuracySet) *stats.Histogram {
	h := stats.NewHistogram(Fig4Edges)
	eachAccuracyConn(weeks, set.Class, func(c *Conn) {
		r := c.RatioR
		if set.Sorted {
			r = c.RatioS
		}
		h.Add(r)
	})
	return h
}

func eachAccuracyConn(weeks []*Week, class Class, fn func(c *Conn)) {
	for _, w := range weeks {
		for i := range w.Domains {
			for j := range w.Domains[i].Conns {
				c := &w.Domains[i].Conns[j]
				if c.Class == class && c.HasAccuracy {
					fn(c)
				}
			}
		}
	}
}

// ReorderingImpact quantifies §5.2's R-vs-S comparison.
type ReorderingImpact struct {
	// Conns is the number of accuracy-contributing connections.
	Conns int
	// Differing is how many have different R and S means.
	Differing int
	// Sub1ms is how many differing connections change by less than 1 ms.
	Sub1ms int
	// Improved is how many differing connections move closer to the stack
	// estimate after sorting.
	Improved int
}

// Reordering computes the impact of packet reordering on spin estimates.
func Reordering(weeks []*Week) ReorderingImpact {
	var out ReorderingImpact
	eachAccuracyConn(weeks, ClassSpin, func(c *Conn) {
		out.Conns++
		if c.SpinMeanR == c.SpinMeanS {
			return
		}
		out.Differing++
		diff := c.SpinMeanR - c.SpinMeanS
		if diff < 0 {
			diff = -diff
		}
		if diff < time.Millisecond {
			out.Sub1ms++
		}
		absR, absS := c.AbsR, c.AbsS
		if absR < 0 {
			absR = -absR
		}
		if absS < 0 {
			absS = -absS
		}
		if absS < absR {
			out.Improved++
		}
	})
	return out
}
