package analysis

import (
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/scanner"
)

// flipConn builds a connection whose received-order spin series produces
// exactly the given RTT samples: the first edge sits one arbitrary gap
// after the series start, and each sample is the spacing to the next edge.
func flipConn(stackRTTs []time.Duration, samples ...time.Duration) *scanner.ConnResult {
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	c := &scanner.ConnResult{QUIC: true, Status: 200, StackRTTs: stackRTTs}
	spin := false
	add := func(t time.Time) {
		c.Observations = append(c.Observations, core.Observation{
			T: t, PN: uint64(len(c.Observations)), Spin: spin,
		})
		if spin {
			c.OnePkts++
		} else {
			c.ZeroPkts++
		}
	}
	add(base) // pre-edge packet establishing the initial value
	at := base.Add(5 * time.Millisecond)
	spin = true
	add(at) // first edge: no sample yet
	for _, s := range samples {
		at = at.Add(s)
		spin = !spin
		add(at) // each further edge completes one sample
	}
	return c
}

// TestGreaseGuardBand pins the 1 ms guard band of the §3.3 grease filter:
// a spin estimate only marks the connection as greased when it undercuts
// the stack's minimum RTT by more than the guard, so honest spin cycles
// that tie with min_rtt — even exactly at the band edge — stay ClassSpin,
// while genuine sub-millisecond per-packet greasing is caught.
func TestGreaseGuardBand(t *testing.T) {
	const stackMin = 10 * time.Millisecond
	stack := []time.Duration{12 * time.Millisecond, stackMin, 11 * time.Millisecond}
	cases := []struct {
		name    string
		conn    *scanner.ConnResult
		want    Class
		samples int
	}{
		{
			name:    "sample equals stack minimum",
			conn:    flipConn(stack, stackMin),
			want:    ClassSpin,
			samples: 1,
		},
		{
			name: "exact tie with the guard band edge",
			// stackMin − guard is NOT below the threshold: the filter only
			// fires on samples strictly under stackMin − 1 ms.
			conn:    flipConn(stack, stackMin-greaseGuard),
			want:    ClassSpin,
			samples: 1,
		},
		{
			name:    "one nanosecond below the band",
			conn:    flipConn(stack, stackMin-greaseGuard-time.Nanosecond),
			want:    ClassGrease,
			samples: 1,
		},
		{
			name:    "one nanosecond above the band",
			conn:    flipConn(stack, stackMin-greaseGuard+time.Nanosecond),
			want:    ClassSpin,
			samples: 1,
		},
		{
			name: "genuine per-packet grease",
			// Edges between back-to-back packets: samples orders of
			// magnitude below min_rtt.
			conn:    flipConn(stack, 50*time.Microsecond, 80*time.Microsecond, 40*time.Microsecond),
			want:    ClassGrease,
			samples: 3,
		},
		{
			name: "honest samples hide one outlier",
			// A single undercutting sample suffices; the honest majority
			// does not rescue the connection.
			conn:    flipConn(stack, stackMin, 11*time.Millisecond, 200*time.Microsecond),
			want:    ClassGrease,
			samples: 3,
		},
		{
			name: "guard disabled at tiny stack minimum",
			// stackMin == 1 ms is not > greaseGuard: the filter cannot
			// distinguish greasing from timing noise and stays off, so even
			// a sub-millisecond sample keeps the connection ClassSpin.
			conn:    flipConn([]time.Duration{time.Millisecond}, 100*time.Microsecond),
			want:    ClassSpin,
			samples: 1,
		},
		{
			name: "guard active just above the disable point",
			// stackMin = 1.5 ms: samples below 0.5 ms trip the filter.
			conn:    flipConn([]time.Duration{1500 * time.Microsecond}, 400*time.Microsecond),
			want:    ClassGrease,
			samples: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AnalyzeConn(tc.conn)
			if len(got.SpinRTTsR) != tc.samples {
				t.Fatalf("constructed series produced %d received-order samples, want %d (%v)",
					len(got.SpinRTTsR), tc.samples, got.SpinRTTsR)
			}
			if got.Class != tc.want {
				t.Errorf("class = %v, want %v (samples %v, stack min %v)",
					got.Class, tc.want, got.SpinRTTsR, tc.conn.StackMin())
			}
		})
	}
}
