package analysis

import (
	"encoding/binary"
	"fmt"
	"sort"

	"quicspin/internal/asdb"
	"quicspin/internal/hostile"
	"quicspin/internal/resilience"
	"quicspin/internal/stats"
)

// Serialized accumulators (wire format version 1).
//
// The distributed coordinator ships accumulators between shard workers and
// the merge process (internal/shard, optionally over internal/udprun), so
// the encoding is:
//
//   - compact: uvarint counters, no field names, histogram bin edges are
//     implied by the analysis constants (Fig3Edges/Fig4Edges);
//   - canonical: every map serializes in sorted key order and the decoder
//     rejects out-of-order or duplicate keys, so Marshal is a pure function
//     of the fold state and Marshal→Unmarshal→Marshal is byte-stable;
//   - hostile-proof: the decoder bounds every allocation by the remaining
//     input size and rejects truncated, trailing or inconsistent bytes with
//     an error — never a panic (FuzzAccumulatorUnmarshal pins this);
//   - versioned: a two-byte magic plus a version byte, so a future format
//     change fails loudly against old workers instead of misdecoding.
//
// Layout: "qs" version kind body, where kind is 'W' (one week accumulator)
// or 'C' (a campaign: the longitudinal fold plus every week body in
// (Week, IPv6) order). Derivable state (per-IP counts, ranks, histogram
// totals, everSpun flags) is never serialized — finish() recomputes it.

const (
	codecMagic0  = 'q'
	codecMagic1  = 's'
	codecVersion = 1

	kindWeek     byte = 'W'
	kindCampaign byte = 'C'
)

// ipFlagQUIC/ipFlagSpin encode one ipState.
const (
	ipFlagQUIC = 1
	ipFlagSpin = 2
)

// --- encoder ------------------------------------------------------------

type codecEnc struct{ b []byte }

func newCodecEnc(kind byte) *codecEnc {
	return &codecEnc{b: append(make([]byte, 0, 1024), codecMagic0, codecMagic1, codecVersion, kind)}
}

func (e *codecEnc) uint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// count encodes a non-negative fold counter.
func (e *codecEnc) count(v int) { e.uint(uint64(v)) }

func (e *codecEnc) str(s string) {
	e.uint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *codecEnc) flag(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// --- decoder ------------------------------------------------------------

type codecDec struct{ b []byte }

func decErr(format string, args ...any) error {
	return fmt.Errorf("analysis: unmarshal: "+format, args...)
}

func (d *codecDec) uint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, decErr("truncated or oversized varint")
	}
	d.b = d.b[n:]
	return v, nil
}

// count decodes a non-negative counter that must fit in an int.
func (d *codecDec) count() (int, error) {
	v, err := d.uint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, decErr("counter %d overflows int", v)
	}
	return int(v), nil
}

// length decodes a collection length whose entries occupy at least min
// bytes each, bounding attacker-driven allocations by the input size.
func (d *codecDec) length(min int) (int, error) {
	n, err := d.count()
	if err != nil {
		return 0, err
	}
	if n*min > len(d.b) || n < 0 || n*min < 0 {
		return 0, decErr("length %d exceeds remaining input", n)
	}
	return n, nil
}

func (d *codecDec) str() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	if n > len(d.b) {
		return "", decErr("string length %d exceeds remaining input", n)
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *codecDec) flag() (bool, error) {
	if len(d.b) == 0 {
		return false, decErr("truncated flag")
	}
	v := d.b[0]
	if v > 1 {
		return false, decErr("flag byte %d is not 0 or 1", v)
	}
	d.b = d.b[1:]
	return v == 1, nil
}

func codecHeader(data []byte) (*codecDec, byte, error) {
	if len(data) < 4 {
		return nil, 0, decErr("input shorter than the header")
	}
	if data[0] != codecMagic0 || data[1] != codecMagic1 {
		return nil, 0, decErr("bad magic %q", data[:2])
	}
	if data[2] != codecVersion {
		return nil, 0, decErr("unsupported version %d (want %d)", data[2], codecVersion)
	}
	return &codecDec{b: data[4:]}, data[3], nil
}

// --- week accumulator ---------------------------------------------------

// Marshal serializes the accumulator's aggregate state (wire format
// version 1). The campaign longitudinal fold is campaign-owned and not
// included — serialize the CampaignAccumulator to carry it.
func (a *Accumulator) Marshal() []byte {
	e := newCodecEnc(kindWeek)
	encodeAccBody(e, a)
	return e.b
}

// UnmarshalAccumulator decodes a week accumulator serialized by Marshal.
// res resolves IPs to organisations for further Adds into the decoded
// accumulator (pass the world's resolver, as with NewAccumulator); decoding
// itself never consults it. Hostile input yields an error, never a panic.
func UnmarshalAccumulator(data []byte, res *asdb.Resolver) (*Accumulator, error) {
	d, kind, err := codecHeader(data)
	if err != nil {
		return nil, err
	}
	if kind != kindWeek {
		return nil, decErr("kind %q is not a week accumulator", kind)
	}
	a, err := decodeAccBody(d, res)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, decErr("%d trailing bytes", len(d.b))
	}
	return a, nil
}

func encodeAccBody(e *codecEnc, a *Accumulator) {
	e.count(a.Week)
	e.flag(a.IPv6)
	e.count(len(a.views))
	for i, v := range a.views {
		e.str(v.Label)
		ov := &a.overview[i].row
		e.count(ov.TotalDomains)
		e.count(ov.ResolvedDomains)
		e.count(ov.QUICDomains)
		e.count(ov.SpinDomains)
		encodeIPStates(e, a.overview[i].ips)
		cf := &a.config[i].row
		e.count(cf.QUICDomains)
		e.count(cf.AllZero)
		e.count(cf.AllOne)
		e.count(cf.Spin)
		e.count(cf.Grease)
		e.count(cf.None)
	}
	encodeOrgTotals(e, a.orgs.totals)
	encodeSoftware(e, a.software.agg)
	encodeErrors(e, a.errs)
	encodeAccuracy(e, a.acc)
}

func decodeAccBody(d *codecDec, res *asdb.Resolver) (*Accumulator, error) {
	week, err := d.count()
	if err != nil {
		return nil, err
	}
	ipv6, err := d.flag()
	if err != nil {
		return nil, err
	}
	a := NewAccumulator(week, ipv6, res)
	nv, err := d.count()
	if err != nil {
		return nil, err
	}
	if nv != len(a.views) {
		return nil, decErr("view count %d (want %d)", nv, len(a.views))
	}
	for i := range a.views {
		label, err := d.str()
		if err != nil {
			return nil, err
		}
		if label != a.views[i].Label {
			return nil, decErr("view %d label %q (want %q)", i, label, a.views[i].Label)
		}
		ov := &a.overview[i].row
		if err := decodeCounts(d, &ov.TotalDomains, &ov.ResolvedDomains, &ov.QUICDomains, &ov.SpinDomains); err != nil {
			return nil, err
		}
		if err := decodeIPStates(d, a.overview[i].ips); err != nil {
			return nil, err
		}
		cf := &a.config[i].row
		if err := decodeCounts(d, &cf.QUICDomains, &cf.AllZero, &cf.AllOne, &cf.Spin, &cf.Grease, &cf.None); err != nil {
			return nil, err
		}
	}
	if err := decodeOrgTotals(d, a.orgs.totals); err != nil {
		return nil, err
	}
	if err := decodeSoftware(d, a.software.agg); err != nil {
		return nil, err
	}
	if err := decodeErrors(d, a.errs); err != nil {
		return nil, err
	}
	if err := decodeAccuracy(d, a.acc); err != nil {
		return nil, err
	}
	return a, nil
}

func decodeCounts(d *codecDec, dst ...*int) error {
	for _, p := range dst {
		v, err := d.count()
		if err != nil {
			return err
		}
		*p = v
	}
	return nil
}

func encodeIPStates(e *codecEnc, ips map[string]*ipState) {
	keys := sortedKeys(ips)
	e.count(len(keys))
	for _, ip := range keys {
		e.str(ip)
		var f byte
		if ips[ip].quic {
			f |= ipFlagQUIC
		}
		if ips[ip].spin {
			f |= ipFlagSpin
		}
		e.b = append(e.b, f)
	}
}

func decodeIPStates(d *codecDec, ips map[string]*ipState) error {
	n, err := d.length(3) // key length + ≥1 key byte + flags
	if err != nil {
		return err
	}
	prev := ""
	for i := 0; i < n; i++ {
		ip, err := d.str()
		if err != nil {
			return err
		}
		if ip == "" || (i > 0 && ip <= prev) {
			return decErr("IP keys not strictly ascending (%q after %q)", ip, prev)
		}
		prev = ip
		if len(d.b) == 0 {
			return decErr("truncated IP flags")
		}
		f := d.b[0]
		d.b = d.b[1:]
		// Flags 0 is a real state: an IP seen only on failed connection
		// attempts counts toward TotalIPs but neither QUICIPs nor SpinIPs.
		if f > ipFlagQUIC|ipFlagSpin {
			return decErr("bad IP flags %d", f)
		}
		ips[ip] = &ipState{quic: f&ipFlagQUIC != 0, spin: f&ipFlagSpin != 0}
	}
	return nil
}

func encodeOrgTotals(e *codecEnc, totals map[string]*OrgRow) {
	keys := sortedKeys(totals)
	e.count(len(keys))
	for _, org := range keys {
		e.str(org)
		e.count(totals[org].TotalConns)
		e.count(totals[org].SpinConns)
	}
}

func decodeOrgTotals(d *codecDec, totals map[string]*OrgRow) error {
	n, err := d.length(3)
	if err != nil {
		return err
	}
	prev := ""
	for i := 0; i < n; i++ {
		org, err := d.str()
		if err != nil {
			return err
		}
		if org == "" || (i > 0 && org <= prev) {
			return decErr("org keys not strictly ascending (%q after %q)", org, prev)
		}
		prev = org
		r := &OrgRow{Org: org}
		if err := decodeCounts(d, &r.TotalConns, &r.SpinConns); err != nil {
			return err
		}
		if r.TotalConns == 0 || r.SpinConns > r.TotalConns {
			return decErr("org %q counts %d/%d are inconsistent", org, r.SpinConns, r.TotalConns)
		}
		totals[org] = r
	}
	return nil
}

func encodeSoftware(e *codecEnc, agg map[string]*SoftwareRow) {
	keys := sortedKeys(agg)
	e.count(len(keys))
	for _, sw := range keys {
		e.str(sw)
		e.count(agg[sw].Conns)
		e.count(agg[sw].SpinConns)
	}
}

func decodeSoftware(d *codecDec, agg map[string]*SoftwareRow) error {
	n, err := d.length(3)
	if err != nil {
		return err
	}
	prev := ""
	for i := 0; i < n; i++ {
		sw, err := d.str()
		if err != nil {
			return err
		}
		if sw == "" || (i > 0 && sw <= prev) {
			return decErr("software keys not strictly ascending (%q after %q)", sw, prev)
		}
		prev = sw
		r := &SoftwareRow{Software: sw}
		if err := decodeCounts(d, &r.Conns, &r.SpinConns); err != nil {
			return err
		}
		if r.Conns == 0 || r.SpinConns > r.Conns {
			return decErr("software %q counts %d/%d are inconsistent", sw, r.SpinConns, r.Conns)
		}
		agg[sw] = r
	}
	return nil
}

func encodeErrors(e *codecEnc, f *errorClassFold) {
	e.count(f.total)
	classes := make([]int, 0, len(f.classes))
	for cls := range f.classes {
		classes = append(classes, int(cls))
	}
	sort.Ints(classes)
	e.count(len(classes))
	for _, cls := range classes {
		e.count(cls)
		e.count(f.classes[resilience.Class(cls)])
	}
	profiles := make([]int, 0, len(f.profiles))
	for p := range f.profiles {
		profiles = append(profiles, int(p))
	}
	sort.Ints(profiles)
	e.count(len(profiles))
	for _, p := range profiles {
		e.count(p)
		e.count(f.profiles[hostile.Profile(p)])
	}
}

func decodeErrors(d *codecDec, f *errorClassFold) error {
	total, err := d.count()
	if err != nil {
		return err
	}
	f.total = total
	n, err := d.length(2)
	if err != nil {
		return err
	}
	prev := -1
	for i := 0; i < n; i++ {
		cls, err := d.count()
		if err != nil {
			return err
		}
		if cls <= prev {
			return decErr("error classes not strictly ascending (%d after %d)", cls, prev)
		}
		prev = cls
		c, err := d.count()
		if err != nil {
			return err
		}
		if c == 0 {
			return decErr("error class %d has a zero count", cls)
		}
		f.classes[resilience.Class(cls)] = c
	}
	n, err = d.length(2)
	if err != nil {
		return err
	}
	prev = -1
	for i := 0; i < n; i++ {
		p, err := d.count()
		if err != nil {
			return err
		}
		if p <= prev {
			return decErr("hostile profiles not strictly ascending (%d after %d)", p, prev)
		}
		prev = p
		c, err := d.count()
		if err != nil {
			return err
		}
		if c == 0 {
			return decErr("hostile profile %d has a zero count", p)
		}
		f.profiles[hostile.Profile(p)] = c
	}
	return nil
}

func encodeAccuracy(e *codecEnc, f *accuracyFold) {
	for i := range f.abs {
		encodeHistogram(e, f.abs[i])
		encodeHistogram(e, f.ratio[i])
	}
	e.count(f.n)
	e.count(f.over)
	e.count(f.w25)
	e.count(f.o200)
	e.count(f.w125)
	e.count(f.w2)
	e.count(f.o3)
}

func decodeAccuracy(d *codecDec, f *accuracyFold) error {
	for i := range f.abs {
		if err := decodeHistogram(d, f.abs[i]); err != nil {
			return err
		}
		if err := decodeHistogram(d, f.ratio[i]); err != nil {
			return err
		}
	}
	return decodeCounts(d, &f.n, &f.over, &f.w25, &f.o200, &f.w125, &f.w2, &f.o3)
}

// encodeHistogram writes the counts only: the edges are fixed analysis
// constants and N is the derived total.
func encodeHistogram(e *codecEnc, h *stats.Histogram) {
	e.count(h.Underflow)
	e.count(h.Overflow)
	for _, c := range h.Counts {
		e.count(c)
	}
}

func decodeHistogram(d *codecDec, h *stats.Histogram) error {
	if err := decodeCounts(d, &h.Underflow, &h.Overflow); err != nil {
		return err
	}
	h.N = h.Underflow + h.Overflow
	for i := range h.Counts {
		c, err := d.count()
		if err != nil {
			return err
		}
		h.Counts[i] = c
		h.N += c
	}
	return nil
}

// --- campaign -----------------------------------------------------------

// Marshal serializes the whole campaign: the longitudinal fold plus every
// started week, in (Week, IPv6) order.
func (c *CampaignAccumulator) Marshal() []byte {
	e := newCodecEnc(kindCampaign)
	names := sortedKeys(c.long.domains)
	e.count(len(names))
	for _, name := range names {
		t := c.long.domains[name]
		// everSpun is derivable (spinWeeks > 0) and not serialized.
		e.str(name)
		e.count(t.quicWeeks)
		e.count(t.spinWeeks)
	}
	e.count(len(c.weeks))
	for _, a := range c.weeks {
		encodeAccBody(e, a)
	}
	return e.b
}

// UnmarshalCampaign decodes a campaign serialized by CampaignAccumulator
// Marshal; see UnmarshalAccumulator for the res parameter and the error
// contract.
func UnmarshalCampaign(data []byte, res *asdb.Resolver) (*CampaignAccumulator, error) {
	d, kind, err := codecHeader(data)
	if err != nil {
		return nil, err
	}
	if kind != kindCampaign {
		return nil, decErr("kind %q is not a campaign", kind)
	}
	c := NewCampaignAccumulator()
	n, err := d.length(3)
	if err != nil {
		return nil, err
	}
	prev := ""
	for i := 0; i < n; i++ {
		t := &longTrack{}
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		if name == "" || (i > 0 && name <= prev) {
			return nil, decErr("domain names not strictly ascending (%q after %q)", name, prev)
		}
		prev = name
		if err := decodeCounts(d, &t.quicWeeks, &t.spinWeeks); err != nil {
			return nil, err
		}
		if t.spinWeeks > t.quicWeeks {
			return nil, decErr("domain %q spun in %d of %d QUIC weeks", name, t.spinWeeks, t.quicWeeks)
		}
		t.everSpun = t.spinWeeks > 0
		c.long.domains[name] = t
	}
	nw, err := d.length(5)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nw; i++ {
		a, err := decodeAccBody(d, res)
		if err != nil {
			return nil, err
		}
		if last := len(c.weeks) - 1; last >= 0 {
			w := c.weeks[last]
			if a.Week < w.Week || (a.Week == w.Week && (!a.IPv6 || w.IPv6)) {
				return nil, decErr("weeks not strictly ascending (week %d after %d)", a.Week, w.Week)
			}
		}
		a.long = c.long
		c.weeks = append(c.weeks, a)
	}
	if len(d.b) != 0 {
		return nil, decErr("%d trailing bytes", len(d.b))
	}
	return c, nil
}

// clone deep-copies an accumulator by round-tripping it through the wire
// format (the live dashboard snapshots shard accumulators this way). The
// encoding is total over fold states, so the round-trip cannot fail.
func (a *Accumulator) clone() *Accumulator {
	c, err := UnmarshalAccumulator(a.Marshal(), a.orgs.res)
	if err != nil {
		panic("analysis: clone round-trip failed: " + err.Error())
	}
	return c
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
