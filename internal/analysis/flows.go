package analysis

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"quicspin/internal/flowtable"
	"quicspin/internal/report"
)

// RenderFlowOverview summarises a flowtable snapshot's lifetime counters
// as one table row: the passive-observation analogue of the campaign
// progress line.
func RenderFlowOverview(snap *flowtable.Snapshot) *report.Table {
	st := snap.Stats
	t := report.NewTable("Passive observer — flow table",
		"Active", "Admitted", "EvictIdle", "EvictLRU", "Datagrams", "Packets", "ParseErrs", "Edges", "Samples", "CIDChg")
	t.AddRow(
		report.Count(st.ActiveFlows), report.Count(int(st.NewFlows)),
		report.Count(int(st.EvictedIdle)), report.Count(int(st.EvictedLRU)),
		report.Count(int(st.Datagrams)), report.Count(int(st.Packets)),
		report.Count(int(st.ParseErrors)), report.Count(int(st.Edges)),
		report.Count(int(st.Samples)), report.Count(int(st.CIDChanges)))
	return t
}

// RenderFlowHistogram renders the aggregate spin-RTT histogram.
func RenderFlowHistogram(snap *flowtable.Snapshot) *report.Table {
	t := report.NewTable("Spin-RTT distribution (all flows)", "Bucket", "Samples")
	for i, c := range snap.HistCounts {
		label := "+inf"
		if i < len(snap.HistBounds) {
			label = "≤ " + snap.HistBounds[i].String()
		}
		t.AddRow(label, report.Count(int(c)))
	}
	return t
}

// RenderSlowestFlows renders the top-K flows by mean spin RTT.
func RenderSlowestFlows(snap *flowtable.Snapshot) *report.Table {
	t := report.NewTable("Slowest flows by mean spin RTT",
		"Flow", "Pkts→", "Pkts←", "Edges", "Samples", "Mean", "Min", "Max", "Last", "Age")
	for i := range snap.Slowest {
		f := &snap.Slowest[i]
		t.AddRow(
			f.Key,
			report.Count(int(f.Packets[0])), report.Count(int(f.Packets[1])),
			report.Count(int(f.Edges[0])+int(f.Edges[1])),
			report.Count(int(f.Samples)),
			f.MeanRTT.Round(time.Microsecond).String(),
			f.MinRTT.Round(time.Microsecond).String(),
			f.MaxRTT.Round(time.Microsecond).String(),
			f.LastRTT.Round(time.Microsecond).String(),
			f.LastSeen.Sub(f.FirstSeen).Round(time.Millisecond).String())
	}
	return t
}

// RenderFlowDashboard renders the full plain-text flow dashboard.
func RenderFlowDashboard(snap *flowtable.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "passive flow observer — %s\n\n", time.Now().UTC().Format(time.RFC3339))
	b.WriteString(RenderFlowOverview(snap).String())
	b.WriteByte('\n')
	b.WriteString(RenderFlowHistogram(snap).String())
	b.WriteByte('\n')
	b.WriteString(RenderSlowestFlows(snap).String())
	return b.String()
}

// FlowsHandler serves the flowtable dashboard: plain text by default, the
// raw snapshot with ?format=json. topK bounds the slowest-flows table
// (≤ 0 means 10); ?k=N overrides per request up to 100.
func FlowsHandler(tbl *flowtable.Table, topK int) http.Handler {
	if topK <= 0 {
		topK = 10
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		k := topK
		if v := req.URL.Query().Get("k"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 100 {
				k = n
			}
		}
		snap := tbl.Snapshot(k, req.URL.Query().Get("flows") == "all")
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(&snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprint(w, RenderFlowDashboard(&snap))
	})
}
