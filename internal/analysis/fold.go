package analysis

import (
	"sort"
	"time"

	"quicspin/internal/asdb"
	"quicspin/internal/hostile"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/stats"
)

// Fold objects: each aggregate's per-domain increment, shared between the
// batch functions (Overview, SpinConfig, OrgTable, SoftwareTable, the
// renderers) and the streaming Accumulator. Both paths execute the same
// add() methods, so a streamed campaign renders byte-identical tables to a
// batch-analysed one — the folds ARE the aggregation logic, the batch
// entry points merely drive them over a materialised Week.

// ipState tracks whether an IP ever carried a QUIC or spinning connection.
type ipState struct{ quic, spin bool }

// overviewFold accumulates one Table 1/4 row.
type overviewFold struct {
	v   View
	row OverviewRow
	ips map[string]*ipState
}

func newOverviewFold(v View) *overviewFold {
	return &overviewFold{v: v, row: OverviewRow{Label: v.Label}, ips: map[string]*ipState{}}
}

func (f *overviewFold) add(da *DomainAnalysis) {
	d := da.Src
	if !f.v.Match(d) {
		return
	}
	f.row.TotalDomains++
	if !d.Resolved {
		return
	}
	f.row.ResolvedDomains++
	if d.QUIC() {
		f.row.QUICDomains++
	}
	if da.Class == ClassSpin {
		f.row.SpinDomains++
	}
	for j := range d.Conns {
		c := &d.Conns[j]
		if !c.IP.IsValid() {
			continue
		}
		key := c.IP.String()
		st := f.ips[key]
		if st == nil {
			st = &ipState{}
			f.ips[key] = st
		}
		if c.QUIC {
			st.quic = true
		}
		if da.Conns[j].Class == ClassSpin {
			st.spin = true
		}
	}
}

// finish derives the per-IP counts; it does not mutate the fold and may be
// called repeatedly.
func (f *overviewFold) finish() OverviewRow {
	row := f.row
	for _, st := range f.ips {
		row.TotalIPs++
		if st.quic {
			row.QUICIPs++
		}
		if st.spin {
			row.SpinIPs++
		}
	}
	return row
}

// configFold accumulates one Table 3 row.
type configFold struct {
	v   View
	row ConfigRow
}

func newConfigFold(v View) *configFold {
	return &configFold{v: v, row: ConfigRow{Label: v.Label}}
}

func (f *configFold) add(da *DomainAnalysis) {
	if !f.v.Match(da.Src) || !da.Src.QUIC() {
		return
	}
	f.row.QUICDomains++
	switch da.Class {
	case ClassAllZero:
		f.row.AllZero++
	case ClassAllOne:
		f.row.AllOne++
	case ClassSpin:
		f.row.Spin++
	case ClassGrease:
		f.row.Grease++
	default:
		f.row.None++
	}
}

// orgFold accumulates Table 2 per-organisation connection counts.
type orgFold struct {
	v      View
	res    *asdb.Resolver
	totals map[string]*OrgRow
}

func newOrgFold(v View, res *asdb.Resolver) *orgFold {
	return &orgFold{v: v, res: res, totals: map[string]*OrgRow{}}
}

func (f *orgFold) add(da *DomainAnalysis) {
	if !f.v.Match(da.Src) {
		return
	}
	for j := range da.Src.Conns {
		c := &da.Src.Conns[j]
		if !c.QUIC {
			continue
		}
		org := f.res.OrgOf(c.IP)
		r := f.totals[org]
		if r == nil {
			r = &OrgRow{Org: org}
			f.totals[org] = r
		}
		r.TotalConns++
		if da.Conns[j].Class == ClassSpin || da.Conns[j].Class == ClassGrease {
			// Table 2 counts "connections with some spin bit activity".
			r.SpinConns++
		}
	}
}

// finish ranks organisations by connection count, merging the tail beyond
// topN into "<other>". Idempotent.
func (f *orgFold) finish(topN int) []OrgRow {
	rows := make([]OrgRow, 0, len(f.totals))
	for _, r := range f.totals {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalConns != rows[j].TotalConns {
			return rows[i].TotalConns > rows[j].TotalConns
		}
		return rows[i].Org < rows[j].Org
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
	// Spin ranks over the full set.
	bySpin := make([]int, len(rows))
	for i := range bySpin {
		bySpin[i] = i
	}
	sort.Slice(bySpin, func(a, b int) bool {
		return rows[bySpin[a]].SpinConns > rows[bySpin[b]].SpinConns
	})
	for rank, idx := range bySpin {
		if rows[idx].SpinConns > 0 {
			rows[idx].SpinRank = rank + 1
		}
	}
	if len(rows) <= topN {
		return rows
	}
	other := OrgRow{Org: "<other>"}
	for _, r := range rows[topN:] {
		other.TotalConns += r.TotalConns
		other.SpinConns += r.SpinConns
	}
	return append(rows[:topN:topN], other)
}

// softwareFold accumulates the §4.2 Server-header attribution.
type softwareFold struct {
	v   View
	agg map[string]*SoftwareRow
}

func newSoftwareFold(v View) *softwareFold {
	return &softwareFold{v: v, agg: map[string]*SoftwareRow{}}
}

func (f *softwareFold) add(da *DomainAnalysis) {
	if !f.v.Match(da.Src) {
		return
	}
	for j := range da.Src.Conns {
		c := &da.Src.Conns[j]
		if !c.QUIC || c.Server == "" {
			continue
		}
		r := f.agg[c.Server]
		if r == nil {
			r = &SoftwareRow{Software: c.Server}
			f.agg[c.Server] = r
		}
		r.Conns++
		if da.Conns[j].Class == ClassSpin || da.Conns[j].Class == ClassGrease {
			r.SpinConns++
		}
	}
}

// finish orders rows by spinning connections. Idempotent.
func (f *softwareFold) finish() []SoftwareRow {
	rows := make([]SoftwareRow, 0, len(f.agg))
	for _, r := range f.agg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SpinConns != rows[j].SpinConns {
			return rows[i].SpinConns > rows[j].SpinConns
		}
		if rows[i].Conns != rows[j].Conns {
			return rows[i].Conns > rows[j].Conns
		}
		return rows[i].Software < rows[j].Software
	})
	return rows
}

// errorClassFold accumulates the Table 5 error-class breakdown.
type errorClassFold struct {
	total    int
	classes  map[resilience.Class]int
	profiles map[hostile.Profile]int
}

func newErrorClassFold() *errorClassFold {
	return &errorClassFold{classes: map[resilience.Class]int{}, profiles: map[hostile.Profile]int{}}
}

func (f *errorClassFold) add(d *scanner.DomainResult) {
	for j := range d.Conns {
		c := &d.Conns[j]
		f.total++
		cls := resilience.Classify(c.Err)
		if cls == resilience.ClassNone {
			continue
		}
		f.classes[cls]++
		if cls == resilience.ClassHostile {
			f.profiles[hostile.ProfileOf(c.Err)]++
		}
	}
}

// longTrack is one domain's cross-week spin history (Fig. 2).
type longTrack struct {
	everSpun  bool
	quicWeeks int
	spinWeeks int
}

// longFold accumulates the Fig. 2 compliance histogram across weeks. It
// retains one small record per distinct domain name — the irreducible
// state of a cross-week join — but no per-domain scan rows.
type longFold struct {
	domains map[string]*longTrack
}

func newLongFold() *longFold { return &longFold{domains: map[string]*longTrack{}} }

// add folds one domain of one week; call it once per (domain, week).
func (f *longFold) add(da *DomainAnalysis) {
	t := f.domains[da.Src.Domain]
	if t == nil {
		t = &longTrack{}
		f.domains[da.Src.Domain] = t
	}
	if da.Src.QUIC() {
		t.quicWeeks++
	}
	if da.Class == ClassSpin {
		t.everSpun = true
		t.spinWeeks++
	}
}

// finish computes the Fig. 2 dataset for an n-week campaign. Idempotent.
func (f *longFold) finish(n int) Longitudinal {
	out := Longitudinal{Weeks: n}
	if n == 0 {
		return out
	}
	counts := make([]int, n+1)
	for _, t := range f.domains {
		if !t.everSpun {
			continue
		}
		out.EverSpun++
		if t.quicWeeks < n {
			continue // no working connection in every week (§4.3)
		}
		out.Considered++
		counts[t.spinWeeks]++
	}
	out.Share = make([]float64, n+1)
	for k := range counts {
		if out.Considered > 0 {
			out.Share[k] = float64(counts[k]) / float64(out.Considered)
		}
	}
	out.RFC9000 = rfcShares(n, 16)
	out.RFC9312 = rfcShares(n, 8)
	return out
}

// accuracySets enumerates the four Fig. 3/4 panels in render order.
var accuracySets = [4]AccuracySet{
	{Class: ClassSpin},
	{Class: ClassSpin, Sorted: true},
	{Class: ClassGrease},
	{Class: ClassGrease, Sorted: true},
}

var accuracySetNames = [4]string{"Spin (R)", "Spin (S)", "Grease (R)", "Grease (S)"}

// accuracyFold accumulates the Fig. 3/4 histograms and the §5.2 headline
// counters.
type accuracyFold struct {
	abs   [4]*stats.Histogram
	ratio [4]*stats.Histogram

	n                             int
	over, w25, o200, w125, w2, o3 int
}

func newAccuracyFold() *accuracyFold {
	f := &accuracyFold{}
	for i := range f.abs {
		f.abs[i] = stats.NewHistogram(Fig3Edges)
		f.ratio[i] = stats.NewHistogram(Fig4Edges)
	}
	return f
}

func (f *accuracyFold) add(da *DomainAnalysis) {
	for j := range da.Conns {
		c := &da.Conns[j]
		if !c.HasAccuracy {
			continue
		}
		for si, set := range accuracySets {
			if c.Class != set.Class {
				continue
			}
			d, r := c.AbsR, c.RatioR
			if set.Sorted {
				d, r = c.AbsS, c.RatioS
			}
			f.abs[si].Add(float64(d) / float64(time.Millisecond))
			f.ratio[si].Add(r)
		}
		if c.Class == ClassSpin {
			f.observeHeadline(c)
		}
	}
}

func (f *accuracyFold) observeHeadline(c *Conn) {
	f.n++
	if c.AbsR > 0 {
		f.over++
	}
	absMs := float64(c.AbsR) / 1e6
	if absMs >= -25 && absMs <= 25 {
		f.w25++
	}
	if absMs > 200 {
		f.o200++
	}
	r := c.RatioR
	if r >= -1.25 && r <= 1.25 {
		f.w125++
	}
	if r >= -2 && r <= 2 {
		f.w2++
	}
	if r > 3 || r < -3 {
		f.o3++
	}
}

// merge adds another fold's counts into f (for campaign-level accuracy
// figures across weekly accumulators).
func (f *accuracyFold) merge(o *accuracyFold) {
	for i := range f.abs {
		mergeHistogram(f.abs[i], o.abs[i])
		mergeHistogram(f.ratio[i], o.ratio[i])
	}
	f.n += o.n
	f.over += o.over
	f.w25 += o.w25
	f.o200 += o.o200
	f.w125 += o.w125
	f.w2 += o.w2
	f.o3 += o.o3
}

func mergeHistogram(dst, src *stats.Histogram) {
	for i := range dst.Counts {
		dst.Counts[i] += src.Counts[i]
	}
	dst.Underflow += src.Underflow
	dst.Overflow += src.Overflow
	dst.N += src.N
}

// headlines finalises the §5.2 shares. Idempotent.
func (f *accuracyFold) headlines() AccuracyHeadlines {
	h := AccuracyHeadlines{N: f.n}
	if h.N == 0 {
		return h
	}
	n := float64(h.N)
	h.OverestimateShare = float64(f.over) / n
	h.Within25ms = float64(f.w25) / n
	h.Over200ms = float64(f.o200) / n
	h.Within25pct = float64(f.w125) / n
	h.Within2x = float64(f.w2) / n
	h.Over3x = float64(f.o3) / n
	return h
}

// histAt returns the panel histogram for figure fig (3 = abs, 4 = ratio).
func (f *accuracyFold) histAt(fig, i int) *stats.Histogram {
	if fig == 3 {
		return f.abs[i]
	}
	return f.ratio[i]
}
