package analysis_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/flowtable"
	"quicspin/internal/wire"
)

func seedFlowtable(t *testing.T) *flowtable.Table {
	t.Helper()
	tbl := flowtable.New(flowtable.Config{Slots: 64, IdleTimeout: time.Hour, DCIDLen: 8})
	cid := wire.NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	for f := 0; f < 3; f++ {
		tn := base
		gap := time.Duration(f+1) * 10 * time.Millisecond
		for pn := uint64(0); pn < 6; pn++ {
			h := &wire.Header{DstConnID: cid, PacketNumber: pn, SpinBit: pn%2 == 1}
			pkt, err := wire.AppendShortHeader(nil, h, wire.PingFrame{}.Append(nil), wire.NoAckedPacket)
			if err != nil {
				t.Fatalf("building packet: %v", err)
			}
			tbl.Ingest(tn, uint64(1+f), uint64(40000+f), pkt)
			tn += int64(gap)
		}
	}
	return tbl
}

func TestFlowsHandlerText(t *testing.T) {
	tbl := seedFlowtable(t)
	srv := httptest.NewServer(analysis.FlowsHandler(tbl, 5))
	defer srv.Close()

	rec := httptest.NewRecorder()
	analysis.FlowsHandler(tbl, 5).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flows", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"Passive observer — flow table",
		"Spin-RTT distribution",
		"Slowest flows by mean spin RTT",
		"30ms", // slowest flow: 30 ms inter-flip gap
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, body)
		}
	}
}

func TestFlowsHandlerJSON(t *testing.T) {
	tbl := seedFlowtable(t)
	rec := httptest.NewRecorder()
	analysis.FlowsHandler(tbl, 2).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flows?format=json&flows=all", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap flowtable.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if snap.Stats.ActiveFlows != 3 || len(snap.Flows) != 3 {
		t.Fatalf("snapshot flows: %+v", snap.Stats)
	}
	if len(snap.Slowest) != 2 {
		t.Fatalf("top-K length %d, want 2", len(snap.Slowest))
	}
	if snap.Slowest[0].MeanRTT < snap.Slowest[1].MeanRTT {
		t.Fatalf("top-K not sorted: %v < %v", snap.Slowest[0].MeanRTT, snap.Slowest[1].MeanRTT)
	}
}

func TestRenderFlowDashboardDeterministic(t *testing.T) {
	tbl := seedFlowtable(t)
	s1 := tbl.Snapshot(5, true)
	s2 := tbl.Snapshot(5, true)
	r1 := analysis.RenderFlowOverview(&s1).String() + analysis.RenderFlowHistogram(&s1).String() + analysis.RenderSlowestFlows(&s1).String()
	r2 := analysis.RenderFlowOverview(&s2).String() + analysis.RenderFlowHistogram(&s2).String() + analysis.RenderSlowestFlows(&s2).String()
	if r1 != r2 {
		t.Fatalf("dashboard render not stable:\n%s\n---\n%s", r1, r2)
	}
}
