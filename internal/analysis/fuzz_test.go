package analysis

import (
	"bytes"
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// FuzzAccumulatorUnmarshal feeds hostile bytes to both decoders
// (UnmarshalAccumulator and UnmarshalCampaign). The contract under fuzzing:
// no input may panic or over-allocate, and any input a decoder accepts must
// re-marshal canonically — Marshal of the decoded value decodes again and
// re-marshals to the same bytes. That second property is what lets the
// shard collector treat received blobs as opaque: a non-canonical encoding
// (redundant varint widths, unsorted keys) is rejected at the door rather
// than silently normalised into a blob that no longer matches its sender's.
func FuzzAccumulatorUnmarshal(f *testing.F) {
	// A tiny seeded world provides both the resolver the decoders need and
	// realistic seed blobs covering every section of the format.
	p := websim.DefaultProfile()
	p.Scale = 1_000_000
	world := websim.Generate(p)
	res := world.ASDB()

	camp := NewCampaignAccumulator()
	for _, wk := range []int{1, 2} {
		r, err := scanner.Run(world, scanner.Config{Week: wk, Engine: scanner.EngineFast, Seed: 3, Workers: 2})
		if err != nil {
			f.Fatal(err)
		}
		acc := camp.StartWeek(wk, r.IPv6, res)
		for i := range r.Domains {
			acc.Add(&r.Domains[i])
		}
		f.Add(acc.Marshal())
	}
	blob := camp.Marshal()
	f.Add(blob)
	f.Add(NewAccumulator(1, false, res).Marshal())
	f.Add(NewCampaignAccumulator().Marshal())
	// Truncations, header corruption, and a flipped interior byte.
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:3])
	f.Add([]byte{})
	f.Add([]byte{'q', 's', 1, 'W'})
	f.Add([]byte{'q', 's', 2, 'C'})
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/3] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := UnmarshalAccumulator(data, res); err == nil {
			b2 := a.Marshal()
			a2, err2 := UnmarshalAccumulator(b2, res)
			if err2 != nil {
				t.Fatalf("re-decode of accepted accumulator failed: %v", err2)
			}
			if b3 := a2.Marshal(); !bytes.Equal(b2, b3) {
				t.Fatalf("accumulator Marshal not byte-stable: %d vs %d bytes", len(b2), len(b3))
			}
		}
		if c, err := UnmarshalCampaign(data, res); err == nil {
			b2 := c.Marshal()
			c2, err2 := UnmarshalCampaign(b2, res)
			if err2 != nil {
				t.Fatalf("re-decode of accepted campaign failed: %v", err2)
			}
			if b3 := c2.Marshal(); !bytes.Equal(b2, b3) {
				t.Fatalf("campaign Marshal not byte-stable: %d vs %d bytes", len(b2), len(b3))
			}
		}
	})
}
