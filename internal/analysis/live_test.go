package analysis

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// TestLiveDoesNotChangeTables pins that attaching the dashboard is pure
// observation: a campaign streamed through Live.Sink renders Tables 1–5
// (and the accuracy panels) byte-identically to one streamed through the
// plain accumulator sink.
func TestLiveDoesNotChangeTables(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 20000
	world := websim.Generate(p)
	cfg := scanner.Config{Week: 4, Engine: scanner.EngineFast, Seed: 17, Workers: 4}

	plain := NewAccumulator(cfg.Week, cfg.IPv6, world.ASDB())
	if err := scanner.RunStream(world, cfg, plain.Sink()); err != nil {
		t.Fatalf("RunStream plain: %v", err)
	}
	golden := renderStreamWeek(plain)

	live := NewLive(100, 8)
	acc := NewAccumulator(cfg.Week, cfg.IPv6, world.ASDB())
	if err := scanner.RunStream(world, cfg, live.Sink(acc)); err != nil {
		t.Fatalf("RunStream live: %v", err)
	}
	if got := renderStreamWeek(acc); got != golden {
		t.Error("dashboard-wrapped streaming rendering differs from plain sink")
	}

	// The dashboard's own table rendering matches the accumulator's too.
	snap := live.Snapshot()
	if len(snap.Tables) != 5 {
		t.Fatalf("snapshot has %d tables, want 5", len(snap.Tables))
	}
	if snap.Tables[0] != acc.RenderOverview().String() {
		t.Error("snapshot overview differs from accumulator rendering")
	}
	if snap.Totals.Domains == 0 || snap.Totals.Conns == 0 {
		t.Errorf("empty totals: %+v", snap.Totals)
	}
}

// TestLiveWindows checks rolling-window mechanics directly: window
// boundaries, retention, the always-present open window, and that window
// sums equal the totals while all windows are retained.
func TestLiveWindows(t *testing.T) {
	l := NewLive(10, 3)
	acc := NewAccumulator(1, false, nil)
	sink := l.Sink(acc)
	ok := scanner.DomainResult{Resolved: true}
	for i := 0; i < 35; i++ {
		if err := sink(i, &ok); err != nil {
			t.Fatal(err)
		}
	}
	snap := l.Snapshot()
	// 35 domains / size 10 → windows 0,1,2 closed, keep=3 retains all,
	// plus the open window 3 with 5 domains.
	if len(snap.Windows) != 4 {
		t.Fatalf("got %d windows, want 4: %+v", len(snap.Windows), snap.Windows)
	}
	var sum int
	for i, w := range snap.Windows {
		sum += w.Domains
		if w.Index != i {
			t.Errorf("window %d has index %d", i, w.Index)
		}
	}
	if sum != 35 || snap.Totals.Domains != 35 {
		t.Errorf("window sum %d, totals %d, want 35", sum, snap.Totals.Domains)
	}
	open := snap.Windows[len(snap.Windows)-1]
	if open.Domains != 5 {
		t.Errorf("open window has %d domains, want 5", open.Domains)
	}

	// 40 more close windows 3–6; retention keeps the newest 3 closed.
	for i := 0; i < 40; i++ {
		if err := sink(i, &ok); err != nil {
			t.Fatal(err)
		}
	}
	snap = l.Snapshot()
	if len(snap.Windows) != 4 {
		t.Fatalf("after retention got %d windows, want 4", len(snap.Windows))
	}
	if first := snap.Windows[0].Index; first != 4 {
		t.Errorf("oldest retained window index %d, want 4", first)
	}
	if snap.Totals.Domains != 75 {
		t.Errorf("totals %d, want 75", snap.Totals.Domains)
	}
}

// TestLiveHandler serves the dashboard both ways and checks the nil
// no-ops.
func TestLiveHandler(t *testing.T) {
	l := NewLive(5, 2)
	acc := NewAccumulator(2, false, nil)
	sink := l.Sink(acc)
	d := scanner.DomainResult{Resolved: true}
	for i := 0; i < 7; i++ {
		if err := sink(i, &d); err != nil {
			t.Fatal(err)
		}
	}

	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/campaign", nil))
	if rr.Code != 200 {
		t.Fatalf("text status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"Campaign dashboard — week 2", "Rolling windows", "Table 1.", "Table 5."} {
		if !strings.Contains(body, want) {
			t.Errorf("text dashboard missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/campaign?format=json", nil))
	var snap LiveSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json dashboard does not parse: %v", err)
	}
	if snap.Week != 2 || snap.Totals.Domains != 7 || len(snap.Windows) == 0 {
		t.Errorf("json snapshot: %+v", snap)
	}

	var nl *Live
	if s := nl.Snapshot(); s.Totals.Domains != 0 {
		t.Error("nil Live snapshot not zero")
	}
	if tot := nl.Totals(); tot.Domains != 0 {
		t.Error("nil Live totals not zero")
	}
	rr = httptest.NewRecorder()
	nl.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/campaign", nil))
	if rr.Code != 200 {
		t.Errorf("nil Live handler status %d", rr.Code)
	}
	nilSink := nl.Sink(NewAccumulator(1, false, nil))
	if err := nilSink(0, &d); err != nil {
		t.Errorf("nil Live sink: %v", err)
	}
}

// TestLiveConcurrentSinkAndDashboard hammers the dashboard handler while
// the sink is folding domains (run under -race via scripts/check.sh): the
// snapshot must always be internally consistent.
func TestLiveConcurrentSinkAndDashboard(t *testing.T) {
	l := NewLive(25, 4)
	acc := NewAccumulator(1, false, nil)
	sink := l.Sink(acc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		d := scanner.DomainResult{Resolved: true}
		for i := 0; i < 2000; i++ {
			if err := sink(i, &d); err != nil {
				t.Errorf("sink: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		rr := httptest.NewRecorder()
		l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/campaign?format=json", nil))
		var snap LiveSnapshot
		if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var sum int
		for _, w := range snap.Windows {
			sum += w.Domains
		}
		// All windows are retained while ≤ keep; afterwards the retained
		// sum can only trail the totals.
		if sum > snap.Totals.Domains {
			t.Fatalf("read %d: window sum %d exceeds totals %d", i, sum, snap.Totals.Domains)
		}
	}
	<-done
}

// TestLiveBudget pins the dashboard memory budget: count- and
// byte-denominated bounds evict closed windows oldest-first, immediately
// and on every future roll.
func TestLiveBudget(t *testing.T) {
	l := NewLive(10, 100)
	acc := NewAccumulator(1, false, nil)
	sink := l.Sink(acc)
	ok := scanner.DomainResult{Resolved: true}
	for i := 0; i < 85; i++ {
		if err := sink(i, &ok); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.Snapshot().Windows); n != 9 { // 8 closed + open
		t.Fatalf("got %d windows before budget, want 9", n)
	}

	// Count bound: immediate eviction down to 4 closed windows.
	l.SetBudget(4, 0)
	snap := l.Snapshot()
	if n := len(snap.Windows); n != 5 {
		t.Fatalf("after count budget got %d windows, want 5", n)
	}
	if first := snap.Windows[0].Index; first != 4 {
		t.Errorf("oldest retained window index %d, want 4 (oldest-first eviction)", first)
	}

	// Byte bound tighter than the count bound wins: room for 2 windows.
	l.SetBudget(0, 2*windowBytes)
	if n := len(l.Snapshot().Windows); n != 3 {
		t.Fatalf("after byte budget got %d windows, want 3", n)
	}

	// The budget keeps applying as new windows roll.
	for i := 0; i < 50; i++ {
		if err := sink(i, &ok); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.Snapshot().Windows); n != 3 {
		t.Fatalf("after more rolls got %d windows, want 3", n)
	}

	// A budget below one window clamps: the trend view never vanishes.
	l.SetBudget(0, 1)
	if n := len(l.Snapshot().Windows); n != 2 {
		t.Fatalf("after tiny byte budget got %d windows, want 2 (1 closed + open)", n)
	}

	// Nil-safety.
	var nilLive *Live
	nilLive.SetBudget(1, 1)
}
