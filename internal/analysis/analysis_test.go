package analysis

import (
	"fmt"
	"math"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/scanner"
)

var t0 = time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

// mkConn builds a ConnResult with a clean spin square wave of the given
// period and the given stack samples.
func mkConn(period time.Duration, n int, stack ...time.Duration) *scanner.ConnResult {
	c := &scanner.ConnResult{QUIC: true, StackRTTs: stack}
	for i := 0; i < n; i++ {
		ob := core.Observation{T: t0.Add(time.Duration(i) * period), PN: uint64(i), Spin: i%2 == 1}
		c.Observations = append(c.Observations, ob)
		if ob.Spin {
			c.OnePkts++
		} else {
			c.ZeroPkts++
		}
	}
	return c
}

func TestAnalyzeConnSpin(t *testing.T) {
	c := mkConn(100*time.Millisecond, 6, 50*time.Millisecond, 60*time.Millisecond)
	a := AnalyzeConn(c)
	if a.Class != ClassSpin {
		t.Fatalf("class = %v", a.Class)
	}
	if a.SpinMeanR != 100*time.Millisecond || a.SpinMeanS != 100*time.Millisecond {
		t.Errorf("spin means = %v / %v", a.SpinMeanR, a.SpinMeanS)
	}
	if a.StackMean != 55*time.Millisecond {
		t.Errorf("stack mean = %v", a.StackMean)
	}
	if a.AbsR != 45*time.Millisecond {
		t.Errorf("abs = %v", a.AbsR)
	}
	want := float64(100) / 55
	if math.Abs(a.RatioR-want) > 1e-9 {
		t.Errorf("ratio = %v, want %v", a.RatioR, want)
	}
	if !a.HasAccuracy {
		t.Error("HasAccuracy false")
	}
}

func TestAnalyzeConnGreaseFilter(t *testing.T) {
	// Spin estimates of 1 ms against a stack min of 50 ms → grease.
	c := mkConn(time.Millisecond, 8, 50*time.Millisecond, 55*time.Millisecond)
	a := AnalyzeConn(c)
	if a.Class != ClassGrease {
		t.Fatalf("class = %v, want grease", a.Class)
	}
	// Same wave but stack min below the spin estimates → spin.
	c2 := mkConn(100*time.Millisecond, 8, 50*time.Millisecond)
	if got := AnalyzeConn(c2).Class; got != ClassSpin {
		t.Fatalf("class = %v, want spin", got)
	}
}

func TestAnalyzeConnFixedValues(t *testing.T) {
	zero := &scanner.ConnResult{QUIC: true, ZeroPkts: 5}
	if got := AnalyzeConn(zero).Class; got != ClassAllZero {
		t.Errorf("class = %v", got)
	}
	one := &scanner.ConnResult{QUIC: true, OnePkts: 5}
	if got := AnalyzeConn(one).Class; got != ClassAllOne {
		t.Errorf("class = %v", got)
	}
	empty := &scanner.ConnResult{}
	if got := AnalyzeConn(empty).Class; got != ClassNone {
		t.Errorf("class = %v", got)
	}
}

func TestAnalyzeConnUnderestimationRatioNegative(t *testing.T) {
	// Spin mean 50 ms vs stack mean 100 ms → ratio −2.
	c := mkConn(50*time.Millisecond, 6, 100*time.Millisecond)
	a := AnalyzeConn(c)
	if math.Abs(a.RatioR+2) > 1e-9 {
		t.Errorf("ratio = %v, want -2", a.RatioR)
	}
	if a.AbsR != -50*time.Millisecond {
		t.Errorf("abs = %v, want -50ms", a.AbsR)
	}
}

func TestMappedRatio(t *testing.T) {
	cases := []struct {
		spin, stack time.Duration
		want        float64
	}{
		{100, 100, 1},
		{300, 100, 3},
		{100, 300, -3},
		{0, 100, 0},
		{100, 0, 0},
	}
	for _, c := range cases {
		if got := mappedRatio(c.spin, c.stack); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("mappedRatio(%d, %d) = %v, want %v", c.spin, c.stack, got, c.want)
		}
	}
}

func TestDomainClassPriorities(t *testing.T) {
	cases := []struct {
		conns []Conn
		want  Class
	}{
		{[]Conn{{Class: ClassAllZero}, {Class: ClassSpin}}, ClassSpin},
		{[]Conn{{Class: ClassGrease}, {Class: ClassAllZero}}, ClassGrease},
		{[]Conn{{Class: ClassAllZero}, {Class: ClassAllOne}}, ClassAllOne},
		{[]Conn{{Class: ClassAllZero}}, ClassAllZero},
		{[]Conn{{Class: ClassNone}}, ClassNone},
		{nil, ClassNone},
		{[]Conn{{Class: ClassGrease}, {Class: ClassSpin}}, ClassSpin},
	}
	for i, c := range cases {
		if got := DomainClass(c.conns); got != c.want {
			t.Errorf("case %d: DomainClass = %v, want %v", i, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassAllZero: "All Zero", ClassAllOne: "All One",
		ClassSpin: "Spin", ClassGrease: "Grease", ClassNone: "None",
	} {
		if c.String() != want {
			t.Errorf("Class(%d) = %q", int(c), c.String())
		}
	}
}

func TestRFCShares(t *testing.T) {
	s16 := rfcShares(12, 16)
	var sum float64
	for _, v := range s16 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("RFC 9000 shares sum = %v", sum)
	}
	// P[12 of 12] = (15/16)^12 ≈ 0.4610.
	if math.Abs(s16[12]-math.Pow(15.0/16, 12)) > 1e-9 {
		t.Errorf("P[12/12] = %v", s16[12])
	}
	// 1/8 disabling spins less often in all weeks than 1/16.
	s8 := rfcShares(12, 8)
	if s8[12] >= s16[12] {
		t.Errorf("s8[12]=%v >= s16[12]=%v", s8[12], s16[12])
	}
}

func TestLongitudinallySynthetic(t *testing.T) {
	// Build three weeks over four domains:
	// d0: spins every week; d1: spins week 1 only (QUIC all weeks);
	// d2: never spins; d3: spins but loses QUIC in week 3.
	mkWeek := func(classes []Class, quic []bool) *Week {
		w := &Week{Domains: make([]DomainAnalysis, len(classes))}
		for i := range classes {
			src := &scanner.DomainResult{Domain: fmt.Sprintf("d%d", i), Conns: nil}
			if quic[i] {
				src.Conns = []scanner.ConnResult{{QUIC: true}}
			}
			w.Domains[i] = DomainAnalysis{Src: src, Class: classes[i]}
		}
		return w
	}
	weeks := []*Week{
		mkWeek([]Class{ClassSpin, ClassSpin, ClassAllZero, ClassSpin}, []bool{true, true, true, true}),
		mkWeek([]Class{ClassSpin, ClassAllZero, ClassAllZero, ClassSpin}, []bool{true, true, true, true}),
		mkWeek([]Class{ClassSpin, ClassAllZero, ClassAllZero, ClassNone}, []bool{true, true, true, false}),
	}
	l := Longitudinally(weeks)
	if l.EverSpun != 3 {
		t.Errorf("EverSpun = %d, want 3", l.EverSpun)
	}
	if l.Considered != 2 {
		t.Errorf("Considered = %d, want 2 (d3 lost QUIC)", l.Considered)
	}
	if l.Share[3] != 0.5 || l.Share[1] != 0.5 {
		t.Errorf("shares = %v", l.Share)
	}
}

func TestReorderingImpact(t *testing.T) {
	// One conn with R==S, one where sorting improves the estimate.
	same := Conn{Class: ClassSpin, HasAccuracy: true, SpinMeanR: 100, SpinMeanS: 100, AbsR: 50, AbsS: 50}
	better := Conn{Class: ClassSpin, HasAccuracy: true,
		SpinMeanR: 100, SpinMeanS: 100 - time.Duration(500)*time.Microsecond,
		AbsR: 10 * time.Millisecond, AbsS: 9 * time.Millisecond}
	w := &Week{Domains: []DomainAnalysis{{
		Src:   &scanner.DomainResult{},
		Conns: []Conn{same, better},
	}}}
	r := Reordering([]*Week{w})
	if r.Conns != 2 || r.Differing != 1 || r.Sub1ms != 1 || r.Improved != 1 {
		t.Errorf("impact = %+v", r)
	}
}
