package analysis

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"quicspin/internal/report"
	"quicspin/internal/scanner"
	"quicspin/internal/stats"
)

// WindowStats is one rolling-window slice of campaign progress: counts
// over a fixed number of consecutively delivered domains. Windows are
// count-based rather than time-based so the dashboard is deterministic
// under virtual time and independent of wall-clock scheduling.
type WindowStats struct {
	// Index numbers windows from 0 in delivery order (campaign-global,
	// continuing across weeks).
	Index int `json:"index"`
	// Week is the measurement week the window started in.
	Week int `json:"week"`
	// Domains counts delivered domains; Resolved those with DNS answers.
	Domains  int `json:"domains"`
	Resolved int `json:"resolved"`
	// QUIC counts domains with at least one successful QUIC connection;
	// Spin those whose domain class is Spin.
	QUIC int `json:"quic"`
	Spin int `json:"spin"`
	// Conns counts connection attempts; ConnErrs the failed ones.
	Conns    int `json:"conns"`
	ConnErrs int `json:"conn_errs"`
}

func (w *WindowStats) fold(d *scanner.DomainResult, cls Class) {
	w.Domains++
	if d.Resolved {
		w.Resolved++
	}
	if d.QUIC() {
		w.QUIC++
	}
	if cls == ClassSpin {
		w.Spin++
	}
	w.Conns += len(d.Conns)
	for i := range d.Conns {
		if d.Conns[i].Err != "" {
			w.ConnErrs++
		}
	}
}

// Live is the campaign's live dashboard state: it rides on the streaming
// accumulators (wrapping their sink) and additionally maintains
// count-based rolling windows, so /debug/campaign can show both the
// cumulative Tables 1–5 and the recent-trend view mid-scan. All methods
// are safe for concurrent use; a nil *Live is a valid no-op, so the scan
// path needs no dashboard branches.
type Live struct {
	mu       sync.Mutex
	size     int                  // domains per window
	keep     int                  // closed windows retained
	accs     map[int]*Accumulator // latest week accumulator per shard
	vantage  string
	totals   WindowStats
	cur      WindowStats
	windows  []WindowStats // closed, oldest first, ≤ keep
	restarts int           // supervised shard restarts
	lost     map[int]bool  // shards abandoned by the supervisor
}

// NewLive creates dashboard state with the given window size (domains per
// window) and retention (closed windows kept); non-positive values take
// the defaults of 1000 and 24.
func NewLive(windowSize, keep int) *Live {
	if windowSize <= 0 {
		windowSize = 1000
	}
	if keep <= 0 {
		keep = 24
	}
	return &Live{size: windowSize, keep: keep}
}

// windowBytes is the retained cost of one closed WindowStats, for the
// byte-denominated budget (8 int fields plus slice bookkeeping).
const windowBytes = 8 * 9

// SetBudget bounds the rolling-window memory: at most maxWindows closed
// windows and at most maxBytes of retained window state (whichever is
// tighter; non-positive values leave that dimension unchanged). Eviction
// is oldest-first and applies immediately as well as on every future roll,
// so a follow-mode campaign running for months cannot grow the dashboard
// without bound. At least one closed window is always retained. Nil-safe.
func (l *Live) SetBudget(maxWindows int, maxBytes int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if maxWindows > 0 {
		l.keep = maxWindows
	}
	if maxBytes > 0 {
		if byBytes := int(maxBytes / windowBytes); byBytes < l.keep {
			l.keep = byBytes
		}
	}
	if l.keep < 1 {
		l.keep = 1
	}
	l.trimLocked()
}

// trimLocked evicts the oldest closed windows down to the retention
// budget. Caller holds l.mu.
func (l *Live) trimLocked() {
	if len(l.windows) > l.keep {
		copy(l.windows, l.windows[len(l.windows)-l.keep:])
		l.windows = l.windows[:l.keep]
	}
}

// Sink wraps a week accumulator's delivery callback: each domain folds
// into acc (cumulative tables) and into the rolling window. Call once per
// week with that week's accumulator — the dashboard then renders tables
// from the latest week while windows continue across weeks. Nil-safe: a
// nil Live returns acc's own sink.
func (l *Live) Sink(acc *Accumulator) func(i int, d *scanner.DomainResult) error {
	return l.ShardSink(0, acc)
}

// ShardSink is Sink for one shard of a distributed campaign: deliveries
// fold into that shard's accumulator and the shared rolling windows. The
// dashboard retains the latest accumulator per shard and renders tables
// from a merged snapshot, so /debug/campaign shows campaign-wide Tables
// 1–5 while shards scan concurrently. All shard sinks serialise on one
// mutex — the dashboard is a coordinator-side view, not a hot path.
// Nil-safe: a nil Live returns acc's own sink.
func (l *Live) ShardSink(shard int, acc *Accumulator) func(i int, d *scanner.DomainResult) error {
	if l == nil {
		return acc.Sink()
	}
	l.mu.Lock()
	if l.accs == nil {
		l.accs = map[int]*Accumulator{}
	}
	l.accs[shard] = acc
	l.cur.Week = acc.Week
	l.mu.Unlock()
	return func(_ int, d *scanner.DomainResult) error {
		l.mu.Lock()
		defer l.mu.Unlock()
		cls := acc.Add(d)
		l.cur.fold(d, cls)
		l.totals.fold(d, cls)
		if l.cur.Domains >= l.size {
			l.roll()
		}
		return nil
	}
}

// SetVantage labels the dashboard with the vantage point currently
// scanning (shown in /debug/campaign). Nil-safe.
func (l *Live) SetVantage(name string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.vantage = name
	l.mu.Unlock()
}

// NoteRestart records one supervised shard-worker restart (shown in
// /debug/campaign). A restarted shard re-registers its accumulator via
// ShardSink, so the cumulative tables stay exact; only the rolling-window
// counters see the replayed deliveries twice. Nil-safe.
func (l *Live) NoteRestart(shard int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.restarts++
	l.mu.Unlock()
}

// NoteLost records a shard permanently abandoned by the supervisor; the
// dashboard's tables then cover the population minus that shard's range.
// Nil-safe.
func (l *Live) NoteLost(shard int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.lost == nil {
		l.lost = map[int]bool{}
	}
	l.lost[shard] = true
	// A lost shard's partial accumulator must not leak into the merged
	// tables: its last attempt died mid-range.
	delete(l.accs, shard)
	l.mu.Unlock()
}

// roll closes the current window. Caller holds l.mu.
func (l *Live) roll() {
	l.windows = append(l.windows, l.cur)
	l.trimLocked()
	l.cur = WindowStats{Index: l.cur.Index + 1, Week: l.cur.Week}
}

// LiveSnapshot is the /debug/campaign JSON document.
type LiveSnapshot struct {
	Week       int         `json:"week"`
	WindowSize int         `json:"window_size"`
	Totals     WindowStats `json:"totals"`
	// Shards is the number of shard accumulators feeding the dashboard
	// (1 for an unsharded campaign); Vantage labels the scanning location
	// when the campaign set one.
	Shards  int    `json:"shards"`
	Vantage string `json:"vantage,omitempty"`
	// Restarts counts supervised shard-worker restarts; LostShards lists
	// shards the supervisor abandoned (their ranges are missing from the
	// tables below).
	Restarts   int   `json:"restarts,omitempty"`
	LostShards []int `json:"lost_shards,omitempty"`
	// Windows holds the retained closed windows followed by the current
	// open one (so the document is non-empty from the first domain).
	Windows []WindowStats `json:"windows"`
	// Tables are the rendered cumulative Tables 1–5 for the current week.
	Tables []string `json:"tables"`
}

// Snapshot captures the dashboard state, rendering Tables 1–5 from the
// current week's accumulators — merged across shards when the campaign is
// sharded. Shards progress independently, so the snapshot merges the
// shards that have reached the newest (Week, IPv6); clones are taken via
// the wire-format round-trip under the same mutex every Add holds, so the
// scan never observes the merge. Nil-safe (returns a zero snapshot).
func (l *Live) Snapshot() LiveSnapshot {
	if l == nil {
		return LiveSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := LiveSnapshot{WindowSize: l.size, Totals: l.totals, Vantage: l.vantage, Shards: len(l.accs), Restarts: l.restarts}
	for shard := range l.lost {
		snap.LostShards = append(snap.LostShards, shard)
	}
	sort.Ints(snap.LostShards)
	snap.Windows = append(snap.Windows, l.windows...)
	snap.Windows = append(snap.Windows, l.cur)
	if acc := l.mergedLocked(); acc != nil {
		snap.Week = acc.Week
		for _, t := range []*report.Table{
			acc.RenderOverview(), acc.RenderOrgTable(8),
			acc.RenderSpinConfig(), acc.RenderSoftwareTable(),
			acc.RenderErrorClasses(),
		} {
			snap.Tables = append(snap.Tables, t.String())
		}
	}
	return snap
}

// mergedLocked merges the shard accumulators that have reached the newest
// started (Week, IPv6) into a fresh clone. Caller holds l.mu. With one
// shard it still clones — renderers then never race with concurrent Adds.
func (l *Live) mergedLocked() *Accumulator {
	var lead *Accumulator
	for _, a := range l.accs {
		if lead == nil || a.Week > lead.Week || (a.Week == lead.Week && a.IPv6 && !lead.IPv6) {
			lead = a
		}
	}
	if lead == nil {
		return nil
	}
	merged := lead.clone()
	for _, a := range l.accs {
		if a != lead && a.Week == lead.Week && a.IPv6 == lead.IPv6 {
			// Merge clones: Merge consumes its argument's maps, and the
			// shard accumulator must keep folding.
			_ = merged.Merge(a.clone())
		}
	}
	return merged
}

// Totals returns the campaign-wide counts folded so far. Nil-safe.
func (l *Live) Totals() WindowStats {
	if l == nil {
		return WindowStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals
}

// renderText renders the dashboard as plain text: totals line, the
// rolling-window table, then the cumulative tables.
func renderText(s *LiveSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign dashboard — week %d", s.Week)
	if s.Shards > 1 {
		fmt.Fprintf(&b, " · %d shards", s.Shards)
	}
	if s.Vantage != "" {
		fmt.Fprintf(&b, " · vantage %s", s.Vantage)
	}
	if s.Restarts > 0 {
		fmt.Fprintf(&b, " · %d restart(s)", s.Restarts)
	}
	if len(s.LostShards) > 0 {
		fmt.Fprintf(&b, " · lost shards %v", s.LostShards)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "Totals: domains=%s resolved=%s quic=%s spin=%s conns=%s conn_errs=%s\n\n",
		report.Count(s.Totals.Domains), report.Count(s.Totals.Resolved),
		report.Count(s.Totals.QUIC), report.Count(s.Totals.Spin),
		report.Count(s.Totals.Conns), report.Count(s.Totals.ConnErrs))
	wt := report.NewTable(
		fmt.Sprintf("Rolling windows (%d domains each; last row is the open window)", s.WindowSize),
		"Window", "Week", "Domains", "Resolved", "QUIC", "Spin", "Spin%", "Conns", "Errs", "Err%")
	for i := range s.Windows {
		w := &s.Windows[i]
		wt.AddRow(strconv.Itoa(w.Index), strconv.Itoa(w.Week),
			report.Count(w.Domains), report.Count(w.Resolved),
			report.Count(w.QUIC), report.Count(w.Spin), stats.Percent(w.Spin, w.QUIC),
			report.Count(w.Conns), report.Count(w.ConnErrs), stats.Percent(w.ConnErrs, w.Conns))
	}
	b.WriteString(wt.String())
	for _, t := range s.Tables {
		b.WriteByte('\n')
		b.WriteString(t)
	}
	return b.String()
}

// Handler serves the dashboard on /debug/campaign: plain text by default,
// the LiveSnapshot document with ?format=json. A nil Live serves an
// empty-but-valid document, so wiring the endpoint is unconditional.
func (l *Live) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := l.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(&snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprint(w, renderText(&snap))
	})
}
