package analysis

import (
	"fmt"
	"sort"
)

// Merge semantics: every fold object is a keyed sum (counters, count maps)
// or a keyed monotone flag (ipState, longTrack.everSpun), so merging is
// associative AND commutative, with the freshly-constructed fold as the
// identity. The distributed coordinator (internal/shard) relies on exactly
// these laws: shard accumulators can be merged in any grouping and any
// order and still render byte-identical tables to a single-process fold of
// the whole population. merge_test.go pins each law over seeded worlds.

// MergeError reports an attempt to merge accumulators that aggregate
// different measurements (different weeks, address families, or view sets).
// Such merges are always a coordinator bug, never data-dependent, so they
// fail loudly instead of producing silently misaligned tables.
type MergeError struct {
	// Field names the mismatched property ("week", "ipv6", "views").
	Field string
	// Have and Got describe the receiver's and the argument's value.
	Have, Got string
}

func (e *MergeError) Error() string {
	return fmt.Sprintf("analysis: cannot merge accumulators: %s mismatch (have %s, got %s)", e.Field, e.Have, e.Got)
}

// Merge folds another accumulator of the same (Week, IPv6) measurement into
// a. The other accumulator contributes its aggregate state and must not be
// used afterwards (its maps stay shared). Merging never touches the
// campaign longitudinal fold — that lives on the CampaignAccumulator and
// has its own Merge.
func (a *Accumulator) Merge(o *Accumulator) error {
	if o == nil {
		return nil
	}
	if a.Week != o.Week {
		return &MergeError{Field: "week", Have: fmt.Sprint(a.Week), Got: fmt.Sprint(o.Week)}
	}
	if a.IPv6 != o.IPv6 {
		return &MergeError{Field: "ipv6", Have: fmt.Sprint(a.IPv6), Got: fmt.Sprint(o.IPv6)}
	}
	if len(a.views) != len(o.views) {
		return &MergeError{Field: "views", Have: fmt.Sprint(len(a.views)), Got: fmt.Sprint(len(o.views))}
	}
	for i := range a.views {
		if a.views[i].Label != o.views[i].Label {
			return &MergeError{Field: "views", Have: a.views[i].Label, Got: o.views[i].Label}
		}
	}
	for i := range a.overview {
		a.overview[i].merge(o.overview[i])
		a.config[i].merge(o.config[i])
	}
	a.orgs.merge(o.orgs)
	a.software.merge(o.software)
	a.errs.merge(o.errs)
	a.acc.merge(o.acc)
	return nil
}

func (f *overviewFold) merge(o *overviewFold) {
	// Only the add-path counters merge; the per-IP counts are derived from
	// the ips map by finish().
	f.row.TotalDomains += o.row.TotalDomains
	f.row.ResolvedDomains += o.row.ResolvedDomains
	f.row.QUICDomains += o.row.QUICDomains
	f.row.SpinDomains += o.row.SpinDomains
	for ip, st := range o.ips {
		dst := f.ips[ip]
		if dst == nil {
			dst = &ipState{}
			f.ips[ip] = dst
		}
		dst.quic = dst.quic || st.quic
		dst.spin = dst.spin || st.spin
	}
}

func (f *configFold) merge(o *configFold) {
	f.row.QUICDomains += o.row.QUICDomains
	f.row.AllZero += o.row.AllZero
	f.row.AllOne += o.row.AllOne
	f.row.Spin += o.row.Spin
	f.row.Grease += o.row.Grease
	f.row.None += o.row.None
}

func (f *orgFold) merge(o *orgFold) {
	for org, r := range o.totals {
		dst := f.totals[org]
		if dst == nil {
			dst = &OrgRow{Org: org}
			f.totals[org] = dst
		}
		dst.TotalConns += r.TotalConns
		dst.SpinConns += r.SpinConns
	}
}

func (f *softwareFold) merge(o *softwareFold) {
	for sw, r := range o.agg {
		dst := f.agg[sw]
		if dst == nil {
			dst = &SoftwareRow{Software: sw}
			f.agg[sw] = dst
		}
		dst.Conns += r.Conns
		dst.SpinConns += r.SpinConns
	}
}

func (f *errorClassFold) merge(o *errorClassFold) {
	f.total += o.total
	for cls, n := range o.classes {
		f.classes[cls] += n
	}
	for p, n := range o.profiles {
		f.profiles[p] += n
	}
}

func (f *longFold) merge(o *longFold) {
	for name, t := range o.domains {
		dst := f.domains[name]
		if dst == nil {
			dst = &longTrack{}
			f.domains[name] = dst
		}
		dst.everSpun = dst.everSpun || t.everSpun
		dst.quicWeeks += t.quicWeeks
		dst.spinWeeks += t.spinWeeks
	}
}

// Merge folds another campaign into c: the longitudinal folds merge by
// domain name, and weekly accumulators pair up by (Week, IPv6) — weeks only
// the other campaign scanned are adopted wholesale and rewired onto c's
// longitudinal fold. This is how the shard coordinator combines campaigns
// that each scanned a population slice across the same weeks, and equally
// campaigns that each scanned different week subsets.
func (c *CampaignAccumulator) Merge(o *CampaignAccumulator) error {
	if o == nil {
		return nil
	}
	// Validate the pairing before mutating anything, so a failed merge
	// leaves c untouched.
	for _, w := range o.weeks {
		if mine := c.findWeek(w.Week, w.IPv6); mine != nil {
			if len(mine.views) != len(w.views) {
				return &MergeError{Field: "views", Have: fmt.Sprint(len(mine.views)), Got: fmt.Sprint(len(w.views))}
			}
			for i := range mine.views {
				if mine.views[i].Label != w.views[i].Label {
					return &MergeError{Field: "views", Have: mine.views[i].Label, Got: w.views[i].Label}
				}
			}
		}
	}
	c.long.merge(o.long)
	for _, w := range o.weeks {
		if mine := c.findWeek(w.Week, w.IPv6); mine != nil {
			if err := mine.Merge(w); err != nil {
				return err
			}
			continue
		}
		w.long = c.long
		c.insertWeek(w)
	}
	return nil
}

// findWeek returns the accumulator for (week, ipv6), or nil.
func (c *CampaignAccumulator) findWeek(week int, ipv6 bool) *Accumulator {
	for _, a := range c.weeks {
		if a.Week == week && a.IPv6 == ipv6 {
			return a
		}
	}
	return nil
}

// insertWeek adds a week accumulator keeping c.weeks sorted by (Week, IPv6
// last). Weeks therefore render in campaign order however they arrived —
// the StartWeek regression tests pin this.
func (c *CampaignAccumulator) insertWeek(a *Accumulator) {
	i := sort.Search(len(c.weeks), func(i int) bool {
		w := c.weeks[i]
		if w.Week != a.Week {
			return w.Week > a.Week
		}
		return w.IPv6 && !a.IPv6
	})
	c.weeks = append(c.weeks, nil)
	copy(c.weeks[i+1:], c.weeks[i:])
	c.weeks[i] = a
}
