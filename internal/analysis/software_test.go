package analysis

import (
	"strings"
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

func TestSoftwareTableSynthetic(t *testing.T) {
	mk := func(server string, spin bool) (scanner.ConnResult, Conn) {
		c := scanner.ConnResult{QUIC: true, Server: server, ZeroPkts: 1}
		a := Conn{Class: ClassAllZero}
		if spin {
			a.Class = ClassSpin
		}
		return c, a
	}
	w := &Week{}
	add := func(server string, spin bool) {
		c, a := mk(server, spin)
		w.Domains = append(w.Domains, DomainAnalysis{
			Src:   &scanner.DomainResult{Domain: "d", TLD: "com", Resolved: true, Conns: []scanner.ConnResult{c}},
			Conns: []Conn{a},
		})
	}
	add("LiteSpeed", true)
	add("LiteSpeed", true)
	add("LiteSpeed", false)
	add("nginx", false)
	add("imunify360-webshield", true)

	rows := SoftwareTable(w, StandardViews()[1])
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Software != "LiteSpeed" || rows[0].Conns != 3 || rows[0].SpinConns != 2 {
		t.Errorf("top row = %+v", rows[0])
	}
	if got := SpinShareOfSoftware(rows, "LiteSpeed"); got != 2.0/3 {
		t.Errorf("LiteSpeed spin share = %v", got)
	}
	if got := SpinShareOfSoftware(nil, "x"); got != 0 {
		t.Errorf("empty share = %v", got)
	}
}

// TestLiteSpeedCarriesSpinSupport checks the §4.2 takeaway on the scanned
// fixture: the overwhelming share of spinning connections identify as
// LiteSpeed (plus imunify360-webshield, its suspected derivative).
func TestLiteSpeedCarriesSpinSupport(t *testing.T) {
	_, wk, _ := fixture(t)
	rows := SoftwareTable(wk, StandardViews()[1])
	if len(rows) == 0 {
		t.Fatal("no software rows")
	}
	ls := SpinShareOfSoftware(rows, websim.SoftLiteSpeed) +
		SpinShareOfSoftware(rows, websim.SoftImunify)
	if ls < 0.8 {
		t.Errorf("LiteSpeed(+imunify) share of spinning conns = %.3f, want > 0.8 (paper: >80%%)", ls)
	}
	// Non-spinning stacks must not dominate the spin rows.
	for _, r := range rows {
		if (r.Software == websim.SoftCloudflare || r.Software == websim.SoftGoogle) && r.SpinConns > 0 {
			t.Errorf("%s shows %d spinning connections", r.Software, r.SpinConns)
		}
	}
	if s := RenderSoftwareTable(wk, StandardViews()[1]).String(); !strings.Contains(s, "LiteSpeed") {
		t.Errorf("render:\n%s", s)
	}
}
