package analysis

import (
	"quicspin/internal/asdb"
	"quicspin/internal/report"
	"quicspin/internal/scanner"
	"quicspin/internal/stats"
)

// Accumulator is the streaming counterpart of Analyze + the batch
// aggregate functions: it folds one week's scan results domain by domain
// and can render every per-week table without ever retaining a per-domain
// row. Feed it from scanner.RunStream via Sink (or call Add directly);
// memory use is bounded by the aggregate state (IP/org/software/domain-name
// maps), not by the population size.
//
// It drives the exact fold objects the batch functions drive, and the
// renderers share the row-formatting helpers, so a streamed campaign's
// tables are byte-identical to a batch-analysed one — the equivalence tests
// in stream_test.go pin this.
type Accumulator struct {
	Week int
	IPv6 bool

	views    []View
	overview []*overviewFold
	config   []*configFold
	orgs     *orgFold
	software *softwareFold
	errs     *errorClassFold
	acc      *accuracyFold
	long     *longFold // shared campaign fold; nil outside a campaign

	scratch []Conn // reused per Add; aggregate state never aliases it
}

// NewAccumulator prepares streaming aggregation for one measurement week.
// res resolves connection IPs to AS organisations for Table 2 (it must be
// the world's resolver, as with OrgTable).
func NewAccumulator(week int, ipv6 bool, res *asdb.Resolver) *Accumulator {
	a := &Accumulator{
		Week:     week,
		IPv6:     ipv6,
		views:    StandardViews(),
		errs:     newErrorClassFold(),
		acc:      newAccuracyFold(),
		software: newSoftwareFold(StandardViews()[1]),
	}
	for _, v := range a.views {
		a.overview = append(a.overview, newOverviewFold(v))
		a.config = append(a.config, newConfigFold(v))
	}
	a.orgs = newOrgFold(a.views[2], res)
	return a
}

// Add folds one finished domain into every aggregate and returns the
// domain's spin class (the live dashboard's window counters reuse it
// without re-analysing the connections). The DomainResult is only read
// during the call; the per-connection analyses live in a scratch slice
// reused across calls.
func (a *Accumulator) Add(d *scanner.DomainResult) Class {
	conns := a.scratch[:0]
	for j := range d.Conns {
		conns = append(conns, AnalyzeConn(&d.Conns[j]))
	}
	a.scratch = conns
	da := DomainAnalysis{Src: d, Conns: conns, Class: DomainClass(conns)}
	for i := range a.overview {
		a.overview[i].add(&da)
		a.config[i].add(&da)
	}
	a.orgs.add(&da)
	a.software.add(&da)
	a.errs.add(d)
	a.acc.add(&da)
	if a.long != nil {
		a.long.add(&da)
	}
	return da.Class
}

// Sink adapts the accumulator to scanner.RunStream's delivery callback.
func (a *Accumulator) Sink() func(i int, d *scanner.DomainResult) error {
	return func(_ int, d *scanner.DomainResult) error {
		a.Add(d)
		return nil
	}
}

// RenderOverview renders Table 1/4 from the folded state.
func (a *Accumulator) RenderOverview() *report.Table {
	rows := make([]OverviewRow, 0, len(a.overview))
	for _, f := range a.overview {
		rows = append(rows, f.finish())
	}
	return renderOverviewTable(a.Week, a.IPv6, rows)
}

// RenderOrgTable renders Table 2 (com/net/org view, as in the batch path).
func (a *Accumulator) RenderOrgTable(topN int) *report.Table {
	return renderOrgTable(a.Week, a.orgs.finish(topN))
}

// RenderSpinConfig renders Table 3.
func (a *Accumulator) RenderSpinConfig() *report.Table {
	rows := make([]ConfigRow, 0, len(a.config))
	for _, f := range a.config {
		rows = append(rows, f.row)
	}
	return renderSpinConfigTable(a.Week, rows)
}

// RenderSoftwareTable renders the §4.2 attribution (CZDS view, matching
// the batch summary).
func (a *Accumulator) RenderSoftwareTable() *report.Table {
	return renderSoftwareTable(a.software.v.Label, a.Week, a.software.finish())
}

// RenderErrorClasses renders Table 5.
func (a *Accumulator) RenderErrorClasses() *report.Table {
	return renderErrorTable(a.Week, a.errs)
}

// OverviewRows returns the finished Table 1/4 rows (one per view), for
// consumers that need the counts rather than the rendered table (the
// cross-vantage agreement table in internal/shard).
func (a *Accumulator) OverviewRows() []OverviewRow {
	rows := make([]OverviewRow, 0, len(a.overview))
	for _, f := range a.overview {
		rows = append(rows, f.finish())
	}
	return rows
}

// ConfigRows returns the Table 3 classification rows (one per view).
func (a *Accumulator) ConfigRows() []ConfigRow {
	rows := make([]ConfigRow, 0, len(a.config))
	for _, f := range a.config {
		rows = append(rows, f.row)
	}
	return rows
}

// RenderAccuracy renders the week's Fig. 3 or Fig. 4 panels.
func (a *Accumulator) RenderAccuracy(fig int) string {
	return renderAccuracyFrom(fig, func(i int) *stats.Histogram {
		return a.acc.histAt(fig, i)
	})
}

// Headlines returns the week's §5.2 headline accuracy shares.
func (a *Accumulator) Headlines() AccuracyHeadlines {
	return a.acc.headlines()
}

// CampaignAccumulator spans a multi-week campaign: it owns the shared
// Fig. 2 fold (cross-week spin history by domain name) and merges the
// weekly accuracy folds for campaign-level Figs. 3/4, mirroring the batch
// pipeline's Longitudinally(weeks) and RenderAccuracy(weeks, fig).
type CampaignAccumulator struct {
	long  *longFold
	weeks []*Accumulator
}

// NewCampaignAccumulator prepares a streaming multi-week campaign.
func NewCampaignAccumulator() *CampaignAccumulator {
	return &CampaignAccumulator{long: newLongFold()}
}

// StartWeek returns the accumulator for one week's scan, wired into the
// campaign's longitudinal fold. Weeks are indexed by (week, ipv6), not by
// call order: starting weeks 3, 1, 2 yields the same campaign as 1, 2, 3,
// and starting an already-started week returns its existing accumulator
// (further Adds continue the same week's fold). This is what lets shard
// workers scan week subsets in any order and still merge into an aligned
// longitudinal table. Weekly aggregate state stays available for rendering
// but no per-domain data is retained.
func (c *CampaignAccumulator) StartWeek(week int, ipv6 bool, res *asdb.Resolver) *Accumulator {
	if a := c.findWeek(week, ipv6); a != nil {
		return a
	}
	a := NewAccumulator(week, ipv6, res)
	a.long = c.long
	c.insertWeek(a)
	return a
}

// Weeks returns the per-week accumulators in (Week, IPv6) order,
// independent of the order they were started in.
func (c *CampaignAccumulator) Weeks() []*Accumulator { return c.weeks }

// Longitudinal computes the Fig. 2 dataset over all started weeks.
func (c *CampaignAccumulator) Longitudinal() Longitudinal {
	return c.long.finish(len(c.weeks))
}

// RenderAccuracy renders campaign-level Fig. 3 or Fig. 4 panels over every
// week's connections, like the batch RenderAccuracy(weeks, fig).
func (c *CampaignAccumulator) RenderAccuracy(fig int) string {
	merged := newAccuracyFold()
	for _, a := range c.weeks {
		merged.merge(a.acc)
	}
	return renderAccuracyFrom(fig, func(i int) *stats.Histogram {
		return merged.histAt(fig, i)
	})
}
