package analysis

import (
	"bytes"
	"errors"
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// The merge-property suite pins the algebra the distributed coordinator
// (internal/shard) builds on: Merge is associative and commutative with
// the fresh accumulator as identity, merging accumulators folded over a
// split population equals folding the whole, and the serialized form is a
// faithful, byte-stable transport for all of it. Every comparison is on
// rendered table bytes — the same equality the shard determinism goldens
// use — over seeded worlds at several scales and both engines.

// mergeCase is one seeded world scan the properties run over.
type mergeCase struct {
	name   string
	scale  int // population divisor: larger scale = smaller world
	engine scanner.Engine
	week   int
	seed   int64
}

var mergeCases = []mergeCase{
	{"fast-small", 200_000, scanner.EngineFast, 2, 11},
	{"fast-large", 20_000, scanner.EngineFast, 5, 42},
	{"emulated-small", 100_000, scanner.EngineEmulated, 3, 7},
}

// scanCase materialises the case's scan once (properties re-fold slices of
// it into fresh accumulators, which is cheap).
func scanCase(t *testing.T, mc mergeCase) (*websim.World, *scanner.Result) {
	t.Helper()
	p := websim.DefaultProfile()
	p.Scale = mc.scale
	world := websim.Generate(p)
	res, err := scanner.Run(world, scanner.Config{Week: mc.week, Engine: mc.engine, Seed: mc.seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Domains) < 16 {
		t.Fatalf("world too small for split properties: %d domains", len(res.Domains))
	}
	return world, res
}

// accOver folds a slice of the materialised scan into a fresh accumulator.
func accOver(world *websim.World, res *scanner.Result, lo, hi int) *Accumulator {
	a := NewAccumulator(res.Week, res.IPv6, world.ASDB())
	for i := lo; i < hi; i++ {
		a.Add(&res.Domains[i])
	}
	return a
}

// splitBounds cuts [0, n) into k contiguous pieces like shard.Plan.
func splitBounds(n, k int) [][2]int {
	out := make([][2]int, 0, k)
	base, extra := n/k, n%k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// roundTrip clones an accumulator through the wire format.
func roundTrip(t *testing.T, world *websim.World, a *Accumulator) *Accumulator {
	t.Helper()
	c, err := UnmarshalAccumulator(a.Marshal(), world.ASDB())
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	return c
}

func TestMergeProperties(t *testing.T) {
	for _, mc := range mergeCases {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			world, res := scanCase(t, mc)
			n := len(res.Domains)
			golden := renderStreamWeek(accOver(world, res, 0, n))

			t.Run("identity", func(t *testing.T) {
				// empty ⊕ whole == whole == whole ⊕ empty.
				empty := NewAccumulator(res.Week, res.IPv6, world.ASDB())
				if err := empty.Merge(accOver(world, res, 0, n)); err != nil {
					t.Fatal(err)
				}
				if got := renderStreamWeek(empty); got != golden {
					t.Errorf("empty.Merge(whole) diverges from fold-of-whole")
				}
				whole := accOver(world, res, 0, n)
				if err := whole.Merge(NewAccumulator(res.Week, res.IPv6, world.ASDB())); err != nil {
					t.Fatal(err)
				}
				if got := renderStreamWeek(whole); got != golden {
					t.Errorf("whole.Merge(empty) diverges from fold-of-whole")
				}
			})

			t.Run("merge-of-splits", func(t *testing.T) {
				for _, k := range []int{2, 3, 8} {
					bounds := splitBounds(n, k)
					merged := accOver(world, res, bounds[0][0], bounds[0][1])
					for _, b := range bounds[1:] {
						if err := merged.Merge(accOver(world, res, b[0], b[1])); err != nil {
							t.Fatal(err)
						}
					}
					if got := renderStreamWeek(merged); got != golden {
						t.Errorf("merge of %d splits diverges from fold-of-whole", k)
					}
				}
			})

			t.Run("commutativity", func(t *testing.T) {
				bounds := splitBounds(n, 4)
				merged := accOver(world, res, bounds[3][0], bounds[3][1])
				for i := 2; i >= 0; i-- {
					if err := merged.Merge(accOver(world, res, bounds[i][0], bounds[i][1])); err != nil {
						t.Fatal(err)
					}
				}
				if got := renderStreamWeek(merged); got != golden {
					t.Errorf("reverse-order merge diverges from fold-of-whole")
				}
			})

			t.Run("associativity", func(t *testing.T) {
				bounds := splitBounds(n, 3)
				part := func(i int) *Accumulator { return accOver(world, res, bounds[i][0], bounds[i][1]) }
				// (a ⊕ b) ⊕ c
				left := part(0)
				if err := left.Merge(part(1)); err != nil {
					t.Fatal(err)
				}
				if err := left.Merge(part(2)); err != nil {
					t.Fatal(err)
				}
				// a ⊕ (b ⊕ c)
				bc := part(1)
				if err := bc.Merge(part(2)); err != nil {
					t.Fatal(err)
				}
				right := part(0)
				if err := right.Merge(bc); err != nil {
					t.Fatal(err)
				}
				gl, gr := renderStreamWeek(left), renderStreamWeek(right)
				if gl != gr {
					t.Errorf("(a⊕b)⊕c and a⊕(b⊕c) render differently")
				}
				if gl != golden {
					t.Errorf("associative merges diverge from fold-of-whole")
				}
			})

			t.Run("serialized", func(t *testing.T) {
				// Every part travels through the wire format, as a real
				// worker exchange would carry it.
				bounds := splitBounds(n, 4)
				merged := roundTrip(t, world, accOver(world, res, bounds[0][0], bounds[0][1]))
				for _, b := range bounds[1:] {
					if err := merged.Merge(roundTrip(t, world, accOver(world, res, b[0], b[1]))); err != nil {
						t.Fatal(err)
					}
				}
				if got := renderStreamWeek(merged); got != golden {
					t.Errorf("serialized merge diverges from fold-of-whole")
				}
			})

			t.Run("marshal-stability", func(t *testing.T) {
				a := accOver(world, res, 0, n)
				b1 := a.Marshal()
				b2 := roundTrip(t, world, a).Marshal()
				if !bytes.Equal(b1, b2) {
					t.Errorf("Marshal→Unmarshal→Marshal is not byte-stable (%d vs %d bytes)", len(b1), len(b2))
				}
			})
		})
	}
}

// TestCampaignMerge checks the campaign-level laws: longitudinal and
// accuracy output of merged shard campaigns (each scanning a population
// slice across every week) equals the single-campaign fold, including
// through the serialized campaign form.
func TestCampaignMerge(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 100_000
	world := websim.Generate(p)
	weeks := []int{1, 2, 3}
	results := make([]*scanner.Result, 0, len(weeks))
	for _, wk := range weeks {
		r, err := scanner.Run(world, scanner.Config{Week: wk, Engine: scanner.EngineFast, Seed: 5 + int64(wk), Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	n := len(results[0].Domains)

	campOver := func(lo, hi int) *CampaignAccumulator {
		c := NewCampaignAccumulator()
		for _, r := range results {
			acc := c.StartWeek(r.Week, r.IPv6, world.ASDB())
			for i := lo; i < hi; i++ {
				acc.Add(&r.Domains[i])
			}
		}
		return c
	}
	renderCampaign := func(c *CampaignAccumulator) string {
		out := RenderLongitudinal(c.Longitudinal()).String()
		out += c.RenderAccuracy(3)
		out += c.RenderAccuracy(4)
		for _, a := range c.Weeks() {
			out += renderStreamWeek(a)
		}
		return out
	}

	golden := renderCampaign(campOver(0, n))
	for _, serialized := range []bool{false, true} {
		name := "direct"
		if serialized {
			name = "serialized"
		}
		t.Run(name, func(t *testing.T) {
			bounds := splitBounds(n, 4)
			parts := make([]*CampaignAccumulator, 0, len(bounds))
			for _, b := range bounds {
				c := campOver(b[0], b[1])
				if serialized {
					rt, err := UnmarshalCampaign(c.Marshal(), world.ASDB())
					if err != nil {
						t.Fatalf("campaign round-trip: %v", err)
					}
					c = rt
				}
				parts = append(parts, c)
			}
			merged := parts[0]
			for _, c := range parts[1:] {
				if err := merged.Merge(c); err != nil {
					t.Fatal(err)
				}
			}
			if got := renderCampaign(merged); got != golden {
				t.Errorf("merged shard campaigns diverge from the single-campaign fold")
			}
		})
	}

	t.Run("week-subset-merge", func(t *testing.T) {
		// Campaigns that each scanned different week subsets merge into
		// the full campaign: weeks pair by number, not arrival order.
		a := NewCampaignAccumulator()
		for _, r := range results[:1] {
			acc := a.StartWeek(r.Week, r.IPv6, world.ASDB())
			for i := range r.Domains {
				acc.Add(&r.Domains[i])
			}
		}
		b := NewCampaignAccumulator()
		for _, r := range results[1:] {
			acc := b.StartWeek(r.Week, r.IPv6, world.ASDB())
			for i := range r.Domains {
				acc.Add(&r.Domains[i])
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if got := renderCampaign(a); got != golden {
			t.Errorf("week-subset merge diverges from the single-campaign fold")
		}
	})

	t.Run("campaign-marshal-stability", func(t *testing.T) {
		c := campOver(0, n)
		b1 := c.Marshal()
		rt, err := UnmarshalCampaign(b1, world.ASDB())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, rt.Marshal()) {
			t.Errorf("campaign Marshal→Unmarshal→Marshal is not byte-stable")
		}
	})
}

// TestStartWeekOutOfOrder is the regression test for the week-indexing
// fix: StartWeek used to append in call order and Longitudinal counted
// calls, so out-of-order weeks silently misaligned the Fig. 2 table.
func TestStartWeekOutOfOrder(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 200_000
	world := websim.Generate(p)
	weeks := []int{1, 2, 3}
	byWeek := map[int]*scanner.Result{}
	for _, wk := range weeks {
		r, err := scanner.Run(world, scanner.Config{Week: wk, Engine: scanner.EngineFast, Seed: 9 + int64(wk), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		byWeek[wk] = r
	}
	feed := func(order []int) *CampaignAccumulator {
		c := NewCampaignAccumulator()
		for _, wk := range order {
			r := byWeek[wk]
			acc := c.StartWeek(wk, r.IPv6, world.ASDB())
			for i := range r.Domains {
				acc.Add(&r.Domains[i])
			}
		}
		return c
	}
	inOrder := feed([]int{1, 2, 3})
	golden := RenderLongitudinal(inOrder.Longitudinal()).String()
	for _, order := range [][]int{{3, 1, 2}, {2, 3, 1}, {3, 2, 1}} {
		c := feed(order)
		if got := RenderLongitudinal(c.Longitudinal()).String(); got != golden {
			t.Errorf("StartWeek order %v changes the longitudinal table:\n--- in order ---\n%s\n--- %v ---\n%s", order, golden, order, got)
		}
		ws := c.Weeks()
		for i := 1; i < len(ws); i++ {
			if ws[i-1].Week >= ws[i].Week {
				t.Fatalf("Weeks() not sorted after order %v: %d before %d", order, ws[i-1].Week, ws[i].Week)
			}
		}
	}
	// Restarting an existing week returns its accumulator instead of
	// forking a misaligned sibling.
	c := feed([]int{1, 2})
	if a, b := c.StartWeek(2, false, world.ASDB()), c.findWeek(2, false); a != b {
		t.Errorf("StartWeek(2) did not return the existing week accumulator")
	}
}

// TestMergeMismatch pins the structured error for misaligned merges.
func TestMergeMismatch(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 500_000
	world := websim.Generate(p)
	a := NewAccumulator(1, false, world.ASDB())
	var me *MergeError
	if err := a.Merge(NewAccumulator(2, false, world.ASDB())); !errors.As(err, &me) || me.Field != "week" {
		t.Errorf("week-mismatch merge returned %v, want *MergeError{Field: week}", err)
	}
	if err := a.Merge(NewAccumulator(1, true, world.ASDB())); !errors.As(err, &me) || me.Field != "ipv6" {
		t.Errorf("ipv6-mismatch merge returned %v, want *MergeError{Field: ipv6}", err)
	}
	if err := a.Merge(NewAccumulator(1, false, world.ASDB())); err != nil {
		t.Errorf("aligned merge returned %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge returned %v", err)
	}
}
