package analysis

import (
	"testing"

	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// The golden-equivalence suite pins the streaming pipeline to the batch
// oracle: scanner.RunStream feeding an Accumulator must render every
// summary table byte-identically to RunBatch + Analyze + the batch
// renderers, for any worker count. RunBatch exists only to back these
// tests (and spinscan -stream=false).

// renderBatchWeek renders one analysed week through the batch path, in
// spinscan's summary order.
func renderBatchWeek(world *websim.World, wk *Week) string {
	out := RenderOverview(wk).String()
	out += RenderOrgTable(wk, world.ASDB(), 8).String()
	out += RenderSpinConfig(wk).String()
	out += RenderSoftwareTable(wk, StandardViews()[1]).String()
	out += RenderErrorClasses(wk).String()
	out += RenderAccuracy([]*Week{wk}, 3)
	out += RenderAccuracy([]*Week{wk}, 4)
	return out
}

// renderStreamWeek renders the same tables from a streaming accumulator.
func renderStreamWeek(a *Accumulator) string {
	out := a.RenderOverview().String()
	out += a.RenderOrgTable(8).String()
	out += a.RenderSpinConfig().String()
	out += a.RenderSoftwareTable().String()
	out += a.RenderErrorClasses().String()
	out += a.RenderAccuracy(3)
	out += a.RenderAccuracy(4)
	return out
}

func TestStreamingMatchesBatchOracle(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 2000
	world := websim.Generate(p)
	cfg := scanner.Config{Week: 5, Engine: scanner.EngineFast, Seed: 42, Workers: 4}

	r, err := scanner.RunBatch(world, cfg)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	golden := renderBatchWeek(world, Analyze(r))
	if golden == "" {
		t.Fatal("empty golden rendering")
	}

	for _, workers := range []int{1, 4, 16} {
		cfg := cfg
		cfg.Workers = workers
		acc := NewAccumulator(cfg.Week, cfg.IPv6, world.ASDB())
		if err := scanner.RunStream(world, cfg, acc.Sink()); err != nil {
			t.Fatalf("RunStream workers=%d: %v", workers, err)
		}
		if got := renderStreamWeek(acc); got != golden {
			t.Errorf("workers=%d: streaming rendering differs from batch oracle\n--- stream ---\n%.2000s\n--- batch ---\n%.2000s", workers, got, golden)
		}

		// The materialising Run wraps the same pipeline; its analysis must
		// agree too.
		rs, err := scanner.Run(world, cfg)
		if err != nil {
			t.Fatalf("Run workers=%d: %v", workers, err)
		}
		if got := renderBatchWeek(world, Analyze(rs)); got != golden {
			t.Errorf("workers=%d: materialised streaming Run differs from batch oracle", workers)
		}
	}
}

func TestStreamingMatchesBatchOracleEmulated(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 20000
	world := websim.Generate(p)
	cfg := scanner.Config{Week: 2, Engine: scanner.EngineEmulated, Seed: 7, Workers: 8}

	r, err := scanner.RunBatch(world, cfg)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	golden := renderBatchWeek(world, Analyze(r))

	acc := NewAccumulator(cfg.Week, cfg.IPv6, world.ASDB())
	if err := scanner.RunStream(world, cfg, acc.Sink()); err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if got := renderStreamWeek(acc); got != golden {
		t.Error("emulated streaming rendering differs from batch oracle")
	}
}

func TestCampaignAccumulatorMatchesBatch(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 20000
	p.Weeks = 4
	world := websim.Generate(p)

	camp := NewCampaignAccumulator()
	var weeks []*Week
	for wknum := 1; wknum <= p.Weeks; wknum++ {
		cfg := scanner.Config{Week: wknum, Engine: scanner.EngineFast, Seed: 99, Workers: 4}
		r, err := scanner.RunBatch(world, cfg)
		if err != nil {
			t.Fatalf("RunBatch week %d: %v", wknum, err)
		}
		weeks = append(weeks, Analyze(r))

		acc := camp.StartWeek(wknum, cfg.IPv6, world.ASDB())
		if err := scanner.RunStream(world, cfg, acc.Sink()); err != nil {
			t.Fatalf("RunStream week %d: %v", wknum, err)
		}
	}

	gotLong := RenderLongitudinal(camp.Longitudinal()).String()
	wantLong := RenderLongitudinal(Longitudinally(weeks)).String()
	if gotLong != wantLong {
		t.Errorf("longitudinal mismatch\n--- stream ---\n%s--- batch ---\n%s", gotLong, wantLong)
	}
	for _, fig := range []int{3, 4} {
		if got, want := camp.RenderAccuracy(fig), RenderAccuracy(weeks, fig); got != want {
			t.Errorf("campaign accuracy fig %d mismatch", fig)
		}
	}
	if got, want := camp.Weeks()[len(camp.Weeks())-1].Headlines(), Headlines(weeks[len(weeks)-1:]); got != want {
		t.Errorf("weekly headlines mismatch: %+v vs %+v", got, want)
	}
}

func TestStreamingLazyWorldDeterminism(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 20000
	world := websim.GenerateLazy(p)

	var renders []string
	for _, workers := range []int{1, 4, 16} {
		cfg := scanner.Config{Week: 3, Engine: scanner.EngineFast, Seed: 11, Workers: workers}
		acc := NewAccumulator(cfg.Week, cfg.IPv6, world.ASDB())
		if err := scanner.RunStream(world, cfg, acc.Sink()); err != nil {
			t.Fatalf("RunStream workers=%d: %v", workers, err)
		}
		renders = append(renders, renderStreamWeek(acc))
	}
	if renders[0] != renders[1] || renders[1] != renders[2] {
		t.Error("lazy-world streaming rendering varies with worker count")
	}
	if renders[0] == "" {
		t.Error("empty lazy-world rendering")
	}
}
