package analysis

import (
	"errors"
	"strings"
	"testing"

	"quicspin/internal/dns"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// renderTables runs one campaign week and renders the paper's Table 1 and
// Table 3 — the byte-identity currency of the determinism gates.
func renderTables(t *testing.T, w *websim.World, cfg scanner.Config) (string, string) {
	t.Helper()
	r, err := scanner.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wk := Analyze(r)
	return RenderOverview(wk).String(), RenderSpinConfig(wk).String()
}

// TestResumeIdentical is the acceptance gate for checkpoint/resume: a
// campaign interrupted at ~50% and resumed from its journal must render
// Table 1 and Table 3 byte-identical to an uninterrupted run — for the
// resumed run scanning the remainder with a different worker count than
// the interrupted one used.
func TestResumeIdentical(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 50_000
	w := websim.Generate(p)
	base := scanner.Config{Week: 3, Engine: scanner.EngineFast, Seed: 7}

	for _, workers := range []int{1, 4} {
		ref := base
		ref.Workers = workers
		refOverview, refConfig := renderTables(t, w, ref)
		if !strings.Contains(refOverview, "CZDS") || !strings.Contains(refConfig, "All Zero") {
			t.Fatalf("reference tables look wrong:\n%s\n%s", refOverview, refConfig)
		}

		dir := t.TempDir()
		interrupted := ref
		interrupted.Checkpoint = dir
		interrupted.InterruptAfter = int64(len(w.Domains) / 2)
		if _, err := scanner.Run(w, interrupted); !errors.Is(err, scanner.ErrInterrupted) {
			t.Fatalf("interrupted run error = %v, want ErrInterrupted", err)
		}

		resumed := ref
		resumed.Checkpoint = dir
		resumed.Resume = true
		resumed.Workers = 5 - workers // resume under a different sharding
		gotOverview, gotConfig := renderTables(t, w, resumed)
		if gotOverview != refOverview {
			t.Errorf("Workers=%d: Table 1 differs after resume:\n--- full ---\n%s\n--- resumed ---\n%s",
				workers, refOverview, gotOverview)
		}
		if gotConfig != refConfig {
			t.Errorf("Workers=%d: Table 3 differs after resume:\n--- full ---\n%s\n--- resumed ---\n%s",
				workers, refConfig, gotConfig)
		}
	}
}

// TestResumeIdenticalEmulated covers the packet-level engine at a smaller
// scale: journal replay and the rescanned remainder must reproduce the
// uninterrupted tables byte-for-byte despite per-worker event loops.
func TestResumeIdenticalEmulated(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 400_000
	w := websim.Generate(p)
	base := scanner.Config{Week: 2, Engine: scanner.EngineEmulated, Seed: 11, Workers: 4}
	refOverview, refConfig := renderTables(t, w, base)

	dir := t.TempDir()
	interrupted := base
	interrupted.Checkpoint = dir
	interrupted.InterruptAfter = int64(len(w.Domains) / 2)
	if _, err := scanner.Run(w, interrupted); !errors.Is(err, scanner.ErrInterrupted) {
		t.Fatalf("interrupted run error = %v, want ErrInterrupted", err)
	}

	resumed := base
	resumed.Checkpoint = dir
	resumed.Resume = true
	resumed.Workers = 2
	gotOverview, gotConfig := renderTables(t, w, resumed)
	if gotOverview != refOverview || gotConfig != refConfig {
		t.Errorf("emulated tables differ after resume:\n--- full ---\n%s\n%s\n--- resumed ---\n%s\n%s",
			refOverview, refConfig, gotOverview, gotConfig)
	}
}

// TestTableDeterminismUnderRetries extends the worker-invariance gate to
// campaigns with transient failures and retries: a pure-function DNS
// failure schedule plus a retry budget must leave Table 1 and Table 3
// byte-identical for Workers ∈ {1, 4, 16}.
func TestTableDeterminismUnderRetries(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 50_000
	w := websim.Generate(p)
	base := scanner.Config{
		Week: 3, Engine: scanner.EngineFast, Seed: 7,
		Retry:       resilience.RetryPolicy{MaxRetries: 2},
		DNSSchedule: func(name string, _ dns.RType) int { return len(name) % 3 },
	}
	ref := base
	ref.Workers = 1
	refOverview, refConfig := renderTables(t, w, ref)
	for _, workers := range []int{4, 16} {
		cfg := base
		cfg.Workers = workers
		gotOverview, gotConfig := renderTables(t, w, cfg)
		if gotOverview != refOverview || gotConfig != refConfig {
			t.Errorf("tables differ between Workers=1 and Workers=%d under retries", workers)
		}
	}
}
