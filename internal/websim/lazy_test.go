package websim

import (
	"reflect"
	"testing"
)

func lazyTestWorld() *World {
	p := DefaultProfile()
	p.Scale = 20000
	return GenerateLazy(p)
}

// Lazy synthesis must be a pure function of (seed, index): repeated
// lookups of the same domain agree in every field, including redirects.
func TestLazyDomainAtRepeatable(t *testing.T) {
	w := lazyTestWorld()
	n := w.NumDomains()
	if n == 0 {
		t.Fatal("empty lazy population")
	}
	step := n/200 + 1
	for i := 0; i < n; i += step {
		a, b := w.DomainAt(i), w.DomainAt(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("domain %d not repeatable: %+v vs %+v", i, a, b)
		}
	}
}

// The org layer of a lazy world is byte-identical to the eager world of
// the same profile: org draws precede domain draws in Generate's stream.
func TestLazyOrgLayerMatchesEager(t *testing.T) {
	p := DefaultProfile()
	p.Scale = 20000
	eager, lazy := Generate(p), GenerateLazy(p)
	if len(eager.Orgs) != len(lazy.Orgs) {
		t.Fatalf("org count: eager %d lazy %d", len(eager.Orgs), len(lazy.Orgs))
	}
	for i := range eager.Orgs {
		e, l := eager.Orgs[i], lazy.Orgs[i]
		if e.Name != l.Name || e.V4Prefix != l.V4Prefix || e.V6Prefix != l.V6Prefix ||
			len(e.v4Pool) != len(l.v4Pool) || len(e.v6Pool) != len(l.v6Pool) {
			t.Errorf("org %d differs: eager %s lazy %s", i, e.Name, l.Name)
		}
	}
	if eager.NumDomains() != lazy.NumDomains() {
		t.Errorf("population: eager %d lazy %d", eager.NumDomains(), lazy.NumDomains())
	}
}

// DomainByHost must invert DomainAt across the whole population, and
// reject names that were never generated.
func TestLazyDomainByHostRoundTrip(t *testing.T) {
	w := lazyTestWorld()
	n := w.NumDomains()
	step := n/500 + 1
	for i := 0; i < n; i += step {
		d := w.DomainAt(i)
		got := w.DomainByHost(d.Host())
		if got == nil {
			t.Fatalf("domain %d (%s) not found by host", i, d.Host())
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("domain %d round trip differs: %+v vs %+v", i, got, d)
		}
	}
	for _, miss := range []string{"www.top0.example", "nope", "www.site99999999.com", "www.bogus7.net"} {
		if d := w.DomainByHost(miss); d != nil && d.Name == miss {
			t.Errorf("unexpected hit for %q", miss)
		}
	}
}

// DNS answers must agree with the domain's synthesised addresses.
func TestLazyDNSConsistency(t *testing.T) {
	w := lazyTestWorld()
	zone := w.DNSBackend()
	n := w.NumDomains()
	step := n/500 + 1
	for i := 0; i < n; i += step {
		d := w.DomainAt(i)
		rec, ok := zone.Zone(d.Host())
		if !d.Resolves {
			if ok {
				t.Fatalf("NXDOMAIN %s resolved", d.Host())
			}
			continue
		}
		if !ok {
			t.Fatalf("resolving domain %s has no zone record", d.Host())
		}
		if d.V4.IsValid() != (len(rec.A) == 1) || (d.V4.IsValid() && rec.A[0] != d.V4) {
			t.Fatalf("%s A record mismatch: %v vs %v", d.Host(), rec.A, d.V4)
		}
		if d.V6.IsValid() != (len(rec.AAAA) == 1) || (d.V6.IsValid() && rec.AAAA[0] != d.V6) {
			t.Fatalf("%s AAAA record mismatch: %v vs %v", d.Host(), rec.AAAA, d.V6)
		}
	}
}

// Every address a domain resolves to must host a consistent server: same
// deployment on repeated lookups, org matching the owning prefix, and the
// per-domain v6 address fronting the same stack as the domain's v4 server.
func TestLazyServerConsistency(t *testing.T) {
	w := lazyTestWorld()
	n := w.NumDomains()
	step := n/500 + 1
	checked := 0
	for i := 0; i < n; i += step {
		d := w.DomainAt(i)
		if !d.V4.IsValid() {
			continue
		}
		s := w.ServerAt(d.V4)
		if s == nil {
			t.Fatalf("domain %s: no server at %s", d.Name, d.V4)
		}
		if !reflect.DeepEqual(s, w.ServerAt(d.V4)) {
			t.Fatalf("server at %s not repeatable", d.V4)
		}
		if s.Org != d.Org {
			t.Fatalf("server org %s != domain org %s", s.Org.Name, d.Org.Name)
		}
		if s.QUIC != d.Org.QUICHosting {
			t.Fatalf("server QUIC %v != org hosting %v", s.QUIC, d.Org.QUICHosting)
		}
		if d.V6.IsValid() && d.Org.V6PerDomain {
			s6 := w.ServerAt(d.V6)
			if s6 == nil {
				t.Fatalf("domain %s: no server at per-domain v6 %s", d.Name, d.V6)
			}
			if s6.Mode != s.Mode || s6.BaseRTT != s.BaseRTT || s6.Software != s.Software {
				t.Fatalf("per-domain v6 server diverges from v4: %+v vs %+v", s6, s)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no resolving domains sampled")
	}
}

// Cross-host redirect targets must themselves exist, resolve, and host
// QUIC — the invariant eager generation enforces when drawing targets.
func TestLazyRedirectTargetsValid(t *testing.T) {
	w := lazyTestWorld()
	n := w.NumDomains()
	cross := 0
	for i := 0; i < n && cross < 50; i++ {
		d := w.DomainAt(i)
		if d.RedirectTo == "" || d.RedirectTo == d.Name {
			continue
		}
		cross++
		tgt := w.DomainByHost("www." + d.RedirectTo)
		if tgt == nil {
			t.Fatalf("redirect target %s of %s does not exist", d.RedirectTo, d.Name)
		}
		if !tgt.Resolves || tgt.Org == nil || !tgt.Org.QUICHosting {
			t.Fatalf("redirect target %s is not a QUIC host", d.RedirectTo)
		}
	}
	if cross == 0 {
		t.Error("no cross-host redirects found in lazy population")
	}
}

// The lazy population's aggregate shape (resolve/QUIC rates) must stay in
// the profile's statistical neighbourhood even though the draws are keyed
// per domain instead of sequential.
func TestLazyPopulationShape(t *testing.T) {
	w := lazyTestWorld()
	n := w.NumDomains()
	resolved, quic := 0, 0
	for i := 0; i < n; i++ {
		d := w.DomainAt(i)
		if d.Resolves {
			resolved++
			if d.Org != nil && d.Org.QUICHosting {
				quic++
			}
		}
	}
	resRate := float64(resolved) / float64(n)
	if resRate < 0.40 || resRate > 0.90 {
		t.Errorf("resolve rate %.3f outside plausible band", resRate)
	}
	quicRate := float64(quic) / float64(resolved)
	if quicRate < 0.05 || quicRate > 0.60 {
		t.Errorf("QUIC rate %.3f outside plausible band", quicRate)
	}
}
