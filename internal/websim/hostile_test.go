package websim

import (
	"testing"

	"quicspin/internal/hostile"
)

// TestHostileFracZeroIdentity checks that hostile assignment is draw-free:
// a HostileFrac=0 world and a HostileFrac>0 world from the same seed are
// identical in every non-Hostile respect, so enabling the chaos knob
// cannot perturb the simulated population itself.
func TestHostileFracZeroIdentity(t *testing.T) {
	base := DefaultProfile()
	base.Scale = 20_000
	clean := Generate(base)

	chaotic := base
	chaotic.HostileFrac = 0.3
	dirty := Generate(chaotic)

	for _, s := range clean.Servers() {
		if s.Hostile != hostile.None {
			t.Fatalf("server %s hostile in a frac=0 world: %s", s.Addr, s.Hostile)
		}
	}
	if len(clean.Domains) != len(dirty.Domains) {
		t.Fatalf("domain count diverged: %d vs %d", len(clean.Domains), len(dirty.Domains))
	}
	if len(clean.Servers()) != len(dirty.Servers()) {
		t.Fatalf("server count diverged: %d vs %d", len(clean.Servers()), len(dirty.Servers()))
	}
	for addr, cs := range clean.Servers() {
		ds := dirty.ServerAt(addr)
		if ds == nil {
			t.Fatalf("server %s missing from the hostile world", addr)
		}
		if cs.QUIC != ds.QUIC || cs.Mode != ds.Mode || cs.Software != ds.Software ||
			cs.BaseRTT != ds.BaseRTT || cs.DisableEveryN != ds.DisableEveryN ||
			cs.SpinFromWeek != ds.SpinFromWeek || cs.SpinToWeek != ds.SpinToWeek {
			t.Fatalf("server %s diverged beyond the Hostile field:\n clean: %+v\n dirty: %+v", addr, cs, ds)
		}
	}
}

// TestHostileFracAssignment checks the assignment respects the QUIC-only
// rule and lands near the requested fraction.
func TestHostileFracAssignment(t *testing.T) {
	prof := DefaultProfile()
	prof.Scale = 5_000
	prof.HostileFrac = 0.3
	world := Generate(prof)

	quicN, hostileN := 0, 0
	for _, s := range world.Servers() {
		if !s.QUIC {
			if s.Hostile != hostile.None {
				t.Fatalf("non-QUIC server %s assigned profile %s", s.Addr, s.Hostile)
			}
			continue
		}
		quicN++
		if s.Hostile != hostile.None {
			hostileN++
		}
	}
	if quicN == 0 {
		t.Fatal("no QUIC servers generated; test is vacuous")
	}
	if hostileN == 0 {
		t.Fatalf("no hostile servers among %d QUIC servers at frac 0.3", quicN)
	}
	// v6 clones inherit their v4 twin's profile rather than drawing
	// independently, so the share is looser than Assign's own uniformity:
	// just require it lands in a broad band around the requested fraction.
	share := float64(hostileN) / float64(quicN)
	if share < 0.10 || share > 0.55 {
		t.Errorf("hostile share %.2f (%d/%d), want within [0.10, 0.55] of frac 0.3", share, hostileN, quicN)
	}
}
