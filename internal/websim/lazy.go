package websim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/hostile"
)

// Lazy world generation. GenerateLazy builds only the organisation layer
// (orgs, address pools, spin-mode quotas, the ASDB) eagerly; every domain
// and server is synthesised on demand from an rng keyed by (Seed, name)
// or (Seed, address). The synthesis is a pure function, so repeated
// lookups agree with each other — DNS answers, redirect targets and server
// deployments are self-consistent — and results are independent of lookup
// order and worker count.
//
// A lazy world is its own deterministic population: it is NOT
// byte-identical to the eager world of the same profile, because eager
// generation threads one rng stream through all domains in sequence while
// lazy generation gives every domain an independent stream. Within a mode,
// everything downstream (scan results, rendered tables) is reproducible;
// tests pin both modes' determinism separately. The streaming scanner
// (scanner.Run/RunStream) works with either; batch-materialising helpers
// (Lists, qlog replay) synthesise domains transiently and remain usable.

// lazyState marks a world as lazily generated and caches the population
// split.
type lazyState struct {
	topN  int
	zoneN int
}

// Salts separating the lazy per-domain and per-server rng streams from
// each other and from scan-time randomness.
const (
	lazyDomainSalt int64 = 0x1afd0e551a7e5eed
	lazyServerSalt int64 = 0x5eed5ca1ab1e0bad
)

// GenerateLazy builds a world whose population is synthesised on demand.
// The organisation layer (orgs, pools, spin quotas, ASDB) is identical to
// Generate's for the same profile; domains and servers draw from keyed
// rngs instead of the shared generation stream.
func GenerateLazy(p Profile) *World {
	if p.Scale < 1 {
		p.Scale = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := &World{
		Profile:  p,
		servers:  map[netip.Addr]*Server{},
		byHost:   map[string]*Domain{},
		zone:     dns.MapBackend{},
		prefixes: map[netip.Prefix]uint32{},
	}
	w.buildOrgs(rng)
	w.buildASDB()
	w.lazy = &lazyState{
		topN:  scaled(p.TopDomains, p.Scale),
		zoneN: scaled(p.ZoneDomains, p.Scale),
	}
	return w
}

// fnvOffset64/fnvPrime64 are the FNV-1a constants (hash/fnv, inlined to
// keep domain keying allocation-free).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// lazyLabel returns the canonical label and toplist membership of
// population index i.
func (w *World) lazyLabel(i int) (label string, top bool) {
	if i < w.lazy.topN {
		return fmt.Sprintf("top%d", i), true
	}
	return fmt.Sprintf("site%d", i-w.lazy.topN), false
}

// lazyDomainRng derives the per-domain synthesis stream. Labels are unique
// across the population, so streams never collide.
func (w *World) lazyDomainRng(label string) *rand.Rand {
	return rand.New(rand.NewSource(w.Profile.Seed ^ int64(fnv64(label)) ^ lazyDomainSalt))
}

// lazyDomainAt synthesises population index i, including its redirect
// assignment. The draw order mirrors eager addDomain: TLD, resolvability,
// QUIC hosting, org, body size, v4 placement, v6 dice — then the redirect
// dice that eager generation performs in its second pass, continuing the
// same per-domain stream.
func (w *World) lazyDomainAt(i int) *Domain {
	d, rng := w.lazyDomainBase(i)
	if !d.Resolves || d.Org == nil || !d.Org.QUICHosting {
		return d
	}
	p := w.Profile
	if rng.Float64() >= p.RedirectRate {
		return d
	}
	if rng.Float64() < p.CrossHostRedirectRate && w.NumDomains() > 1 {
		j := rng.Intn(w.NumDomains())
		if j != i {
			if t, _ := w.lazyDomainBase(j); t.Resolves && t.Org != nil && t.Org.QUICHosting {
				d.RedirectTo = t.Name
				return d
			}
		}
	}
	d.RedirectTo = d.Name // canonical-self redirect
	return d
}

// lazyDomainBase synthesises a domain without its redirect assignment
// (redirect targets use it to break the recursion) and returns the
// per-domain rng positioned after the base draws.
func (w *World) lazyDomainBase(i int) (*Domain, *rand.Rand) {
	p := w.Profile
	label, top := w.lazyLabel(i)
	rng := w.lazyDomainRng(label)
	tld := pickTLD(rng, top)
	d := &Domain{Name: label + "." + tld, TLD: tld, Toplist: top}

	resolveRate := p.ZoneResolveRate
	quicRate := p.ZoneQUICRate
	if top {
		resolveRate = p.TopResolveRate
		quicRate = p.TopQUICRate
	}
	if rng.Float64() >= resolveRate {
		return d, rng // NXDOMAIN
	}
	d.Resolves = true
	quic := rng.Float64() < quicRate
	d.Org = w.pickOrg(rng, top, quic)
	d.BodyBytes = int(logUniform(rng, float64(p.BodyMinBytes), float64(p.BodyMaxBytes)))

	d.V4 = d.Org.pick(rng, d.Org.v4Spin, d.Org.v4Rest)

	v6Share := d.Org.V6Share
	if top && d.Org.TopV6Share >= 0 {
		v6Share = d.Org.TopV6Share
	}
	if d.Org.V6PerDomain {
		if w.lazyServerMode(d.Org, d.V4) == core.ModeSpin {
			v6Share = min(1, v6Share*1.25)
		} else {
			v6Share *= 0.70
		}
	}
	if rng.Float64() < v6Share {
		if d.Org.V6PerDomain {
			// Index-keyed allocation replaces the eager sequential counter;
			// host 0 is never used, so i+1 keeps addresses unique and
			// reversible (lazyServerAt decodes the index back out).
			d.V6 = v6At(d.Org.V6Prefix, uint64(i)+1)
		} else if len(d.Org.v6Pool) > 0 {
			d.V6 = d.Org.pick(rng, d.Org.v6Spin, d.Org.v6Rest)
		}
	}
	return d, rng
}

// lazyServerMode looks up the spin-mode quota assignment of a pooled
// address (eager serverFor reads the same org table).
func (w *World) lazyServerMode(o *Org, addr netip.Addr) core.Mode {
	if m, ok := o.modes[addr]; ok {
		return m
	}
	return core.ModeZero
}

// lazyDomainByHost decodes a www-form host name back to its population
// index and re-synthesises the domain, returning nil for names outside
// the population (or whose TLD dice disagree with the queried name).
func (w *World) lazyDomainByHost(host string) *Domain {
	name, ok := strings.CutPrefix(host, "www.")
	if !ok {
		return nil
	}
	dot := strings.IndexByte(name, '.')
	if dot <= 0 {
		return nil
	}
	label := name[:dot]
	var idx int
	switch {
	case strings.HasPrefix(label, "top"):
		n, err := strconv.Atoi(label[3:])
		if err != nil || n < 0 || n >= w.lazy.topN {
			return nil
		}
		idx = n
	case strings.HasPrefix(label, "site"):
		n, err := strconv.Atoi(label[4:])
		if err != nil || n < 0 || n >= w.lazy.zoneN {
			return nil
		}
		idx = w.lazy.topN + n
	default:
		return nil
	}
	d := w.lazyDomainAt(idx)
	if d.Name != name {
		return nil // TLD mismatch: the queried name does not exist
	}
	return d
}

// lazyZone adapts lazy domain synthesis to the dns.Backend interface.
type lazyZone struct{ w *World }

// Zone implements dns.Backend: only resolving domains have records, with
// A/AAAA presence matching the domain's address dice.
func (z lazyZone) Zone(name string) (dns.Record, bool) {
	d := z.w.DomainByHost(name)
	if d == nil || !d.Resolves {
		return dns.Record{}, false
	}
	rec := dns.Record{}
	if d.V4.IsValid() {
		rec.A = []netip.Addr{d.V4}
	}
	if d.V6.IsValid() {
		rec.AAAA = []netip.Addr{d.V6}
	}
	return rec, true
}

// lazyServerAt synthesises the server deployed at addr, or nil for
// blackhole/unallocated space. Pooled addresses draw their deployment from
// an address-keyed rng; per-domain v6 addresses front the same stack as
// the owning domain's v4 server, like eager cloneServer.
func (w *World) lazyServerAt(addr netip.Addr) *Server {
	for _, o := range w.Orgs {
		switch {
		case o.V4Prefix.Contains(addr):
			if host, ok := v4HostIndex(o.V4Prefix, addr); ok && host >= 1 && int(host) <= len(o.v4Pool) {
				return w.lazyServer(o, addr)
			}
			return nil
		case o.V6Prefix.Contains(addr):
			host := v6HostIndex(addr)
			if o.V6PerDomain {
				if host < 1 || host > uint64(w.NumDomains()) {
					return nil
				}
				d, _ := w.lazyDomainBase(int(host - 1))
				if d.V6 != addr || !d.V4.IsValid() {
					return nil
				}
				src := w.lazyServer(o, d.V4)
				cp := *src
				cp.Addr = addr
				return &cp
			}
			if host >= 1 && int(host) <= len(o.v6Pool) {
				return w.lazyServer(o, addr)
			}
			return nil
		}
	}
	return nil
}

// lazyServer synthesises a pooled server with the draw order of eager
// serverFor (base RTT, then deployment churn), from an rng keyed by the
// address.
func (w *World) lazyServer(o *Org, addr netip.Addr) *Server {
	rng := rand.New(rand.NewSource(w.Profile.Seed ^ int64(fnv64(addr.String())) ^ lazyServerSalt))
	s := &Server{
		Addr:          addr,
		Org:           o,
		QUIC:          o.QUICHosting,
		Software:      o.Software,
		DisableEveryN: o.DisableEveryN,
		BaseRTT:       time.Duration(logUniform(rng, o.BaseRTTMinMs, o.BaseRTTMaxMs) * msf),
		Mode:          core.ModeZero,
	}
	if s.QUIC {
		s.Mode = w.lazyServerMode(o, addr)
	}
	weeks := w.Profile.Weeks
	if weeks < 1 {
		weeks = 1
	}
	s.SpinFromWeek, s.SpinToWeek = 1, weeks
	if s.Mode == core.ModeSpin && weeks > 3 && rng.Float64() >= o.StableSpinShare {
		if rng.Float64() < 0.7 {
			s.SpinFromWeek = 2 + rng.Intn(weeks-1)
		} else {
			s.SpinToWeek = 1 + rng.Intn(weeks-1)
		}
	}
	if w.Profile.HostileFrac > 0 && s.QUIC {
		s.Hostile = hostile.Assign(w.Profile.Seed, addr.String(), w.Profile.HostileFrac)
	}
	return s
}

// v4HostIndex recovers the pool index encoded by v4At.
func v4HostIndex(p netip.Prefix, addr netip.Addr) (uint32, bool) {
	if !addr.Is4() {
		return 0, false
	}
	b := p.Addr().As4()
	base := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	a := addr.As4()
	v := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	if v < base {
		return 0, false
	}
	return v - base, true
}

// v6HostIndex recovers the host counter encoded by v6At (low 8 bytes).
func v6HostIndex(addr netip.Addr) uint64 {
	b := addr.As16()
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[15-i]) << (8 * i)
	}
	return v
}
