package websim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"quicspin/internal/asdb"
	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/hostile"
	"quicspin/internal/netem"
	"quicspin/internal/targets"
)

// Org is one instantiated hosting organisation.
type Org struct {
	OrgProfile
	// QUICHosting reports whether the org's servers speak QUIC at all.
	QUICHosting bool
	V4Prefix    netip.Prefix
	V6Prefix    netip.Prefix
	v4Pool      []netip.Addr
	v6Pool      []netip.Addr
	v6Next      uint64 // allocator for per-domain v6 addresses
	// modes pre-assigns the spin deployment of each pool address by
	// quota, so small scaled-down pools still hit the org's configured
	// SpinIPShare exactly instead of suffering Bernoulli noise.
	modes map[netip.Addr]core.Mode
	// spin/rest split each pool for density-weighted domain placement.
	v4Spin, v4Rest []netip.Addr
	v6Spin, v6Rest []netip.Addr
}

// pick draws a server address for a new domain with density weighting
// toward spin-enabled IPs.
func (o *Org) pick(rng *rand.Rand, spin, rest []netip.Addr) netip.Addr {
	w := o.SpinIPDensity
	if w <= 0 {
		w = 1
	}
	ns, nr := len(spin), len(rest)
	switch {
	case ns == 0:
		return rest[rng.Intn(nr)]
	case nr == 0:
		return spin[rng.Intn(ns)]
	}
	if rng.Float64() < w*float64(ns)/(w*float64(ns)+float64(nr)) {
		return spin[rng.Intn(ns)]
	}
	return rest[rng.Intn(nr)]
}

// splitPools partitions the pools by assigned mode for weighted placement.
func (o *Org) splitPools() {
	split := func(pool []netip.Addr) (spin, rest []netip.Addr) {
		for _, a := range pool {
			// Note: ModeSpin is the zero Mode, so presence in the map
			// must be checked explicitly.
			if m, ok := o.modes[a]; ok && m == core.ModeSpin {
				spin = append(spin, a)
			} else {
				rest = append(rest, a)
			}
		}
		return
	}
	o.v4Spin, o.v4Rest = split(o.v4Pool)
	o.v6Spin, o.v6Rest = split(o.v6Pool)
}

// assignModes deals out spin deployments over a pool: an exact quota of
// spin-enabled stacks, plus the (rare) all-one and per-packet-grease
// configurations, at randomly permuted positions.
func (o *Org) assignModes(rng *rand.Rand, pool []netip.Addr) {
	if o.modes == nil {
		o.modes = map[netip.Addr]core.Mode{}
	}
	n := len(pool)
	if n == 0 {
		return
	}
	// Probabilistic rounding keeps the expected share unbiased even for
	// pools scaled down to one or two addresses.
	quota := func(share float64) int {
		exact := share * float64(n)
		q := int(exact)
		if rng.Float64() < exact-float64(q) {
			q++
		}
		return q
	}
	nSpin, nOne, nGrease := quota(o.SpinIPShare), quota(o.AllOneIPShare), quota(o.GreaseIPShare)
	perm := rng.Perm(n)
	idx := 0
	take := func(k int, m core.Mode) {
		for i := 0; i < k && idx < n; i++ {
			o.modes[pool[perm[idx]]] = m
			idx++
		}
	}
	take(nSpin, core.ModeSpin)
	take(nOne, core.ModeOne)
	take(nGrease, core.ModeGreasePerPacket)
}

// Server is one addressable webserver (one IP).
type Server struct {
	Addr netip.Addr
	Org  *Org
	// QUIC reports whether the server answers QUIC at all; non-QUIC
	// servers are UDP blackholes to the scanner.
	QUIC bool
	// Mode is the deployed spin behaviour of the stack on this IP.
	Mode core.Mode
	// DisableEveryN is the RFC 1-in-N disable rule in effect when spinning.
	DisableEveryN int
	// Software is the Server response header.
	Software string
	// BaseRTT is the network round-trip time from the vantage point.
	BaseRTT time.Duration
	// SpinFromWeek and SpinToWeek bound (inclusive, 1-based) the weeks in
	// which a ModeSpin deployment is actually present; outside the window
	// the server behaves like ModeZero (deployment churn, Fig. 2).
	SpinFromWeek, SpinToWeek int
	// Hostile is the endpoint-misbehavior profile of this deployment
	// (hostile.None for the well-behaved majority).
	Hostile hostile.Profile
}

// PolicyForWeek returns the transport spin policy of this server in the
// given 1-based campaign week.
func (s *Server) PolicyForWeek(week int) core.Policy {
	mode := s.Mode
	if mode == core.ModeSpin && (week < s.SpinFromWeek || week > s.SpinToWeek) {
		mode = core.ModeZero
	}
	return spinPolicyFor(mode, s.DisableEveryN)
}

// ProcessingDelay draws the application processing delay for one request.
func (s *Server) ProcessingDelay(rng *rand.Rand) time.Duration {
	p := s.Org.OrgProfile
	if rng.Float64() < p.FastResponseShare {
		return time.Duration((1 + rng.Float64()*(p.FastDelayMaxMs-1)) * msf)
	}
	return time.Duration(logUniform(rng, p.SlowDelayMinMs, p.SlowDelayMaxMs) * msf)
}

// Chunk is one scheduled application write of a response body.
type Chunk struct {
	// At is the delay after the request completed at which this chunk is
	// written (cumulative: includes TTFB and all preceding gaps).
	At time.Duration
	// Bytes is the number of response bytes written.
	Bytes int
}

// ResponsePlan draws the application-level write schedule for a response
// of total bytes: a time-to-first-byte (the processing delay), and — for
// dynamically generated pages — further chunks separated by rendering
// gaps. These gaps are the end-host delays that inflate spin-bit RTT
// measurements.
func (s *Server) ResponsePlan(rng *rand.Rand, total int) []Chunk {
	p := s.Org.OrgProfile
	ttfb := s.ProcessingDelay(rng)
	if total < 2048 || rng.Float64() >= p.DynamicShare {
		return []Chunk{{At: ttfb, Bytes: total}}
	}
	n := 2 + rng.Intn(3)
	if n > total {
		n = total
	}
	chunks := make([]Chunk, n)
	at := ttfb
	remaining := total
	for i := 0; i < n; i++ {
		size := remaining / (n - i)
		if i == n-1 {
			size = remaining
		}
		chunks[i] = Chunk{At: at, Bytes: size}
		remaining -= size
		at += time.Duration(logUniform(rng, p.GapMinMs, p.GapMaxMs) * msf)
	}
	return chunks
}

// Domain is one target domain with its ground truth.
type Domain struct {
	// Name is the registered domain, e.g. "site123.com"; the scanner
	// queries the www-form.
	Name    string
	TLD     string
	Toplist bool
	// Resolves is false for the Total−Resolved attrition of Table 1.
	Resolves bool
	Org      *Org
	V4       netip.Addr // zero when unresolvable
	V6       netip.Addr // zero when no AAAA
	// RedirectTo, when non-empty, makes requests for path "/" answer with
	// a 301 to https://www.<RedirectTo>/landing.
	RedirectTo string
	// BodyBytes is the landing-page size.
	BodyBytes int
}

// Host returns the www-form name the scanner queries.
func (d *Domain) Host() string { return targets.PrependWWW(d.Name) }

// World is a fully generated synthetic web. Worlds built by Generate
// materialise every domain and server up front; worlds built by
// GenerateLazy synthesise them on demand (Domains stays nil — use
// NumDomains and DomainAt).
type World struct {
	Profile    Profile
	Orgs       []*Org
	Domains    []*Domain
	servers    map[netip.Addr]*Server
	byHost     map[string]*Domain
	zone       dns.MapBackend
	asResolver *asdb.Resolver
	prefixes   map[netip.Prefix]uint32
	lazy       *lazyState
}

// Generate builds a world from the profile. Equal profiles yield identical
// worlds.
func Generate(p Profile) *World {
	if p.Scale < 1 {
		p.Scale = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := &World{
		Profile:  p,
		servers:  map[netip.Addr]*Server{},
		byHost:   map[string]*Domain{},
		zone:     dns.MapBackend{},
		prefixes: map[netip.Prefix]uint32{},
	}
	w.buildOrgs(rng)
	w.buildDomains(rng)
	w.buildASDB()
	return w
}

func (w *World) buildOrgs(rng *rand.Rand) {
	idx := 0
	add := func(prof OrgProfile, quic bool) {
		o := &Org{OrgProfile: prof, QUICHosting: quic}
		// Each org gets a /12 IPv4 block and a /32 IPv6 block, unique by
		// index: synthetic but routable-looking address space.
		o.V4Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{32 + byte(idx>>4), byte(idx<<4) & 0xf0, 0, 0}), 12)
		o.V6Prefix = netip.PrefixFrom(netip.AddrFrom16(v6base(uint16(idx))), 32)
		pool := scaled(prof.V4Pool, w.Profile.Scale)
		o.v4Pool = make([]netip.Addr, pool)
		for i := range o.v4Pool {
			o.v4Pool[i] = v4At(o.V4Prefix, uint32(i)+1)
		}
		if !prof.V6PerDomain && prof.V6Pool > 0 {
			n := scaled(prof.V6Pool, w.Profile.Scale)
			o.v6Pool = make([]netip.Addr, n)
			for i := range o.v6Pool {
				o.v6Pool[i] = v6At(o.V6Prefix, uint64(i)+1)
			}
		}
		if quic {
			o.assignModes(rng, o.v4Pool)
			o.assignModes(rng, o.v6Pool)
		}
		o.splitPools()
		w.Orgs = append(w.Orgs, o)
		idx++
	}
	for _, prof := range w.Profile.QUICOrgs {
		add(prof, true)
	}
	for _, prof := range w.Profile.LegacyOrgs {
		add(prof, false)
	}
}

func (w *World) buildDomains(rng *rand.Rand) {
	p := w.Profile
	topN := scaled(p.TopDomains, p.Scale)
	zoneN := scaled(p.ZoneDomains, p.Scale)
	w.Domains = make([]*Domain, 0, topN+zoneN)
	for i := 0; i < topN; i++ {
		w.addDomain(rng, fmt.Sprintf("top%d", i), true)
	}
	for i := 0; i < zoneN; i++ {
		w.addDomain(rng, fmt.Sprintf("site%d", i), false)
	}
	// Cross-host redirects need the full population; assign them last.
	quicDomains := make([]*Domain, 0, 1024)
	for _, d := range w.Domains {
		if d.Resolves && d.Org.QUICHosting {
			quicDomains = append(quicDomains, d)
		}
	}
	for _, d := range quicDomains {
		if rng.Float64() >= p.RedirectRate {
			continue
		}
		if rng.Float64() < p.CrossHostRedirectRate && len(quicDomains) > 1 {
			t := quicDomains[rng.Intn(len(quicDomains))]
			if t != d {
				d.RedirectTo = t.Name
				continue
			}
		}
		d.RedirectTo = d.Name // canonical-self redirect
	}
}

var topTLDs = []struct {
	tld string
	cum float64
}{
	{"com", 0.55}, {"net", 0.60}, {"org", 0.65}, {"de", 0.75}, {"io", 0.80},
	{"co.uk", 0.86}, {"fr", 0.90}, {"jp", 0.95}, {"ru", 1.0},
}

var zoneTLDs = []struct {
	tld string
	cum float64
}{
	{"com", 0.72}, {"net", 0.805}, {"org", 0.85}, {"info", 0.90},
	{"xyz", 0.95}, {"online", 1.0},
}

// zoneSet is the set of TLDs with CZDS zone files (gTLDs only).
var zoneSet = map[string]bool{"com": true, "net": true, "org": true, "info": true, "xyz": true, "online": true}

// InZoneView reports whether a TLD's zone file is part of the CZDS view.
func InZoneView(tld string) bool { return zoneSet[tld] }

// ComNetOrg reports whether a TLD belongs to the paper's focused
// com/net/org view.
func ComNetOrg(tld string) bool { return tld == "com" || tld == "net" || tld == "org" }

func pickTLD(rng *rand.Rand, top bool) string {
	r := rng.Float64()
	if top {
		for _, t := range topTLDs {
			if r < t.cum {
				return t.tld
			}
		}
		return "com"
	}
	for _, t := range zoneTLDs {
		if r < t.cum {
			return t.tld
		}
	}
	return "com"
}

func (w *World) addDomain(rng *rand.Rand, label string, top bool) {
	p := w.Profile
	tld := pickTLD(rng, top)
	d := &Domain{Name: label + "." + tld, TLD: tld, Toplist: top}
	w.Domains = append(w.Domains, d)
	w.byHost[d.Host()] = d

	resolveRate := p.ZoneResolveRate
	quicRate := p.ZoneQUICRate
	if top {
		resolveRate = p.TopResolveRate
		quicRate = p.TopQUICRate
	}
	if rng.Float64() >= resolveRate {
		return // NXDOMAIN
	}
	d.Resolves = true
	quic := rng.Float64() < quicRate
	d.Org = w.pickOrg(rng, top, quic)
	d.BodyBytes = int(logUniform(rng, float64(p.BodyMinBytes), float64(p.BodyMaxBytes)))

	// IPv4 address and server (spin-enabled IPs attract more domains).
	d.V4 = d.Org.pick(rng, d.Org.v4Spin, d.Org.v4Rest)
	v4srv := w.serverFor(rng, d.Org, d.V4, quic)

	// IPv6: AAAA presence per org (toplist hosting may differ). Modern
	// spin-enabled stacks correlate with IPv6 rollout, which is what
	// makes Table 4's host-level spin share exceed IPv4's.
	v6Share := d.Org.V6Share
	if top && d.Org.TopV6Share >= 0 {
		v6Share = d.Org.TopV6Share
	}
	if d.Org.V6PerDomain {
		if v4srv.Mode == core.ModeSpin {
			v6Share = min(1, v6Share*1.25)
		} else {
			v6Share *= 0.70
		}
	}
	if rng.Float64() < v6Share {
		if d.Org.V6PerDomain {
			d.Org.v6Next++
			d.V6 = v6At(d.Org.V6Prefix, d.Org.v6Next)
			// Per-domain v6 addresses front the same physical stack as the
			// domain's v4 server: inherit its deployment.
			w.cloneServer(v4srv, d.V6)
		} else if len(d.Org.v6Pool) > 0 {
			d.V6 = d.Org.pick(rng, d.Org.v6Spin, d.Org.v6Rest)
			w.serverFor(rng, d.Org, d.V6, quic)
		}
	}

	rec := dns.Record{}
	if d.V4.IsValid() {
		rec.A = []netip.Addr{d.V4}
	}
	if d.V6.IsValid() {
		rec.AAAA = []netip.Addr{d.V6}
	}
	w.zone[d.Host()] = rec
}

// pickOrg selects the hosting organisation for a domain.
func (w *World) pickOrg(rng *rand.Rand, top, quic bool) *Org {
	var total float64
	for _, o := range w.Orgs {
		if o.QUICHosting != quic {
			continue
		}
		total += o.share(top)
	}
	r := rng.Float64() * total
	for _, o := range w.Orgs {
		if o.QUICHosting != quic {
			continue
		}
		r -= o.share(top)
		if r <= 0 {
			return o
		}
	}
	// Fall back to the last matching org (floating-point remainder).
	for i := len(w.Orgs) - 1; i >= 0; i-- {
		if w.Orgs[i].QUICHosting == quic {
			return w.Orgs[i]
		}
	}
	panic("websim: no org matches")
}

func (o *Org) share(top bool) float64 {
	if top {
		return o.TopQUICShare
	}
	return o.ZoneQUICShare
}

// serverFor returns the server at addr, creating it with org dice on first
// use.
func (w *World) serverFor(rng *rand.Rand, org *Org, addr netip.Addr, quic bool) *Server {
	if s, ok := w.servers[addr]; ok {
		return s
	}
	s := &Server{
		Addr:          addr,
		Org:           org,
		QUIC:          quic && org.QUICHosting,
		Software:      org.Software,
		DisableEveryN: org.DisableEveryN,
		BaseRTT:       time.Duration(logUniform(rng, org.BaseRTTMinMs, org.BaseRTTMaxMs) * msf),
		Mode:          core.ModeZero,
	}
	if s.QUIC {
		if m, ok := org.modes[addr]; ok {
			s.Mode = m
		}
	}
	weeks := w.Profile.Weeks
	if weeks < 1 {
		weeks = 1
	}
	s.SpinFromWeek, s.SpinToWeek = 1, weeks
	if s.Mode == core.ModeSpin && weeks > 3 && rng.Float64() >= org.StableSpinShare {
		// Deployment churn. Spin support mostly arrives with stack
		// updates and then stays (adopters); a minority of deployments
		// lose it mid-campaign (migrations to other stacks, droppers).
		if rng.Float64() < 0.7 {
			s.SpinFromWeek = 2 + rng.Intn(weeks-1) // adopted in week 2..weeks
		} else {
			s.SpinToWeek = 1 + rng.Intn(weeks-1) // dropped after week 1..weeks-1
		}
	}
	// Hash-based, draw-free assignment: a HostileFrac of 0 consumes no
	// randomness and leaves the world byte-identical to pre-hostile builds.
	if w.Profile.HostileFrac > 0 && s.QUIC {
		s.Hostile = hostile.Assign(w.Profile.Seed, addr.String(), w.Profile.HostileFrac)
	}
	w.servers[addr] = s
	return s
}

// cloneServer registers a second address fronting the same deployment.
func (w *World) cloneServer(src *Server, addr netip.Addr) *Server {
	if s, ok := w.servers[addr]; ok {
		return s
	}
	cp := *src
	cp.Addr = addr
	w.servers[addr] = &cp
	return &cp
}

func (w *World) buildASDB() {
	table := asdb.NewTable()
	orgs := asdb.NewOrgDB()
	for _, o := range w.Orgs {
		w.prefixes[o.V4Prefix] = o.ASN
		w.prefixes[o.V6Prefix] = o.ASN
		if err := table.Insert(o.V4Prefix, o.ASN); err != nil {
			panic(err) // generated prefixes are always valid
		}
		if err := table.Insert(o.V6Prefix, o.ASN); err != nil {
			panic(err)
		}
		orgs.Add(o.ASN, asdb.Org{Name: o.Name})
	}
	w.asResolver = &asdb.Resolver{Table: table, Orgs: orgs}
}

// --- accessors ----------------------------------------------------------

// NumDomains returns the population size without materialising it.
func (w *World) NumDomains() int {
	if w.lazy != nil {
		return w.lazy.topN + w.lazy.zoneN
	}
	return len(w.Domains)
}

// DomainAt returns the i-th domain of the canonical population order. On
// eagerly generated worlds it indexes Domains; on lazy worlds it
// synthesises the domain on demand (repeated calls return equal values).
func (w *World) DomainAt(i int) *Domain {
	if w.lazy != nil {
		return w.lazyDomainAt(i)
	}
	return w.Domains[i]
}

// DNSBackend exposes the world's zone data to a dns.Resolver.
func (w *World) DNSBackend() dns.Backend {
	if w.lazy != nil {
		return lazyZone{w}
	}
	return w.zone
}

// ASDB returns the IP→ASN→org attribution database (the RIS + as2org
// substitute).
func (w *World) ASDB() *asdb.Resolver { return w.asResolver }

// Prefixes returns the announced prefix→ASN map (for snapshots).
func (w *World) Prefixes() map[netip.Prefix]uint32 { return w.prefixes }

// ServerAt returns the server at addr, or nil (blackhole / unallocated).
func (w *World) ServerAt(addr netip.Addr) *Server {
	if w.lazy != nil {
		return w.lazyServerAt(addr)
	}
	return w.servers[addr]
}

// Servers returns the full server map keyed by address. Lazy worlds never
// materialise their server set and return nil.
func (w *World) Servers() map[netip.Addr]*Server { return w.servers }

// DomainByHost maps a www-form host name to its domain.
func (w *World) DomainByHost(host string) *Domain {
	if w.lazy != nil {
		return w.lazyDomainByHost(host)
	}
	return w.byHost[host]
}

// Lists materialises the measurement input lists: one merged toplist and
// one zone file per CZDS TLD, exactly the shape internal/targets consumes.
func (w *World) Lists() []*targets.List {
	top := &targets.List{Name: "toplists", Kind: targets.Toplist}
	zones := map[string]*targets.List{}
	for i, n := 0, w.NumDomains(); i < n; i++ {
		d := w.DomainAt(i)
		if d.Toplist {
			top.Domains = append(top.Domains, d.Name)
		}
		if InZoneView(d.TLD) {
			z := zones[d.TLD]
			if z == nil {
				z = &targets.List{Name: d.TLD, Kind: targets.Zonelist}
				zones[d.TLD] = z
			}
			z.Domains = append(z.Domains, d.Name)
		}
	}
	out := []*targets.List{top}
	for _, tld := range []string{"com", "net", "org", "info", "xyz", "online"} {
		if z, ok := zones[tld]; ok {
			out = append(out, z)
		}
	}
	return out
}

// Turnaround draws one endpoint processing latency.
func (w *World) Turnaround(rng *rand.Rand) time.Duration {
	p := w.Profile
	if p.TurnaroundMaxMs <= 0 {
		return 0
	}
	return time.Duration((p.TurnaroundMinMs + rng.Float64()*(p.TurnaroundMaxMs-p.TurnaroundMinMs)) * msf)
}

// PathConfig returns the netem path shaping toward (and from) a server.
func (w *World) PathConfig(s *Server) netem.PathConfig {
	p := w.Profile
	return netem.PathConfig{
		Delay:        s.BaseRTT / 2,
		Jitter:       time.Duration(p.PathJitterMs * msf),
		LossRate:     p.PathLossRate,
		ReorderRate:  p.PathReorderRate,
		ReorderExtra: time.Duration(p.PathReorderExtraMs * msf),
	}
}

// --- helpers ------------------------------------------------------------

func scaled(n, scale int) int {
	v := n / scale
	if v < 1 {
		v = 1
	}
	return v
}

// logUniform draws from a log-uniform distribution on [lo, hi].
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo <= 0 {
		lo = 0.001
	}
	if hi <= lo {
		return lo
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

func v4At(p netip.Prefix, host uint32) netip.Addr {
	b := p.Addr().As4()
	base := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	a := base + host
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

func v6base(idx uint16) [16]byte {
	var b [16]byte
	b[0], b[1] = 0x26, 0x00
	b[2] = byte(idx >> 8)
	b[3] = byte(idx)
	return b
}

func v6At(p netip.Prefix, host uint64) netip.Addr {
	b := p.Addr().As16()
	for i := 0; i < 8; i++ {
		b[15-i] = byte(host >> (8 * i))
	}
	return netip.AddrFrom16(b)
}
