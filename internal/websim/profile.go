// Package websim generates a synthetic web standing in for the public
// Internet the paper scans: hosting organisations with AS numbers and
// prefixes, server fleets with per-IP QUIC and spin-bit deployment, domain
// populations drawn from toplists and TLD zone files, shared-hosting
// domain→IP maps for IPv4 and IPv6, heavy-tailed server processing delays,
// and per-week deployment churn for the longitudinal RFC-compliance
// analysis.
//
// The generator is parameterised by the marginals the paper publishes
// (Tables 1–4, Figs. 2–4): org connection shares, per-org spin shares,
// QUIC-support rates, resolution rates, and domains-per-IP densities. The
// analysis pipeline run on this population reproduces the *shape* of every
// table and figure; see DESIGN.md for the substitution rationale and
// EXPERIMENTS.md for paper-vs-measured values.
package websim

import (
	"time"

	"quicspin/internal/core"
)

// OrgProfile parameterises one hosting organisation.
type OrgProfile struct {
	// Name as it should appear in Table 2 (via as2org attribution).
	Name string
	// ASN is the org's autonomous system number.
	ASN uint32
	// Software is the Server header its webservers return.
	Software string

	// TopQUICShare and ZoneQUICShare are the org's share of QUIC-capable
	// domains in the toplist and zonelist views (normalised over all
	// QUIC-hosting orgs). These encode the Table 2 connection shares.
	TopQUICShare  float64
	ZoneQUICShare float64

	// SpinIPShare is the fraction of the org's QUIC IPs that run a
	// spin-enabled stack (LiteSpeed-style deployments).
	SpinIPShare float64
	// SpinIPDensity weights domain placement toward spin-enabled IPs.
	// Shared LiteSpeed boxes host many customers each, so they carry
	// disproportionately many connections — the reason the paper sees
	// ~52-68 % spin shares per org's connections but only ~45 % of QUIC
	// IPs spinning. 0 means 1 (uniform placement).
	SpinIPDensity float64
	// AllOneIPShare and GreaseIPShare are the (tiny) fractions of QUIC IPs
	// that pin the bit to 1 or grease it per packet.
	AllOneIPShare float64
	GreaseIPShare float64
	// DisableEveryN is the RFC disable rule configured on spin-enabled
	// servers (16 per RFC 9000; 8 per RFC 9312; 0 = never — non-compliant).
	DisableEveryN int

	// V4Pool is the number of IPv4 server addresses (paper scale; divided
	// by the population scale).
	V4Pool int
	// V6PerDomain gives each hosted domain its own IPv6 address when true
	// (shared hosters assign per-customer v6), otherwise a v6 pool of
	// V6Pool addresses is used.
	V6PerDomain bool
	V6Pool      int
	// V6Share is the probability a hosted domain has an AAAA record.
	V6Share float64
	// TopV6Share overrides V6Share for toplist-view domains when >= 0
	// (toplist hosting skews differently, driving Table 4's weak toplist
	// spin support).
	TopV6Share float64

	// BaseRTTMinMs/BaseRTTMaxMs bound the per-server network RTT from the
	// vantage point (log-uniform).
	BaseRTTMinMs, BaseRTTMaxMs float64
	// FastResponseShare is the probability a request is served without
	// significant processing delay; the rest draw a heavy-tailed delay in
	// [SlowDelayMinMs, SlowDelayMaxMs] (log-uniform). These drive the
	// over-estimation shape of Figs. 3 and 4.
	FastResponseShare              float64
	FastDelayMaxMs                 float64
	SlowDelayMinMs, SlowDelayMaxMs float64
	// DynamicShare is the probability a landing page is generated
	// dynamically and streamed in chunks separated by application gaps
	// (database queries, template rendering). Gaps land between spin
	// edges, so they are the end-host delays that inflate spin-bit RTT
	// estimates (§5.2 and §6 of the paper); static pages are written in
	// one piece and measure close to the network RTT.
	DynamicShare       float64
	GapMinMs, GapMaxMs float64

	// StableSpinShare is the fraction of the org's spin-enabled servers
	// whose deployment is stable across the whole campaign; the rest
	// support the spin bit only during a random contiguous window of weeks
	// (hosting migrations, stack updates — the churn behind Fig. 2).
	StableSpinShare float64
}

// Profile parameterises world generation.
type Profile struct {
	// Seed drives all randomness; equal seeds give identical worlds.
	Seed int64
	// Scale divides every paper-scale count (domains, IP pools). 1000
	// means the 216 M CZDS domains become 216 k.
	Scale int

	// TopDomains and ZoneDomains are the paper-scale population sizes.
	TopDomains  int
	ZoneDomains int

	// TopResolveRate and ZoneResolveRate are the Resolved/Total shares of
	// Table 1.
	TopResolveRate  float64
	ZoneResolveRate float64

	// TopQUICRate and ZoneQUICRate are the QUIC/Resolved domain shares.
	TopQUICRate  float64
	ZoneQUICRate float64

	// RedirectRate is the probability a landing page answers with a
	// redirect (driving >1 connection per domain, §3.2.1).
	RedirectRate float64
	// CrossHostRedirectRate is the probability a redirect points at a
	// different domain instead of the canonical-self.
	CrossHostRedirectRate float64

	// BodyMinBytes/BodyMaxBytes bound landing-page sizes (log-uniform).
	// Multi-packet bodies are what make the spin bit flip during a
	// download.
	BodyMinBytes, BodyMaxBytes int

	// Weeks is the campaign length for longitudinal behaviour (Fig. 2).
	Weeks int

	// PathLossRate, PathReorderRate and PathJitterMs shape all network
	// paths; reordered packets are held back PathReorderExtraMs.
	PathLossRate       float64
	PathReorderRate    float64
	PathReorderExtraMs float64
	PathJitterMs       float64

	// TurnaroundMinMs/MaxMs bound the endpoint processing latency between
	// receiving a packet and transmitting in response. This floor keeps
	// spin-bit cycles strictly above the stack's min_rtt, as on real
	// hosts; without it the grease filter misfires on exact ties.
	TurnaroundMinMs, TurnaroundMaxMs float64

	// HostileFrac assigns this fraction of QUIC-capable servers a
	// deterministic misbehavior profile (internal/hostile). Assignment is
	// hash-based and draws nothing from the generator's random streams, so
	// a zero fraction produces worlds byte-identical to ones generated
	// before hostile profiles existed.
	HostileFrac float64

	// QUICOrgs hosts QUIC-capable domains; LegacyOrgs host the rest.
	QUICOrgs   []OrgProfile
	LegacyOrgs []OrgProfile
}

// Software identifiers used by the default profile.
const (
	SoftLiteSpeed  = "LiteSpeed"
	SoftImunify    = "imunify360-webshield"
	SoftCloudflare = "cloudflare"
	SoftGoogle     = "gws"
	SoftFastly     = "fastly"
	SoftNginx      = "nginx"
	SoftApache     = "Apache"
	SoftCaddy      = "Caddy"
)

// DefaultProfile returns the calibrated reproduction profile. The org
// shares encode Table 2; spin shares per org are the paper's "Spin %"
// column; resolution/QUIC rates come from Tables 1 and 4.
func DefaultProfile() Profile {
	p := Profile{
		Seed:  20230515,
		Scale: 2000,

		TopDomains:  2_732_702,
		ZoneDomains: 216_520_521,

		TopResolveRate:  0.709,
		ZoneResolveRate: 0.849,
		TopQUICRate:     0.282,
		ZoneQUICRate:    0.121,

		RedirectRate:          0.10,
		CrossHostRedirectRate: 0.15,

		BodyMinBytes: 2_000,
		BodyMaxBytes: 250_000,

		Weeks: 12,

		PathLossRate:       0.002,
		PathReorderRate:    0.0015,
		PathReorderExtraMs: 3,
		PathJitterMs:       0.1,

		TurnaroundMinMs: 0.25,
		TurnaroundMaxMs: 1.2,
	}

	hoster := func(name string, asn uint32, top, zone, spin float64, v4Pool int) OrgProfile {
		return OrgProfile{
			Name: name, ASN: asn, Software: SoftLiteSpeed,
			TopQUICShare: top, ZoneQUICShare: zone,
			SpinIPShare: spin, SpinIPDensity: 3, AllOneIPShare: 0.004, GreaseIPShare: 0.0006,
			DisableEveryN: 16,
			V4Pool:        v4Pool,
			V6PerDomain:   true, V6Share: 0.75, TopV6Share: 0.35,
			BaseRTTMinMs: 8, BaseRTTMaxMs: 180,
			FastResponseShare: 0.33, FastDelayMaxMs: 18,
			SlowDelayMinMs: 40, SlowDelayMaxMs: 2200,
			DynamicShare: 0.55, GapMinMs: 40, GapMaxMs: 1200,
			StableSpinShare: 0.42,
		}
	}

	p.QUICOrgs = []OrgProfile{
		{
			Name: "Cloudflare", ASN: 13335, Software: SoftCloudflare,
			TopQUICShare: 0.55, ZoneQUICShare: 0.504,
			SpinIPShare: 0, AllOneIPShare: 0.001, GreaseIPShare: 0.0002,
			V4Pool: 15_000, V6PerDomain: false, V6Pool: 15_000, V6Share: 0.92, TopV6Share: -1,
			BaseRTTMinMs: 4, BaseRTTMaxMs: 35,
			FastResponseShare: 0.5, FastDelayMaxMs: 10,
			SlowDelayMinMs: 25, SlowDelayMaxMs: 900,
			DynamicShare: 0.2, GapMinMs: 20, GapMaxMs: 400,
			StableSpinShare: 1,
		},
		{
			Name: "Google", ASN: 15169, Software: SoftGoogle,
			TopQUICShare: 0.26, ZoneQUICShare: 0.270,
			SpinIPShare: 0.0011, AllOneIPShare: 0.0005, GreaseIPShare: 0.0002,
			DisableEveryN: 16,
			V4Pool:        25_000, V6PerDomain: false, V6Pool: 25_000, V6Share: 0.95, TopV6Share: -1,
			BaseRTTMinMs: 4, BaseRTTMaxMs: 40,
			FastResponseShare: 0.5, FastDelayMaxMs: 10,
			SlowDelayMinMs: 25, SlowDelayMaxMs: 700,
			DynamicShare: 0.2, GapMinMs: 20, GapMaxMs: 400,
			StableSpinShare: 1,
		},
		{
			Name: "Fastly", ASN: 54113, Software: SoftFastly,
			TopQUICShare: 0.030, ZoneQUICShare: 0.014,
			SpinIPShare: 0, AllOneIPShare: 0.001, GreaseIPShare: 0.0002,
			V4Pool: 5_000, V6PerDomain: false, V6Pool: 5_000, V6Share: 0.9, TopV6Share: -1,
			BaseRTTMinMs: 4, BaseRTTMaxMs: 35,
			FastResponseShare: 0.5, FastDelayMaxMs: 10,
			SlowDelayMinMs: 25, SlowDelayMaxMs: 900,
			DynamicShare: 0.2, GapMinMs: 20, GapMaxMs: 400,
			StableSpinShare: 1,
		},
		hoster("Hostinger", 47583, 0.028, 0.068, 0.55, 30_000),
		hoster("OVH SAS", 16276, 0.010, 0.0096, 0.84, 20_000),
		hoster("A2 Hosting", 55293, 0.007, 0.0096, 0.74, 15_000),
		hoster("SingleHop", 32475, 0.004, 0.0076, 0.80, 10_000),
		hoster("Server Central", 23352, 0.004, 0.0065, 0.95, 8_000),
	}
	// Long tail: many small hosters; in aggregate 53.3 % of their QUIC
	// connections spin (Table 2's <other> row). Toplist long tail spins
	// less (Table 1: only 15.2 % of toplist IPs show spin).
	const tailOrgs = 24
	topTail, zoneTail := 1-sumTop(p.QUICOrgs), 1-sumZone(p.QUICOrgs)
	for i := 0; i < tailOrgs; i++ {
		spin := 0.64
		soft := SoftLiteSpeed
		if i%3 == 0 {
			soft = SoftImunify
		}
		if i%8 == 7 {
			// A minority of tail hosters run non-spinning stacks with
			// sparser (non-shared) IP usage.
			spin, soft = 0.0, SoftNginx
		}
		o := hoster(tailName(i), 200000+uint32(i), topTail/tailOrgs, zoneTail/tailOrgs, spin, 5_500)
		o.Software = soft
		o.SpinIPDensity = 5
		// Toplist tail skews to lower spin support.
		if i%2 == 1 {
			o.TopQUICShare *= 0.4
		}
		p.QUICOrgs = append(p.QUICOrgs, o)
	}

	p.LegacyOrgs = []OrgProfile{
		{
			Name: "GoDaddy.com LLC", ASN: 26496, Software: SoftApache,
			TopQUICShare: 0.4, ZoneQUICShare: 0.35,
			V4Pool: 3_500_000, V6Pool: 500_000, V6Share: 0.06, TopV6Share: 0.10,
			BaseRTTMinMs: 15, BaseRTTMaxMs: 200,
		},
		{
			Name: "IONOS SE", ASN: 8560, Software: SoftApache,
			TopQUICShare: 0.2, ZoneQUICShare: 0.25,
			V4Pool: 2_500_000, V6Pool: 400_000, V6Share: 0.08, TopV6Share: 0.12,
			BaseRTTMinMs: 8, BaseRTTMaxMs: 120,
		},
		{
			Name: "Newfold Digital", ASN: 46606, Software: SoftNginx,
			TopQUICShare: 0.25, ZoneQUICShare: 0.25,
			V4Pool: 2_500_000, V6Pool: 300_000, V6Share: 0.05, TopV6Share: 0.08,
			BaseRTTMinMs: 15, BaseRTTMaxMs: 200,
		},
		{
			Name: "Amazon.com Inc.", ASN: 16509, Software: SoftNginx,
			TopQUICShare: 0.15, ZoneQUICShare: 0.15,
			V4Pool: 1_800_000, V6Pool: 400_000, V6Share: 0.12, TopV6Share: 0.15,
			BaseRTTMinMs: 5, BaseRTTMaxMs: 150,
		},
	}
	return p
}

func sumTop(orgs []OrgProfile) float64 {
	var s float64
	for _, o := range orgs {
		s += o.TopQUICShare
	}
	return s
}

func sumZone(orgs []OrgProfile) float64 {
	var s float64
	for _, o := range orgs {
		s += o.ZoneQUICShare
	}
	return s
}

func tailName(i int) string {
	names := []string{
		"WebhostOne GmbH", "Contabo GmbH", "Hetzner Online", "netcup GmbH",
		"Krystal Hosting", "Hostpoint AG", "Combell NV", "Loopia AB",
		"Seznam.cz", "PlanetHoster", "o2switch", "Infomaniak Network",
		"SiteGround Hosting", "GreenGeeks LLC", "Kinsta Inc", "Rackspace Tech",
		"DreamHost LLC", "MochaHost Inc", "TMD Hosting", "InterServer Inc",
		"Namecheap Inc", "Hostwinds LLC", "ScalaHosting Ltd", "Verpex Hosting",
	}
	return names[i%len(names)]
}

// spinPolicyFor maps a server's deployed mode to a transport spin policy.
func spinPolicyFor(mode core.Mode, disableEveryN int) core.Policy {
	return core.Policy{Mode: mode, DisableEveryN: disableEveryN, DisabledMode: core.ModeZero}
}

// Durations used by generated worlds.
const (
	msf = float64(time.Millisecond)
)
