package websim

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/targets"
)

func smallProfile() Profile {
	p := DefaultProfile()
	p.Scale = 20000 // ~137 toplist + ~10.8k zone domains
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallProfile())
	b := Generate(smallProfile())
	if len(a.Domains) != len(b.Domains) {
		t.Fatalf("domain counts differ: %d vs %d", len(a.Domains), len(b.Domains))
	}
	for i := range a.Domains {
		da, db := a.Domains[i], b.Domains[i]
		if da.Name != db.Name || da.V4 != db.V4 || da.V6 != db.V6 || da.Resolves != db.Resolves {
			t.Fatalf("domain %d differs: %+v vs %+v", i, da, db)
		}
	}
	if len(a.Servers()) != len(b.Servers()) {
		t.Fatalf("server counts differ")
	}
}

func TestPopulationShapes(t *testing.T) {
	p := DefaultProfile()
	p.Scale = 5000
	w := Generate(p)

	var top, zone, topResolved, zoneResolved, topQUIC, zoneQUIC int
	for _, d := range w.Domains {
		if d.Toplist {
			top++
			if d.Resolves {
				topResolved++
				if d.Org.QUICHosting {
					topQUIC++
				}
			}
		} else {
			zone++
			if d.Resolves {
				zoneResolved++
				if d.Org.QUICHosting {
					zoneQUIC++
				}
			}
		}
	}
	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.3f±%.3f", name, got, want, tol)
		}
	}
	check("toplist resolve rate", float64(topResolved)/float64(top), p.TopResolveRate, 0.05)
	check("zone resolve rate", float64(zoneResolved)/float64(zone), p.ZoneResolveRate, 0.02)
	check("toplist QUIC rate", float64(topQUIC)/float64(topResolved), p.TopQUICRate, 0.06)
	check("zone QUIC rate", float64(zoneQUIC)/float64(zoneResolved), p.ZoneQUICRate, 0.02)
}

func TestServerSpinSharesPerOrg(t *testing.T) {
	p := DefaultProfile()
	p.Scale = 500 // plenty of servers for tight statistics
	w := Generate(p)
	perOrg := map[string][2]int{} // spin, total QUIC servers (v4 only)
	for addr, s := range w.Servers() {
		if !s.QUIC || !addr.Is4() {
			continue
		}
		c := perOrg[s.Org.Name]
		if s.Mode == core.ModeSpin {
			c[0]++
		}
		c[1]++
		perOrg[s.Org.Name] = c
	}
	cf := perOrg["Cloudflare"]
	if cf[0] != 0 {
		t.Errorf("Cloudflare spin servers = %d, want 0", cf[0])
	}
	ho := perOrg["Hostinger"]
	if ho[1] == 0 {
		t.Fatal("no Hostinger servers generated")
	}
	share := float64(ho[0]) / float64(ho[1])
	if share < 0.40 || share > 0.65 {
		t.Errorf("Hostinger spin IP share = %.3f, want ≈0.52", share)
	}
}

func TestDNSBackendServesGeneratedDomains(t *testing.T) {
	w := Generate(smallProfile())
	r := dns.NewResolver(w.DNSBackend(), rand.New(rand.NewSource(1)))
	resolved, nx := 0, 0
	for _, d := range w.Domains[:200] {
		addrs, err := r.Lookup(d.Host(), dns.TypeA)
		if d.Resolves {
			if err != nil {
				t.Fatalf("resolvable domain %s failed: %v", d.Host(), err)
			}
			if addrs[0] != d.V4 {
				t.Fatalf("A(%s) = %v, want %v", d.Host(), addrs[0], d.V4)
			}
			resolved++
		} else {
			if err == nil {
				t.Fatalf("unresolvable domain %s resolved", d.Host())
			}
			nx++
		}
	}
	if resolved == 0 || nx == 0 {
		t.Errorf("test sample vacuous: resolved=%d nx=%d", resolved, nx)
	}
}

func TestASDBAttribution(t *testing.T) {
	w := Generate(smallProfile())
	for _, d := range w.Domains {
		if !d.Resolves {
			continue
		}
		if got := w.ASDB().OrgOf(d.V4); got != d.Org.Name {
			t.Fatalf("OrgOf(%v) = %q, want %q", d.V4, got, d.Org.Name)
		}
		if d.V6.IsValid() {
			if got := w.ASDB().OrgOf(d.V6); got != d.Org.Name {
				t.Fatalf("v6 OrgOf(%v) = %q, want %q", d.V6, got, d.Org.Name)
			}
		}
	}
}

func TestPerDomainV6InheritsV4Deployment(t *testing.T) {
	w := Generate(smallProfile())
	checked := 0
	for _, d := range w.Domains {
		if !d.Resolves || !d.V6.IsValid() || !d.Org.V6PerDomain {
			continue
		}
		v4s, v6s := w.ServerAt(d.V4), w.ServerAt(d.V6)
		if v4s == nil || v6s == nil {
			t.Fatalf("missing server for %s", d.Name)
		}
		if v6s.Mode != v4s.Mode || v6s.QUIC != v4s.QUIC {
			t.Fatalf("%s: v6 server mode %v != v4 mode %v", d.Name, v6s.Mode, v4s.Mode)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no per-domain v6 servers found; test vacuous")
	}
}

func TestPolicyForWeekWindows(t *testing.T) {
	s := &Server{Mode: core.ModeSpin, DisableEveryN: 16, SpinFromWeek: 3, SpinToWeek: 7}
	if got := s.PolicyForWeek(2).Mode; got != core.ModeZero {
		t.Errorf("week 2 mode = %v, want zero", got)
	}
	if got := s.PolicyForWeek(3).Mode; got != core.ModeSpin {
		t.Errorf("week 3 mode = %v, want spin", got)
	}
	if got := s.PolicyForWeek(8).Mode; got != core.ModeZero {
		t.Errorf("week 8 mode = %v, want zero", got)
	}
	z := &Server{Mode: core.ModeOne, SpinFromWeek: 1, SpinToWeek: 12}
	if got := z.PolicyForWeek(5).Mode; got != core.ModeOne {
		t.Errorf("non-spin mode must be week-independent, got %v", got)
	}
}

func TestProcessingDelayDistribution(t *testing.T) {
	p := DefaultProfile()
	w := Generate(Profile{
		Seed: 1, Scale: 1, TopDomains: 1, ZoneDomains: 1,
		TopResolveRate: 1, ZoneResolveRate: 1, TopQUICRate: 1, ZoneQUICRate: 1,
		Weeks: 1, QUICOrgs: p.QUICOrgs[3:4], // Hostinger
		BodyMinBytes: 1000, BodyMaxBytes: 2000,
	})
	var srv *Server
	for _, s := range w.Servers() {
		srv = s
		break
	}
	rng := rand.New(rand.NewSource(9))
	fast, slow := 0, 0
	for i := 0; i < 5000; i++ {
		d := srv.ProcessingDelay(rng)
		if d <= 0 {
			t.Fatal("non-positive processing delay")
		}
		if d <= 18*time.Millisecond {
			fast++
		}
		if d > 200*time.Millisecond {
			slow++
		}
	}
	if fast < 1200 || fast > 2200 {
		t.Errorf("fast responses = %d/5000, want ≈33%%", fast)
	}
	if slow == 0 {
		t.Error("no heavy-tail delays drawn")
	}
}

func TestLists(t *testing.T) {
	w := Generate(smallProfile())
	lists := w.Lists()
	if lists[0].Kind != targets.Toplist {
		t.Fatal("first list must be the toplist")
	}
	var zoneDomains int
	for _, l := range lists[1:] {
		if l.Kind != targets.Zonelist {
			t.Fatalf("list %s kind = %v", l.Name, l.Kind)
		}
		zoneDomains += len(l.Domains)
	}
	if zoneDomains == 0 || len(lists[0].Domains) == 0 {
		t.Fatal("empty lists")
	}
	// Toplist com/net/org domains must also appear in zone files.
	found := false
	for _, d := range w.Domains {
		if d.Toplist && InZoneView(d.TLD) {
			found = true
			in := false
			for _, l := range lists[1:] {
				if l.Name == d.TLD {
					for _, z := range l.Domains {
						if z == d.Name {
							in = true
						}
					}
				}
			}
			if !in {
				t.Fatalf("toplist domain %s missing from zone %s", d.Name, d.TLD)
			}
			break
		}
	}
	if !found {
		t.Skip("no toplist gTLD domain in sample")
	}
}

func TestRedirectAssignment(t *testing.T) {
	p := DefaultProfile()
	p.Scale = 2000
	w := Generate(p)
	self, cross := 0, 0
	for _, d := range w.Domains {
		switch {
		case d.RedirectTo == "":
		case d.RedirectTo == d.Name:
			self++
		default:
			cross++
			tgt := w.DomainByHost(targets.PrependWWW(d.RedirectTo))
			if tgt == nil || !tgt.Resolves {
				t.Fatalf("cross redirect %s → %s targets unknown domain", d.Name, d.RedirectTo)
			}
		}
	}
	if self == 0 || cross == 0 {
		t.Errorf("redirects: self=%d cross=%d; want both > 0", self, cross)
	}
}

func TestHelpers(t *testing.T) {
	if !ComNetOrg("com") || !ComNetOrg("net") || !ComNetOrg("org") || ComNetOrg("info") {
		t.Error("ComNetOrg wrong")
	}
	if !InZoneView("xyz") || InZoneView("de") {
		t.Error("InZoneView wrong")
	}
	a := v4At(netip.MustParsePrefix("32.0.0.0/12"), 5)
	if a != netip.MustParseAddr("32.0.0.5") {
		t.Errorf("v4At = %v", a)
	}
	if scaled(10, 3) != 3 || scaled(1, 100) != 1 {
		t.Error("scaled wrong")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := logUniform(rng, 10, 100)
		if v < 10 || v > 100 {
			t.Fatalf("logUniform out of range: %v", v)
		}
	}
}
