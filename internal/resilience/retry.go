package resilience

import (
	"math/rand"
	"time"
)

// RetryPolicy bounds deterministic transient-failure retries. The zero
// value disables retrying entirely, which keeps legacy configurations
// byte-identical to their pre-resilience behaviour.
type RetryPolicy struct {
	// MaxRetries is the per-domain budget of additional attempts shared by
	// every transient-retryable stage (DNS, handshake, redirect hops).
	// Zero disables retries.
	MaxRetries int
	// BaseBackoff is the virtual-time delay before the first retry; it
	// doubles per retry. Zero means 250ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 5s.
	MaxBackoff time.Duration
	// Jitter is the symmetric fractional jitter applied to each backoff,
	// drawn from the caller's per-domain rng so retried scans stay
	// deterministic. Zero means 0.2; negative disables jitter.
	Jitter float64
}

// Enabled reports whether the policy performs any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxRetries > 0 }

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return p.BaseBackoff
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxBackoff <= 0 {
		return 5 * time.Second
	}
	return p.MaxBackoff
}

func (p RetryPolicy) jitter() float64 {
	if p.Jitter == 0 {
		return 0.2
	}
	if p.Jitter < 0 {
		return 0
	}
	return p.Jitter
}

// Backoff returns the virtual-time delay before retry number `retry`
// (0-based): base·2^retry capped at max, with symmetric jitter drawn from
// rng. A nil rng disables jitter.
func (p RetryPolicy) Backoff(rng *rand.Rand, retry int) time.Duration {
	return p.backoff(rng, retry)
}

// Sleep blocks in wall-clock time for Backoff(rng, retry), returning
// early with false when interrupt closes first. Supervisors pacing
// real restarts use this; the scan path keeps its virtual-time Backoff.
// A nil interrupt channel sleeps uninterruptibly.
func (p RetryPolicy) Sleep(rng *rand.Rand, retry int, interrupt <-chan struct{}) bool {
	t := time.NewTimer(p.backoff(rng, retry))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-interrupt:
		return false
	}
}

func (p RetryPolicy) backoff(rng *rand.Rand, retry int) time.Duration {
	d := p.max()
	if retry < 30 { // 2^30 · base would overflow any sane cap anyway
		if e := p.base() << uint(retry); e < d {
			d = e
		}
	}
	if j := p.jitter(); j > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 + (rng.Float64()*2-1)*j))
	}
	if d < 0 {
		d = 0
	}
	return d
}
