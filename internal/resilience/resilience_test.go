package resilience

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		in   string
		want Class
	}{
		{"", ClassNone},
		{"dns: NXDOMAIN", ClassNXDomain},
		{"dns: no record of requested type", ClassNoRecord},
		{"dns: query timed out", ClassDNSTimeout},
		{"timeout: no QUIC handshake", ClassHandshakeTimeout},
		{"timeout: no response", ClassHandshakeTimeout},
		{"connection reset", ClassReset},
		{"connection closed", ClassReset},
		{"h3: malformed request", ClassH3},
		{"panic: runtime error: index out of range", ClassPanic},
		{"stall: emulated loop exceeded watchdog", ClassStall},
		{"breaker: prefix open, domain skipped", ClassBreakerOpen},
		{"something else entirely", ClassOther},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTransientClasses(t *testing.T) {
	transient := map[Class]bool{
		ClassDNSTimeout: true, ClassHandshakeTimeout: true, ClassStall: true,
	}
	for c := ClassNone; c <= ClassOther; c++ {
		if got := c.Transient(); got != transient[c] {
			t.Errorf("%v.Transient() = %v, want %v", c, got, transient[c])
		}
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 5; i++ {
		da, db := p.Backoff(a, i), p.Backoff(b, i)
		if da != db {
			t.Fatalf("retry %d: backoff diverged with identical rng: %v vs %v", i, da, db)
		}
		if da < 0 {
			t.Fatalf("retry %d: negative backoff %v", i, da)
		}
	}
}

func TestRetryBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxRetries: 10, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(nil, i); got != w {
			t.Errorf("retry %d: backoff = %v, want %v", i, got, w)
		}
	}
	// Huge retry counts must not overflow into negative durations.
	if got := p.Backoff(nil, 62); got != time.Second {
		t.Errorf("retry 62: backoff = %v, want cap %v", got, time.Second)
	}
}

func TestRetryPolicyZeroValueDisabled(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero-value RetryPolicy must be disabled")
	}
}

func TestRetrySleepInterruptible(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Jitter: -1}
	if !p.Sleep(nil, 0, nil) {
		t.Fatal("uninterrupted Sleep must report completion")
	}
	// A closed interrupt channel aborts even a very long backoff at once.
	interrupted := make(chan struct{})
	close(interrupted)
	long := RetryPolicy{BaseBackoff: time.Hour, Jitter: -1}
	done := make(chan bool, 1)
	go func() { done <- long.Sleep(nil, 0, interrupted) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("interrupted Sleep must report false")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep ignored the closed interrupt channel")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{Threshold: 3, Cooldown: time.Second, SkipCost: 100 * time.Millisecond}
	b := NewBreaker(cfg)
	key := "as-64500"
	pos := 0
	step := func(o Outcome) (Decision, Events) {
		d := b.Acquire(key, pos)
		ev := b.Record(key, pos, o)
		pos++
		return d, ev
	}

	// Closed: success resets the streak.
	if d, _ := step(Outcome{Cost: time.Millisecond}); d.Skip || d.State != StateClosed {
		t.Fatalf("closed success: unexpected decision %+v", d)
	}
	// Two transients: still closed.
	step(Outcome{Transient: true, Cost: time.Millisecond})
	if d, ev := step(Outcome{Transient: true, Cost: time.Millisecond}); d.Skip || ev.Opened {
		t.Fatalf("below threshold: decision %+v events %+v", d, ev)
	}
	// Third consecutive transient opens the breaker.
	if _, ev := step(Outcome{Transient: true, Cost: time.Millisecond}); !ev.Opened {
		t.Fatal("threshold reached: breaker did not open")
	}
	if got := b.GroupState(key); got != StateOpen {
		t.Fatalf("state after open = %v", got)
	}

	// Open: skipped until the cooldown elapses on the virtual clock.
	// Each skip advances the clock by SkipCost (100ms); cooldown is 1s.
	skips := 0
	for {
		d := b.Acquire(key, pos)
		if d.Probe {
			// Half-open probe: fail it — breaker must re-open.
			if ev := b.Record(key, pos, Outcome{Transient: true, Cost: time.Millisecond}); !ev.Opened {
				t.Fatal("failed probe did not re-open breaker")
			}
			pos++
			break
		}
		if !d.Skip {
			t.Fatalf("open breaker let a scan through: %+v", d)
		}
		b.Record(key, pos, Outcome{Skipped: true})
		pos++
		skips++
		if skips > 50 {
			t.Fatal("cooldown never elapsed")
		}
	}
	if skips != 10 {
		t.Errorf("skips before probe = %d, want 10 (cooldown 1s / skip cost 100ms)", skips)
	}
	if got := b.GroupState(key); got != StateOpen {
		t.Fatalf("state after failed probe = %v", got)
	}

	// Wait out the cooldown again; this time the probe succeeds and closes.
	for {
		d := b.Acquire(key, pos)
		if d.Probe {
			if ev := b.Record(key, pos, Outcome{Cost: time.Millisecond}); !ev.Closed {
				t.Fatal("successful probe did not close breaker")
			}
			pos++
			break
		}
		b.Record(key, pos, Outcome{Skipped: true})
		pos++
	}
	if got := b.GroupState(key); got != StateClosed {
		t.Fatalf("state after successful probe = %v", got)
	}
	// Closed again: scans flow.
	if d, _ := step(Outcome{Cost: time.Millisecond}); d.Skip {
		t.Fatal("closed breaker skipped a scan")
	}

	st := b.Stats()
	if st.Opened != 2 || st.Closed != 1 || st.Probes != 2 {
		t.Errorf("stats = %+v, want Opened 2 Closed 1 Probes 2", st)
	}
}

func TestBreakerGateOrdering(t *testing.T) {
	// Whatever order goroutines arrive in, decisions are made in position
	// order — so the set of skipped positions is a pure function of the
	// outcome sequence.
	cfg := BreakerConfig{Threshold: 2, Cooldown: time.Hour}
	const n = 64
	// Outcome schedule: positions 0 and 1 fail transiently (opens at 1),
	// so positions 2..n-1 must all be skipped.
	run := func(seed int64) []bool {
		b := NewBreaker(cfg)
		skipped := make([]bool, n)
		var wg sync.WaitGroup
		order := rand.New(rand.NewSource(seed)).Perm(n)
		for _, p := range order {
			wg.Add(1)
			go func(pos int) {
				defer wg.Done()
				d := b.Acquire("k", pos)
				if d.Skip {
					skipped[pos] = true
					b.Record("k", pos, Outcome{Skipped: true})
					return
				}
				b.Record("k", pos, Outcome{Transient: true, Cost: time.Millisecond})
			}(p)
		}
		wg.Wait()
		return skipped
	}
	a := run(1)
	bres := run(99)
	for i := range a {
		if a[i] != bres[i] {
			t.Fatalf("position %d: skip decision depends on arrival order", i)
		}
		wantSkip := i >= 2
		if a[i] != wantSkip {
			t.Errorf("position %d: skipped=%v, want %v", i, a[i], wantSkip)
		}
	}
}

func TestBreakerAbortUnblocks(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1})
	done := make(chan Decision, 1)
	go func() {
		// Position 5 can never proceed (0..4 never record) until Abort.
		done <- b.Acquire("k", 5)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Abort()
	select {
	case d := <-done:
		if !d.Aborted {
			t.Fatalf("expected aborted decision, got %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock Acquire")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(i%3, fmt.Sprintf("key-%d", i), rec{Name: fmt.Sprintf("d%d", i), N: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite within the same shard: last write per key wins.
	if err := j.Append(4%3, "key-4", rec{Name: "d4", N: 400}); err != nil {
		t.Fatal(err)
	}
	if j.Count() != 11 {
		t.Fatalf("Count = %d, want 11", j.Count())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, torn, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d, want 0", torn)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d keys, want 10", len(got))
	}
	var r rec
	if err := json.Unmarshal(got["key-4"], &r); err != nil {
		t.Fatal(err)
	}
	if r.N != 400 {
		t.Errorf("key-4 N = %d, want 400 (last write wins)", r.N)
	}
}

func TestJournalReplayTornLine(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, "good", map[string]int{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILL mid-write: append a truncated record with no
	// trailing newline, plus a garbage line in a second shard.
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0, 1)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"torn","v":{"v"`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1, 2)), []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, torn, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 2 {
		t.Errorf("torn = %d, want 2", torn)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d keys, want 1", len(got))
	}
	if _, ok := got["good"]; !ok {
		t.Error("complete record lost during replay")
	}
}

func TestJournalReplayMissingDir(t *testing.T) {
	got, torn, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || torn != 0 {
		t.Fatalf("missing dir replay = (%d keys, %d torn), want empty", len(got), torn)
	}
}

func TestOpenGroups(t *testing.T) {
	var nb *Breaker
	if got := nb.OpenGroups(); got != nil {
		t.Fatalf("nil breaker OpenGroups = %v, want nil", got)
	}
	b := NewBreaker(BreakerConfig{Threshold: 2})
	trip := func(key string) {
		for pos := 0; pos < 2; pos++ {
			b.Acquire(key, pos)
			b.Record(key, pos, Outcome{Transient: true, Cost: time.Second})
		}
	}
	trip("as20")
	trip("as10")
	b.Acquire("as30", 0)
	b.Record("as30", 0, Outcome{Cost: time.Second}) // success: stays closed
	got := b.OpenGroups()
	if len(got) != 2 || got[0] != "as10" || got[1] != "as20" {
		t.Fatalf("OpenGroups = %v, want sorted [as10 as20]", got)
	}
}
