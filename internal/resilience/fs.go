package resilience

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the checkpoint journal writes through. It
// exists so every journal code path — appends, fsync, rotation, compaction
// renames — can be chaos-tested against injected storage faults (short
// writes, ENOSPC, EIO, fsync failure, torn renames) the same way the shard
// layer chaos-tests the UDP transport. Production code uses OSFS; tests
// wrap it in a FaultFS.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it when missing.
	OpenAppend(path string) (File, error)
	// Create truncates or creates path for writing (compaction staging).
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// ReadDir returns the names (not paths) of dir's regular files, sorted.
	// A missing directory returns an empty slice, not an error.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
}

// File is one journal file handle: sequential writes, explicit durability.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(path string) (File, error) { return os.Create(path) }

func (osFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

// fsOrOS returns fs, defaulting to the real filesystem.
func fsOrOS(fs FS) FS {
	if fs == nil {
		return OSFS
	}
	return fs
}

// joinPath is filepath.Join, aliased so journal code reads uniformly.
func joinPath(dir, name string) string { return filepath.Join(dir, name) }
