package resilience

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is a crash-safe, append-only checkpoint log sharded across one
// JSONL file per writer. Each line is a self-contained {"k":key,"v":value}
// record written with a single Write call, so a SIGKILL can tear at most
// the final line of each shard; Replay skips torn lines and the scanner
// simply rescans those domains deterministically. Replay is
// order-insensitive across shards — the last complete record per key wins
// — so any mix of worker counts between runs resumes correctly.
type Journal struct {
	dir    string
	mu     sync.Mutex
	shards map[int]*os.File
	count  int64
}

type journalRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// OpenJournal creates (or reuses) dir and returns a journal that appends
// to shard files inside it.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resilience: create checkpoint dir: %w", err)
	}
	return &Journal{dir: dir, shards: map[int]*os.File{}}, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", shard))
}

// Append journals one key/value record to the given shard. The value is
// marshalled to JSON and the whole line is written with one Write so it is
// either fully present or torn (never interleaved with another record —
// shards are per-writer files).
func (j *Journal) Append(shard int, key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint record: %w", err)
	}
	line, err := json.Marshal(journalRecord{K: key, V: raw})
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint line: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	f := j.shards[shard]
	if f == nil {
		f, err = os.OpenFile(shardPath(j.dir, shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			j.mu.Unlock()
			return fmt.Errorf("resilience: open checkpoint shard: %w", err)
		}
		j.shards[shard] = f
	}
	j.mu.Unlock()

	// Shards are written by a single worker each; the file handle's own
	// serialisation is enough. One Write per line keeps lines atomic on
	// POSIX appends.
	if _, err := f.Write(line); err != nil {
		return fmt.Errorf("resilience: append checkpoint record: %w", err)
	}
	j.mu.Lock()
	j.count++
	j.mu.Unlock()
	return nil
}

// Count returns the number of records appended through this handle (not
// counting records already on disk from a previous run).
func (j *Journal) Count() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Close flushes and closes every open shard file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var firstErr error
	for _, f := range j.shards {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	j.shards = map[int]*os.File{}
	return firstErr
}

// Replay reads every shard file in dir and returns the last complete
// record per key plus the number of torn/unparseable lines skipped. A
// missing directory is not an error — it replays to an empty map.
func Replay(dir string) (map[string]json.RawMessage, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]json.RawMessage{}, 0, nil
		}
		return nil, 0, fmt.Errorf("resilience: read checkpoint dir: %w", err)
	}
	var shards []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".jsonl" {
			shards = append(shards, filepath.Join(dir, e.Name()))
		}
	}
	// Deterministic shard order; within a shard, later lines override
	// earlier ones, and the same key never lands in two shards within one
	// run (shard = canonical index mod workers), so cross-shard order is
	// immaterial for correctness.
	sort.Strings(shards)

	out := map[string]json.RawMessage{}
	torn := 0
	for _, path := range shards {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, fmt.Errorf("resilience: open checkpoint shard: %w", err)
		}
		r := bufio.NewReaderSize(f, 1<<16)
		for {
			line, err := r.ReadBytes('\n')
			complete := err == nil
			if len(line) > 0 {
				var rec journalRecord
				if complete && json.Unmarshal(line, &rec) == nil && rec.K != "" {
					out[rec.K] = rec.V
				} else {
					// Torn tail (no trailing newline) or corrupt line:
					// drop it; the caller rescans the domain.
					torn++
				}
			}
			if err != nil {
				if err != io.EOF {
					f.Close()
					return nil, 0, fmt.Errorf("resilience: read checkpoint shard: %w", err)
				}
				break
			}
		}
		f.Close()
	}
	return out, torn, nil
}
