package resilience

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Journal is a crash-safe, append-only checkpoint log sharded across one
// JSONL segment per writer. Each line is a self-contained
// {"k":key,"s":seq,"v":value} record written with a single Write call, so
// a SIGKILL can tear at most the final line of a segment; Replay skips
// torn lines and the scanner simply rescans those domains
// deterministically.
//
// Storage-fault hardening (the properties the chaos suite pins):
//
//   - Every record carries a monotonically increasing sequence number, so
//     replay resolves duplicate keys — across segments, shards and process
//     restarts — to the last complete record deterministically, regardless
//     of directory iteration order.
//   - A journal instance only ever appends to segments it created itself
//     (each open starts a fresh generation), so existing journal bytes are
//     never touched, let alone corrupted, by later runs.
//   - A failed write seals its segment; the next append rotates to a fresh
//     one, so records acked after a torn write can never be glued to the
//     torn bytes and lost.
//   - After DegradeAfter consecutive write failures the journal flips to a
//     degraded state: appends fail fast with ErrJournalDegraded (the
//     campaign keeps scanning without checkpoints), while every ProbeEvery
//     appends one real write probes whether storage recovered.
//
// Segments also rotate at SegmentBytes and compact via Compact, which
// rewrites the last complete record per key into a single fresh segment
// with replay(compact(J)) == replay(J).
type Journal struct {
	dir string
	cfg JournalConfig
	fs  FS

	mu     sync.Mutex
	shards map[int]*shardWriter

	seq     atomic.Int64 // last sequence number issued
	nextGen atomic.Int64 // next segment generation
	count   atomic.Int64 // records appended through this handle

	degraded    atomic.Bool
	consecFails atomic.Int64
	probeTick   atomic.Int64

	stats struct {
		appends, skipped            atomic.Int64
		writeFailures, syncFailures atomic.Int64
		rotations, probes           atomic.Int64
	}
}

// JournalConfig tunes the journal's storage behaviour. The zero value is
// the legacy profile: real filesystem, no rotation, fsync only on close,
// degraded mode after defaultDegradeAfter consecutive write failures.
type JournalConfig struct {
	// FS is the filesystem implementation; nil means the real one. Tests
	// inject a FaultFS here to chaos-test every journal code path.
	FS FS
	// SyncEvery is the fsync cadence per shard writer: after every N
	// appended records the segment is fsynced. Zero syncs only on rotation
	// and close (fast, loses at most a page cache on power loss); 1 syncs
	// every record (durable, slow).
	SyncEvery int
	// SegmentBytes rotates a shard's segment once it exceeds this size.
	// Zero disables size-based rotation (segments still rotate per open
	// and after write failures).
	SegmentBytes int64
	// DegradeAfter is the number of consecutive Append failures before the
	// journal disables itself (ErrJournalDegraded fast-fails). Zero means
	// the default of 3; negative disables degraded mode.
	DegradeAfter int
	// ProbeEvery is how often a degraded journal risks a real write to
	// detect recovery: every N-th Append while degraded. Zero means the
	// default of 64; negative disables probing (degraded is terminal).
	ProbeEvery int
}

const (
	defaultDegradeAfter = 3
	defaultProbeEvery   = 64
)

func (c JournalConfig) degradeAfter() int {
	if c.DegradeAfter == 0 {
		return defaultDegradeAfter
	}
	return c.DegradeAfter
}

func (c JournalConfig) probeEvery() int {
	if c.ProbeEvery == 0 {
		return defaultProbeEvery
	}
	return c.ProbeEvery
}

// ErrJournalDegraded reports that the journal has disabled itself after
// repeated storage failures. The campaign is expected to keep scanning —
// checkpointing is an optimisation, never a correctness requirement — and
// the scanner surfaces the state through the scan_checkpoint_degraded
// gauge and /readyz.
var ErrJournalDegraded = errors.New("resilience: checkpoint journal degraded (storage failures); scanning continues without checkpoints")

// shardWriter is one worker's current segment.
type shardWriter struct {
	mu       sync.Mutex
	f        File
	size     int64
	unsynced int
	broken   bool // a write failed: never append to this segment again
}

type journalRecord struct {
	K string          `json:"k"`
	S int64           `json:"s,omitempty"`
	V json.RawMessage `json:"v"`
}

// OpenJournal creates (or reuses) dir with the legacy configuration.
func OpenJournal(dir string) (*Journal, error) {
	return OpenJournalWith(dir, JournalConfig{})
}

// OpenJournalWith creates (or reuses) dir and returns a journal that
// appends to fresh segment files inside it. When the directory already
// holds segments, their records are scanned once so new sequence numbers
// continue above every existing one — the invariant replay's
// last-complete-wins resolution rests on.
func OpenJournalWith(dir string, cfg JournalConfig) (*Journal, error) {
	fs := fsOrOS(cfg.FS)
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("resilience: create checkpoint dir: %w", err)
	}
	j := &Journal{dir: dir, cfg: cfg, fs: fs, shards: map[int]*shardWriter{}}
	_, st, err := scanJournal(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("resilience: scan checkpoint dir: %w", err)
	}
	j.seq.Store(st.maxSeq)
	j.nextGen.Store(st.maxGen + 1)
	return j, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// segmentName names shard's segment of the given generation.
func segmentName(shard int, gen int64) string {
	return fmt.Sprintf("shard-%03d-%06d.jsonl", shard, gen)
}

// segGen extracts the generation from a segment file name; legacy
// (ungenerated) segments and foreign files report 0.
func segGen(name string) int64 {
	base := strings.TrimSuffix(name, ".jsonl")
	if base == name {
		return 0
	}
	i := strings.LastIndexByte(base, '-')
	if i < 0 {
		return 0
	}
	gen, err := strconv.ParseInt(base[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return gen
}

// Append journals one key/value record to the given shard. The value is
// marshalled to JSON and the whole line is written with one Write so it is
// either fully present or torn (never interleaved with another record —
// shards are per-writer segments). A storage failure is returned to the
// caller and counted; enough consecutive failures flip the journal into
// the degraded state, after which Append fails fast with
// ErrJournalDegraded until a probe write succeeds.
func (j *Journal) Append(shard int, key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint record: %w", err)
	}
	if j.degraded.Load() {
		// Fail fast while degraded, except for the periodic probe that
		// detects storage recovery.
		if pe := j.cfg.probeEvery(); pe < 0 || j.probeTick.Add(1)%int64(pe) != 0 {
			j.stats.skipped.Add(1)
			return ErrJournalDegraded
		}
		j.stats.probes.Add(1)
	}
	seq := j.seq.Add(1)
	line, err := json.Marshal(journalRecord{K: key, S: seq, V: raw})
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint line: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	w := j.shards[shard]
	if w == nil {
		w = &shardWriter{}
		j.shards[shard] = w
	}
	j.mu.Unlock()

	// Shards are written by a single worker each; the per-writer mutex
	// only guards against rotation racing a close.
	w.mu.Lock()
	err = j.appendLocked(w, shard, line)
	w.mu.Unlock()
	if err != nil {
		j.stats.writeFailures.Add(1)
		if da := j.cfg.degradeAfter(); da > 0 && j.consecFails.Add(1) >= int64(da) {
			j.degraded.Store(true)
		}
		return err
	}
	j.consecFails.Store(0)
	if j.degraded.CompareAndSwap(true, false) {
		// A probe landed: storage recovered, checkpointing resumes.
		j.probeTick.Store(0)
	}
	j.stats.appends.Add(1)
	j.count.Add(1)
	return nil
}

// appendLocked writes one line to w's segment, rotating first when the
// segment is missing, sealed by an earlier failure, or full. Caller holds
// w.mu.
func (j *Journal) appendLocked(w *shardWriter, shard int, line []byte) error {
	if w.f == nil || w.broken || (j.cfg.SegmentBytes > 0 && w.size+int64(len(line)) > j.cfg.SegmentBytes && w.size > 0) {
		if err := j.rotateLocked(w, shard); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(line); err != nil {
		// The tail of this segment may now hold torn bytes; seal it so the
		// next record lands in a fresh segment and stays replayable.
		w.broken = true
		return fmt.Errorf("resilience: append checkpoint record: %w", err)
	}
	w.size += int64(len(line))
	w.unsynced++
	if j.cfg.SyncEvery > 0 && w.unsynced >= j.cfg.SyncEvery {
		if err := w.f.Sync(); err != nil {
			j.stats.syncFailures.Add(1)
			w.broken = true
			return fmt.Errorf("resilience: sync checkpoint segment: %w", err)
		}
		w.unsynced = 0
	}
	return nil
}

// rotateLocked seals w's current segment (sync + close, best effort when
// the segment is already broken) and opens a fresh one. Caller holds w.mu.
func (j *Journal) rotateLocked(w *shardWriter, shard int) error {
	if w.f != nil {
		if !w.broken && w.unsynced > 0 {
			if err := w.f.Sync(); err != nil {
				j.stats.syncFailures.Add(1)
			}
		}
		_ = w.f.Close()
		w.f = nil
		j.stats.rotations.Add(1)
	}
	gen := j.nextGen.Add(1) - 1
	f, err := j.fs.OpenAppend(joinPath(j.dir, segmentName(shard, gen)))
	if err != nil {
		return fmt.Errorf("resilience: open checkpoint segment: %w", err)
	}
	w.f, w.size, w.unsynced, w.broken = f, 0, 0, false
	return nil
}

// Count returns the number of records appended through this handle (not
// counting records already on disk from a previous run).
func (j *Journal) Count() int64 { return j.count.Load() }

// Degraded reports whether the journal has disabled itself after repeated
// storage failures (appends fail fast; probes may re-enable it).
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// JournalStats is a point-in-time snapshot of the journal's storage
// counters, surfaced through the scanner's telemetry gauges.
type JournalStats struct {
	// Appends counts records durably handed to the filesystem; Skipped
	// counts appends fast-failed while degraded.
	Appends, Skipped int64
	// WriteFailures and SyncFailures count storage errors; Rotations
	// counts segment rollovers; Probes counts degraded-mode recovery
	// attempts.
	WriteFailures, SyncFailures int64
	Rotations, Probes           int64
	// Degraded is the current disabled-with-alert state.
	Degraded bool
}

// Stats snapshots the journal's storage counters.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Appends:       j.stats.appends.Load(),
		Skipped:       j.stats.skipped.Load(),
		WriteFailures: j.stats.writeFailures.Load(),
		SyncFailures:  j.stats.syncFailures.Load(),
		Rotations:     j.stats.rotations.Load(),
		Probes:        j.stats.probes.Load(),
		Degraded:      j.degraded.Load(),
	}
}

// Close syncs and closes every open shard segment. The first error is
// returned — callers are expected to propagate it into
// checkpoint_errors_total and the degraded state rather than log-and-drop:
// a failed close means the tail of the journal may not be durable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var firstErr error
	for _, w := range j.shards {
		w.mu.Lock()
		if w.f != nil {
			if !w.broken && w.unsynced > 0 {
				if err := w.f.Sync(); err != nil && firstErr == nil {
					j.stats.syncFailures.Add(1)
					firstErr = fmt.Errorf("resilience: sync checkpoint segment: %w", err)
				}
			}
			if err := w.f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("resilience: close checkpoint segment: %w", err)
			}
			w.f = nil
		}
		w.mu.Unlock()
	}
	j.shards = map[int]*shardWriter{}
	if firstErr != nil {
		j.degraded.Store(true)
	}
	return firstErr
}

// segRecord is one key's winning record during a journal scan.
type segRecord struct {
	seq  int64
	file int // index into the sorted segment list (legacy tie-break)
	raw  []byte
	val  json.RawMessage
}

type scanStats struct {
	torn     int
	maxSeq   int64
	maxGen   int64
	segments int
	records  int
}

// scanJournal reads every .jsonl segment in dir (sorted by name) and
// resolves the last complete record per key: highest sequence number wins;
// sequence ties — legacy records without one — fall back to (file, line)
// order over the sorted names, which is deterministic regardless of
// directory iteration order. Torn or corrupt lines anywhere in a segment
// (not just the tail) are skipped and counted.
func scanJournal(fs FS, dir string) (map[string]*segRecord, scanStats, error) {
	var st scanStats
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, st, fmt.Errorf("read checkpoint dir: %w", err)
	}
	out := map[string]*segRecord{}
	for _, name := range names {
		if !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		if g := segGen(name); g > st.maxGen {
			st.maxGen = g
		}
		fileIdx := st.segments
		st.segments++
		f, err := fs.Open(joinPath(dir, name))
		if err != nil {
			return nil, st, fmt.Errorf("open checkpoint segment: %w", err)
		}
		r := bufio.NewReaderSize(f, 1<<16)
		for {
			line, err := r.ReadBytes('\n')
			complete := err == nil
			if len(line) > 0 {
				var rec journalRecord
				if complete && json.Unmarshal(line, &rec) == nil && rec.K != "" {
					st.records++
					if rec.S > st.maxSeq {
						st.maxSeq = rec.S
					}
					prev := out[rec.K]
					// Last complete record wins: higher seq, or — for
					// legacy seq-less ties — later (file, line) position.
					if prev == nil || rec.S > prev.seq || (rec.S == prev.seq && fileIdx >= prev.file) {
						out[rec.K] = &segRecord{
							seq: rec.S, file: fileIdx,
							raw: append([]byte(nil), line...),
							val: rec.V,
						}
					}
				} else {
					// Torn write (no trailing newline, or glued partial
					// bytes mid-segment) or corrupt line: drop it; the
					// caller rescans the domain deterministically.
					st.torn++
				}
			}
			if err != nil {
				if err != io.EOF {
					f.Close()
					return nil, st, fmt.Errorf("read checkpoint segment: %w", err)
				}
				break
			}
		}
		f.Close()
	}
	return out, st, nil
}

// Replay reads every segment in dir and returns the last complete record
// per key plus the number of torn/unparseable lines skipped. A missing
// directory is not an error — it replays to an empty map. Duplicate keys
// resolve deterministically (see scanJournal) no matter how the records
// are spread across shard segments.
func Replay(dir string) (map[string]json.RawMessage, int, error) {
	return ReplayFS(nil, dir)
}

// ReplayFS is Replay through an injected filesystem (nil = the real one).
func ReplayFS(fs FS, dir string) (map[string]json.RawMessage, int, error) {
	latest, st, err := scanJournal(fsOrOS(fs), dir)
	if err != nil {
		return nil, 0, fmt.Errorf("resilience: %w", err)
	}
	out := make(map[string]json.RawMessage, len(latest))
	for k, rec := range latest {
		out[k] = rec.val
	}
	return out, st.torn, nil
}

// sortedKeys returns m's keys in sorted order (deterministic compaction
// output).
func sortedKeys(m map[string]*segRecord) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
