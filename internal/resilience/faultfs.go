package resilience

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// Storage fault errors. FaultFS returns these wrapped with the operation
// and path, so tests (and the degraded-mode logic) can classify them with
// errors.Is. They deliberately mirror the real failure modes that kill
// long-running measurement services: a full disk, a dying device, and an
// fsync the kernel refuses to honour.
var (
	// ErrNoSpace is the injected ENOSPC.
	ErrNoSpace = errors.New("no space left on device (injected)")
	// ErrIO is the injected EIO.
	ErrIO = errors.New("input/output error (injected)")
	// ErrSyncFailed is the injected fsync failure.
	ErrSyncFailed = errors.New("fsync failed (injected)")
)

// StorageFaultPlan is a deterministic chaos schedule for the journal's
// filesystem: every write-path operation fails with the configured
// probabilities, drawn from a seeded rng so a failing run replays exactly.
// The read path (Open, ReadDir) is never faulted — replay correctness
// under write faults is the property being tested, and a fault plan that
// corrupted reads would test the test instead.
type StorageFaultPlan struct {
	// Seed drives the fault dice (default 1 via ParseStorageFaultPlan).
	Seed int64
	// ShortWrite is the probability a Write persists only a prefix of the
	// buffer before failing with ErrIO — the torn-line generator.
	ShortWrite float64
	// WriteErr is the probability a Write fails outright with ErrNoSpace
	// (nothing persisted).
	WriteErr float64
	// SyncErr is the probability a Sync fails with ErrSyncFailed.
	SyncErr float64
	// RenameErr is the probability a Rename fails with ErrIO, leaving the
	// source in place (the torn-rename case: compaction staging files
	// stranded next to live segments).
	RenameErr float64
	// OpenErr is the probability OpenAppend/Create fails with ErrNoSpace.
	OpenErr float64
}

// Enabled reports whether the plan injects anything.
func (p StorageFaultPlan) Enabled() bool {
	return p.ShortWrite > 0 || p.WriteErr > 0 || p.SyncErr > 0 || p.RenameErr > 0 || p.OpenErr > 0
}

// ParseStorageFaultPlan parses the spinscan -storage-faults flag: a
// comma-separated list of directives.
//
//	seed:N          fault rng seed (default 1)
//	short-write:P   probability a journal write tears mid-line (EIO after
//	                a prefix lands on disk)
//	write-err:P     probability a journal write fails outright (ENOSPC)
//	sync-err:P      probability an fsync fails (EIO)
//	rename-err:P    probability a compaction rename fails (torn rename)
//	open-err:P      probability opening a new segment fails (ENOSPC)
//
// An empty spec returns nil. Probabilities are in [0, 1].
func ParseStorageFaultPlan(spec string) (*StorageFaultPlan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	plan := &StorageFaultPlan{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		key, val, ok := strings.Cut(item, ":")
		if !ok || val == "" {
			return nil, fmt.Errorf("resilience: storage fault directive %q: want key:value", item)
		}
		if key == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resilience: storage fault seed %q: %v", val, err)
			}
			plan.Seed = n
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("resilience: storage fault probability %q: want a value in [0, 1]", item)
		}
		switch key {
		case "short-write":
			plan.ShortWrite = p
		case "write-err":
			plan.WriteErr = p
		case "sync-err":
			plan.SyncErr = p
		case "rename-err":
			plan.RenameErr = p
		case "open-err":
			plan.OpenErr = p
		default:
			return nil, fmt.Errorf("resilience: unknown storage fault directive %q", key)
		}
	}
	return plan, nil
}

// FaultFS wraps an FS with the plan's seeded faults. All fault dice share
// one rng guarded by a mutex, drawn in operation order — concurrent
// writers make the interleaving scheduling-dependent, but every individual
// operation's fate is an honest Bernoulli draw, and single-writer tests
// replay exactly.
type FaultFS struct {
	inner FS
	plan  StorageFaultPlan

	mu  sync.Mutex
	rng *rand.Rand

	// injected counts the faults actually fired, for tests asserting the
	// plan did something.
	injected int64
}

// NewFaultFS wraps inner (nil = the real filesystem) with plan's faults.
func NewFaultFS(inner FS, plan StorageFaultPlan) *FaultFS {
	return &FaultFS{
		inner: fsOrOS(inner),
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Injected returns the number of faults fired so far.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// roll draws one fault die; reports whether a fault with probability p
// fires, counting it when it does.
func (f *FaultFS) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() < p {
		f.injected++
		return true
	}
	return false
}

// shortLen draws the surviving prefix length for a torn write of n bytes:
// at least 1 byte and strictly less than n (n ≤ 1 tears to zero bytes).
func (f *FaultFS) shortLen(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return 1 + f.rng.Intn(n-1)
}

func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FaultFS) OpenAppend(path string) (File, error) {
	if f.roll(f.plan.OpenErr) {
		return nil, fmt.Errorf("open %s: %w", path, ErrNoSpace)
	}
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: path}, nil
}

func (f *FaultFS) Create(path string) (File, error) {
	if f.roll(f.plan.OpenErr) {
		return nil, fmt.Errorf("create %s: %w", path, ErrNoSpace)
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: path}, nil
}

func (f *FaultFS) Open(path string) (io.ReadCloser, error) { return f.inner.Open(path) }

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.roll(f.plan.RenameErr) {
		return fmt.Errorf("rename %s: %w", oldpath, ErrIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error { return f.inner.Remove(path) }

// faultFile injects write and sync faults on one handle.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.roll(f.fs.plan.WriteErr) {
		return 0, fmt.Errorf("write %s: %w", f.path, ErrNoSpace)
	}
	if f.fs.roll(f.fs.plan.ShortWrite) {
		n := f.fs.shortLen(len(p))
		if n > 0 {
			// The prefix genuinely lands on disk: replay must cope with
			// the torn bytes this leaves mid-file or at the tail.
			if m, err := f.inner.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, fmt.Errorf("write %s: short write: %w", f.path, ErrIO)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.roll(f.fs.plan.SyncErr) {
		return fmt.Errorf("sync %s: %w", f.path, ErrSyncFailed)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
