package resilience

import (
	"fmt"
	"strings"
)

// CompactStats summarises one compaction pass.
type CompactStats struct {
	// Segments is the number of input segments rewritten; Records the
	// complete records read from them.
	Segments, Records int
	// Kept and Dropped partition the distinct keys: Kept survived into the
	// compacted segment, Dropped failed the retain filter.
	Kept, Dropped int
	// Torn counts torn/corrupt input lines skipped (they carry no acked
	// record, so dropping them loses nothing).
	Torn int
	// Bytes is the size of the compacted segment written.
	Bytes int64
}

// compactName names the compacted output segment for a generation.
func compactName(gen int64) string { return fmt.Sprintf("compact-%06d.jsonl", gen) }

// Compact rewrites the journal at dir down to its last complete record per
// key, preserving each record's original line bytes (and therefore its
// sequence number), so
//
//	replay(compact(J)) == replay(J)
//
// holds exactly — the property TestCompactionEquivalence pins. When retain
// is non-nil, keys it rejects are dropped (the follow scheduler uses this
// to prune weeks outside the retention horizon). fs nil means the real
// filesystem.
//
// Compact requires that no Journal is appending to dir concurrently: the
// follow scheduler runs it between weeks, after Close. It is crash-safe at
// every step — the compacted segment is staged as a .tmp file (invisible
// to replay), fsynced, then renamed into place before the old segments are
// removed. A torn rename strands only the staging file; a crash between
// rename and removal leaves duplicate records with equal sequence numbers
// and identical values, which replay resolves to the same state.
func Compact(fs FS, dir string, retain func(key string) bool) (CompactStats, error) {
	fs = fsOrOS(fs)
	var cs CompactStats

	// Clear staging files stranded by an earlier crashed or fault-injected
	// compaction; they were never part of the journal.
	names, err := fs.ReadDir(dir)
	if err != nil {
		return cs, fmt.Errorf("resilience: compact: read checkpoint dir: %w", err)
	}
	var segments []string
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = fs.Remove(joinPath(dir, name))
		case strings.HasSuffix(name, ".jsonl"):
			segments = append(segments, name)
		}
	}
	if len(segments) == 0 {
		return cs, nil
	}

	latest, st, err := scanJournal(fs, dir)
	if err != nil {
		return cs, fmt.Errorf("resilience: compact: %w", err)
	}
	cs.Segments, cs.Records, cs.Torn = st.segments, st.records, st.torn

	keys := sortedKeys(latest)
	kept := keys[:0]
	for _, k := range keys {
		if retain != nil && !retain(k) {
			cs.Dropped++
			continue
		}
		kept = append(kept, k)
	}
	cs.Kept = len(kept)

	if len(kept) > 0 {
		final := joinPath(dir, compactName(st.maxGen+1))
		tmp := final + ".tmp"
		f, err := fs.Create(tmp)
		if err != nil {
			return cs, fmt.Errorf("resilience: compact: stage segment: %w", err)
		}
		for _, k := range kept {
			raw := latest[k].raw
			if _, err := f.Write(raw); err != nil {
				f.Close()
				_ = fs.Remove(tmp)
				return cs, fmt.Errorf("resilience: compact: write record: %w", err)
			}
			cs.Bytes += int64(len(raw))
		}
		if err := f.Sync(); err != nil {
			f.Close()
			_ = fs.Remove(tmp)
			return cs, fmt.Errorf("resilience: compact: sync segment: %w", err)
		}
		if err := f.Close(); err != nil {
			_ = fs.Remove(tmp)
			return cs, fmt.Errorf("resilience: compact: close segment: %w", err)
		}
		if err := fs.Rename(tmp, final); err != nil {
			// Torn rename: the staging file may or may not survive removal,
			// but either way replay ignores .tmp and the original segments
			// are untouched.
			_ = fs.Remove(tmp)
			return cs, fmt.Errorf("resilience: compact: publish segment: %w", err)
		}
	}

	// The compacted segment is durable (or every key was dropped on
	// purpose); the originals are now redundant.
	for _, name := range segments {
		if err := fs.Remove(joinPath(dir, name)); err != nil {
			// Leftover duplicates are replay-equivalent; report the first
			// failure so the caller can count it, but keep the journal
			// consistent.
			return cs, fmt.Errorf("resilience: compact: remove old segment: %w", err)
		}
	}
	return cs, nil
}
