// Package resilience is the campaign-survival layer of the scanner: it
// decides which failures are worth retrying, when a prefix has failed often
// enough that continuing to scan it would violate the paper's backoff
// etiquette (§A), and how a multi-hour campaign over hundreds of millions
// of domains survives a crash without losing completed work.
//
// Everything in this package is deterministic by construction:
//
//   - Retry backoff runs in virtual time and draws jitter from the caller's
//     per-domain random stream, so retried scans remain a pure function of
//     (Seed, Week, domain) — byte-identical across worker counts.
//   - The circuit breaker serialises decisions per group (prefix/AS) in a
//     fixed canonical order via a position gate, so which domains get
//     skipped does not depend on scheduling.
//   - The checkpoint journal is an append-only sharded JSONL log whose
//     replay is order-insensitive (last write per key wins), so an
//     interrupted campaign resumes to the exact result an uninterrupted
//     run would have produced.
package resilience

import "strings"

// Class buckets a scan failure for retry and breaker decisions. The
// classification is string-based so it works both on live errors and on
// journaled results replayed from a checkpoint.
type Class int

const (
	// ClassNone marks success (no error).
	ClassNone Class = iota
	// ClassDNSTimeout is an unresponsive authoritative server — transient.
	ClassDNSTimeout
	// ClassHandshakeTimeout is a QUIC handshake or response timeout —
	// transient (filtered UDP, rate limiting, momentary outage).
	ClassHandshakeTimeout
	// ClassStall marks an emulated event loop killed by the watchdog —
	// transient from the campaign's perspective (the domain can be retried
	// on a rebuilt engine).
	ClassStall
	// ClassNXDomain is a name that does not exist — permanent.
	ClassNXDomain
	// ClassNoRecord is a name without a record of the queried type —
	// permanent.
	ClassNoRecord
	// ClassReset is a connection reset or close by the peer — permanent
	// (the host is reachable and said no).
	ClassReset
	// ClassH3 is an HTTP/3-lite protocol error — permanent.
	ClassH3
	// ClassPanic is a scanner-side panic converted into a result by worker
	// isolation — not retried (it is our bug, not the network's).
	ClassPanic
	// ClassBreakerOpen marks a domain skipped by an open circuit breaker.
	ClassBreakerOpen
	// ClassHostile marks an endpoint classified as deliberately misbehaving
	// (protocol violations, floods, exceeded resource budgets) — permanent:
	// never retried, and never charged against the per-AS breaker (the host
	// answered; it is broken, not unreachable).
	ClassHostile
	// ClassOther is any unrecognised failure — permanent.
	ClassOther
)

// String returns the telemetry label of the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassDNSTimeout:
		return "dns-timeout"
	case ClassHandshakeTimeout:
		return "handshake-timeout"
	case ClassStall:
		return "stall"
	case ClassNXDomain:
		return "nxdomain"
	case ClassNoRecord:
		return "norecord"
	case ClassReset:
		return "reset"
	case ClassH3:
		return "h3"
	case ClassPanic:
		return "panic"
	case ClassBreakerOpen:
		return "breaker"
	case ClassHostile:
		return "hostile"
	default:
		return "other"
	}
}

// Transient reports whether the class is worth retrying: the failure may
// resolve itself on a later attempt without the target having changed.
func (c Class) Transient() bool {
	return c == ClassDNSTimeout || c == ClassHandshakeTimeout || c == ClassStall
}

// Classify buckets an error string. An empty string is ClassNone.
func Classify(s string) Class {
	switch {
	case s == "":
		return ClassNone
	case strings.HasPrefix(s, "panic:"):
		return ClassPanic
	case strings.HasPrefix(s, "stall:"):
		return ClassStall
	case strings.HasPrefix(s, "breaker:"):
		return ClassBreakerOpen
	case strings.HasPrefix(s, "hostile:"):
		// Must precede the substring checks: hostile classes may mention
		// resets or packets without being any of those failures.
		return ClassHostile
	case strings.Contains(s, "NXDOMAIN"):
		return ClassNXDomain
	case strings.Contains(s, "no record"):
		return ClassNoRecord
	case strings.Contains(s, "timed out"):
		return ClassDNSTimeout
	case strings.Contains(s, "timeout"):
		return ClassHandshakeTimeout
	case strings.Contains(s, "reset") || strings.Contains(s, "closed"):
		return ClassReset
	case strings.Contains(s, "h3"):
		return ClassH3
	default:
		return ClassOther
	}
}
