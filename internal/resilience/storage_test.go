package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// replayEqual asserts two replayed journals hold identical key→value maps.
func replayEqual(t *testing.T, got, want map[string]json.RawMessage) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d keys, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("key %q missing after compaction", k)
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("key %q = %s, want %s", k, g, w)
		}
	}
}

// TestCompactionEquivalence is the property test the tentpole pins:
// replay(compact(J)) == replay(J) over randomly built journals — duplicate
// keys spread across shards, segment rotation, reopened handles, torn
// tails — with and without injected write faults during the build.
func TestCompactionEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(trial) + 1))
			cfg := JournalConfig{SegmentBytes: int64(64 + rng.Intn(512))}
			var fs *FaultFS
			if trial%2 == 1 {
				// Odd trials build the journal under storage chaos; acked
				// records must still compact equivalently.
				fs = NewFaultFS(nil, StorageFaultPlan{
					Seed: int64(trial), ShortWrite: 0.1, WriteErr: 0.1, SyncErr: 0.1, OpenErr: 0.02,
				})
				cfg.FS = fs
				cfg.DegradeAfter = -1 // keep trying: chaos, not degradation, under test
			}
			// A couple of open/append/close rounds so records for the same
			// key land in different generations.
			for round := 0; round < 1+rng.Intn(3); round++ {
				j, err := OpenJournalWith(dir, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 30+rng.Intn(120); i++ {
					key := fmt.Sprintf("w%d/v4/d%d", rng.Intn(3), rng.Intn(25))
					_ = j.Append(rng.Intn(4), key, map[string]int{"n": rng.Intn(1000)})
				}
				if err := j.Close(); err != nil && fs == nil {
					t.Fatal(err)
				}
			}
			before, tornBefore, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := Compact(nil, dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			after, tornAfter, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			replayEqual(t, after, before)
			if tornAfter != 0 {
				t.Errorf("compacted journal has %d torn lines, want 0 (had %d)", tornAfter, tornBefore)
			}
			if cs.Kept != len(before) {
				t.Errorf("compact kept %d keys, replay holds %d", cs.Kept, len(before))
			}
			if len(before) > 0 {
				names, _ := OSFS.ReadDir(dir)
				if len(names) != 1 {
					t.Errorf("compacted dir holds %d files, want 1: %v", len(names), names)
				}
			}
		})
	}
}

// TestCompactionRetention checks the retain filter drops exactly the
// rejected keys — the follow scheduler's week-pruning hook.
func TestCompactionRetention(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for wk := 1; wk <= 3; wk++ {
		for d := 0; d < 5; d++ {
			if err := j.Append(0, fmt.Sprintf("w%d/v4/d%d", wk, d), map[string]int{"w": wk}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cs, err := Compact(nil, dir, func(key string) bool {
		var wk int
		fmt.Sscanf(key, "w%d/", &wk)
		return wk >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 10 || cs.Dropped != 5 {
		t.Fatalf("kept %d dropped %d, want 10/5", cs.Kept, cs.Dropped)
	}
	got, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d keys after retention compact, want 10", len(got))
	}
	for k := range got {
		if k[:2] == "w1" {
			t.Errorf("pruned key %q survived compaction", k)
		}
	}
}

// TestCompactionAllDropped: retain rejecting everything removes the
// journal's segments without writing an empty compacted one.
func TestCompactionAllDropped(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir)
	_ = j.Append(0, "k", 1)
	_ = j.Close()
	cs, err := Compact(nil, dir, func(string) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 0 || cs.Dropped != 1 {
		t.Fatalf("kept %d dropped %d, want 0/1", cs.Kept, cs.Dropped)
	}
	names, _ := OSFS.ReadDir(dir)
	if len(names) != 0 {
		t.Fatalf("dir still holds %v", names)
	}
}

// TestCompactionTornRename: a rename fault mid-compaction must leave the
// journal replay-identical, and the stranded staging file must be cleaned
// by the next compaction.
func TestCompactionTornRename(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir)
	for i := 0; i < 10; i++ {
		if err := j.Append(i%2, fmt.Sprintf("d%d", i%4), map[string]int{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}

	// removeErr too: the stranded .tmp stays on disk, as after a crash.
	fs := &stubFaultFS{FS: OSFS, renameErr: true, removeErr: true}
	if _, err := Compact(fs, dir, nil); !errors.Is(err, ErrIO) {
		t.Fatalf("compact under torn rename = %v, want ErrIO", err)
	}
	mid, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayEqual(t, mid, before)
	names, _ := OSFS.ReadDir(dir)
	var tmps int
	for _, n := range names {
		if filepath.Ext(n) == ".tmp" {
			tmps++
		}
	}
	if tmps == 0 {
		t.Fatal("expected a stranded .tmp staging file")
	}

	// A clean retry compacts and clears the staging debris.
	if _, err := Compact(nil, dir, nil); err != nil {
		t.Fatal(err)
	}
	after, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayEqual(t, after, before)
	names, _ = OSFS.ReadDir(dir)
	for _, n := range names {
		if filepath.Ext(n) == ".tmp" {
			t.Errorf("staging file %s survived the retry", n)
		}
	}
}

// stubFaultFS fails exactly the chosen operations — deterministic fault
// placement where FaultFS's Bernoulli draws would be overkill.
type stubFaultFS struct {
	FS
	renameErr bool
	removeErr bool
	failOpens int // fail the first N OpenAppend calls
	opens     int
}

func (s *stubFaultFS) Rename(oldpath, newpath string) error {
	if s.renameErr {
		return fmt.Errorf("rename %s: %w", oldpath, ErrIO)
	}
	return s.FS.Rename(oldpath, newpath)
}

func (s *stubFaultFS) Remove(path string) error {
	if s.removeErr {
		return fmt.Errorf("remove %s: %w", path, ErrIO)
	}
	return s.FS.Remove(path)
}

func (s *stubFaultFS) OpenAppend(path string) (File, error) {
	s.opens++
	if s.opens <= s.failOpens {
		return nil, fmt.Errorf("open %s: %w", path, ErrNoSpace)
	}
	return s.FS.OpenAppend(path)
}

// TestReplayTornLineMidSegment is the satellite regression: a torn line
// glued into the *middle* of a segment (failed write followed by more
// appends to the same file, as pre-rotation journals could produce) must
// not swallow the records around it.
func TestReplayTornLineMidSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seg := []byte(`{"k":"a","s":1,"v":{"n":1}}` + "\n" +
		`{"k":"b","s":2,"v":{"n` + "\n" + // torn mid-segment
		`{"k":"c","s":3,"v":{"n":3}}` + "\n" +
		`{"k":"a","s":4,"v":{"n":4}}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, segmentName(0, 1)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 1 {
		t.Errorf("torn = %d, want 1", torn)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d keys, want 2 (a, c)", len(got))
	}
	var a struct{ N int }
	if err := json.Unmarshal(got["a"], &a); err != nil || a.N != 4 {
		t.Errorf("a = %s (err %v), want n=4", got["a"], err)
	}
	if _, ok := got["c"]; !ok {
		t.Error("record after the torn line was lost")
	}
}

// TestReplayDuplicateKeysAcrossFiles is the satellite determinism fix: the
// newest record must win by sequence number even when it lives in a file
// whose name sorts *before* the older record's file.
func TestReplayDuplicateKeysAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	// "compact-…" sorts before "shard-…": without sequence numbers,
	// name-order replay would resurrect the stale value.
	newer := `{"k":"dup","s":9,"v":{"n":9}}` + "\n"
	older := `{"k":"dup","s":2,"v":{"n":2}}` + "\n" + `{"k":"only","s":3,"v":{"n":3}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, compactName(1)), []byte(newer), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(0, 2)), []byte(older), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dup struct{ N int }
	if err := json.Unmarshal(got["dup"], &dup); err != nil || dup.N != 9 {
		t.Fatalf("dup = %s, want the seq-9 record regardless of file order", got["dup"])
	}
	// Legacy seq-less records still resolve by sorted (file, line) order.
	legacyDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(legacyDir, "shard-000.jsonl"), []byte(`{"k":"x","v":{"n":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(legacyDir, "shard-001.jsonl"), []byte(`{"k":"x","v":{"n":2}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err = Replay(legacyDir)
	if err != nil {
		t.Fatal(err)
	}
	var x struct{ N int }
	if err := json.Unmarshal(got["x"], &x); err != nil || x.N != 2 {
		t.Fatalf("legacy x = %s, want later-file record", got["x"])
	}
}

// TestJournalSeqContinuesAcrossReopen: sequence numbers issued by a
// reopened journal must rise above everything already on disk, or replay's
// last-complete-wins would invert.
func TestJournalSeqContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	for round := 1; round <= 3; round++ {
		j, err := OpenJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(0, "k", map[string]int{"round": round}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v struct{ Round int }
	if err := json.Unmarshal(got["k"], &v); err != nil || v.Round != 3 {
		t.Fatalf("k = %s, want the round-3 record", got["k"])
	}
}

// TestJournalRotation: SegmentBytes bounds each segment and replay reads
// across the rotated pieces transparently.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournalWith(dir, JournalConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Append(0, fmt.Sprintf("d%d", i), map[string]int{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Rotations == 0 {
		t.Error("no rotations despite tiny SegmentBytes")
	}
	names, _ := OSFS.ReadDir(dir)
	if len(names) < 2 {
		t.Fatalf("expected multiple segments, got %v", names)
	}
	got, torn, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(got) != 50 {
		t.Fatalf("replay = (%d keys, %d torn), want (50, 0)", len(got), torn)
	}
}

// countingFS counts Sync calls per handle, to pin the fsync policy.
type countingFS struct {
	FS
	syncs int
}

func (c *countingFS) OpenAppend(path string) (File, error) {
	f, err := c.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

type countingFile struct {
	File
	fs *countingFS
}

func (f *countingFile) Sync() error {
	f.fs.syncs++
	return f.File.Sync()
}

// TestJournalSyncPolicy: SyncEvery=1 fsyncs per record; the default syncs
// only on close.
func TestJournalSyncPolicy(t *testing.T) {
	fs := &countingFS{FS: OSFS}
	j, err := OpenJournalWith(t.TempDir(), JournalConfig{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(0, fmt.Sprintf("d%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if fs.syncs != 5 {
		t.Errorf("SyncEvery=1: %d syncs after 5 appends, want 5", fs.syncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fs2 := &countingFS{FS: OSFS}
	j2, err := OpenJournalWith(t.TempDir(), JournalConfig{FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j2.Append(0, fmt.Sprintf("d%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if fs2.syncs != 0 {
		t.Errorf("default policy: %d syncs before close, want 0", fs2.syncs)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if fs2.syncs != 1 {
		t.Errorf("default policy: %d syncs after close, want 1", fs2.syncs)
	}
}

// flakyFS fails every write until healed — the degraded-then-recovered
// storage shape (disk full, operator clears space).
type flakyFS struct {
	FS
	healed bool
}

func (f *flakyFS) OpenAppend(path string) (File, error) {
	file, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

type flakyFile struct {
	File
	fs *flakyFS
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if !f.fs.healed {
		return 0, fmt.Errorf("write: %w", ErrNoSpace)
	}
	return f.File.Write(p)
}

// TestJournalDegradedAndProbe walks the full degraded lifecycle: repeated
// write failures flip the journal to fast-fail, probes keep testing the
// storage, and a successful probe re-enables checkpointing.
func TestJournalDegradedAndProbe(t *testing.T) {
	fs := &flakyFS{FS: OSFS}
	dir := t.TempDir()
	j, err := OpenJournalWith(dir, JournalConfig{FS: fs, DegradeAfter: 3, ProbeEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Three consecutive failures trip the breaker-style degrade.
	for i := 0; i < 3; i++ {
		if err := j.Append(0, "k", i); err == nil {
			t.Fatal("append succeeded on dead storage")
		} else if errors.Is(err, ErrJournalDegraded) {
			t.Fatalf("append %d degraded too early", i)
		}
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after DegradeAfter failures")
	}
	// Degraded appends fail fast without touching storage; every 4th is a
	// probe that still fails while the disk is dead.
	var probes, fastFails int
	for i := 0; i < 8; i++ {
		err := j.Append(0, "k", i)
		if errors.Is(err, ErrJournalDegraded) {
			fastFails++
		} else if err != nil {
			probes++
		} else {
			t.Fatal("append succeeded on dead storage")
		}
	}
	if probes != 2 || fastFails != 6 {
		t.Fatalf("probes=%d fastFails=%d, want 2/6", probes, fastFails)
	}
	// Storage recovers: the next probe succeeds and clears degraded.
	fs.healed = true
	var recovered bool
	for i := 0; i < 8 && !recovered; i++ {
		recovered = j.Append(0, "recovered", i) == nil
	}
	if !recovered {
		t.Fatal("no probe landed after storage healed")
	}
	if j.Degraded() {
		t.Fatal("journal still degraded after successful probe")
	}
	if err := j.Append(0, "after", 1); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if !((st.Probes >= 3) && st.Skipped >= 6 && st.WriteFailures >= 5) {
		t.Errorf("stats = %+v, want probes≥3 skipped≥6 writeFailures≥5", st)
	}
	got, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["recovered"]; !ok {
		t.Error("post-recovery record missing from replay")
	}
	if _, ok := got["after"]; !ok {
		t.Error("record after recovery missing from replay")
	}
}

// TestJournalOpenErrRetries: segment-open failures (ENOSPC creating the
// file) fail the append but leave the journal usable once storage returns.
func TestJournalOpenErrRetries(t *testing.T) {
	fs := &stubFaultFS{FS: OSFS, failOpens: 2}
	dir := t.TempDir()
	j, err := OpenJournalWith(dir, JournalConfig{FS: fs, DegradeAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(0, "k", i); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("append %d = %v, want ErrNoSpace", i, err)
		}
	}
	if err := j.Append(0, "k", 99); err != nil {
		t.Fatalf("append after opens heal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, _ := Replay(dir)
	var v int
	if err := json.Unmarshal(got["k"], &v); err != nil || v != 99 {
		t.Fatalf("k = %s, want 99", got["k"])
	}
}

// TestJournalAckedSurviveChaos: under a mixed storage-fault plan, every
// acked append must be replayable at its last acked value, torn bytes
// notwithstanding — the core crash-safety contract.
func TestJournalAckedSurviveChaos(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fs := NewFaultFS(nil, StorageFaultPlan{
				Seed: seed, ShortWrite: 0.15, WriteErr: 0.1, SyncErr: 0.15, OpenErr: 0.05,
			})
			j, err := OpenJournalWith(dir, JournalConfig{
				FS: fs, SegmentBytes: 256, SyncEvery: 3, DegradeAfter: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			// acked holds each key's last acked value; unacked the values of
			// failed appends issued after that ack. A failed append may still
			// have persisted its line (the fsync, not the write, may be what
			// failed), so replay may legitimately surface it — what it must
			// never do is lose the ack or resurrect anything older.
			acked := map[string]int{}
			unacked := map[string]map[int]bool{}
			var ackCount int
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("d%d", rng.Intn(40))
				val := rng.Intn(1 << 20)
				if j.Append(rng.Intn(3), key, map[string]int{"n": val}) == nil {
					acked[key] = val
					delete(unacked, key)
					ackCount++
				} else {
					if unacked[key] == nil {
						unacked[key] = map[int]bool{}
					}
					unacked[key][val] = true
				}
			}
			if err := j.Close(); err != nil {
				t.Logf("close under chaos: %v", err)
			}
			if fs.Injected() == 0 {
				t.Fatal("fault plan injected nothing")
			}
			if ackCount == 0 {
				t.Fatal("no append survived the plan; probabilities too hot")
			}
			got, torn, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("acked=%d keys=%d torn=%d injected=%d", ackCount, len(acked), torn, fs.Injected())
			for key, want := range acked {
				raw, ok := got[key]
				if !ok {
					t.Fatalf("acked key %q lost", key)
				}
				var v struct{ N int }
				if err := json.Unmarshal(raw, &v); err != nil {
					t.Fatalf("key %q = %s: %v", key, raw, err)
				}
				if v.N != want && !unacked[key][v.N] {
					t.Fatalf("key %q = n=%d, want the acked n=%d or a post-ack attempt", key, v.N, want)
				}
			}
			// And compaction equivalence holds on the chaos-built journal.
			if _, err := Compact(nil, dir, nil); err != nil {
				t.Fatal(err)
			}
			after, _, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			replayEqual(t, after, got)
		})
	}
}

// TestFaultFSDeterminism: two FaultFS instances with the same plan inject
// the identical fault sequence over the identical operation sequence.
func TestFaultFSDeterminism(t *testing.T) {
	plan := StorageFaultPlan{Seed: 7, ShortWrite: 0.2, WriteErr: 0.2, SyncErr: 0.2, OpenErr: 0.1}
	run := func() []string {
		fs := NewFaultFS(nil, plan)
		dir := t.TempDir()
		var outcomes []string
		var f File
		for i := 0; i < 60; i++ {
			var err error
			switch i % 4 {
			case 0:
				f, err = fs.OpenAppend(filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i)))
			case 1, 2:
				if f != nil {
					_, err = f.Write([]byte(`{"k":"x","v":1}` + "\n"))
				}
			case 3:
				if f != nil {
					err = f.Sync()
					f.Close()
					f = nil
				}
			}
			// Classify rather than stringify: injected errors embed the
			// per-run temp path.
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case errors.Is(err, ErrNoSpace):
				outcomes = append(outcomes, "nospace")
			case errors.Is(err, ErrSyncFailed):
				outcomes = append(outcomes, "syncfail")
			case errors.Is(err, ErrIO):
				outcomes = append(outcomes, "io")
			default:
				outcomes = append(outcomes, "other")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestParseStorageFaultPlan covers the flag grammar.
func TestParseStorageFaultPlan(t *testing.T) {
	p, err := ParseStorageFaultPlan("seed:42,short-write:0.1,write-err:0.2,sync-err:0.3,rename-err:0.4,open-err:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := StorageFaultPlan{Seed: 42, ShortWrite: 0.1, WriteErr: 0.2, SyncErr: 0.3, RenameErr: 0.4, OpenErr: 0.5}
	if *p != want {
		t.Fatalf("plan = %+v, want %+v", *p, want)
	}
	if !p.Enabled() {
		t.Error("plan not enabled")
	}
	if p, err := ParseStorageFaultPlan("  "); err != nil || p != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"bogus:1", "short-write:2", "short-write:x", "seed:x", "short-write"} {
		if _, err := ParseStorageFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed, want error", bad)
		}
	}
}

// TestJournalCloseError: a close failure is reported (not swallowed) and
// flips the journal degraded, so the caller can raise the gauge.
func TestJournalCloseError(t *testing.T) {
	fs := &countingFS{FS: failCloseFS{OSFS}}
	j, err := OpenJournalWith(t.TempDir(), JournalConfig{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, "k", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err == nil {
		t.Fatal("close error swallowed")
	}
	if !j.Degraded() {
		t.Error("journal not degraded after failed close")
	}
}

type failCloseFS struct{ FS }

func (f failCloseFS) OpenAppend(path string) (File, error) {
	file, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return failCloseFile{file}, nil
}

type failCloseFile struct{ File }

func (f failCloseFile) Close() error {
	f.File.Close()
	return fmt.Errorf("close: %w", ErrIO)
}
