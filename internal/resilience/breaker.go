package resilience

import (
	"sort"
	"sync"
	"time"
)

// BreakerConfig parameterises the per-prefix/AS circuit breaker. The zero
// value disables breaking.
type BreakerConfig struct {
	// Threshold is the number of consecutive transient failures within one
	// group (prefix or AS) that opens the breaker. Zero disables it.
	Threshold int
	// Cooldown is the virtual time an open breaker waits before letting a
	// half-open probe through. Zero means 30s.
	Cooldown time.Duration
	// SkipCost is the virtual time a skipped domain advances the group
	// clock by (the pacing cost of noting and skipping a target). Zero
	// means 250ms.
	SkipCost time.Duration
}

// Enabled reports whether the breaker is active.
func (c BreakerConfig) Enabled() bool { return c.Threshold > 0 }

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 30 * time.Second
	}
	return c.Cooldown
}

func (c BreakerConfig) skipCost() time.Duration {
	if c.SkipCost <= 0 {
		return 250 * time.Millisecond
	}
	return c.SkipCost
}

// State is a breaker group's position in the classic three-state machine.
type State int

const (
	// StateClosed lets every scan through and counts consecutive
	// transient failures.
	StateClosed State = iota
	// StateOpen skips scans until the cooldown elapses on the group's
	// virtual clock.
	StateOpen
	// StateHalfOpen lets exactly one probe scan through; its outcome
	// either closes or re-opens the breaker.
	StateHalfOpen
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Decision is the gate's verdict for one position.
type Decision struct {
	// Skip tells the caller to record a breaker-skipped result instead of
	// scanning.
	Skip bool
	// Probe marks the scan as a half-open probe.
	Probe bool
	// State is the group state the decision was made in.
	State State
	// Aborted reports that the breaker was aborted (campaign interrupt)
	// while waiting; the caller should stop.
	Aborted bool
}

// Outcome is the caller's report of what one position's domain produced.
type Outcome struct {
	// Transient marks a transient-class failure (timeout, stall).
	Transient bool
	// Skipped marks a breaker-skipped result (no scan happened).
	Skipped bool
	// Cost is the virtual time the attempt consumed; skipped outcomes
	// default to the configured SkipCost.
	Cost time.Duration
}

// Events reports state transitions caused by one Record call.
type Events struct {
	// Opened: the group transitioned to open (from closed or half-open).
	Opened bool
	// Closed: a half-open probe succeeded and closed the group.
	Closed bool
}

// Stats is a snapshot of cumulative breaker activity.
type Stats struct {
	Opened, Closed, Skipped, Probes int64
}

// Breaker is a deterministic per-group circuit breaker shared by all
// campaign workers. Positions within a group are totally ordered: Acquire
// for position p blocks until positions 0..p-1 of the same group have
// recorded their outcomes, which makes every decision a pure function of
// the (deterministic) per-domain outcomes — independent of worker count
// and scheduling. Waits cannot deadlock as long as every worker processes
// its positions in increasing canonical order, which the scanner's strided
// sharding guarantees.
//
// Time is a per-group virtual clock advanced by the reported Outcome.Cost
// of each position (workers' own virtual clocks diverge with scan order,
// so they cannot be used without breaking determinism).
type Breaker struct {
	cfg     BreakerConfig
	mu      sync.Mutex
	cond    *sync.Cond
	groups  map[string]*breakerGroup
	aborted bool
	stats   Stats
}

type breakerGroup struct {
	next     int // next position allowed to decide
	consec   int // consecutive transient failures while closed
	state    State
	clock    time.Duration // virtual group clock
	openedAt time.Duration
}

// NewBreaker returns a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg, groups: map[string]*breakerGroup{}}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *Breaker) group(key string) *breakerGroup {
	g := b.groups[key]
	if g == nil {
		g = &breakerGroup{}
		b.groups[key] = g
	}
	return g
}

// Acquire blocks until every earlier position of the group has recorded
// its outcome, then returns the decision for this position. Callers must
// follow up with exactly one Record for the same (key, pos).
func (b *Breaker) Acquire(key string, pos int) Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.group(key)
	for g.next != pos && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return Decision{Aborted: true}
	}
	d := Decision{State: g.state}
	switch g.state {
	case StateOpen:
		if g.clock-g.openedAt >= b.cfg.cooldown() {
			g.state = StateHalfOpen
			d.State = StateHalfOpen
			d.Probe = true
			b.stats.Probes++
		} else {
			d.Skip = true
		}
	case StateHalfOpen:
		// Unreachable through the gate (the probe's Record always leaves
		// half-open before the next Acquire), but harmless: probe again.
		d.Probe = true
		b.stats.Probes++
	}
	return d
}

// Record reports the outcome of a position, advances the group state
// machine and clock, and unblocks the next position.
func (b *Breaker) Record(key string, pos int, o Outcome) Events {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.group(key)
	cost := o.Cost
	if cost <= 0 {
		cost = b.cfg.skipCost()
	}
	g.clock += cost
	var ev Events
	switch {
	case o.Skipped:
		b.stats.Skipped++
	case g.state == StateClosed:
		if o.Transient {
			g.consec++
			if g.consec >= b.cfg.Threshold {
				g.state = StateOpen
				g.openedAt = g.clock
				ev.Opened = true
				b.stats.Opened++
			}
		} else {
			g.consec = 0
		}
	case g.state == StateHalfOpen:
		if o.Transient {
			g.state = StateOpen
			g.openedAt = g.clock
			ev.Opened = true
			b.stats.Opened++
		} else {
			g.state = StateClosed
			g.consec = 0
			ev.Closed = true
			b.stats.Closed++
		}
	}
	if pos >= g.next {
		g.next = pos + 1
	}
	b.cond.Broadcast()
	return ev
}

// Abort wakes every blocked Acquire with an aborted decision; used when a
// campaign is interrupted so workers parked on the gate can exit.
func (b *Breaker) Abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Stats returns a snapshot of cumulative breaker activity.
func (b *Breaker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// OpenGroups returns the keys of every group currently open or half-open,
// sorted; the campaign dashboard lists them so an operator can see which
// prefixes the scan is backing off from.
func (b *Breaker) OpenGroups() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var keys []string
	for key, g := range b.groups {
		if g.state != StateClosed {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// GroupState returns the current state of a group (closed for unknown
// keys); exposed for tests and operator tooling.
func (b *Breaker) GroupState(key string) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if g, ok := b.groups[key]; ok {
		return g.state
	}
	return StateClosed
}
