package flowtable

import (
	"fmt"
	"sort"
	"time"
)

// Stats is the table's lifetime counter block.
type Stats struct {
	ActiveFlows int
	NewFlows    uint64
	EvictedIdle uint64
	EvictedLRU  uint64
	Datagrams   uint64
	Packets     uint64
	ParseErrors uint64
	Samples     uint64
	Edges       uint64
	CIDChanges  uint64
}

// FlowSnapshot is the exported view of one tracked flow.
type FlowSnapshot struct {
	// Key identifies the flow (hex of the unordered address-hash pair).
	Key string
	// Initiator is the address hash of the flow's first sender.
	Initiator uint64
	FirstSeen time.Time
	LastSeen  time.Time
	// Packets and Edges are indexed by core.Direction.
	Packets [2]uint64
	Edges   [2]uint32
	Samples uint64
	MeanRTT time.Duration
	MinRTT  time.Duration
	MaxRTT  time.Duration
	LastRTT time.Duration
	// CIDChanges counts mid-flow destination connection ID changes.
	CIDChanges uint32
}

// Snapshot is a point-in-time export of the table: counters, the fixed
// aggregate RTT histogram, and the top-K slowest flows by mean RTT.
type Snapshot struct {
	Stats Stats
	// HistBounds/HistCounts is the aggregate sample histogram; the last
	// count is the +inf overflow bucket.
	HistBounds []time.Duration
	HistCounts []uint64
	// Slowest holds up to K flows ordered by descending mean RTT (flows
	// without samples excluded). Ties break on Key for stable output.
	Slowest []FlowSnapshot
	// Flows is every active flow in slot order (only filled when the
	// snapshot was taken with all=true).
	Flows []FlowSnapshot
}

func (s *slot) snapshot() FlowSnapshot {
	fs := FlowSnapshot{
		Key:        fmt.Sprintf("%016x-%016x", s.key.lo, s.key.hi),
		Initiator:  s.initiator,
		FirstSeen:  time.Unix(0, s.firstSeen),
		LastSeen:   time.Unix(0, s.lastSeen),
		Packets:    s.packets,
		Edges:      [2]uint32{s.dirs[0].Edges(), s.dirs[1].Edges()},
		Samples:    s.samples,
		MinRTT:     time.Duration(s.minRTT),
		MaxRTT:     time.Duration(s.maxRTT),
		LastRTT:    time.Duration(s.lastRTT),
		CIDChanges: s.cidChanges,
	}
	if s.samples > 0 {
		fs.MeanRTT = time.Duration(s.sumRTT / int64(s.samples))
	}
	return fs
}

// Stats returns the lifetime counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statsLocked()
}

func (t *Table) statsLocked() Stats {
	return Stats{
		ActiveFlows: t.active,
		NewFlows:    t.newFlows,
		EvictedIdle: t.evictIdle,
		EvictedLRU:  t.evictLRU,
		Datagrams:   t.datagrams,
		Packets:     t.packets,
		ParseErrors: t.parseErrors,
		Samples:     t.totSamples,
		Edges:       t.totEdges,
		CIDChanges:  t.cidChanges,
	}
}

// Len returns the number of active flows.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Lookup returns the snapshot of the flow between addresses hashed a and
// b, if tracked.
func (t *Table) Lookup(a, b uint64) (FlowSnapshot, bool) {
	key := makeKey(a, b)
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.lookup(key, key.mix()); s != nil {
		return s.snapshot(), true
	}
	return FlowSnapshot{}, false
}

// Snapshot exports the table state. k bounds the slowest-flows list; with
// all=true every active flow is included in Flows (slot order, which is
// deterministic for a deterministic ingest order).
func (t *Table) Snapshot(k int, all bool) Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := Snapshot{
		Stats:      t.statsLocked(),
		HistBounds: RTTBucketBounds,
		HistCounts: append([]uint64(nil), t.histCounts[:]...),
	}
	var sampled []FlowSnapshot
	for i := range t.slots {
		s := &t.slots[i]
		if !s.used {
			continue
		}
		fs := s.snapshot()
		if all {
			snap.Flows = append(snap.Flows, fs)
		}
		if k > 0 && fs.Samples > 0 {
			sampled = append(sampled, fs)
		}
	}
	if k > 0 {
		sort.Slice(sampled, func(i, j int) bool {
			if sampled[i].MeanRTT != sampled[j].MeanRTT {
				return sampled[i].MeanRTT > sampled[j].MeanRTT
			}
			return sampled[i].Key < sampled[j].Key
		})
		if len(sampled) > k {
			sampled = sampled[:k]
		}
		snap.Slowest = sampled
	}
	return snap
}
