package flowtable_test

import (
	"fmt"
	"testing"
	"time"

	"quicspin/internal/flowtable"
	"quicspin/internal/wire"
)

// FuzzFlowIngest throws hostile datagrams — runts, mangled short headers,
// grease bits, mid-flow CID changes — at a small table that already tracks
// three well-behaved sentinel flows. The ingest path must never panic, and
// the fuzz traffic (a distinct fourth flow in a table with free slots, so
// no eviction can touch the sentinels) must never corrupt neighboring
// slots: the sentinels' exported state must be byte-identical afterwards.
func FuzzFlowIngest(f *testing.F) {
	seed := func(cid []byte, pn uint64, spin bool, vec uint8) []byte {
		h := &wire.Header{DstConnID: wire.NewConnectionID(cid), PacketNumber: pn, SpinBit: spin, Reserved: vec}
		b, err := wire.AppendShortHeader(nil, h, []byte{0x01}, wire.NoAckedPacket)
		if err != nil {
			f.Fatalf("seed packet: %v", err)
		}
		return b
	}
	f.Add(seed([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 1, true, 3))
	f.Add(seed([]byte{8, 7, 6, 5, 4, 3, 2, 1}, 9, false, 1))
	f.Add([]byte{0x40})       // runt short header
	f.Add([]byte{0x00, 0xff}) // fixed bit clear
	f.Add([]byte{0xc3, 0x00, 0x00, 0x00, 0x01})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := flowtable.New(flowtable.Config{Slots: 64, IdleTimeout: time.Hour, DCIDLen: 8})
		base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
		sentinels := [][2]uint64{{11, 21}, {12, 22}, {13, 23}}
		for i, s := range sentinels {
			cid := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
			for pn := uint64(0); pn < 4; pn++ {
				tbl.Ingest(base+int64(pn)*1e6, s[0], s[1], seed(cid, pn, pn%2 == 1, 3))
			}
		}
		before := make([]string, len(sentinels))
		for i, s := range sentinels {
			fs, ok := tbl.Lookup(s[0], s[1])
			if !ok {
				t.Fatalf("sentinel %d missing before fuzz input", i)
			}
			before[i] = fmt.Sprintf("%+v", fs)
		}

		// The fuzz flow: same payload delivered twice in each direction so
		// mid-flow CID tracking and both direction paths execute.
		tbl.Ingest(base+10e6, 99, 100, data)
		tbl.Ingest(base+11e6, 100, 99, data)
		tbl.Ingest(base+12e6, 99, 100, data)

		for i, s := range sentinels {
			fs, ok := tbl.Lookup(s[0], s[1])
			if !ok {
				t.Fatalf("sentinel %d lost after fuzz input %x", i, data)
			}
			if got := fmt.Sprintf("%+v", fs); got != before[i] {
				t.Fatalf("sentinel %d corrupted by fuzz input %x:\nbefore: %s\nafter:  %s", i, data, before[i], got)
			}
		}
		st := tbl.Stats()
		if st.ActiveFlows > 64 {
			t.Fatalf("active flows %d exceed capacity", st.ActiveFlows)
		}
	})
}
