package flowtable_test

// TestFlowtableMatchesObserver pins the flowtable's RTT semantics to the
// reference core.Observer: on identical tapped traffic — clean, the full
// 19-schedule chaos sweep, and a hostile spin-liar — the table's per-flow
// samples and spin-edge counts must agree exactly with a full observer fed
// the same packets, and the comparison must be byte-stable across runs.
// Under forced eviction pressure the divergence must stay bounded by the
// eviction counters.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/conformance"
	"quicspin/internal/core"
	"quicspin/internal/flowtable"
	"quicspin/internal/h3"
	"quicspin/internal/hostile"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

// refTap is the reference vantage: the same per-direction packet-number
// expansion the conformance harness uses, feeding one full core.Observer.
type refTap struct {
	obs       *core.Observer
	largest   [2]uint64
	havePN    [2]bool
	parseErrs int
}

func (r *refTap) tap(now time.Time, from, to string, data []byte) {
	dir := core.ClientToServer
	if from == "server" {
		dir = core.ServerToClient
	}
	for len(data) > 0 {
		largest := wire.NoAckedPacket
		if r.havePN[dir] {
			largest = r.largest[dir]
		}
		hdr, _, consumed, err := wire.ParseHeader(data, transport.DefaultConnIDLen, largest)
		if err != nil {
			r.parseErrs++
			return
		}
		if !hdr.IsLong {
			if !r.havePN[dir] || hdr.PacketNumber > r.largest[dir] {
				r.largest[dir] = hdr.PacketNumber
				r.havePN[dir] = true
			}
			r.obs.Observe(dir, core.Observation{T: now, PN: hdr.PacketNumber, Spin: hdr.SpinBit, VEC: hdr.Reserved})
		}
		data = data[consumed:]
	}
}

// runTappedExchange drives one client/server exchange through the netem
// schedule with both the reference observer and the flowtable attached to
// the same tap, and returns both plus the table.
func runTappedExchange(t *testing.T, path netem.PathConfig, seed int64, liar bool) (*refTap, *flowtable.Table) {
	t.Helper()
	start := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	loop := sim.NewLoop(start)
	rng := rand.New(rand.NewSource(seed))
	net := netem.New(loop, path, rng)

	ref := &refTap{obs: core.NewObserver(core.ObserverConfig{UsePacketNumberGuard: true, UseVEC: true})}
	tbl := flowtable.New(flowtable.Config{
		Slots:       256,
		IdleTimeout: time.Minute, // no idle evictions mid-exchange
		DCIDLen:     transport.DefaultConnIDLen,
		UseVEC:      true,
	})
	ftap := tbl.Tap()
	net.SetTap(func(now time.Time, from, to string, data []byte) {
		ref.tap(now, from, to, data)
		ftap(now, from, to, data)
	})
	if liar {
		net.SetMangler("server", hostile.NewMangler(hostile.SpinLiar))
	}

	body := make([]byte, 64*1024)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{Status: 200, Headers: map[string]string{"server": "flowtable/1.0"}, Body: body}
	})
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng, SpinPolicy: core.Policy{Mode: core.ModeSpin}, EnableVEC: true}
	})
	server := netem.NewServerHost(net, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			srv.Serve("client", conn, now)
		}
	}

	conn := transport.NewClientConn(transport.Config{Rng: rng, EnableVEC: true}, start)
	client := netem.NewClientHost(net, "client", "server", conn)
	hc := h3.NewClientConn(conn)
	reqID, err := hc.Do(&h3.Request{Method: "GET", Authority: "flow.test", Path: "/", Headers: map[string]string{}})
	if err != nil {
		t.Fatalf("queueing request: %v", err)
	}
	completed := false
	client.OnActivity = func(c *transport.Conn, now time.Time) {
		if completed {
			return
		}
		if _, complete, _ := hc.Response(reqID); complete {
			completed = true
		}
	}
	client.Kick()

	deadline := start.Add(30 * time.Second)
	for !completed && loop.Now().Before(deadline) {
		if !loop.Step() {
			break
		}
	}
	conn.Close(loop.Now(), 0, "flowtable conformance done")
	client.Kick()
	for loop.Step() {
	}
	return ref, tbl
}

// describeFlow renders the comparable state of the exchange's single flow
// for byte-stability checks.
func describeFlow(ref *refTap, tbl *flowtable.Table) string {
	fs, ok := tbl.Lookup(flowtable.HashAddr("client"), flowtable.HashAddr("server"))
	st := tbl.Stats()
	var refSum, refMin, refMax, refLast time.Duration
	samples := ref.obs.Samples()
	for i, s := range samples {
		if i == 0 || s.RTT < refMin {
			refMin = s.RTT
		}
		if i == 0 || s.RTT > refMax {
			refMax = s.RTT
		}
		refSum += s.RTT
		refLast = s.RTT
	}
	return fmt.Sprintf(
		"found=%v flowSamples=%d refSamples=%d flowEdges=%d/%d refEdges=%d/%d sum=%v/%v min=%v/%v max=%v/%v last=%v/%v flows=%d evicted=%d parseErrs=%d/%d",
		ok, fs.Samples, len(samples),
		fs.Edges[0], fs.Edges[1], ref.obs.Edges(core.ClientToServer), ref.obs.Edges(core.ServerToClient),
		time.Duration(int64(fs.MeanRTT)*int64(fs.Samples)), refSum,
		fs.MinRTT, refMin, fs.MaxRTT, refMax, fs.LastRTT, refLast,
		st.NewFlows, st.EvictedIdle+st.EvictedLRU, st.ParseErrors, ref.parseErrs)
}

func checkAgreement(t *testing.T, name string, ref *refTap, tbl *flowtable.Table) {
	t.Helper()
	fs, ok := tbl.Lookup(flowtable.HashAddr("client"), flowtable.HashAddr("server"))
	if !ok {
		t.Fatalf("%s: flowtable lost the flow", name)
	}
	st := tbl.Stats()
	if st.EvictedIdle+st.EvictedLRU != 0 || st.NewFlows != 1 || st.ActiveFlows != 1 {
		t.Fatalf("%s: unexpected churn: %+v", name, st)
	}
	samples := ref.obs.Samples()
	if fs.Samples != uint64(len(samples)) {
		t.Fatalf("%s: flowtable produced %d samples, observer %d", name, fs.Samples, len(samples))
	}
	for dir := core.ClientToServer; dir <= core.ServerToClient; dir++ {
		if fs.Edges[dir] != ref.obs.Edges(dir) {
			t.Fatalf("%s: dir %d edge count %d != observer %d", name, dir, fs.Edges[dir], ref.obs.Edges(dir))
		}
	}
	if st.ParseErrors != uint64(ref.parseErrs) {
		t.Fatalf("%s: parse errors %d != reference %d", name, st.ParseErrors, ref.parseErrs)
	}
	var sum time.Duration
	var min, max, last time.Duration
	for i, s := range samples {
		if i == 0 || s.RTT < min {
			min = s.RTT
		}
		if i == 0 || s.RTT > max {
			max = s.RTT
		}
		sum += s.RTT
		last = s.RTT
	}
	if len(samples) > 0 {
		wantMean := time.Duration(int64(sum) / int64(len(samples)))
		if fs.MeanRTT != wantMean || fs.MinRTT != min || fs.MaxRTT != max || fs.LastRTT != last {
			t.Fatalf("%s: aggregate mismatch: mean %v/%v min %v/%v max %v/%v last %v/%v",
				name, fs.MeanRTT, wantMean, fs.MinRTT, min, fs.MaxRTT, max, fs.LastRTT, last)
		}
	}
}

func TestFlowtableMatchesObserver(t *testing.T) {
	type caseSpec struct {
		name string
		path netem.PathConfig
		seed int64
		liar bool
	}
	var cases []caseSpec
	// Clean + full chaos sweep from the conformance package (19 schedules).
	for _, c := range conformance.DefaultChaosCases() {
		cases = append(cases, caseSpec{name: c.Name, path: c.Path, seed: c.Seed})
	}
	// Hostile spin-liar on a clean and on a lossy reordering path: both
	// vantages see the same lies, so they must still agree exactly.
	cases = append(cases,
		caseSpec{name: "spin-liar", path: netem.PathConfig{Delay: 10 * time.Millisecond}, seed: 101, liar: true},
		caseSpec{name: "spin-liar-chaos", path: netem.PathConfig{
			Delay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond,
			LossRate: 0.05, ReorderRate: 0.1, ReorderExtra: 3 * time.Millisecond,
		}, seed: 102, liar: true},
	)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref, tbl := runTappedExchange(t, c.path, c.seed, c.liar)
			// Under heavy reordering the VEC-strict observer may legitimately
			// never pair two valid edges; only clean paths must sample.
			clean := c.path.ReorderRate == 0 && c.path.LossRate == 0 && c.path.DuplicateRate == 0
			if len(ref.obs.Samples()) == 0 && clean && !c.liar {
				t.Fatalf("reference observer produced no samples; harness broken")
			}
			checkAgreement(t, c.name, ref, tbl)
			// Byte-stability: an identical replay must describe identically.
			ref2, tbl2 := runTappedExchange(t, c.path, c.seed, c.liar)
			if d1, d2 := describeFlow(ref, tbl), describeFlow(ref2, tbl2); d1 != d2 {
				t.Fatalf("replay not byte-stable:\n  run1: %s\n  run2: %s", d1, d2)
			}
		})
	}
}

// TestFlowtableEvictionBoundedDivergence forces LRU eviction pressure with
// more interleaved flows than the table can hold and checks that every
// sample the table misses relative to per-flow reference observers is
// accounted for by the eviction counters: each restart of a flow loses at
// most two samples (one flip to re-learn the value, one to re-anchor the
// first edge).
func TestFlowtableEvictionBoundedDivergence(t *testing.T) {
	// Traffic mix: a few hot long-lived flows sending every round, plus a
	// stream of short scan flows (3 packets each) that overflow the tiny
	// table and force LRU evictions — occasionally of a hot flow whose
	// probe window fills up.
	const (
		nHot   = 4
		nScans = 200
	)
	nFlows := nHot + nScans
	tbl := flowtable.New(flowtable.Config{
		Slots:       8,
		MaxProbe:    2,
		IdleTimeout: time.Hour,
		DCIDLen:     8,
	})
	refs := make([]*core.Observer, nFlows)
	for i := range refs {
		refs[i] = core.NewObserver(core.ObserverConfig{UsePacketNumberGuard: true})
	}
	rng := rand.New(rand.NewSource(77))
	cids := make([]wire.ConnectionID, nFlows)
	for i := range cids {
		b := make([]byte, 8)
		rng.Read(b)
		cids[i] = wire.NewConnectionID(b)
	}
	payload := wire.PingFrame{}.Append(nil)

	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	tn := base
	pn := make([]uint64, nFlows)
	send := func(f int) {
		spin := (pn[f] % 2) == 1
		hdr := &wire.Header{DstConnID: cids[f], SpinBit: spin, PacketNumber: pn[f]}
		pkt, err := wire.AppendShortHeader(nil, hdr, payload, wire.NoAckedPacket)
		if err != nil {
			t.Fatalf("building packet: %v", err)
		}
		tn += int64(time.Millisecond)
		tbl.Ingest(tn, uint64(1000+f), uint64(500000+f), pkt)
		refs[f].Observe(core.ClientToServer, core.Observation{
			T: time.Unix(0, tn), PN: pn[f], Spin: spin,
		})
		pn[f]++
	}
	for scan := 0; scan < nScans; scan++ {
		for f := 0; f < nHot; f++ {
			send(f)
		}
		for i := 0; i < 3; i++ {
			send(nHot + scan)
		}
	}

	st := tbl.Stats()
	if st.EvictedLRU == 0 {
		t.Fatalf("no LRU evictions: table too large for the test to bite (%+v)", st)
	}
	var refTotal uint64
	for _, r := range refs {
		refTotal += uint64(len(r.Samples()))
	}
	if st.Samples > refTotal {
		t.Fatalf("flowtable produced more samples (%d) than reference (%d)", st.Samples, refTotal)
	}
	restarts := st.EvictedLRU + st.EvictedIdle
	if lost := refTotal - st.Samples; lost > 2*restarts {
		t.Fatalf("lost %d samples but only %d restarts account for at most %d", lost, restarts, 2*restarts)
	}
	if st.Samples == 0 {
		t.Fatalf("flowtable produced no samples under pressure")
	}
}
