package flowtable_test

import (
	"testing"
	"time"

	"quicspin/internal/flowtable"
	"quicspin/internal/telemetry"
	"quicspin/internal/wire"
)

// TestIngestZeroAlloc gates the steady-state per-packet path at zero heap
// allocations — the Tofino-style line-rate budget. The flow is admitted
// before measurement and every measured packet flips the spin bit, so the
// full hot path runs: header parse, slot lookup, EdgeState step, sample
// aggregation, and telemetry export.
func TestIngestZeroAlloc(t *testing.T) {
	reg := telemetry.New()
	tbl := flowtable.New(flowtable.Config{Slots: 256, IdleTimeout: time.Hour, DCIDLen: 8, Telemetry: reg})
	cid := wire.NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8})

	const runs = 200
	pkts := make([][]byte, runs+10)
	for i := range pkts {
		h := &wire.Header{DstConnID: cid, PacketNumber: uint64(i), SpinBit: i%2 == 1, Reserved: 3}
		b, err := wire.AppendShortHeader(nil, h, wire.PingFrame{}.Append(nil), wire.NoAckedPacket)
		if err != nil {
			t.Fatalf("building packet: %v", err)
		}
		pkts[i] = b
	}
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	// Admit the flow so measurement starts in steady state.
	tbl.Ingest(base, 7, 8, pkts[0])

	idx := 1
	tn := base
	allocs := testing.AllocsPerRun(runs, func() {
		tn += int64(time.Millisecond)
		tbl.Ingest(tn, 7, 8, pkts[idx])
		idx++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Ingest allocates %.1f times per packet, want 0", allocs)
	}
	if st := tbl.Stats(); st.Samples == 0 {
		t.Fatalf("alloc gate measured a path that produced no samples: %+v", st)
	}
}

// TestIngestBatchZeroAlloc gates the batched path the netem tap and UDP
// mirror use: one lock, N packets, still zero allocations.
func TestIngestBatchZeroAlloc(t *testing.T) {
	tbl := flowtable.New(flowtable.Config{Slots: 256, IdleTimeout: time.Hour, DCIDLen: 8})
	cid := wire.NewConnectionID([]byte{8, 7, 6, 5, 4, 3, 2, 1})
	const runs = 100
	const batchLen = 16
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	batches := make([][]flowtable.Packet, runs+10)
	pn := uint64(0)
	for i := range batches {
		batch := make([]flowtable.Packet, batchLen)
		for j := range batch {
			h := &wire.Header{DstConnID: cid, PacketNumber: pn, SpinBit: pn%2 == 1}
			b, err := wire.AppendShortHeader(nil, h, wire.PingFrame{}.Append(nil), wire.NoAckedPacket)
			if err != nil {
				t.Fatalf("building packet: %v", err)
			}
			batch[j] = flowtable.Packet{TNanos: base + int64(pn)*1e6, Src: 9, Dst: 10, Data: b}
			pn++
		}
		batches[i] = batch
	}
	tbl.IngestBatch(batches[0])
	idx := 1
	allocs := testing.AllocsPerRun(runs, func() {
		tbl.IngestBatch(batches[idx])
		idx++
	})
	if allocs != 0 {
		t.Fatalf("steady-state IngestBatch allocates %.1f times per batch, want 0", allocs)
	}
}
