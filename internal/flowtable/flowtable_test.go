package flowtable_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"quicspin/internal/flowtable"
	"quicspin/internal/telemetry"
	"quicspin/internal/wire"
)

// shortPkt builds one short-header datagram with an 8-byte connection ID.
func shortPkt(t testing.TB, cid wire.ConnectionID, pn uint64, spin bool, vec uint8) []byte {
	t.Helper()
	hdr := &wire.Header{DstConnID: cid, SpinBit: spin, PacketNumber: pn, Reserved: vec}
	pkt, err := wire.AppendShortHeader(nil, hdr, wire.PingFrame{}.Append(nil), wire.NoAckedPacket)
	if err != nil {
		t.Fatalf("building packet: %v", err)
	}
	return pkt
}

func cidFor(rng *rand.Rand) wire.ConnectionID {
	b := make([]byte, 8)
	rng.Read(b)
	return wire.NewConnectionID(b)
}

// checkConservation asserts the table's flow accounting invariant: every
// admitted flow is either still active or accounted by an eviction counter
// — no lost, no duplicated flows.
func checkConservation(t *testing.T, tbl *flowtable.Table) {
	t.Helper()
	st := tbl.Stats()
	if got := st.NewFlows - st.EvictedIdle - st.EvictedLRU; got != uint64(st.ActiveFlows) {
		t.Fatalf("flow conservation broken: new %d - evicted %d+%d = %d, active %d",
			st.NewFlows, st.EvictedIdle, st.EvictedLRU, got, st.ActiveFlows)
	}
}

func TestInsertLookupRandomKeys(t *testing.T) {
	const nFlows = 300
	tbl := flowtable.New(flowtable.Config{Slots: 1024, IdleTimeout: time.Hour, DCIDLen: 8})
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	type flow struct{ src, dst uint64 }
	flows := make([]flow, nFlows)
	seen := map[flow]bool{}
	for i := range flows {
		for {
			f := flow{rng.Uint64(), rng.Uint64()}
			if f.src != f.dst && !seen[f] {
				flows[i] = f
				seen[f] = true
				break
			}
		}
	}
	cid := cidFor(rng)
	for round := 0; round < 3; round++ {
		for i, f := range flows {
			pkt := shortPkt(t, cid, uint64(round), round%2 == 1, 0)
			tbl.Ingest(base+int64(i+round*nFlows)*int64(time.Millisecond), f.src, f.dst, pkt)
		}
	}
	st := tbl.Stats()
	if st.ActiveFlows != nFlows || st.NewFlows != nFlows {
		t.Fatalf("expected %d active flows admitted once, got %+v", nFlows, st)
	}
	checkConservation(t, tbl)
	for _, f := range flows {
		fs, ok := tbl.Lookup(f.src, f.dst)
		if !ok {
			t.Fatalf("flow %v lost", f)
		}
		if fs.Packets[0] != 3 {
			t.Fatalf("flow %v saw %d packets, want 3", f, fs.Packets[0])
		}
		// The unordered key must match from the responder's perspective too.
		if back, ok := tbl.Lookup(f.dst, f.src); !ok || back.Key != fs.Key {
			t.Fatalf("reverse lookup of %v failed", f)
		}
	}
}

func TestCollisionHeavyKeysConserveFlows(t *testing.T) {
	// Far more flows than slots: every probe window overflows, evictions
	// are constant, and still no flow may be lost or double-counted.
	const nFlows = 500
	tbl := flowtable.New(flowtable.Config{Slots: 16, MaxProbe: 4, IdleTimeout: time.Hour, DCIDLen: 8})
	rng := rand.New(rand.NewSource(12))
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	cid := cidFor(rng)
	for i := 0; i < nFlows; i++ {
		pkt := shortPkt(t, cid, 0, false, 0)
		tbl.Ingest(base+int64(i)*int64(time.Millisecond), rng.Uint64(), rng.Uint64(), pkt)
	}
	st := tbl.Stats()
	if st.ActiveFlows > 16 {
		t.Fatalf("active flows %d exceed table capacity 16", st.ActiveFlows)
	}
	if st.EvictedLRU == 0 {
		t.Fatalf("expected LRU evictions under 500 flows / 16 slots: %+v", st)
	}
	if st.NewFlows != nFlows {
		t.Fatalf("admitted %d flows, want %d", st.NewFlows, nFlows)
	}
	checkConservation(t, tbl)
}

func TestEvictionDeterministic(t *testing.T) {
	run := func() string {
		tbl := flowtable.New(flowtable.Config{Slots: 32, MaxProbe: 2, IdleTimeout: time.Minute, DCIDLen: 8})
		rng := rand.New(rand.NewSource(13))
		base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
		cid := cidFor(rng)
		for i := 0; i < 400; i++ {
			f := rng.Intn(80)
			pkt := shortPkt(t, cid, uint64(i), i%2 == 1, 0)
			// A quarter of the traffic arrives after long gaps, triggering
			// idle reclaims as well as LRU pressure.
			gap := int64(time.Millisecond)
			if rng.Intn(4) == 0 {
				gap = int64(2 * time.Minute)
			}
			base += gap
			tbl.Ingest(base, uint64(100+f), uint64(90000+f), pkt)
		}
		snap := tbl.Snapshot(10, true)
		return fmt.Sprintf("%+v", snap)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("seeded eviction workload not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestIdleEvictionAndSweep(t *testing.T) {
	tbl := flowtable.New(flowtable.Config{Slots: 64, IdleTimeout: time.Second, DCIDLen: 8})
	rng := rand.New(rand.NewSource(14))
	cid := cidFor(rng)
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	pkt := shortPkt(t, cid, 0, false, 0)

	tbl.Ingest(base.UnixNano(), 1, 2, pkt)
	if st := tbl.Stats(); st.ActiveFlows != 1 || st.NewFlows != 1 {
		t.Fatalf("after first packet: %+v", st)
	}
	// Same pair returns long after the idle timeout: the stale slot is
	// reclaimed in place and the traffic admits a fresh flow.
	later := base.Add(5 * time.Second)
	tbl.Ingest(later.UnixNano(), 1, 2, shortPkt(t, cid, 1, true, 0))
	st := tbl.Stats()
	if st.NewFlows != 2 || st.EvictedIdle != 1 || st.ActiveFlows != 1 {
		t.Fatalf("idle reclaim on return: %+v", st)
	}
	fs, ok := tbl.Lookup(1, 2)
	if !ok || fs.Packets[0] != 1 || !fs.FirstSeen.Equal(later) {
		t.Fatalf("reclaimed flow should restart fresh: %+v ok=%v", fs, ok)
	}
	// A second flow goes idle and SweepIdle reaps it eagerly.
	tbl.Ingest(later.UnixNano(), 3, 4, pkt)
	if n := tbl.SweepIdle(later.Add(10 * time.Second)); n != 2 {
		t.Fatalf("sweep evicted %d flows, want 2", n)
	}
	if tbl.Len() != 0 {
		t.Fatalf("table not empty after sweep: %d", tbl.Len())
	}
	checkConservation(t, tbl)
}

func TestCIDChangeCounted(t *testing.T) {
	tbl := flowtable.New(flowtable.Config{Slots: 64, IdleTimeout: time.Hour, DCIDLen: 8})
	rng := rand.New(rand.NewSource(15))
	c1, c2 := cidFor(rng), cidFor(rng)
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	tbl.Ingest(base, 1, 2, shortPkt(t, c1, 0, false, 0))
	tbl.Ingest(base+1e6, 1, 2, shortPkt(t, c1, 1, false, 0))
	tbl.Ingest(base+2e6, 1, 2, shortPkt(t, c2, 2, false, 0)) // mid-flow CID change
	tbl.Ingest(base+3e6, 2, 1, shortPkt(t, c1, 0, false, 0)) // other direction: no change yet
	fs, ok := tbl.Lookup(1, 2)
	if !ok {
		t.Fatalf("flow lost")
	}
	if fs.CIDChanges != 1 {
		t.Fatalf("CID changes = %d, want 1", fs.CIDChanges)
	}
	if fs.Packets[0] != 3 || fs.Packets[1] != 1 {
		t.Fatalf("direction split wrong: %v", fs.Packets)
	}
}

func TestGarbageDoesNotAdmitFlows(t *testing.T) {
	tbl := flowtable.New(flowtable.Config{Slots: 64, DCIDLen: 8})
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	tbl.Ingest(base, 1, 2, nil)
	tbl.Ingest(base, 1, 2, []byte{0x00})             // fixed bit clear
	tbl.Ingest(base, 3, 4, []byte{0x40})             // truncated short header
	tbl.Ingest(base, 5, 6, []byte{0x40, 0x01, 0x02}) // still truncated
	st := tbl.Stats()
	if st.ActiveFlows != 0 || st.NewFlows != 0 {
		t.Fatalf("garbage admitted flows: %+v", st)
	}
	// The empty datagram never reaches the parser; the other three fail.
	if st.ParseErrors != 3 {
		t.Fatalf("parse errors = %d, want 3", st.ParseErrors)
	}
}

func TestConcurrentIngestBatch(t *testing.T) {
	reg := telemetry.New()
	tbl := flowtable.New(flowtable.Config{Slots: 256, IdleTimeout: time.Hour, DCIDLen: 8, Telemetry: reg})
	const (
		nWorkers = 8
		nBatches = 50
		batchLen = 20
	)
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			cid := cidFor(rng)
			for b := 0; b < nBatches; b++ {
				batch := make([]flowtable.Packet, batchLen)
				for i := range batch {
					f := uint64(rng.Intn(40)) // overlapping flow space across workers
					pn := uint64(b*batchLen + i)
					batch[i] = flowtable.Packet{
						TNanos: base + int64(pn)*int64(time.Millisecond),
						Src:    10 + f,
						Dst:    100000 + f,
						Data:   shortPkt(t, cid, pn, pn%2 == 1, 0),
					}
				}
				tbl.IngestBatch(batch)
			}
		}()
	}
	wg.Wait()
	st := tbl.Stats()
	want := uint64(nWorkers * nBatches * batchLen)
	if st.Datagrams != want {
		t.Fatalf("ingested %d datagrams, want %d", st.Datagrams, want)
	}
	if st.Packets+st.ParseErrors < want {
		t.Fatalf("packets %d + parse errors %d < datagrams %d", st.Packets, st.ParseErrors, want)
	}
	checkConservation(t, tbl)
	// Telemetry mirrors the table's own counters.
	if got := reg.Counter("flowtable_packets_total").Value(); uint64(got) != st.Packets {
		t.Fatalf("telemetry packets %d != stats %d", got, st.Packets)
	}
	if got := reg.Gauge("flowtable_active_flows").Value(); int(got) != st.ActiveFlows {
		t.Fatalf("telemetry active %d != stats %d", got, st.ActiveFlows)
	}
}

func TestSnapshotTopK(t *testing.T) {
	tbl := flowtable.New(flowtable.Config{Slots: 64, IdleTimeout: time.Hour, DCIDLen: 8})
	rng := rand.New(rand.NewSource(16))
	cid := cidFor(rng)
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	// Three flows with distinct RTTs: the spin flips every packet, so the
	// inter-packet gap is the measured RTT.
	gaps := []time.Duration{5 * time.Millisecond, 50 * time.Millisecond, 20 * time.Millisecond}
	for f, gap := range gaps {
		tn := base
		for pn := uint64(0); pn < 6; pn++ {
			tbl.Ingest(tn, uint64(1+f), uint64(70000+f), shortPkt(t, cid, pn, pn%2 == 1, 0))
			tn += int64(gap)
		}
	}
	snap := tbl.Snapshot(2, true)
	if len(snap.Flows) != 3 {
		t.Fatalf("snapshot has %d flows, want 3", len(snap.Flows))
	}
	if len(snap.Slowest) != 2 {
		t.Fatalf("top-K has %d flows, want 2", len(snap.Slowest))
	}
	if snap.Slowest[0].MeanRTT != 50*time.Millisecond || snap.Slowest[1].MeanRTT != 20*time.Millisecond {
		t.Fatalf("top-K order wrong: %v then %v", snap.Slowest[0].MeanRTT, snap.Slowest[1].MeanRTT)
	}
	// Histogram counts add up to the total sample count.
	var histTotal uint64
	for _, c := range snap.HistCounts {
		histTotal += c
	}
	if histTotal != snap.Stats.Samples {
		t.Fatalf("histogram total %d != samples %d", histTotal, snap.Stats.Samples)
	}
}
