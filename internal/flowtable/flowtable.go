// Package flowtable implements a fixed-memory passive spin-bit observer for
// many concurrent QUIC flows, in the spirit of the Tofino line-rate tracker
// (PAPERS.md: "Tracking the QUIC Spin Bit on Tofino"): a fixed-size
// open-addressed table keyed by the flow's address pair, per-flow spin/VEC
// edge state packed into a few cache-line-sized words, and LRU/idle
// eviction inside a bounded probe window so memory never grows with load.
//
// Per-direction edge semantics are shared verbatim with the reference
// core.Observer via core.EdgeState, so on an eviction-free trace the
// flowtable's RTT samples and spin-edge counts match the full observer
// exactly (see TestFlowtableMatchesObserver).
package flowtable

import (
	"sync"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/telemetry"
	"quicspin/internal/wire"
)

// Defaults used when the corresponding Config field is zero.
const (
	DefaultSlots       = 4096
	DefaultMaxProbe    = 8
	DefaultIdleTimeout = 30 * time.Second
	DefaultDCIDLen     = 8
)

// RTTBucketBounds are the upper bounds of the table's fixed aggregate RTT
// histogram. The final implicit bucket is +inf.
var RTTBucketBounds = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second,
}

const nRTTBuckets = 12 // len(RTTBucketBounds) + 1 overflow bucket

// Config tunes a Table. The zero value is usable: every field has a
// default.
type Config struct {
	// Slots is the table capacity; rounded up to a power of two.
	Slots int
	// MaxProbe bounds the linear-probe window. An insert that finds the
	// whole window occupied by live flows evicts the least-recently-seen
	// one, so MaxProbe is also the worst-case per-packet work.
	MaxProbe int
	// IdleTimeout evicts flows with no traffic for this long. Idle slots
	// are reclaimed lazily on collision and eagerly by SweepIdle.
	IdleTimeout time.Duration
	// DCIDLen is the connection-ID length assumed when parsing short
	// headers (the repo's transport always issues DefaultConnIDLen-byte
	// CIDs).
	DCIDLen int
	// NoPNGuard disables the packet-number edge guard (RFC 9312 §4.2).
	// A real observer of encrypted traffic cannot read packet numbers;
	// the netem vantage can, so the guard defaults to on.
	NoPNGuard bool
	// UseVEC requires VEC == 3 (fully valid) on measurement edges.
	UseVEC bool
	// Telemetry optionally receives live counters, gauges and an RTT
	// histogram. Nil disables export at zero hot-path cost.
	Telemetry *telemetry.Registry
}

// flowKey is the unordered pair of endpoint address hashes: packets of
// both directions of one flow map to the same key.
type flowKey struct{ lo, hi uint64 }

func makeKey(a, b uint64) flowKey {
	if a <= b {
		return flowKey{a, b}
	}
	return flowKey{b, a}
}

// mix finalizes the key pair into a table index hash (splitmix64-style).
func (k flowKey) mix() uint64 {
	x := k.lo ^ (k.hi * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// slot is one flow's complete observer state: key, direction bookkeeping,
// the two core.EdgeState machines, and running RTT aggregates. It holds no
// pointers and fits in a few cache lines, the Tofino-style memory budget.
type slot struct {
	key       flowKey
	initiator uint64 // address hash of the first datagram's sender
	firstSeen int64
	lastSeen  int64

	dirs    [2]core.EdgeState
	largest [2]uint64 // largest short-header PN per direction (expansion)
	havePN  [2]bool
	dcid    [2]uint64 // hash of the last DCID seen per direction
	haveCID [2]bool

	packets    [2]uint64
	samples    uint64
	sumRTT     int64
	minRTT     int64
	maxRTT     int64
	lastRTT    int64
	cidChanges uint32
	used       bool
}

func (s *slot) reset(k flowKey, initiator uint64, now int64) {
	*s = slot{key: k, initiator: initiator, firstSeen: now, lastSeen: now, used: true}
}

// Table is a fixed-size open-addressed flow table. All methods are safe
// for concurrent use; the steady-state ingest path performs zero heap
// allocations.
type Table struct {
	mu      sync.Mutex
	cfg     Config
	mask    uint64
	slots   []slot
	scratch wire.Header

	active     int
	histCounts [nRTTBuckets]uint64

	// lifetime totals (mirrored to telemetry when configured)
	newFlows    uint64
	evictIdle   uint64
	evictLRU    uint64
	datagrams   uint64
	packets     uint64
	parseErrors uint64
	totSamples  uint64
	totEdges    uint64
	cidChanges  uint64

	mActive    *telemetry.Gauge
	mFlows     *telemetry.Counter
	mEvictIdle *telemetry.Counter
	mEvictLRU  *telemetry.Counter
	mPackets   *telemetry.Counter
	mParseErr  *telemetry.Counter
	mSamples   *telemetry.Counter
	mEdges     *telemetry.Counter
	mCIDChange *telemetry.Counter
	mRTT       *telemetry.Histogram
}

// New returns a Table for cfg, applying defaults to zero fields.
func New(cfg Config) *Table {
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	n := 1
	for n < cfg.Slots {
		n <<= 1
	}
	cfg.Slots = n
	if cfg.MaxProbe <= 0 {
		cfg.MaxProbe = DefaultMaxProbe
	}
	if cfg.MaxProbe > cfg.Slots {
		cfg.MaxProbe = cfg.Slots
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.DCIDLen <= 0 {
		cfg.DCIDLen = DefaultDCIDLen
	}
	t := &Table{cfg: cfg, mask: uint64(n - 1), slots: make([]slot, n)}
	if reg := cfg.Telemetry; reg != nil {
		reg.Describe(map[string]string{
			"flowtable_active_flows":  "Flows currently tracked in the table.",
			"flowtable_flows_total":   "Flows ever admitted to the table.",
			"flowtable_evicted_total": "Flows evicted, by reason (idle, lru).",
			"flowtable_packets_total": "QUIC packets parsed from tapped datagrams.",
			"flowtable_parse_errors":  "Datagrams whose header parse failed.",
			"flowtable_samples_total": "Spin-bit RTT samples produced.",
			"flowtable_edges_total":   "Accepted spin transitions observed.",
			"flowtable_cid_changes":   "Mid-flow destination connection ID changes.",
			"flowtable_rtt_seconds":   "Spin-bit RTT sample distribution.",
		})
		t.mActive = reg.Gauge("flowtable_active_flows")
		t.mFlows = reg.Counter("flowtable_flows_total")
		t.mEvictIdle = reg.Counter(telemetry.Name("flowtable_evicted_total", "reason", "idle"))
		t.mEvictLRU = reg.Counter(telemetry.Name("flowtable_evicted_total", "reason", "lru"))
		t.mPackets = reg.Counter("flowtable_packets_total")
		t.mParseErr = reg.Counter("flowtable_parse_errors")
		t.mSamples = reg.Counter("flowtable_samples_total")
		t.mEdges = reg.Counter("flowtable_edges_total")
		t.mCIDChange = reg.Counter("flowtable_cid_changes")
		t.mRTT = reg.Histogram("flowtable_rtt_seconds", telemetry.DurationBuckets)
	}
	return t
}

// Packet is one tapped datagram for batched ingest. Src and Dst are
// endpoint address hashes (see HashAddr).
type Packet struct {
	TNanos   int64
	Src, Dst uint64
	Data     []byte
}

// Ingest processes one tapped datagram sent from src to dst at tNanos
// (UnixNano). Coalesced long-header packets are walked the same way the
// conformance harness walks them; spin state advances on short headers.
func (t *Table) Ingest(tNanos int64, src, dst uint64, data []byte) {
	t.mu.Lock()
	t.ingestLocked(tNanos, src, dst, data)
	t.mu.Unlock()
}

// IngestBatch processes a batch under a single lock acquisition.
func (t *Table) IngestBatch(batch []Packet) {
	t.mu.Lock()
	for i := range batch {
		p := &batch[i]
		t.ingestLocked(p.TNanos, p.Src, p.Dst, p.Data)
	}
	t.mu.Unlock()
}

func (t *Table) ingestLocked(tNanos int64, src, dst uint64, data []byte) {
	t.datagrams++
	key := makeKey(src, dst)
	idx := key.mix()
	s := t.lookup(key, idx)
	if s != nil && tNanos-s.lastSeen > int64(t.cfg.IdleTimeout) {
		// The flow's slot outlived its idle timeout: whatever arrives now
		// is treated as a new flow (the old one is evicted in place).
		t.evictIdle++
		t.mEvictIdle.Inc()
		t.admit(s, key, src, tNanos)
	}
	rest := data
	for len(rest) > 0 {
		largest := wire.NoAckedPacket
		if s != nil && !wire.IsLongHeader(rest[0]) {
			dir := s.direction(src)
			if s.havePN[dir] {
				largest = s.largest[dir]
			}
		}
		_, consumed, err := wire.ParseHeaderInto(&t.scratch, rest, t.cfg.DCIDLen, largest)
		if err != nil {
			t.parseErrors++
			t.mParseErr.Inc()
			return
		}
		if s == nil {
			// Admit the flow lazily, on the first parseable packet, so
			// garbage datagrams never cost a slot.
			s = t.insert(key, idx, src, tNanos)
		}
		t.packets++
		t.mPackets.Inc()
		dir := s.direction(src)
		s.packets[dir]++
		s.lastSeen = tNanos
		h := &t.scratch
		if !h.IsLong {
			ch := hashCID(h.DstConnID)
			if s.haveCID[dir] && s.dcid[dir] != ch {
				s.cidChanges++
				t.cidChanges++
				t.mCIDChange.Inc()
			}
			s.dcid[dir] = ch
			s.haveCID[dir] = true
			if !s.havePN[dir] || h.PacketNumber > s.largest[dir] {
				s.havePN[dir] = true
				s.largest[dir] = h.PacketNumber
			}
			e0 := s.dirs[dir].Edges()
			rtt, ok := s.dirs[dir].Step(!t.cfg.NoPNGuard, t.cfg.UseVEC, tNanos, h.PacketNumber, h.SpinBit, h.Reserved)
			if d := s.dirs[dir].Edges() - e0; d != 0 {
				t.totEdges++
				t.mEdges.Inc()
			}
			if ok {
				t.record(s, rtt)
			}
		}
		if consumed >= len(rest) {
			return
		}
		rest = rest[consumed:]
	}
}

func (t *Table) record(s *slot, rtt int64) {
	if s.samples == 0 || rtt < s.minRTT {
		s.minRTT = rtt
	}
	if s.samples == 0 || rtt > s.maxRTT {
		s.maxRTT = rtt
	}
	s.samples++
	s.sumRTT += rtt
	s.lastRTT = rtt
	t.totSamples++
	t.histCounts[bucketFor(rtt)]++
	t.mSamples.Inc()
	t.mRTT.Observe(float64(rtt) / 1e9)
}

func bucketFor(rtt int64) int {
	for i, b := range RTTBucketBounds {
		if rtt <= int64(b) {
			return i
		}
	}
	return nRTTBuckets - 1
}

// lookup scans the full probe window for key. There are no tombstones:
// eviction replaces a slot in place, so occupancy gaps inside a window
// only ever come from slots that were never filled.
func (t *Table) lookup(key flowKey, idx uint64) *slot {
	for i := 0; i < t.cfg.MaxProbe; i++ {
		s := &t.slots[(idx+uint64(i))&t.mask]
		if s.used && s.key == key {
			return s
		}
	}
	return nil
}

// insert claims a slot for a new flow: the first empty slot in the probe
// window, else the first idle-expired one, else the least-recently-seen
// (ties broken by probe order, keeping eviction deterministic).
func (t *Table) insert(key flowKey, idx uint64, initiator uint64, now int64) *slot {
	var idle, lru *slot
	for i := 0; i < t.cfg.MaxProbe; i++ {
		s := &t.slots[(idx+uint64(i))&t.mask]
		if !s.used {
			t.active++
			t.mActive.Add(1)
			t.admit(s, key, initiator, now)
			return s
		}
		if idle == nil && now-s.lastSeen > int64(t.cfg.IdleTimeout) {
			idle = s
		}
		if lru == nil || s.lastSeen < lru.lastSeen {
			lru = s
		}
	}
	victim := idle
	if victim != nil {
		t.evictIdle++
		t.mEvictIdle.Inc()
	} else {
		victim = lru
		t.evictLRU++
		t.mEvictLRU.Inc()
	}
	t.admit(victim, key, initiator, now)
	return victim
}

func (t *Table) admit(s *slot, key flowKey, initiator uint64, now int64) {
	s.reset(key, initiator, now)
	t.newFlows++
	t.mFlows.Inc()
}

func (s *slot) direction(src uint64) core.Direction {
	if src == s.initiator {
		return core.ClientToServer
	}
	return core.ServerToClient
}

// SweepIdle evicts every flow idle longer than the configured timeout as
// of now, returning how many were evicted. Meant for a periodic ticker;
// the ingest path also reclaims idle slots lazily on collision.
func (t *Table) SweepIdle(now time.Time) int {
	nNanos := now.UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	evicted := 0
	for i := range t.slots {
		s := &t.slots[i]
		if s.used && nNanos-s.lastSeen > int64(t.cfg.IdleTimeout) {
			*s = slot{}
			evicted++
		}
	}
	if evicted > 0 {
		t.active -= evicted
		t.mActive.Add(int64(-evicted))
		t.evictIdle += uint64(evicted)
		t.mEvictIdle.Add(int64(evicted))
	}
	return evicted
}

// hashCID hashes a connection ID with FNV-1a.
func hashCID(c wire.ConnectionID) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range c.Bytes() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// HashAddr hashes an endpoint address string with FNV-1a for use as an
// ingest Src/Dst. Allocation-free.
func HashAddr(addr string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// Tap returns a function with the netem.TapFunc signature that feeds every
// delivered datagram into the table. Attach it with netem.Network.SetTap.
func (t *Table) Tap() func(now time.Time, from, to string, data []byte) {
	return func(now time.Time, from, to string, data []byte) {
		t.Ingest(now.UnixNano(), HashAddr(from), HashAddr(to), data)
	}
}
