// Package asdb maps IP addresses to autonomous systems and AS numbers to
// organisations, replicating the attribution step of the paper (§4.2):
// "we first map each IP to its corresponding ASN using BGP data of RIPE's
// RIS archive and then lookup the corresponding organizations using CAIDA's
// as2org dataset". The BGP view is a longest-prefix-match table over
// IPv4/IPv6 prefixes; the org view is an ASN→organisation map. Snapshots
// serialise to a line-oriented text format so campaigns can persist them.
package asdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Table is a longest-prefix-match routing table from prefixes to ASNs,
// implemented as a binary trie per address family.
type Table struct {
	v4, v6 *node
	count  int
}

type node struct {
	children [2]*node
	asn      uint32
	hasASN   bool
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{v4: &node{}, v6: &node{}}
}

// Len returns the number of inserted prefixes.
func (t *Table) Len() int { return t.count }

// Insert adds or replaces a prefix→ASN mapping. Invalid prefixes error.
func (t *Table) Insert(p netip.Prefix, asn uint32) error {
	if !p.IsValid() {
		return errors.New("asdb: invalid prefix")
	}
	p = p.Masked()
	root := t.v6
	if p.Addr().Is4() {
		root = t.v4
	}
	bits := p.Addr().AsSlice()
	n := root
	for i := 0; i < p.Bits(); i++ {
		b := (bits[i/8] >> (7 - i%8)) & 1
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	if !n.hasASN {
		t.count++
	}
	n.asn = asn
	n.hasASN = true
	return nil
}

// Lookup returns the ASN of the longest matching prefix for ip.
func (t *Table) Lookup(ip netip.Addr) (uint32, bool) {
	if !ip.IsValid() {
		return 0, false
	}
	root := t.v6
	if ip.Is4() {
		root = t.v4
	}
	bits := ip.AsSlice()
	var (
		best    uint32
		found   bool
		n       = root
		maxBits = len(bits) * 8
	)
	for i := 0; ; i++ {
		if n.hasASN {
			best, found = n.asn, true
		}
		if i >= maxBits {
			break
		}
		b := (bits[i/8] >> (7 - i%8)) & 1
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	return best, found
}

// Org describes an AS organisation (the as2org granularity the paper uses).
type Org struct {
	// Name is the organisation name, e.g. "Cloudflare".
	Name string
}

// OrgDB maps AS numbers to organisations. Multiple ASNs may share one
// organisation, as in CAIDA's as2org.
type OrgDB struct {
	byASN map[uint32]Org
}

// NewOrgDB returns an empty organisation database.
func NewOrgDB() *OrgDB { return &OrgDB{byASN: map[uint32]Org{}} }

// Add maps asn to org.
func (d *OrgDB) Add(asn uint32, org Org) { d.byASN[asn] = org }

// Lookup returns the organisation for an ASN.
func (d *OrgDB) Lookup(asn uint32) (Org, bool) {
	o, ok := d.byASN[asn]
	return o, ok
}

// Len returns the number of mapped ASNs.
func (d *OrgDB) Len() int { return len(d.byASN) }

// Resolver combines both lookups: IP → ASN → organisation.
type Resolver struct {
	Table *Table
	Orgs  *OrgDB
}

// OrgOf attributes an IP to an organisation name; unknown IPs map to
// "<unknown>", matching how the paper buckets unattributable connections.
func (r *Resolver) OrgOf(ip netip.Addr) string {
	asn, ok := r.Table.Lookup(ip)
	if !ok {
		return "<unknown>"
	}
	org, ok := r.Orgs.Lookup(asn)
	if !ok {
		return fmt.Sprintf("AS%d", asn)
	}
	return org.Name
}

// --- snapshot format ----------------------------------------------------
//
//	prefix <cidr> <asn>
//	org <asn> <name…>

// WriteSnapshot serialises a table and org DB.
func WriteSnapshot(w io.Writer, t *Table, d *OrgDB, prefixes map[netip.Prefix]uint32) error {
	bw := bufio.NewWriter(w)
	keys := make([]netip.Prefix, 0, len(prefixes))
	for p := range prefixes {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, p := range keys {
		fmt.Fprintf(bw, "prefix %s %d\n", p, prefixes[p])
	}
	asns := make([]uint32, 0, len(d.byASN))
	for a := range d.byASN {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		fmt.Fprintf(bw, "org %d %s\n", a, d.byASN[a].Name)
	}
	return bw.Flush()
}

// ReadSnapshot parses a snapshot into a fresh Table and OrgDB.
func ReadSnapshot(r io.Reader) (*Table, *OrgDB, error) {
	t := NewTable()
	d := NewOrgDB()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		switch {
		case fields[0] == "prefix" && len(fields) == 3:
			p, err := netip.ParsePrefix(fields[1])
			if err != nil {
				return nil, nil, fmt.Errorf("asdb: line %d: %w", lineNo, err)
			}
			asn, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("asdb: line %d: asn %q", lineNo, fields[2])
			}
			if err := t.Insert(p, uint32(asn)); err != nil {
				return nil, nil, err
			}
		case fields[0] == "org" && len(fields) == 3:
			asn, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("asdb: line %d: asn %q", lineNo, fields[1])
			}
			d.Add(uint32(asn), Org{Name: fields[2]})
		default:
			return nil, nil, fmt.Errorf("asdb: line %d: unrecognised record %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return t, d, nil
}
