package asdb

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLongestPrefixMatch(t *testing.T) {
	tb := NewTable()
	for p, asn := range map[string]uint32{
		"10.0.0.0/8":    100,
		"10.1.0.0/16":   200,
		"10.1.2.0/24":   300,
		"0.0.0.0/0":     1,
		"2001:db8::/32": 6400,
	} {
		if err := tb.Insert(mustPrefix(t, p), asn); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		ip   string
		want uint32
	}{
		{"10.1.2.3", 300},
		{"10.1.3.1", 200},
		{"10.9.9.9", 100},
		{"192.0.2.1", 1},
		{"2001:db8::1", 6400},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(netip.MustParseAddr(c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = (%d, %v), want %d", c.ip, got, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(netip.MustParseAddr("2001:dead::1")); ok {
		t.Error("v6 lookup matched without covering prefix")
	}
	if tb.Len() != 5 {
		t.Errorf("Len = %d, want 5", tb.Len())
	}
}

func TestInsertReplaces(t *testing.T) {
	tb := NewTable()
	p := mustPrefix(t, "192.0.2.0/24")
	tb.Insert(p, 1)
	tb.Insert(p, 2)
	if tb.Len() != 1 {
		t.Errorf("Len = %d after replace", tb.Len())
	}
	if asn, _ := tb.Lookup(netip.MustParseAddr("192.0.2.7")); asn != 2 {
		t.Errorf("asn = %d, want 2", asn)
	}
}

func TestLookupInvalid(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup(netip.Addr{}); ok {
		t.Error("invalid address matched")
	}
	if err := tb.Insert(netip.Prefix{}, 1); err == nil {
		t.Error("invalid prefix inserted")
	}
}

func TestOrgResolution(t *testing.T) {
	tb := NewTable()
	tb.Insert(mustPrefix(t, "198.51.100.0/24"), 13335)
	orgs := NewOrgDB()
	orgs.Add(13335, Org{Name: "Cloudflare"})
	r := &Resolver{Table: tb, Orgs: orgs}
	if got := r.OrgOf(netip.MustParseAddr("198.51.100.9")); got != "Cloudflare" {
		t.Errorf("OrgOf = %q", got)
	}
	if got := r.OrgOf(netip.MustParseAddr("203.0.113.1")); got != "<unknown>" {
		t.Errorf("unattributed = %q", got)
	}
	tb.Insert(mustPrefix(t, "203.0.113.0/24"), 999)
	if got := r.OrgOf(netip.MustParseAddr("203.0.113.1")); got != "AS999" {
		t.Errorf("org-less ASN = %q", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	prefixes := map[netip.Prefix]uint32{
		netip.MustParsePrefix("10.0.0.0/8"):    100,
		netip.MustParsePrefix("2001:db8::/32"): 200,
	}
	tb := NewTable()
	for p, a := range prefixes {
		tb.Insert(p, a)
	}
	orgs := NewOrgDB()
	orgs.Add(100, Org{Name: "Example Hosting Inc"})
	orgs.Add(200, Org{Name: "OVH SAS"})

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, tb, orgs, prefixes); err != nil {
		t.Fatal(err)
	}
	tb2, orgs2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if asn, _ := tb2.Lookup(netip.MustParseAddr("10.1.1.1")); asn != 100 {
		t.Errorf("restored table lookup = %d", asn)
	}
	if o, ok := orgs2.Lookup(200); !ok || o.Name != "OVH SAS" {
		t.Errorf("restored org = %+v (names with spaces must survive)", o)
	}
	if orgs2.Len() != 2 {
		t.Errorf("orgs len = %d", orgs2.Len())
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	cases := []string{
		"prefix notacidr 5\n",
		"prefix 10.0.0.0/8 notanumber\n",
		"org abc Name\n",
		"garbage line\n",
		"prefix 10.0.0.0/8\n",
	}
	for _, c := range cases {
		if _, _, err := ReadSnapshot(strings.NewReader(c)); err == nil {
			t.Errorf("ReadSnapshot(%q) succeeded", c)
		}
	}
	// Comments and blank lines are fine.
	if _, _, err := ReadSnapshot(strings.NewReader("# comment\n\nprefix 10.0.0.0/8 1\n")); err != nil {
		t.Errorf("comment handling: %v", err)
	}
}

func TestQuickHostsMatchTheirPrefix(t *testing.T) {
	// Property: an IP constructed inside an inserted /16 must resolve to
	// that prefix's ASN unless a longer inserted prefix covers it.
	tb := NewTable()
	tb.Insert(netip.MustParsePrefix("172.16.0.0/16"), 1)
	tb.Insert(netip.MustParsePrefix("172.16.128.0/24"), 2)
	f := func(b3, b4 uint8) bool {
		ip := netip.AddrFrom4([4]byte{172, 16, b3, b4})
		asn, ok := tb.Lookup(ip)
		if !ok {
			return false
		}
		if b3 == 128 {
			return asn == 2
		}
		return asn == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := NewTable()
	// A spread of /20 prefixes.
	for i := 0; i < 4096; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i >> 4), byte(i << 4), 0, 0}), 12)
		tb.Insert(p, uint32(i))
	}
	ip := netip.MustParseAddr("200.16.1.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup(ip)
	}
}
