package netem

import (
	"time"

	"quicspin/internal/sim"
	"quicspin/internal/transport"
)

// ClientHost drives one client transport.Conn attached to a Network: it
// forwards incoming datagrams into the connection, flushes outgoing
// datagrams after every event, and keeps the connection's timers armed on
// the loop.
type ClientHost struct {
	net    *Network
	addr   string
	remote string
	conn   *transport.Conn
	timer  sim.Timer
	// flushFn and onTimer are the host's loop callbacks, bound once at
	// construction so the per-packet rearm/flush cycle schedules without
	// allocating fresh closures.
	flushFn func(now time.Time)
	onTimer func(now time.Time)
	// OnActivity, when set, runs after every connection event (receive or
	// timer) so application layers can queue stream data before the flush.
	OnActivity func(conn *transport.Conn, now time.Time)
	// ProcessDelay, when set, delays reception-triggered transmissions by
	// its return value, modelling endpoint turnaround latency (scheduler
	// quanta, stack processing). Real hosts never reflect a packet in zero
	// time; without this, spin-bit cycles and the stack's min_rtt collapse
	// onto the same value and the paper's grease filter misfires.
	ProcessDelay func() time.Duration
}

// NewClientHost attaches a client connection at addr talking to remote.
// Call Kick once after construction (and after queueing initial stream
// data) to transmit the first flight.
func NewClientHost(n *Network, addr, remote string, conn *transport.Conn) *ClientHost {
	h := &ClientHost{net: n, addr: addr, remote: remote, conn: conn}
	h.flushFn = h.flush
	h.onTimer = func(now time.Time) {
		h.conn.Advance(now)
		h.fire(now)
	}
	n.Attach(addr, func(now time.Time, from string, data []byte) {
		if conn.Closed() {
			return
		}
		_ = conn.Receive(now, data) // malformed input only ends this conn
		h.fire(now)
	})
	return h
}

// Conn returns the driven connection.
func (h *ClientHost) Conn() *transport.Conn { return h.conn }

// Kick flushes pending datagrams and re-arms timers at the current virtual
// time.
func (h *ClientHost) Kick() { h.flush(h.net.loop.Now()) }

func (h *ClientHost) fire(now time.Time) {
	if h.OnActivity != nil {
		h.OnActivity(h.conn, now)
	}
	if h.ProcessDelay != nil {
		h.net.loop.After(h.ProcessDelay(), h.flushFn)
		return
	}
	h.flush(now)
}

func (h *ClientHost) flush(now time.Time) {
	for _, d := range h.conn.Poll(now) {
		h.net.Send(h.addr, h.remote, d)
	}
	h.rearm()
}

func (h *ClientHost) rearm() {
	h.timer.Stop()
	deadline, ok := h.conn.NextTimeout()
	if !ok {
		h.timer = sim.Timer{}
		return
	}
	h.timer = h.net.loop.At(deadline, h.onTimer)
}

// Close tears the host down: it detaches from the network and cancels
// pending timers (in-flight datagrams toward it are dropped).
func (h *ClientHost) Close() {
	h.timer.Stop()
	h.timer = sim.Timer{}
	h.net.Detach(h.addr)
}

// ServerHost drives a transport.Endpoint attached to a Network address.
type ServerHost struct {
	net     *Network
	addr    string
	ep      *transport.Endpoint
	timer   sim.Timer
	flushFn func(now time.Time)
	onTimer func(now time.Time)
	// OnActivity runs after each received datagram or timer event, letting
	// the application serve streams on every connection.
	OnActivity func(ep *transport.Endpoint, now time.Time)
	// ProcessDelay mirrors ClientHost.ProcessDelay for the server side.
	ProcessDelay func() time.Duration
}

// NewServerHost attaches ep at addr.
func NewServerHost(n *Network, addr string, ep *transport.Endpoint) *ServerHost {
	h := &ServerHost{net: n, addr: addr, ep: ep}
	h.flushFn = h.flush
	h.onTimer = func(now time.Time) {
		h.ep.Advance(now)
		h.fire(now)
	}
	n.Attach(addr, func(now time.Time, from string, data []byte) {
		_ = h.ep.Receive(now, from, data) // unroutable/malformed: dropped
		h.fire(now)
	})
	return h
}

// Endpoint returns the driven endpoint.
func (h *ServerHost) Endpoint() *transport.Endpoint { return h.ep }

// Kick flushes pending datagrams on all connections and re-arms timers.
// Call after queueing stream data from outside an activity callback (e.g.
// a delayed application response).
func (h *ServerHost) Kick() {
	h.flush(h.net.loop.Now())
}

func (h *ServerHost) fire(now time.Time) {
	if h.OnActivity != nil {
		h.OnActivity(h.ep, now)
	}
	if h.ProcessDelay != nil {
		h.net.loop.After(h.ProcessDelay(), h.flushFn)
		return
	}
	h.flush(now)
}

func (h *ServerHost) flush(now time.Time) {
	for _, out := range h.ep.Poll(now) {
		h.net.Send(h.addr, out.Peer, out.Data)
	}
	h.rearm()
}

func (h *ServerHost) rearm() {
	h.timer.Stop()
	deadline, ok := h.ep.NextTimeout()
	if !ok {
		h.timer = sim.Timer{}
		return
	}
	h.timer = h.net.loop.At(deadline, h.onTimer)
}

// Close detaches the server from the network.
func (h *ServerHost) Close() {
	h.timer.Stop()
	h.timer = sim.Timer{}
	h.net.Detach(h.addr)
}
