package netem

import (
	"testing"
	"time"
)

// TestManglerRewrite checks the three mangler outcomes — swallow, rewrite,
// and burst — and that ClearMangler restores pass-through.
func TestManglerRewrite(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: time.Millisecond}, 1)
	var got [][]byte
	n.Attach("b", func(_ time.Time, _ string, data []byte) {
		got = append(got, append([]byte(nil), data...))
	})

	n.SetMangler("a", func(data []byte) [][]byte {
		switch data[0] {
		case 'd': // drop
			return nil
		case 'x': // amplify into three rewritten copies
			return [][]byte{{'X'}, {'X'}, {'X'}}
		default:
			return [][]byte{data}
		}
	})
	n.Send("a", "b", []byte("d"))
	n.Send("a", "b", []byte("x"))
	n.Send("a", "b", []byte("p"))
	loop.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d datagrams, want 4 (3 amplified + 1 pass-through)", len(got))
	}
	for i := 0; i < 3; i++ {
		if string(got[i]) != "X" {
			t.Errorf("datagram %d = %q, want rewritten X", i, got[i])
		}
	}
	if string(got[3]) != "p" {
		t.Errorf("pass-through datagram = %q", got[3])
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("swallowed datagram not counted as dropped: %+v", st)
	}

	// Mangling is keyed by sender: traffic from other hosts is untouched.
	var fromC []byte
	n.Attach("d", func(_ time.Time, _ string, data []byte) { fromC = append([]byte(nil), data...) })
	n.Send("c", "d", []byte("x"))
	loop.Run()
	if string(fromC) != "x" {
		t.Errorf("unmangled sender rewritten: %q", fromC)
	}

	got = nil
	n.ClearMangler("a")
	n.Send("a", "b", []byte("x"))
	loop.Run()
	if len(got) != 1 || string(got[0]) != "x" {
		t.Errorf("after ClearMangler got %q, want original pass-through", got)
	}
}

// TestSetManglerNil checks that installing a nil mangler is a no-op rather
// than a nil-dereference at send time.
func TestSetManglerNil(t *testing.T) {
	loop, n := newNet(PathConfig{}, 1)
	var delivered int
	n.Attach("b", func(time.Time, string, []byte) { delivered++ })
	n.SetMangler("a", nil)
	n.Send("a", "b", []byte{1})
	loop.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
}
