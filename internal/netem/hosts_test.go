package netem

import (
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
)

type harness struct {
	loop *sim.Loop
	net  *Network
}

func newLoopNet(delay time.Duration) *harness {
	loop := sim.NewLoop(epoch)
	return &harness{loop: loop, net: New(loop, PathConfig{Delay: delay}, rand.New(rand.NewSource(2)))}
}

// buildPair wires a client and a server endpoint over the network and
// returns the hosts plus the client connection.
func buildPair(t *testing.T, loopDelay time.Duration, procDelay time.Duration) (*harness, *ClientHost, *ServerHost) {
	t.Helper()
	l := newLoopNet(loopDelay)
	rng := rand.New(rand.NewSource(4))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng, SpinPolicy: core.Policy{Mode: core.ModeSpin}}
	})
	server := NewServerHost(l.net, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			if data, done := conn.StreamRecv(0); done {
				if _, sent := conn.StreamRecv(42); !sent {
					_ = conn.SendStream(0, append([]byte("re:"), data...), true)
				}
			}
		}
	}
	conn := transport.NewClientConn(transport.Config{Rng: rng}, l.loop.Now())
	client := NewClientHost(l.net, "client", "server", conn)
	if procDelay > 0 {
		d := procDelay
		client.ProcessDelay = func() time.Duration { return d }
		server.ProcessDelay = func() time.Duration { return d }
	}
	return l, client, server
}

func TestHostsExchange(t *testing.T) {
	l, client, server := buildPair(t, 15*time.Millisecond, 0)
	if err := client.Conn().SendStream(0, []byte("ping"), true); err != nil {
		t.Fatal(err)
	}
	client.Kick()
	l.loop.RunUntil(l.loop.Now().Add(10 * time.Second))
	data, done := client.Conn().StreamRecv(0)
	if !done || string(data) != "re:ping" {
		t.Fatalf("response = (%q, %v)", data, done)
	}
	if server.Endpoint() == nil || client.Conn() == nil {
		t.Error("accessors returned nil")
	}
	// RTT ≈ 30 ms without processing delay.
	if got := client.Conn().RTT().Min(); got < 30*time.Millisecond || got > 40*time.Millisecond {
		t.Errorf("min RTT = %v, want ≈30ms", got)
	}
}

func TestHostsProcessDelayInflatesRTT(t *testing.T) {
	l, client, _ := buildPair(t, 15*time.Millisecond, 5*time.Millisecond)
	_ = client.Conn().SendStream(0, []byte("ping"), true)
	client.Kick()
	l.loop.RunUntil(l.loop.Now().Add(10 * time.Second))
	if _, done := client.Conn().StreamRecv(0); !done {
		t.Fatal("exchange did not complete with processing delay")
	}
	// Every reception-triggered send is delayed 5 ms, so the measured RTT
	// must exceed the raw 30 ms path round trip.
	if got := client.Conn().RTT().Min(); got < 34*time.Millisecond {
		t.Errorf("min RTT = %v, want ≥ 34ms (turnaround included)", got)
	}
}

func TestClientHostClose(t *testing.T) {
	l, client, _ := buildPair(t, 5*time.Millisecond, 0)
	_ = client.Conn().SendStream(0, []byte("x"), true)
	client.Kick()
	l.loop.RunUntil(l.loop.Now().Add(time.Second))
	client.Close()
	// After Close the client is detached: further deliveries are dropped
	// and no timers remain armed for it.
	before := l.net.Stats().Delivered
	l.net.Send("server", "client", []byte{0x40, 0x00})
	l.loop.Run()
	if l.net.Stats().Delivered != before {
		t.Error("detached client still received datagrams")
	}
}

func TestServerHostKickFlushesDelayedResponses(t *testing.T) {
	l := newLoopNet(5 * time.Millisecond)
	rng := rand.New(rand.NewSource(4))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	server := NewServerHost(l.net, "server", ep)
	served := false
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			if _, done := conn.StreamRecv(0); done && !served {
				served = true
				conn := conn
				// Application answers later, from outside the activity
				// callback — exactly the path that needs Kick.
				l.loop.After(50*time.Millisecond, func(time.Time) {
					_ = conn.SendStream(0, []byte("late"), true)
					server.Kick()
				})
			}
		}
	}
	conn := transport.NewClientConn(transport.Config{Rng: rng}, l.loop.Now())
	_ = conn.SendStream(0, []byte("q"), true)
	client := NewClientHost(l.net, "client", "server", conn)
	client.Kick()
	l.loop.RunUntil(l.loop.Now().Add(10 * time.Second))
	data, done := conn.StreamRecv(0)
	if !done || string(data) != "late" {
		t.Fatalf("delayed response = (%q, %v)", data, done)
	}
	server.Close()
}
