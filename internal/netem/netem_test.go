package netem

import (
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/sim"
	"quicspin/internal/telemetry"
)

var epoch = time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

func newNet(def PathConfig, seed int64) (*sim.Loop, *Network) {
	loop := sim.NewLoop(epoch)
	return loop, New(loop, def, rand.New(rand.NewSource(seed)))
}

func TestDeliveryDelay(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: 25 * time.Millisecond}, 1)
	var at time.Time
	var got []byte
	n.Attach("b", func(now time.Time, from string, data []byte) {
		at = now
		got = append([]byte(nil), data...)
		if from != "a" {
			t.Errorf("from = %q", from)
		}
	})
	n.Send("a", "b", []byte("hi"))
	loop.Run()
	if !at.Equal(epoch.Add(25 * time.Millisecond)) {
		t.Errorf("delivered at %v", at)
	}
	if string(got) != "hi" {
		t.Errorf("data = %q", got)
	}
}

func TestSendCopiesData(t *testing.T) {
	loop, n := newNet(PathConfig{}, 1)
	buf := []byte("abc")
	var got string
	n.Attach("b", func(_ time.Time, _ string, data []byte) { got = string(data) })
	n.Send("a", "b", buf)
	buf[0] = 'X' // caller reuses the buffer before delivery
	loop.Run()
	if got != "abc" {
		t.Errorf("delivered %q; Send must copy", got)
	}
}

func TestLoss(t *testing.T) {
	loop, n := newNet(PathConfig{LossRate: 0.5}, 42)
	delivered := 0
	n.Attach("b", func(time.Time, string, []byte) { delivered++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", []byte{1})
	}
	loop.Run()
	if delivered < 850 || delivered > 1150 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, total)
	}
	st := n.Stats()
	if st.Sent != total || st.Dropped+st.Delivered != total {
		t.Errorf("stats = %+v", st)
	}
}

func TestFIFOWithJitter(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}, 7)
	var order []byte
	n.Attach("b", func(_ time.Time, _ string, data []byte) { order = append(order, data[0]) })
	for i := byte(0); i < 100; i++ {
		n.Send("a", "b", []byte{i})
		loop.RunUntil(loop.Now().Add(100 * time.Microsecond))
	}
	loop.Run()
	if len(order) != 100 {
		t.Fatalf("delivered %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("jitter reordered FIFO path: %v", order[:i+1])
		}
	}
}

func TestExplicitReordering(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: 10 * time.Millisecond, ReorderRate: 1, ReorderExtra: 20 * time.Millisecond}, 7)
	// First packet reordered (held 20ms extra); second sent 1ms later on a
	// non-reordering path overtakes it.
	var order []byte
	n.Attach("b", func(_ time.Time, _ string, data []byte) { order = append(order, data[0]) })
	n.Send("a", "b", []byte{1})
	n.SetPath("a", "b", PathConfig{Delay: 10 * time.Millisecond})
	loop.RunUntil(epoch.Add(time.Millisecond))
	n.Send("a", "b", []byte{2})
	loop.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("order = %v, want [2 1]", order)
	}
	if n.Stats().Reordered != 1 {
		t.Errorf("reordered = %d", n.Stats().Reordered)
	}
}

func TestDuplication(t *testing.T) {
	loop, n := newNet(PathConfig{DuplicateRate: 1}, 3)
	count := 0
	n.Attach("b", func(time.Time, string, []byte) { count++ })
	n.Send("a", "b", []byte{1})
	loop.Run()
	if count != 2 {
		t.Errorf("delivered %d copies, want 2", count)
	}
	if n.Stats().Duplicated != 1 {
		t.Errorf("dup stat = %d", n.Stats().Duplicated)
	}
}

func TestBlackholeAndDetach(t *testing.T) {
	loop, n := newNet(PathConfig{}, 3)
	count := 0
	n.Attach("b", func(time.Time, string, []byte) { count++ })
	n.Blackhole("b", true)
	n.Send("a", "b", []byte{1})
	loop.Run()
	n.Blackhole("b", false)
	n.Send("a", "b", []byte{1})
	loop.Run()
	n.Detach("b")
	n.Send("a", "b", []byte{1})
	loop.Run()
	if count != 1 {
		t.Errorf("delivered %d, want 1 (blackhole and detach must drop)", count)
	}
}

func TestPerPathConfigAndClear(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: time.Millisecond}, 3)
	n.SetSymmetricPath("a", "b", PathConfig{Delay: 50 * time.Millisecond})
	var at time.Time
	n.Attach("b", func(now time.Time, _ string, _ []byte) { at = now })
	n.Send("a", "b", []byte{1})
	loop.Run()
	if !at.Equal(epoch.Add(50 * time.Millisecond)) {
		t.Errorf("per-path delay not applied: %v", at)
	}
	n.ClearPath("a", "b")
	start := loop.Now()
	n.Send("a", "b", []byte{1})
	loop.Run()
	if got := at.Sub(start); got != time.Millisecond {
		t.Errorf("after ClearPath delay = %v, want default 1ms", got)
	}
}

func TestTapSeesDeliveries(t *testing.T) {
	loop, n := newNet(PathConfig{}, 3)
	n.Attach("b", func(time.Time, string, []byte) {})
	taps := 0
	n.SetTap(func(now time.Time, from, to string, data []byte) {
		taps++
		if from != "a" || to != "b" {
			t.Errorf("tap saw %s→%s", from, to)
		}
	})
	n.Send("a", "b", []byte{1})
	loop.Run()
	if taps != 1 {
		t.Errorf("taps = %d", taps)
	}
}

func TestStatsString(t *testing.T) {
	if s := (Stats{Sent: 1}).String(); s == "" {
		t.Error("empty Stats string")
	}
}

func TestTelemetryCountersMirrorStats(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: 5 * time.Millisecond, LossRate: 0.3}, 4)
	reg := telemetry.New()
	n.SetTelemetry(reg)
	n.Attach("b", func(time.Time, string, []byte) {})
	for i := 0; i < 200; i++ {
		n.Send("a", "b", []byte{1})
	}
	loop.Run()
	st := n.Stats()
	snap := reg.Snapshot()
	if got := snap.Counters["netem_packets_sent_total"]; got != int64(st.Sent) {
		t.Errorf("sent counter = %d, stats %d", got, st.Sent)
	}
	if got := snap.Counters["netem_packets_delivered_total"]; got != int64(st.Delivered) {
		t.Errorf("delivered counter = %d, stats %d", got, st.Delivered)
	}
	if got := snap.Counters["netem_packets_dropped_total"]; got != int64(st.Dropped) {
		t.Errorf("dropped counter = %d, stats %d", got, st.Dropped)
	}
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Errorf("test vacuous: %+v", st)
	}
}

func TestFailFirstOutage(t *testing.T) {
	loop, n := newNet(PathConfig{Delay: time.Millisecond}, 1)
	delivered := 0
	n.Attach("srv", func(time.Time, string, []byte) { delivered++ })
	n.Attach("cli", func(time.Time, string, []byte) { delivered++ })
	n.SetFailFirst("srv", 2)

	// Attempts 1 and 2: every packet is lost, both directions.
	for attempt := 0; attempt < 2; attempt++ {
		if n.BeginAttempt("srv") {
			t.Fatalf("attempt %d: expected failure", attempt)
		}
		n.Send("cli", "srv", []byte{1})
		n.Send("srv", "cli", []byte{2})
		loop.Run()
		if delivered != 0 {
			t.Fatalf("attempt %d: %d packets delivered during outage", attempt, delivered)
		}
	}

	// Attempt 3: the host has recovered.
	if !n.BeginAttempt("srv") {
		t.Fatal("attempt 2: expected recovery")
	}
	n.Send("cli", "srv", []byte{1})
	n.Send("srv", "cli", []byte{2})
	loop.Run()
	if delivered != 2 {
		t.Fatalf("after recovery: delivered = %d, want 2", delivered)
	}

	// Unscheduled hosts always succeed.
	if !n.BeginAttempt("other") {
		t.Fatal("unscheduled host reported failing")
	}
}

func TestFailFirstClear(t *testing.T) {
	_, n := newNet(PathConfig{}, 1)
	n.SetFailFirst("srv", 5)
	if n.BeginAttempt("srv") {
		t.Fatal("expected scheduled failure")
	}
	n.SetFailFirst("srv", 0) // clear mid-outage
	if !n.BeginAttempt("srv") {
		t.Fatal("cleared schedule still failing")
	}
}
