// Package netem emulates the network between QUIC-lite endpoints in
// virtual time: configurable one-way delay, jitter, random loss, reordering
// and duplication per directed path, plus an on-path tap for passive
// observers. It substitutes for the real Internet paths of the paper's
// measurement campaign (see DESIGN.md) while exercising exactly the same
// transport code paths.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"quicspin/internal/sim"
	"quicspin/internal/telemetry"
)

// PathConfig shapes one directed path between two attached hosts.
type PathConfig struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// LossRate drops each datagram independently with this probability.
	LossRate float64
	// ReorderRate holds back each datagram with this probability.
	ReorderRate float64
	// ReorderExtra is the additional delay of held-back datagrams; zero
	// means Delay/2 (enough to be overtaken by later traffic).
	ReorderExtra time.Duration
	// DuplicateRate delivers each datagram twice with this probability.
	DuplicateRate float64
}

// Stack composes an overlay segment onto the path, as when traffic
// traverses a vantage point's access link before the server's own shaped
// path: delays, jitters and reorder extras add, while loss, reorder and
// duplicate probabilities combine as independent per-segment events
// (1 − (1−a)(1−b)).
func (c PathConfig) Stack(o PathConfig) PathConfig {
	c.Delay += o.Delay
	c.Jitter += o.Jitter
	c.ReorderExtra += o.ReorderExtra
	c.LossRate = combineProb(c.LossRate, o.LossRate)
	c.ReorderRate = combineProb(c.ReorderRate, o.ReorderRate)
	c.DuplicateRate = combineProb(c.DuplicateRate, o.DuplicateRate)
	return c
}

// combineProb is the probability that at least one of two independent
// events fires, clamped against floating-point drift.
func combineProb(a, b float64) float64 {
	p := 1 - (1-a)*(1-b)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func (c PathConfig) reorderExtra() time.Duration {
	if c.ReorderExtra != 0 {
		return c.ReorderExtra
	}
	return c.Delay / 2
}

// Handler consumes datagrams delivered to an attached host.
type Handler func(now time.Time, from string, data []byte)

// TapFunc observes datagrams at delivery time (the vantage of an on-path
// observer sitting just in front of the receiver).
type TapFunc func(now time.Time, from, to string, data []byte)

// Mangler rewrites one datagram leaving a host into zero or more datagrams
// before path impairments apply: returning nil swallows the datagram,
// returning several emits a burst. Hostile-endpoint profiles
// (internal/hostile) use this to inject protocol misbehavior on the wire
// without touching the sending transport.
type Mangler func(data []byte) [][]byte

// Stats counts per-network datagram fates.
type Stats struct {
	Sent       int
	Delivered  int
	Dropped    int
	Reordered  int
	Duplicated int
}

// Network connects named hosts through configurable paths over a shared
// virtual-time event loop. It is single-threaded like the loop itself.
type Network struct {
	loop    *sim.Loop
	rng     *rand.Rand
	hosts   map[string]Handler
	paths   map[[2]string]PathConfig
	def     PathConfig
	tap     TapFunc
	stats   Stats
	dropAll map[string]bool // blackholed hosts (e.g. unresponsive targets)
	// failFirst/outage implement injectable transient outages for tests:
	// SetFailFirst(addr, k) makes the first k connection attempts against
	// addr lose every packet, after which the host recovers. failFirst
	// counts remaining failing attempts; outage marks hosts inside a
	// currently-failing attempt (consulted like dropAll at send/delivery).
	failFirst map[string]int
	outage    map[string]bool
	// lastDelivery enforces FIFO ordering per directed path: real paths
	// are queues, so jitter delays packets but does not reorder them.
	// Only ReorderRate-selected packets escape the clamp.
	lastDelivery map[[2]string]time.Time
	// manglers rewrite datagrams leaving a host (keyed by sender address).
	manglers map[string]Mangler

	// freeDel and freeBufs recycle in-flight delivery records and datagram
	// copies. Handlers and taps must not retain the delivered slice beyond
	// the call (the transport copies retained stream data); in exchange the
	// per-datagram copy in transmit is allocation-free at steady state.
	freeDel  []*delivery
	freeBufs [][]byte

	// tm mirrors stats into shared campaign telemetry counters; the zero
	// value (nil counters) is a no-op, so uninstrumented networks pay
	// only nil checks.
	tm netTelemetry
}

// delivery is one scheduled datagram arrival. fn is the loop callback bound
// once per pooled record, so scheduling a delivery allocates nothing after
// the pool warms up.
type delivery struct {
	n        *Network
	from, to string
	data     []byte
	fn       func(now time.Time)
}

// netTelemetry holds the pre-resolved counters of one network. Counters
// are atomic, so many worker-shard networks may share one registry.
type netTelemetry struct {
	sent, delivered, dropped, reordered, duplicated *telemetry.Counter
}

// SetTelemetry registers this network's packet counters
// (netem_packets_*_total) with reg. A nil registry disables them.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.tm = netTelemetry{
		sent:       reg.Counter("netem_packets_sent_total"),
		delivered:  reg.Counter("netem_packets_delivered_total"),
		dropped:    reg.Counter("netem_packets_dropped_total"),
		reordered:  reg.Counter("netem_packets_reordered_total"),
		duplicated: reg.Counter("netem_packets_duplicated_total"),
	}
}

// New creates a Network over loop with the given default path config.
// rng drives loss/reorder/duplication decisions and must be non-nil.
func New(loop *sim.Loop, def PathConfig, rng *rand.Rand) *Network {
	return &Network{
		loop:         loop,
		rng:          rng,
		def:          def,
		hosts:        make(map[string]Handler),
		paths:        make(map[[2]string]PathConfig),
		dropAll:      make(map[string]bool),
		failFirst:    make(map[string]int),
		outage:       make(map[string]bool),
		lastDelivery: make(map[[2]string]time.Time),
		manglers:     make(map[string]Mangler),
	}
}

// Loop returns the underlying event loop (and virtual clock).
func (n *Network) Loop() *sim.Loop { return n.loop }

// Attach registers addr with a delivery handler. Re-attaching replaces the
// handler.
func (n *Network) Attach(addr string, h Handler) {
	n.hosts[addr] = h
}

// Detach removes a host; datagrams in flight toward it are dropped at
// delivery time.
func (n *Network) Detach(addr string) {
	delete(n.hosts, addr)
}

// SetPath configures the directed path from a to b.
func (n *Network) SetPath(from, to string, cfg PathConfig) {
	n.paths[[2]string{from, to}] = cfg
}

// SetSymmetricPath configures both directions between a and b.
func (n *Network) SetSymmetricPath(a, b string, cfg PathConfig) {
	n.SetPath(a, b, cfg)
	n.SetPath(b, a, cfg)
}

// ClearPath removes the directed path configs between a and b (both
// directions), reverting them to the network default. Long-running
// campaigns call this to keep the path table from growing per probe.
func (n *Network) ClearPath(a, b string) {
	delete(n.paths, [2]string{a, b})
	delete(n.paths, [2]string{b, a})
	delete(n.lastDelivery, [2]string{a, b})
	delete(n.lastDelivery, [2]string{b, a})
}

// Blackhole silently discards all traffic to addr when on is true,
// emulating unresponsive hosts or filtered UDP.
func (n *Network) Blackhole(addr string, on bool) {
	if on {
		n.dropAll[addr] = true
	} else {
		delete(n.dropAll, addr)
	}
}

// SetFailFirst schedules a transient outage for tests: the first k
// connection attempts against addr (as announced via BeginAttempt) lose
// every packet in both directions, then the host recovers. k <= 0 clears
// the schedule. This models "fail first k attempts, then succeed" so
// retry and breaker paths can be exercised deterministically.
func (n *Network) SetFailFirst(addr string, k int) {
	if k <= 0 {
		delete(n.failFirst, addr)
		delete(n.outage, addr)
		return
	}
	n.failFirst[addr] = k
}

// BeginAttempt announces the start of one connection attempt against addr
// and reports whether the attempt can succeed. While a scheduled outage is
// active the host behaves exactly like a blackholed one; once the budget
// is exhausted the host recovers.
func (n *Network) BeginAttempt(addr string) bool {
	if k := n.failFirst[addr]; k > 0 {
		n.failFirst[addr] = k - 1
		n.outage[addr] = true
		return false
	}
	delete(n.outage, addr)
	return true
}

// SetTap installs an observer called at each successful delivery.
func (n *Network) SetTap(t TapFunc) { n.tap = t }

// SetMangler installs a datagram rewriter on everything from sends. A nil
// mangler is ignored. Campaign engines install one per hostile server and
// must ClearMangler when the probe finishes.
func (n *Network) SetMangler(from string, m Mangler) {
	if m == nil {
		return
	}
	n.manglers[from] = m
}

// ClearMangler removes the datagram rewriter of from, if any.
func (n *Network) ClearMangler(from string) {
	delete(n.manglers, from)
}

// SetRng replaces the random stream driving loss, jitter, reordering and
// duplication decisions. Campaign engines reseed it at every domain so
// path noise becomes a function of the scanned domain alone, independent
// of scan order and worker sharding. rng must be non-nil.
func (n *Network) SetRng(rng *rand.Rand) { n.rng = rng }

// Stats returns cumulative datagram counters.
func (n *Network) Stats() Stats { return n.stats }

func (n *Network) pathConfig(from, to string) PathConfig {
	if cfg, ok := n.paths[[2]string{from, to}]; ok {
		return cfg
	}
	return n.def
}

// Send injects a datagram from one host toward another. Delivery is
// scheduled on the loop according to the path configuration. The data slice
// is copied, so callers may reuse their buffers.
func (n *Network) Send(from, to string, data []byte) {
	n.stats.Sent++
	n.tm.sent.Inc()
	if n.dropAll[to] || n.outage[to] || n.outage[from] {
		n.stats.Dropped++
		n.tm.dropped.Inc()
		return
	}
	if m := n.manglers[from]; m != nil {
		pieces := m(data)
		if len(pieces) == 0 {
			n.stats.Dropped++
			n.tm.dropped.Inc()
			return
		}
		for _, piece := range pieces {
			n.transmit(from, to, piece)
		}
		return
	}
	n.transmit(from, to, data)
}

// transmit pushes one datagram through the path impairments (loss, delay,
// jitter, FIFO/reorder, duplication) and schedules its delivery. The data
// slice is copied here.
func (n *Network) transmit(from, to string, data []byte) {
	cfg := n.pathConfig(from, to)
	if cfg.LossRate > 0 && n.rng.Float64() < cfg.LossRate {
		n.stats.Dropped++
		n.tm.dropped.Inc()
		return
	}
	delay := cfg.Delay
	if cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	at := n.loop.Now().Add(delay)
	key := [2]string{from, to}
	if cfg.ReorderRate > 0 && n.rng.Float64() < cfg.ReorderRate {
		// Deliberately held back: may overtake later traffic.
		at = at.Add(cfg.reorderExtra())
		n.stats.Reordered++
		n.tm.reordered.Inc()
	} else {
		// FIFO: a packet never arrives before its predecessor on the path.
		if last, ok := n.lastDelivery[key]; ok && at.Before(last) {
			at = last
		}
		n.lastDelivery[key] = at
	}
	cp := n.getBuf(len(data))
	copy(cp, data)
	n.deliverAt(at, from, to, cp)
	if cfg.DuplicateRate > 0 && n.rng.Float64() < cfg.DuplicateRate {
		n.stats.Duplicated++
		n.tm.duplicated.Inc()
		dup := n.getBuf(len(cp))
		copy(dup, cp)
		n.deliverAt(at.Add(time.Millisecond), from, to, dup)
	}
}

// getBuf returns a length-size datagram buffer from the pool. Undersized
// pool entries are dropped rather than cycled; steady-state traffic is
// MTU-bounded, so the pool converges to a handful of full-size buffers.
func (n *Network) getBuf(size int) []byte {
	if k := len(n.freeBufs); k > 0 {
		b := n.freeBufs[k-1]
		n.freeBufs = n.freeBufs[:k-1]
		if cap(b) >= size {
			return b[:size]
		}
	}
	c := size
	if c < 2048 {
		c = 2048
	}
	return make([]byte, size, c)
}

func (n *Network) deliverAt(at time.Time, from, to string, data []byte) {
	var d *delivery
	if k := len(n.freeDel); k > 0 {
		d = n.freeDel[k-1]
		n.freeDel = n.freeDel[:k-1]
	} else {
		d = &delivery{n: n}
		d.fn = d.run
	}
	d.from, d.to, d.data = from, to, data
	n.loop.At(at, d.fn)
}

func (d *delivery) run(now time.Time) {
	n, from, to, data := d.n, d.from, d.to, d.data
	// Release the record before running the handler: nested sends reuse it.
	d.from, d.to, d.data = "", "", nil
	n.freeDel = append(n.freeDel, d)
	defer func() { n.freeBufs = append(n.freeBufs, data) }()
	h, ok := n.hosts[to]
	if !ok || n.dropAll[to] || n.outage[to] || n.outage[from] {
		n.stats.Dropped++
		n.tm.dropped.Inc()
		return
	}
	n.stats.Delivered++
	n.tm.delivered.Inc()
	if n.tap != nil {
		n.tap(now, from, to, data)
	}
	h(now, from, data)
}

// Delta returns the counter increments from prev to s — per-connection
// attribution of the cumulative network counters (the scanner's trace
// layer snapshots Stats around each exchange).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Sent:       s.Sent - prev.Sent,
		Delivered:  s.Delivered - prev.Delivered,
		Dropped:    s.Dropped - prev.Dropped,
		Reordered:  s.Reordered - prev.Reordered,
		Duplicated: s.Duplicated - prev.Duplicated,
	}
}

// String summarises network statistics.
func (s Stats) String() string {
	return fmt.Sprintf("netem{sent=%d delivered=%d dropped=%d reordered=%d dup=%d}",
		s.Sent, s.Delivered, s.Dropped, s.Reordered, s.Duplicated)
}
