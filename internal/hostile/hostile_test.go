package hostile

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

// TestAssignDeterministicAndUniform checks that Assign is a pure function
// of (seed, addr, frac), hits roughly the requested fraction over a
// sequential address population (the shape websim allocates), and covers
// every profile.
func TestAssignDeterministicAndUniform(t *testing.T) {
	const seed, frac = 20230515, 0.3
	hostileN := 0
	seen := map[Profile]int{}
	for i := 0; i < 4000; i++ {
		addr := fmt.Sprintf("%d.%d.0.1", 32+i/256, i%256)
		p := Assign(seed, addr, frac)
		if again := Assign(seed, addr, frac); again != p {
			t.Fatalf("Assign(%q) not deterministic: %v then %v", addr, p, again)
		}
		if Assign(seed, addr, 0) != None {
			t.Fatalf("Assign(%q, frac=0) must be None", addr)
		}
		if p == None {
			continue
		}
		hostileN++
		seen[p]++
	}
	share := float64(hostileN) / 4000
	if share < 0.25 || share > 0.35 {
		t.Errorf("hostile share %.3f over sequential addresses, want ~0.30", share)
	}
	for _, p := range Profiles() {
		if seen[p] == 0 {
			t.Errorf("profile %s never assigned over 4000 sequential addresses", p)
		}
	}
}

// TestProfileOfRoundTrip checks that every profile survives both error-text
// encodings, and that non-hostile strings map to None.
func TestProfileOfRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		if got := ProfileOf(ErrText(p)); got != p {
			t.Errorf("ProfileOf(ErrText(%s)) = %s", p, got)
		}
	}
	budgetKinds := map[string]Profile{
		transport.BudgetRecvBytes:         PacketStorm,
		transport.BudgetRecvPackets:       PacketStorm,
		transport.BudgetMalformedDatagram: MalformedHeader,
		transport.BudgetMalformedFrame:    MalformedFrames,
		transport.BudgetLifetime:          Slowloris,
	}
	for kind, want := range budgetKinds {
		if got := ProfileOf(BudgetErrText(kind)); got != want {
			t.Errorf("ProfileOf(BudgetErrText(%s)) = %s, want %s", kind, got, want)
		}
	}
	for _, s := range []string{"", "timeout: no response", "hostile: nonsense: x", "panic: oops"} {
		if got := ProfileOf(s); got != None {
			t.Errorf("ProfileOf(%q) = %s, want none", s, got)
		}
	}
}

// shortPacket builds a valid short-header packet with the transport's
// default CID length, the given packet number and spin value, and a PING
// payload.
func shortPacket(t *testing.T, pn uint64, spin bool) []byte {
	t.Helper()
	h := &wire.Header{
		DstConnID:    wire.NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		PacketNumber: pn,
		SpinBit:      spin,
	}
	b, err := wire.AppendShortHeader(nil, h, []byte{0x01}, wire.NoAckedPacket)
	if err != nil {
		t.Fatalf("short packet: %v", err)
	}
	return b
}

func longPacket(t *testing.T) []byte {
	t.Helper()
	h := &wire.Header{
		IsLong: true, Type: wire.TypeInitial, Version: wire.Version1,
		DstConnID: wire.NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		SrcConnID: wire.NewConnectionID([]byte{9, 9, 9, 9, 9, 9, 9, 9}),
	}
	b, err := wire.AppendLongHeader(nil, h, []byte{0x01}, wire.NoAckedPacket)
	if err != nil {
		t.Fatalf("long packet: %v", err)
	}
	return b
}

func TestManglerMalformedHeader(t *testing.T) {
	m := NewMangler(MalformedHeader)
	out := m(shortPacket(t, 7, false))
	if len(out) != 1 || len(out[0]) != 3 {
		t.Fatalf("short header not truncated to 3 bytes: %d datagrams, len %d", len(out), len(out[0]))
	}
	long := longPacket(t)
	out = m(long)
	if len(out) != 1 || len(out[0]) != len(long) {
		t.Fatal("long header must pass through untouched")
	}
}

func TestManglerMalformedFrames(t *testing.T) {
	m := NewMangler(MalformedFrames)
	pkt := shortPacket(t, 7, false)
	out := m(pkt)
	if len(out) != 1 {
		t.Fatalf("got %d datagrams", len(out))
	}
	_, payload, _, err := wire.ParseHeader(out[0], transport.DefaultConnIDLen, wire.NoAckedPacket)
	if err != nil {
		t.Fatalf("mangled packet must still parse as a header: %v", err)
	}
	if len(payload) == 0 || payload[0] != 0x1f {
		t.Fatalf("first frame byte = %#x, want 0x1f", payload[0])
	}
	if _, err := wire.ParseFrames(payload); err == nil {
		t.Fatal("0x1f frame must fail frame parsing")
	}
}

// TestManglerSpinRewrite checks both spin manglers produce spin as an exact
// function of the packet's own truncated packet number.
func TestManglerSpinRewrite(t *testing.T) {
	for _, tc := range []struct {
		profile Profile
		want    func(pn uint64) bool
	}{
		{SpinFlap, func(pn uint64) bool { return pn&1 == 1 }},
		{SpinLiar, func(pn uint64) bool { return (pn>>1)&1 == 1 }},
	} {
		m := NewMangler(tc.profile)
		for pn := uint64(0); pn < 16; pn++ {
			out := m(shortPacket(t, pn, pn%3 == 0))
			if len(out) != 1 {
				t.Fatalf("%s: got %d datagrams", tc.profile, len(out))
			}
			h, _, _, err := wire.ParseHeader(out[0], transport.DefaultConnIDLen, wire.NoAckedPacket)
			if err != nil {
				t.Fatalf("%s: rewritten packet unparseable: %v", tc.profile, err)
			}
			if h.SpinBit != tc.want(pn) {
				t.Errorf("%s: pn %d spin = %v, want %v", tc.profile, pn, h.SpinBit, tc.want(pn))
			}
		}
	}
}

func TestManglerSlowloris(t *testing.T) {
	m := NewMangler(Slowloris)
	if out := m(shortPacket(t, 3, true)); out != nil {
		t.Fatal("slowloris must drop short-header traffic")
	}
	out := m(longPacket(t))
	if len(out) != 1 {
		t.Fatalf("got %d datagrams", len(out))
	}
	h, payload, _, err := wire.ParseHeader(out[0], transport.DefaultConnIDLen, wire.NoAckedPacket)
	if err != nil {
		t.Fatalf("replacement packet unparseable: %v", err)
	}
	if !h.IsLong || h.Type != wire.TypeHandshake {
		t.Fatalf("replacement is not a Handshake long header: %+v", h)
	}
	frames, err := wire.ParseFrames(payload)
	if err != nil {
		t.Fatalf("replacement payload: %v", err)
	}
	for _, fr := range frames {
		if _, ok := fr.(wire.PaddingFrame); !ok {
			t.Fatalf("replacement payload carries %T, want padding only", fr)
		}
	}
}

func TestManglerPacketStorm(t *testing.T) {
	m := NewMangler(PacketStorm)
	first := m(shortPacket(t, 1, false))
	if len(first) != StormCopies {
		t.Fatalf("first datagram amplified into %d copies, want %d", len(first), StormCopies)
	}
	second := m(shortPacket(t, 2, false))
	if len(second) != 1 {
		t.Fatalf("second datagram amplified into %d copies, want pass-through", len(second))
	}
}

func TestManglerSiteProfilesNil(t *testing.T) {
	for _, p := range []Profile{None, OversizedBody, HeaderFlood, QlogGarbage, MidstreamReset} {
		if NewMangler(p) != nil {
			t.Errorf("NewMangler(%s) must be nil (site-level profile)", p)
		}
	}
}

// obsSeries builds an observation series with the given spin function and
// inter-packet spacing.
func obsSeries(n int, gap time.Duration, spin func(pn uint64) bool) []core.Observation {
	base := time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)
	out := make([]core.Observation, n)
	for i := range out {
		pn := uint64(i)
		out[i] = core.Observation{T: base.Add(time.Duration(i) * gap), PN: pn, Spin: spin(pn)}
	}
	return out
}

func TestDetectSpinPattern(t *testing.T) {
	burst := 50 * time.Microsecond // in-burst packet spacing, far below fastFlipMax
	flap := func(pn uint64) bool { return pn&1 == 1 }
	liar := func(pn uint64) bool { return (pn >> 1 & 1) == 1 }
	honest := func(pn uint64) bool { return pn/6%2 == 1 } // edges every ~6 packets

	if got := DetectSpinPattern(obsSeries(8, burst, flap)); got != SpinFlap {
		t.Errorf("flap series = %s, want spin-flap", got)
	}
	if got := DetectSpinPattern(obsSeries(8, burst, liar)); got != SpinLiar {
		t.Errorf("liar series = %s, want spin-liar", got)
	}
	// An honest endpoint flips at RTT cadence: edges are whole RTTs apart,
	// so even a parity-looking pattern without a fast flip stays None.
	if got := DetectSpinPattern(obsSeries(8, 5*time.Millisecond, flap)); got != None {
		t.Errorf("slow parity series = %s, want none (no fast flip)", got)
	}
	if got := DetectSpinPattern(obsSeries(24, burst, honest)); got != None {
		t.Errorf("honest series = %s, want none", got)
	}
	if got := DetectSpinPattern(obsSeries(3, burst, flap)); got != None {
		t.Errorf("3-observation series = %s, want none (too short)", got)
	}
	// Duplicate packet numbers (network duplication) must not fake edges.
	dup := obsSeries(8, burst, flap)
	dup = append(dup, dup...)
	if got := DetectSpinPattern(dup); got != SpinFlap {
		t.Errorf("duplicated flap series = %s, want spin-flap", got)
	}
}

func TestInspectStream(t *testing.T) {
	for _, p := range []Profile{OversizedBody, HeaderFlood, QlogGarbage} {
		data := ResponseBytes(p, "h2o")
		if got := InspectStream(data); got != p {
			t.Errorf("InspectStream(ResponseBytes(%s)) = %s", p, got)
		}
	}
	// Partial deliveries: the qlog signature is visible from the first
	// byte; the flood only once the unterminated prefix exceeds the budget.
	if got := InspectStream(ResponseBytes(QlogGarbage, "h2o")[:4]); got != QlogGarbage {
		t.Errorf("qlog prefix = %s, want qlog-garbage", got)
	}
	flood := ResponseBytes(HeaderFlood, "h2o")
	if got := InspectStream(flood[:1024]); got != None {
		t.Errorf("short flood prefix = %s, want none (still within budget)", got)
	}
	if got := InspectStream(flood[:MaxInspectHeaderBytes+1024]); got != HeaderFlood {
		t.Errorf("long flood prefix = %s, want header-flood", got)
	}
	// Honest responses must never be flagged, including large-but-legal
	// bodies and partially delivered ones.
	honest := h3.EncodeResponse(&h3.Response{
		Status:  200,
		Headers: map[string]string{"server": "h2o", "x-padding": strings.Repeat("z", 200)},
		Body:    []byte(strings.Repeat("body", 1000)),
	})
	for _, n := range []int{1, 8, len(honest) / 2, len(honest)} {
		if got := InspectStream(honest[:n]); got != None {
			t.Errorf("honest response prefix [%d] = %s, want none", n, got)
		}
	}
	if got := InspectStream(nil); got != None {
		t.Errorf("empty stream = %s, want none", got)
	}
}
