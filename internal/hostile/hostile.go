// Package hostile is a library of deterministic endpoint-misbehavior
// profiles for the simulated measurement campaign. Real scans hit live but
// broken QUIC deployments — non-conformant stacks, greased and flapping
// spin bits, stalled handshakes, floods — which is why RFC 9000 makes the
// spin bit optional and RFC 9312 warns on-path observers about
// manipulation. A profile attaches to a websim server and misbehaves at
// the wire (via a netem datagram mangler) or at the site (via a crafted
// response stream); the scanner's job is to classify every profile into a
// stable "hostile: <name>" error class instead of crashing or hanging.
//
// Everything here is a pure function of (seed, address) or of the bytes a
// profile emits, so hostile worlds remain byte-identical across worker
// counts and engines, like everything else in the campaign.
package hostile

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

// Profile identifies one endpoint-misbehavior profile.
type Profile int

const (
	// None marks a well-behaved server.
	None Profile = iota
	// MalformedHeader truncates every 1-RTT short-header datagram so the
	// client cannot parse past the first byte.
	MalformedHeader
	// MalformedFrames corrupts the first frame type of every short packet
	// into an unknown frame.
	MalformedFrames
	// SpinFlap flips the spin bit on every packet (parity of the packet
	// number), defeating RTT measurement with impossible sub-burst edges.
	SpinFlap
	// SpinLiar spins the bit at a constant fake rate (half the packet
	// rate) unrelated to the path RTT.
	SpinLiar
	// Slowloris keeps the handshake alive forever without completing it:
	// the client sees parseable traffic but never a server hello.
	Slowloris
	// OversizedBody declares a response body far beyond any honest size.
	OversizedBody
	// HeaderFlood streams response headers without ever terminating them.
	HeaderFlood
	// QlogGarbage answers the request with qlog-like NDJSON garbage
	// instead of an HTTP/3-lite response.
	QlogGarbage
	// PacketStorm amplifies the handshake flight into a storm of
	// duplicate datagrams.
	PacketStorm
	// MidstreamReset closes the connection abruptly halfway through the
	// response.
	MidstreamReset

	profileCount // number of profiles including None
)

// Profiles returns all misbehavior profiles (excluding None) in stable
// order.
func Profiles() []Profile {
	out := make([]Profile, 0, profileCount-1)
	for p := MalformedHeader; p < profileCount; p++ {
		out = append(out, p)
	}
	return out
}

// String returns the stable profile name used in error classes, telemetry
// labels and tables.
func (p Profile) String() string {
	switch p {
	case None:
		return "none"
	case MalformedHeader:
		return "malformed-header"
	case MalformedFrames:
		return "malformed-frames"
	case SpinFlap:
		return "spin-flap"
	case SpinLiar:
		return "spin-liar"
	case Slowloris:
		return "slowloris"
	case OversizedBody:
		return "oversized-body"
	case HeaderFlood:
		return "header-flood"
	case QlogGarbage:
		return "qlog-garbage"
	case PacketStorm:
		return "packet-storm"
	case MidstreamReset:
		return "midstream-reset"
	default:
		return "unknown"
	}
}

func (p Profile) description() string {
	switch p {
	case MalformedHeader:
		return "unparseable short-header packets"
	case MalformedFrames:
		return "packets with malformed frames"
	case SpinFlap:
		return "spin bit flipped on every packet"
	case SpinLiar:
		return "spin bit spun at a fake constant rate"
	case Slowloris:
		return "handshake never completes despite live traffic"
	case OversizedBody:
		return "response declares an oversized body"
	case HeaderFlood:
		return "response headers flood without terminator"
	case QlogGarbage:
		return "qlog-like garbage instead of a response"
	case PacketStorm:
		return "amplified duplicate packet storm"
	case MidstreamReset:
		return "connection reset mid-response"
	default:
		return "misbehaving endpoint"
	}
}

// errPrefix starts every hostile error class; resilience.Classify keys on
// it.
const errPrefix = "hostile: "

// ErrText returns the canonical error string recorded for a connection
// classified under profile p: "hostile: <name>: <description>".
func ErrText(p Profile) string {
	return errPrefix + p.String() + ": " + p.description()
}

// ProfileOf parses the profile out of a hostile error string produced by
// ErrText or BudgetErrText. Any other string maps to None.
func ProfileOf(err string) Profile {
	if !strings.HasPrefix(err, errPrefix) {
		return None
	}
	rest := err[len(errPrefix):]
	name, _, _ := strings.Cut(rest, ":")
	for p := MalformedHeader; p < profileCount; p++ {
		if p.String() == name {
			return p
		}
	}
	return None
}

// budgetProfile maps a transport budget kind to the misbehavior profile
// whose signature it is.
func budgetProfile(kind string) Profile {
	switch kind {
	case transport.BudgetRecvBytes, transport.BudgetRecvPackets:
		return PacketStorm
	case transport.BudgetMalformedDatagram:
		return MalformedHeader
	case transport.BudgetMalformedFrame:
		return MalformedFrames
	case transport.BudgetLifetime:
		return Slowloris
	default:
		return None
	}
}

// BudgetErrText returns the canonical error string for a connection that
// tripped a per-connection resource budget of the given kind.
func BudgetErrText(kind string) string {
	p := budgetProfile(kind)
	if p == None {
		return errPrefix + "budget: exceeded (" + kind + ")"
	}
	return errPrefix + p.String() + ": budget exceeded (" + kind + ")"
}

// fnv64a hashes s with 64-bit FNV-1a and finalizes with a murmur3-style
// bit mixer. Raw FNV-1a diffuses trailing-byte differences poorly into the
// low bits, and Assign reduces the hash with small moduli — over the
// sequential addresses websim allocates, that skews both the hostile share
// and the profile distribution without the finalizer.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Assign deterministically maps a server address to its misbehavior
// profile: a frac share of addresses (hash-uniform) gets one of the
// profiles, the rest None. It draws nothing from any random stream, so
// frac = 0 worlds are byte-identical to worlds built before hostile
// profiles existed.
func Assign(seed int64, addr string, frac float64) Profile {
	if frac <= 0 {
		return None
	}
	h := fnv64a(fmt.Sprintf("hostile|%d|%s", seed, addr))
	if float64(h%1_000_000)/1_000_000 >= frac {
		return None
	}
	h2 := fnv64a(fmt.Sprintf("hostile-profile|%d|%s", seed, addr))
	return MalformedHeader + Profile(h2%uint64(profileCount-1))
}

// StormCopies is the amplification factor of the PacketStorm profile: the
// first server datagram (the handshake flight) is duplicated this many
// times, enough to trip any sane per-connection packet budget.
const StormCopies = 1200

// mangledDCIDLen is the connection-ID length manglers assume when locating
// fields in short headers (the scanner's transport always issues
// DefaultConnIDLen-byte CIDs).
const mangledDCIDLen = transport.DefaultConnIDLen

// NewMangler returns a datagram-rewriting function implementing profile p
// on the server→client path, or nil when the profile misbehaves at the
// site layer instead of the wire (OversizedBody, HeaderFlood, QlogGarbage,
// MidstreamReset). The returned function holds per-connection state;
// create a fresh one per connection. It matches netem.Mangler.
func NewMangler(p Profile) func(data []byte) [][]byte {
	switch p {
	case MalformedHeader:
		return func(data []byte) [][]byte {
			if len(data) == 0 || wire.IsLongHeader(data[0]) {
				return [][]byte{data}
			}
			n := len(data)
			if n > 3 {
				n = 3
			}
			cp := make([]byte, n)
			copy(cp, data[:n])
			return [][]byte{cp}
		}
	case MalformedFrames:
		return func(data []byte) [][]byte {
			if len(data) == 0 || wire.IsLongHeader(data[0]) {
				return [][]byte{data}
			}
			off := 1 + mangledDCIDLen + int(data[0]&0x3) + 1
			if len(data) <= off {
				return [][]byte{data}
			}
			cp := make([]byte, len(data))
			copy(cp, data)
			// 0x1f is not a frame type this wire dialect knows, so frame
			// parsing fails deterministically at the first frame.
			cp[off] = 0x1f
			return [][]byte{cp}
		}
	case SpinFlap:
		return spinRewriter(func(pn byte) bool { return pn&1 == 1 })
	case SpinLiar:
		return spinRewriter(func(pn byte) bool { return (pn>>1)&1 == 1 })
	case Slowloris:
		var pn uint64
		return func(data []byte) [][]byte {
			if len(data) == 0 || !wire.IsLongHeader(data[0]) {
				return nil // drop 1-RTT traffic: no progress, ever
			}
			h, _, _, err := wire.ParseHeader(data, mangledDCIDLen, wire.NoAckedPacket)
			if err != nil {
				return nil
			}
			// Replace the real flight with a padding-only Handshake packet:
			// parseable, counts as received traffic, elicits nothing, and
			// never advances the handshake.
			payload := wire.PaddingFrame{N: 20}.Append(nil)
			hdr := &wire.Header{
				IsLong: true, Type: wire.TypeHandshake, Version: wire.Version1,
				DstConnID: h.DstConnID, SrcConnID: h.SrcConnID, PacketNumber: pn,
			}
			out, err := wire.AppendLongHeader(nil, hdr, payload, wire.NoAckedPacket)
			if err != nil {
				return nil
			}
			pn++
			return [][]byte{out}
		}
	case PacketStorm:
		first := true
		return func(data []byte) [][]byte {
			if !first {
				return [][]byte{data}
			}
			first = false
			out := make([][]byte, StormCopies)
			for i := range out {
				out[i] = data
			}
			return out
		}
	default:
		return nil
	}
}

// spinRewriter rewrites the spin bit of every short-header datagram as a
// function of the packet's own truncated packet number. Short-header
// truncation preserves the low 8 bits, and RFC 9000 §A.3 decoding restores
// them exactly, so the client-side pattern is an exact function of the
// decoded packet number regardless of loss or retransmission.
func spinRewriter(spin func(pnLow byte) bool) func(data []byte) [][]byte {
	return func(data []byte) [][]byte {
		if len(data) == 0 || wire.IsLongHeader(data[0]) {
			return [][]byte{data}
		}
		pnl := int(data[0]&0x3) + 1
		end := 1 + mangledDCIDLen + pnl
		if len(data) < end {
			return [][]byte{data}
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		if spin(cp[end-1]) {
			cp[0] |= wire.SpinBitMask
		} else {
			cp[0] &^= wire.SpinBitMask
		}
		return [][]byte{cp}
	}
}

// fastFlipMax is the inter-arrival gap below which a spin edge between
// adjacent packet numbers is physically impossible for an honest endpoint:
// honest edges are at least one RTT apart (≥ 4 ms in every simulated
// deployment), while in-burst packet spacing is tens of microseconds.
const fastFlipMax = time.Millisecond

// DetectSpinPattern inspects a connection's spin observations for the
// SpinFlap and SpinLiar signatures: an exact packet-number-derived value
// pattern with at least one "fast flip" (an edge between adjacent packet
// numbers closer together than any honest RTT). It is a pure function of
// the observations, so both scan engines reach the same verdict from the
// same series. Returns None when no signature matches.
func DetectSpinPattern(obs []core.Observation) Profile {
	if len(obs) < 4 {
		return None
	}
	sorted := make([]core.Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PN < sorted[j].PN })
	// Drop duplicate packet numbers (network-duplicated datagrams).
	uniq := sorted[:1]
	for _, o := range sorted[1:] {
		if o.PN != uniq[len(uniq)-1].PN {
			uniq = append(uniq, o)
		}
	}
	flap, liar := true, true
	transitions, fastFlip := 0, false
	for i, o := range uniq {
		if o.Spin != (o.PN&1 == 1) {
			flap = false
		}
		if o.Spin != ((o.PN>>1)&1 == 1) {
			liar = false
		}
		if i == 0 {
			continue
		}
		prev := uniq[i-1]
		if o.Spin != prev.Spin {
			transitions++
			if o.PN == prev.PN+1 {
				dt := o.T.Sub(prev.T)
				if dt < 0 {
					dt = -dt
				}
				if dt < fastFlipMax {
					fastFlip = true
				}
			}
		}
	}
	switch {
	case flap && len(uniq) >= 4 && transitions >= 3 && fastFlip:
		return SpinFlap
	case liar && len(uniq) >= 5 && transitions >= 2 && fastFlip:
		return SpinLiar
	default:
		return None
	}
}

// Stream-inspection budgets: an honest HTTP/3-lite response terminates its
// header block within the first packet and never declares a body beyond
// the websim maximum (250 KB), so these caps cannot misfire on honest
// traffic.
const (
	// MaxInspectHeaderBytes is the most unterminated header bytes the
	// scanner accepts before classifying a header flood.
	MaxInspectHeaderBytes = 16 << 10
	// MaxDeclaredBody is the largest declared content-length the scanner
	// will read to completion.
	MaxDeclaredBody = 512 << 10
)

// InspectStream examines a partially received response stream and reports
// the misbehavior profile it evidences, or None. The scanner calls it on
// every delivery so hostile responses are classified as soon as their
// signature is on the wire, without reading them to completion.
func InspectStream(data []byte) Profile {
	if len(data) == 0 {
		return None
	}
	proto := []byte(h3.Proto)
	n := len(proto)
	if n > len(data) {
		n = len(data)
	}
	if !bytes.Equal(data[:n], proto[:n]) {
		if data[0] == '{' || data[0] == 0x1e {
			return QlogGarbage
		}
		return None
	}
	if i := bytes.Index(data, []byte("\n\n")); i >= 0 {
		for _, line := range strings.Split(string(data[:i]), "\n") {
			v, ok := strings.CutPrefix(line, "content-length: ")
			if !ok {
				continue
			}
			var clen int64
			if _, err := fmt.Sscanf(v, "%d", &clen); err == nil && clen > MaxDeclaredBody {
				return OversizedBody
			}
		}
		return None
	}
	if len(data) > MaxInspectHeaderBytes {
		return HeaderFlood
	}
	return None
}

// ResponseBytes builds the response stream a site-level profile serves in
// place of an honest HTTP/3-lite response. It is a pure function of
// (profile, software) so both engines could reproduce it.
func ResponseBytes(p Profile, software string) []byte {
	switch p {
	case OversizedBody:
		var b bytes.Buffer
		fmt.Fprintf(&b, "%s 200\ncontent-length: %d\nserver: %s\n\n", h3.Proto, 4<<20, software)
		junk := bytes.Repeat([]byte("overflow "), 1024)
		b.Write(junk)
		return b.Bytes()
	case HeaderFlood:
		var b bytes.Buffer
		fmt.Fprintf(&b, "%s 200\n", h3.Proto)
		for i := 0; b.Len() < 64<<10; i++ {
			fmt.Fprintf(&b, "x-flood-%06d: %s\n", i, strings.Repeat("y", 80))
		}
		return b.Bytes()
	case QlogGarbage:
		var b bytes.Buffer
		b.WriteString(`{"qlog_version":"0.3","title":"garbage"` + "\n")
		for i := 0; i < 64; i++ {
			fmt.Fprintf(&b, "\x1e{\"time\":%d,\"name\":\"transport:packet_received\",\"data\":{\"trunca", i)
			b.WriteByte('\n')
		}
		b.Write([]byte{0x00, 0xff, 0xfe, '{', '{', '\n'})
		return b.Bytes()
	default:
		return nil
	}
}
