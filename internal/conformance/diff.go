// Package conformance cross-validates the repository's measurement stack:
// it runs the fast and emulated scanner engines over the same seeded websim
// world and checks that they agree wherever the ground truth pins the
// outcome (differential testing), and it drives the packet-level transport
// through deterministic netem chaos schedules while asserting observer
// invariants that must hold regardless of loss, reordering or duplication.
//
// The differential contract is deliberately asymmetric to the dice: both
// engines derive per-domain randomness from (Seed, Week, domain), but they
// consume their streams differently, so per-connection coin flips (the RFC
// 1-in-N disable rule, grease values) legitimately differ. What must agree
// exactly is everything the ground truth determines — resolution, the
// redirect chain (targets, IPs, hops), QUIC capability, response status —
// and every engine's spin classification must lie in the set of classes the
// scanned server's deployed policy can produce. Spin-RTT estimates must
// stay within bounded divergence: both engines time the same response plans
// over the same base RTTs, so their per-domain means may wobble (jitter,
// chunk-gap sampling) but not drift.
package conformance

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/hostile"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// DiffConfig parameterises one differential run.
type DiffConfig struct {
	// World is the shared ground truth both engines scan.
	World *websim.World
	// Week, IPv6, Seed, Workers, Timeout and MaxRedirects are passed to
	// both engines verbatim (see scanner.Config).
	Week         int
	IPv6         bool
	Seed         int64
	Workers      int
	Timeout      time.Duration
	MaxRedirects int
	// MaxDomainLogRatio bounds |ln(fast/emulated)| of a domain's mean
	// spin-RTT across engines; zero means ln(256). The bound is loose by
	// design: spin samples include application chunk gaps (up to ~1.2 s in
	// the calibrated profile), which the two engines draw from different
	// points of the domain's random stream, so a single-sample mean
	// spanning one maximal gap can stand against a pure-RTT mean of a few
	// milliseconds. The per-domain bound only catches catastrophic
	// divergence; the statistically meaningful check is MaxMedianRatio.
	MaxDomainLogRatio float64
	// MaxMedianRatio bounds the population median of the per-domain
	// fast/emulated spin-RTT ratios; zero means 1.5. Individual domains may
	// diverge, but the population must not be biased.
	MaxMedianRatio float64
	// Retry, DNSSchedule and NetFailFirst are passed to both engines
	// verbatim, so the differential contract can be exercised under
	// injected transient failures and recovery retries. NetFailFirst
	// counters live per worker in both engines, so runs using it should
	// set Workers to 1 to keep attempt accounting scan-order-independent.
	Retry        resilience.RetryPolicy
	DNSSchedule  func(name string, t dns.RType) int
	NetFailFirst map[string]int
}

func (c DiffConfig) maxDomainLogRatio() float64 {
	if c.MaxDomainLogRatio == 0 {
		return math.Log(256)
	}
	return c.MaxDomainLogRatio
}

func (c DiffConfig) maxMedianRatio() float64 {
	if c.MaxMedianRatio == 0 {
		return 1.5
	}
	return c.MaxMedianRatio
}

// Disagreement is one contract violation between the engines (or between
// one engine and the ground truth).
type Disagreement struct {
	// Domain is the scanned domain, or "<population>" for aggregate checks.
	Domain string
	// Kind groups violations: "resolve", "chain", "quic", "class", "rtt".
	Kind string
	// Detail is a human-readable description.
	Detail string
}

func (d Disagreement) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Domain, d.Kind, d.Detail)
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	// Domains is the scanned population size.
	Domains int
	// QUICDomains counts domains with at least one QUIC connection (both
	// engines agreed on capability for all of them if Disagreements is
	// empty).
	QUICDomains int
	// ClassChecked counts per-connection classifications validated against
	// the ground-truth permissible sets (both engines).
	ClassChecked int
	// RTTCompared counts domains whose spin-RTT means were compared.
	RTTCompared int
	// MedianRatio is the population median of fast/emulated spin-RTT mean
	// ratios (0 when nothing was compared).
	MedianRatio float64
	// Disagreements lists every contract violation found.
	Disagreements []Disagreement
}

// OK reports whether the run found no disagreements.
func (r *DiffReport) OK() bool { return len(r.Disagreements) == 0 }

// Summary renders a short human-readable report.
func (r *DiffReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential: %d domains (%d QUIC), %d conn classifications checked, %d RTT comparisons (median ratio %.3f): ",
		r.Domains, r.QUICDomains, r.ClassChecked, r.RTTCompared, r.MedianRatio)
	if r.OK() {
		b.WriteString("0 disagreements")
		return b.String()
	}
	fmt.Fprintf(&b, "%d disagreements", len(r.Disagreements))
	max := len(r.Disagreements)
	if max > 10 {
		max = 10
	}
	for _, d := range r.Disagreements[:max] {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	if max < len(r.Disagreements) {
		fmt.Fprintf(&b, "\n  ... and %d more", len(r.Disagreements)-max)
	}
	return b.String()
}

// RunDiff scans the world with both engines and cross-validates the
// results. It returns an error only for invalid configurations.
func RunDiff(cfg DiffConfig) (*DiffReport, error) {
	base := scanner.Config{
		Week:         cfg.Week,
		IPv6:         cfg.IPv6,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		Timeout:      cfg.Timeout,
		MaxRedirects: cfg.MaxRedirects,
		Retry:        cfg.Retry,
		DNSSchedule:  cfg.DNSSchedule,
		NetFailFirst: cfg.NetFailFirst,
	}
	fastCfg, emuCfg := base, base
	fastCfg.Engine = scanner.EngineFast
	emuCfg.Engine = scanner.EngineEmulated
	fast, err := scanner.Run(cfg.World, fastCfg)
	if err != nil {
		return nil, fmt.Errorf("conformance: fast engine: %w", err)
	}
	emu, err := scanner.Run(cfg.World, emuCfg)
	if err != nil {
		return nil, fmt.Errorf("conformance: emulated engine: %w", err)
	}
	return compare(cfg, fast, emu), nil
}

func compare(cfg DiffConfig, fast, emu *scanner.Result) *DiffReport {
	rep := &DiffReport{Domains: len(fast.Domains)}
	if len(fast.Domains) != len(emu.Domains) {
		rep.Disagreements = append(rep.Disagreements, Disagreement{
			Domain: "<population>", Kind: "chain",
			Detail: fmt.Sprintf("population size differs: fast %d, emulated %d", len(fast.Domains), len(emu.Domains)),
		})
		return rep
	}
	var ratios []float64
	for i := range fast.Domains {
		fd, ed := &fast.Domains[i], &emu.Domains[i]
		disagrees := compareDomain(cfg, fd, ed, rep)
		rep.Disagreements = append(rep.Disagreements, disagrees...)
		if fd.QUIC() || ed.QUIC() {
			rep.QUICDomains++
		}
		if fr, er := domainSpinMean(cfg.World, fd), domainSpinMean(cfg.World, ed); fr > 0 && er > 0 {
			rep.RTTCompared++
			ratio := float64(fr) / float64(er)
			ratios = append(ratios, ratio)
			if lr := math.Abs(math.Log(ratio)); lr > cfg.maxDomainLogRatio() {
				rep.Disagreements = append(rep.Disagreements, Disagreement{
					Domain: fd.Domain, Kind: "rtt",
					Detail: fmt.Sprintf("spin-RTT means diverge: fast %v, emulated %v (|ln ratio| %.2f > %.2f)",
						fr, er, lr, cfg.maxDomainLogRatio()),
				})
			}
		}
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		rep.MedianRatio = ratios[len(ratios)/2]
		if m := cfg.maxMedianRatio(); rep.MedianRatio > m || rep.MedianRatio < 1/m {
			rep.Disagreements = append(rep.Disagreements, Disagreement{
				Domain: "<population>", Kind: "rtt",
				Detail: fmt.Sprintf("median spin-RTT ratio %.3f outside [%.3f, %.3f]", rep.MedianRatio, 1/m, m),
			})
		}
	}
	return rep
}

// compareDomain validates one domain's pair of scans and returns the
// disagreements. It bumps rep.ClassChecked for side-effect counting only.
func compareDomain(cfg DiffConfig, fd, ed *scanner.DomainResult, rep *DiffReport) []Disagreement {
	var out []Disagreement
	add := func(kind, format string, args ...any) {
		out = append(out, Disagreement{Domain: fd.Domain, Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}
	if fd.Domain != ed.Domain {
		add("chain", "domain order differs: fast %q, emulated %q", fd.Domain, ed.Domain)
		return out
	}
	if fd.Resolved != ed.Resolved || fd.DNSErr != ed.DNSErr {
		add("resolve", "resolution differs: fast (%v, %q), emulated (%v, %q)", fd.Resolved, fd.DNSErr, ed.Resolved, ed.DNSErr)
		return out
	}
	if len(fd.Conns) != len(ed.Conns) {
		add("chain", "connection chains differ: fast %d hops, emulated %d hops", len(fd.Conns), len(ed.Conns))
		return out
	}
	for j := range fd.Conns {
		fc, ec := &fd.Conns[j], &ed.Conns[j]
		if fc.Target != ec.Target || fc.IP != ec.IP || fc.Hop != ec.Hop {
			add("chain", "hop %d differs: fast (%s @ %s), emulated (%s @ %s)", j, fc.Target, fc.IP, ec.Target, ec.IP)
			continue
		}
		if fc.QUIC != ec.QUIC {
			add("quic", "hop %d (%s): QUIC capability differs: fast %v, emulated %v", j, fc.Target, fc.QUIC, ec.QUIC)
			continue
		}
		if fc.Status != ec.Status || fc.Redirect != ec.Redirect || fc.Server != ec.Server {
			add("chain", "hop %d (%s): response differs: fast (%d %q %q), emulated (%d %q %q)",
				j, fc.Target, fc.Status, fc.Server, fc.Redirect, ec.Status, ec.Server, ec.Redirect)
		}
		set := permissibleConnClasses(cfg.World, cfg.Week, fc)
		for _, eng := range []struct {
			name string
			conn *scanner.ConnResult
		}{{"fast", fc}, {"emulated", ec}} {
			class := analysis.AnalyzeConn(eng.conn).Class
			rep.ClassChecked++
			if !set.has(class) {
				add("class", "hop %d (%s): %s engine classified %v, ground truth permits %v", j, fc.Target, eng.name, class, set)
			}
		}
	}
	// Domain-level classification: each engine's fold must be achievable
	// from the per-connection permissible sets.
	sets := make([]classSet, len(fd.Conns))
	for j := range fd.Conns {
		sets[j] = permissibleConnClasses(cfg.World, cfg.Week, &fd.Conns[j])
	}
	for _, eng := range []struct {
		name string
		dom  *scanner.DomainResult
	}{{"fast", fd}, {"emulated", ed}} {
		conns := make([]analysis.Conn, len(eng.dom.Conns))
		for j := range eng.dom.Conns {
			conns[j] = analysis.AnalyzeConn(&eng.dom.Conns[j])
		}
		class := analysis.DomainClass(conns)
		if !achievableDomainClass(class, sets) {
			add("class", "%s engine domain class %v is not achievable from per-connection sets", eng.name, class)
		}
	}
	return out
}

// domainSpinMean averages the received-order spin-RTT means of a domain's
// spin-classified connections, or 0 when there are none. Connections to
// hostile servers are excluded: a spin series forged by an adversarial peer
// carries no RTT signal, and the two engines legitimately disagree on it.
func domainSpinMean(w *websim.World, d *scanner.DomainResult) time.Duration {
	var sum time.Duration
	n := 0
	for j := range d.Conns {
		if srv := w.ServerAt(d.Conns[j].IP); srv != nil && srv.Hostile != hostile.None {
			continue
		}
		c := analysis.AnalyzeConn(&d.Conns[j])
		if c.Class == analysis.ClassSpin && c.SpinMeanR > 0 {
			sum += c.SpinMeanR
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// --- permissible classification sets ------------------------------------

// classSet is a bitset over analysis.Class.
type classSet uint8

func (s classSet) has(c analysis.Class) bool { return s&(1<<uint(c)) != 0 }

func (s classSet) String() string {
	var names []string
	for c := analysis.ClassNone; c <= analysis.ClassGrease; c++ {
		if s.has(c) {
			names = append(names, c.String())
		}
	}
	return "{" + strings.Join(names, ", ") + "}"
}

func setOf(classes ...analysis.Class) classSet {
	var s classSet
	for _, c := range classes {
		s |= 1 << uint(c)
	}
	return s
}

// classesForMode returns the connection classifications a deployment mode
// can produce on a completed QUIC connection.
//
//   - ModeSpin can look like Spin, like AllZero (responses too small for the
//     wave to flip before the last packet), or like Grease (reordering can
//     push a received-order sample below the stack minimum past the guard
//     band — the false positives of §5.2).
//   - Greasing per packet usually trips the grease filter, but short series
//     can come out constant or accidentally spin-like.
//   - Greasing per connection is indistinguishable from a fixed value.
func classesForMode(m core.Mode) classSet {
	switch m {
	case core.ModeSpin:
		return setOf(analysis.ClassSpin, analysis.ClassGrease, analysis.ClassAllZero)
	case core.ModeZero:
		return setOf(analysis.ClassAllZero)
	case core.ModeOne:
		return setOf(analysis.ClassAllOne)
	case core.ModeGreasePerPacket:
		return setOf(analysis.ClassGrease, analysis.ClassSpin, analysis.ClassAllZero, analysis.ClassAllOne)
	case core.ModeGreasePerConn:
		return setOf(analysis.ClassAllZero, analysis.ClassAllOne)
	default:
		return 0
	}
}

// permissibleConnClasses computes the ground-truth classification set for
// one connection record: what the deployed policy of the server at the
// connection's IP can legitimately produce in the scanned week.
func permissibleConnClasses(w *websim.World, week int, c *scanner.ConnResult) classSet {
	if !c.QUIC {
		return setOf(analysis.ClassNone)
	}
	srv := w.ServerAt(c.IP)
	if srv == nil || !srv.QUIC {
		// A completed handshake against a non-QUIC address would itself be
		// a bug; no class is permissible.
		return 0
	}
	if srv.Hostile != hostile.None {
		// A hostile server's wire behaviour is adversarial by construction:
		// any classification is permissible. What the differential contract
		// asserts for these is graceful degradation — matching chain, QUIC
		// capability and response fields — not a trusted spin measurement.
		return setOf(analysis.ClassNone, analysis.ClassAllZero, analysis.ClassAllOne,
			analysis.ClassSpin, analysis.ClassGrease)
	}
	p := srv.PolicyForWeek(week)
	s := classesForMode(p.Mode)
	if p.Mode == core.ModeSpin && p.DisableEveryN > 0 {
		// The RFC 1-in-N rule swaps in the disabled-mode behaviour on a
		// per-connection dice roll, so its classes are reachable too.
		s |= classesForMode(p.DisabledMode)
	}
	return s
}

// domainRank orders classes by the DomainClass fold priority
// (Spin > Grease > AllOne > AllZero > None).
func domainRank(c analysis.Class) int {
	switch c {
	case analysis.ClassSpin:
		return 4
	case analysis.ClassGrease:
		return 3
	case analysis.ClassAllOne:
		return 2
	case analysis.ClassAllZero:
		return 1
	default:
		return 0
	}
}

// achievableDomainClass reports whether the DomainClass fold can evaluate
// to v given per-connection permissible sets: v must be producible by some
// connection, and no connection may be forced to produce a higher-priority
// class.
func achievableDomainClass(v analysis.Class, sets []classSet) bool {
	if len(sets) == 0 {
		return v == analysis.ClassNone
	}
	found := false
	for _, s := range sets {
		if s.has(v) {
			found = true
		}
		minRank := math.MaxInt
		for c := analysis.ClassNone; c <= analysis.ClassGrease; c++ {
			if s.has(c) && domainRank(c) < minRank {
				minRank = domainRank(c)
			}
		}
		if minRank > domainRank(v) {
			return false // this connection always outranks v
		}
	}
	return found
}
