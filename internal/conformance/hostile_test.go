package conformance

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"quicspin/internal/analysis"
	"quicspin/internal/hostile"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// hostileScale mirrors diffScale but defaults smaller: the hostile chaos
// campaign runs the emulated engine three times (workers 1/4/16), so it
// uses a 5.5k-domain population unless QUICSPIN_CONFORMANCE_SCALE asks for
// more.
func hostileScale(t *testing.T) int {
	t.Helper()
	if s := diffScale(t); s != 20_000 {
		return s
	}
	return 40_000
}

// hostileWorld builds a ≥20%-hostile world with every misbehavior profile
// represented. HostileFrac exercises the hash-based assignment path in
// world generation; the test then overrides the v4 QUIC servers with a
// deterministic round-robin (every third server, profiles cycling) so
// profile coverage does not depend on assignment dice at small scales.
// IPv4-only scans see exactly the overridden set.
func hostileWorld(t *testing.T, scale int) *websim.World {
	t.Helper()
	prof := websim.DefaultProfile()
	prof.Scale = scale
	prof.HostileFrac = 0.3
	world := websim.Generate(prof)

	var v4 []*websim.Server
	for _, s := range world.Servers() {
		if s.QUIC && s.Addr.Is4() {
			v4 = append(v4, s)
		}
	}
	sort.Slice(v4, func(i, j int) bool { return v4[i].Addr.Less(v4[j].Addr) })
	profiles := hostile.Profiles()
	if len(v4) < 3*len(profiles) {
		t.Fatalf("only %d v4 QUIC servers at scale %d; need %d for full profile coverage", len(v4), scale, 3*len(profiles))
	}
	hostileN := 0
	for i, s := range v4 {
		if i%3 == 0 {
			s.Hostile = profiles[(i/3)%len(profiles)]
			hostileN++
		} else {
			s.Hostile = hostile.None
		}
	}
	if share := float64(hostileN) / float64(len(v4)); share < 0.2 {
		t.Fatalf("hostile share %.2f below the 20%% chaos floor", share)
	}
	return world
}

// renderTables renders the scan result through the full human-facing table
// pipeline; byte-identical strings mean byte-identical tables.
func renderTables(t *testing.T, res *scanner.Result) string {
	t.Helper()
	wk := analysis.Analyze(res)
	var b strings.Builder
	if err := analysis.RenderOverview(wk).Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := analysis.RenderSpinConfig(wk).Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := analysis.RenderErrorClasses(wk).Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// profilesSeen collects the hostile profiles visible in a result's
// connection error classes, and fails the test on any panic or stall.
func profilesSeen(t *testing.T, res *scanner.Result, engine string) map[hostile.Profile]int {
	t.Helper()
	seen := map[hostile.Profile]int{}
	for i := range res.Domains {
		d := &res.Domains[i]
		for j := range d.Conns {
			errStr := d.Conns[j].Err
			if errStr == "" {
				continue
			}
			switch cls := resilience.Classify(errStr); cls {
			case resilience.ClassPanic, resilience.ClassStall:
				t.Errorf("%s engine: %s hop %d: %s error leaked into results: %q", engine, d.Domain, j, cls, errStr)
			case resilience.ClassHostile:
				p := hostile.ProfileOf(errStr)
				if p == hostile.None {
					t.Errorf("%s engine: %s hop %d: hostile error with unparseable profile: %q", engine, d.Domain, j, errStr)
				}
				seen[p]++
			}
		}
	}
	return seen
}

// TestHostileChaosCampaign is the acceptance test of the hostile-endpoint
// subsystem: both engines scan a ≥20%-hostile world with zero panics and
// zero stalls, the emulated engine's rendered tables are byte-identical
// across worker counts, every misbehavior profile surfaces as a
// deterministic "hostile: <name>" error class, and the engines pass the
// full differential contract over the same world.
func TestHostileChaosCampaign(t *testing.T) {
	scale := hostileScale(t)
	world := hostileWorld(t, scale)
	const week = 1
	base := scanner.Config{Week: week, Seed: 20230515 + week}

	// Emulated engine at three worker counts: identical tables.
	var tables []string
	var emuRes *scanner.Result
	for _, workers := range []int{1, 4, 16} {
		cfg := base
		cfg.Engine = scanner.EngineEmulated
		cfg.Workers = workers
		res, err := scanner.Run(world, cfg)
		if err != nil {
			t.Fatalf("emulated engine (workers=%d): %v", workers, err)
		}
		tables = append(tables, renderTables(t, res))
		emuRes = res
	}
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Errorf("rendered tables differ between workers=1 and workers=%d:\n--- workers=1 ---\n%s\n--- other ---\n%s",
				[]int{1, 4, 16}[i], tables[0], tables[i])
		}
	}

	fastCfg := base
	fastCfg.Engine = scanner.EngineFast
	fastRes, err := scanner.Run(world, fastCfg)
	if err != nil {
		t.Fatalf("fast engine: %v", err)
	}

	// Every profile must be visible as a hostile error class in both
	// engines' outputs, with zero panics and stalls.
	for _, eng := range []struct {
		name string
		res  *scanner.Result
	}{{"emulated", emuRes}, {"fast", fastRes}} {
		seen := profilesSeen(t, eng.res, eng.name)
		var missing []string
		for _, p := range hostile.Profiles() {
			if seen[p] == 0 {
				missing = append(missing, p.String())
			}
		}
		if len(missing) > 0 {
			t.Errorf("%s engine: profiles never classified: %v (seen %v)", eng.name, missing, fmt.Sprint(seen))
		}
	}

	// Full differential contract over the hostile world.
	rep, err := RunDiff(DiffConfig{World: world, Week: week, Seed: base.Seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if rep.QUICDomains == 0 || rep.ClassChecked == 0 {
		t.Error("hostile differential population is vacuous")
	}
	if !rep.OK() {
		t.Fatalf("engines disagree on the hostile world:\n%s", rep.Summary())
	}
}
