package conformance

import (
	"os"
	"strconv"
	"testing"

	"quicspin/internal/dns"
	"quicspin/internal/resilience"
	"quicspin/internal/websim"
)

// diffScale returns the population scale divisor of the differential test.
// The default keeps the tier-1 suite fast; the acceptance-level run at
// scale 2000 (~108k domains) is selected with
//
//	QUICSPIN_CONFORMANCE_SCALE=2000 go test ./internal/conformance
//
// or via `spinscan -conformance` (which always runs at its -scale flag).
func diffScale(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("QUICSPIN_CONFORMANCE_SCALE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("QUICSPIN_CONFORMANCE_SCALE=%q is not a positive integer", v)
		}
		return n
	}
	return 20_000
}

func TestDifferentialEngines(t *testing.T) {
	scale := diffScale(t)
	prof := websim.DefaultProfile()
	prof.Scale = scale
	world := websim.Generate(prof)
	const week = 1
	rep, err := RunDiff(DiffConfig{
		World: world,
		Week:  week,
		Seed:  prof.Seed + week, // matches the spinscan campaign loop
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if rep.Domains != len(world.Domains) {
		t.Errorf("compared %d domains, world has %d", rep.Domains, len(world.Domains))
	}
	if rep.QUICDomains == 0 {
		t.Error("no QUIC domains in the differential population; the check is vacuous")
	}
	if rep.ClassChecked == 0 {
		t.Error("no classifications checked; the check is vacuous")
	}
	if !rep.OK() {
		t.Fatalf("engines disagree:\n%s", rep.Summary())
	}
}

// TestDifferentialEnginesUnderRetries re-runs the differential contract
// with injected transient failures (a DNS schedule plus fail-first network
// outages) and recovery retries enabled: the fast engine must mirror the
// emulated engine's retry behaviour exactly — same recovered resolutions,
// same redirect chains, same classifications. Workers is 1 because
// fail-first attempt counters live per worker engine.
func TestDifferentialEnginesUnderRetries(t *testing.T) {
	prof := websim.DefaultProfile()
	prof.Scale = 30_000
	world := websim.Generate(prof)
	const week = 1

	// Fail the first connection attempt against a spread of ground-truth
	// addresses, and time out the first two lookups of every third domain.
	fail := map[string]int{}
	for i, d := range world.Domains {
		if i%5 == 0 && d.V4.IsValid() {
			fail[d.V4.String()] = 1
		}
	}
	schedule := func(name string, _ dns.RType) int {
		if len(name)%3 == 0 {
			return 2
		}
		return 0
	}

	rep, err := RunDiff(DiffConfig{
		World:        world,
		Week:         week,
		Seed:         prof.Seed + week,
		Workers:      1,
		Retry:        resilience.RetryPolicy{MaxRetries: 3},
		DNSSchedule:  schedule,
		NetFailFirst: fail,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if rep.QUICDomains == 0 || rep.ClassChecked == 0 {
		t.Error("retry differential population is vacuous")
	}
	if !rep.OK() {
		t.Fatalf("engines disagree under retries:\n%s", rep.Summary())
	}
}

func TestDifferentialEnginesIPv6(t *testing.T) {
	scale := diffScale(t)
	if scale < 20_000 {
		// The acceptance-scale IPv4 run already covers the large
		// population; keep the AAAA view at the fast default.
		scale = 20_000
	}
	prof := websim.DefaultProfile()
	prof.Scale = scale
	world := websim.Generate(prof)
	const week = 2
	rep, err := RunDiff(DiffConfig{
		World: world,
		Week:  week,
		IPv6:  true,
		Seed:  prof.Seed + week,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if !rep.OK() {
		t.Fatalf("engines disagree on the AAAA view:\n%s", rep.Summary())
	}
}

func TestInvariantsChaosSweep(t *testing.T) {
	cases := DefaultChaosCases()
	if len(cases) < 10 {
		t.Fatalf("chaos sweep has only %d cases", len(cases))
	}
	rep := CheckInvariants(cases)
	for i := range rep.Cases {
		cr := &rep.Cases[i]
		t.Logf("%s: %d/%d short packets, samples raw=%d guarded=%d vec=%d",
			cr.Case.Name, cr.ShortPackets[0], cr.ShortPackets[1],
			cr.Samples["raw"], cr.Samples["guarded"], cr.Samples["vec"])
	}
	if !rep.OK() {
		t.Fatalf("invariant violations:\n%s", rep.Summary())
	}
}

func TestChaosCaseDeterminism(t *testing.T) {
	c := DefaultChaosCases()[3] // a lossy case with reordering
	a, b := RunChaosCase(c), RunChaosCase(c)
	if a.ShortPackets != b.ShortPackets {
		t.Errorf("packet counts differ across replays: %v vs %v", a.ShortPackets, b.ShortPackets)
	}
	for _, name := range []string{"raw", "guarded", "vec"} {
		if a.Samples[name] != b.Samples[name] {
			t.Errorf("%s sample counts differ across replays: %d vs %d", name, a.Samples[name], b.Samples[name])
		}
	}
}
