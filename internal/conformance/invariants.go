package conformance

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
	"quicspin/internal/wire"
)

// ChaosCase is one deterministic netem schedule an invariant run drives a
// full QUIC-lite exchange through.
type ChaosCase struct {
	// Name labels the case in reports.
	Name string
	// Path shapes both directions between client and server.
	Path netem.PathConfig
	// Seed drives every random decision of the case (loss dice, spin
	// policy dice, connection IDs). Equal cases replay identically.
	Seed int64
	// BodyBytes is the response size; zero means 64 KiB (enough bursts for
	// several spin periods).
	BodyBytes int
	// Timeout bounds the virtual exchange; zero means 30 s.
	Timeout time.Duration
}

func (c ChaosCase) bodyBytes() int {
	if c.BodyBytes == 0 {
		return 64 * 1024
	}
	return c.BodyBytes
}

func (c ChaosCase) timeout() time.Duration {
	if c.Timeout == 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

// DefaultChaosCases returns the standard sweep: loss × reordering ×
// duplication over a 10 ms one-way path, plus a jitter-free pristine case.
//
// The sweep keeps Jitter + ReorderExtra ≤ Delay. Under that constraint two
// consecutive accepted spin edges in one direction are at least one
// one-way delay apart, which is what makes the RTT floor invariant provable
// rather than merely probable.
func DefaultChaosCases() []ChaosCase {
	const delay = 10 * time.Millisecond
	cases := []ChaosCase{{
		Name: "pristine",
		Path: netem.PathConfig{Delay: delay},
		Seed: 1,
	}}
	seed := int64(2)
	for _, loss := range []float64{0, 0.05, 0.2} {
		for _, reorder := range []float64{0, 0.1, 0.3} {
			for _, dup := range []float64{0, 0.1} {
				if loss == 0 && reorder == 0 && dup == 0 {
					continue // covered by dedicated jitter-only case below
				}
				cases = append(cases, ChaosCase{
					Name: fmt.Sprintf("loss%.0f%%+reorder%.0f%%+dup%.0f%%", loss*100, reorder*100, dup*100),
					Path: netem.PathConfig{
						Delay:         delay,
						Jitter:        2 * time.Millisecond,
						LossRate:      loss,
						ReorderRate:   reorder,
						ReorderExtra:  3 * time.Millisecond,
						DuplicateRate: dup,
					},
					Seed: seed,
				})
				seed++
			}
		}
	}
	cases = append(cases, ChaosCase{
		Name: "jitter-only",
		Path: netem.PathConfig{Delay: delay, Jitter: 2 * time.Millisecond},
		Seed: seed,
	})
	return cases
}

// Violation is one broken invariant.
type Violation struct {
	Case     string
	Observer string // "raw", "guarded", "vec", or "harness"
	Detail   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Case, v.Observer, v.Detail)
}

// CaseResult is the outcome of one chaos case.
type CaseResult struct {
	Case ChaosCase
	// ShortPackets counts tapped short-header packets per direction
	// (ClientToServer, ServerToClient).
	ShortPackets [2]int
	// Samples maps observer name to its total sample count.
	Samples map[string]int
	// Completed reports whether the HTTP exchange finished in time.
	Completed bool
	// Violations lists every invariant broken during the case.
	Violations []Violation
}

// InvariantReport aggregates a chaos sweep.
type InvariantReport struct {
	Cases []CaseResult
}

// OK reports whether every case held every invariant.
func (r *InvariantReport) OK() bool {
	for i := range r.Cases {
		if len(r.Cases[i].Violations) > 0 {
			return false
		}
	}
	return true
}

// Summary renders a short human-readable report.
func (r *InvariantReport) Summary() string {
	var b strings.Builder
	total, bad := 0, 0
	for i := range r.Cases {
		total++
		if len(r.Cases[i].Violations) > 0 {
			bad++
		}
	}
	fmt.Fprintf(&b, "invariants: %d chaos cases, %d with violations", total, bad)
	for i := range r.Cases {
		for _, v := range r.Cases[i].Violations {
			b.WriteString("\n  ")
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// CheckInvariants runs every case and collects the results.
func CheckInvariants(cases []ChaosCase) *InvariantReport {
	rep := &InvariantReport{Cases: make([]CaseResult, len(cases))}
	for i, c := range cases {
		rep.Cases[i] = RunChaosCase(c)
	}
	return rep
}

// tapState parses tapped datagrams and feeds three observers with
// different validation settings, checking invariants on every sample.
type tapState struct {
	res *CaseResult
	// observers in checking order: raw (no guards), guarded (packet-number
	// guard), vec (guard + Valid Edge Counter).
	raw, guarded, vec *core.Observer
	// largest tracks the per-direction largest packet number for header
	// packet-number expansion.
	largest [2]uint64
	havePN  [2]bool
	// floor is the path's one-way delay; rawFloor marks schedules where
	// even the unguarded observer must respect it (no reordering and no
	// duplication: delivery order equals send order per direction).
	floor    time.Duration
	rawFloor bool
}

func (ts *tapState) violate(observer, format string, args ...any) {
	ts.res.Violations = append(ts.res.Violations, Violation{
		Case: ts.res.Case.Name, Observer: observer, Detail: fmt.Sprintf(format, args...),
	})
}

// observe feeds one short-header observation to every observer and checks
// the per-sample invariants.
func (ts *tapState) observe(dir core.Direction, ob core.Observation) {
	for _, o := range []struct {
		name string
		obs  *core.Observer
	}{{"raw", ts.raw}, {"guarded", ts.guarded}, {"vec", ts.vec}} {
		before := len(o.obs.Samples())
		s, ok := o.obs.Observe(dir, ob)
		after := len(o.obs.Samples())
		// Edge counts are monotone: one Observe call appends at most one
		// sample, and never removes any.
		want := before
		if ok {
			want++
		}
		if after != want {
			ts.violate(o.name, "sample count jumped from %d to %d on one packet", before, after)
		}
		if !ok {
			continue
		}
		// Spin-RTT floor: two accepted edges in one direction are at least
		// one one-way delay apart. The unguarded observer only inherits the
		// floor when the path cannot reorder or duplicate.
		if o.name == "raw" && !ts.rawFloor {
			continue
		}
		if s.RTT < ts.floor {
			ts.violate(o.name, "sample %v at %v undercuts one-way delay floor %v", s.RTT, s.T, ts.floor)
		}
	}
}

func (ts *tapState) tap(now time.Time, from, to string, data []byte) {
	dir := core.ClientToServer
	if from == "server" {
		dir = core.ServerToClient
	}
	for len(data) > 0 {
		largest := wire.NoAckedPacket
		if ts.havePN[dir] {
			largest = ts.largest[dir]
		}
		hdr, _, consumed, err := wire.ParseHeader(data, transport.DefaultConnIDLen, largest)
		if err != nil {
			ts.violate("harness", "unparseable datagram from %s: %v", from, err)
			return
		}
		if !hdr.IsLong {
			ts.res.ShortPackets[dir]++
			if !ts.havePN[dir] || hdr.PacketNumber > ts.largest[dir] {
				ts.largest[dir] = hdr.PacketNumber
				ts.havePN[dir] = true
			}
			ts.observe(dir, core.Observation{T: now, PN: hdr.PacketNumber, Spin: hdr.SpinBit, VEC: hdr.Reserved})
		}
		data = data[consumed:]
	}
}

// RunChaosCase drives one client/server HTTP/3-lite exchange through the
// case's netem schedule with an on-path three-observer tap, and returns the
// observed invariant checks.
func RunChaosCase(c ChaosCase) CaseResult {
	res := CaseResult{Case: c, Samples: map[string]int{}}
	start := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	loop := sim.NewLoop(start)
	rng := rand.New(rand.NewSource(c.Seed))
	net := netem.New(loop, c.Path, rng)

	ts := &tapState{
		res:      &res,
		raw:      core.NewObserver(core.ObserverConfig{}),
		guarded:  core.NewObserver(core.ObserverConfig{UsePacketNumberGuard: true}),
		vec:      core.NewObserver(core.ObserverConfig{UsePacketNumberGuard: true, UseVEC: true}),
		floor:    c.Path.Delay,
		rawFloor: c.Path.ReorderRate == 0 && c.Path.DuplicateRate == 0,
	}
	net.SetTap(ts.tap)

	// Server: spin-enabled policy with the VEC extension, serving one page.
	body := make([]byte, c.bodyBytes())
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{Status: 200, Headers: map[string]string{"server": "chaos/1.0"}, Body: body}
	})
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng, SpinPolicy: core.Policy{Mode: core.ModeSpin}, EnableVEC: true}
	})
	server := netem.NewServerHost(net, "server", ep)
	server.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			srv.Serve("client", conn, now)
		}
	}

	conn := transport.NewClientConn(transport.Config{Rng: rng, EnableVEC: true}, start)
	client := netem.NewClientHost(net, "client", "server", conn)
	hc := h3.NewClientConn(conn)
	reqID, err := hc.Do(&h3.Request{Method: "GET", Authority: "chaos.test", Path: "/", Headers: map[string]string{}})
	if err != nil {
		ts.violate("harness", "queueing request: %v", err)
		return res
	}
	client.OnActivity = func(c *transport.Conn, now time.Time) {
		if res.Completed {
			return
		}
		if resp, complete, err := hc.Response(reqID); complete {
			res.Completed = err == nil && resp != nil && resp.Status == 200
		}
	}
	client.Kick()

	deadline := start.Add(c.timeout())
	for !res.Completed && loop.Now().Before(deadline) {
		if !loop.Step() {
			break
		}
	}
	conn.Close(loop.Now(), 0, "conformance done")
	client.Kick()
	for loop.Step() {
	}

	res.Samples["raw"] = len(ts.raw.Samples())
	res.Samples["guarded"] = len(ts.guarded.Samples())
	res.Samples["vec"] = len(ts.vec.Samples())

	if !res.Completed {
		ts.violate("harness", "exchange did not complete within %v", c.timeout())
	}
	if res.ShortPackets[0] == 0 || res.ShortPackets[1] == 0 {
		ts.violate("harness", "tap saw no short-header packets (c→s %d, s→c %d)", res.ShortPackets[0], res.ShortPackets[1])
	}
	if res.Samples["guarded"] == 0 {
		// A spinning 64 KiB transfer spans several round trips; a guarded
		// observer that produced nothing means the harness is broken.
		ts.violate("guarded", "no spin-RTT samples on a spinning connection")
	}
	checkVecSubset(ts)
	return res
}

// checkVecSubset asserts that the VEC-validated sample multiset is
// contained in the guarded observer's multiset: both accept the identical
// packet series (same packet-number guard), and every VEC-valid sample
// spans two adjacent edges of that series, so it must also appear — at the
// same time, with the same duration — in the guarded observer's output.
func checkVecSubset(ts *tapState) {
	type key struct {
		dir core.Direction
		t   int64
		rtt time.Duration
	}
	avail := map[key]int{}
	for _, s := range ts.guarded.Samples() {
		avail[key{s.Dir, s.T.UnixNano(), s.RTT}]++
	}
	for _, s := range ts.vec.Samples() {
		k := key{s.Dir, s.T.UnixNano(), s.RTT}
		if avail[k] == 0 {
			ts.violate("vec", "sample (%v, %v, dir %d) not in guarded observer's set", s.T, s.RTT, s.Dir)
			continue
		}
		avail[k]--
	}
}
