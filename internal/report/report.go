// Package report renders the study's tables and figures as aligned text
// and CSV, mirroring the layout of the paper's Tables 1–4 and the
// histogram figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (minimal quoting: cells containing
// commas or quotes are quoted).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Count formats an integer with thousands separators, as in the paper's
// large-population tables.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
