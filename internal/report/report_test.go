package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1. Overview", "List", "Total", "Spin")
	tb.AddRow("Toplists", "2,732,702", "6.9%")
	tb.AddRow("CZDS", "216,520,521", "10.2%")
	out := tb.String()
	if !strings.Contains(out, "Table 1. Overview") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "Total" and its values start at the same offset.
	hdrIdx := strings.Index(lines[1], "Total")
	rowIdx := strings.Index(lines[3], "2,732,702")
	if hdrIdx != rowIdx {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestAddRowPadding(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("x", "Org", "Count")
	tb.AddRow(`Weird, "Org"`, "5")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "Org,Count\n\"Weird, \"\"Org\"\"\",5\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestCount(t *testing.T) {
	cases := map[int]string{
		0:         "0",
		999:       "999",
		1000:      "1,000",
		216520521: "216,520,521",
		-1234567:  "-1,234,567",
	}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}
