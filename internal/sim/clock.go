// Package sim provides the time substrate shared by the QUIC-lite transport,
// the network emulator, and the measurement campaign engine: an abstract
// Clock, a real-time implementation, and a deterministic virtual-time event
// loop that lets emulated seconds cost microseconds of CPU.
package sim

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time. The transport and all emulation code take
// a Clock instead of calling time.Now so that experiments can run in virtual
// time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// event is a scheduled callback in a virtual-time Loop. Events are recycled
// through the Loop's freelist once fired or reaped; gen distinguishes the
// incarnations so a stale Timer cannot cancel a recycled event.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker for deterministic FIFO ordering at equal times
	gen uint64 // incarnation counter, bumped on every recycle
	fn  func(now time.Time)
	// canceled marks an event removed before firing.
	canceled bool
	index    int
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Loop is a deterministic discrete-event simulator and virtual Clock.
// Callbacks scheduled at the same instant fire in scheduling order.
// Loop is not safe for concurrent use; the whole point is that a simulation
// is single-threaded and reproducible.
type Loop struct {
	now   time.Time
	seq   uint64
	queue eventQueue
	// free recycles fired/reaped events: a campaign schedules millions of
	// short-lived timers, and reusing their event structs keeps the loop's
	// steady-state allocation at zero.
	free []*event
}

// NewLoop returns a Loop whose clock starts at start.
func NewLoop(start time.Time) *Loop {
	return &Loop{now: start}
}

// Now implements Clock.
func (l *Loop) Now() time.Time { return l.now }

// Timer is a value handle to a scheduled callback that can be canceled. The
// zero Timer is valid and Stop on it is a no-op. Timers stay valid after the
// event fires: the generation check makes Stop on a recycled event a no-op
// instead of canceling an unrelated later event.
type Timer struct {
	e   *event
	gen uint64
}

// Stop cancels the timer. Stopping an already-fired or already-stopped timer
// is a no-op. It reports whether the timer was still pending.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.gen != t.gen || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}

// At schedules fn to run when the virtual clock reaches at. Scheduling in
// the past runs the callback at the current time on the next step.
func (l *Loop) At(at time.Time, fn func(now time.Time)) Timer {
	if at.Before(l.now) {
		at = l.now
	}
	var e *event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free = l.free[:n-1]
		e.at, e.fn, e.canceled = at, fn, false
	} else {
		e = &event{at: at, fn: fn}
	}
	e.seq = l.seq
	l.seq++
	heap.Push(&l.queue, e)
	return Timer{e: e, gen: e.gen}
}

// After schedules fn to run after d of virtual time.
func (l *Loop) After(d time.Duration, fn func(now time.Time)) Timer {
	return l.At(l.now.Add(d), fn)
}

// recycle returns a popped event to the freelist, invalidating outstanding
// Timer handles to it.
func (l *Loop) recycle(e *event) {
	e.gen++
	e.fn = nil // release the closure
	l.free = append(l.free, e)
}

// Step fires the earliest pending event, advancing the clock to its
// deadline. It reports whether an event was fired.
func (l *Loop) Step() bool {
	for l.queue.Len() > 0 {
		e := heap.Pop(&l.queue).(*event)
		if e.canceled {
			l.recycle(e)
			continue
		}
		l.now = e.at
		fn := e.fn
		// Recycle before firing: the callback may schedule new events, and
		// the freed struct is immediately reusable for them.
		l.recycle(e)
		fn(l.now)
		return true
	}
	return false
}

// Run fires events until the queue is empty and returns the number fired.
func (l *Loop) Run() int {
	n := 0
	for l.Step() {
		n++
	}
	return n
}

// RunUntil fires events with deadlines at or before t, then advances the
// clock to t. Events scheduled while running are processed if they fall
// within the horizon.
func (l *Loop) RunUntil(t time.Time) {
	for l.queue.Len() > 0 {
		e := l.queue[0]
		if e.canceled {
			l.recycle(heap.Pop(&l.queue).(*event))
			continue
		}
		if e.at.After(t) {
			break
		}
		l.Step()
	}
	if t.After(l.now) {
		l.now = t
	}
}

// Pending returns the number of live (non-canceled) events in the queue.
func (l *Loop) Pending() int {
	n := 0
	for _, e := range l.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// ManualClock is a trivially settable Clock for unit tests that do not need
// an event queue. It is safe for concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a ManualClock set to start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// Set moves the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}
