package sim

import (
	"testing"
	"time"
)

var epoch = time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop(epoch)
	var order []int
	l.After(30*time.Millisecond, func(time.Time) { order = append(order, 3) })
	l.After(10*time.Millisecond, func(time.Time) { order = append(order, 1) })
	l.After(20*time.Millisecond, func(time.Time) { order = append(order, 2) })
	if n := l.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order = %v", order)
	}
	if got := l.Now(); !got.Equal(epoch.Add(30 * time.Millisecond)) {
		t.Errorf("clock = %v, want epoch+30ms", got)
	}
}

func TestLoopSameInstantFIFO(t *testing.T) {
	l := NewLoop(epoch)
	var order []int
	at := epoch.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		l.At(at, func(time.Time) { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestLoopCancellation(t *testing.T) {
	l := NewLoop(epoch)
	fired := false
	tm := l.After(time.Second, func(time.Time) { fired = true })
	if !tm.Stop() {
		t.Error("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	if l.Run() != 0 || fired {
		t.Error("canceled event fired")
	}
}

func TestLoopReschedulingDuringRun(t *testing.T) {
	l := NewLoop(epoch)
	count := 0
	var tick func(time.Time)
	tick = func(time.Time) {
		count++
		if count < 4 {
			l.After(10*time.Millisecond, tick)
		}
	}
	l.After(10*time.Millisecond, tick)
	l.Run()
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if got, want := l.Now(), epoch.Add(40*time.Millisecond); !got.Equal(want) {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestRunUntil(t *testing.T) {
	l := NewLoop(epoch)
	var fired []int
	l.After(10*time.Millisecond, func(time.Time) { fired = append(fired, 1) })
	l.After(50*time.Millisecond, func(time.Time) { fired = append(fired, 2) })
	l.RunUntil(epoch.Add(20 * time.Millisecond))
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v, want [1]", fired)
	}
	if !l.Now().Equal(epoch.Add(20 * time.Millisecond)) {
		t.Errorf("clock = %v", l.Now())
	}
	if l.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", l.Pending())
	}
	l.RunUntil(epoch.Add(time.Second))
	if len(fired) != 2 {
		t.Errorf("fired = %v, want [1 2]", fired)
	}
}

func TestSchedulingInPastRunsAtNow(t *testing.T) {
	l := NewLoop(epoch)
	l.RunUntil(epoch.Add(time.Second))
	var at time.Time
	l.At(epoch, func(now time.Time) { at = now })
	l.Run()
	if !at.Equal(epoch.Add(time.Second)) {
		t.Errorf("past event ran at %v, want now", at)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(epoch)
	if !c.Now().Equal(epoch) {
		t.Error("initial time wrong")
	}
	c.Advance(time.Minute)
	if !c.Now().Equal(epoch.Add(time.Minute)) {
		t.Error("Advance wrong")
	}
	c.Set(epoch)
	if !c.Now().Equal(epoch) {
		t.Error("Set wrong")
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := RealClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("RealClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func BenchmarkLoopScheduleAndFire(b *testing.B) {
	l := NewLoop(epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.After(time.Duration(i%100)*time.Microsecond, func(time.Time) {})
		if i%64 == 63 {
			l.Run()
		}
	}
	l.Run()
}
