package dns

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
)

func backend() MapBackend {
	return MapBackend{
		"www.example.com": {
			A:    []netip.Addr{netip.MustParseAddr("192.0.2.1")},
			AAAA: []netip.Addr{netip.MustParseAddr("2001:db8::1")},
		},
		"v4only.example.com": {A: []netip.Addr{netip.MustParseAddr("192.0.2.2")}},
	}
}

func TestLookupA(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	addrs, err := r.Lookup("www.example.com", TypeA)
	if err != nil || len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("Lookup = (%v, %v)", addrs, err)
	}
	addrs, err = r.Lookup("www.example.com", TypeAAAA)
	if err != nil || addrs[0] != netip.MustParseAddr("2001:db8::1") {
		t.Fatalf("AAAA = (%v, %v)", addrs, err)
	}
}

func TestNormalization(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	if _, err := r.Lookup("WWW.Example.COM.", TypeA); err != nil {
		t.Errorf("case/dot-normalised lookup failed: %v", err)
	}
	if Normalize("Foo.Bar.") != "foo.bar" {
		t.Errorf("Normalize = %q", Normalize("Foo.Bar."))
	}
}

func TestNXDomain(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	_, err := r.Lookup("missing.example.com", TypeA)
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want NXDOMAIN", err)
	}
}

func TestNoRecord(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	_, err := r.Lookup("v4only.example.com", TypeAAAA)
	if !errors.Is(err, ErrNoRecord) {
		t.Errorf("err = %v, want ErrNoRecord", err)
	}
}

func TestTimeoutInjection(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(42)))
	r.TimeoutRate = 0.5
	timeouts := 0
	for i := 0; i < 1000; i++ {
		if _, err := r.Lookup("www.example.com", TypeA); errors.Is(err, ErrTimeout) {
			timeouts++
		}
	}
	if timeouts < 400 || timeouts > 600 {
		t.Errorf("timeouts = %d/1000, want ~500", timeouts)
	}
	st := r.Stats()
	if st.Queries != 1000 || st.Timeouts != timeouts || st.Resolved != 1000-timeouts {
		t.Errorf("stats = %+v", st)
	}
}

func TestResultIsACopy(t *testing.T) {
	b := backend()
	r := NewResolver(b, rand.New(rand.NewSource(1)))
	addrs, _ := r.Lookup("www.example.com", TypeA)
	addrs[0] = netip.MustParseAddr("203.0.113.99")
	again, _ := r.Lookup("www.example.com", TypeA)
	if again[0] != netip.MustParseAddr("192.0.2.1") {
		t.Error("Lookup result aliases backend data")
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" {
		t.Error("RType names wrong")
	}
}
