package dns

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"quicspin/internal/telemetry"
)

func backend() MapBackend {
	return MapBackend{
		"www.example.com": {
			A:    []netip.Addr{netip.MustParseAddr("192.0.2.1")},
			AAAA: []netip.Addr{netip.MustParseAddr("2001:db8::1")},
		},
		"v4only.example.com": {A: []netip.Addr{netip.MustParseAddr("192.0.2.2")}},
	}
}

func TestLookupA(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	addrs, err := r.Lookup("www.example.com", TypeA)
	if err != nil || len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("Lookup = (%v, %v)", addrs, err)
	}
	addrs, err = r.Lookup("www.example.com", TypeAAAA)
	if err != nil || addrs[0] != netip.MustParseAddr("2001:db8::1") {
		t.Fatalf("AAAA = (%v, %v)", addrs, err)
	}
}

func TestNormalization(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	if _, err := r.Lookup("WWW.Example.COM.", TypeA); err != nil {
		t.Errorf("case/dot-normalised lookup failed: %v", err)
	}
	if Normalize("Foo.Bar.") != "foo.bar" {
		t.Errorf("Normalize = %q", Normalize("Foo.Bar."))
	}
}

func TestNXDomain(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	_, err := r.Lookup("missing.example.com", TypeA)
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want NXDOMAIN", err)
	}
}

func TestNoRecord(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	_, err := r.Lookup("v4only.example.com", TypeAAAA)
	if !errors.Is(err, ErrNoRecord) {
		t.Errorf("err = %v, want ErrNoRecord", err)
	}
}

func TestTimeoutInjection(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(42)))
	r.TimeoutRate = 0.5
	timeouts := 0
	for i := 0; i < 1000; i++ {
		if _, err := r.Lookup("www.example.com", TypeA); errors.Is(err, ErrTimeout) {
			timeouts++
		}
	}
	if timeouts < 400 || timeouts > 600 {
		t.Errorf("timeouts = %d/1000, want ~500", timeouts)
	}
	st := r.Stats()
	if st.Queries != 1000 || st.Timeouts != timeouts || st.Resolved != 1000-timeouts {
		t.Errorf("stats = %+v", st)
	}
}

func TestResultIsACopy(t *testing.T) {
	b := backend()
	r := NewResolver(b, rand.New(rand.NewSource(1)))
	addrs, _ := r.Lookup("www.example.com", TypeA)
	addrs[0] = netip.MustParseAddr("203.0.113.99")
	again, _ := r.Lookup("www.example.com", TypeA)
	if again[0] != netip.MustParseAddr("192.0.2.1") {
		t.Error("Lookup result aliases backend data")
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" {
		t.Error("RType names wrong")
	}
}

func TestCacheHitMiss(t *testing.T) {
	reg := telemetry.New()
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	r.EnableCache()
	r.SetTelemetry(reg)

	for i := 0; i < 3; i++ {
		if _, err := r.Lookup("www.example.com", TypeA); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	// Negative outcomes are cached too.
	for i := 0; i < 2; i++ {
		if _, err := r.Lookup("nope.example.com", TypeA); !errors.Is(err, ErrNXDomain) {
			t.Fatalf("nxdomain lookup %d: %v", i, err)
		}
	}

	st := r.Stats()
	if st.Queries != 5 || st.CacheHits != 3 {
		t.Errorf("stats = %+v, want Queries 5, CacheHits 3", st)
	}
	if st.Resolved != 3 || st.NXDomain != 2 {
		t.Errorf("outcomes replayed wrong: %+v", st)
	}
	snap := reg.Snapshot()
	if snap.Counters["dns_queries_total"] != 5 {
		t.Errorf("dns_queries_total = %d, want 5", snap.Counters["dns_queries_total"])
	}
	if snap.Counters["dns_cache_hits_total"] != 3 {
		t.Errorf("dns_cache_hits_total = %d, want 3", snap.Counters["dns_cache_hits_total"])
	}
	if snap.Counters["dns_cache_misses_total"] != 2 {
		t.Errorf("dns_cache_misses_total = %d, want 2", snap.Counters["dns_cache_misses_total"])
	}
	if got := snap.Counters[`dns_errors_total{class="nxdomain"}`]; got != 2 {
		t.Errorf("nxdomain errors = %d, want 2", got)
	}
}

func TestCacheDoesNotRetainTimeouts(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(3)))
	r.EnableCache()
	// Phase 1: every query times out. If timeouts were cached, the error
	// would stick for good.
	r.TimeoutRate = 1
	for i := 0; i < 3; i++ {
		if _, err := r.Lookup("www.example.com", TypeA); !errors.Is(err, ErrTimeout) {
			t.Fatalf("lookup %d: want timeout, got %v", i, err)
		}
	}
	// Phase 2: the auth recovers; the name must resolve (nothing cached).
	r.TimeoutRate = 0
	if _, err := r.Lookup("www.example.com", TypeA); err != nil {
		t.Fatalf("timeout was cached: %v", err)
	}
	// Phase 3: successes ARE cached, so renewed auth flakiness is
	// invisible for known names.
	r.TimeoutRate = 1
	if _, err := r.Lookup("www.example.com", TypeA); err != nil {
		t.Fatalf("cached success not served: %v", err)
	}
}

func TestScheduleFailsFirstAttempts(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	r.SetSchedule(func(name string, tt RType) int {
		if name == "www.example.com" && tt == TypeA {
			return 2
		}
		return 0
	})
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := r.LookupAttempt("www.example.com", TypeA, attempt); !errors.Is(err, ErrTimeout) {
			t.Fatalf("attempt %d: want timeout, got %v", attempt, err)
		}
	}
	if addrs, err := r.LookupAttempt("www.example.com", TypeA, 2); err != nil || len(addrs) != 1 {
		t.Fatalf("attempt 2: want success, got (%v, %v)", addrs, err)
	}
	// Unscheduled names and record types are untouched.
	if _, err := r.LookupAttempt("www.example.com", TypeAAAA, 0); err != nil {
		t.Fatalf("AAAA attempt 0: %v", err)
	}
	// NXDOMAIN outranks the schedule (name does not exist, so there is no
	// server to time out).
	if _, err := r.LookupAttempt("missing.example.com", TypeA, 0); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("missing name: want NXDOMAIN, got %v", err)
	}
}

func TestScheduleOutranksCache(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	r.EnableCache()
	r.SetSchedule(func(name string, tt RType) int {
		if name == "www.example.com" {
			return 1
		}
		return 0
	})
	// Warm the cache with a successful attempt-1 lookup first: a scheduled
	// attempt-0 timeout must still fire afterwards, or injected failures
	// would depend on cache warm-up order across workers.
	if _, err := r.LookupAttempt("www.example.com", TypeA, 1); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if _, err := r.LookupAttempt("www.example.com", TypeA, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("scheduled timeout suppressed by cache: %v", err)
	}
	// And the timeout was not cached.
	if _, err := r.LookupAttempt("www.example.com", TypeA, 1); err != nil {
		t.Fatalf("post-timeout attempt 1: %v", err)
	}
}

func TestCachedResultIsACopy(t *testing.T) {
	r := NewResolver(backend(), rand.New(rand.NewSource(1)))
	r.EnableCache()
	a1, _ := r.Lookup("www.example.com", TypeA)
	a1[0] = netip.MustParseAddr("198.51.100.99") // clobber the returned slice
	a2, err := r.Lookup("www.example.com", TypeA)
	if err != nil || a2[0] != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("cache entry was mutated through a returned slice: (%v, %v)", a2, err)
	}
}
