// Package dns provides the name-resolution substrate of the measurement
// campaign. The paper resolves >200 M domains through real DNS; this
// package substitutes a deterministic synthetic resolver backed by zone
// data (from internal/websim) with configurable failure modes, reproducing
// the Total→Resolved attrition visible in Tables 1 and 4.
package dns

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"sync"

	"quicspin/internal/telemetry"
)

// Common resolution errors.
var (
	// ErrNXDomain reports a name that does not exist.
	ErrNXDomain = errors.New("dns: NXDOMAIN")
	// ErrTimeout reports an unresponsive authoritative server.
	ErrTimeout = errors.New("dns: query timed out")
	// ErrNoRecord reports a name that exists but has no record of the
	// queried type (e.g. AAAA query for a v4-only host).
	ErrNoRecord = errors.New("dns: no record of requested type")
)

// RType selects the record type of a query.
type RType int

const (
	// TypeA queries IPv4 addresses.
	TypeA RType = iota
	// TypeAAAA queries IPv6 addresses.
	TypeAAAA
)

// String returns the conventional record-type name.
func (t RType) String() string {
	if t == TypeAAAA {
		return "AAAA"
	}
	return "A"
}

// Record is the address data of one name.
type Record struct {
	A    []netip.Addr
	AAAA []netip.Addr
}

// Backend supplies ground-truth zone data.
type Backend interface {
	// Zone returns the record for a fully-qualified name (no trailing
	// dot), and whether the name exists.
	Zone(name string) (Record, bool)
}

// MapBackend is a Backend over a plain map.
type MapBackend map[string]Record

// Zone implements Backend.
func (m MapBackend) Zone(name string) (Record, bool) {
	r, ok := m[name]
	return r, ok
}

// Resolver resolves names against a Backend with injected failures. It is
// safe for concurrent use.
type Resolver struct {
	backend Backend
	// TimeoutRate is the probability that a query times out even though
	// the name exists (lame delegations, rate-limited auths, …).
	TimeoutRate float64

	mu  sync.Mutex
	rng *rand.Rand

	stats Stats
	cache map[cacheKey]cacheEntry

	// schedule, when set, injects transient failures as a pure function of
	// (name, type, attempt): the first schedule(name, t) attempts time out,
	// later attempts resolve normally. See SetSchedule.
	schedule func(name string, t RType) int

	tmQueries *telemetry.Counter
	tmHits    *telemetry.Counter
	tmMisses  *telemetry.Counter
	tmErrs    map[string]*telemetry.Counter
}

// Stats counts resolver outcomes.
type Stats struct {
	Queries  int
	Resolved int
	NXDomain int
	Timeouts int
	NoRecord int
	// CacheHits counts lookups answered from the resolver cache (see
	// EnableCache); they are also counted in Queries and the outcome
	// fields, so attrition ratios stay meaningful.
	CacheHits int
}

// cacheKey identifies one cached lookup.
type cacheKey struct {
	name string
	t    RType
}

// cacheEntry memoises a lookup outcome. Injected timeouts are never
// cached — they model transient auth failures.
type cacheEntry struct {
	addrs []netip.Addr
	err   error
}

// NewResolver builds a resolver over backend; rng drives failure injection
// and must be non-nil when TimeoutRate > 0.
func NewResolver(backend Backend, rng *rand.Rand) *Resolver {
	return &Resolver{backend: backend, rng: rng}
}

// Normalize canonicalises a queried name: lowercase, no trailing dot.
func Normalize(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// EnableCache turns on lookup memoisation: repeated queries for the same
// (name, type) — redirect chains revisiting the same hosts — are answered
// from memory. Injected timeouts are never cached. Campaign engines enable
// this; telemetry exposes the hit/miss split.
func (r *Resolver) EnableCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = map[cacheKey]cacheEntry{}
	}
}

// SetTelemetry registers this resolver's counters (dns_queries_total,
// dns_cache_{hits,misses}_total, dns_errors_total{class}) with reg. A nil
// registry leaves the resolver uninstrumented (no-op counters).
func (r *Resolver) SetTelemetry(reg *telemetry.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tmQueries = reg.Counter("dns_queries_total")
	r.tmHits = reg.Counter("dns_cache_hits_total")
	r.tmMisses = reg.Counter("dns_cache_misses_total")
	r.tmErrs = map[string]*telemetry.Counter{
		"nxdomain": reg.Counter(telemetry.Name("dns_errors_total", "class", "nxdomain")),
		"timeout":  reg.Counter(telemetry.Name("dns_errors_total", "class", "timeout")),
		"norecord": reg.Counter(telemetry.Name("dns_errors_total", "class", "norecord")),
	}
}

// SetSchedule installs a transient-failure schedule for tests: a lookup
// for (name, t) times out on attempts 0..k-1 where k = schedule(name, t),
// then succeeds. The schedule is consulted *before* the cache and depends
// only on (name, type, attempt), never on resolver state, so injected
// failures stay deterministic across worker counts and cache warm-up
// order. A nil schedule (the default) disables injection.
func (r *Resolver) SetSchedule(schedule func(name string, t RType) int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schedule = schedule
}

// Lookup resolves name to addresses of the given type (attempt 0).
func (r *Resolver) Lookup(name string, t RType) ([]netip.Addr, error) {
	return r.LookupAttempt(name, t, 0)
}

// LookupAttempt resolves name to addresses of the given type, identifying
// the caller's per-domain retry attempt (0-based) so failure schedules can
// fail the first k attempts deterministically.
func (r *Resolver) LookupAttempt(name string, t RType, attempt int) ([]netip.Addr, error) {
	name = Normalize(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Queries++
	r.tmQueries.Inc()
	// The schedule outranks the cache: a scheduled timeout must fire even
	// for cached names, or injected-failure tests would depend on which
	// worker warmed the cache first.
	if r.schedule != nil && attempt < r.schedule(name, t) {
		if _, ok := r.backend.Zone(name); ok {
			return r.finishLocked(nil, fmt.Errorf("%w: %s %s", ErrTimeout, name, t))
		}
	}
	key := cacheKey{name, t}
	if r.cache != nil {
		if e, ok := r.cache[key]; ok {
			r.stats.CacheHits++
			r.tmHits.Inc()
			return r.finishLocked(e.addrs, e.err)
		}
		r.tmMisses.Inc()
	}
	addrs, err := r.lookupLocked(name, t)
	if r.cache != nil && !errors.Is(err, ErrTimeout) {
		r.cache[key] = cacheEntry{addrs: addrs, err: err}
	}
	return r.finishLocked(addrs, err)
}

// lookupLocked performs the uncached resolution against the backend.
func (r *Resolver) lookupLocked(name string, t RType) ([]netip.Addr, error) {
	rec, ok := r.backend.Zone(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
	}
	if r.TimeoutRate > 0 && r.rng.Float64() < r.TimeoutRate {
		return nil, fmt.Errorf("%w: %s %s", ErrTimeout, name, t)
	}
	var addrs []netip.Addr
	switch t {
	case TypeA:
		addrs = rec.A
	case TypeAAAA:
		addrs = rec.AAAA
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s %s", ErrNoRecord, name, t)
	}
	return addrs, nil
}

// finishLocked tallies a lookup outcome and returns a defensive copy of
// the address list (cached entries must stay immutable).
func (r *Resolver) finishLocked(addrs []netip.Addr, err error) ([]netip.Addr, error) {
	switch {
	case err == nil:
		r.stats.Resolved++
		out := make([]netip.Addr, len(addrs))
		copy(out, addrs)
		return out, nil
	case errors.Is(err, ErrNXDomain):
		r.stats.NXDomain++
		r.tmErrs["nxdomain"].Inc()
	case errors.Is(err, ErrTimeout):
		r.stats.Timeouts++
		r.tmErrs["timeout"].Inc()
	case errors.Is(err, ErrNoRecord):
		r.stats.NoRecord++
		r.tmErrs["norecord"].Inc()
	}
	return nil, err
}

// Stats returns a snapshot of resolver counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
