// Package dns provides the name-resolution substrate of the measurement
// campaign. The paper resolves >200 M domains through real DNS; this
// package substitutes a deterministic synthetic resolver backed by zone
// data (from internal/websim) with configurable failure modes, reproducing
// the Total→Resolved attrition visible in Tables 1 and 4.
package dns

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
)

// Common resolution errors.
var (
	// ErrNXDomain reports a name that does not exist.
	ErrNXDomain = errors.New("dns: NXDOMAIN")
	// ErrTimeout reports an unresponsive authoritative server.
	ErrTimeout = errors.New("dns: query timed out")
	// ErrNoRecord reports a name that exists but has no record of the
	// queried type (e.g. AAAA query for a v4-only host).
	ErrNoRecord = errors.New("dns: no record of requested type")
)

// RType selects the record type of a query.
type RType int

const (
	// TypeA queries IPv4 addresses.
	TypeA RType = iota
	// TypeAAAA queries IPv6 addresses.
	TypeAAAA
)

// String returns the conventional record-type name.
func (t RType) String() string {
	if t == TypeAAAA {
		return "AAAA"
	}
	return "A"
}

// Record is the address data of one name.
type Record struct {
	A    []netip.Addr
	AAAA []netip.Addr
}

// Backend supplies ground-truth zone data.
type Backend interface {
	// Zone returns the record for a fully-qualified name (no trailing
	// dot), and whether the name exists.
	Zone(name string) (Record, bool)
}

// MapBackend is a Backend over a plain map.
type MapBackend map[string]Record

// Zone implements Backend.
func (m MapBackend) Zone(name string) (Record, bool) {
	r, ok := m[name]
	return r, ok
}

// Resolver resolves names against a Backend with injected failures. It is
// safe for concurrent use.
type Resolver struct {
	backend Backend
	// TimeoutRate is the probability that a query times out even though
	// the name exists (lame delegations, rate-limited auths, …).
	TimeoutRate float64

	mu  sync.Mutex
	rng *rand.Rand

	stats Stats
}

// Stats counts resolver outcomes.
type Stats struct {
	Queries  int
	Resolved int
	NXDomain int
	Timeouts int
	NoRecord int
}

// NewResolver builds a resolver over backend; rng drives failure injection
// and must be non-nil when TimeoutRate > 0.
func NewResolver(backend Backend, rng *rand.Rand) *Resolver {
	return &Resolver{backend: backend, rng: rng}
}

// Normalize canonicalises a queried name: lowercase, no trailing dot.
func Normalize(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// Lookup resolves name to addresses of the given type.
func (r *Resolver) Lookup(name string, t RType) ([]netip.Addr, error) {
	name = Normalize(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Queries++
	rec, ok := r.backend.Zone(name)
	if !ok {
		r.stats.NXDomain++
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, name)
	}
	if r.TimeoutRate > 0 && r.rng.Float64() < r.TimeoutRate {
		r.stats.Timeouts++
		return nil, fmt.Errorf("%w: %s %s", ErrTimeout, name, t)
	}
	var addrs []netip.Addr
	switch t {
	case TypeA:
		addrs = rec.A
	case TypeAAAA:
		addrs = rec.AAAA
	}
	if len(addrs) == 0 {
		r.stats.NoRecord++
		return nil, fmt.Errorf("%w: %s %s", ErrNoRecord, name, t)
	}
	r.stats.Resolved++
	out := make([]netip.Addr, len(addrs))
	copy(out, addrs)
	return out, nil
}

// Stats returns a snapshot of resolver counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
