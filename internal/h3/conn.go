package h3

import (
	"fmt"
	"time"

	"quicspin/internal/transport"
)

// FirstStreamID is the first client-initiated bidirectional stream
// (RFC 9000 §2.1); subsequent requests use id+4.
const FirstStreamID = 0

// ClientConn issues requests over one transport connection. It is
// poll-driven like the transport itself: queue a request with Do, pump the
// connection, then check Response.
type ClientConn struct {
	conn    *transport.Conn
	nextID  uint64
	pending map[uint64]bool
}

// NewClientConn wraps an established (or connecting) client transport conn.
func NewClientConn(conn *transport.Conn) *ClientConn {
	return &ClientConn{conn: conn, nextID: FirstStreamID, pending: map[uint64]bool{}}
}

// Conn returns the underlying transport connection.
func (c *ClientConn) Conn() *transport.Conn { return c.conn }

// Do queues a request and returns its stream ID. The transport must be
// pumped (Poll/Receive/Advance) for the exchange to progress; the handshake
// need not be complete yet — data is buffered.
func (c *ClientConn) Do(req *Request) (uint64, error) {
	id := c.nextID
	c.nextID += 4
	if err := c.conn.SendStream(id, EncodeRequest(req), true); err != nil {
		return 0, fmt.Errorf("h3: queueing request: %w", err)
	}
	c.pending[id] = true
	return id, nil
}

// Response returns the parsed response for a stream once it has fully
// arrived. done is false while the exchange is still in flight.
func (c *ClientConn) Response(id uint64) (*Response, bool, error) {
	data, complete := c.conn.StreamRecv(id)
	if !complete {
		return nil, false, nil
	}
	resp, err := ParseResponse(data)
	if err != nil {
		return nil, true, err
	}
	return resp, true, nil
}

// Handler produces a response for a request. peer identifies the client.
type Handler func(peer string, req *Request) *Response

// Server serves HTTP/3-lite requests on every connection of a transport
// endpoint. Call Serve from the endpoint driver's activity hook.
type Server struct {
	Handler Handler
	// served tracks answered streams per live connection.
	served map[*transport.Conn]map[uint64]bool
}

// NewServer returns a Server with the given handler.
func NewServer(h Handler) *Server {
	return &Server{Handler: h, served: map[*transport.Conn]map[uint64]bool{}}
}

// Serve answers all newly completed request streams on conn.
func (s *Server) Serve(peer string, conn *transport.Conn, now time.Time) {
	if !conn.HandshakeComplete() || conn.Terminating() {
		return
	}
	done := s.served[conn]
	if done == nil {
		done = map[uint64]bool{}
		s.served[conn] = done
	}
	for _, id := range conn.RecvStreamIDs() {
		if done[id] {
			continue
		}
		data, complete := conn.StreamRecv(id)
		if !complete {
			continue
		}
		done[id] = true
		req, err := ParseRequest(data)
		var resp *Response
		if err != nil {
			resp = &Response{Status: 400, Headers: map[string]string{}, Body: []byte(err.Error())}
		} else {
			resp = s.Handler(peer, req)
		}
		if resp == nil {
			resp = &Response{Status: 500, Headers: map[string]string{}}
		}
		_ = conn.SendStream(id, EncodeResponse(resp), true)
	}
}

// Forget releases per-connection state; call when a connection closes.
func (s *Server) Forget(conn *transport.Conn) {
	delete(s.served, conn)
}
