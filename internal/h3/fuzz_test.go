package h3

import (
	"fmt"
	"reflect"
	"testing"
)

// FuzzH3Request checks that ParseRequest never panics, and that every
// accepted request survives an encode→parse round trip unchanged — the
// property the emulated scanner relies on when it replays requests between
// the client and server halves of a connection.
func FuzzH3Request(f *testing.F) {
	f.Add(EncodeRequest(&Request{
		Method: "GET", Authority: "www.example.com", Path: "/",
		Headers: map[string]string{"user-agent": "quicspin-scanner/1.0"},
	}))
	f.Add(EncodeRequest(&Request{Method: "HEAD", Authority: "", Path: "/landing", Headers: map[string]string{}}))
	f.Add([]byte("GET / HTTP/3-lite\n:authority: a\nx: y\n\n"))
	f.Add([]byte("GET / HTTP/3-lite\nbroken-header-line\n\n"))
	f.Add([]byte("GET / HTTP/2\n\n")) // wrong protocol token
	f.Add([]byte("\n"))
	f.Add([]byte{})
	// Hostile-profile shapes: the header-flood profile streams endless
	// header lines without ever sending the blank-line terminator, and the
	// oversized-body profile declares a content-length far beyond what it
	// could ever deliver.
	flood := []byte("GET /flood " + Proto + "\n:authority: flood.test\n")
	for i := 0; i < 64; i++ {
		flood = append(flood, []byte(fmt.Sprintf("x-flood-%06d: yyyyyyyyyyyyyyyy\n", i))...)
	}
	f.Add(flood) // no terminator
	f.Add([]byte("GET /big " + Proto + "\n:authority: big.test\ncontent-length: 4194304\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("non-nil request returned alongside an error")
			}
			return
		}
		enc := EncodeRequest(req)
		again, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("re-parse of encoded request failed: %v\nencoded: %q", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip mismatch:\n before: %#v\n after:  %#v", req, again)
		}
	})
}
