package h3_test

import (
	"math/rand"
	"testing"
	"time"

	"quicspin/internal/h3"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/transport"
)

var epoch = time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

// pair wires a ClientConn and a Server over a lossless emulated path.
func pair(t *testing.T, handler h3.Handler) (*sim.Loop, *netem.ClientHost, *h3.ClientConn) {
	t.Helper()
	loop := sim.NewLoop(epoch)
	rng := rand.New(rand.NewSource(9))
	network := netem.New(loop, netem.PathConfig{Delay: 10 * time.Millisecond}, rng)
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	srv := h3.NewServer(handler)
	host := netem.NewServerHost(network, "server", ep)
	host.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			srv.Serve("client", conn, now)
		}
	}
	conn := transport.NewClientConn(transport.Config{Rng: rng}, loop.Now())
	client := netem.NewClientHost(network, "client", "server", conn)
	return loop, client, h3.NewClientConn(conn)
}

func TestClientConnSequentialRequests(t *testing.T) {
	loop, client, hc := pair(t, func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{
			Status:  200,
			Headers: map[string]string{"server": "t", "echo-path": req.Path},
			Body:    []byte(req.Authority),
		}
	})
	ids := make([]uint64, 3)
	for i := range ids {
		id, err := hc.Do(&h3.Request{Method: "GET", Authority: "www.a.test", Path: "/p", Headers: map[string]string{}})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Stream IDs follow the client-bidi numbering.
	if ids[0] != 0 || ids[1] != 4 || ids[2] != 8 {
		t.Fatalf("stream ids = %v", ids)
	}
	client.Kick()
	loop.RunUntil(epoch.Add(10 * time.Second))
	for _, id := range ids {
		resp, done, err := hc.Response(id)
		if err != nil || !done {
			t.Fatalf("stream %d: (%v, %v)", id, done, err)
		}
		if resp.Status != 200 || string(resp.Body) != "www.a.test" || resp.Headers["echo-path"] != "/p" {
			t.Errorf("stream %d: %+v", id, resp)
		}
	}
	if hc.Conn() == nil {
		t.Error("Conn() nil")
	}
}

func TestResponseNotReadyBeforeArrival(t *testing.T) {
	_, _, hc := pair(t, func(string, *h3.Request) *h3.Response { return &h3.Response{Status: 200} })
	id, err := hc.Do(&h3.Request{Method: "GET", Authority: "a", Path: "/", Headers: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, _ := hc.Response(id); done {
		t.Error("response reported complete before any packet flowed")
	}
}

func TestServerAnswersMalformedRequestWith400(t *testing.T) {
	loop := sim.NewLoop(epoch)
	rng := rand.New(rand.NewSource(3))
	network := netem.New(loop, netem.PathConfig{Delay: 5 * time.Millisecond}, rng)
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng}
	})
	srv := h3.NewServer(func(string, *h3.Request) *h3.Response {
		t.Error("handler called for malformed request")
		return nil
	})
	host := netem.NewServerHost(network, "server", ep)
	host.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			srv.Serve("client", conn, now)
		}
	}
	conn := transport.NewClientConn(transport.Config{Rng: rng}, loop.Now())
	if err := conn.SendStream(0, []byte("NOT A REQUEST\n\n"), true); err != nil {
		t.Fatal(err)
	}
	client := netem.NewClientHost(network, "client", "server", conn)
	client.Kick()
	loop.RunUntil(epoch.Add(5 * time.Second))
	data, done := conn.StreamRecv(0)
	if !done {
		t.Fatal("no response to malformed request")
	}
	resp, err := h3.ParseResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 {
		t.Errorf("status = %d, want 400", resp.Status)
	}
}

func TestNilHandlerResponseBecomes500(t *testing.T) {
	loop, client, hc := pair(t, func(string, *h3.Request) *h3.Response { return nil })
	id, err := hc.Do(&h3.Request{Method: "GET", Authority: "a", Path: "/", Headers: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	client.Kick()
	loop.RunUntil(epoch.Add(5 * time.Second))
	resp, done, err := hc.Response(id)
	if err != nil || !done {
		t.Fatalf("(%v, %v)", done, err)
	}
	if resp.Status != 500 {
		t.Errorf("status = %d, want 500", resp.Status)
	}
}

func TestServerForget(t *testing.T) {
	// Forget only drops bookkeeping; it must not panic or resend.
	srv := h3.NewServer(func(string, *h3.Request) *h3.Response { return &h3.Response{Status: 200} })
	conn := transport.NewClientConn(transport.Config{Rng: rand.New(rand.NewSource(1))}, epoch)
	srv.Forget(conn) // unknown conn: no-op
}

func TestDoAfterClose(t *testing.T) {
	_, _, hc := pair(t, func(string, *h3.Request) *h3.Response { return &h3.Response{Status: 200} })
	hc.Conn().Close(epoch, 0, "bye")
	if _, err := hc.Do(&h3.Request{Method: "GET", Authority: "a", Path: "/", Headers: map[string]string{}}); err == nil {
		t.Error("Do succeeded on closed connection")
	}
}
