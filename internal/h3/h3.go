// Package h3 implements HTTP/3-lite: a minimal request/response protocol
// over QUIC-lite streams, sufficient for the paper's web measurements. It
// carries the pieces the study actually uses — request authority and path,
// response status, the Server header for webserver attribution (§4.2), and
// Location headers for redirect following (§3.2.1, up to 3 redirects).
//
// Substitution note: real HTTP/3 uses QPACK-compressed binary framing.
// Header compression is irrelevant to every measured quantity, so frames
// here are plain text with explicit lengths, keeping traces debuggable.
package h3

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Proto is the protocol identifier on the wire (the first token of every
// request and response head). Exported so stream inspectors can recognise
// an HTTP/3-lite response prefix without parsing it.
const Proto = "HTTP/3-lite"

const protoLine = Proto

// MaxContentLength bounds the content-length a response may declare.
// Honest simulated responses stay under a few hundred KB; a hostile
// 2^62-style declaration must error before anything sizes a buffer to it.
const MaxContentLength = 64 << 20

// ErrMalformed reports an unparseable message.
var ErrMalformed = errors.New("h3: malformed message")

// ErrTooLong reports a message whose single line exceeded the scanner
// buffer (bufio.Scanner token overflow). It always arrives wrapped in
// ErrMalformed; match with errors.Is to distinguish a flooded header line
// from ordinary malformed input.
var ErrTooLong = errors.New("h3: line exceeds buffer limit")

// ErrOversized reports a declared length beyond MaxContentLength. It
// always arrives wrapped in ErrMalformed.
var ErrOversized = errors.New("h3: declared length exceeds limit")

// Request is an HTTP/3-lite request.
type Request struct {
	Method    string
	Authority string // host the request is for (":authority")
	Path      string
	Headers   map[string]string
}

// Response is an HTTP/3-lite response.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// Server returns the Server header (webserver software identification).
func (r *Response) Server() string { return r.Headers["server"] }

// Location returns the redirect target, if any.
func (r *Response) Location() string { return r.Headers["location"] }

// IsRedirect reports whether the status is a 3xx redirect with a Location.
func (r *Response) IsRedirect() bool {
	return r.Status >= 300 && r.Status < 400 && r.Location() != ""
}

// EncodeRequest serialises a request for transmission on a stream.
func EncodeRequest(req *Request) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s %s\n", req.Method, req.Path, protoLine)
	fmt.Fprintf(&b, ":authority: %s\n", req.Authority)
	writeHeaders(&b, req.Headers)
	b.WriteByte('\n')
	return b.Bytes()
}

// ParseRequest parses a complete request stream.
func ParseRequest(data []byte) (*Request, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return nil, fmt.Errorf("%w: %w: reading request line", ErrMalformed, ErrTooLong)
			}
			return nil, fmt.Errorf("%w: reading request line: %v", ErrMalformed, err)
		}
		return nil, fmt.Errorf("%w: empty request", ErrMalformed)
	}
	parts := strings.Fields(sc.Text())
	if len(parts) != 3 || parts[2] != protoLine {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, sc.Text())
	}
	req := &Request{Method: parts[0], Path: parts[1], Headers: map[string]string{}}
	if err := readHeaders(sc, func(k, v string) {
		if k == ":authority" {
			req.Authority = v
		} else {
			req.Headers[k] = v
		}
	}); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeResponse serialises a response for transmission on a stream.
func EncodeResponse(resp *Response) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d\n", protoLine, resp.Status)
	fmt.Fprintf(&b, "content-length: %d\n", len(resp.Body))
	writeHeaders(&b, resp.Headers)
	b.WriteByte('\n')
	b.Write(resp.Body)
	return b.Bytes()
}

// ParseResponse parses a complete response stream.
func ParseResponse(data []byte) (*Response, error) {
	i := bytes.Index(data, []byte("\n\n"))
	if i < 0 {
		return nil, fmt.Errorf("%w: missing header terminator", ErrMalformed)
	}
	head, body := data[:i], data[i+2:]
	sc := bufio.NewScanner(bytes.NewReader(head))
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return nil, fmt.Errorf("%w: %w: reading status line", ErrMalformed, ErrTooLong)
			}
			return nil, fmt.Errorf("%w: reading status line: %v", ErrMalformed, err)
		}
		return nil, fmt.Errorf("%w: empty response", ErrMalformed)
	}
	parts := strings.Fields(sc.Text())
	if len(parts) != 2 || parts[0] != protoLine {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, sc.Text())
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	resp := &Response{Status: status, Headers: map[string]string{}}
	var clen = -1
	var clenErr error
	if err := readHeaders(sc, func(k, v string) {
		if k == "content-length" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				clenErr = fmt.Errorf("%w: content-length %q", ErrMalformed, v)
				return
			}
			if n > MaxContentLength {
				// Reject before anyone trusts the declaration enough to
				// allocate for it.
				clenErr = fmt.Errorf("%w: %w: content-length %d", ErrMalformed, ErrOversized, n)
				return
			}
			clen = n
		} else {
			resp.Headers[k] = v
		}
	}); err != nil {
		return nil, err
	}
	if clenErr != nil {
		return nil, clenErr
	}
	if clen >= 0 && clen != len(body) {
		return nil, fmt.Errorf("%w: content-length %d, body %d", ErrMalformed, clen, len(body))
	}
	resp.Body = body
	return resp, nil
}

func writeHeaders(b *bytes.Buffer, h map[string]string) {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\n", strings.ToLower(k), h[k])
	}
}

func readHeaders(sc *bufio.Scanner, set func(k, v string)) error {
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			return nil
		}
		k, v, ok := strings.Cut(line, ": ")
		if !ok {
			return fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		set(strings.ToLower(k), v)
	}
	// A scanner error (e.g. a header line exceeding the buffer limit) must
	// surface as a parse failure, not as a silently truncated header set.
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("%w: %w: reading headers", ErrMalformed, ErrTooLong)
		}
		return fmt.Errorf("%w: reading headers: %v", ErrMalformed, err)
	}
	return nil
}
