package h3

import (
	"errors"
	"strings"
	"testing"
)

// TestParseResponseTooLong checks that a header line beyond the 1 MiB
// scanner buffer (the header-flood shape) surfaces as a structured
// ErrTooLong inside ErrMalformed rather than a bare bufio error.
func TestParseResponseTooLong(t *testing.T) {
	data := []byte(strings.Repeat("A", (1<<20)+64) + "\n\n")
	resp, err := ParseResponse(data)
	if resp != nil {
		t.Fatal("response returned alongside an error")
	}
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, must also match ErrMalformed", err)
	}
}

// TestParseResponseOversized checks that a declared content-length beyond
// MaxContentLength (the oversized-body shape) is rejected before any
// allocation trusts it.
func TestParseResponseOversized(t *testing.T) {
	data := []byte(Proto + " 200\ncontent-length: 268435456\nserver: h2o\n\n")
	resp, err := ParseResponse(data)
	if resp != nil {
		t.Fatal("response returned alongside an error")
	}
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, must also match ErrMalformed", err)
	}
	// A large-but-legal declaration is still only rejected for the body
	// mismatch, not as oversized.
	small := []byte(Proto + " 200\ncontent-length: 3\n\nabc")
	if _, err := ParseResponse(small); err != nil {
		t.Fatalf("legal response rejected: %v", err)
	}
}

// TestParseRequestTooLong mirrors the response-side check on the request
// parser the websim server runs against scanner-originated streams.
func TestParseRequestTooLong(t *testing.T) {
	data := []byte(strings.Repeat("B", (1<<20)+64) + "\n\n")
	req, err := ParseRequest(data)
	if req != nil {
		t.Fatal("request returned alongside an error")
	}
	if !errors.Is(err, ErrTooLong) || !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrTooLong wrapped in ErrMalformed", err)
	}
}
