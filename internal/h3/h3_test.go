package h3

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method:    "GET",
		Authority: "www.example.com",
		Path:      "/index.html",
		Headers:   map[string]string{"user-agent": "quicspin-scanner/1.0", "x-research": "https://measurement.example/optout"},
	}
	got, err := ParseRequest(EncodeRequest(req))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if got.Method != req.Method || got.Authority != req.Authority || got.Path != req.Path {
		t.Errorf("request = %+v", got)
	}
	if got.Headers["user-agent"] != req.Headers["user-agent"] {
		t.Errorf("headers = %v", got.Headers)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		Status:  200,
		Headers: map[string]string{"server": "LiteSpeed", "content-type": "text/html"},
		Body:    []byte("<html>hello\n\nworld</html>"),
	}
	got, err := ParseResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if got.Status != 200 || got.Server() != "LiteSpeed" {
		t.Errorf("response = %+v", got)
	}
	if !bytes.Equal(got.Body, resp.Body) {
		t.Errorf("body = %q", got.Body)
	}
}

func TestRedirect(t *testing.T) {
	r := &Response{Status: 301, Headers: map[string]string{"location": "https://www.example.org/"}}
	got, err := ParseResponse(EncodeResponse(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsRedirect() || got.Location() != "https://www.example.org/" {
		t.Errorf("redirect = %+v", got)
	}
	plain := &Response{Status: 200, Headers: map[string]string{}}
	if plain.IsRedirect() {
		t.Error("200 classified as redirect")
	}
	noLoc := &Response{Status: 302, Headers: map[string]string{}}
	if noLoc.IsRedirect() {
		t.Error("redirect without location classified as redirect")
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := []string{
		"",
		"GET /\n",
		"GET / HTTP/9\n\n",
		"GET / HTTP/3-lite\nbadheader\n\n",
	}
	for _, c := range cases {
		if _, err := ParseRequest([]byte(c)); err == nil {
			t.Errorf("ParseRequest(%q) succeeded", c)
		}
	}
}

func TestParseResponseErrors(t *testing.T) {
	cases := []string{
		"",
		"HTTP/3-lite 200\n", // no terminator
		"HTTP/3-lite abc\n\n",
		"BOGUS 200\n\n",
		"HTTP/3-lite 200\ncontent-length: 5\n\nabc", // length mismatch
	}
	for _, c := range cases {
		if _, err := ParseResponse([]byte(c)); err == nil {
			t.Errorf("ParseResponse(%q) succeeded", c)
		}
	}
}

func TestHeadersLowercasedAndSorted(t *testing.T) {
	req := &Request{Method: "GET", Authority: "a", Path: "/", Headers: map[string]string{"B-Key": "2", "A-Key": "1"}}
	enc := string(EncodeRequest(req))
	if !strings.Contains(enc, "a-key: 1\nb-key: 2\n") {
		t.Errorf("headers not sorted/lowercased:\n%s", enc)
	}
}

func TestResponseQuickRoundTrip(t *testing.T) {
	f := func(status uint16, body []byte, server string) bool {
		server = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, server)
		in := &Response{
			Status:  int(status%599) + 100,
			Headers: map[string]string{"server": server},
			Body:    body,
		}
		out, err := ParseResponse(EncodeResponse(in))
		if err != nil {
			return false
		}
		return out.Status == in.Status && bytes.Equal(out.Body, in.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeParseResponse(b *testing.B) {
	resp := &Response{Status: 200, Headers: map[string]string{"server": "LiteSpeed"}, Body: make([]byte, 4096)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseResponse(EncodeResponse(resp)); err != nil {
			b.Fatal(err)
		}
	}
}
