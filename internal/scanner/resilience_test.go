package scanner

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"quicspin/internal/dns"
	"quicspin/internal/resilience"
	"quicspin/internal/telemetry"
	"quicspin/internal/websim"
)

// firstCleanTarget walks a baseline run in canonical order and returns a
// domain whose landing connection (a) succeeded with a single-hop 200 and
// (b) was the first dial ever made against its IP — so an injected
// fail-first outage against that IP deterministically hits this domain's
// first attempt when Workers is 1.
func firstCleanTarget(t *testing.T, w *websim.World, base *Result) (victim *websim.Domain, ip netip.Addr) {
	t.Helper()
	seen := map[netip.Addr]bool{}
	for i := range base.Domains {
		d := &base.Domains[i]
		if len(d.Conns) == 1 && d.Conns[0].Err == "" && d.Conns[0].Status == 200 && !seen[d.Conns[0].IP] {
			return w.Domains[i], d.Conns[0].IP
		}
		for j := range d.Conns {
			seen[d.Conns[j].IP] = true
		}
	}
	t.Fatal("no clean single-hop target in baseline")
	return nil, netip.Addr{}
}

func TestPanicIsolation(t *testing.T) {
	w := testWorld(30_000)
	base := Config{Week: 1, Engine: EngineEmulated, Seed: 3, Workers: 3}
	clean := mustRun(t, w, base)

	idx := len(w.Domains) / 2
	victim := w.Domains[idx].Name
	reg := telemetry.New()
	cfg := base
	cfg.Telemetry = reg
	cfg.panicHook = func(name string) bool { return name == victim }
	r := mustRun(t, w, cfg)

	vr := &r.Domains[idx]
	if len(vr.Conns) != 1 || !strings.HasPrefix(vr.Conns[0].Err, "panic:") {
		t.Fatalf("victim result = %+v, want one panic-classed conn", vr)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["scan_panics_total"]; got != 1 {
		t.Errorf("scan_panics_total = %d, want 1", got)
	}
	if got := snap.Counters[`spinscan_conn_errors_total{class="panic"}`]; got != 1 {
		t.Errorf("panic error class counter = %d, want 1", got)
	}
	// Every other domain is untouched: the worker rebuilt its engine and
	// per-domain rng derivation kept all results identical.
	r.Domains[idx] = clean.Domains[idx]
	sameScanResults(t, clean, r)
}

func TestWatchdogStallIsolation(t *testing.T) {
	w := testWorld(20_000)
	reg := telemetry.New()
	cfg := Config{Week: 1, Engine: EngineEmulated, Seed: 3, Workers: 2, Telemetry: reg}
	cfg.watchdogSteps = 50 // absurdly small: every live exchange "stalls"
	r := mustRun(t, w, cfg)

	stalls := 0
	for i := range r.Domains {
		if r.Domains[i].Domain == "" {
			t.Fatal("campaign left a domain unscanned after stalls")
		}
		for j := range r.Domains[i].Conns {
			if strings.HasPrefix(r.Domains[i].Conns[j].Err, "stall:") {
				stalls++
			}
		}
	}
	if stalls == 0 {
		t.Fatal("no stalls despite a 50-step watchdog budget")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["scan_stalls_total"]; got != int64(stalls) {
		t.Errorf("scan_stalls_total = %d, want %d", got, stalls)
	}
	if got := snap.Counters[`spinscan_conn_errors_total{class="stall"}`]; got == 0 {
		t.Error("stall error class counter not incremented")
	}
}

func TestDNSRetryTransient(t *testing.T) {
	w := testWorld(30_000)
	for _, eng := range []Engine{EngineEmulated, EngineFast} {
		base := Config{Week: 1, Engine: eng, Seed: 11, Workers: 2}
		clean := mustRun(t, w, base)
		idx := -1
		for i := range clean.Domains {
			if clean.Domains[i].Resolved {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatal("no resolved domain in baseline")
		}
		host := dns.Normalize(w.Domains[idx].Host())
		schedule := func(name string, _ dns.RType) int {
			if name == host {
				return 2
			}
			return 0
		}

		// Without retries the scheduled timeouts are terminal.
		noRetry := base
		noRetry.DNSSchedule = schedule
		r := mustRun(t, w, noRetry)
		if r.Domains[idx].Resolved || !strings.Contains(r.Domains[idx].DNSErr, "timed out") {
			t.Fatalf("engine %v: without retries, want DNS timeout, got %+v", eng, r.Domains[idx])
		}

		// With a budget of 3 the third attempt succeeds.
		reg := telemetry.New()
		withRetry := noRetry
		withRetry.Retry = resilience.RetryPolicy{MaxRetries: 3}
		withRetry.Telemetry = reg
		r = mustRun(t, w, withRetry)
		if !r.Domains[idx].Resolved {
			t.Fatalf("engine %v: retries did not recover scheduled DNS timeouts: %+v", eng, r.Domains[idx])
		}
		if got := reg.Snapshot().Counters[`retries_total{stage="dns"}`]; got < 2 {
			t.Errorf("engine %v: dns retries = %d, want >= 2", eng, got)
		}
	}
}

func TestConnRetryFailFirst(t *testing.T) {
	w := testWorld(30_000)
	for _, eng := range []Engine{EngineEmulated, EngineFast} {
		base := Config{Week: 1, Engine: eng, Seed: 11, Workers: 1}
		clean := mustRun(t, w, base)
		victim, ip := firstCleanTarget(t, w, clean)
		idx := -1
		for i, d := range w.Domains {
			if d == victim {
				idx = i
				break
			}
		}

		// Without retries the injected outage is terminal for the landing.
		noRetry := base
		noRetry.NetFailFirst = map[string]int{ip.String(): 1}
		r := mustRun(t, w, noRetry)
		vr := &r.Domains[idx]
		if len(vr.Conns) != 1 || vr.Conns[0].Err != "timeout: no QUIC handshake" {
			t.Fatalf("engine %v: without retries, want handshake timeout, got %+v", eng, vr)
		}

		// With retries the second attempt (host recovered) succeeds.
		reg := telemetry.New()
		withRetry := noRetry
		withRetry.Retry = resilience.RetryPolicy{MaxRetries: 2}
		withRetry.Telemetry = reg
		r = mustRun(t, w, withRetry)
		vr = &r.Domains[idx]
		if len(vr.Conns) != 1 || vr.Conns[0].Err != "" || vr.Conns[0].Status != 200 || !vr.Conns[0].QUIC {
			t.Fatalf("engine %v: retry did not recover the outage: %+v", eng, vr)
		}
		if got := reg.Snapshot().Counters[`retries_total{stage="conn"}`]; got < 1 {
			t.Errorf("engine %v: conn retries = %d, want >= 1", eng, got)
		}
	}
}

func TestMultiAddressFallback(t *testing.T) {
	dead := netip.MustParseAddr("203.0.113.77") // TEST-NET-3: no server here
	for _, eng := range []Engine{EngineEmulated, EngineFast} {
		w := testWorld(30_000)
		base := Config{Week: 1, Engine: eng, Seed: 11, Workers: 1}
		clean := mustRun(t, w, base)
		victim, good := firstCleanTarget(t, w, clean)
		idx := -1
		for i, d := range w.Domains {
			if d == victim {
				idx = i
				break
			}
		}
		// Prepend a dead address to the victim's A records: resolveRetry
		// returns all addresses and connection retries rotate through them
		// (zgrab2-style fallback), so the scan must recover via addrs[1].
		mb := w.DNSBackend().(dns.MapBackend)
		rec := mb[dns.Normalize(victim.Host())]
		rec.A = append([]netip.Addr{dead}, rec.A...)
		mb[dns.Normalize(victim.Host())] = rec

		noRetry := base
		r := mustRun(t, w, noRetry)
		vr := &r.Domains[idx]
		if vr.Conns[0].IP != dead || vr.Conns[0].Err == "" {
			t.Fatalf("engine %v: without retries, want dead-address timeout, got %+v", eng, vr.Conns[0])
		}

		withRetry := base
		withRetry.Retry = resilience.RetryPolicy{MaxRetries: 2}
		r = mustRun(t, w, withRetry)
		vr = &r.Domains[idx]
		last := &vr.Conns[len(vr.Conns)-1]
		if last.IP != good || last.Err != "" || !last.QUIC {
			t.Fatalf("engine %v: fallback did not rotate to the live address: %+v", eng, last)
		}
	}
}

// TestRetryWorkerInvariance: with a pure-function DNS failure schedule and
// retries enabled, results must stay byte-identical across worker counts —
// backoff jitter comes from the per-domain rng, never from shared state.
func TestRetryWorkerInvariance(t *testing.T) {
	w := testWorld(60_000)
	schedule := func(name string, _ dns.RType) int { return len(name) % 3 }
	for _, eng := range []Engine{EngineEmulated, EngineFast} {
		cfg := Config{Week: 1, Engine: eng, Seed: 5, Workers: 1,
			Retry: resilience.RetryPolicy{MaxRetries: 2}, DNSSchedule: schedule}
		a := mustRun(t, w, cfg)
		cfg.Workers = 5
		b := mustRun(t, w, cfg)
		sameScanResults(t, a, b)
	}
}

func TestBreakerCampaign(t *testing.T) {
	w := testWorld(60_000)
	base := Config{Week: 1, Engine: EngineFast, Seed: 7, Workers: 1}

	// Find the AS with the most resolvable domains and fail every address
	// in it permanently (k effectively infinite, so attempt counters stay
	// worker-invariant).
	asOf := func(d *websim.Domain) (string, bool) {
		if !d.V4.IsValid() {
			return "", false
		}
		asn, ok := w.ASDB().Table.Lookup(d.V4)
		if !ok {
			return "unattributed", true
		}
		return fmt.Sprintf("as-%d", asn), true
	}
	counts := map[string]int{}
	for _, d := range w.Domains {
		if key, ok := asOf(d); ok {
			counts[key]++
		}
	}
	target, best := "", 0
	for key, n := range counts {
		if n > best {
			target, best = key, n
		}
	}
	if best < 6 {
		t.Fatalf("largest AS group has only %d domains", best)
	}
	fail := map[string]int{}
	var groupIdx []int
	for i, d := range w.Domains {
		if key, ok := asOf(d); ok && key == target {
			fail[d.V4.String()] = 1 << 30
			groupIdx = append(groupIdx, i)
		}
	}

	reg := telemetry.New()
	cfg := base
	cfg.NetFailFirst = fail
	cfg.Breaker = resilience.BreakerConfig{Threshold: 3}
	cfg.Telemetry = reg
	r := mustRun(t, w, cfg)

	// The first domains of the group fail transiently until the threshold
	// opens the breaker; afterwards group members are skipped with the
	// distinct "breaker:" class (half-open probes may interleave once the
	// virtual cooldown elapses, and DNS-failed domains never reach the
	// network at all). Note other AS groups can open their own breakers
	// from the world's natural transient DNS timeouts — that is the breaker
	// working as intended, so skip counters are asserted globally.
	groupTimeouts, groupSkips, allSkips := 0, 0, 0
	inGroup := map[int]bool{}
	for _, i := range groupIdx {
		inGroup[i] = true
	}
	for i := range r.Domains {
		d := &r.Domains[i]
		for j := range d.Conns {
			switch {
			case strings.HasPrefix(d.Conns[j].Err, "breaker:"):
				allSkips++
				if inGroup[i] {
					groupSkips++
				}
			case inGroup[i] && d.Conns[j].Err == "timeout: no QUIC handshake":
				groupTimeouts++
			}
		}
	}
	if groupTimeouts < 3 {
		t.Errorf("transient failures before the breaker opened = %d, want >= 3", groupTimeouts)
	}
	if groupSkips == 0 {
		t.Error("open breaker skipped no domains in the failed AS")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["breaker_open_total"]; got < 1 {
		t.Errorf("breaker_open_total = %d, want >= 1", got)
	}
	if got := snap.Counters["breaker_skipped_total"]; got != int64(allSkips) {
		t.Errorf("breaker_skipped_total = %d, want %d", got, allSkips)
	}
	if got := snap.Counters[`spinscan_conn_errors_total{class="breaker"}`]; got != int64(allSkips) {
		t.Errorf("breaker error class counter = %d, want %d", got, allSkips)
	}

	// Worker invariance: the gate serialises breaker decisions in
	// canonical order, so worker count changes nothing.
	cfg.Workers = 4
	r4 := mustRun(t, w, cfg)
	cfg.Workers = 1
	r1 := mustRun(t, w, cfg)
	sameScanResults(t, r1, r4)
}

func TestInterruptAndResume(t *testing.T) {
	w := testWorld(60_000)
	base := Config{Week: 1, Engine: EngineFast, Seed: 5, Workers: 4}
	full := mustRun(t, w, base)

	dir := t.TempDir()
	interrupted := base
	interrupted.Checkpoint = dir
	interrupted.InterruptAfter = int64(len(w.Domains) / 2)
	_, err := Run(w, interrupted)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run error = %v, want ErrInterrupted", err)
	}

	// Resume with a different worker count: the journal replays and only
	// the remainder is scanned; the merged result is byte-identical.
	reg := telemetry.New()
	resumed := base
	resumed.Checkpoint = dir
	resumed.Resume = true
	resumed.Workers = 2
	resumed.Telemetry = reg
	r := mustRun(t, w, resumed)
	sameScanResults(t, full, r)
	snap := reg.Snapshot()
	if got := snap.Counters["domains_resumed_total"]; got == 0 {
		t.Error("resume replayed no domains")
	} else if got >= int64(len(w.Domains)) {
		t.Errorf("resume replayed %d of %d domains; interrupt did not interrupt", got, len(w.Domains))
	}
}

func TestValidateResilienceConfig(t *testing.T) {
	if err := (Config{Resume: true}).Validate(); err == nil {
		t.Error("Resume without Checkpoint must be rejected")
	}
	if err := (Config{Retry: resilience.RetryPolicy{MaxRetries: -1}}).Validate(); err == nil {
		t.Error("negative MaxRetries must be rejected")
	}
	if err := (Config{Breaker: resilience.BreakerConfig{Threshold: -1}}).Validate(); err == nil {
		t.Error("negative Breaker.Threshold must be rejected")
	}
}
