package scanner

import (
	"encoding/json"
	"fmt"
	"time"

	"quicspin/internal/resilience"
	"quicspin/internal/websim"
)

// openCheckpoint wires Config.Checkpoint/Resume to a resilience.Journal:
// it replays any existing journal when resuming and opens the directory
// for appending. Both journal and replay map are nil when checkpointing is
// disabled.
func openCheckpoint(cfg Config) (*resilience.Journal, map[string]json.RawMessage, error) {
	if cfg.Checkpoint == "" {
		return nil, nil, nil
	}
	var replayed map[string]json.RawMessage
	if cfg.Resume {
		var err error
		// Torn lines (a SIGKILL mid-append) are silently skipped: the
		// affected domains are simply rescanned, deterministically.
		replayed, _, err = resilience.ReplayFS(cfg.Journal.FS, cfg.Checkpoint)
		if err != nil {
			return nil, nil, err
		}
	}
	journal, err := resilience.OpenJournalWith(cfg.Checkpoint, cfg.Journal)
	if err != nil {
		return nil, nil, err
	}
	return journal, replayed, nil
}

// checkpointKey identifies one domain's scan within a campaign journal.
// Week and address family are part of the key so a shared checkpoint
// directory can never leak results across scan configurations.
func checkpointKey(cfg Config, domain string) string {
	fam := "v4"
	if cfg.IPv6 {
		fam = "v6"
	}
	return fmt.Sprintf("w%d/%s/%s", cfg.Week, fam, domain)
}

// replayResult looks one domain up in a replayed journal. The JSON round
// trip of DomainResult is lossless for everything the analysis pipeline
// consumes (addresses as text, durations as nanosecond integers), so a
// replayed result is byte-identical to its live counterpart in every
// rendered table.
func replayResult(replayed map[string]json.RawMessage, cfg Config, d *websim.Domain) (DomainResult, bool) {
	if replayed == nil {
		return DomainResult{}, false
	}
	raw, ok := replayed[checkpointKey(cfg, d.Name)]
	if !ok {
		return DomainResult{}, false
	}
	var res DomainResult
	if err := json.Unmarshal(raw, &res); err != nil || res.Domain != d.Name {
		// Corrupt or mismatched record: rescan rather than trust it.
		return DomainResult{}, false
	}
	return res, true
}

// breakerSkipResult records a domain an open circuit breaker refused to
// scan. It carries a distinct "breaker:" error class (not a timeout) so
// the skip is visible in tables and telemetry.
func breakerSkipResult(d *websim.Domain) DomainResult {
	return DomainResult{
		Domain: d.Name, TLD: d.TLD, Toplist: d.Toplist,
		Conns: []ConnResult{{Target: d.Host(), Err: "breaker: prefix circuit open, scan skipped"}},
	}
}

// classifyDomain buckets a finished domain by its landing outcome (the
// DNS error or first connection), which is the outcome attributable to the
// breaker group the domain was gated on.
func classifyDomain(res *DomainResult) resilience.Class {
	if res.DNSErr != "" {
		return resilience.Classify(res.DNSErr)
	}
	if len(res.Conns) > 0 {
		return resilience.Classify(res.Conns[0].Err)
	}
	return resilience.ClassNone
}

// nominalScanCost is the virtual time a non-transient scan advances its
// breaker group's clock by. Transient failures advance it by the full
// connection timeout instead — failing prefixes cool down in proportion to
// the time actually wasted on them.
const nominalScanCost = 500 * time.Millisecond

// domainOutcome converts a finished (or replayed, or skipped) domain into
// the breaker's accounting terms. It depends only on the result itself, so
// journal replay drives the breaker through exactly the transitions of the
// original run.
func domainOutcome(res *DomainResult, cfg Config) resilience.Outcome {
	cls := classifyDomain(res)
	switch {
	case cls == resilience.ClassBreakerOpen:
		return resilience.Outcome{Skipped: true}
	case cls.Transient():
		return resilience.Outcome{Transient: true, Cost: cfg.timeout()}
	default:
		return resilience.Outcome{Cost: nominalScanCost}
	}
}

// breakerKey maps a domain to its breaker group (origin AS), or "" when it
// does not participate (no address to back off from). Grouping uses the
// world's ground-truth addresses and the RIS-derived prefix table — in the
// paper's setting the prefix→AS mapping is known a priori from routing
// dumps, so the assignment is independent of scan-time DNS outcomes and
// therefore of worker scheduling.
func breakerKey(w *websim.World, cfg Config, d *websim.Domain) string {
	addr := d.V4
	if cfg.IPv6 {
		addr = d.V6
	}
	if !addr.IsValid() {
		return "" // unresolvable: no prefix to back off from
	}
	if asn, ok := w.ASDB().Table.Lookup(addr); ok {
		return fmt.Sprintf("as-%d", asn)
	}
	return "unattributed"
}

// batchGate precomputes every domain's breaker group and canonical
// position for RunBatch's strided workers. The streaming pipeline assigns
// the same slots incrementally in its generator instead, so lazy worlds
// never materialise the population just for breaker bookkeeping.
type batchGate struct {
	keys []string // "" = domain does not participate
	pos  []int
}

func newBatchGate(w *websim.World, cfg Config) *batchGate {
	if !cfg.Breaker.Enabled() {
		return nil
	}
	n := w.NumDomains()
	g := &batchGate{keys: make([]string, n), pos: make([]int, n)}
	next := map[string]int{}
	for i := 0; i < n; i++ {
		key := breakerKey(w, cfg, w.DomainAt(i))
		if key == "" {
			continue
		}
		g.keys[i] = key
		g.pos[i] = next[key]
		next[key]++
	}
	return g
}
