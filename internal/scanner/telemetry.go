package scanner

import (
	"strings"

	"quicspin/internal/hostile"
	"quicspin/internal/telemetry"
	"quicspin/internal/transport"
)

// Campaign metric names (Prometheus families; see README "Observability").
//
//	spinscan_domains_total              domains scanned
//	spinscan_domains_resolved_total     domains with DNS success
//	spinscan_conns_attempted_total      connection attempts (incl. redirects)
//	spinscan_conns_succeeded_total      completed QUIC handshakes
//	spinscan_conn_errors_total{class}   failed connections by error class
//	spinscan_redirects_followed_total   redirect hops followed
//	spinscan_spin_flip_conns_total      connections with spin flips
//	spinscan_redirect_depth             histogram of per-domain chain depth
//	spinscan_stage_seconds{stage}       virtual-time stage histograms
//	spinscan_workers_active             worker shards currently scanning
//	spinscan_week                       campaign week being scanned
//	spinscan_domains_population         domains queued across runs so far
//
// Resilience metric names (see README "Campaign resilience").
//
//	retries_total{stage}                transient-failure retries (dns|conn)
//	retries_exhausted_total             domains whose retry budget ran out
//	scan_panics_total                   worker panics downgraded to results
//	scan_stalls_total                   emulated loops killed by the watchdog
//	breaker_open_total                  circuit-breaker open transitions
//	breaker_groups_open                 groups currently open or half-open
//	breaker_skipped_total               domains skipped by an open breaker
//	breaker_probes_total                half-open probe scans
//	domains_resumed_total               domains replayed from a checkpoint
//	checkpoint_errors_total             journal write failures (scan continues)
//	scan_checkpoint_degraded            1 while the journal has disabled
//	                                    itself after repeated storage
//	                                    failures (probes may clear it)
//	journal_segment_rotations           checkpoint segment rollovers
//	journal_appends_skipped             appends fast-failed while degraded
//
// Performance metric names (see EXPERIMENTS.md "Performance & benchmarking").
//
//	scan_domains_per_sec                campaign throughput (updated per batch)
//	scan_alloc_bytes                    heap bytes allocated by the run
//	scan_allocs                         heap objects allocated by the run
//
// Hostile-endpoint metric names (see README "Hostile endpoints").
//
//	hostile_detected_total{profile}     connections classified hostile
//	budget_exceeded_total{kind}         per-connection resource budget trips
//
// Connection error classes.
const (
	errClassDNS     = "dns"
	errClassTimeout = "timeout"
	errClassReset   = "reset"
	errClassH3      = "h3"
	errClassPanic   = "panic"
	errClassStall   = "stall"
	errClassBreaker = "breaker"
	errClassHostile = "hostile"
	errClassOther   = "other"
)

var errClasses = []string{
	errClassDNS, errClassTimeout, errClassReset, errClassH3,
	errClassPanic, errClassStall, errClassBreaker, errClassHostile,
	errClassOther,
}

// budgetKinds enumerates the budget_exceeded_total label values.
var budgetKinds = []string{
	transport.BudgetRecvBytes, transport.BudgetRecvPackets,
	transport.BudgetMalformedDatagram, transport.BudgetMalformedFrame,
	transport.BudgetLifetime,
}

// errClass buckets a ConnResult.Err string for the error-class counters.
func errClass(s string) string {
	switch {
	case strings.HasPrefix(s, "panic:"):
		return errClassPanic
	case strings.HasPrefix(s, "stall:"):
		return errClassStall
	case strings.HasPrefix(s, "breaker:"):
		return errClassBreaker
	case strings.HasPrefix(s, "hostile:"):
		return errClassHostile
	case strings.HasPrefix(s, "timeout"):
		return errClassTimeout
	case strings.Contains(s, "reset") || strings.Contains(s, "closed"):
		return errClassReset
	case strings.Contains(s, "h3"):
		return errClassH3
	default:
		return errClassOther
	}
}

// scanTelemetry holds the pre-resolved instruments of one campaign run.
// Built from a nil registry it is a complete no-op (every instrument nil),
// which keeps the fast engine's hot path within the <2% overhead budget
// when telemetry is disabled.
type scanTelemetry struct {
	domains, resolved               *telemetry.Counter
	connsAttempted, connsSucceeded  *telemetry.Counter
	redirectsFollowed, flipConns    *telemetry.Counter
	errs                            map[string]*telemetry.Counter
	redirectDepth                   *telemetry.Histogram
	stHandshake, stRequest, stTotal *telemetry.Stage
	workersActive                   *telemetry.Gauge
	week, population                *telemetry.Gauge

	retries            map[string]*telemetry.Counter
	retriesExhausted   *telemetry.Counter
	panics, stalls     *telemetry.Counter
	breakerOpen        *telemetry.Counter
	breakerGroups      *telemetry.Gauge
	breakerSkipped     *telemetry.Counter
	breakerProbes      *telemetry.Counter
	resumed            *telemetry.Counter
	checkpointErrors   *telemetry.Counter
	checkpointDegraded *telemetry.Gauge
	journalRotations   *telemetry.Gauge
	journalSkipped     *telemetry.Gauge

	hostileDetected map[string]*telemetry.Counter
	budgetExceeded  map[string]*telemetry.Counter

	domainsPerSec *telemetry.Gauge
	allocBytes    *telemetry.Gauge
	allocObjects  *telemetry.Gauge
}

func newScanTelemetry(reg *telemetry.Registry) *scanTelemetry {
	t := &scanTelemetry{
		domains:           reg.Counter("spinscan_domains_total"),
		resolved:          reg.Counter("spinscan_domains_resolved_total"),
		connsAttempted:    reg.Counter("spinscan_conns_attempted_total"),
		connsSucceeded:    reg.Counter("spinscan_conns_succeeded_total"),
		redirectsFollowed: reg.Counter("spinscan_redirects_followed_total"),
		flipConns:         reg.Counter("spinscan_spin_flip_conns_total"),
		redirectDepth:     reg.Histogram("spinscan_redirect_depth", telemetry.DepthBuckets),
		stHandshake:       reg.Stage("spinscan_stage_seconds", "handshake", telemetry.DurationBuckets),
		stRequest:         reg.Stage("spinscan_stage_seconds", "request", telemetry.DurationBuckets),
		stTotal:           reg.Stage("spinscan_stage_seconds", "total", telemetry.DurationBuckets),
		workersActive:     reg.Gauge("spinscan_workers_active"),
		week:              reg.Gauge("spinscan_week"),
		population:        reg.Gauge("spinscan_domains_population"),
		errs:              map[string]*telemetry.Counter{},
		retries: map[string]*telemetry.Counter{
			retryStageDNS:  reg.Counter(telemetry.Name("retries_total", "stage", retryStageDNS)),
			retryStageConn: reg.Counter(telemetry.Name("retries_total", "stage", retryStageConn)),
		},
		retriesExhausted:   reg.Counter("retries_exhausted_total"),
		panics:             reg.Counter("scan_panics_total"),
		stalls:             reg.Counter("scan_stalls_total"),
		breakerOpen:        reg.Counter("breaker_open_total"),
		breakerGroups:      reg.Gauge("breaker_groups_open"),
		breakerSkipped:     reg.Counter("breaker_skipped_total"),
		breakerProbes:      reg.Counter("breaker_probes_total"),
		resumed:            reg.Counter("domains_resumed_total"),
		checkpointErrors:   reg.Counter("checkpoint_errors_total"),
		checkpointDegraded: reg.Gauge("scan_checkpoint_degraded"),
		journalRotations:   reg.Gauge("journal_segment_rotations"),
		journalSkipped:     reg.Gauge("journal_appends_skipped"),
		hostileDetected:    map[string]*telemetry.Counter{},
		budgetExceeded:     map[string]*telemetry.Counter{},
		domainsPerSec:      reg.Gauge("scan_domains_per_sec"),
		allocBytes:         reg.Gauge("scan_alloc_bytes"),
		allocObjects:       reg.Gauge("scan_allocs"),
	}
	for _, class := range errClasses {
		t.errs[class] = reg.Counter(telemetry.Name("spinscan_conn_errors_total", "class", class))
	}
	for _, p := range hostile.Profiles() {
		t.hostileDetected[p.String()] = reg.Counter(telemetry.Name("hostile_detected_total", "profile", p.String()))
	}
	for _, kind := range budgetKinds {
		t.budgetExceeded[kind] = reg.Counter(telemetry.Name("budget_exceeded_total", "kind", kind))
	}
	return t
}

// bumpBudget tallies one tripped per-connection resource budget.
func (t *scanTelemetry) bumpBudget(kind string) {
	if c, ok := t.budgetExceeded[kind]; ok {
		c.Inc()
	}
}

// recordDomain tallies one finished domain scan (and its connections).
func (t *scanTelemetry) recordDomain(d *DomainResult) {
	t.domains.Inc()
	switch {
	case d.Resolved:
		t.resolved.Inc()
	case d.DNSErr != "":
		t.errs[errClassDNS].Inc()
	}
	if len(d.Conns) > 0 {
		t.redirectDepth.Observe(float64(len(d.Conns) - 1))
	}
	for i := range d.Conns {
		c := &d.Conns[i]
		t.connsAttempted.Inc()
		if c.QUIC {
			t.connsSucceeded.Inc()
		}
		if c.HasFlips() {
			t.flipConns.Inc()
		}
		if c.Hop > 0 {
			t.redirectsFollowed.Inc()
		}
		if c.Err != "" {
			t.errs[errClass(c.Err)].Inc()
			if p := hostile.ProfileOf(c.Err); p != hostile.None {
				if hc, ok := t.hostileDetected[p.String()]; ok {
					hc.Inc()
				}
			}
		}
	}
}
