package scanner

import (
	"strings"

	"quicspin/internal/telemetry"
)

// Campaign metric names (Prometheus families; see README "Observability").
//
//	spinscan_domains_total              domains scanned
//	spinscan_domains_resolved_total     domains with DNS success
//	spinscan_conns_attempted_total      connection attempts (incl. redirects)
//	spinscan_conns_succeeded_total      completed QUIC handshakes
//	spinscan_conn_errors_total{class}   failed connections by error class
//	spinscan_redirects_followed_total   redirect hops followed
//	spinscan_spin_flip_conns_total      connections with spin flips
//	spinscan_redirect_depth             histogram of per-domain chain depth
//	spinscan_stage_seconds{stage}       virtual-time stage histograms
//	spinscan_workers_active             worker shards currently scanning
//	spinscan_week                       campaign week being scanned
//	spinscan_domains_population         domains queued across runs so far
//
// Connection error classes.
const (
	errClassDNS     = "dns"
	errClassTimeout = "timeout"
	errClassReset   = "reset"
	errClassH3      = "h3"
	errClassOther   = "other"
)

var errClasses = []string{errClassDNS, errClassTimeout, errClassReset, errClassH3, errClassOther}

// errClass buckets a ConnResult.Err string for the error-class counters.
func errClass(s string) string {
	switch {
	case strings.HasPrefix(s, "timeout"):
		return errClassTimeout
	case strings.Contains(s, "reset") || strings.Contains(s, "closed"):
		return errClassReset
	case strings.Contains(s, "h3"):
		return errClassH3
	default:
		return errClassOther
	}
}

// scanTelemetry holds the pre-resolved instruments of one campaign run.
// Built from a nil registry it is a complete no-op (every instrument nil),
// which keeps the fast engine's hot path within the <2% overhead budget
// when telemetry is disabled.
type scanTelemetry struct {
	domains, resolved               *telemetry.Counter
	connsAttempted, connsSucceeded  *telemetry.Counter
	redirectsFollowed, flipConns    *telemetry.Counter
	errs                            map[string]*telemetry.Counter
	redirectDepth                   *telemetry.Histogram
	stHandshake, stRequest, stTotal *telemetry.Stage
	workersActive                   *telemetry.Gauge
	week, population                *telemetry.Gauge
}

func newScanTelemetry(reg *telemetry.Registry) *scanTelemetry {
	t := &scanTelemetry{
		domains:           reg.Counter("spinscan_domains_total"),
		resolved:          reg.Counter("spinscan_domains_resolved_total"),
		connsAttempted:    reg.Counter("spinscan_conns_attempted_total"),
		connsSucceeded:    reg.Counter("spinscan_conns_succeeded_total"),
		redirectsFollowed: reg.Counter("spinscan_redirects_followed_total"),
		flipConns:         reg.Counter("spinscan_spin_flip_conns_total"),
		redirectDepth:     reg.Histogram("spinscan_redirect_depth", telemetry.DepthBuckets),
		stHandshake:       reg.Stage("spinscan_stage_seconds", "handshake", telemetry.DurationBuckets),
		stRequest:         reg.Stage("spinscan_stage_seconds", "request", telemetry.DurationBuckets),
		stTotal:           reg.Stage("spinscan_stage_seconds", "total", telemetry.DurationBuckets),
		workersActive:     reg.Gauge("spinscan_workers_active"),
		week:              reg.Gauge("spinscan_week"),
		population:        reg.Gauge("spinscan_domains_population"),
		errs:              map[string]*telemetry.Counter{},
	}
	for _, class := range errClasses {
		t.errs[class] = reg.Counter(telemetry.Name("spinscan_conn_errors_total", "class", class))
	}
	return t
}

// recordDomain tallies one finished domain scan (and its connections).
func (t *scanTelemetry) recordDomain(d *DomainResult) {
	t.domains.Inc()
	switch {
	case d.Resolved:
		t.resolved.Inc()
	case d.DNSErr != "":
		t.errs[errClassDNS].Inc()
	}
	if len(d.Conns) > 0 {
		t.redirectDepth.Observe(float64(len(d.Conns) - 1))
	}
	for i := range d.Conns {
		c := &d.Conns[i]
		t.connsAttempted.Inc()
		if c.QUIC {
			t.connsSucceeded.Inc()
		}
		if c.HasFlips() {
			t.flipConns.Inc()
		}
		if c.Hop > 0 {
			t.redirectsFollowed.Inc()
		}
		if c.Err != "" {
			t.errs[errClass(c.Err)].Inc()
		}
	}
}
