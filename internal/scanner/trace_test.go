package scanner

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"quicspin/internal/trace"
)

// TestTracingDoesNotChangeResults is the determinism gate: enabling the
// tracer must leave every DomainResult untouched for both engines at any
// worker count (tracing reads clocks but draws no randomness). Identical
// results imply byte-identical Tables 1–5; the analysis package asserts
// the rendered-table half.
func TestTracingDoesNotChangeResults(t *testing.T) {
	for _, tc := range []struct {
		engine Engine
		name   string
		scale  int
	}{
		{EngineEmulated, "emulated", 8_000},
		{EngineFast, "fast", 30_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := testWorld(tc.scale)
			base := Config{Week: 1, Engine: tc.engine, Seed: 7, Workers: 1}
			plain := mustRun(t, w, base)
			for _, workers := range []int{1, 4, 16} {
				cfg := base
				cfg.Workers = workers
				cfg.Trace = trace.New(trace.Config{RingSize: 8})
				sameScanResults(t, plain, mustRun(t, w, cfg))
			}
		})
	}
}

// TestTraceStagesRecorded checks the shape of a committed trace: a clean
// scan carries the dns → connect → handshake → h3 → observe → classify
// stage sequence and an "ok" outcome.
func TestTraceStagesRecorded(t *testing.T) {
	for _, tc := range []struct {
		engine Engine
		name   string
	}{{EngineEmulated, "emulated"}, {EngineFast, "fast"}} {
		t.Run(tc.name, func(t *testing.T) {
			w := testWorld(3_000)
			tr := trace.New(trace.Config{RingSize: 64})
			mustRun(t, w, Config{Week: 1, Engine: tc.engine, Seed: 7, Workers: 2, Trace: tr})
			want := []string{"dns", "connect", "handshake", "h3", "observe", "classify"}
			for _, tg := range tr.Recent(0) {
				if tg.Outcome != "ok" {
					continue
				}
				stages := map[string]bool{}
				for _, sp := range tg.Spans {
					stages[sp.Stage] = true
				}
				missing := []string{}
				for _, st := range want {
					if !stages[st] {
						missing = append(missing, st)
					}
				}
				if len(missing) > 0 {
					t.Fatalf("ok trace for %s missing stages %v (has %v)", tg.Domain, missing, tg.Spans)
				}
				return // one well-formed ok trace is enough
			}
			t.Fatal("no ok trace in the flight rings")
		})
	}
}

// TestPanicProducesFlightDump is the postmortem acceptance gate: an
// injected panic must write a flight dump whose rings contain the failing
// domain's stage trace, and the dump path must surface through the
// structured trace log (never through the deterministic result strings).
func TestPanicProducesFlightDump(t *testing.T) {
	w := testWorld(20_000)
	idx := len(w.Domains) / 2
	victim := w.Domains[idx].Name

	dir := t.TempDir()
	var mu sync.Mutex
	var logs []string
	tr := trace.New(trace.Config{Dir: dir, Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	cfg := Config{Week: 1, Engine: EngineEmulated, Seed: 3, Workers: 3, Trace: tr}
	cfg.panicHook = func(name string) bool { return name == victim }
	r := mustRun(t, w, cfg)

	vr := &r.Domains[idx]
	if len(vr.Conns) != 1 || !strings.HasPrefix(vr.Conns[0].Err, "panic:") {
		t.Fatalf("victim result = %+v, want one panic-classed conn", vr)
	}
	if !strings.Contains(vr.Conns[0].Err, victim) {
		t.Errorf("panic error %q does not name the victim domain", vr.Conns[0].Err)
	}

	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*-panic.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no panic flight dump in %s (err=%v)", dir, err)
	}
	d, err := trace.ReadFlightDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "panic" || d.Domain != victim {
		t.Fatalf("dump reason=%q domain=%q, want panic/%s", d.Reason, d.Domain, victim)
	}
	var got *trace.Trace
	for _, tg := range d.Traces {
		if tg.Domain == victim {
			got = tg
			break
		}
	}
	if got == nil {
		t.Fatalf("dump does not contain the victim's trace (%d traces)", len(d.Traces))
	}
	if got.Outcome != "panic" {
		t.Errorf("victim trace outcome = %q, want panic", got.Outcome)
	}
	// The hook fires after the scan's spans exist, so the dump keeps the
	// victim's stage trace, not just a one-line error.
	stages := map[string]bool{}
	for _, sp := range got.Spans {
		stages[sp.Stage] = true
	}
	if !stages["dns"] {
		t.Errorf("victim trace lacks its dns span: %+v", got.Spans)
	}
	if vr.Conns[0].Err != "" && !stages["connect"] && w.Domains[idx].V4.IsValid() {
		// A resolvable victim scanned its landing conn before panicking.
		t.Errorf("victim trace lacks its connect span: %+v", got.Spans)
	}

	mu.Lock()
	defer mu.Unlock()
	foundLog := false
	for _, l := range logs {
		if strings.Contains(l, "flight-recorder dump") && strings.Contains(l, "path=") && strings.Contains(l, victim) {
			foundLog = true
		}
	}
	if !foundLog {
		t.Errorf("no structured log line with the dump path; logs: %v", logs)
	}
}

// TestStallErrorContext pins the enriched watchdog message (satellite of
// the observability PR): a stall result names the dial target, the stage
// the loop died in, and the deterministic step budget — and, with tracing
// on, dumps the flight recorder.
func TestStallErrorContext(t *testing.T) {
	w := testWorld(10_000)
	dir := t.TempDir()
	tr := trace.New(trace.Config{Dir: dir, MaxDumps: 4})
	cfg := Config{Week: 1, Engine: EngineEmulated, Seed: 3, Workers: 2, Trace: tr}
	cfg.watchdogSteps = 50 // absurdly small: every live exchange "stalls"
	r := mustRun(t, w, cfg)

	checked := false
	for i := range r.Domains {
		for j := range r.Domains[i].Conns {
			c := &r.Domains[i].Conns[j]
			if !strings.HasPrefix(c.Err, "stall:") {
				continue
			}
			checked = true
			if !strings.Contains(c.Err, c.Target) {
				t.Fatalf("stall error %q does not name its target %q", c.Err, c.Target)
			}
			if !strings.Contains(c.Err, "(50 steps)") {
				t.Fatalf("stall error %q does not name the step budget", c.Err)
			}
			if !strings.Contains(c.Err, "handshake stage") && !strings.Contains(c.Err, "h3 stage") {
				t.Fatalf("stall error %q does not name the stage", c.Err)
			}
		}
	}
	if !checked {
		t.Fatal("no stalls despite a 50-step watchdog budget")
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*-stall.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no stall flight dump in %s (err=%v)", dir, err)
	}
}
