package scanner

import (
	"bytes"
	"io"
	"testing"

	"quicspin/internal/websim"
)

type closableBuffer struct{ bytes.Buffer }

func (c *closableBuffer) Close() error { return nil }

func TestQlogRoundTrip(t *testing.T) {
	p := websim.DefaultProfile()
	p.Scale = 200_000
	w := websim.Generate(p)
	res := mustRun(t, w, Config{Week: 3, Engine: EngineFast, Seed: 4, Workers: 2})

	// Serialise everything, then reassemble and compare per-connection
	// fields.
	files := map[string]*closableBuffer{}
	err := WriteResultQlogs(res, func(name string) (io.WriteCloser, error) {
		b := &closableBuffer{}
		files[name] = b
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no qlog files written")
	}
	var readers []io.Reader
	for _, b := range files {
		readers = append(readers, bytes.NewReader(b.Bytes()))
	}
	backs, err := MergeQlogConns(readers)
	if err != nil {
		t.Fatal(err)
	}
	if len(backs) != 1 {
		t.Fatalf("got %d weekly results, want 1", len(backs))
	}
	back := backs[0]
	if back.Week != 3 || back.IPv6 {
		t.Errorf("run metadata = week %d ipv6 %v", back.Week, back.IPv6)
	}
	// Same domains with same conn content (order of domains may differ;
	// index both by name).
	index := func(r *Result) map[string]*DomainResult {
		m := map[string]*DomainResult{}
		for i := range r.Domains {
			m[r.Domains[i].Domain] = &r.Domains[i]
		}
		return m
	}
	orig, got := index(res), index(back)
	// Only resolved domains have connections and thus qlog files.
	checked := 0
	for name, od := range orig {
		if len(od.Conns) == 0 {
			continue
		}
		gd, ok := got[name]
		if !ok {
			t.Fatalf("domain %s missing after round trip", name)
		}
		if len(gd.Conns) != len(od.Conns) {
			t.Fatalf("%s: conns %d != %d", name, len(gd.Conns), len(od.Conns))
		}
		for j := range od.Conns {
			oc, gc := od.Conns[j], gd.Conns[j]
			if oc.Target != gc.Target || oc.QUIC != gc.QUIC || oc.Status != gc.Status ||
				oc.Server != gc.Server || oc.Err != gc.Err || oc.Redirect != gc.Redirect ||
				oc.ZeroPkts != gc.ZeroPkts || oc.OnePkts != gc.OnePkts || oc.IP != gc.IP {
				t.Fatalf("%s conn %d differs:\n%+v\n%+v", name, j, oc, gc)
			}
			if len(oc.Observations) != len(gc.Observations) {
				t.Fatalf("%s conn %d: obs %d != %d", name, j, len(gc.Observations), len(oc.Observations))
			}
			for k := range oc.Observations {
				a, b := oc.Observations[k], gc.Observations[k]
				if a.PN != b.PN || a.Spin != b.Spin || a.VEC != b.VEC {
					t.Fatalf("%s conn %d obs %d: %+v != %+v", name, j, k, a, b)
				}
				// Timestamps survive within qlog's float-ms precision.
				if d := a.T.Sub(b.T); d > 1e4 || d < -1e4 {
					t.Fatalf("%s conn %d obs %d: time drift %v", name, j, k, d)
				}
			}
			if len(oc.StackRTTs) != len(gc.StackRTTs) {
				t.Fatalf("%s conn %d: stack samples %d != %d", name, j, len(gc.StackRTTs), len(oc.StackRTTs))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("round trip checked nothing")
	}
}

func TestReadConnQlogRejectsForeignTrace(t *testing.T) {
	src := `{"qlog_version":"0.4","vantage_point":"client","reference_time":"2023-05-15T00:00:00Z"}` + "\n"
	if _, _, _, _, err := ReadConnQlog(bytes.NewReader([]byte(src))); err == nil {
		t.Error("trace without scan common fields accepted")
	}
}

func TestQlogClassificationSurvives(t *testing.T) {
	// A flipping connection keeps enough data for spin-RTT analysis.
	p := websim.DefaultProfile()
	p.Scale = 100_000
	w := websim.Generate(p)
	res := mustRun(t, w, Config{Week: 12, Engine: EngineEmulated, Seed: 8, Workers: 2})
	var d *DomainResult
	var idx int
	for i := range res.Domains {
		for j := range res.Domains[i].Conns {
			if res.Domains[i].Conns[j].HasFlips() {
				d, idx = &res.Domains[i], j
			}
		}
	}
	if d == nil {
		t.Skip("no flipping connection in sample")
	}
	var buf bytes.Buffer
	if err := WriteConnQlog(&buf, d, idx, res.Week, false); err != nil {
		t.Fatal(err)
	}
	_, c, _, _, err := ReadConnQlog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasFlips() || len(c.Observations) < 2 {
		t.Errorf("flips lost in round trip: %+v", c)
	}
}
