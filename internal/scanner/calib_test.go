package scanner

import (
	"fmt"
	"os"
	"testing"

	"quicspin/internal/websim"
)

// TestCalibrationReport prints the key reproduction shares. Enable with
// QUICSPIN_CALIBRATE=1; used when tuning the default profile.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("QUICSPIN_CALIBRATE") == "" {
		t.Skip("set QUICSPIN_CALIBRATE=1 to run")
	}
	p := websim.DefaultProfile()
	p.Scale = 10_000
	if v := os.Getenv("QUICSPIN_SCALE"); v != "" {
		fmt.Sscanf(v, "%d", &p.Scale)
	}
	w := websim.Generate(p)
	for _, ipv6 := range []bool{false, true} {
		r := mustRun(t, w, Config{Week: 12, IPv6: ipv6, Engine: EngineEmulated, Seed: 2, Workers: 8})
		type agg struct{ dom, res, quic, spin int }
		views := map[string]*agg{"top": {}, "zone": {}}
		orgTot := map[string]int{}
		orgSpin := map[string]int{}
		ips := map[string][3]int{} // per view concat: not needed; track zone IPs
		zoneIPs := map[string]*[2]bool{}
		for i := range r.Domains {
			d := &r.Domains[i]
			var a *agg
			if d.Toplist {
				a = views["top"]
			} else if websim.InZoneView(d.TLD) {
				a = views["zone"]
			} else {
				continue
			}
			a.dom++
			if d.Resolved {
				a.res++
			}
			if d.QUIC() {
				a.quic++
			}
			if d.SpinActivity() {
				a.spin++
			}
			for j := range d.Conns {
				c := &d.Conns[j]
				if !c.QUIC {
					continue
				}
				org := w.ASDB().OrgOf(c.IP)
				orgTot[org]++
				if c.HasFlips() {
					orgSpin[org]++
				}
				if !d.Toplist {
					st := zoneIPs[c.IP.String()]
					if st == nil {
						st = &[2]bool{}
						zoneIPs[c.IP.String()] = st
					}
					st[0] = true
					if c.HasFlips() {
						st[1] = true
					}
				}
			}
		}
		fmt.Printf("=== ipv6=%v\n", ipv6)
		for name, a := range views {
			fmt.Printf("%-5s dom=%d res=%.3f quic=%.3f spin/quic=%.4f\n",
				name, a.dom, f(a.res, a.dom), f(a.quic, a.res), f(a.spin, a.quic))
		}
		qip, sip := 0, 0
		for _, st := range zoneIPs {
			if st[0] {
				qip++
			}
			if st[1] {
				sip++
			}
		}
		fmt.Printf("zone QUIC IPs=%d spinIP share=%.3f\n", qip, f(sip, qip))
		for _, org := range []string{"Cloudflare", "Google", "Hostinger", "OVH SAS", "A2 Hosting", "SingleHop", "Server Central", "Fastly"} {
			fmt.Printf("  %-15s tot=%6d spin=%.3f\n", org, orgTot[org], f(orgSpin[org], orgTot[org]))
		}
		other, otherSpin := 0, 0
		known := map[string]bool{"Cloudflare": true, "Google": true, "Hostinger": true, "OVH SAS": true, "A2 Hosting": true, "SingleHop": true, "Server Central": true, "Fastly": true}
		for org, n := range orgTot {
			if !known[org] {
				other += n
				otherSpin += orgSpin[org]
			}
		}
		fmt.Printf("  %-15s tot=%6d spin=%.3f\n", "<other>", other, f(otherSpin, other))
		_ = ips
	}
}

func f(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
