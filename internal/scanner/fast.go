package scanner

import (
	"math/rand"
	"net/netip"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/hostile"
	"quicspin/internal/targets"
	"quicspin/internal/trace"
	"quicspin/internal/transport"
	"quicspin/internal/websim"
)

// fastEngine synthesises scan outcomes without packet emulation, using the
// same ground truth (servers, policies, response plans) and a closed-form
// model of the emulated engine's packet timing. It exists for
// campaign-scale runs; TestEnginesAgree validates it against the emulated
// engine.
type fastEngine struct {
	world *websim.World
	cfg   Config
	rng   *rand.Rand
	tm    *scanTelemetry
	rec   *trace.Recorder
	// clock feeds runChain's trace timestamps; bound once so the per-scan
	// call passes an existing closure instead of allocating one.
	clock    func() time.Time
	resolver *dns.Resolver
	now      time.Time
	// drng is the reusable per-domain Rand: reseeding it with domainSeed is
	// O(1) until the first draw (see lazySource), which skips the expensive
	// math/rand state rebuild for every domain whose scan rolls no dice.
	drng *rand.Rand
	// failFirst mirrors netem's injected-outage schedule for engine parity:
	// the first k connection attempts against an address time out, then it
	// recovers. Counters live per engine (per worker), like netem's.
	failFirst map[string]int

	// times and obs are per-connection synthesis scratch, reused across
	// connections to keep the campaign hot loop allocation-free; retained
	// observation series are copied out (see synthesizeObservations).
	times []time.Duration
	obs   []core.Observation
}

func newFastEngine(w *websim.World, cfg Config, rng *rand.Rand, tm *scanTelemetry, rec *trace.Recorder) *fastEngine {
	e := &fastEngine{
		world:    w,
		cfg:      cfg,
		rng:      rng,
		tm:       tm,
		rec:      rec,
		resolver: dns.NewResolver(w.DNSBackend(), rng),
		now:      campaignStart(cfg.Week),
		drng:     newLazyRand(),
	}
	e.clock = func() time.Time { return e.now }
	e.resolver.EnableCache()
	e.resolver.SetTelemetry(cfg.Telemetry)
	e.resolver.SetSchedule(cfg.DNSSchedule)
	if len(cfg.NetFailFirst) > 0 {
		e.failFirst = make(map[string]int, len(cfg.NetFailFirst))
		for addr, k := range cfg.NetFailFirst {
			e.failFirst[addr] = k
		}
	}
	return e
}

func (e *fastEngine) scanDomain(d *websim.Domain) DomainResult {
	// Reseed the reusable Rand in place: (*rand.Rand).Seed resets its Read
	// cache and re-arms the lazy source, so the stream is byte-identical to
	// a fresh domainRng — without the state rebuild for draw-free scans.
	e.drng.Seed(domainSeed(e.cfg, d.Name))
	e.rng = e.drng
	// No virtual clock to advance here: retry backoff only draws jitter
	// from the domain rng (sleep is a no-op).
	return runChain(e.cfg, e.rng, e.resolver, nil, e.tm, e.rec, e.clock, d, e.connect)
}

// healthy implements engine; the fast engine holds no loop state that can
// stall.
func (e *fastEngine) healthy() bool { return true }

// clockNow implements engine: the week's fixed campaign-start instant
// (the fast engine's closed-form timeline is anchored there).
func (e *fastEngine) clockNow() time.Time { return e.now }

// Model constants mirroring the emulated transport.
const (
	fastMTUPayload   = 1100 // stream bytes per short packet (after headers)
	fastBurstSize    = 10   // transport.DefaultMaxInFlight
	fastAckDelay     = 25 * time.Millisecond
	fastStackSamples = 4
)

func (e *fastEngine) connect(target string, ip netip.Addr, hop int, path string) ConnResult {
	out := ConnResult{Target: target, IP: ip, Hop: hop}
	rec := e.rec
	if rec != nil {
		rec.StageStart("connect", e.now)
		rec.SpanAttrInt("hop", int64(hop))
		rec.SpanAttr("target", target)
		rec.SpanAttr("ip", ip.String())
	}
	if k := e.failFirst[ip.String()]; k > 0 {
		e.failFirst[ip.String()] = k - 1
		// Mirror the emulated engine during an injected outage: every
		// packet is lost, so the handshake times out.
		out.Err = "timeout: no QUIC handshake"
		e.tm.stTotal.Start(e.now).End(e.now.Add(e.cfg.timeout()))
		rec.StageEnd(e.now.Add(e.cfg.timeout()))
		return out
	}
	srv := e.world.ServerAt(ip)
	if srv == nil || !srv.QUIC {
		out.Err = "timeout: no QUIC handshake"
		// Model the emulated engine's stage timing: a blackholed target
		// burns the full virtual timeout.
		e.tm.stTotal.Start(e.now).End(e.now.Add(e.cfg.timeout()))
		rec.StageEnd(e.now.Add(e.cfg.timeout()))
		return out
	}
	if rec != nil && srv.Hostile != hostile.None {
		rec.SpanAttr("hostile", srv.Hostile.String())
	}
	if srv.Hostile == hostile.Slowloris {
		// The slowloris peer strings the handshake along without ever
		// completing it: the scan burns the full timeout, handshake-less.
		out.Err = hostile.ErrText(hostile.Slowloris)
		e.tm.stTotal.Start(e.now).End(e.now.Add(e.cfg.timeout()))
		rec.StageEnd(e.now.Add(e.cfg.timeout()))
		return out
	}
	out.QUIC = true
	switch srv.Hostile {
	case hostile.MalformedHeader, hostile.MalformedFrames, hostile.PacketStorm,
		hostile.OversizedBody, hostile.HeaderFlood, hostile.QlogGarbage,
		hostile.MidstreamReset:
		// Post-handshake misbehavior: the scan completes the handshake but
		// never obtains a usable response (QUIC=true, Status=0), matching
		// the emulated engine's graceful degradation.
		return e.hostileOutcome(out, srv)
	}

	rtt := e.pathRTT(srv)
	// Stack samples: one per handshake flight plus data-phase samples,
	// each jittered around the network RTT.
	out.StackRTTs = make([]time.Duration, 0, fastStackSamples)
	for i := 0; i < fastStackSamples; i++ {
		out.StackRTTs = append(out.StackRTTs, jittered(e.rng, rtt, 0.04))
	}

	// Response content.
	d := e.world.DomainByHost(target)
	out.Server = srv.Software
	respBytes := 512
	switch {
	case d == nil:
		out.Status = 404
	case d.RedirectTo != "" && path == "/":
		out.Status = 301
		out.Redirect = "https://" + targets.PrependWWW(d.RedirectTo) + "/landing"
	default:
		out.Status = 200
		respBytes = d.BodyBytes
	}

	// Spin series synthesis: the connection-level spin policy dice are
	// rolled exactly like the transport does (1-in-N disable included).
	ctrl := core.NewController(false, srv.PolicyForWeek(e.cfg.Week), e.rng)
	lastAt := e.synthesizeObservations(&out, ctrl.EffectiveMode(), srv, rtt, respBytes)

	// Stage spans mirroring the emulated engine's virtual timeline:
	// handshake completes at ~1.5 RTT, the request phase runs until the
	// last received packet.
	hsAt := e.now.Add(3 * rtt / 2)
	e.tm.stHandshake.Start(e.now).End(hsAt)
	e.tm.stRequest.Start(hsAt).End(hsAt.Add(lastAt))
	e.tm.stTotal.Start(e.now).End(hsAt.Add(lastAt))
	if rec != nil {
		end := hsAt.Add(lastAt)
		rec.StageEnd(hsAt)
		rec.StageStart("handshake", e.now)
		rec.StageEnd(hsAt)
		rec.StageStart("h3", hsAt)
		rec.StageEnd(end)
		rec.StageStart("observe", end)
		rec.SpanAttrInt("pkts_zero", int64(out.ZeroPkts))
		rec.SpanAttrInt("pkts_one", int64(out.OnePkts))
		rec.SpanAttrInt("spin_edges", int64(spinEdges(e.obs)))
		rec.SpanAttrInt("rtt_samples", int64(len(out.StackRTTs)))
		rec.StageEnd(end)
	}
	return out
}

// hostileOutcome models a post-handshake hostile exchange: profiles that
// characteristically trip a per-connection resource budget report the
// budget's error text (and bump its counter) like the emulated transport
// does; the rest carry the profile's canonical hostile error.
func (e *fastEngine) hostileOutcome(out ConnResult, srv *websim.Server) ConnResult {
	switch srv.Hostile {
	case hostile.MalformedHeader:
		out.Err = hostile.BudgetErrText(transport.BudgetMalformedDatagram)
		e.tm.bumpBudget(transport.BudgetMalformedDatagram)
		e.rec.MarkDump("budget")
	case hostile.MalformedFrames:
		out.Err = hostile.BudgetErrText(transport.BudgetMalformedFrame)
		e.tm.bumpBudget(transport.BudgetMalformedFrame)
		e.rec.MarkDump("budget")
	case hostile.PacketStorm:
		out.Err = hostile.BudgetErrText(transport.BudgetRecvPackets)
		e.tm.bumpBudget(transport.BudgetRecvPackets)
		e.rec.MarkDump("budget")
	default:
		out.Err = hostile.ErrText(srv.Hostile)
	}
	// Stage spans: handshake at ~1.5 RTT as usual, and roughly one more
	// round trip until the degradation cutoff.
	rtt := e.pathRTT(srv)
	hsAt := e.now.Add(3 * rtt / 2)
	e.tm.stHandshake.Start(e.now).End(hsAt)
	e.tm.stRequest.Start(hsAt).End(hsAt.Add(rtt))
	e.tm.stTotal.Start(e.now).End(hsAt.Add(rtt))
	if rec := e.rec; rec != nil {
		rec.StageEnd(hsAt)
		rec.StageStart("handshake", e.now)
		rec.StageEnd(hsAt)
		rec.StageStart("h3", hsAt)
		rec.StageEnd(hsAt.Add(rtt))
	}
	return out
}

func (e *fastEngine) pathRTT(srv *websim.Server) time.Duration {
	// Base RTT plus symmetric jitter as netem would apply; the vantage
	// point's extra one-way delay and jitter enter the closed form exactly
	// as the emulated engine's stacked netem path applies them (once per
	// direction).
	base := srv.BaseRTT + 2*e.cfg.Vantage.ExtraDelay
	j := time.Duration(e.world.Profile.PathJitterMs*float64(time.Millisecond)) + e.cfg.Vantage.ExtraJitter
	if j <= 0 {
		return base
	}
	return base + time.Duration(e.rng.Int63n(int64(2*j)))
}

// synthesizeObservations emulates the received 1-RTT packet series of the
// client: HANDSHAKE_DONE + response bursts, with the spin value evolving
// as the server reflects the client's wave. It returns the arrival time of
// the last packet relative to handshake completion (the request stage
// duration).
func (e *fastEngine) synthesizeObservations(out *ConnResult, mode core.Mode, srv *websim.Server, rtt time.Duration, respBytes int) time.Duration {
	plan := srv.ResponsePlan(e.rng, respBytes)
	// Receive times of server packets, relative to handshake completion.
	times := e.times[:0]
	times = append(times, 0) // HANDSHAKE_DONE (+ request ACK)
	for _, ch := range plan {
		pkts := (ch.Bytes + fastMTUPayload - 1) / fastMTUPayload
		if pkts < 1 {
			pkts = 1
		}
		bursts := (pkts + fastBurstSize - 1) / fastBurstSize
		for b := 0; b < bursts; b++ {
			at := ch.At + time.Duration(b)*rtt
			n := fastBurstSize
			if b == bursts-1 {
				n = pkts - b*fastBurstSize
			}
			for k := 0; k < n; k++ {
				times = append(times, at+time.Duration(k)*50*time.Microsecond)
			}
		}
	}
	e.times = times // keep the grown scratch for the next connection

	// Client spin wave: the client flips its value when it receives a new
	// largest packet; the server's packets reflect the client value that
	// was current roughly one client-ack earlier. We model the reflected
	// value as flipping at every burst boundary ≥ one RTT after the
	// previous flip (the ack round trip).
	spin := false // server starts reflecting the client's 0
	greaseVal := e.rng.Intn(2) == 1
	lastFlip := -rtt
	base := campaignStart(e.cfg.Week).Add(3 * rtt / 2) // handshake done at ~1.5 RTT
	var pn uint64
	var lastAt time.Duration
	obs := e.obs[:0]
	for _, at := range times {
		if at > lastAt {
			lastAt = at
		}
		if mode == core.ModeSpin && at >= lastFlip+rtt && at > 0 {
			spin = !spin
			lastFlip = at
		}
		v := spin
		switch mode {
		case core.ModeZero:
			v = false
		case core.ModeOne:
			v = true
		case core.ModeGreasePerPacket:
			v = e.rng.Intn(2) == 1
		case core.ModeGreasePerConn:
			v = greaseVal
		}
		// Spin liars override the policy's value with their synthetic wire
		// pattern (after the switch, so rng draws stay identical).
		switch srv.Hostile {
		case hostile.SpinFlap:
			v = pn%2 == 1
		case hostile.SpinLiar:
			v = (pn/2)%2 == 1
		}
		ob := core.Observation{T: base.Add(at), PN: pn, Spin: v}
		pn++
		if v {
			out.OnePkts++
		} else {
			out.ZeroPkts++
		}
		obs = append(obs, ob)
	}
	e.obs = obs // keep the grown scratch for the next connection
	// Run the same pure spin-pattern detector the emulated engine applies,
	// before the no-flip discard (the detector needs the series).
	if p := hostile.DetectSpinPattern(obs); p != hostile.None {
		out.Err = hostile.ErrText(p)
	}
	// Only series with flips are retained (unless the caller keeps all), so
	// the synthesis above runs entirely in scratch and the retained minority
	// is copied out exactly-sized here.
	if out.HasFlips() || e.cfg.KeepAllObservations {
		out.Observations = append(make([]core.Observation, 0, len(obs)), obs...)
	}
	return lastAt
}

func jittered(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	f := 1 + (rng.Float64()*2-1)*frac
	return time.Duration(float64(d) * f)
}
