package scanner

import "math/rand"

// lazySource is a rand.Source64 that defers the expensive math/rand
// reseed (a 607-word lagged-Fibonacci state rebuild, ~5 KB of writes) until
// the first draw. Campaign profiling shows the majority of fast-engine CPU
// going into reseeding streams that are then never drawn from: domains that
// fail DNS, resolve to non-QUIC blackholes, or sit behind an injected
// outage return before any randomness is consumed. Arming the seed is O(1);
// only scans that actually roll dice pay for the state rebuild.
//
// The produced stream is byte-identical to rand.NewSource(seed): Seed on
// the wrapped source rebuilds exactly the state a fresh source would have.
type lazySource struct {
	src  rand.Source64
	seed int64
	// armed marks a pending seed: src state is stale until the next draw.
	armed bool
}

// newLazyRand returns a *rand.Rand whose reseeding via (*rand.Rand).Seed is
// O(1) until the first draw. Rand.Seed also resets the Rand's internal
// Read cache, so a reseeded instance is indistinguishable from a freshly
// constructed rand.New(rand.NewSource(seed)).
func newLazyRand() *rand.Rand {
	return rand.New(&lazySource{src: rand.NewSource(0).(rand.Source64)})
}

func (s *lazySource) realize() {
	if s.armed {
		s.src.Seed(s.seed)
		s.armed = false
	}
}

// Seed implements rand.Source by arming the seed without rebuilding state.
func (s *lazySource) Seed(seed int64) {
	s.seed = seed
	s.armed = true
}

// Int63 implements rand.Source.
func (s *lazySource) Int63() int64 {
	s.realize()
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *lazySource) Uint64() uint64 {
	s.realize()
	return s.src.Uint64()
}

// fnv64a hashes s with FNV-1a (identical to hash/fnv's Sum64 over the same
// bytes) without the hasher allocation of the standard library.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// domainSeed derives the per-domain stream seed from (Seed, Week, name).
// It must stay in lockstep with domainRng: both engines and the resume
// machinery rely on a domain's stream being a pure function of these three.
func domainSeed(cfg Config, name string) int64 {
	return cfg.Seed ^ int64(cfg.Week)<<32 ^ int64(fnv64a(name))
}
