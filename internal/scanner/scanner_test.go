package scanner

import (
	"math"
	"reflect"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/websim"
)

// testWorld returns a small world for scan tests.
func testWorld(scale int) *websim.World {
	p := websim.DefaultProfile()
	p.Scale = scale
	return websim.Generate(p)
}

type tally struct {
	domains, resolved, quic, spin int
	conns, flipConns              int
	redirectsFollowed             int
	statuses                      map[int]int
}

func tallyResult(r *Result) tally {
	t := tally{statuses: map[int]int{}}
	for i := range r.Domains {
		d := &r.Domains[i]
		t.domains++
		if d.Resolved {
			t.resolved++
		}
		if d.QUIC() {
			t.quic++
		}
		if d.SpinActivity() {
			t.spin++
		}
		for j := range d.Conns {
			c := &d.Conns[j]
			t.conns++
			if c.HasFlips() {
				t.flipConns++
			}
			if c.Hop > 0 {
				t.redirectsFollowed++
			}
			if c.Status != 0 {
				t.statuses[c.Status]++
			}
		}
	}
	return t
}

func TestEmulatedScanSmall(t *testing.T) {
	w := testWorld(100_000) // ~27 toplist + ~2165 zone domains
	r := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 42, Workers: 4})
	ty := tallyResult(r)
	if ty.domains != len(w.Domains) {
		t.Fatalf("domains scanned = %d, want %d", ty.domains, len(w.Domains))
	}
	if ty.resolved == 0 || ty.quic == 0 {
		t.Fatalf("vacuous scan: %+v", ty)
	}
	resolveRate := float64(ty.resolved) / float64(ty.domains)
	if resolveRate < 0.75 || resolveRate > 0.95 {
		t.Errorf("resolve rate = %.3f", resolveRate)
	}
	quicRate := float64(ty.quic) / float64(ty.resolved)
	if quicRate < 0.06 || quicRate > 0.22 {
		t.Errorf("QUIC rate = %.3f, want ≈0.12", quicRate)
	}
	if ty.spin == 0 {
		t.Error("no spin-active domains found")
	}
	if ty.statuses[200] == 0 {
		t.Error("no 200 responses")
	}
	if ty.redirectsFollowed == 0 || ty.statuses[301] == 0 {
		t.Errorf("redirects not exercised: %+v", ty.statuses)
	}
}

func TestEmulatedSpinServersProduceFlips(t *testing.T) {
	w := testWorld(100_000)
	r := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 7, Workers: 2})
	// For every spin-flip connection, the server's ground truth must be a
	// flipping mode (spin or grease) — zero/one servers must never flip.
	for i := range r.Domains {
		for j := range r.Domains[i].Conns {
			c := &r.Domains[i].Conns[j]
			if !c.HasFlips() {
				continue
			}
			srv := w.ServerAt(c.IP)
			if srv == nil {
				t.Fatalf("flip conn with unknown server %v", c.IP)
			}
			mode := srv.PolicyForWeek(1).Mode
			if mode == core.ModeZero || mode == core.ModeOne {
				t.Errorf("server %v mode %v produced flips", c.IP, mode)
			}
		}
	}
}

func TestEmulatedSpinRTTSamples(t *testing.T) {
	w := testWorld(50_000)
	r := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 3, Workers: 4})
	samples := 0
	accurate := 0
	for i := range r.Domains {
		for j := range r.Domains[i].Conns {
			c := &r.Domains[i].Conns[j]
			if !c.HasFlips() || len(c.StackRTTs) == 0 {
				continue
			}
			rtts := core.SpinRTTs(c.Observations, false)
			srv := w.ServerAt(c.IP)
			for _, s := range rtts {
				samples++
				if s >= srv.BaseRTT/2 && s <= 2*srv.BaseRTT+50*time.Millisecond {
					accurate++
				}
			}
		}
	}
	if samples == 0 {
		t.Fatal("no spin RTT samples across the scan")
	}
	if accurate == 0 {
		t.Error("no spin samples near the network RTT; transfer pacing broken")
	}
}

func TestScanDeterminism(t *testing.T) {
	w := testWorld(200_000)
	a := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 5, Workers: 3})
	b := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 5, Workers: 3})
	sameScanResults(t, a, b)
}

// TestScanWorkerInvariance checks the stronger property the campaign
// relies on: per-domain randomness is derived from (Seed, Week, domain),
// so the worker count must not change any measured quantity.
func TestScanWorkerInvariance(t *testing.T) {
	w := testWorld(200_000)
	for _, eng := range []Engine{EngineEmulated, EngineFast} {
		a := mustRun(t, w, Config{Week: 1, Engine: eng, Seed: 5, Workers: 1})
		b := mustRun(t, w, Config{Week: 1, Engine: eng, Seed: 5, Workers: 5})
		sameScanResults(t, a, b)
	}
}

// sameScanResults asserts that two runs agree on everything the analysis
// pipeline consumes. Absolute observation timestamps may differ (each
// worker's virtual clock advances with its own scan order), so spin series
// are compared through their RTT durations.
func sameScanResults(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Domains) != len(b.Domains) {
		t.Fatal("result sizes differ")
	}
	for i := range a.Domains {
		da, db := &a.Domains[i], &b.Domains[i]
		if da.Domain != db.Domain || da.Resolved != db.Resolved || da.DNSErr != db.DNSErr {
			t.Fatalf("domain %s resolution differs between runs", da.Domain)
		}
		if len(da.Conns) != len(db.Conns) {
			t.Fatalf("domain %s: %d vs %d conns", da.Domain, len(da.Conns), len(db.Conns))
		}
		for j := range da.Conns {
			ca, cb := &da.Conns[j], &db.Conns[j]
			if ca.Target != cb.Target || ca.IP != cb.IP || ca.Hop != cb.Hop ||
				ca.Err != cb.Err || ca.QUIC != cb.QUIC || ca.Status != cb.Status ||
				ca.Server != cb.Server || ca.Redirect != cb.Redirect ||
				ca.ZeroPkts != cb.ZeroPkts || ca.OnePkts != cb.OnePkts {
				t.Fatalf("domain %s conn %d differs between runs", da.Domain, j)
			}
			if !reflect.DeepEqual(ca.StackRTTs, cb.StackRTTs) {
				t.Fatalf("domain %s conn %d stack RTTs differ", da.Domain, j)
			}
			ra := core.SpinRTTs(ca.Observations, false)
			rb := core.SpinRTTs(cb.Observations, false)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("domain %s conn %d spin RTT series differ", da.Domain, j)
			}
		}
	}
}

func TestFastScanSmall(t *testing.T) {
	w := testWorld(100_000)
	r := mustRun(t, w, Config{Week: 1, Engine: EngineFast, Seed: 42, Workers: 4})
	ty := tallyResult(r)
	if ty.resolved == 0 || ty.quic == 0 || ty.spin == 0 {
		t.Fatalf("vacuous fast scan: %+v", ty)
	}
	if ty.statuses[301] == 0 || ty.redirectsFollowed == 0 {
		t.Error("fast engine does not follow redirects")
	}
}

// TestEnginesAgree validates the fast engine against the emulated one on
// the aggregate rates the tables report.
func TestEnginesAgree(t *testing.T) {
	w := testWorld(40_000) // ~5.4k zone domains
	em := tallyResult(mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 11, Workers: 4}))
	fa := tallyResult(mustRun(t, w, Config{Week: 1, Engine: EngineFast, Seed: 11, Workers: 4}))

	rate := func(ty tally, num, den int) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	pairs := []struct {
		name string
		e, f float64
		tol  float64
	}{
		{"resolve", rate(em, em.resolved, em.domains), rate(fa, fa.resolved, fa.domains), 0.02},
		{"quic", rate(em, em.quic, em.resolved), rate(fa, fa.quic, fa.resolved), 0.02},
		{"spin", rate(em, em.spin, em.quic), rate(fa, fa.spin, fa.quic), 0.05},
	}
	for _, p := range pairs {
		if math.Abs(p.e-p.f) > p.tol {
			t.Errorf("%s rate: emulated %.4f vs fast %.4f (tol %.3f)", p.name, p.e, p.f, p.tol)
		}
	}
}

func TestWeekChangesSpinDeployment(t *testing.T) {
	// Servers with windowed deployments must show different spin activity
	// across weeks; stable servers must not.
	w := testWorld(50_000)
	r1 := mustRun(t, w, Config{Week: 1, Engine: EngineFast, Seed: 9, Workers: 2})
	r12 := mustRun(t, w, Config{Week: 12, Engine: EngineFast, Seed: 9, Workers: 2})
	diff := 0
	for i := range r1.Domains {
		if r1.Domains[i].SpinActivity() != r12.Domains[i].SpinActivity() {
			diff++
		}
	}
	if diff == 0 {
		t.Error("spin activity identical across weeks 1 and 12; churn model inert")
	}
}

func TestRedirectTarget(t *testing.T) {
	cases := map[string]string{
		"https://www.example.com/landing": "www.example.com",
		"https://www.example.com":         "www.example.com",
		"http://www.example.com/":         "",
		"":                                "",
		"https://":                        "",
		// Case-insensitive scheme, mixed-case host, explicit port.
		"HTTPS://Host:443/x":              "host",
		"Https://WWW.Example.COM/landing": "www.example.com",
		"https://www.example.com:8443":    "www.example.com",
		// A non-numeric "port" is not a port; nothing is stripped.
		"https://www.example.com:abc/x": "www.example.com:abc",
		"HTTP://www.example.com/":       "",
	}
	for in, want := range cases {
		if got := redirectTarget(in); got != want {
			t.Errorf("redirectTarget(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRedirectPath(t *testing.T) {
	cases := map[string]string{
		"https://www.example.com/landing": "/landing",
		"https://www.example.com":         "/",
		"HTTPS://Host:443/x":              "/x",
		"https://host:8443/a/b?q=1":       "/a/b?q=1",
		"http://www.example.com/x":        "/",
		"":                                "/",
	}
	for in, want := range cases {
		if got := redirectPath(in); got != want {
			t.Errorf("redirectPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConnResultHelpers(t *testing.T) {
	c := &ConnResult{ZeroPkts: 3, OnePkts: 0}
	if c.Kind() != core.KindAllZero {
		t.Errorf("kind = %v", c.Kind())
	}
	c = &ConnResult{ZeroPkts: 0, OnePkts: 2}
	if c.Kind() != core.KindAllOne {
		t.Errorf("kind = %v", c.Kind())
	}
	c = &ConnResult{ZeroPkts: 1, OnePkts: 2}
	if c.Kind() != core.KindFlipping || !c.HasFlips() {
		t.Errorf("kind = %v", c.Kind())
	}
	c = &ConnResult{}
	if c.Kind() != core.KindEmpty {
		t.Errorf("kind = %v", c.Kind())
	}
	c = &ConnResult{StackRTTs: []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}}
	if c.StackMin() != 10*time.Millisecond {
		t.Errorf("StackMin = %v", c.StackMin())
	}
	if (&ConnResult{}).StackMin() != 0 {
		t.Error("empty StackMin != 0")
	}
}

func BenchmarkEmulatedScanPerDomain(b *testing.B) {
	w := testWorld(100_000)
	cfg := Config{Week: 1, Engine: EngineEmulated, Seed: 1, Workers: 1}
	rng := newEngineRng(cfg, 0)
	eng := newEmulatedEngine(w, cfg, rng, newScanTelemetry(cfg.Telemetry), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.scanDomain(w.Domains[i%len(w.Domains)])
	}
}

func BenchmarkFastScanPerDomain(b *testing.B) {
	w := testWorld(100_000)
	cfg := Config{Week: 1, Engine: EngineFast, Seed: 1, Workers: 1}
	rng := newEngineRng(cfg, 0)
	eng := newFastEngine(w, cfg, rng, newScanTelemetry(cfg.Telemetry), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.scanDomain(w.Domains[i%len(w.Domains)])
	}
}

// mustRun runs a scan, failing the test on config errors.
func mustRun(t testing.TB, w *websim.World, cfg Config) *Result {
	t.Helper()
	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
