package scanner

import (
	"math"
	"strings"
	"testing"
	"time"

	"quicspin/internal/telemetry"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{Week: 1, Engine: EngineFast, Seed: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"negative redirects", func(c *Config) { c.MaxRedirects = -2 }, "MaxRedirects"},
		{"negative timeout", func(c *Config) { c.Timeout = -time.Second }, "Timeout"},
		{"negative week", func(c *Config) { c.Week = -1 }, "Week"},
		{"unknown engine", func(c *Config) { c.Engine = Engine(7) }, "Engine"},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	w := testWorld(500_000)
	if _, err := Run(w, Config{Week: 1, Engine: EngineFast, Workers: -3}); err == nil {
		t.Fatal("Run accepted Workers: -3")
	}
}

// counterChecks lists the counters a scan must populate and their expected
// relation to the tallied result.
func checkScanCounters(t *testing.T, name string, reg *telemetry.Registry, ty tally) {
	t.Helper()
	snap := reg.Snapshot()
	expect := map[string]int64{
		"spinscan_domains_total":            int64(ty.domains),
		"spinscan_domains_resolved_total":   int64(ty.resolved),
		"spinscan_conns_attempted_total":    int64(ty.conns),
		"spinscan_spin_flip_conns_total":    int64(ty.flipConns),
		"spinscan_redirects_followed_total": int64(ty.redirectsFollowed),
	}
	for metric, want := range expect {
		if got := snap.Counters[metric]; got != want {
			t.Errorf("%s: %s = %d, want %d", name, metric, got, want)
		}
	}
	if got := snap.Histograms[`spinscan_stage_seconds{stage="total"}`].Count; got == 0 {
		t.Errorf("%s: no total-stage spans recorded", name)
	}
}

// TestEngineTelemetryConsistent asserts that both engines produce
// consistent counter totals (conns attempted/succeeded) for the same small
// world and seed — the telemetry view of TestEnginesAgree.
func TestEngineTelemetryConsistent(t *testing.T) {
	w := testWorld(40_000)
	regs := map[Engine]*telemetry.Registry{
		EngineEmulated: telemetry.New(),
		EngineFast:     telemetry.New(),
	}
	tallies := map[Engine]tally{}
	for eng, reg := range regs {
		cfg := Config{Week: 1, Engine: eng, Seed: 11, Workers: 4, Telemetry: reg}
		tallies[eng] = tallyResult(mustRun(t, w, cfg))
	}
	checkScanCounters(t, "emulated", regs[EngineEmulated], tallies[EngineEmulated])
	checkScanCounters(t, "fast", regs[EngineFast], tallies[EngineFast])

	// Cross-engine: the fast engine must agree with the emulated one on
	// the campaign's headline counters. Resolution shares ground truth, so
	// it matches exactly; attempts agree within 2%; handshake success is
	// compared as a per-attempt rate (like TestEnginesAgree), since
	// redirect-chain modelling differs slightly per connection.
	em := regs[EngineEmulated].Snapshot()
	fa := regs[EngineFast].Snapshot()
	if em.Counters["spinscan_domains_resolved_total"] != fa.Counters["spinscan_domains_resolved_total"] {
		t.Errorf("resolved: emulated %d vs fast %d, want identical",
			em.Counters["spinscan_domains_resolved_total"], fa.Counters["spinscan_domains_resolved_total"])
	}
	emAtt := float64(em.Counters["spinscan_conns_attempted_total"])
	faAtt := float64(fa.Counters["spinscan_conns_attempted_total"])
	if emAtt == 0 || faAtt == 0 {
		t.Fatalf("vacuous attempts: emulated %v, fast %v", emAtt, faAtt)
	}
	if diff := math.Abs(emAtt-faAtt) / math.Max(emAtt, faAtt); diff > 0.02 {
		t.Errorf("attempted: emulated %v vs fast %v (%.1f%% apart, tol 2%%)", emAtt, faAtt, diff*100)
	}
	emRate := float64(em.Counters["spinscan_conns_succeeded_total"]) / emAtt
	faRate := float64(fa.Counters["spinscan_conns_succeeded_total"]) / faAtt
	if diff := math.Abs(emRate - faRate); diff > 0.02 {
		t.Errorf("success rate: emulated %.4f vs fast %.4f (|Δ| %.4f, tol 0.02)", emRate, faRate, diff)
	}

	// Both engines resolve through a caching resolver; redirect hops
	// revisiting hosts must produce cache traffic.
	for eng, reg := range regs {
		snap := reg.Snapshot()
		if snap.Counters["dns_queries_total"] == 0 {
			t.Errorf("engine %d: no dns_queries_total", eng)
		}
		if snap.Counters["dns_cache_misses_total"] == 0 {
			t.Errorf("engine %d: no dns cache misses recorded", eng)
		}
	}
}

// TestEmulatedTelemetryNetem checks the emulated engine also feeds the
// packet-level netem counters.
func TestEmulatedTelemetryNetem(t *testing.T) {
	w := testWorld(300_000)
	reg := telemetry.New()
	mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 3, Workers: 2, Telemetry: reg})
	snap := reg.Snapshot()
	if snap.Counters["netem_packets_sent_total"] == 0 {
		t.Error("no netem_packets_sent_total")
	}
	if snap.Counters["netem_packets_delivered_total"] == 0 {
		t.Error("no netem_packets_delivered_total")
	}
	// Blackholed (non-QUIC) targets guarantee drops.
	if snap.Counters["netem_packets_dropped_total"] == 0 {
		t.Error("no netem_packets_dropped_total")
	}
	if snap.Counters[`spinscan_conn_errors_total{class="timeout"}`] == 0 {
		t.Error("no timeout-class connection errors recorded")
	}
}

// TestTelemetryDoesNotChangeResults guards determinism: instrumenting a
// scan must not perturb its outcome (same seed → same result).
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	w := testWorld(200_000)
	plain := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 5, Workers: 3})
	instr := mustRun(t, w, Config{Week: 1, Engine: EngineEmulated, Seed: 5, Workers: 3, Telemetry: telemetry.New()})
	if len(plain.Domains) != len(instr.Domains) {
		t.Fatal("result sizes differ")
	}
	for i := range plain.Domains {
		a, b := &plain.Domains[i], &instr.Domains[i]
		if a.Resolved != b.Resolved || a.QUIC() != b.QUIC() || a.SpinActivity() != b.SpinActivity() || len(a.Conns) != len(b.Conns) {
			t.Fatalf("domain %s differs with telemetry enabled", a.Domain)
		}
	}
}

// BenchmarkFastScanPerDomainTelemetry is the overhead companion of
// BenchmarkFastScanPerDomain: the delta between the two must stay <2%
// (the always-on budget from the ISSUE acceptance criteria).
func BenchmarkFastScanPerDomainTelemetry(b *testing.B) {
	w := testWorld(100_000)
	cfg := Config{Week: 1, Engine: EngineFast, Seed: 1, Workers: 1, Telemetry: telemetry.New()}
	rng := newEngineRng(cfg, 0)
	tm := newScanTelemetry(cfg.Telemetry)
	eng := newFastEngine(w, cfg, rng, tm, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := eng.scanDomain(w.Domains[i%len(w.Domains)])
		tm.recordDomain(&d)
	}
}
